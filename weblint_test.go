package weblint

import (
	"strings"
	"testing"
)

const section42 = `<HTML>
<HEAD>
<TITLE>example page
</HEAD>
<BODY BGCOLOR="fffff" TEXT=#00ff00>
<H1>My Example</H2>
Click <B><A HREF="a.html>here</B></A>
for more details.
</BODY>
</HTML>
`

// TestPublicAPIQuickstart exercises the package-level convenience API
// the README documents.
func TestPublicAPIQuickstart(t *testing.T) {
	msgs := CheckString("test.html", section42)
	if len(msgs) != 7 {
		t.Fatalf("got %d messages, want 7", len(msgs))
	}
	out := LintStyle.Format(msgs[0])
	if out != "test.html(1): first element was not DOCTYPE specification" {
		t.Errorf("formatted = %q", out)
	}
	if ShortStyle.Format(msgs[0]) != "line 1: first element was not DOCTYPE specification" {
		t.Errorf("short = %q", ShortStyle.Format(msgs[0]))
	}
	if !strings.Contains(TerseStyle.Format(msgs[0]), "doctype-first") {
		t.Errorf("terse = %q", TerseStyle.Format(msgs[0]))
	}
}

func TestPublicAPILinter(t *testing.T) {
	l := MustNew(Options{Pedantic: true})
	msgs := l.CheckString("x.html", section42)
	if len(msgs) < 7 {
		t.Errorf("pedantic produced %d messages", len(msgs))
	}
	var sawStyle bool
	for _, m := range msgs {
		if m.Category == Style {
			sawStyle = true
		}
	}
	if !sawStyle {
		t.Error("pedantic run produced no style comments (here-anchor expected)")
	}
}

func TestPublicAPISettings(t *testing.T) {
	s := NewSettings()
	if err := s.Set.Disable("all"); err != nil {
		t.Fatal(err)
	}
	l, err := New(Options{Settings: s})
	if err != nil {
		t.Fatal(err)
	}
	if msgs := l.CheckString("x.html", section42); len(msgs) != 0 {
		t.Errorf("all-disabled run produced %d messages", len(msgs))
	}
}

func TestCategoriesExposed(t *testing.T) {
	if Error == Warning || Warning == Style {
		t.Error("category constants collide")
	}
}
