package weblint

import (
	"strings"
	"testing"
)

const section42 = `<HTML>
<HEAD>
<TITLE>example page
</HEAD>
<BODY BGCOLOR="fffff" TEXT=#00ff00>
<H1>My Example</H2>
Click <B><A HREF="a.html>here</B></A>
for more details.
</BODY>
</HTML>
`

// TestPublicAPIQuickstart exercises the package-level convenience API
// the README documents.
func TestPublicAPIQuickstart(t *testing.T) {
	msgs := CheckString("test.html", section42)
	if len(msgs) != 7 {
		t.Fatalf("got %d messages, want 7", len(msgs))
	}
	out := LintStyle.Format(msgs[0])
	if out != "test.html(1): first element was not DOCTYPE specification" {
		t.Errorf("formatted = %q", out)
	}
	if ShortStyle.Format(msgs[0]) != "line 1: first element was not DOCTYPE specification" {
		t.Errorf("short = %q", ShortStyle.Format(msgs[0]))
	}
	if !strings.Contains(TerseStyle.Format(msgs[0]), "doctype-first") {
		t.Errorf("terse = %q", TerseStyle.Format(msgs[0]))
	}
}

func TestPublicAPILinter(t *testing.T) {
	l := MustNew(Options{Pedantic: true})
	msgs := l.CheckString("x.html", section42)
	if len(msgs) < 7 {
		t.Errorf("pedantic produced %d messages", len(msgs))
	}
	var sawStyle bool
	for _, m := range msgs {
		if m.Category == Style {
			sawStyle = true
		}
	}
	if !sawStyle {
		t.Error("pedantic run produced no style comments (here-anchor expected)")
	}
}

func TestPublicAPISettings(t *testing.T) {
	s := NewSettings()
	if err := s.Set.Disable("all"); err != nil {
		t.Fatal(err)
	}
	l, err := New(Options{Settings: s})
	if err != nil {
		t.Fatal(err)
	}
	if msgs := l.CheckString("x.html", section42); len(msgs) != 0 {
		t.Errorf("all-disabled run produced %d messages", len(msgs))
	}
}

func TestCategoriesExposed(t *testing.T) {
	if Error == Warning || Warning == Style {
		t.Error("category constants collide")
	}
}

// TestPublicAPIStreaming exercises the streaming pipeline through the
// public surface: Linter.CheckStringTo into a Summary-counting
// renderer sink, severity policy, and the formatter-sink hook.
func TestPublicAPIStreaming(t *testing.T) {
	l := MustNew(Options{})
	var out strings.Builder
	r, err := NewRenderer("json", &out)
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	l.CheckStringTo("t.html", "<HTML><BODY><IMG SRC=x.gif></BODY></HTML>", sum.Sink(r))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if sum.Total() == 0 || out.Len() == 0 {
		t.Fatalf("streaming check produced nothing (summary %+v)", sum)
	}
	if sum.Failures(FailOnNever) != 0 {
		t.Error("FailOnNever reported failures")
	}
	if sum.Failures(FailOnStyle) != sum.Total() {
		t.Error("FailOnStyle did not count every finding")
	}
	if f, ok := ParseFailOn("warning"); !ok || f != FailOnWarning {
		t.Error("ParseFailOn(warning) broken")
	}

	var custom strings.Builder
	fr := NewFormatterSink(FormatterFunc(func(m Message) string {
		return "X:" + m.ID
	}), &custom)
	l.CheckStringTo("t.html", "<HTML><BODY><IMG SRC=x.gif></BODY></HTML>", fr)
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(custom.String(), "X:img-alt") {
		t.Errorf("formatter sink output = %q", custom.String())
	}
}

// TestBatchEngineRunTo: the public batch engine streams messages in
// input order into a sink.
func TestBatchEngineRunTo(t *testing.T) {
	eng := NewBatchEngine(nil)
	jobs := []BatchJob{
		{Name: "a.html", Src: []byte("<HTML><BODY><IMG SRC=x.gif></BODY></HTML>")},
		{Name: "b.html", Src: []byte("<HTML><BODY><P>t</P></BODY></HTML>")},
	}
	var c Collector
	if err := eng.RunTo(jobs, &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Messages) == 0 {
		t.Fatal("no messages streamed")
	}
	lastA := -1
	firstB := len(c.Messages)
	for i, m := range c.Messages {
		if m.File == "a.html" {
			lastA = i
		} else if i < firstB {
			firstB = i
		}
	}
	if lastA > firstB {
		t.Error("job messages interleaved out of input order")
	}
}
