package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixableDoc carries several mechanically fixable problems: a bare
// metacharacter, a missing ALT, single quotes, a spurious slash, and
// an unclosed FORM.
const fixableDoc = `<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0//EN">
<HTML><HEAD><TITLE>t</TITLE>
<META NAME="description" CONTENT="d"><META NAME="keywords" CONTENT="k">
</HEAD>
<BODY>
fish & chips
<IMG SRC="x.gif">
<A HREF='y.html'>link</A><BR/>
<FORM ACTION="/s" METHOD="get"><INPUT TYPE="text" NAME="q">
</BODY></HTML>
`

// TestFixDryRunPrintsDiff: -fix-dry-run prints a unified diff and
// leaves the file untouched, exit 0.
func TestFixDryRunPrintsDiff(t *testing.T) {
	path := writeTemp(t, "page.html", fixableDoc)
	code, out, stderr := runCLI(t, "", "-norc", "-fix-dry-run", path)
	if code != 0 {
		t.Fatalf("exit = %d, stderr=%q", code, stderr)
	}
	for _, want := range []string{
		"--- " + path + "\n",
		"+++ " + path + " (fixed)\n",
		"@@ -",
		"+fish &amp; chips",
		`ALT=""`,
		"</FORM>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != fixableDoc {
		t.Errorf("dry run modified the file (err=%v)", err)
	}
	if _, err := os.Stat(path + ".orig"); !os.IsNotExist(err) {
		t.Errorf("dry run created a backup")
	}
}

// TestFixInPlace: -fix rewrites the file, keeps a .orig backup, and a
// second run is a no-op (the fixed document has nothing fixable).
func TestFixInPlace(t *testing.T) {
	path := writeTemp(t, "page.html", fixableDoc)
	code, out, stderr := runCLI(t, "", "-norc", "-fix", path)
	if code != 0 {
		t.Fatalf("exit = %d, stderr=%q", code, stderr)
	}
	if !strings.Contains(out, path+": ") || !strings.Contains(out, "applied") {
		t.Errorf("no per-file report: %q", out)
	}
	orig, err := os.ReadFile(path + ".orig")
	if err != nil || string(orig) != fixableDoc {
		t.Errorf(".orig backup wrong (err=%v)", err)
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(fixed) == fixableDoc {
		t.Fatalf("file not rewritten")
	}
	for _, want := range []string{"&amp;", `ALT=""`, `HREF="y.html"`, "<BR>", "</FORM>"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed file missing %q:\n%s", want, fixed)
		}
	}

	// Second run: nothing fixable remains, nothing is written.
	code, out, stderr = runCLI(t, "", "-norc", "-fix", path)
	if code != 0 || out != "" {
		t.Errorf("second -fix run: code=%d out=%q stderr=%q", code, out, stderr)
	}
	after, _ := os.ReadFile(path)
	if string(after) != string(fixed) {
		t.Errorf("second -fix run changed the file")
	}
}

// TestFixDryRunDeterministicAcrossJobs: the -fix-dry-run diff stream
// is byte-identical between -j 1 and -j 4 over the same file list —
// the same determinism contract the renderers keep.
func TestFixDryRunDeterministicAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 9; i++ {
		p := filepath.Join(dir, fmt.Sprintf("p%02d.html", i))
		src := fixableDoc
		if i%3 == 1 {
			src = section42
		}
		if i%3 == 2 {
			src = strings.Repeat("line of text\n", 40) + fixableDoc
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	code, want, stderr := runCLI(t, "", append([]string{"-norc", "-fix-dry-run", "-j", "1"}, paths...)...)
	if code != 0 {
		t.Fatalf("-j 1: exit %d, stderr=%q", code, stderr)
	}
	if want == "" {
		t.Fatal("no diff output")
	}
	for run := 0; run < 3; run++ {
		code, got, stderr := runCLI(t, "", append([]string{"-norc", "-fix-dry-run", "-j", "4"}, paths...)...)
		if code != 0 {
			t.Fatalf("-j 4: exit %d, stderr=%q", code, stderr)
		}
		if got != want {
			t.Fatalf("-fix-dry-run output differs between -j 1 and -j 4")
		}
	}
}

// TestFixModeValidation: fix modes reject stdin, URLs, directories and
// each other.
func TestFixModeValidation(t *testing.T) {
	path := writeTemp(t, "page.html", fixableDoc)
	dir := t.TempDir()
	cases := [][]string{
		{"-norc", "-fix", "-fix-dry-run", path},
		{"-norc", "-fix", "-u", "http://example.org/"},
		{"-norc", "-fix", "-R", dir},
		{"-norc", "-fix", "-"},
		{"-norc", "-fix", dir},
		{"-norc", "-fix", filepath.Join(dir, "missing.html")},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, "", args...)
		if code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr=%q)", args, code, stderr)
		}
		if stderr == "" {
			t.Errorf("args %v: no error message", args)
		}
	}
}

// TestFixErrorMidBatch: an unreadable file cancels the fix run with
// exit 2; files after it in the argument order are left untouched.
func TestFixErrorMidBatch(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "a.html")
	gone := filepath.Join(dir, "gone.html")
	last := filepath.Join(dir, "z.html")
	for _, p := range []string{first, gone, last} {
		if err := os.WriteFile(p, []byte(fixableDoc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(gone); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "", "-norc", "-fix", first, gone, last)
	if code != 2 || !strings.Contains(stderr, "gone.html") {
		t.Fatalf("code=%d stderr=%q", code, stderr)
	}
	after, _ := os.ReadFile(last)
	if string(after) != fixableDoc {
		t.Errorf("file after the failure was rewritten")
	}
}
