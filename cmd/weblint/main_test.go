package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const section42 = `<HTML>
<HEAD>
<TITLE>example page
</HEAD>
<BODY BGCOLOR="fffff" TEXT=#00ff00>
<H1>My Example</H2>
Click <B><A HREF="a.html>here</B></A>
for more details.
</BODY>
</HTML>
`

// runCLI invokes the command main loop with isolated streams and no rc
// files.
func runCLI(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSection42CLIOutput reproduces the paper's example run,
// end-to-end through the command-line tool with -s.
func TestSection42CLIOutput(t *testing.T) {
	path := writeTemp(t, "test.html", section42)
	code, out, _ := runCLI(t, "", "-norc", "-s", path)
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (problems found)", code)
	}
	want := []string{
		"line 1: first element was not DOCTYPE specification",
		"line 4: no closing </TITLE> seen for <TITLE> on line 3",
		`line 5: value for attribute TEXT (#00ff00) of element BODY should be quoted (i.e. TEXT="#00ff00")`,
		"line 5: illegal value for BGCOLOR attribute of BODY (fffff)",
		"line 6: malformed heading - open tag is <H1>, but closing is </H2>",
		`line 7: odd number of quotes in element <A HREF="a.html>`,
		"line 7: </B> on line 7 seems to overlap <A>, opened on line 7.",
	}
	got := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("got %d lines:\n%s", len(got), out)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got  %q\n want %q", i, got[i], want[i])
		}
	}
}

func TestDefaultLintStyle(t *testing.T) {
	path := writeTemp(t, "test.html", section42)
	_, out, _ := runCLI(t, "", "-norc", path)
	if !strings.Contains(out, path+"(1): first element was not DOCTYPE") {
		t.Errorf("lint-style output missing: %s", out)
	}
}

func TestTerseOutput(t *testing.T) {
	path := writeTemp(t, "test.html", section42)
	_, out, _ := runCLI(t, "", "-norc", "-t", path)
	if !strings.Contains(out, path+":1:doctype-first") {
		t.Errorf("terse output missing: %s", out)
	}
}

func TestCleanFileExitsZero(t *testing.T) {
	clean := "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE>" +
		"<META NAME=\"description\" CONTENT=\"d\"><META NAME=\"keywords\" CONTENT=\"k\">" +
		"</HEAD><BODY><P>fine</P></BODY></HTML>\n"
	path := writeTemp(t, "clean.html", clean)
	code, out, stderr := runCLI(t, "", "-norc", path)
	if code != 0 || out != "" {
		t.Errorf("code=%d out=%q err=%q", code, out, stderr)
	}
}

func TestStdinDash(t *testing.T) {
	code, out, _ := runCLI(t, section42, "-norc", "-s", "-")
	if code != 1 {
		t.Errorf("exit code = %d", code)
	}
	if !strings.Contains(out, "line 1: first element was not DOCTYPE") {
		t.Errorf("stdin output = %q", out)
	}
}

func TestEnableDisableFlags(t *testing.T) {
	path := writeTemp(t, "t.html", section42)
	_, out, _ := runCLI(t, "", "-norc", "-d", "doctype-first,odd-quotes", "-s", path)
	if strings.Contains(out, "DOCTYPE") || strings.Contains(out, "odd number of quotes") {
		t.Errorf("disabled messages still present: %s", out)
	}
	_, out2, _ := runCLI(t, "", "-norc", "-e", "here-anchor", "-s", path)
	if !strings.Contains(out2, "content-free") {
		t.Errorf("enabled here-anchor missing: %s", out2)
	}
}

func TestPedanticFlag(t *testing.T) {
	path := writeTemp(t, "t.html", section42)
	_, normal, _ := runCLI(t, "", "-norc", "-s", path)
	_, pedantic, _ := runCLI(t, "", "-norc", "-pedantic", "-s", path)
	if len(strings.Split(pedantic, "\n")) <= len(strings.Split(normal, "\n")) {
		t.Error("pedantic mode did not add messages")
	}
}

func TestUnknownWarningIDErrors(t *testing.T) {
	path := writeTemp(t, "t.html", section42)
	code, _, stderr := runCLI(t, "", "-norc", "-e", "no-such-warning", path)
	if code != 2 || !strings.Contains(stderr, "no-such-warning") {
		t.Errorf("code=%d stderr=%q", code, stderr)
	}
}

func TestConfigFileFlag(t *testing.T) {
	rc := writeTemp(t, "rc", "disable doctype-first\nset output-style terse\n")
	page := writeTemp(t, "t.html", section42)
	_, out, _ := runCLI(t, "", "-f", rc, page)
	if strings.Contains(out, "doctype-first") {
		t.Error("rc disable ignored")
	}
	if !strings.Contains(out, ":5:body-colors") {
		t.Errorf("rc output-style ignored: %s", out)
	}
}

func TestHTMLVersionFlag(t *testing.T) {
	page := writeTemp(t, "t.html",
		"<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><SPAN>x</SPAN></BODY></HTML>")
	_, out, _ := runCLI(t, "", "-norc", "-V", "3.2", "-s", page)
	if !strings.Contains(out, "unknown element <SPAN>") {
		t.Errorf("3.2 checking missing: %s", out)
	}
	code, _, stderr := runCLI(t, "", "-norc", "-V", "9.9", page)
	if code != 2 || !strings.Contains(stderr, "9.9") {
		t.Errorf("bad version: code=%d stderr=%q", code, stderr)
	}
}

func TestExtensionFlag(t *testing.T) {
	page := writeTemp(t, "t.html",
		"<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE>"+
			"<META NAME=\"description\" CONTENT=\"d\"><META NAME=\"keywords\" CONTENT=\"k\">"+
			"</HEAD><BODY><BLINK>x</BLINK></BODY></HTML>")
	code, out, _ := runCLI(t, "", "-norc", "-s", page)
	if code != 1 || !strings.Contains(out, "Netscape") {
		t.Errorf("extension warning missing: %s", out)
	}
	code2, out2, _ := runCLI(t, "", "-norc", "-x", "netscape", page)
	if code2 != 0 {
		t.Errorf("with -x netscape: code=%d out=%q", code2, out2)
	}
}

func TestListFlag(t *testing.T) {
	code, out, _ := runCLI(t, "", "-norc", "-l")
	if code != 0 {
		t.Errorf("code = %d", code)
	}
	for _, want := range []string{"doctype-first", "element-overlap", "here-anchor", "enabled", "disabled"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRecurseFlag(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	clean := "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE>" +
		"<META NAME=\"description\" CONTENT=\"d\"><META NAME=\"keywords\" CONTENT=\"k\">" +
		"</HEAD><BODY><A HREF=\"/sub/page.html\">next</A></BODY></HTML>\n"
	if err := os.WriteFile(filepath.Join(dir, "index.html"), []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sub", "page.html"), []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	// Without -R a directory is rejected.
	code, _, stderr := runCLI(t, "", "-norc", dir)
	if code != 2 || !strings.Contains(stderr, "-R") {
		t.Errorf("directory without -R: code=%d stderr=%q", code, stderr)
	}
	// With -R the site is checked; sub has no index file.
	code, out, _ := runCLI(t, "", "-norc", "-R", "-s", dir)
	if code != 1 {
		t.Errorf("code = %d", code)
	}
	if !strings.Contains(out, "does not have an index file") {
		t.Errorf("-R output missing index warning: %s", out)
	}
}

func TestURLMode(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		_, _ = io.WriteString(w, section42)
	}))
	defer srv.Close()

	code, out, _ := runCLI(t, "", "-norc", "-u", "-s", srv.URL+"/page.html")
	if code != 1 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(out, "line 1: first element was not DOCTYPE") {
		t.Errorf("URL mode output = %q", out)
	}
}

func TestVersionFlag(t *testing.T) {
	code, out, _ := runCLI(t, "", "-version")
	if code != 0 || !strings.Contains(out, "weblint") {
		t.Errorf("version: code=%d out=%q", code, out)
	}
}

func TestNoArgsUsage(t *testing.T) {
	code, _, stderr := runCLI(t, "", "-norc")
	if code != 2 || !strings.Contains(stderr, "usage") {
		t.Errorf("no args: code=%d stderr=%q", code, stderr)
	}
}

func TestMissingFileError(t *testing.T) {
	code, _, stderr := runCLI(t, "", "-norc", "/nonexistent/file.html")
	if code != 2 || stderr == "" {
		t.Errorf("missing file: code=%d", code)
	}
}

// TestBatchMultiFile checks the -j batch path: many files on the
// command line produce exactly the output of checking them one at a
// time, in argument order, for any worker count.
func TestBatchMultiFile(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 12; i++ {
		p := filepath.Join(dir, fmt.Sprintf("p%02d.html", i))
		if err := os.WriteFile(p, []byte(section42), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	_, want, _ := runCLI(t, "", append([]string{"-norc", "-t", "-j", "1"}, paths...)...)
	if want == "" {
		t.Fatal("sequential run produced no output")
	}
	for _, j := range []string{"0", "4", "32"} {
		code, out, stderr := runCLI(t, "", append([]string{"-norc", "-t", "-j", j}, paths...)...)
		if code != 1 {
			t.Errorf("-j %s: code=%d stderr=%q", j, code, stderr)
		}
		if out != want {
			t.Errorf("-j %s output differs from sequential run", j)
		}
	}
}

// TestBatchErrorMidRun: a failing document mid-batch reports earlier
// documents' messages, then the error, with exit 2 — like the
// sequential path — and cancels the rest of the batch. URL mode is
// used because URL jobs always take the engine path (file jobs that
// fail os.Stat fall back to the sequential loop by design).
func TestBatchErrorMidRun(t *testing.T) {
	var served atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		if strings.HasPrefix(r.URL.Path, "/bad") {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		_, _ = io.WriteString(w, section42)
	}))
	defer srv.Close()

	args := []string{"-norc", "-t", "-j", "2", srv.URL + "/ok", srv.URL + "/bad"}
	for i := 0; i < 30; i++ {
		args = append(args, fmt.Sprintf("%s/p%d", srv.URL, i))
	}
	code, out, stderr := runCLI(t, "", append([]string{"-u"}, args...)...)
	if code != 2 {
		t.Errorf("code = %d, want 2 (stderr=%q)", code, stderr)
	}
	if !strings.Contains(stderr, "/bad") {
		t.Errorf("stderr does not name the failing URL: %q", stderr)
	}
	// The first URL's messages were reported before the failure.
	if !strings.Contains(out, srv.URL+"/ok:1:doctype-first") {
		t.Errorf("messages before the failing URL missing: %q", out)
	}
	// The error cancelled the batch: far fewer than all 32 URLs were
	// ever requested.
	if n := served.Load(); n > 16 {
		t.Errorf("%d URLs fetched after a mid-batch error cancelled the run", n)
	}
}

// TestURLModeSequentialDefault: without -j, URL batches run one fetch
// at a time (politeness), so requests arrive strictly sequentially.
func TestURLModeSequentialDefault(t *testing.T) {
	var inflight, maxInflight atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			old := maxInflight.Load()
			if cur <= old || maxInflight.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		w.Header().Set("Content-Type", "text/html")
		_, _ = io.WriteString(w, "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x</P></BODY></HTML>")
	}))
	defer srv.Close()

	args := []string{"-norc"}
	for i := 0; i < 8; i++ {
		args = append(args, fmt.Sprintf("%s/p%d", srv.URL, i))
	}
	code, _, stderr := runCLI(t, "", append([]string{"-u"}, args...)...)
	if code != 0 {
		t.Fatalf("code = %d, stderr=%q", code, stderr)
	}
	if maxInflight.Load() > 1 {
		t.Errorf("URL mode without -j ran %d concurrent fetches, want 1", maxInflight.Load())
	}
}
