package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weblint/internal/baseline"
)

// walkSitePage has two img-alt findings in distinct contexts: with
// proper context extraction they record as two fingerprints; resolved
// with an empty context (the pre-fix behaviour whenever the walk root
// was not the working directory) they collapse onto one.
const walkSitePage = `<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0//EN">
<HTML><HEAD><TITLE>t</TITLE>
<META NAME="description" CONTENT="d"><META NAME="keywords" CONTENT="k">
</HEAD>
<BODY>
%s<P>first illustration <IMG SRC="one.gif"> here
<P>second illustration <IMG SRC="two.gif"> there
</BODY></HTML>
`

// writeWalkSite builds a two-page site whose only findings are four
// img-alt warnings (two per page, each in a distinct context). The
// image targets exist so bad-link stays quiet, the sub page is an
// index file reached from the root page so the site-level
// no-index-file and orphan-page checks stay quiet too.
func writeWalkSite(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	root := strings.Replace(walkSitePage, "%s", "<P>see the <A HREF=\"sub/\">sub site</A>\n", 1)
	sub := strings.Replace(walkSitePage, "%s", "", 1)
	files := map[string]string{
		"index.html":     root,
		"sub/index.html": sub,
		"one.gif":        "gif",
		"two.gif":        "gif",
		"sub/one.gif":    "gif",
		"sub/two.gif":    "gif",
	}
	for path, body := range files {
		if err := os.WriteFile(filepath.Join(dir, filepath.FromSlash(path)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestWalkBaselineRecordsStrongFingerprints: -baseline-write on a -R
// walk, run from outside the site root, must resolve each page's text
// for context extraction. The tell is fingerprint granularity: two
// same-rule findings in one page stay distinct (count 1 each) instead
// of collapsing onto a single context-free fingerprint (count 2).
func TestWalkBaselineRecordsStrongFingerprints(t *testing.T) {
	site := writeWalkSite(t)
	basePath := filepath.Join(t.TempDir(), "site-baseline.json")

	code, _, stderr := runCLI(t, "", "-norc", "-R", "-baseline-write", basePath, site)
	if code != 0 {
		t.Fatalf("walk baseline-write exit = %d, stderr=%q", code, stderr)
	}

	base, err := baseline.Load(basePath)
	if err != nil {
		t.Fatal(err)
	}
	// Two pages × two img-alt findings, all in distinct contexts.
	if len(base.Findings) != 4 {
		t.Fatalf("recorded %d fingerprints, want 4 distinct: %v", len(base.Findings), base.Findings)
	}
	for fp, n := range base.Findings {
		if n != 1 {
			t.Fatalf("fingerprint %s has count %d: findings collapsed, context extraction failed", fp, n)
		}
	}
}

// TestWalkBaselineDiffCycle: the full CI loop over a site walk —
// record, clean re-run, then a regression fails with only the new
// finding reported.
func TestWalkBaselineDiffCycle(t *testing.T) {
	site := writeWalkSite(t)
	basePath := filepath.Join(t.TempDir(), "site-baseline.json")

	if code, _, stderr := runCLI(t, "", "-norc", "-R", "-baseline-write", basePath, site); code != 0 {
		t.Fatalf("record exit = %d, stderr=%q", code, stderr)
	}

	code, out, stderr := runCLI(t, "", "-norc", "-R", "-baseline", basePath, site)
	if code != 0 {
		t.Fatalf("unchanged site exit = %d, stderr=%q out=%q", code, stderr, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("unchanged site rendered output:\n%s", out)
	}

	// Inject one new finding into the subdirectory page.
	sub := strings.Replace(walkSitePage, "%s", "", 1)
	injected := strings.Replace(sub, "</BODY>",
		"<P>third illustration <IMG SRC=\"three.gif\"> everywhere\n</BODY>", 1)
	for path, body := range map[string]string{"sub/index.html": injected, "sub/three.gif": "gif"} {
		if err := os.WriteFile(filepath.Join(site, filepath.FromSlash(path)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	code, out, _ = runCLI(t, "", "-norc", "-R", "-t", "-baseline", basePath, site)
	if code != 1 {
		t.Fatalf("regressed site exit = %d, want 1; out=%q", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "img-alt") {
		t.Errorf("want exactly the one new img-alt finding, got:\n%s", out)
	}
}

// TestWalkBaselineUpdateCycle: record -> pay down one finding ->
// -baseline-update prunes its allowance -> reintroducing the finding
// now fails. The prune is what keeps a baseline honest: without it the
// fixed finding's fingerprint would linger and cover a regression.
func TestWalkBaselineUpdateCycle(t *testing.T) {
	site := writeWalkSite(t)
	basePath := filepath.Join(t.TempDir(), "site-baseline.json")

	if code, _, stderr := runCLI(t, "", "-norc", "-R", "-baseline-write", basePath, site); code != 0 {
		t.Fatalf("record exit = %d, stderr=%q", code, stderr)
	}

	// Pay down one finding: give the sub page's first image an ALT.
	sub := strings.Replace(walkSitePage, "%s", "", 1)
	fixed := strings.Replace(sub, `<IMG SRC="one.gif">`, `<IMG SRC="one.gif" ALT="one">`, 1)
	subPath := filepath.Join(site, "sub", "index.html")
	if err := os.WriteFile(subPath, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}

	// The update run is clean (everything still owed is covered) and
	// rewrites the baseline with only the fingerprints it matched.
	code, out, stderr := runCLI(t, "", "-norc", "-R", "-baseline-update", basePath, site)
	if code != 0 {
		t.Fatalf("update exit = %d, stderr=%q out=%q", code, stderr, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean update run rendered output:\n%s", out)
	}
	base, err := baseline.Load(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if base.Total() != 3 {
		t.Fatalf("pruned baseline covers %d findings, want 3: %v", base.Total(), base.Findings)
	}

	// Reintroduce the fixed finding: the pruned baseline must not cover
	// it any more.
	if err := os.WriteFile(subPath, []byte(sub), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCLI(t, "", "-norc", "-R", "-t", "-baseline", basePath, site)
	if code != 1 {
		t.Fatalf("reintroduced finding exit = %d, want 1; out=%q", code, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "img-alt") {
		t.Errorf("want exactly the reintroduced img-alt finding, got:\n%s", out)
	}
}
