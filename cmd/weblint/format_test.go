package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// warningsOnly produces only warning-category findings (doctype-first,
// require-meta), no errors.
const warningsOnly = `<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x</P></BODY></HTML>
`

// TestFormatJSON: -format json emits one valid JSON object per finding
// with structured id/category/file/line fields, then a trailing
// summary line with the per-category counts.
func TestFormatJSON(t *testing.T) {
	path := writeTemp(t, "test.html", section42)
	code, out, stderr := runCLI(t, "", "-norc", "-format", "json", path)
	if code != 1 {
		t.Fatalf("exit = %d, stderr=%q", code, stderr)
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("only %d JSON lines", len(lines))
	}

	// The last line is the run summary.
	var tail struct {
		Summary *struct {
			Errors     int            `json:"errors"`
			Warnings   int            `json:"warnings"`
			Style      int            `json:"style"`
			Suppressed map[string]int `json:"suppressed"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil || tail.Summary == nil {
		t.Fatalf("last line is not a summary: %q (%v)", lines[len(lines)-1], err)
	}
	if got := tail.Summary.Errors + tail.Summary.Warnings + tail.Summary.Style; got != len(lines)-1 {
		t.Errorf("summary counts %d findings, stream has %d", got, len(lines)-1)
	}

	for _, line := range lines[:len(lines)-1] {
		var m struct {
			ID       string `json:"id"`
			Category string `json:"category"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Text     string `json:"text"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		if m.ID == "" || m.File != path || m.Line < 1 || m.Text == "" {
			t.Errorf("degenerate JSON message: %+v", m)
		}
		switch m.Category {
		case "error", "warning", "style":
		default:
			t.Errorf("unknown category %q", m.Category)
		}
	}
}

// TestFormatSARIF: -format sarif emits a parseable SARIF 2.1.0 log.
func TestFormatSARIF(t *testing.T) {
	path := writeTemp(t, "test.html", section42)
	code, out, stderr := runCLI(t, "", "-norc", "-format", "sarif", path)
	if code != 1 {
		t.Fatalf("exit = %d, stderr=%q", code, stderr)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("degenerate SARIF log: %+v", log)
	}
}

// TestFormatUnknown: a bad -format is a usage error, exit 2.
func TestFormatUnknown(t *testing.T) {
	path := writeTemp(t, "test.html", section42)
	code, _, stderr := runCLI(t, "", "-norc", "-format", "yaml", path)
	if code != 2 || !strings.Contains(stderr, "yaml") {
		t.Errorf("code=%d stderr=%q", code, stderr)
	}
}

// TestMachineFormatsStableAcrossJobs: json and sarif output is
// byte-identical between -j 1 and -j 4 runs over the same file list.
func TestMachineFormatsStableAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 9; i++ {
		p := filepath.Join(dir, fmt.Sprintf("p%02d.html", i))
		src := section42
		if i%3 == 0 {
			src = warningsOnly
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	for _, format := range []string{"json", "sarif"} {
		_, want, _ := runCLI(t, "", append([]string{"-norc", "-format", format, "-j", "1"}, paths...)...)
		if want == "" {
			t.Fatalf("%s: no output", format)
		}
		code, got, stderr := runCLI(t, "", append([]string{"-norc", "-format", format, "-j", "4"}, paths...)...)
		if code != 1 {
			t.Errorf("%s -j 4: code=%d stderr=%q", format, code, stderr)
		}
		if got != want {
			t.Errorf("%s output differs between -j 1 and -j 4", format)
		}
	}
}

// TestFailOnThresholds: exit codes follow the severity policy.
func TestFailOnThresholds(t *testing.T) {
	warnPath := writeTemp(t, "warn.html", warningsOnly)
	errPath := writeTemp(t, "err.html", section42)

	cases := []struct {
		path   string
		failOn string
		want   int
	}{
		{warnPath, "", 1},        // default: any finding fails
		{warnPath, "any", 1},     //
		{warnPath, "warning", 1}, // warnings reach the warning threshold
		{warnPath, "error", 0},   // no errors in the document
		{warnPath, "never", 0},   //
		{errPath, "error", 1},    // errors always reach "error"
		{errPath, "never", 0},    // never fails on findings
	}
	for _, tc := range cases {
		args := []string{"-norc"}
		if tc.failOn != "" {
			args = append(args, "-fail-on", tc.failOn)
		}
		code, out, stderr := runCLI(t, "", append(args, tc.path)...)
		if code != tc.want {
			t.Errorf("%s -fail-on %q: code=%d, want %d (stderr=%q)", filepath.Base(tc.path), tc.failOn, code, tc.want, stderr)
		}
		if out == "" {
			t.Errorf("%s -fail-on %q: findings not reported", filepath.Base(tc.path), tc.failOn)
		}
	}

	if code, _, stderr := runCLI(t, "", "-fail-on", "fatal", "-norc", warnPath); code != 2 || !strings.Contains(stderr, "fatal") {
		t.Errorf("bad threshold: code=%d stderr=%q", code, stderr)
	}
}

// TestFailOnFromConfig: "set fail-on" in the rc file drives the exit
// code, and the -fail-on flag overrides it.
func TestFailOnFromConfig(t *testing.T) {
	rc := writeTemp(t, "rc", "set fail-on error\n")
	page := writeTemp(t, "warn.html", warningsOnly)
	code, _, stderr := runCLI(t, "", "-f", rc, page)
	if code != 0 {
		t.Errorf("rc fail-on ignored: code=%d stderr=%q", code, stderr)
	}
	code, _, _ = runCLI(t, "", "-f", rc, "-fail-on", "warning", page)
	if code != 1 {
		t.Errorf("flag did not override rc: code=%d", code)
	}
}

// TestOperationalErrorBeatsFindings: an unreadable file mid-list exits
// 2 even though the first file produced findings, and even under
// -fail-on never — operational failures are never conflated with
// findings.
func TestOperationalErrorBeatsFindings(t *testing.T) {
	good := writeTemp(t, "good.html", section42)
	for _, extra := range [][]string{nil, {"-fail-on", "never"}} {
		args := append([]string{"-norc", "-s"}, extra...)
		code, out, stderr := runCLI(t, "", append(args, good, "/nonexistent/gone.html")...)
		if code != 2 {
			t.Errorf("args %v: code=%d, want 2 (stderr=%q)", extra, code, stderr)
		}
		if !strings.Contains(out, "DOCTYPE") {
			t.Errorf("args %v: first file's findings not reported before the error", extra)
		}
		if stderr == "" {
			t.Errorf("args %v: operational error not reported", extra)
		}
	}
}

// TestBatchErrorExitsTwoWithFindings: the -j engine path reports exit
// 2 on a mid-batch failure even when earlier documents had findings
// and -fail-on never would otherwise exit 0.
func TestBatchErrorExitsTwoWithFindings(t *testing.T) {
	var served atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		if strings.HasPrefix(r.URL.Path, "/bad") {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, section42)
	}))
	defer srv.Close()

	args := []string{"-u", "-norc", "-fail-on", "never", "-j", "2",
		srv.URL + "/ok", srv.URL + "/bad", srv.URL + "/after"}
	code, out, stderr := runCLI(t, "", args...)
	if code != 2 {
		t.Errorf("code=%d, want 2 (stderr=%q)", code, stderr)
	}
	if !strings.Contains(stderr, "/bad") {
		t.Errorf("stderr does not name the failing URL: %q", stderr)
	}
	if !strings.Contains(out, "DOCTYPE") {
		t.Errorf("findings before the failure missing: %q", out)
	}
}

// TestSARIFPartialOnError: a mid-run operational error still closes
// the SARIF document, so the findings seen so far parse.
func TestSARIFPartialOnError(t *testing.T) {
	good := writeTemp(t, "good.html", section42)
	code, out, _ := runCLI(t, "", "-norc", "-format", "sarif", good, "/nonexistent/gone.html")
	if code != 2 {
		t.Fatalf("code=%d, want 2", code)
	}
	var log map[string]any
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Errorf("partial SARIF log does not parse: %v", err)
	}
}

// TestFormatFlagPrecedence: -format beats -s/-t, which beat the rc
// file's output-style.
func TestFormatFlagPrecedence(t *testing.T) {
	rc := writeTemp(t, "rc", "set output-style verbose\n")
	page := writeTemp(t, "t.html", section42)
	_, out, _ := runCLI(t, "", "-f", rc, "-t", "-format", "short", page)
	if !strings.HasPrefix(out, "line 1: ") {
		t.Errorf("-format did not win: %q", out)
	}
	_, out, _ = runCLI(t, "", "-f", rc, "-t", page)
	if !strings.Contains(out, ":1:doctype-first") {
		t.Errorf("-t did not beat output-style: %q", out)
	}
	_, out, _ = runCLI(t, "", "-f", rc, page)
	if !strings.Contains(out, "[doctype-first, warning]") {
		t.Errorf("rc output-style verbose ignored: %q", out)
	}
}

// TestSuppressionStats: disabled rules are counted per ID and
// surfaced by the verbose footer and the JSON summary line, on both
// the sequential and the -j engine path.
func TestSuppressionStats(t *testing.T) {
	const doc = `<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><IMG SRC="a.gif"><IMG SRC="b.gif"></BODY></HTML>
`
	path := writeTemp(t, "imgs.html", doc)

	// Default-disabled rules (img-size, require-meta) count too: the
	// footer reports every emission a disabled rule dropped.
	_, out, _ := runCLI(t, "", "-norc", "-d", "img-alt", "-v", path)
	if !strings.Contains(out, "suppressed: 6 emission(s) from disabled rules (img-alt x2, img-size x2, require-meta x2)") {
		t.Errorf("verbose footer missing suppression stats:\n%s", out)
	}

	// Without -d img-alt those findings are delivered, not counted.
	_, out, _ = runCLI(t, "", "-norc", "-v", path)
	if strings.Contains(out, "img-alt x") {
		t.Errorf("delivered rule counted as suppressed:\n%s", out)
	}
	if !strings.Contains(out, "suppressed: 4 emission(s)") {
		t.Errorf("default-disabled rules not counted:\n%s", out)
	}

	check := func(out string, wantAlt int) {
		t.Helper()
		lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
		var tail struct {
			Summary struct {
				Suppressed map[string]int `json:"suppressed"`
			} `json:"summary"`
		}
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil {
			t.Fatalf("summary line: %v", err)
		}
		if got := tail.Summary.Suppressed["img-alt"]; got != wantAlt {
			t.Errorf("json summary img-alt = %d, want %d (%v)", got, wantAlt, tail.Summary.Suppressed)
		}
	}
	_, out, _ = runCLI(t, "", "-norc", "-d", "img-alt", "-format", "json", path)
	check(out, 2)

	// The -j batch path forwards the same stats through the engine.
	path2 := writeTemp(t, "imgs2.html", doc)
	_, out, _ = runCLI(t, "", "-norc", "-d", "img-alt", "-format", "json", "-j", "4", path, path2)
	check(out, 4)

	// The -R sitewalk path forwards them too.
	dir := t.TempDir()
	for _, name := range []string{"index.html", "a.html"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, out, _ = runCLI(t, "", "-norc", "-R", "-d", "img-alt", "-format", "json", dir)
	check(out, 4)
}
