package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixDiffToWritesPatches: -fix-diff-to writes one patch per
// changed file, named after the input path, touching no input.
func TestFixDiffToWritesPatches(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "site")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	dirty := filepath.Join(sub, "dirty.html")
	clean := filepath.Join(sub, "clean.html")
	if err := os.WriteFile(dirty, []byte(fixableDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	cleanDoc := strings.Replace(strings.Replace(strings.Replace(strings.Replace(fixableDoc,
		"fish & chips", "fish &amp; chips", 1),
		`<IMG SRC="x.gif">`, `<IMG SRC="x.gif" ALT="">`, 1),
		`'y.html'`, `"y.html"`, 1), "<BR/>", "<BR>", 1)
	cleanDoc = strings.Replace(cleanDoc, `NAME="q">`, `NAME="q"></FORM>`, 1)
	if err := os.WriteFile(clean, []byte(cleanDoc), 0o644); err != nil {
		t.Fatal(err)
	}

	patchDir := filepath.Join(dir, "patches")
	code, out, stderr := runCLI(t, "", "-norc", "-fix-diff-to", patchDir, dirty, clean)
	if code != 0 {
		t.Fatalf("exit = %d, stderr=%q", code, stderr)
	}
	entries, err := os.ReadDir(patchDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d patches written, want 1 (clean files get none): %v", len(entries), entries)
	}
	name := entries[0].Name()
	if !strings.HasSuffix(name, "dirty.html.patch") || strings.ContainsAny(name, "/\\") {
		t.Errorf("patch name = %q", name)
	}
	patch, err := os.ReadFile(filepath.Join(patchDir, name))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"--- " + dirty, "+fish &amp; chips", `ALT=""`} {
		if !strings.Contains(string(patch), want) {
			t.Errorf("patch missing %q:\n%s", want, patch)
		}
	}
	if !strings.Contains(out, "dirty.html") {
		t.Errorf("stdout does not mention the patched file:\n%s", out)
	}
	// Inputs untouched, no backups.
	if data, _ := os.ReadFile(dirty); string(data) != fixableDoc {
		t.Error("-fix-diff-to modified an input file")
	}
	if _, err := os.Stat(dirty + ".orig"); !os.IsNotExist(err) {
		t.Error("-fix-diff-to created a backup")
	}
}

// TestFixDiffToParallelGolden: the patch set is byte-identical between
// -j 1 and -j 8 — the ordered engine core keeps bot-branch patches
// deterministic.
func TestFixDiffToParallelGolden(t *testing.T) {
	dir := t.TempDir()
	var files []string
	for i := 0; i < 12; i++ {
		p := filepath.Join(dir, "p"+string(rune('a'+i))+".html")
		doc := strings.Replace(fixableDoc, "x.gif", "img"+string(rune('a'+i))+".gif", 1)
		if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, p)
	}
	read := func(jobs string) map[string]string {
		t.Helper()
		patchDir := t.TempDir()
		args := append([]string{"-norc", "-j", jobs, "-fix-diff-to", patchDir}, files...)
		if code, _, stderr := runCLI(t, "", args...); code != 0 {
			t.Fatalf("-j %s exit != 0: %s", jobs, stderr)
		}
		out := map[string]string{}
		entries, err := os.ReadDir(patchDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(patchDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = string(data)
		}
		return out
	}
	seq, par := read("1"), read("8")
	if len(seq) != len(files) {
		t.Fatalf("%d patches, want %d", len(seq), len(files))
	}
	if len(seq) != len(par) {
		t.Fatalf("patch counts differ: %d vs %d", len(seq), len(par))
	}
	for name, want := range seq {
		if got, ok := par[name]; !ok || got != want {
			t.Errorf("patch %s differs between -j 1 and -j 8", name)
		}
	}
}

// TestFixModesMutuallyExclusive: the three fix modes cannot combine.
func TestFixModesMutuallyExclusive(t *testing.T) {
	path := writeTemp(t, "a.html", fixableDoc)
	code, _, stderr := runCLI(t, "", "-norc", "-fix-dry-run", "-fix-diff-to", t.TempDir(), path)
	if code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
}

// TestFixDiffToNameCollision: two inputs whose flattened patch names
// collide ("a/b.html" vs a literal "a__b.html") must each get their
// own patch — the second deterministically numbered, never a silent
// overwrite.
func TestFixDiffToNameCollision(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	p1 := filepath.Join(sub, "b.html")
	p2 := filepath.Join(dir, "a__b.html")
	if err := os.WriteFile(p1, []byte(fixableDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, []byte(fixableDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	patchDir := t.TempDir()
	// Both absolute paths flatten to the same ...__a__b.html.patch.
	if code, _, stderr := runCLI(t, "", "-norc", "-fix-diff-to", patchDir, p1, p2); code != 0 {
		t.Fatalf("exit != 0: %s", stderr)
	}
	entries, err := os.ReadDir(patchDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("%d patches for 2 colliding inputs: %v", len(entries), names)
	}
}
