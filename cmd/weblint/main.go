// Command weblint checks the syntax and style of HTML pages.
//
// Usage:
//
//	weblint [options] file.html ...
//	weblint -u http://example.com/ ...
//	weblint -R site-directory
//	weblint - < page.html
//
// Diagnostics stream through a renderer sink selected with -format:
// the traditional human styles (lint, short, terse, verbose) or the
// machine-readable json (JSON Lines) and sarif (SARIF 2.1.0, the
// format GitHub code scanning ingests). Output is identical for any
// -j worker count.
//
// Exit status is policy-driven via -fail-on: 0 when no finding
// reaches the threshold, 1 when one does, and 2 on operational errors
// (usage mistakes, unreadable files, failed fetches) — operational
// errors are never conflated with findings.
//
// Baselines make the policy adoptable on a site with existing debt:
// -baseline-write records this run's findings (fingerprinted by rule,
// file, and enclosing-tag content — tolerant of line drift and tag
// reflow), -baseline reports and fails on only the findings a
// recorded baseline does not cover, and -baseline-update additionally
// rewrites the baseline afterwards with just the fingerprints this
// run still hit, so paid-down debt leaves the file in the same run
// that verifies no new debt arrived.
package main

import (
	"cmp"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"weblint/internal/baseline"
	"weblint/internal/bytestr"
	"weblint/internal/config"
	"weblint/internal/engine"
	"weblint/internal/fixit"
	"weblint/internal/lint"
	"weblint/internal/render"
	"weblint/internal/sitewalk"
	"weblint/internal/warn"
)

const version = "weblint 2.0 (Go)"

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

type cli struct {
	short    bool
	terse    bool
	verbose  bool
	format   string
	failOn   string
	enable   string
	disable  string
	pedantic bool
	exts     string
	htmlVer  string
	rcFile   string
	noRC     bool
	recurse  bool
	urlMode  bool
	list     bool
	version  bool
	jobs          int
	fix           bool
	fixDry        bool
	fixDiffTo     string
	baseline       string
	baselineWrite  string
	baselineUpdate string

	// walkSrc resolves message paths to document text for baseline
	// fingerprinting; set only when a baseline flag is active.
	walkSrc *walkSource
}

// walkSource resolves message file paths for baseline fingerprinting
// on runs that include -R site walks. Sitewalk emits each page's File
// as a root-relative slash path, which the plain FileSource can only
// read when the walk root happens to be the working directory — from
// anywhere else every lookup missed, contexts came back empty, and
// same-rule findings across a file collapsed onto one weak
// fingerprint. Each walk registers its root before walking; resolution
// tries the path as given first (plain file arguments), then joined
// onto each registered root.
type walkSource struct {
	inner baseline.SourceFunc
	roots []string
}

func newWalkSource() *walkSource { return &walkSource{inner: baseline.FileSource()} }

func (s *walkSource) addRoot(root string) { s.roots = append(s.roots, root) }

func (s *walkSource) source(file string) (string, bool) {
	if src, ok := s.inner(file); ok {
		return src, true
	}
	for _, root := range s.roots {
		if src, ok := s.inner(filepath.Join(root, filepath.FromSlash(file))); ok {
			return src, true
		}
	}
	return "", false
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	var c cli
	fs := flag.NewFlagSet("weblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&c.short, "s", false, "short messages (\"line N: ...\"; same as -format short)")
	fs.BoolVar(&c.terse, "t", false, "terse machine-readable messages (file:line:id; same as -format terse)")
	fs.BoolVar(&c.verbose, "v", false, "verbose messages with explanations (same as -format verbose)")
	fs.StringVar(&c.format, "format", "", "output format: lint, short, terse, verbose, json, sarif")
	fs.StringVar(&c.failOn, "fail-on", "", "lowest severity that fails the run: error, warning, style (or any, the default), never")
	fs.StringVar(&c.enable, "e", "", "enable comma-separated warnings or categories")
	fs.StringVar(&c.disable, "d", "", "disable comma-separated warnings or categories")
	fs.BoolVar(&c.pedantic, "pedantic", false, "enable all warnings, even the esoteric ones")
	fs.StringVar(&c.exts, "x", "", "enable vendor extensions (netscape, microsoft)")
	fs.StringVar(&c.htmlVer, "V", "", "HTML version to check against (4.0 or 3.2)")
	fs.StringVar(&c.rcFile, "f", "", "configuration file to use instead of the user file")
	fs.BoolVar(&c.noRC, "norc", false, "do not read site or user configuration files")
	fs.BoolVar(&c.recurse, "R", false, "recurse into directories, checking a whole site")
	fs.BoolVar(&c.urlMode, "u", false, "arguments are URLs to retrieve and check")
	fs.BoolVar(&c.list, "l", false, "list supported warnings and their state, then exit")
	fs.BoolVar(&c.version, "version", false, "print version and exit")
	fs.IntVar(&c.jobs, "j", 0, "parallel lint workers (default: number of CPUs for files and -R, 1 for -u; output order is unaffected)")
	fs.BoolVar(&c.fix, "fix", false, "apply machine-applicable fixes in place, backing each file up as file.orig")
	fs.BoolVar(&c.fixDry, "fix-dry-run", false, "print the fixes as a unified diff to stdout without touching any file")
	fs.StringVar(&c.fixDiffTo, "fix-diff-to", "", "write each file's fixes as a unified-diff patch into this directory, touching no input file")
	fs.StringVar(&c.baseline, "baseline", "", "report (and fail on) only findings not recorded in this baseline file")
	fs.StringVar(&c.baselineWrite, "baseline-write", "", "record this run's findings to a baseline file; the run exits 0")
	fs.StringVar(&c.baselineUpdate, "baseline-update", "", "like -baseline, but also rewrite the file keeping only the fingerprints this run matched (prunes paid-down findings)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: weblint [options] file.html ... | -u URL ... | -R dir | -\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if c.version {
		fmt.Fprintln(stdout, version)
		return 0
	}

	settings, err := buildSettings(&c)
	if err != nil {
		fmt.Fprintf(stderr, "weblint: %v\n", err)
		return 2
	}

	linter, err := lint.New(lint.Options{Settings: settings, Pedantic: c.pedantic})
	if err != nil {
		fmt.Fprintf(stderr, "weblint: %v\n", err)
		return 2
	}

	style, err := pickStyle(&c, settings)
	if err != nil {
		fmt.Fprintf(stderr, "weblint: %v\n", err)
		return 2
	}
	threshold, err := pickFailOn(&c, settings)
	if err != nil {
		fmt.Fprintf(stderr, "weblint: %v\n", err)
		return 2
	}

	if c.list {
		listWarnings(stdout, linter.Set())
		return 0
	}

	files := fs.Args()
	if len(files) == 0 {
		fs.Usage()
		return 2
	}

	if c.fix || c.fixDry || c.fixDiffTo != "" {
		if err := validateFixMode(&c, files); err != nil {
			fmt.Fprintf(stderr, "weblint: %v\n", err)
			return 2
		}
		return runFix(&c, files, linter, stdout, stderr)
	}

	// The whole run streams through one pipeline: messages flow into a
	// severity-counting sink wrapping the selected renderer, and the
	// exit code falls out of the summary at the end. Baseline layers
	// wrap the chain: the filter forwards only findings the baseline
	// does not cover (so the renderer and the summary see just the new
	// ones), and the recorder — outermost, so it sees everything —
	// captures the full run for -baseline-write.
	renderer, err := render.New(style, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "weblint: %v\n", err)
		return 2
	}
	if moreThanOne(c.baseline != "", c.baselineWrite != "", c.baselineUpdate != "") {
		fmt.Fprintf(stderr, "weblint: -baseline, -baseline-write and -baseline-update are mutually exclusive\n")
		return 2
	}
	var sum warn.Summary
	sink := sum.Sink(renderer)
	var filter *baseline.Filter
	if path := cmp.Or(c.baseline, c.baselineUpdate); path != "" {
		base, err := baseline.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "weblint: %v\n", err)
			return 2
		}
		c.walkSrc = newWalkSource()
		filter = baseline.NewFilter(base, sink, c.walkSrc.source)
		sink = filter
	}
	var rec *baseline.Recorder
	if c.baselineWrite != "" {
		c.walkSrc = newWalkSource()
		rec = baseline.NewRecorder(sink, c.walkSrc.source)
		sink = rec
	}

	opErr := checkArgs(&c, files, linter, stdin, sink)
	// Close even after an operational error: a partial SARIF/JSON
	// document with the findings seen so far beats a truncated one.
	if cerr := renderer.Close(); cerr != nil && opErr == nil {
		opErr = cerr
	}
	if opErr != nil {
		fmt.Fprintf(stderr, "weblint: %v\n", opErr)
		return 2
	}
	writeSummaryFooter(style, stdout, &sum)
	if rec != nil {
		// Written only after a clean run: a partial record would mask
		// real findings on later diffs.
		if err := rec.File().WriteFile(c.baselineWrite); err != nil {
			fmt.Fprintf(stderr, "weblint: %v\n", err)
			return 2
		}
		// A recording run is for capturing state, not enforcing it.
		return 0
	}
	if c.baselineUpdate != "" {
		// Rewritten even when new findings fail the run below: the
		// pruned file reflects what this run's code still owes, and a
		// stale allowance for fixed findings must not linger until
		// someone remembers to re-record.
		if err := filter.Used().WriteFile(c.baselineUpdate); err != nil {
			fmt.Fprintf(stderr, "weblint: %v\n", err)
			return 2
		}
	}
	if sum.Failures(threshold) > 0 {
		return 1
	}
	return 0
}

// moreThanOne reports whether at least two of its arguments are true.
func moreThanOne(flags ...bool) bool {
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return n > 1
}

// writeSummaryFooter surfaces the run summary for the styles that
// carry one. The json renderer writes its own machine-readable
// summary line at Close (so the gateway and poacher streams get it
// too); verbose gets a human footer with the per-rule suppression
// stats when any emission was dropped by a disabled rule.
func writeSummaryFooter(style string, stdout io.Writer, sum *warn.Summary) {
	if style != "verbose" || sum.SuppressedTotal() == 0 {
		return
	}
	ids := make([]string, 0, len(sum.Suppressed))
	for id := range sum.Suppressed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(stdout, "suppressed: %d emission(s) from disabled rules (", sum.SuppressedTotal())
	for i, id := range ids {
		if i > 0 {
			io.WriteString(stdout, ", ")
		}
		fmt.Fprintf(stdout, "%s x%d", id, sum.Suppressed[id])
	}
	io.WriteString(stdout, ")\n")
}

// validateFixMode rejects flag combinations the fix modes do not
// support: fixes rewrite local files, so every argument must be a
// plain file.
func validateFixMode(c *cli, files []string) error {
	modes := 0
	for _, on := range []bool{c.fix, c.fixDry, c.fixDiffTo != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-fix, -fix-dry-run and -fix-diff-to are mutually exclusive")
	}
	if c.baseline != "" || c.baselineWrite != "" || c.baselineUpdate != "" {
		return fmt.Errorf("baselines apply to lint runs, not fix runs")
	}
	flagName := "-fix"
	switch {
	case c.fixDry:
		flagName = "-fix-dry-run"
	case c.fixDiffTo != "":
		flagName = "-fix-diff-to"
	}
	if c.urlMode {
		return fmt.Errorf("%s cannot be combined with -u (fixes rewrite local files)", flagName)
	}
	if c.recurse {
		return fmt.Errorf("%s cannot be combined with -R (pass the files explicitly)", flagName)
	}
	for _, arg := range files {
		if arg == "-" {
			return fmt.Errorf("%s cannot read from stdin (fixes rewrite local files)", flagName)
		}
		st, err := os.Stat(arg)
		if err != nil {
			return err
		}
		if st.IsDir() {
			return fmt.Errorf("%s is a directory (%s wants plain files)", arg, flagName)
		}
	}
	return nil
}

// fixResult is the per-file outcome of a fix-mode run.
type fixResult struct {
	path  string
	data  []byte // original content
	fixed string
	rep   fixit.Report
	err   error
}

// runFix lints every file, applies the machine-applicable fixes, and
// either rewrites the files in place (-fix, with a .orig backup) or
// prints a unified diff (-fix-dry-run). Files are checked on -j
// workers through the ordered engine core, so the output — and the
// order files are rewritten in — is identical for any worker count.
func runFix(c *cli, files []string, linter *lint.Linter, stdout, stderr io.Writer) int {
	// Deduplicate the argument list: producers read files on -j
	// workers while the ordered consumer rewrites them, so the same
	// path appearing twice could be re-read mid-rewrite and lint a
	// torn document. First mention wins. (Distinct paths aliasing one
	// file — symlinks, ../ routes — are out of scope, as for any
	// in-place rewriter.)
	seen := make(map[string]bool, len(files))
	deduped := files[:0:0]
	for _, f := range files {
		key := filepath.Clean(f)
		if seen[key] {
			continue
		}
		seen[key] = true
		deduped = append(deduped, f)
	}
	files = deduped

	if c.fixDiffTo != "" {
		if err := os.MkdirAll(c.fixDiffTo, 0o755); err != nil {
			fmt.Fprintf(stderr, "weblint: %v\n", err)
			return 2
		}
	}
	// patchName's flattening is not injective ("site/page.html" and a
	// file literally named "site__page.html" collide); the consumer
	// runs in input order, so first-come numbering is deterministic
	// for any -j.
	patchNames := map[string]bool{}

	workers := c.jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var opErr error
	engine.OrderedSlice(workers, 4*workers, files,
		func(_ int, path string) fixResult {
			r := fixResult{path: path}
			r.data, r.err = os.ReadFile(path)
			if r.err != nil {
				return r
			}
			msgs := linter.CheckBytes(path, r.data)
			r.fixed, r.rep = fixit.Apply(bytestr.String(r.data), msgs)
			return r
		},
		func(_ int, r fixResult) bool {
			if r.err != nil {
				opErr = r.err
				return false
			}
			if c.fixDry {
				if r.fixed != bytestr.String(r.data) {
					io.WriteString(stdout, fixit.UnifiedDiff(r.path, r.path+" (fixed)", bytestr.String(r.data), r.fixed))
				}
				return true
			}
			if c.fixDiffTo != "" {
				if r.fixed == bytestr.String(r.data) {
					return true
				}
				patch := fixit.UnifiedDiff(r.path, r.path+" (fixed)", bytestr.String(r.data), r.fixed)
				name := patchName(r.path)
				for i := 2; patchNames[name]; i++ {
					name = strings.TrimSuffix(patchName(r.path), ".patch") + fmt.Sprintf("~%d.patch", i)
				}
				patchNames[name] = true
				dest := filepath.Join(c.fixDiffTo, name)
				if err := os.WriteFile(dest, []byte(patch), 0o644); err != nil {
					opErr = err
					return false
				}
				fmt.Fprintf(stdout, "%s: %s -> %s\n", r.path, r.rep.String(), dest)
				return true
			}
			if !r.rep.Changed() {
				return true
			}
			mode := fs.FileMode(0o644)
			if st, err := os.Stat(r.path); err == nil {
				mode = st.Mode().Perm()
			}
			if err := os.WriteFile(r.path+".orig", r.data, mode); err != nil {
				opErr = err
				return false
			}
			if err := os.WriteFile(r.path, []byte(r.fixed), mode); err != nil {
				opErr = err
				return false
			}
			fmt.Fprintf(stdout, "%s: %s\n", r.path, r.rep.String())
			return true
		})
	if opErr != nil {
		fmt.Fprintf(stderr, "weblint: %v\n", opErr)
		return 2
	}
	return 0
}

// patchName maps an input path to a flat, filesystem-safe patch file
// name: path separators become "__", so patches for a whole tree land
// side by side in the -fix-diff-to directory without recreating it.
func patchName(path string) string {
	s := filepath.ToSlash(filepath.Clean(path))
	s = strings.ReplaceAll(s, "/", "__")
	s = strings.ReplaceAll(s, ":", "_")
	return s + ".patch"
}

// checkArgs checks every argument, streaming all diagnostics into
// sink. It returns the first operational error (unreadable file,
// failed fetch, usage mistake), at which point checking stops — later
// arguments are never read, matching the tool's historical behaviour.
func checkArgs(c *cli, files []string, linter *lint.Linter, stdin io.Reader, sink warn.Sink) error {
	// Multi-document runs go through the batch engine: documents are
	// linted on -j workers (default: all CPUs) and streamed in input
	// order, so the output is byte-identical to a sequential run.
	if jobs, ok := batchJobs(c, files); ok {
		workers := c.jobs
		if workers <= 0 && c.urlMode {
			// URL batches stay sequential unless -j asks for more:
			// parallel GETs against someone's server must be opt-in,
			// the same politeness default the robot keeps.
			workers = 1
		}
		eng := &engine.Engine{Linter: linter, Workers: workers}
		return eng.RunTo(jobs, sink)
	}

	for _, arg := range files {
		switch {
		case arg == "-":
			ok, err := checkOne(sink, func(rec warn.Sink) error {
				return linter.CheckReaderTo("-", stdin, rec)
			})
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		case c.urlMode:
			ok, err := checkOne(sink, func(rec warn.Sink) error {
				return linter.CheckURLTo(arg, rec)
			})
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		default:
			st, err := os.Stat(arg)
			if err != nil {
				return err
			}
			if st.IsDir() {
				if !c.recurse {
					return fmt.Errorf("%s is a directory (use -R to check a site)", arg)
				}
				// The walk streams directly: page messages as each
				// page's turn comes up, site-level messages at the end.
				// Pages are reported root-relative; the baseline source
				// needs the root to find their text on disk.
				if c.walkSrc != nil {
					c.walkSrc.addRoot(arg)
				}
				rep, err := sitewalk.Walk(arg, sitewalk.Options{
					Linter: linter, Workers: c.jobs, Sink: sink,
				})
				if err != nil {
					return err
				}
				if rep.Cancelled {
					// The sink is dead (e.g. stdout closed): checking
					// further arguments would be wasted I/O.
					return nil
				}
			} else {
				ok, err := checkOne(sink, func(rec warn.Sink) error {
					return linter.CheckFileTo(arg, rec)
				})
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
		}
	}
	return nil
}

// checkOne runs a single document check into a Recorder and replays
// it — suppression stats included — into sink in sorted order (the
// per-document output contract the slice APIs keep). The bool result
// reports whether the sink accepts more.
func checkOne(sink warn.Sink, check func(warn.Sink) error) (bool, error) {
	var rec warn.Recorder
	if err := check(&rec); err != nil {
		return false, err
	}
	warn.SortByLine(rec.Messages)
	return rec.Replay(sink), nil
}

// batchJobs decides whether the argument list can run through the
// batch engine and builds its jobs. Only multi-argument runs over
// plain files (or, with -u, URLs) batch; stdin, directories and
// unstattable arguments keep the sequential path so error handling is
// exactly the seed behaviour.
func batchJobs(c *cli, files []string) ([]engine.Job, bool) {
	if len(files) < 2 {
		return nil, false
	}
	jobs := make([]engine.Job, len(files))
	for i, arg := range files {
		if arg == "-" {
			return nil, false
		}
		if c.urlMode {
			jobs[i] = engine.Job{URL: arg}
			continue
		}
		st, err := os.Stat(arg)
		if err != nil || st.IsDir() {
			return nil, false
		}
		jobs[i] = engine.Job{Path: arg}
	}
	return jobs, true
}

// buildSettings performs the configuration layering of the paper's
// Section 4.4: site file, then user file (or -f file), then
// command-line switches.
func buildSettings(c *cli) (*config.Settings, error) {
	var settings *config.Settings
	var err error
	if c.noRC {
		settings = config.NewSettings()
	} else if c.rcFile != "" {
		settings = config.NewSettings()
		cfg, ferr := config.ParseFile(c.rcFile)
		if ferr != nil {
			return nil, ferr
		}
		if err := settings.Apply(cfg); err != nil {
			return nil, err
		}
	} else {
		settings, err = config.LoadDefault()
		if err != nil {
			return nil, err
		}
	}

	for _, id := range splitList(c.enable) {
		if err := settings.Set.Enable(id); err != nil {
			return nil, err
		}
	}
	for _, id := range splitList(c.disable) {
		if err := settings.Set.Disable(id); err != nil {
			return nil, err
		}
	}
	settings.Extensions = append(settings.Extensions, splitList(c.exts)...)
	if c.htmlVer != "" {
		settings.HTMLVersion = c.htmlVer
	}
	return settings, nil
}

// pickStyle resolves the output format: -format wins, then the -s/-t/
// -v shorthands, then the configuration file's output-style, then the
// traditional lint style.
func pickStyle(c *cli, settings *config.Settings) (string, error) {
	if c.format != "" {
		if !render.Valid(c.format) {
			return "", fmt.Errorf("unknown output format %q (expected one of %s)",
				c.format, strings.Join(render.Styles(), ", "))
		}
		return c.format, nil
	}
	switch {
	case c.terse:
		return "terse", nil
	case c.short:
		return "short", nil
	case c.verbose:
		return "verbose", nil
	}
	if settings.OutputStyle != "" {
		return settings.OutputStyle, nil
	}
	return "lint", nil
}

// pickFailOn resolves the severity threshold: -fail-on wins, then the
// configuration file, then "any" (every finding fails — the
// historical behaviour).
func pickFailOn(c *cli, settings *config.Settings) (warn.FailOn, error) {
	name := c.failOn
	if name == "" {
		name = settings.FailOn
	}
	if name == "" {
		return warn.FailOnStyle, nil
	}
	threshold, ok := warn.ParseFailOn(name)
	if !ok {
		return 0, fmt.Errorf("unknown -fail-on threshold %q (expected error, warning, style, any or never)", name)
	}
	return threshold, nil
}

// listWarnings prints the message inventory with enabled state, like
// the paper's description of per-identifier configuration.
func listWarnings(w io.Writer, set *warn.Set) {
	ids := warn.IDs()
	sort.Strings(ids)
	for _, id := range ids {
		d := warn.Lookup(id)
		state := "disabled"
		if set.Enabled(id) {
			state = "enabled"
		}
		fmt.Fprintf(w, "%-22s %-8s %-8s %s\n", id, d.Category, state, d.Format)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' }) {
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
