// Command weblint checks the syntax and style of HTML pages.
//
// Usage:
//
//	weblint [options] file.html ...
//	weblint -u http://example.com/ ...
//	weblint -R site-directory
//	weblint - < page.html
//
// Exit status is 0 when no problems were found, 1 when problems were
// reported, and 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"weblint/internal/config"
	"weblint/internal/engine"
	"weblint/internal/lint"
	"weblint/internal/sitewalk"
	"weblint/internal/warn"
)

const version = "weblint 2.0 (Go)"

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

type cli struct {
	short    bool
	terse    bool
	verbose  bool
	enable   string
	disable  string
	pedantic bool
	exts     string
	htmlVer  string
	rcFile   string
	noRC     bool
	recurse  bool
	urlMode  bool
	list     bool
	version  bool
	jobs     int
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	var c cli
	fs := flag.NewFlagSet("weblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&c.short, "s", false, "short messages (\"line N: ...\")")
	fs.BoolVar(&c.terse, "t", false, "terse machine-readable messages (file:line:id)")
	fs.BoolVar(&c.verbose, "v", false, "verbose messages with explanations")
	fs.StringVar(&c.enable, "e", "", "enable comma-separated warnings or categories")
	fs.StringVar(&c.disable, "d", "", "disable comma-separated warnings or categories")
	fs.BoolVar(&c.pedantic, "pedantic", false, "enable all warnings, even the esoteric ones")
	fs.StringVar(&c.exts, "x", "", "enable vendor extensions (netscape, microsoft)")
	fs.StringVar(&c.htmlVer, "V", "", "HTML version to check against (4.0 or 3.2)")
	fs.StringVar(&c.rcFile, "f", "", "configuration file to use instead of the user file")
	fs.BoolVar(&c.noRC, "norc", false, "do not read site or user configuration files")
	fs.BoolVar(&c.recurse, "R", false, "recurse into directories, checking a whole site")
	fs.BoolVar(&c.urlMode, "u", false, "arguments are URLs to retrieve and check")
	fs.BoolVar(&c.list, "l", false, "list supported warnings and their state, then exit")
	fs.BoolVar(&c.version, "version", false, "print version and exit")
	fs.IntVar(&c.jobs, "j", 0, "parallel lint workers (default: number of CPUs for files and -R, 1 for -u; output order is unaffected)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: weblint [options] file.html ... | -u URL ... | -R dir | -\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if c.version {
		fmt.Fprintln(stdout, version)
		return 0
	}

	settings, err := buildSettings(&c)
	if err != nil {
		fmt.Fprintf(stderr, "weblint: %v\n", err)
		return 2
	}

	linter, err := lint.New(lint.Options{Settings: settings, Pedantic: c.pedantic})
	if err != nil {
		fmt.Fprintf(stderr, "weblint: %v\n", err)
		return 2
	}

	formatter := pickFormatter(&c, settings)

	if c.list {
		listWarnings(stdout, linter.Set())
		return 0
	}

	files := fs.Args()
	if len(files) == 0 {
		fs.Usage()
		return 2
	}

	problems := false
	report := func(msgs []warn.Message) {
		for _, m := range msgs {
			fmt.Fprintln(stdout, formatter.Format(m))
			problems = true
		}
	}

	// Multi-document runs go through the batch engine: documents are
	// linted on -j workers (default: all CPUs) and reported in input
	// order, so the output is byte-identical to a sequential run.
	if jobs, ok := batchJobs(&c, files); ok {
		workers := c.jobs
		if workers <= 0 && c.urlMode {
			// URL batches stay sequential unless -j asks for more:
			// parallel GETs against someone's server must be opt-in,
			// the same politeness default the robot keeps.
			workers = 1
		}
		eng := &engine.Engine{Linter: linter, Workers: workers}
		var firstErr error
		eng.Run(jobs, func(r engine.Result) bool {
			if r.Err != nil {
				// Stop the batch like the sequential path stops: no
				// further files are read (or URLs fetched).
				firstErr = r.Err
				return false
			}
			report(r.Messages)
			return true
		})
		if firstErr != nil {
			fmt.Fprintf(stderr, "weblint: %v\n", firstErr)
			return 2
		}
		if problems {
			return 1
		}
		return 0
	}

	for _, arg := range files {
		switch {
		case arg == "-":
			msgs, err := linter.CheckReader("-", stdin)
			if err != nil {
				fmt.Fprintf(stderr, "weblint: %v\n", err)
				return 2
			}
			report(msgs)
		case c.urlMode:
			msgs, err := linter.CheckURL(arg)
			if err != nil {
				fmt.Fprintf(stderr, "weblint: %v\n", err)
				return 2
			}
			report(msgs)
		default:
			st, err := os.Stat(arg)
			if err != nil {
				fmt.Fprintf(stderr, "weblint: %v\n", err)
				return 2
			}
			if st.IsDir() {
				if !c.recurse {
					fmt.Fprintf(stderr, "weblint: %s is a directory (use -R to check a site)\n", arg)
					return 2
				}
				rep, err := sitewalk.Walk(arg, sitewalk.Options{Linter: linter, Workers: c.jobs})
				if err != nil {
					fmt.Fprintf(stderr, "weblint: %v\n", err)
					return 2
				}
				report(rep.Messages)
			} else {
				msgs, err := linter.CheckFile(arg)
				if err != nil {
					fmt.Fprintf(stderr, "weblint: %v\n", err)
					return 2
				}
				report(msgs)
			}
		}
	}

	if problems {
		return 1
	}
	return 0
}

// batchJobs decides whether the argument list can run through the
// batch engine and builds its jobs. Only multi-argument runs over
// plain files (or, with -u, URLs) batch; stdin, directories and
// unstattable arguments keep the sequential path so error handling is
// exactly the seed behaviour.
func batchJobs(c *cli, files []string) ([]engine.Job, bool) {
	if len(files) < 2 {
		return nil, false
	}
	jobs := make([]engine.Job, len(files))
	for i, arg := range files {
		if arg == "-" {
			return nil, false
		}
		if c.urlMode {
			jobs[i] = engine.Job{URL: arg}
			continue
		}
		st, err := os.Stat(arg)
		if err != nil || st.IsDir() {
			return nil, false
		}
		jobs[i] = engine.Job{Path: arg}
	}
	return jobs, true
}

// buildSettings performs the configuration layering of the paper's
// Section 4.4: site file, then user file (or -f file), then
// command-line switches.
func buildSettings(c *cli) (*config.Settings, error) {
	var settings *config.Settings
	var err error
	if c.noRC {
		settings = config.NewSettings()
	} else if c.rcFile != "" {
		settings = config.NewSettings()
		cfg, ferr := config.ParseFile(c.rcFile)
		if ferr != nil {
			return nil, ferr
		}
		if err := settings.Apply(cfg); err != nil {
			return nil, err
		}
	} else {
		settings, err = config.LoadDefault()
		if err != nil {
			return nil, err
		}
	}

	for _, id := range splitList(c.enable) {
		if err := settings.Set.Enable(id); err != nil {
			return nil, err
		}
	}
	for _, id := range splitList(c.disable) {
		if err := settings.Set.Disable(id); err != nil {
			return nil, err
		}
	}
	settings.Extensions = append(settings.Extensions, splitList(c.exts)...)
	if c.htmlVer != "" {
		settings.HTMLVersion = c.htmlVer
	}
	return settings, nil
}

func pickFormatter(c *cli, settings *config.Settings) warn.Formatter {
	switch {
	case c.terse:
		return warn.Terse{}
	case c.short:
		return warn.Short{}
	case c.verbose:
		return warn.Verbose{}
	}
	switch settings.OutputStyle {
	case "short":
		return warn.Short{}
	case "terse":
		return warn.Terse{}
	case "verbose":
		return warn.Verbose{}
	}
	return warn.Lint{}
}

// listWarnings prints the message inventory with enabled state, like
// the paper's description of per-identifier configuration.
func listWarnings(w io.Writer, set *warn.Set) {
	ids := warn.IDs()
	sort.Strings(ids)
	for _, id := range ids {
		d := warn.Lookup(id)
		state := "disabled"
		if set.Enabled(id) {
			state = "enabled"
		}
		fmt.Fprintf(w, "%-22s %-8s %-8s %s\n", id, d.Category, state, d.Format)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' }) {
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}
