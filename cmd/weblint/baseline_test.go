package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weblint/internal/baseline"
)

// dirtyDoc has stable findings to baseline.
const dirtyDoc = `<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0//EN">
<HTML><HEAD><TITLE>t</TITLE>
<META NAME="description" CONTENT="d"><META NAME="keywords" CONTENT="k">
</HEAD>
<BODY>
<IMG SRC="x.gif">
<P>text
</BODY></HTML>
`

// TestBaselineWriteThenClean: recording a baseline exits 0; an
// unchanged corpus diffed against it exits 0 and reports nothing;
// injecting one new finding flips the exit to 1 and reports only the
// new finding.
func TestBaselineWriteThenClean(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.html")
	b := filepath.Join(dir, "b.html")
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, []byte(dirtyDoc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	basePath := filepath.Join(dir, "weblint-baseline.json")

	// Record. The corpus has findings, but a recording run exits 0.
	code, _, stderr := runCLI(t, "", "-norc", "-baseline-write", basePath, a, b)
	if code != 0 {
		t.Fatalf("baseline-write exit = %d, stderr=%q", code, stderr)
	}
	if _, err := os.Stat(basePath); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// Unchanged corpus: clean run, nothing rendered.
	code, out, stderr := runCLI(t, "", "-norc", "-baseline", basePath, a, b)
	if code != 0 {
		t.Fatalf("unchanged corpus exit = %d, stderr=%q, out=%q", code, stderr, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("unchanged corpus rendered output:\n%s", out)
	}

	// Line drift above the findings stays clean.
	drifted := strings.Replace(dirtyDoc, "<BODY>", "<BODY>\n<P>intro", 1)
	if err := os.WriteFile(a, []byte(drifted), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCLI(t, "", "-norc", "-baseline", basePath, a, b)
	if code != 0 {
		t.Fatalf("drifted corpus exit = %d, out=%q", code, out)
	}

	// Inject one new finding: exit 1, and only the new finding shows.
	injected := strings.Replace(dirtyDoc, "<P>text", "<P>text\n<IMG SRC=\"new.gif\">", 1)
	if err := os.WriteFile(b, []byte(injected), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCLI(t, "", "-norc", "-baseline", basePath, a, b)
	if code != 1 {
		t.Fatalf("injected corpus exit = %d, want 1; out=%q", code, out)
	}
	if !strings.Contains(out, "new.gif") && !strings.Contains(out, "IMG") {
		t.Errorf("new finding not rendered:\n%s", out)
	}
	if c := strings.Count(strings.TrimSpace(out), "\n"); c > 1 {
		t.Errorf("baselined findings leaked into the report (%d lines):\n%s", c+1, out)
	}
}

// TestBaselineWithSARIF: the baseline filter composes with the SARIF
// renderer — a baselined run emits an empty results array.
func TestBaselineWithSARIF(t *testing.T) {
	path := writeTemp(t, "a.html", dirtyDoc)
	basePath := filepath.Join(filepath.Dir(path), "base.json")
	if code, _, stderr := runCLI(t, "", "-norc", "-baseline-write", basePath, path, path); code != 0 {
		t.Fatalf("record exit %d: %s", code, stderr)
	}
	code, out, _ := runCLI(t, "", "-norc", "-format", "sarif", "-baseline", basePath, path, path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, `"results": []`) {
		t.Errorf("SARIF results not empty:\n%s", out)
	}
}

// TestBaselineMissingFile: a missing baseline is an operational error.
func TestBaselineMissingFile(t *testing.T) {
	path := writeTemp(t, "a.html", dirtyDoc)
	code, _, stderr := runCLI(t, "", "-norc", "-baseline", "/nonexistent/base.json", path)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr=%q)", code, stderr)
	}
}

// TestBaselineRejectsFixMode: baselines apply to lint runs only.
func TestBaselineRejectsFixMode(t *testing.T) {
	path := writeTemp(t, "a.html", dirtyDoc)
	code, _, stderr := runCLI(t, "", "-norc", "-fix", "-baseline", "x.json", path)
	if code != 2 || !strings.Contains(stderr, "baseline") {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
}

// TestBaselineUpdatePrunesAndFails: -baseline-update prunes paid-down
// fingerprints from the baseline file while still failing on new
// findings — one run does both.
func TestBaselineUpdatePrunesAndFails(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.html")
	b := filepath.Join(dir, "b.html")
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, []byte(dirtyDoc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	basePath := filepath.Join(dir, "base.json")
	if code, _, stderr := runCLI(t, "", "-norc", "-baseline-write", basePath, a, b); code != 0 {
		t.Fatalf("record exit %d: %s", code, stderr)
	}
	recorded, err := baseline.Load(basePath)
	if err != nil {
		t.Fatal(err)
	}

	// Pay down a.html's IMG findings; the update run stays clean and
	// shrinks the baseline.
	fixed := strings.Replace(dirtyDoc, `<IMG SRC="x.gif">`,
		`<IMG SRC="x.gif" ALT="x" WIDTH=1 HEIGHT=1>`, 1)
	if err := os.WriteFile(a, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := runCLI(t, "", "-norc", "-baseline-update", basePath, a, b)
	if code != 0 {
		t.Fatalf("update exit = %d, stderr=%q, out=%q", code, stderr, out)
	}
	pruned, err := baseline.Load(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Total() >= recorded.Total() {
		t.Fatalf("baseline not pruned: %d -> %d findings", recorded.Total(), pruned.Total())
	}

	// The pruned allowance is really gone: un-fixing a.html now fails.
	if err := os.WriteFile(a, []byte(dirtyDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, _ := runCLI(t, "", "-norc", "-baseline", basePath, a, b); code != 1 {
		t.Fatalf("un-fixed run against pruned baseline exit = %d, want 1; out=%q", code, out)
	}

	// A new finding fails the update run — and the file is still
	// rewritten, so even the failing run prunes stale allowances (here
	// a planted fingerprint no finding matches).
	if err := os.WriteFile(a, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	injected := strings.Replace(dirtyDoc, "<P>text", "<P>text\n<IMG SRC=\"new.gif\">", 1)
	if err := os.WriteFile(b, []byte(injected), 0o644); err != nil {
		t.Fatal(err)
	}
	pruned.Add("deadbeefdeadbeef")
	if err := pruned.WriteFile(basePath); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCLI(t, "", "-norc", "-baseline-update", basePath, a, b)
	if code != 1 {
		t.Fatalf("update with new finding exit = %d, want 1; out=%q", code, out)
	}
	again, err := baseline.Load(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, stale := again.Findings["deadbeefdeadbeef"]; stale {
		t.Fatal("failing update run did not rewrite the baseline")
	}
}

// TestBaselineFlagsMutuallyExclusive: the three baseline modes cannot
// be combined.
func TestBaselineFlagsMutuallyExclusive(t *testing.T) {
	path := writeTemp(t, "a.html", dirtyDoc)
	code, _, stderr := runCLI(t, "", "-norc", "-baseline", "x.json", "-baseline-update", "y.json", path)
	if code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("exit = %d, stderr = %q", code, stderr)
	}
}
