// Command weblint-siege load-tests a running weblint gateway: it
// generates a corpus of synthetic HTML documents, POSTs them as
// multipart file-upload submissions at one or more concurrency levels, and
// reports latency percentiles alongside the outcome counts that the
// serving defences produce — 429 (shed by admission control), 504
// (lint budget exceeded), and transport errors. The admission and
// budget counters are first-class results, not failures: a hardened
// gateway under overload is *supposed* to shed load fast.
//
// With -repeat the request schedule becomes repeat-heavy: that
// fraction of requests re-submits a document from a small popular set
// (zipf-weighted, so some documents are much hotter than others, the
// way real traffic repeats), and the rest are unique documents. The
// report then splits latency percentiles by the gateway's
// X-Weblint-Cache disposition and records the observed hit rate — the
// numbers that show the result cache serving repeats at memory speed.
//
// Usage:
//
//	weblint-siege [-url http://localhost:8017/] [-conns 1,4,16]
//	              [-requests 200] [-doc-bytes 16384] [-error-rate 0.05]
//	              [-repeat 0] [-format html]
//	              [-timeout 30s] [-o BENCH_gateway.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"weblint/internal/corpus"
)

type levelResult struct {
	Conns            int     `json:"conns"`
	Requests         int     `json:"requests"`
	OK               int64   `json:"ok"`
	Rejected429      int64   `json:"rejected_429"`
	DeadlineExceeded int64   `json:"deadline_exceeded_504"`
	OtherStatus      int64   `json:"other_status"`
	TransportErrors  int64   `json:"transport_errors"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	MaxMs            float64 `json:"max_ms"`
	ThroughputRPS    float64 `json:"throughput_rps"`

	// Cache outcomes, classified from the X-Weblint-Cache response
	// header (all zero against a -cache-off gateway, which sends no
	// header). The split percentiles are the cache's headline number:
	// a hit never lints, so HitP50Ms should sit an order of magnitude
	// under MissP50Ms.
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheCoalesced int64   `json:"cache_coalesced"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	HitP50Ms       float64 `json:"hit_p50_ms"`
	MissP50Ms      float64 `json:"miss_p50_ms"`
}

type report struct {
	Benchmark   string        `json:"benchmark"`
	Date        string        `json:"date"`
	GoVersion   string        `json:"go_version"`
	Gomaxprocs  int           `json:"gomaxprocs"`
	Target      string        `json:"target"`
	DocBytes    int           `json:"doc_bytes"`
	Docs        int           `json:"corpus_docs"`
	RepeatRatio float64       `json:"repeat_ratio"`
	Format      string        `json:"format"`
	Results     []levelResult `json:"results"`
}

func main() {
	target := flag.String("url", "http://localhost:8017/", "gateway URL to siege")
	connsFlag := flag.String("conns", "1,4,16", "comma-separated concurrency levels")
	requests := flag.Int("requests", 200, "requests per concurrency level")
	docBytes := flag.Int("doc-bytes", 16<<10, "approximate size of each generated document")
	errorRate := flag.Float64("error-rate", 0.05, "markup error rate in the generated corpus")
	repeat := flag.Float64("repeat", 0,
		"fraction of requests that re-submit a popular document (0 = legacy rotating corpus)")
	format := flag.String("format", "html", "report format to request (html, json, sarif, baseline, fixed)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()
	if *repeat < 0 || *repeat > 1 {
		fmt.Fprintf(os.Stderr, "weblint-siege: -repeat must be in [0,1]\n")
		os.Exit(2)
	}

	var levels []int
	for _, s := range strings.Split(*connsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "weblint-siege: bad -conns entry %q\n", s)
			os.Exit(2)
		}
		levels = append(levels, n)
	}

	// The request schedule is precomputed and deterministic, so two
	// siege runs are comparable. With -repeat 0 it is the legacy small
	// rotating corpus; otherwise buildSchedule mixes zipf-weighted
	// popular documents with unique ones at the requested ratio.
	const corpusDocs = 16
	docs := buildSchedule(corpusDocs, *docBytes, *errorRate, *repeat, *requests)

	client := &http.Client{Timeout: *timeout}
	rep := report{
		Benchmark:   "gateway-siege",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Gomaxprocs:  runtime.GOMAXPROCS(0),
		Target:      *target,
		DocBytes:    *docBytes,
		Docs:        corpusDocs,
		RepeatRatio: *repeat,
		Format:      *format,
	}

	for _, conns := range levels {
		res := siege(client, *target, docs, conns, *requests, *format)
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr,
			"conns=%-3d ok=%-4d 429=%-4d 504=%-4d err=%-3d p50=%.1fms p99=%.1fms %.1f req/s hit-rate=%.2f hit-p50=%.2fms miss-p50=%.2fms\n",
			conns, res.OK, res.Rejected429, res.DeadlineExceeded,
			res.TransportErrors+res.OtherStatus, res.P50Ms, res.P99Ms, res.ThroughputRPS,
			res.CacheHitRate, res.HitP50Ms, res.MissP50Ms)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "weblint-siege: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "weblint-siege: %v\n", err)
		os.Exit(1)
	}
}

// buildSchedule generates the request schedule. ratio 0 keeps the
// legacy behaviour: a small rotating corpus of corpusDocs documents
// that workers index round-robin. A positive ratio produces one
// document per request: with probability ratio a popular document
// (zipf-weighted over the corpus, so a few documents dominate the
// repeats the way real traffic does), otherwise a unique document
// seen exactly once. Everything is seeded, so the schedule — and the
// achievable hit rate — is identical across runs.
func buildSchedule(corpusDocs, docBytes int, errorRate, ratio float64, total int) []string {
	popular := make([]string, corpusDocs)
	for i := range popular {
		popular[i] = corpus.GenerateSized(int64(i+1), docBytes, corpus.Uniform(errorRate))
	}
	if ratio == 0 {
		return popular
	}
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(corpusDocs-1))
	docs := make([]string, total)
	for i := range docs {
		if rng.Float64() < ratio {
			docs[i] = popular[zipf.Uint64()]
		} else {
			// Unique documents get seeds far from the popular set.
			docs[i] = corpus.GenerateSized(int64(1000+i), docBytes, corpus.Uniform(errorRate))
		}
	}
	return docs
}

// siege fires total requests at the gateway from conns workers and
// classifies every outcome, splitting latencies by the gateway's
// cache disposition when the X-Weblint-Cache header is present.
func siege(client *http.Client, target string, docs []string, conns, total int, format string) levelResult {
	res := levelResult{Conns: conns, Requests: total}
	latencies := make([]time.Duration, total)
	classes := make([]byte, total) // 'h'it, 'm'iss, 'c'oalesced, 0 = uncached/error

	var next atomic.Int64
	var ok, rejected, deadline, other, transport atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				body, contentType := multipartSubmission(docs[i%len(docs)], format)
				t0 := time.Now()
				resp, err := client.Post(target, contentType, bytes.NewReader(body))
				latencies[i] = time.Since(t0)
				if err != nil {
					transport.Add(1)
					continue
				}
				// Drain so the connection is reused.
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.Header.Get("X-Weblint-Cache") {
				case "hit":
					classes[i] = 'h'
				case "miss":
					classes[i] = 'm'
				case "coalesced":
					classes[i] = 'c'
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				case http.StatusGatewayTimeout:
					deadline.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.OK = ok.Load()
	res.Rejected429 = rejected.Load()
	res.DeadlineExceeded = deadline.Load()
	res.OtherStatus = other.Load()
	res.TransportErrors = transport.Load()
	res.ThroughputRPS = float64(total) / elapsed.Seconds()

	var hitLat, missLat []time.Duration
	for i, c := range classes {
		switch c {
		case 'h':
			res.CacheHits++
			hitLat = append(hitLat, latencies[i])
		case 'm':
			res.CacheMisses++
			missLat = append(missLat, latencies[i])
		case 'c':
			res.CacheCoalesced++
		}
	}
	if cached := res.CacheHits + res.CacheMisses + res.CacheCoalesced; cached > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(cached)
	}
	res.HitP50Ms = p50ms(hitLat)
	res.MissP50Ms = p50ms(missLat)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	res.P50Ms = pct(0.50)
	res.P99Ms = pct(0.99)
	res.MaxMs = float64(latencies[len(latencies)-1]) / float64(time.Millisecond)
	return res
}

// multipartSubmission encodes one document as a multipart file-upload
// request body (the gateway's upload field, plus the format field when
// one is requested). Upload is the transport the siege measures the
// gateway through: unlike a url-encoded paste it ships the document
// bytes verbatim, so latency numbers reflect lint and cache work, not
// percent-encoding on both ends.
func multipartSubmission(doc, format string) (body []byte, contentType string) {
	var b bytes.Buffer
	w := multipart.NewWriter(&b)
	fw, err := w.CreateFormFile("upload", "siege.html")
	if err == nil {
		_, err = io.WriteString(fw, doc)
	}
	if err == nil && format != "" && format != "html" {
		err = w.WriteField("format", format)
	}
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Purely in-memory encoding: the only failures are programming
		// errors, which should stop the run loudly.
		panic(err)
	}
	return b.Bytes(), w.FormDataContentType()
}

// p50ms returns the median of lat in milliseconds (0 for an empty
// class, which the report reads as "no such responses").
func p50ms(lat []time.Duration) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return float64(lat[len(lat)/2]) / float64(time.Millisecond)
}
