// Command weblint-siege load-tests a running weblint gateway: it
// generates a corpus of synthetic HTML documents, POSTs them as
// pasted-HTML submissions at one or more concurrency levels, and
// reports latency percentiles alongside the outcome counts that the
// serving defences produce — 429 (shed by admission control), 504
// (lint budget exceeded), and transport errors. The admission and
// budget counters are first-class results, not failures: a hardened
// gateway under overload is *supposed* to shed load fast.
//
// Usage:
//
//	weblint-siege [-url http://localhost:8017/] [-conns 1,4,16]
//	              [-requests 200] [-doc-bytes 16384] [-error-rate 0.05]
//	              [-timeout 30s] [-o BENCH_gateway.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"weblint/internal/corpus"
)

type levelResult struct {
	Conns            int     `json:"conns"`
	Requests         int     `json:"requests"`
	OK               int64   `json:"ok"`
	Rejected429      int64   `json:"rejected_429"`
	DeadlineExceeded int64   `json:"deadline_exceeded_504"`
	OtherStatus      int64   `json:"other_status"`
	TransportErrors  int64   `json:"transport_errors"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	MaxMs            float64 `json:"max_ms"`
	ThroughputRPS    float64 `json:"throughput_rps"`
}

type report struct {
	Benchmark string        `json:"benchmark"`
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	Gomaxprocs int          `json:"gomaxprocs"`
	Target    string        `json:"target"`
	DocBytes  int           `json:"doc_bytes"`
	Docs      int           `json:"corpus_docs"`
	Results   []levelResult `json:"results"`
}

func main() {
	target := flag.String("url", "http://localhost:8017/", "gateway URL to siege")
	connsFlag := flag.String("conns", "1,4,16", "comma-separated concurrency levels")
	requests := flag.Int("requests", 200, "requests per concurrency level")
	docBytes := flag.Int("doc-bytes", 16<<10, "approximate size of each generated document")
	errorRate := flag.Float64("error-rate", 0.05, "markup error rate in the generated corpus")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	var levels []int
	for _, s := range strings.Split(*connsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "weblint-siege: bad -conns entry %q\n", s)
			os.Exit(2)
		}
		levels = append(levels, n)
	}

	// A small rotating corpus: enough variety that responses differ,
	// deterministic so two siege runs are comparable.
	const corpusDocs = 16
	docs := make([]string, corpusDocs)
	for i := range docs {
		docs[i] = corpus.GenerateSized(int64(i+1), *docBytes, corpus.Uniform(*errorRate))
	}

	client := &http.Client{Timeout: *timeout}
	rep := report{
		Benchmark:  "gateway-siege",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Target:     *target,
		DocBytes:   *docBytes,
		Docs:       corpusDocs,
	}

	for _, conns := range levels {
		res := siege(client, *target, docs, conns, *requests)
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(os.Stderr,
			"conns=%-3d ok=%-4d 429=%-4d 504=%-4d err=%-3d p50=%.1fms p99=%.1fms %.1f req/s\n",
			conns, res.OK, res.Rejected429, res.DeadlineExceeded,
			res.TransportErrors+res.OtherStatus, res.P50Ms, res.P99Ms, res.ThroughputRPS)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "weblint-siege: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "weblint-siege: %v\n", err)
		os.Exit(1)
	}
}

// siege fires total requests at the gateway from conns workers and
// classifies every outcome.
func siege(client *http.Client, target string, docs []string, conns, total int) levelResult {
	res := levelResult{Conns: conns, Requests: total}
	latencies := make([]time.Duration, total)

	var next atomic.Int64
	var ok, rejected, deadline, other, transport atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				form := url.Values{"html": {docs[i%len(docs)]}}
				t0 := time.Now()
				resp, err := client.PostForm(target, form)
				latencies[i] = time.Since(t0)
				if err != nil {
					transport.Add(1)
					continue
				}
				// Drain so the connection is reused.
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					rejected.Add(1)
				case http.StatusGatewayTimeout:
					deadline.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.OK = ok.Load()
	res.Rejected429 = rejected.Load()
	res.DeadlineExceeded = deadline.Load()
	res.OtherStatus = other.Load()
	res.TransportErrors = transport.Load()
	res.ThroughputRPS = float64(total) / elapsed.Seconds()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	res.P50Ms = pct(0.50)
	res.P99Ms = pct(0.99)
	res.MaxMs = float64(latencies[len(latencies)-1]) / float64(time.Millisecond)
	return res
}
