package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"weblint/internal/corpus"
	"weblint/internal/gateway"
	"weblint/internal/serve"
)

// TestSiegeAgainstGateway drives the siege loop against a real
// in-process gateway and checks every outcome lands in a bucket.
func TestSiegeAgainstGateway(t *testing.T) {
	h := gateway.NewHandler(nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	docs := []string{corpus.GenerateSized(1, 4<<10, corpus.Uniform(0.05))}
	client := &http.Client{Timeout: 10 * time.Second}
	res := siege(client, srv.URL+"/", docs, 4, 32)

	if res.OK != 32 {
		t.Fatalf("ok = %d of 32 (429=%d 504=%d other=%d transport=%d)",
			res.OK, res.Rejected429, res.DeadlineExceeded, res.OtherStatus, res.TransportErrors)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms || res.MaxMs < res.P99Ms {
		t.Fatalf("implausible percentiles: p50=%v p99=%v max=%v", res.P50Ms, res.P99Ms, res.MaxMs)
	}
	if res.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", res.ThroughputRPS)
	}
}

// TestSiegeClassifies429 saturates a one-slot zero-wait gateway and
// checks shed requests are counted as rejections, not errors.
func TestSiegeClassifies429(t *testing.T) {
	h := gateway.NewHandler(nil)
	h.Limiter = serve.NewLimiter(1, 0)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// A document big enough that lints overlap under 8 connections.
	docs := []string{corpus.GenerateSized(1, 256<<10, corpus.Uniform(0.05))}
	client := &http.Client{Timeout: 10 * time.Second}
	res := siege(client, srv.URL+"/", docs, 8, 64)

	if res.TransportErrors != 0 || res.OtherStatus != 0 {
		t.Fatalf("unexpected failures: other=%d transport=%d", res.OtherStatus, res.TransportErrors)
	}
	if res.OK+res.Rejected429 != 64 {
		t.Fatalf("ok=%d + 429=%d != 64", res.OK, res.Rejected429)
	}
	if res.Rejected429 == 0 {
		t.Error("one slot with no queue under 8 connections shed nothing")
	}
}
