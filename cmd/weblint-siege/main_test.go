package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"weblint/internal/corpus"
	"weblint/internal/gateway"
	"weblint/internal/resultcache"
	"weblint/internal/serve"
)

// TestSiegeAgainstGateway drives the siege loop against a real
// in-process gateway and checks every outcome lands in a bucket.
func TestSiegeAgainstGateway(t *testing.T) {
	h := gateway.NewHandler(nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	docs := []string{corpus.GenerateSized(1, 4<<10, corpus.Uniform(0.05))}
	client := &http.Client{Timeout: 10 * time.Second}
	res := siege(client, srv.URL+"/", docs, 4, 32, "html")

	if res.OK != 32 {
		t.Fatalf("ok = %d of 32 (429=%d 504=%d other=%d transport=%d)",
			res.OK, res.Rejected429, res.DeadlineExceeded, res.OtherStatus, res.TransportErrors)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms || res.MaxMs < res.P99Ms {
		t.Fatalf("implausible percentiles: p50=%v p99=%v max=%v", res.P50Ms, res.P99Ms, res.MaxMs)
	}
	if res.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", res.ThroughputRPS)
	}
}

// TestSiegeClassifies429 saturates a one-slot zero-wait gateway and
// checks shed requests are counted as rejections, not errors.
func TestSiegeClassifies429(t *testing.T) {
	h := gateway.NewHandler(nil)
	h.Limiter = serve.NewLimiter(1, 0)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// A document big enough that lints overlap under 8 connections.
	docs := []string{corpus.GenerateSized(1, 256<<10, corpus.Uniform(0.05))}
	client := &http.Client{Timeout: 10 * time.Second}
	res := siege(client, srv.URL+"/", docs, 8, 64, "html")

	if res.TransportErrors != 0 || res.OtherStatus != 0 {
		t.Fatalf("unexpected failures: other=%d transport=%d", res.OtherStatus, res.TransportErrors)
	}
	if res.OK+res.Rejected429 != 64 {
		t.Fatalf("ok=%d + 429=%d != 64", res.OK, res.Rejected429)
	}
	if res.Rejected429 == 0 {
		t.Error("one slot with no queue under 8 connections shed nothing")
	}
}

// TestSiegeClassifiesCacheDispositions drives the siege loop against
// a cached gateway: repeats of one document must classify as one miss
// plus hits, and the server-side counters must reconcile exactly with
// the client-side classification.
func TestSiegeClassifiesCacheDispositions(t *testing.T) {
	h := gateway.NewHandler(nil)
	h.Cache = resultcache.New(1 << 20)
	h.Metrics = gateway.NewMetrics()
	srv := httptest.NewServer(h.Mux(nil, nil))
	defer srv.Close()

	docs := []string{corpus.GenerateSized(1, 4<<10, corpus.Uniform(0.05))}
	client := &http.Client{Timeout: 10 * time.Second}
	res := siege(client, srv.URL+"/", docs, 1, 16, "json")

	if res.OK != 16 {
		t.Fatalf("ok = %d of 16", res.OK)
	}
	if res.CacheMisses != 1 || res.CacheHits != 15 || res.CacheCoalesced != 0 {
		t.Fatalf("classification: miss=%d hit=%d coalesced=%d, want 1/15/0",
			res.CacheMisses, res.CacheHits, res.CacheCoalesced)
	}
	if res.CacheHitRate < 0.93 || res.CacheHitRate > 0.94 {
		t.Fatalf("hit rate = %v, want 15/16", res.CacheHitRate)
	}
	if res.HitP50Ms <= 0 || res.MissP50Ms <= 0 {
		t.Fatalf("split p50s missing: hit=%v miss=%v", res.HitP50Ms, res.MissP50Ms)
	}
	if h.Metrics.CacheHits.Value() != res.CacheHits ||
		h.Metrics.CacheMisses.Value() != res.CacheMisses ||
		h.Metrics.CacheCoalesced.Value() != res.CacheCoalesced {
		t.Fatalf("server counters (h=%d m=%d c=%d) do not reconcile with the client's (h=%d m=%d c=%d)",
			h.Metrics.CacheHits.Value(), h.Metrics.CacheMisses.Value(), h.Metrics.CacheCoalesced.Value(),
			res.CacheHits, res.CacheMisses, res.CacheCoalesced)
	}
}

// TestBuildSchedule pins the schedule generator's contract: ratio 0
// is the legacy rotating corpus; a repeat-heavy ratio produces a
// schedule whose duplicate fraction can actually hit the cache; and
// the schedule is deterministic across runs.
func TestBuildSchedule(t *testing.T) {
	legacy := buildSchedule(16, 1<<10, 0.05, 0, 100)
	if len(legacy) != 16 {
		t.Fatalf("ratio 0 produced %d docs, want the 16-doc rotating corpus", len(legacy))
	}

	const total = 200
	s1 := buildSchedule(16, 1<<10, 0.05, 0.8, total)
	s2 := buildSchedule(16, 1<<10, 0.05, 0.8, total)
	if len(s1) != total {
		t.Fatalf("schedule length = %d, want %d", len(s1), total)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("schedule is not deterministic across runs")
		}
	}
	seen := map[string]int{}
	for _, d := range s1 {
		seen[d]++
	}
	repeats := 0
	for _, n := range seen {
		if n > 1 {
			repeats += n
		}
	}
	// At ratio 0.8 roughly 80% of requests re-submit a popular doc;
	// allow slack for the seeded draw.
	if float64(repeats)/total < 0.7 {
		t.Fatalf("only %d/%d requests are repeats at ratio 0.8", repeats, total)
	}
}
