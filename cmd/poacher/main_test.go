package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"weblint/internal/corpus"
)

// capture runs poacher's main loop with stdout redirected.
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run(args)
	_ = w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(r)
	return code, buf.String()
}

func testSite(t *testing.T) *httptest.Server {
	t.Helper()
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 21, Pages: 8, BrokenLinks: 1, Subdirs: 1,
		Errors: corpus.ErrorRates{Misspell: 0.3},
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimPrefix(r.URL.Path, "/")
		if path == "" {
			path = "index.html"
		}
		body, ok := pages[path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, body)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestPoacherCrawlReportsProblems(t *testing.T) {
	srv := testSite(t)
	code, out := capture(t, "-s", srv.URL+"/")
	if code != 1 {
		t.Errorf("exit = %d, want 1 (problems found)", code)
	}
	if !strings.Contains(out, "unknown element") {
		t.Errorf("lint output missing: %s", out)
	}
	if !strings.Contains(out, "HTTP 404") {
		t.Errorf("broken link missing: %s", out)
	}
	if !strings.Contains(out, "pages fetched:") {
		t.Errorf("summary missing: %s", out)
	}
}

func TestPoacherQuiet(t *testing.T) {
	srv := testSite(t)
	_, out := capture(t, "-q", "-s", srv.URL+"/")
	if strings.Contains(out, "checking ") || strings.Contains(out, "pages fetched:") {
		t.Errorf("-q still printed progress: %s", out)
	}
}

func TestPoacherMaxPages(t *testing.T) {
	srv := testSite(t)
	_, out := capture(t, "-max-pages", "3", srv.URL+"/")
	if !strings.Contains(out, "pages fetched: 3") {
		t.Errorf("max-pages ignored: %s", out)
	}
}

func TestPoacherUsage(t *testing.T) {
	code, _ := capture(t)
	if code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	code, _ = capture(t, "http://a/", "http://b/")
	if code != 2 {
		t.Errorf("two-args exit = %d, want 2", code)
	}
}

func TestPoacherBadStartURL(t *testing.T) {
	code, _ := capture(t, "ftp://example.org/")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}
