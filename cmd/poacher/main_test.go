package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"weblint/internal/baseline"
	"weblint/internal/corpus"
)

// capture runs poacher's main loop with stdout redirected.
func capture(t *testing.T, args ...string) (int, string) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run(args)
	_ = w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(r)
	return code, buf.String()
}

func testSite(t *testing.T) *httptest.Server {
	t.Helper()
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 21, Pages: 8, BrokenLinks: 1, Subdirs: 1,
		Errors: corpus.ErrorRates{Misspell: 0.3},
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimPrefix(r.URL.Path, "/")
		if path == "" {
			path = "index.html"
		}
		body, ok := pages[path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, body)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestPoacherCrawlReportsProblems(t *testing.T) {
	srv := testSite(t)
	code, out := capture(t, "-s", srv.URL+"/")
	if code != 1 {
		t.Errorf("exit = %d, want 1 (problems found)", code)
	}
	if !strings.Contains(out, "unknown element") {
		t.Errorf("lint output missing: %s", out)
	}
	if !strings.Contains(out, "HTTP 404") {
		t.Errorf("broken link missing: %s", out)
	}
	if !strings.Contains(out, "pages fetched:") {
		t.Errorf("summary missing: %s", out)
	}
}

func TestPoacherQuiet(t *testing.T) {
	srv := testSite(t)
	_, out := capture(t, "-q", "-s", srv.URL+"/")
	if strings.Contains(out, "checking ") || strings.Contains(out, "pages fetched:") {
		t.Errorf("-q still printed progress: %s", out)
	}
}

func TestPoacherMaxPages(t *testing.T) {
	srv := testSite(t)
	_, out := capture(t, "-max-pages", "3", srv.URL+"/")
	if !strings.Contains(out, "pages fetched: 3") {
		t.Errorf("max-pages ignored: %s", out)
	}
}

func TestPoacherUsage(t *testing.T) {
	code, _ := capture(t)
	if code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	code, _ = capture(t, "http://a/", "http://b/")
	if code != 2 {
		t.Errorf("two-args exit = %d, want 2", code)
	}
}

func TestPoacherBadStartURL(t *testing.T) {
	code, _ := capture(t, "ftp://example.org/")
	if code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestPoacherJSONFormat: -format json keeps stdout a pure JSON Lines
// diagnostics stream (progress and stats move to stderr) and reports
// broken pages as bad-link findings.
func TestPoacherJSONFormat(t *testing.T) {
	srv := testSite(t)
	code, out := capture(t, "-format", "json", srv.URL+"/")
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	sawLint, sawBroken := false, false
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		var m struct {
			ID       string `json:"id"`
			Category string `json:"category"`
			File     string `json:"file"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("stdout line %q is not JSON: %v", line, err)
		}
		if m.ID == "bad-link" && m.Category == "error" {
			sawBroken = true
		}
		if m.ID == "unknown-element" {
			sawLint = true
		}
	}
	if !sawLint || !sawBroken {
		t.Errorf("stream missing findings (lint=%v broken=%v):\n%s", sawLint, sawBroken, out)
	}
}

// TestPoacherFailOn: -fail-on never reports but exits 0.
func TestPoacherFailOn(t *testing.T) {
	srv := testSite(t)
	code, out := capture(t, "-fail-on", "never", "-s", srv.URL+"/")
	if code != 0 {
		t.Errorf("exit = %d, want 0 under -fail-on never", code)
	}
	if !strings.Contains(out, "unknown element") {
		t.Errorf("findings still reported under -fail-on never: %s", out)
	}
	if code, _ := capture(t, "-fail-on", "fatal", srv.URL+"/"); code != 2 {
		t.Errorf("bad -fail-on exit = %d, want 2", code)
	}
}

// TestPoacherStopsOnClosedPipe: when stdout goes away mid-crawl (the
// `poacher ... | head` case), the renderer sink cancels and the crawl
// stops promptly instead of fetching the rest of the site.
func TestPoacherStopsOnClosedPipe(t *testing.T) {
	var served atomic.Int32
	var srvURL string
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Header().Set("Content-Type", "text/html")
		// Broken page (no doctype/title) with a link chain, so every
		// page writes findings and extends the frontier.
		fmt.Fprintf(w, `<HTML><BODY><A HREF="%s/p%d">next</A></BODY></HTML>`, srvURL, served.Load())
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	srvURL = srv.URL

	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Close() // reader gone: the first flushed write fails
	os.Stdout = w
	code := run([]string{"-q", "-max-pages", "200", srvURL + "/"})
	_ = w.Close()
	os.Stdout = old

	if code != 2 {
		t.Errorf("exit = %d, want 2 (write failure is operational)", code)
	}
	if n := served.Load(); n > 20 {
		t.Errorf("%d pages fetched after stdout closed; crawl did not cancel", n)
	}
}

// TestPoacherBaseline: record a crawl's findings, re-crawl against the
// baseline (exit 0, nothing reported), then confirm a fresh finding
// still fails.
func TestPoacherBaseline(t *testing.T) {
	srv := testSite(t)
	defer srv.Close()
	base := t.TempDir() + "/base.json"

	code, _ := capture(t, "-q", "-baseline-write", base, srv.URL+"/")
	if code != 0 {
		t.Fatalf("baseline-write exit = %d", code)
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	code, out := capture(t, "-q", "-baseline", base, srv.URL+"/")
	if code != 0 {
		t.Fatalf("baselined crawl exit = %d, out:\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("baselined crawl reported findings:\n%s", out)
	}

	// An empty baseline reports everything again.
	if err := os.WriteFile(base, baseline.New().Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out = capture(t, "-q", "-baseline", base, srv.URL+"/")
	if code != 1 || strings.TrimSpace(out) == "" {
		t.Fatalf("empty-baseline crawl exit = %d, out:\n%s", code, out)
	}
}
