// Command poacher is weblint's site-checking robot: it traverses all
// accessible pages on a site, runs weblint over each, and performs
// basic link validation, as described in the paper's Section 4.5.
//
// Usage:
//
//	poacher [-max-pages 200] [-delay 500ms] [-check-external] http://site/
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"weblint/internal/linkcheck"
	"weblint/internal/lint"
	"weblint/internal/robot"
	"weblint/internal/warn"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("poacher", flag.ContinueOnError)
	maxPages := fs.Int("max-pages", 200, "maximum pages to fetch")
	maxDepth := fs.Int("max-depth", 16, "maximum link depth")
	delay := fs.Duration("delay", 0, "politeness delay between requests")
	prefetch := fs.Int("prefetch", 4, "pages fetched ahead of the linter (1 disables pipelining)")
	checkExternal := fs.Bool("check-external", false, "also validate off-site links with HEAD requests")
	quiet := fs.Bool("q", false, "only report problems, not progress")
	short := fs.Bool("s", false, "short messages")
	pedantic := fs.Bool("pedantic", false, "enable all warnings")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: poacher [options] http://site/")
		return 2
	}
	start := fs.Arg(0)

	linter, err := lint.New(lint.Options{Pedantic: *pedantic})
	if err != nil {
		fmt.Fprintf(os.Stderr, "poacher: %v\n", err)
		return 2
	}
	var formatter warn.Formatter = warn.Lint{}
	if *short {
		formatter = warn.Short{}
	}

	r := robot.NewRobot()
	r.MaxPages = *maxPages
	r.MaxDepth = *maxDepth
	r.Delay = *delay
	r.Prefetch = *prefetch

	stats := robot.NewCrawlStats()
	problems := false
	external := map[string]bool{}

	_, err = r.Crawl(start, func(p robot.Page) {
		stats.Record(p)
		switch {
		case p.Err != nil:
			fmt.Printf("%s: fetch error: %v\n", p.URL, p.Err)
			problems = true
			return
		case p.Status != http.StatusOK:
			fmt.Printf("%s: HTTP %d\n", p.URL, p.Status)
			problems = true
			return
		}
		if !*quiet {
			fmt.Printf("checking %s (%d links)\n", p.URL, len(p.Links))
		}
		for _, m := range linter.CheckString(p.URL, p.Body) {
			fmt.Println(formatter.Format(m))
			problems = true
		}
		for _, l := range p.Links {
			if linkcheck.IsExternal(l.URL) {
				external[l.URL] = true
			}
		}
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "poacher: %v\n", err)
		return 2
	}

	if *checkExternal && len(external) > 0 {
		var urls []string
		for u := range external {
			urls = append(urls, u)
		}
		sort.Strings(urls)
		checker := &linkcheck.Checker{
			UserAgent: "poacher/2.0",
			Client:    &http.Client{Timeout: 10 * time.Second},
		}
		for u, res := range checker.CheckAll(urls) {
			if !res.OK {
				fmt.Printf("broken external link: %s\n", res.String())
				problems = true
			}
			_ = u
		}
	}

	if !*quiet {
		fmt.Print(stats.Summary())
	}
	if problems {
		return 1
	}
	return 0
}
