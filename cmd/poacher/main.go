// Command poacher is weblint's site-checking robot: it traverses all
// accessible pages on a site, runs weblint over each, and performs
// basic link validation, as described in the paper's Section 4.5.
//
// Diagnostics — lint findings, broken pages, broken external links —
// flow through one renderer sink, so the crawl can report as human
// text or as a machine-readable stream (-format json, -format sarif)
// for CI. Exit status follows -fail-on: 0 when no finding reaches the
// threshold, 1 when one does, 2 on operational errors.
//
// Usage:
//
//	poacher [-max-pages 200] [-delay 500ms] [-check-external] http://site/
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"weblint/internal/baseline"
	"weblint/internal/linkcheck"
	"weblint/internal/lint"
	"weblint/internal/render"
	"weblint/internal/robot"
	"weblint/internal/warn"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("poacher", flag.ContinueOnError)
	maxPages := fs.Int("max-pages", 200, "maximum pages to fetch")
	maxDepth := fs.Int("max-depth", 16, "maximum link depth")
	delay := fs.Duration("delay", 0, "politeness delay between requests")
	prefetch := fs.Int("prefetch", 4, "pages fetched ahead of the linter (1 disables pipelining)")
	checkExternal := fs.Bool("check-external", false, "also validate off-site links with HEAD requests")
	quiet := fs.Bool("q", false, "only report problems, not progress")
	short := fs.Bool("s", false, "short messages (same as -format short)")
	format := fs.String("format", "", "output format: lint, short, terse, verbose, json, sarif")
	failOn := fs.String("fail-on", "any", "lowest severity that fails the crawl: error, warning, style (or any), never")
	pedantic := fs.Bool("pedantic", false, "enable all warnings")
	baselineFile := fs.String("baseline", "", "report (and fail on) only findings not recorded in this baseline file")
	baselineWrite := fs.String("baseline-write", "", "record the crawl's findings to a baseline file; the crawl exits 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: poacher [options] http://site/")
		return 2
	}
	start := fs.Arg(0)

	style := *format
	if style == "" {
		style = "lint"
		if *short {
			style = "short"
		}
	}
	threshold, ok := warn.ParseFailOn(*failOn)
	if !ok {
		fmt.Fprintf(os.Stderr, "poacher: unknown -fail-on threshold %q\n", *failOn)
		return 2
	}

	linter, err := lint.New(lint.Options{Pedantic: *pedantic})
	if err != nil {
		fmt.Fprintf(os.Stderr, "poacher: %v\n", err)
		return 2
	}
	renderer, err := render.New(style, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "poacher: %v\n", err)
		return 2
	}
	var sum warn.Summary
	var sink warn.Sink = sum.Sink(renderer)
	// Baseline layers: the filter forwards only findings the baseline
	// does not cover (so the renderer and the exit policy see just the
	// new ones); the recorder — outermost — captures everything for
	// -baseline-write. Page bodies are handed to the fingerprinter
	// per page, below, so contexts hash the page actually crawled.
	pageSource := func(string) (string, bool) { return "", false }
	curSource := func(file string) (string, bool) { return pageSource(file) }
	if *baselineFile != "" {
		base, err := baseline.Load(*baselineFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "poacher: %v\n", err)
			return 2
		}
		sink = baseline.NewFilter(base, sink, curSource)
	}
	var rec *baseline.Recorder
	if *baselineWrite != "" {
		rec = baseline.NewRecorder(sink, curSource)
		sink = rec
	}
	// write honours the sink contract: once the renderer cancels,
	// nothing more is written and the crawl stops instead of politely
	// fetching pages nobody will see. Line-based renderers cancel as
	// soon as the output dies (closed pipe); sarif only writes at
	// Close, so a dead output surfaces there as an exit-2 error.
	cancelled := false
	write := func(m warn.Message) bool {
		if cancelled {
			return false
		}
		if !sink.Write(m) {
			cancelled = true
		}
		return !cancelled
	}

	// Machine-readable stdout must stay a pure diagnostics document:
	// progress and crawl statistics move to stderr for json/sarif.
	aux := os.Stdout
	if style == "json" || style == "sarif" {
		aux = os.Stderr
	}

	r := robot.NewRobot()
	r.MaxPages = *maxPages
	r.MaxDepth = *maxDepth
	r.Delay = *delay
	r.Prefetch = *prefetch

	stats := robot.NewCrawlStats()
	external := map[string]bool{}

	_, err = r.CrawlWhile(start, func(p robot.Page) bool {
		stats.Record(p)
		switch {
		case p.Err != nil:
			return write(warn.Message{
				ID: "bad-link", Category: warn.Error,
				File: p.URL, Line: 1,
				Text: fmt.Sprintf("fetch error: %v", p.Err),
			})
		case p.Status != http.StatusOK:
			return write(warn.Message{
				ID: "bad-link", Category: warn.Error,
				File: p.URL, Line: 1,
				Text: fmt.Sprintf("HTTP %d", p.Status),
			})
		}
		if !*quiet {
			fmt.Fprintf(aux, "checking %s (%d links)\n", p.URL, len(p.Links))
		}
		pageSource = baseline.StaticSource(p.URL, p.Body)
		for _, m := range linter.CheckString(p.URL, p.Body) {
			if !write(m) {
				return false
			}
		}
		for _, l := range p.Links {
			if linkcheck.IsExternal(l.URL) {
				external[l.URL] = true
			}
		}
		return true
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "poacher: %v\n", err)
		return 2
	}

	if *checkExternal && !cancelled && len(external) > 0 {
		var urls []string
		for u := range external {
			urls = append(urls, u)
		}
		sort.Strings(urls)
		checker := &linkcheck.Checker{
			UserAgent: "poacher/2.0",
			Client:    &http.Client{Timeout: 10 * time.Second},
		}
		results := checker.CheckAll(urls)
		for _, u := range urls { // sorted: deterministic stream order
			if res, ok := results[u]; ok && !res.OK {
				if !write(warn.Message{
					ID: "bad-link", Category: warn.Error,
					File: res.URL, Line: 1,
					Text: "broken external link: " + res.String(),
				}) {
					break
				}
			}
		}
	}

	if err := renderer.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "poacher: %v\n", err)
		return 2
	}
	if !*quiet {
		fmt.Fprint(aux, stats.Summary())
	}
	if rec != nil {
		if err := rec.File().WriteFile(*baselineWrite); err != nil {
			fmt.Fprintf(os.Stderr, "poacher: %v\n", err)
			return 2
		}
		return 0
	}
	if sum.Failures(threshold) > 0 {
		return 1
	}
	return 0
}
