// Command weblint-lsp is weblint's Language Server Protocol server:
// it speaks LSP over stdio, publishing weblint diagnostics as the
// author edits and offering the machine-applicable fixes as quick
// fix code actions. Point any LSP client at the binary — see
// examples/editor-lsp for VS Code and Neovim configurations.
//
// Usage:
//
//	weblint-lsp [-debounce 200ms] [-log]
//
// The server reads LSP framing from stdin and writes it to stdout;
// -log echoes server-side events (configuration problems, protocol
// noise) to stderr, which LSP clients surface in their log panes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"weblint/internal/lsp"
)

const version = "weblint-lsp 2.0 (Go)"

func main() {
	fs := flag.NewFlagSet("weblint-lsp", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	debounce := fs.Duration("debounce", 0, "re-lint delay after the last change (default 200ms)")
	verbose := fs.Bool("log", false, "log server events to stderr")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *showVersion {
		fmt.Println(version)
		return
	}

	opts := lsp.Options{DebounceDelay: *debounce}
	if *verbose {
		logger := log.New(os.Stderr, "weblint-lsp: ", log.LstdFlags)
		opts.Logf = logger.Printf
	}
	if err := lsp.NewServer(opts).Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "weblint-lsp: %v\n", err)
		os.Exit(1)
	}
}
