// Command weblint-gateway serves the weblint web gateway: a form
// where you provide HTML by entering a URL, pasting in the text, or
// through file upload, and get the weblint report back as a web page.
//
// Usage:
//
//	weblint-gateway [-addr :8017] [-no-url-fetch] [-pedantic] [-x vendors]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"weblint/internal/config"
	"weblint/internal/gateway"
	"weblint/internal/lint"
)

func main() {
	addr := flag.String("addr", ":8017", "listen address")
	noURL := flag.Bool("no-url-fetch", false, "disable check-by-URL (for firewalled intranet use)")
	pedantic := flag.Bool("pedantic", false, "enable all warnings")
	exts := flag.String("x", "", "enable vendor extensions (netscape, microsoft)")
	htmlVer := flag.String("V", "", "HTML version to check against (4.0 or 3.2)")
	flag.Parse()

	settings := config.NewSettings()
	if *htmlVer != "" {
		settings.HTMLVersion = *htmlVer
	}
	if *exts != "" {
		settings.Extensions = append(settings.Extensions, *exts)
	}

	linter, err := lint.New(lint.Options{Settings: settings, Pedantic: *pedantic})
	if err != nil {
		fmt.Fprintf(os.Stderr, "weblint-gateway: %v\n", err)
		os.Exit(2)
	}

	h := gateway.NewHandler(linter)
	h.AllowURLFetch = !*noURL

	log.Printf("weblint gateway listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, h))
}
