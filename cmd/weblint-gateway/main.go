// Command weblint-gateway serves the weblint web gateway: a form
// where you provide HTML by entering a URL, pasting in the text, or
// through file upload, and get the weblint report back as a web page.
//
// The production stack wraps the gateway handler in the serving
// defences from internal/serve: bounded lint concurrency with a
// deadline-bounded admission queue (429 + Retry-After under
// saturation), a per-request lint budget (504), panic containment
// (500 for the crashing request only), a /healthz probe that flips to
// draining on shutdown, and graceful drain on SIGTERM.
//
// Repeat submissions are served from a content-addressed result cache
// (keyed on document hash + configuration fingerprint), concurrent
// identical submissions collapse into one lint, and /metrics exposes
// the serving stack in Prometheus text format.
//
// Usage:
//
//	weblint-gateway [-addr :8017] [-no-url-fetch] [-allow-private-fetch]
//	                [-pedantic] [-x vendors] [-V version]
//	                [-max-upload bytes] [-concurrency n] [-queue-wait d]
//	                [-lint-budget d] [-fetch-timeout d] [-drain-timeout d]
//	                [-cache-size bytes] [-cache-off] [-metrics=false]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"weblint/internal/config"
	"weblint/internal/fetch"
	"weblint/internal/gateway"
	"weblint/internal/lint"
	"weblint/internal/resultcache"
	"weblint/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8017", "listen address")
	noURL := flag.Bool("no-url-fetch", false, "disable check-by-URL (for firewalled intranet use)")
	allowPrivate := flag.Bool("allow-private-fetch", false,
		"let check-by-URL fetch private/loopback addresses (intranet gateways only)")
	pedantic := flag.Bool("pedantic", false, "enable all warnings")
	exts := flag.String("x", "", "enable vendor extensions (netscape, microsoft)")
	htmlVer := flag.String("V", "", "HTML version to check against (4.0 or 3.2)")
	maxUpload := flag.Int64("max-upload", 2<<20, "largest document accepted, in bytes (larger answers 413)")
	concurrency := flag.Int("concurrency", 2*runtime.GOMAXPROCS(0),
		"concurrent lints admitted; excess queues briefly then answers 429")
	queueWait := flag.Duration("queue-wait", 2*time.Second,
		"how long a submission may wait for a lint slot before 429")
	lintBudget := flag.Duration("lint-budget", 10*time.Second,
		"per-request lint + fetch budget; over budget answers 504 (0 = unlimited)")
	fetchTimeout := flag.Duration("fetch-timeout", 15*time.Second, "check-by-URL fetch timeout")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long in-flight requests get to finish after SIGTERM")
	cacheSize := flag.Int("cache-size", resultcache.DefaultMaxBytes,
		"result cache budget, in bytes")
	cacheOff := flag.Bool("cache-off", false,
		"disable the result cache and singleflight dedupe (every submission lints)")
	metricsOn := flag.Bool("metrics", true, "serve Prometheus metrics at /metrics")
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this SEPARATE address (e.g. 127.0.0.1:8018); empty disables profiling entirely")
	flag.Parse()

	settings := config.NewSettings()
	if *htmlVer != "" {
		settings.HTMLVersion = *htmlVer
	}
	if *exts != "" {
		settings.Extensions = append(settings.Extensions, *exts)
	}

	linter, err := lint.New(lint.Options{Settings: settings, Pedantic: *pedantic})
	if err != nil {
		fmt.Fprintf(os.Stderr, "weblint-gateway: %v\n", err)
		os.Exit(2)
	}

	h := gateway.NewHandler(linter)
	h.AllowURLFetch = !*noURL
	h.MaxUpload = *maxUpload
	h.Limiter = serve.NewLimiter(*concurrency, *queueWait)
	h.LintBudget = *lintBudget
	h.Fetcher = fetch.New(fetch.Options{
		Timeout:      *fetchTimeout,
		MaxBody:      *maxUpload,
		AllowPrivate: *allowPrivate,
		UserAgent:    "weblint-gateway/2.0",
	})
	if !*cacheOff {
		h.Cache = resultcache.New(*cacheSize)
	}
	if *metricsOn {
		h.Metrics = gateway.NewMetrics()
		h.Metrics.ObserveState(h.Limiter, h.Cache)
	}

	if *pprofAddr != "" {
		ln, err := startPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "weblint-gateway: pprof listener: %v\n", err)
			os.Exit(2)
		}
		log.Printf("pprof profiling on http://%s/debug/pprof/ (keep this address private)", ln.Addr())
	}

	health := &serve.Health{}
	srv := &serve.Server{
		HTTP: &http.Server{
			Addr:    *addr,
			Handler: h.Mux(health, func(v any) { log.Printf("contained panic in check: %v", v) }),
			// Slow-client ceilings: a stalled peer cannot pin a
			// connection (and its lint slot budget) indefinitely.
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      60 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
		Health:       health,
		DrainTimeout: *drainTimeout,
	}

	cacheDesc := "cache off"
	if h.Cache != nil {
		cacheDesc = fmt.Sprintf("%d MiB cache", *cacheSize>>20)
	}
	log.Printf("weblint gateway listening on %s (%d lint slots, %s queue wait, %s lint budget, %s)",
		*addr, *concurrency, *queueWait, *lintBudget, cacheDesc)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("weblint-gateway: %v", err)
	}
}

// startPprof serves the net/http/pprof handlers on their own listener,
// on their own mux — never on the public gateway mux, so production
// flamegraphs are opt-in (-pprof-addr, typically loopback) and the
// default deployment exposes no profiling surface at all.
func startPprof(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("weblint-gateway: pprof server: %v", err)
		}
	}()
	return ln, nil
}
