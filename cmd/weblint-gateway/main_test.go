package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"weblint/internal/gateway"
	"weblint/internal/lint"
	"weblint/internal/serve"
)

// TestStartPprofServes asserts the opt-in profiling listener answers
// the pprof index and a (short) CPU profile on its own address.
func TestStartPprofServes(t *testing.T) {
	ln, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Fatal("pprof index returned an empty body")
	}

	// A real (1 second) CPU profile round trip, the endpoint the
	// production-flamegraph workflow depends on.
	resp2, err := client.Get(base + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof profile: status %d, want 200", resp2.StatusCode)
	}
	prof, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) == 0 {
		t.Fatal("pprof profile returned an empty body")
	}
}

// TestGatewayMuxStaysDark asserts the public gateway mux exposes no
// profiling surface: pprof rides only the separate -pprof-addr
// listener, and a default deployment has none at all. (The gateway
// serves its form page as a catch-all, so /debug/pprof/ paths answer
// with HTML — what must never appear there is pprof output.)
func TestGatewayMuxStaysDark(t *testing.T) {
	h := gateway.NewHandler(lint.MustNew(lint.Options{}))
	h.Limiter = serve.NewLimiter(1, time.Second)
	mux := h.Mux(&serve.Health{}, nil)

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/profile?seconds=1", "/debug/pprof/heap"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if ct := rec.Header().Get("Content-Type"); strings.Contains(ct, "application/octet-stream") {
			t.Errorf("%s on the public mux returned a binary profile (Content-Type %q)", path, ct)
		}
		if strings.Contains(rec.Body.String(), "Types of profiles available") {
			t.Errorf("%s on the public mux served the pprof index", path)
		}
	}
}
