package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestE12WritesReport runs the tokenizer corpus benchmark at its
// smallest settings and checks the BENCH_tokenizer.json contract the
// CI artifact depends on: a result row per (impl, workers) pair with
// positive throughput, and corpus/target sizes that add up.
func TestE12WritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness run")
	}
	dir := t.TempDir()
	jsonPath = filepath.Join(dir, "BENCH_tokenizer.json")
	corpusMB = 1
	totalMB = 1
	defer func() { jsonPath = ""; corpusMB = 8; totalMB = 64 }()

	e12()

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var report tokenizerReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if report.Benchmark != "tokenizer-corpus" || report.GoVersion == "" {
		t.Errorf("report header = %+v", report)
	}
	if report.CorpusBytes < 1<<20 || report.CorpusDocs == 0 {
		t.Errorf("corpus too small: %d bytes, %d docs", report.CorpusBytes, report.CorpusDocs)
	}
	if report.TargetBytes < report.CorpusBytes {
		t.Errorf("target %d < corpus %d", report.TargetBytes, report.CorpusBytes)
	}
	wantRows := 2 // workers 1 and 4
	if newReference != nil {
		wantRows *= 2
	}
	if len(report.Results) < wantRows {
		t.Fatalf("results = %d rows, want >= %d", len(report.Results), wantRows)
	}
	for _, r := range report.Results {
		if r.MBPerSec <= 0 || r.NsPerCorpus <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
}
