//go:build tokendiff

package main

import "weblint/internal/htmltoken"

// Under the tokendiff build tag the preserved per-byte tokenizer is
// available; wire it into e12 as the "before" measurement.
func init() {
	newReference = func() streamTokenizer { return htmltoken.NewReference("") }
}
