// Command weblint-bench regenerates the experiments in DESIGN.md's
// per-experiment index (E1-E9), printing paper-vs-measured rows. The
// paper ("Weblint: Just Another Perl Hack", USENIX 1998) has no
// numbered tables or figures; the experiments cover every quantified
// or exemplified claim in its text.
//
// Usage:
//
//	weblint-bench          # run every experiment
//	weblint-bench -e e5    # run one experiment
//	weblint-bench -e e11   # batch engine corpus throughput
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"weblint/internal/config"
	"weblint/internal/core"
	"weblint/internal/corpus"
	"weblint/internal/engine"
	"weblint/internal/htmltoken"
	"weblint/internal/lint"
	"weblint/internal/sitewalk"
	"weblint/internal/validator"
	"weblint/internal/warn"
)

// section42 is the paper's worked example, verbatim.
const section42 = `<HTML>
<HEAD>
<TITLE>example page
</HEAD>
<BODY BGCOLOR="fffff" TEXT=#00ff00>
<H1>My Example</H2>
Click <B><A HREF="a.html>here</B></A>
for more details.
</BODY>
</HTML>
`

// paperMessages are the seven outputs printed in Section 4.2 (with the
// paper's "#00ffoo" typo corrected to the value actually in the file).
var paperMessages = []string{
	"line 1: first element was not DOCTYPE specification",
	"line 4: no closing </TITLE> seen for <TITLE> on line 3",
	`line 5: value for attribute TEXT (#00ff00) of element BODY should be quoted (i.e. TEXT="#00ff00")`,
	"line 5: illegal value for BGCOLOR attribute of BODY (fffff)",
	"line 6: malformed heading - open tag is <H1>, but closing is </H2>",
	`line 7: odd number of quotes in element <A HREF="a.html>`,
	"line 7: </B> on line 7 seems to overlap <A>, opened on line 7.",
}

func main() {
	os.Exit(run())
}

// run holds main's body so deferred profile writers flush before the
// process exits with e13's curve-bend failure code.
func run() int {
	which := flag.String("e", "all", "experiment to run (e1..e14 or all)")
	flag.StringVar(&jsonPath, "json", "", "write e12/e13/e14 results as JSON to this path")
	flag.IntVar(&corpusMB, "corpus-mb", 8, "e12: synthetic corpus size in MB")
	flag.IntVar(&totalMB, "total-mb", 64, "e12: bytes to push through the tokenizer per row, in MB")
	flag.Float64Var(&scalingRate, "scaling-rate", 0.25, "e13: injected error rate for the scaling corpus")
	flag.Float64Var(&scalingMaxRatio, "scaling-max-ratio", 1.30,
		"e13: fail when per-byte lint cost grows more than this across one 4x size step")
	flag.Float64Var(&incrMaxFraction, "incremental-max-fraction", 0.10,
		"e14: fail when a single-line edit on the largest document re-lints slower than this fraction of a full lint")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "weblint-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			}
		}()
	}

	experiments := []struct {
		id   string
		name string
		run  func()
	}{
		{"e1", "Section 4.2 worked example", e1},
		{"e2", "message inventory (Section 4.3)", e2},
		{"e3", "output styles (Section 4.2)", e3},
		{"e4", "configuration layering (Section 4.4)", e4},
		{"e5", "cascade suppression ablation (Section 5.1)", e5},
		{"e6", "weblint vs strict SGML validation (Sections 2-3)", e6},
		{"e7", "throughput scaling", e7},
		{"e8", "-R site recursion (Section 4.5)", e8},
		{"e9", "robot traversal (Section 4.5)", e9},
		{"e10", "hot-path scaling (raw text + parallel gateway)", e10},
		{"e11", "batch engine corpus throughput", e11},
		{"e12", "tokenizer corpus throughput (BENCH_tokenizer.json)", e12},
		{"e13", "lint scaling curve on error-dense corpus (BENCH_scaling.json)", e13},
		{"e14", "incremental re-lint latency (BENCH_incremental.json)", e14},
	}

	ran := 0
	for _, ex := range experiments {
		if *which != "all" && !strings.EqualFold(*which, ex.id) {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", strings.ToUpper(ex.id), ex.name)
		ex.run()
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "weblint-bench: unknown experiment %q\n", *which)
		return 2
	}
	if scalingFailed || incrementalFailed {
		return 1
	}
	return 0
}

func e1() {
	l := lint.MustNew(lint.Options{})
	msgs := l.CheckString("test.html", section42)
	fmt.Printf("paper reports %d messages; measured %d\n", len(paperMessages), len(msgs))
	match := 0
	for i, m := range msgs {
		got := warn.Short{}.Format(m)
		status := "DIFFERS"
		if i < len(paperMessages) && got == paperMessages[i] {
			status = "exact"
			match++
		}
		fmt.Printf("  [%s] %s\n", status, got)
	}
	fmt.Printf("verbatim matches: %d/%d\n", match, len(paperMessages))
}

func e2() {
	total := warn.Count()
	enabled := warn.DefaultEnabledCount()
	byCat := warn.CountByCategory()
	fmt.Printf("%-28s %8s %8s\n", "", "paper", "measured")
	fmt.Printf("%-28s %8d %8d\n", "output messages", 50, total)
	fmt.Printf("%-28s %8d %8d\n", "enabled by default", 42, enabled)
	fmt.Printf("%-28s %8d %8d\n", "categories", 3, len(byCat))
	fmt.Printf("  errors=%d warnings=%d style=%d\n",
		byCat[warn.Error], byCat[warn.Warning], byCat[warn.Style])
	fmt.Println("(this implementation is a weblint-2-generation rewrite; the larger")
	fmt.Println(" inventory preserves the paper's shape: most enabled, style mostly off)")
}

func e3() {
	msgs := lint.MustNew(lint.Options{}).CheckString("test.html", section42)
	m := msgs[0]
	fmt.Printf("default (lint) : %s\n", warn.Lint{}.Format(m))
	fmt.Printf("-s (short)     : %s\n", warn.Short{}.Format(m))
	fmt.Printf("-t (terse)     : %s\n", warn.Terse{}.Format(m))
	v := warn.Verbose{}.Format(m)
	fmt.Printf("-v (verbose)   : %s\n", strings.Split(v, "\n")[0]+" ...")
}

func e4() {
	run := func(label string, layers ...string) {
		s := settingsFrom(layers...)
		l := lint.MustNew(lint.Options{Settings: s})
		msgs := l.CheckString("test.html", section42)
		fmt.Printf("  %-26s -> %d messages\n", label, len(msgs))
	}
	fmt.Println("layering site < user < command line on the Section 4.2 page:")
	run("defaults")
	run("site: disable errors", "disable errors")
	run("site + user re-enable", "disable errors", "enable odd-quotes element-overlap")
	run("site + user + cli off", "disable errors", "enable odd-quotes", "disable all")
}

func e5() {
	var withH, withoutH, docs int
	for seed := int64(0); seed < 50; seed++ {
		src := corpus.Generate(corpus.Config{
			Seed: seed, Sections: 6,
			Errors: corpus.ErrorRates{Overlap: 0.4, DropClose: 0.3},
		})
		withH += countMessages(src, false)
		withoutH += countMessages(src, true)
		docs++
	}
	fmt.Printf("corpus: %d documents with overlap and dropped-close injection\n", docs)
	fmt.Printf("%-32s %10s\n", "", "messages")
	fmt.Printf("%-32s %10d (%.1f/doc)\n", "heuristics on (weblint)", withH, float64(withH)/float64(docs))
	fmt.Printf("%-32s %10d (%.1f/doc)\n", "heuristics ablated", withoutH, float64(withoutH)/float64(docs))
	fmt.Printf("cascade reduction: %.2fx fewer messages for the same defects\n",
		float64(withoutH)/float64(withH))
	fmt.Println("(paper: heuristics exist \"to minimise the number of warning cascades\")")
}

func e6() {
	var lintN, strictN, docs int
	v := validator.New(nil)
	for seed := int64(0); seed < 30; seed++ {
		src := corpus.Generate(corpus.Config{
			Seed: seed, Sections: 5,
			Errors: corpus.ErrorRates{Misspell: 0.4, Overlap: 0.4, DropClose: 0.3},
		})
		lintN += countMessages(src, false)
		strictN += len(v.Validate("g.html", src))
		docs++
	}
	fmt.Printf("corpus: %d defective documents\n", docs)
	fmt.Printf("%-32s %10.1f msgs/doc\n", "weblint (heuristic)", float64(lintN)/float64(docs))
	fmt.Printf("%-32s %10.1f msgs/doc\n", "strict SGML validator", float64(strictN)/float64(docs))
	fmt.Printf("message volume ratio: %.2fx\n", float64(strictN)/float64(lintN))
	src := corpus.Generate(corpus.Config{Seed: 3, Sections: 2,
		Errors: corpus.ErrorRates{Misspell: 1}})
	fmt.Println("wording contrast on the same defect:")
	em := warn.NewEmitter(nil)
	core.Check(src, em, core.Options{Filename: "g.html"})
	if ms := em.Messages(); len(ms) > 0 {
		fmt.Printf("  weblint: %s\n", ms[0].Text)
	}
	if ms := v.Validate("g.html", src); len(ms) > 0 {
		fmt.Printf("  strict : %s\n", ms[0].Text)
	}
}

func e7() {
	l := lint.MustNew(lint.Options{})
	fmt.Printf("%-12s %12s %12s\n", "size", "time/doc", "MB/s")
	for _, size := range []int{1 << 10, 16 << 10, 128 << 10, 1 << 20} {
		src := corpus.GenerateSized(99, size, corpus.ErrorRates{})
		iters := 200
		if size >= 128<<10 {
			iters = 20
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			l.CheckString("g.html", src)
		}
		per := time.Since(start) / time.Duration(iters)
		mbs := float64(len(src)) / per.Seconds() / 1e6
		fmt.Printf("%-12s %12s %12.1f\n", fmt.Sprintf("%d KB", size/1024), per.Round(time.Microsecond), mbs)
	}
}

func e8() {
	root, err := os.MkdirTemp("", "weblint-e8")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer os.RemoveAll(root)
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 5, Pages: 30, Orphans: 2, BrokenLinks: 3, Subdirs: 3,
	})
	for rel, content := range pages {
		full := filepath.Join(root, filepath.FromSlash(rel))
		_ = os.MkdirAll(filepath.Dir(full), 0o755)
		_ = os.WriteFile(full, []byte(content), 0o644)
	}
	rep, err := sitewalk.Walk(root, sitewalk.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	counts := map[string]int{}
	for _, m := range rep.Messages {
		counts[m.ID]++
	}
	fmt.Printf("site: %d pages, planted 2 orphans, 3 broken targets, 2 index-less dirs\n", len(rep.Pages))
	fmt.Printf("%-20s %8s %8s\n", "check", "planted", "found")
	fmt.Printf("%-20s %8d %8d\n", "orphan-page", 2, counts["orphan-page"])
	fmt.Printf("%-20s %8d %8d\n", "no-index-file", 2, counts["no-index-file"])
	distinct := map[string]bool{}
	for _, m := range rep.Messages {
		if m.ID == "bad-link" {
			distinct[m.Text] = true
		}
	}
	fmt.Printf("%-20s %8d %8d (distinct targets)\n", "bad-link", 3, len(distinct))
}

func e9() {
	fmt.Println("robot experiment requires a live server; run the full version with:")
	fmt.Println("  go test -run TestE9Robot ./internal/robot/")
	fmt.Println("  go test -bench BenchmarkE9RobotCrawl .")
	fmt.Println("or crawl a real site with: poacher -max-pages 50 http://your-site/")
}

// e10 demonstrates the two scaling properties of the zero-allocation
// hot path: raw-text-heavy documents check in linear time (constant
// MB/s as they grow), and one shared Linter scales across goroutines
// the way the CGI gateway needs.
func e10() {
	l := lint.MustNew(lint.Options{})

	fmt.Println("raw-text scaling (constant MB/s = linear; the seed was quadratic):")
	fmt.Printf("  %-12s %12s %12s\n", "size", "time/doc", "MB/s")
	for _, blocks := range []int{8, 32, 128} {
		src := corpus.GenerateRawText(blocks)
		iters := 2000 / blocks
		start := time.Now()
		for i := 0; i < iters; i++ {
			l.CheckString("raw.html", src)
		}
		per := time.Since(start) / time.Duration(iters)
		mbs := float64(len(src)) / per.Seconds() / 1e6
		fmt.Printf("  %-12s %12s %12.1f\n",
			fmt.Sprintf("%d KB", len(src)/1024), per.Round(time.Microsecond), mbs)
	}

	fmt.Println("parallel gateway checking (one shared linter, N goroutines):")
	const docsPerWorker = 2000
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < docsPerWorker; i++ {
					l.CheckString("test.html", section42)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		total := workers * docsPerWorker
		fmt.Printf("  %2d goroutines: %8.0f docs/sec\n",
			workers, float64(total)/elapsed.Seconds())
	}
}

// e11 is the batch mode: corpus-level MB/s through the parallel
// engine, not single-document ns/op. It materialises a generated site
// tree and lints the whole corpus at increasing worker counts; on
// multi-core hardware MB/s scales with workers while the output
// remains byte-identical (results are delivered in input order).
func e11() {
	root, err := os.MkdirTemp("", "weblint-e11")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer os.RemoveAll(root)
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 17, Pages: 64, Subdirs: 4,
		Errors: corpus.ErrorRates{Overlap: 0.2, DropClose: 0.2},
	})
	var jobs []engine.Job
	var total int64
	var rels []string
	for rel := range pages {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		full := filepath.Join(root, filepath.FromSlash(rel))
		_ = os.MkdirAll(filepath.Dir(full), 0o755)
		_ = os.WriteFile(full, []byte(pages[rel]), 0o644)
		jobs = append(jobs, engine.Job{Path: full})
		total += int64(len(pages[rel]))
	}

	l := lint.MustNew(lint.Options{})
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	fmt.Printf("corpus: %d pages, %.1f KB total\n", len(jobs), float64(total)/1024)
	fmt.Printf("%-10s %12s %12s %10s\n", "workers", "time/corpus", "MB/s", "messages")
	const rounds = 10
	for _, workers := range workerCounts {
		eng := &engine.Engine{Linter: l, Workers: workers}
		msgs := 0
		start := time.Now()
		for i := 0; i < rounds; i++ {
			msgs = 0
			eng.Run(jobs, func(r engine.Result) bool {
				if r.Err != nil {
					fmt.Fprintln(os.Stderr, "weblint-bench:", r.Err)
					os.Exit(2)
				}
				msgs += len(r.Messages)
				return true
			})
		}
		per := time.Since(start) / rounds
		mbs := float64(total) / per.Seconds() / 1e6
		fmt.Printf("%-10d %12s %12.1f %10d\n", workers, per.Round(time.Microsecond), mbs, msgs)
	}
}

// e12 configuration, set from flags in main.
var (
	jsonPath string
	corpusMB int
	totalMB  int
)

// streamTokenizer is the seam e12 measures through: the production
// Tokenizer always, and — when the binary is built with
// -tags tokendiff — the preserved per-byte ReferenceTokenizer as the
// "before" row, so one binary produces the old-vs-new speedup.
type streamTokenizer interface {
	Reset(src string)
	NextInto(tok *htmltoken.Token) bool
}

// newReference is non-nil only under the tokendiff build tag
// (see reference_tokendiff.go).
var newReference func() streamTokenizer

// tokenizerResult is one row of BENCH_tokenizer.json.
type tokenizerResult struct {
	Impl        string  `json:"impl"`
	Workers     int     `json:"workers"`
	MBPerSec    float64 `json:"mb_per_s"`
	NsPerCorpus int64   `json:"ns_per_corpus"`
}

// tokenizerReport is the BENCH_tokenizer.json document.
type tokenizerReport struct {
	Benchmark      string            `json:"benchmark"`
	Date           string            `json:"date"`
	GoVersion      string            `json:"go_version"`
	GOMAXPROCS     int               `json:"gomaxprocs"`
	CorpusBytes    int64             `json:"corpus_bytes"`
	CorpusDocs     int               `json:"corpus_docs"`
	TargetBytes    int64             `json:"target_bytes"`
	Results        []tokenizerResult `json:"results"`
	SpeedupWorker1 float64           `json:"speedup_workers1,omitempty"`
}

// e12 is the tokenizer substrate benchmark behind the service-level
// numbers: whole-corpus MB/s at increasing worker counts, written to
// BENCH_tokenizer.json with -json. The corpus is a deterministic mix
// of clean, error-injected, and raw-text-heavy documents; each row
// streams -total-mb megabytes through per-worker tokenizers.
func e12() {
	var docs []string
	var corpusBytes int64
	target := int64(corpusMB) << 20
	for seed := int64(1); corpusBytes < target; seed++ {
		docs = append(docs, corpus.GenerateSized(seed, 384<<10, corpus.ErrorRates{}))
		docs = append(docs, corpus.GenerateSized(seed+100, 192<<10, corpus.Uniform(0.1)))
		docs = append(docs, corpus.GenerateRawText(128))
		corpusBytes = 0
		for _, d := range docs {
			corpusBytes += int64(len(d))
		}
	}
	rounds := (int64(totalMB)<<20 + corpusBytes - 1) / corpusBytes
	if rounds < 1 {
		rounds = 1
	}

	workerCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}

	impls := []struct {
		name string
		mk   func() streamTokenizer
	}{
		{"table-driven", func() streamTokenizer { return htmltoken.New("") }},
	}
	if newReference != nil {
		impls = append(impls, struct {
			name string
			mk   func() streamTokenizer
		}{"reference-per-byte", newReference})
	}

	report := tokenizerReport{
		Benchmark:   "tokenizer-corpus",
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CorpusBytes: corpusBytes,
		CorpusDocs:  len(docs),
		TargetBytes: rounds * corpusBytes,
	}

	fmt.Printf("corpus: %d documents, %.1f MB; %d passes per row\n",
		len(docs), float64(corpusBytes)/(1<<20), rounds)
	fmt.Printf("%-20s %8s %12s %12s\n", "impl", "workers", "time/corpus", "MB/s")
	for _, impl := range impls {
		for _, workers := range workerCounts {
			elapsed := tokenizeRounds(docs, impl.mk, workers, rounds)
			perCorpus := elapsed / time.Duration(rounds)
			mbs := float64(rounds*corpusBytes) / elapsed.Seconds() / 1e6
			report.Results = append(report.Results, tokenizerResult{
				Impl: impl.name, Workers: workers,
				MBPerSec: mbs, NsPerCorpus: perCorpus.Nanoseconds(),
			})
			fmt.Printf("%-20s %8d %12s %12.1f\n",
				impl.name, workers, perCorpus.Round(time.Microsecond), mbs)
		}
	}

	if newReference != nil {
		var newW1, refW1 float64
		for _, r := range report.Results {
			if r.Workers == 1 {
				switch r.Impl {
				case "table-driven":
					newW1 = r.MBPerSec
				case "reference-per-byte":
					refW1 = r.MBPerSec
				}
			}
		}
		if refW1 > 0 {
			report.SpeedupWorker1 = newW1 / refW1
			fmt.Printf("speedup at 1 worker: %.2fx\n", report.SpeedupWorker1)
		}
	} else {
		fmt.Println("(build with -tags tokendiff for the old-vs-new comparison row)")
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// tokenizeRounds streams the corpus `rounds` times through per-worker
// tokenizers, workers pulling whole passes from a shared counter, and
// returns the wall time.
func tokenizeRounds(docs []string, mk func() streamTokenizer, workers int, rounds int64) time.Duration {
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tz := mk()
			var tok htmltoken.Token
			for next.Add(1) <= rounds {
				for _, doc := range docs {
					tz.Reset(doc)
					n := 0
					for tz.NextInto(&tok) {
						n++
					}
					if n == 0 {
						fmt.Fprintln(os.Stderr, "weblint-bench: tokenizer produced no tokens")
						os.Exit(2)
					}
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// e13 configuration and outcome, set from flags / read by run.
var (
	scalingRate     float64
	scalingMaxRatio float64
	scalingFailed   bool
)

// scalingResult is one size row of BENCH_scaling.json.
type scalingResult struct {
	Bytes    int     `json:"bytes"`
	NsPerOp  int64   `json:"ns_per_op"`
	UsPerKiB float64 `json:"us_per_kib"`
	MBPerSec float64 `json:"mb_per_s"`
	Messages int     `json:"messages"`
}

// scalingRatio is the per-byte cost growth across one size step.
type scalingRatio struct {
	FromBytes    int     `json:"from_bytes"`
	ToBytes      int     `json:"to_bytes"`
	PerByteRatio float64 `json:"per_byte_ratio"`
}

// scalingReport is the BENCH_scaling.json document.
type scalingReport struct {
	Benchmark  string          `json:"benchmark"`
	Date       string          `json:"date"`
	GoVersion  string          `json:"go_version"`
	ErrorRate  float64         `json:"error_rate"`
	Results    []scalingResult `json:"results"`
	Ratios     []scalingRatio  `json:"ratios"`
	MaxRatio   float64         `json:"max_ratio"`
	RatioLimit float64         `json:"ratio_limit"`
	Pass       bool            `json:"pass"`
}

// e13 is the scaling-regression guard: it lints the same error-dense
// corpus shape at 64 KiB / 256 KiB / 1 MiB / 4 MiB and computes the
// per-byte cost ratio across each 4x size step. A linear checker holds
// the ratio near 1.0; the pre-fix checker's per-finding rescans bent
// the curve to ~2.2x per step at error rate 0.25. The run FAILS (exit
// 1) when any step exceeds -scaling-max-ratio, so a reintroduced
// superlinear path cannot land quietly. -json writes BENCH_scaling.json.
func e13() {
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}
	l := lint.MustNew(lint.Options{})
	report := scalingReport{
		Benchmark:  "lint-scaling-error-dense",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		ErrorRate:  scalingRate,
		RatioLimit: scalingMaxRatio,
	}

	fmt.Printf("error rate %.2f, per-byte cost across 4x size steps (limit %.2fx/step)\n",
		scalingRate, scalingMaxRatio)
	fmt.Printf("%-10s %14s %12s %12s %10s\n", "size", "time/doc", "µs/KiB", "MB/s", "messages")
	for _, size := range sizes {
		src := corpus.GenerateSized(7, size, corpus.Uniform(scalingRate))
		msgs := len(l.CheckString("g.html", src))
		// Equal-bytes budget per row: every size lints ~32 MiB total,
		// so small-document rows average over many iterations.
		iters := (32 << 20) / len(src)
		if iters < 3 {
			iters = 3
		}
		// Warm the pools before timing.
		l.CheckString("g.html", src)
		start := time.Now()
		for i := 0; i < iters; i++ {
			l.CheckString("g.html", src)
		}
		per := time.Since(start) / time.Duration(iters)
		kib := float64(len(src)) / 1024
		report.Results = append(report.Results, scalingResult{
			Bytes:    len(src),
			NsPerOp:  per.Nanoseconds(),
			UsPerKiB: float64(per.Microseconds()) / kib,
			MBPerSec: float64(len(src)) / per.Seconds() / 1e6,
			Messages: msgs,
		})
		r := report.Results[len(report.Results)-1]
		fmt.Printf("%-10s %14s %12.2f %12.1f %10d\n",
			fmt.Sprintf("%d KiB", size>>10), per.Round(time.Microsecond), r.UsPerKiB, r.MBPerSec, msgs)
	}

	report.Pass = true
	for i := 1; i < len(report.Results); i++ {
		prev, cur := report.Results[i-1], report.Results[i]
		ratio := cur.UsPerKiB / prev.UsPerKiB
		report.Ratios = append(report.Ratios, scalingRatio{
			FromBytes: prev.Bytes, ToBytes: cur.Bytes, PerByteRatio: ratio,
		})
		if ratio > report.MaxRatio {
			report.MaxRatio = ratio
		}
		status := "ok"
		if ratio > scalingMaxRatio {
			report.Pass = false
			status = "CURVE BENT"
		}
		fmt.Printf("per-byte ratio %4d KiB -> %4d KiB: %.2fx  [%s]\n",
			prev.Bytes>>10, cur.Bytes>>10, ratio, status)
	}
	if !report.Pass {
		fmt.Printf("FAIL: per-byte lint cost grew more than %.2fx across a size step — superlinear path reintroduced\n",
			scalingMaxRatio)
		scalingFailed = true
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// e14 configuration and outcome, set from flags / read by run.
var (
	incrMaxFraction   float64
	incrementalFailed bool
)

// incrementalResult is one (document size × edit kind) cell of
// BENCH_incremental.json.
type incrementalResult struct {
	DocBytes   int     `json:"doc_bytes"`
	Edit       string  `json:"edit"`
	EditBytes  int     `json:"edit_bytes"`
	FullLintNs int64   `json:"full_lint_ns"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
	Fraction   float64 `json:"p50_fraction_of_full"`
	Spliced    int     `json:"spliced"`
	FullTail   int     `json:"full_tail"`
}

// incrementalReport is the BENCH_incremental.json document.
type incrementalReport struct {
	Benchmark     string              `json:"benchmark"`
	Date          string              `json:"date"`
	GoVersion     string              `json:"go_version"`
	Results       []incrementalResult `json:"results"`
	GuardDocBytes int                 `json:"guard_doc_bytes"`
	GuardEdit     string              `json:"guard_edit"`
	GuardFraction float64             `json:"guard_fraction"`
	FractionLimit float64             `json:"fraction_limit"`
	Pass          bool                `json:"pass"`
}

// e14 is the incremental re-lint latency grid: edit size × document
// size, each cell timing lint.Session.Apply for an edit/revert cycle at
// steady state and reporting p50/p99 against the document's full-lint
// time. Every cell cross-checks that the session's findings stay
// byte-identical to a from-scratch lint — a splice that drifted would
// make the latency numbers meaningless. The run FAILS (exit 1) when the
// single-line edit on the largest document re-lints slower than
// -incremental-max-fraction of a full lint, so a regression that
// silently degrades every edit to a full-tail re-lint cannot land.
// -json writes BENCH_incremental.json.
func e14() {
	l := lint.MustNew(lint.Options{})
	report := incrementalReport{
		Benchmark:     "incremental-relint-latency",
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		FractionLimit: incrMaxFraction,
		Pass:          true,
	}

	docSizes := []int{64 << 10, 256 << 10, 1 << 20}
	guardDoc := docSizes[len(docSizes)-1]
	const guardEdit = "replace-line"
	block := strings.Repeat("<p>inserted block paragraph with some text in it.</p>\n", 20)[:1024]

	fmt.Printf("edit/revert cycles per cell, p50 vs full lint (guard: %s on %d KiB ≤ %.2fx full)\n",
		guardEdit, guardDoc>>10, incrMaxFraction)
	fmt.Printf("%-10s %-14s %12s %12s %12s %10s\n",
		"doc", "edit", "full-lint", "p50", "p99", "of-full")
	for _, size := range docSizes {
		src := corpus.GenerateSized(7, size, corpus.Uniform(0.05))

		// Full-lint reference for this document.
		fullIters := (8 << 20) / len(src)
		if fullIters < 3 {
			fullIters = 3
		}
		l.CheckString("incr.html", src) // warm pools
		start := time.Now()
		for i := 0; i < fullIters; i++ {
			l.CheckString("incr.html", src)
		}
		full := time.Since(start) / time.Duration(fullIters)

		// Pick a line mid-document to edit: start of the line after the
		// first newline past the midpoint.
		ls := strings.IndexByte(src[len(src)/2:], '\n') + len(src)/2 + 1
		le := ls + strings.IndexByte(src[ls:], '\n')

		for _, kind := range []struct {
			name string
			fwd  lint.Edit
		}{
			{"insert-1b", lint.Edit{Start: ls, End: ls, Text: "x"}},
			{guardEdit, lint.Edit{Start: ls, End: le, Text: "<p>edited line &amp; replacement text</p>"}},
			{"insert-1kib", lint.Edit{Start: ls, End: ls, Text: block}},
		} {
			rev := lint.Edit{Start: kind.fwd.Start, End: kind.fwd.Start + len(kind.fwd.Text), Text: src[kind.fwd.Start:kind.fwd.End]}
			s := lint.NewSession(l, "incr.html", src)
			s.Apply([]lint.Edit{kind.fwd}) // warm: first apply builds nothing extra but faults in paths
			s.Apply([]lint.Edit{rev})

			cycles := 50
			if size <= 64<<10 {
				cycles = 200
			}
			samples := make([]time.Duration, 0, 2*cycles)
			for i := 0; i < cycles; i++ {
				t0 := time.Now()
				s.Apply([]lint.Edit{kind.fwd})
				samples = append(samples, time.Since(t0))
				t0 = time.Now()
				s.Apply([]lint.Edit{rev})
				samples = append(samples, time.Since(t0))
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			p50 := samples[len(samples)/2]
			p99 := samples[len(samples)*99/100]

			// Inline correctness cross-check: after all those cycles the
			// text is back to src, and the findings must match a
			// from-scratch lint byte-for-byte.
			if s.Text() != src {
				fmt.Fprintln(os.Stderr, "weblint-bench: e14 edit/revert did not restore the document")
				os.Exit(2)
			}
			gotMsgs, wantMsgs := s.Messages(), l.CheckString("incr.html", src)
			if len(gotMsgs) != len(wantMsgs) {
				fmt.Fprintf(os.Stderr, "weblint-bench: e14 incremental diverged: %d vs %d messages\n", len(gotMsgs), len(wantMsgs))
				os.Exit(2)
			}
			var lf warn.Lint
			for i := range gotMsgs {
				if lf.Format(gotMsgs[i]) != lf.Format(wantMsgs[i]) {
					fmt.Fprintf(os.Stderr, "weblint-bench: e14 incremental diverged at message %d\n", i)
					os.Exit(2)
				}
			}

			st := s.Stats()
			frac := float64(p50) / float64(full)
			report.Results = append(report.Results, incrementalResult{
				DocBytes: len(src), Edit: kind.name, EditBytes: len(kind.fwd.Text),
				FullLintNs: full.Nanoseconds(),
				P50Ns:      p50.Nanoseconds(), P99Ns: p99.Nanoseconds(),
				Fraction: frac, Spliced: st.Spliced, FullTail: st.FullTail,
			})
			fmt.Printf("%-10s %-14s %12s %12s %12s %9.3fx\n",
				fmt.Sprintf("%d KiB", size>>10), kind.name,
				full.Round(time.Microsecond), p50.Round(time.Microsecond),
				p99.Round(time.Microsecond), frac)

			if size == guardDoc && kind.name == guardEdit {
				report.GuardDocBytes = size
				report.GuardEdit = guardEdit
				report.GuardFraction = frac
				if frac > incrMaxFraction {
					report.Pass = false
					incrementalFailed = true
				}
			}
		}
	}

	if !report.Pass {
		fmt.Printf("FAIL: %s on %d KiB re-lints at %.3fx of a full lint (limit %.2fx) — incremental path degraded\n",
			report.GuardEdit, report.GuardDocBytes>>10, report.GuardFraction, incrMaxFraction)
	}

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

func countMessages(src string, ablate bool) int {
	em := warn.NewEmitter(nil)
	core.Check(src, em, core.Options{
		Filename:                  "g.html",
		DisableCascadeSuppression: ablate,
		DisableImpliedClose:       ablate,
	})
	return len(em.Messages())
}

// settingsFrom builds layered settings from rc-syntax strings, one
// layer per argument, mirroring site/user/command-line stacking.
func settingsFrom(layers ...string) *config.Settings {
	s := config.NewSettings()
	for i, layer := range layers {
		cfg, err := config.Parse(strings.NewReader(layer), fmt.Sprintf("layer%d.rc", i))
		if err != nil {
			fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			os.Exit(2)
		}
		if err := s.Apply(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "weblint-bench:", err)
			os.Exit(2)
		}
	}
	return s
}
