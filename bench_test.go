package weblint

// The benchmark harness: one bench per experiment in DESIGN.md's
// per-experiment index (E1-E9). The paper has no numbered tables or
// figures, so the experiments cover every quantified or exemplified
// claim in its text; cmd/weblint-bench prints the paper-vs-measured
// rows and EXPERIMENTS.md records them.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"weblint/internal/config"
	"weblint/internal/core"
	"weblint/internal/corpus"
	"weblint/internal/dtd"
	"weblint/internal/engine"
	"weblint/internal/gateway"
	"weblint/internal/htmlspec"
	"weblint/internal/htmltoken"
	"weblint/internal/lint"
	"weblint/internal/robot"
	"weblint/internal/sitewalk"
	"weblint/internal/validator"
	"weblint/internal/warn"
)

// BenchmarkE1Section42Example checks the paper's Section 4.2 page —
// the tool's reference workload.
func BenchmarkE1Section42Example(b *testing.B) {
	l := lint.MustNew(lint.Options{})
	b.SetBytes(int64(len(section42)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(l.CheckString("test.html", section42)); got != 7 {
			b.Fatalf("got %d messages, want 7", got)
		}
	}
}

// BenchmarkE2RegistryLookup measures message registry operations (the
// enable/disable machinery every check goes through).
func BenchmarkE2RegistryLookup(b *testing.B) {
	set := warn.NewSet()
	ids := warn.IDs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		if warn.Lookup(id) == nil {
			b.Fatal("lost definition")
		}
		set.Enabled(id)
	}
}

// BenchmarkE3Formatters measures the output formatters over the
// Section 4.2 message set.
func BenchmarkE3Formatters(b *testing.B) {
	msgs := CheckString("test.html", section42)
	formatters := map[string]Formatter{
		"lint":    LintStyle,
		"short":   ShortStyle,
		"terse":   TerseStyle,
		"verbose": VerboseStyle,
	}
	for name, f := range formatters {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, m := range msgs {
					_ = f.Format(m)
				}
			}
		})
	}
}

// BenchmarkE4ConfigLoad measures configuration parsing and the
// three-layer application of Section 4.4.
func BenchmarkE4ConfigLoad(b *testing.B) {
	site := "disable img-alt here-anchor\nset title-length 40\nextension netscape\n"
	user := "enable here-anchor\nset title-length 80\nset tag-case upper\n"
	cli := "disable style\n"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := config.NewSettings()
		for _, layer := range []string{site, user, cli} {
			cfg, err := config.Parse(strings.NewReader(layer), "layer.rc")
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Apply(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE5CascadeHeuristics compares checking with the cascade
// suppression heuristics on and ablated, on the same defective corpus
// (Section 5.1's design goal).
func BenchmarkE5CascadeHeuristics(b *testing.B) {
	src := corpus.Generate(corpus.Config{
		Seed: 42, Sections: 16,
		Errors: corpus.ErrorRates{Overlap: 0.4, DropClose: 0.3},
	})
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"heuristics-on", false}, {"heuristics-off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			total := 0
			for i := 0; i < b.N; i++ {
				em := warn.NewEmitter(nil)
				core.Check(src, em, core.Options{
					Filename:                  "g.html",
					DisableCascadeSuppression: mode.disable,
					DisableImpliedClose:       mode.disable,
				})
				total += len(em.Messages())
			}
			b.ReportMetric(float64(total)/float64(b.N), "messages/doc")
		})
	}
}

// BenchmarkE6StrictValidator compares weblint's heuristic checking
// against the DTD-driven strict validator on the same documents (the
// Sections 2-3 contrast).
func BenchmarkE6StrictValidator(b *testing.B) {
	src := corpus.Generate(corpus.Config{
		Seed: 7, Sections: 16,
		Errors: corpus.ErrorRates{Misspell: 0.3, Overlap: 0.3, DropClose: 0.2},
	})
	b.Run("weblint", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		total := 0
		for i := 0; i < b.N; i++ {
			em := warn.NewEmitter(nil)
			core.Check(src, em, core.Options{Filename: "g.html"})
			total += len(em.Messages())
		}
		b.ReportMetric(float64(total)/float64(b.N), "messages/doc")
	})
	b.Run("strict", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		v := validator.New(nil)
		total := 0
		for i := 0; i < b.N; i++ {
			total += len(v.Validate("g.html", src))
		}
		b.ReportMetric(float64(total)/float64(b.N), "messages/doc")
	})
}

// BenchmarkE7Throughput measures checking throughput across document
// sizes — the "easy to run from a batch script" scaling claim.
func BenchmarkE7Throughput(b *testing.B) {
	for _, size := range []int{1 << 10, 16 << 10, 128 << 10, 1 << 20} {
		src := corpus.GenerateSized(99, size, corpus.ErrorRates{})
		name := fmt.Sprintf("size-%dKB", size/1024)
		b.Run(name, func(b *testing.B) {
			l := lint.MustNew(lint.Options{})
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.CheckString("g.html", src)
			}
		})
	}
}

// BenchmarkE7RawText measures raw-text-heavy checking across document
// sizes. With the allocation-free case-insensitive scan the cost is
// linear: MB/s holds roughly constant as the document grows. The seed
// implementation re-lower-cased everything after each SCRIPT block
// (quadratic total), so its MB/s fell in proportion to size.
func BenchmarkE7RawText(b *testing.B) {
	for _, blocks := range []int{4, 16, 64, 256} {
		src := corpus.GenerateRawText(blocks)
		b.Run(fmt.Sprintf("blocks-%d", blocks), func(b *testing.B) {
			l := lint.MustNew(lint.Options{})
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.CheckString("raw.html", src)
			}
		})
	}
}

// BenchmarkE9GatewayParallel is the gateway-shaped concurrency
// benchmark: many goroutines checking documents through one shared
// Linter, the way the CGI gateway serves requests. It exercises the
// shared-spec, pooled-state hot path across cores.
func BenchmarkE9GatewayParallel(b *testing.B) {
	l := lint.MustNew(lint.Options{})
	b.SetBytes(int64(len(section42)))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if got := len(l.CheckString("test.html", section42)); got != 7 {
				b.Errorf("got %d messages, want 7", got)
			}
		}
	})
}

// BenchmarkLinterNew measures linter construction. With the memoized
// shared specs this is O(1) — building a linter per request is cheap —
// where the seed rebuilt the whole HTML version table each time.
func BenchmarkLinterNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lint.MustNew(lint.Options{})
	}
}

// BenchmarkE7Tokenizer isolates the tokenizer substrate.
func BenchmarkE7Tokenizer(b *testing.B) {
	src := corpus.GenerateSized(99, 128<<10, corpus.ErrorRates{})
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		toks := htmltoken.Tokenize(src)
		if len(toks) == 0 {
			b.Fatal("no tokens")
		}
	}
}

// BenchmarkE7SpecVersions compares checking against HTML 4.0, HTML
// 3.2, and 4.0 with vendor extensions enabled (the version-module
// ablation).
func BenchmarkE7SpecVersions(b *testing.B) {
	src := corpus.GenerateSized(99, 64<<10, corpus.ErrorRates{})
	variants := map[string]func() *lint.Linter{
		"html40": func() *lint.Linter { return lint.MustNew(lint.Options{}) },
		"html32": func() *lint.Linter {
			s := config.NewSettings()
			s.HTMLVersion = "3.2"
			return lint.MustNew(lint.Options{Settings: s})
		},
		"html40+ext": func() *lint.Linter {
			s := config.NewSettings()
			s.Extensions = []string{"netscape", "microsoft"}
			return lint.MustNew(lint.Options{Settings: s})
		},
	}
	for name, mk := range variants {
		b.Run(name, func(b *testing.B) {
			l := mk()
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				l.CheckString("g.html", src)
			}
		})
	}
}

// BenchmarkE7DTDGeneratedSpec compares checking with the hand-written
// HTML 4.0 tables against checking with tables generated from the
// embedded DTD (the Section 6.1 "driving weblint with a DTD" path).
func BenchmarkE7DTDGeneratedSpec(b *testing.B) {
	src := corpus.GenerateSized(99, 64<<10, corpus.ErrorRates{})
	variants := map[string]*htmlspec.Spec{
		"hand-tables": htmlspec.HTML40(),
		"from-dtd":    htmlspec.FromDTD(dtd.HTML40(), "HTML 4.0"),
	}
	for name, spec := range variants {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				em := warn.NewEmitter(nil)
				core.Check(src, em, core.Options{Filename: "g.html", Spec: spec})
			}
		})
	}
	b.Run("spec-construction", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = htmlspec.FromDTD(dtd.HTML40(), "HTML 4.0")
		}
	})
}

// BenchmarkE8SiteWalk measures the -R site recursion over a 30-page
// site with defects.
func BenchmarkE8SiteWalk(b *testing.B) {
	root := b.TempDir()
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 5, Pages: 30, Orphans: 2, BrokenLinks: 3, Subdirs: 3,
	})
	for rel, content := range pages {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	l := lint.MustNew(lint.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := sitewalk.Walk(root, sitewalk.Options{Linter: l})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Pages) != 30 {
			b.Fatalf("pages = %d", len(rep.Pages))
		}
	}
}

// writeBenchSite materialises a generated site under a temp root and
// returns the root, the page paths in sorted order, and total bytes.
func writeBenchSite(b *testing.B, cfg corpus.SiteConfig) (root string, paths []string, bytes int64) {
	b.Helper()
	root = b.TempDir()
	pages := corpus.GenerateSite(cfg)
	for rel, content := range pages {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			b.Fatal(err)
		}
		paths = append(paths, full)
		bytes += int64(len(content))
	}
	sort.Strings(paths)
	return root, paths, bytes
}

// BenchmarkE10Batch measures the batch engine over a generated corpus
// tree: whole-corpus MB/s is the number the ROADMAP's fleet workloads
// care about. Run with -cpu 1,2,4 to see scaling; the worker count
// follows GOMAXPROCS, and results are always in input order.
func BenchmarkE10Batch(b *testing.B) {
	_, paths, total := writeBenchSite(b, corpus.SiteConfig{
		Seed: 17, Pages: 64, Subdirs: 4,
		Errors: corpus.ErrorRates{Overlap: 0.2, DropClose: 0.2},
	})
	jobs := make([]engine.Job, len(paths))
	for i, p := range paths {
		jobs[i] = engine.Job{Path: p}
	}
	eng := engine.New(lint.MustNew(lint.Options{}))
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		eng.Run(jobs, func(r engine.Result) bool {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			n++
			return true
		})
		if n != len(jobs) {
			b.Fatalf("delivered %d results", n)
		}
	}
}

// BenchmarkE9RobotCrawl measures the poacher robot over a 25-page
// httptest site, linting every page as it goes.
func BenchmarkE9RobotCrawl(b *testing.B) {
	pages := corpus.GenerateSite(corpus.SiteConfig{Seed: 11, Pages: 25, Subdirs: 2})
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimPrefix(r.URL.Path, "/")
		if path == "" {
			path = "index.html"
		}
		body, ok := pages[path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, body)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	l := lint.MustNew(lint.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := robot.NewRobot()
		r.Client = srv.Client()
		r.Prefetch = 4
		fetched, err := r.Crawl(srv.URL+"/", func(p robot.Page) {
			if p.Status == http.StatusOK {
				l.CheckString(p.URL, p.Body)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		if fetched != 25 {
			b.Fatalf("fetched = %d", fetched)
		}
	}
}

// BenchmarkE8SiteWalkParallel is E8 with the parallel per-page phase:
// same 30-page site, Workers following GOMAXPROCS (run with
// -cpu 1,2,4). The Report is identical to the sequential walk's.
func BenchmarkE8SiteWalkParallel(b *testing.B) {
	root, _, total := writeBenchSite(b, corpus.SiteConfig{
		Seed: 5, Pages: 30, Orphans: 2, BrokenLinks: 3, Subdirs: 3,
	})
	l := lint.MustNew(lint.Options{})
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sitewalk.Walk(root, sitewalk.Options{Linter: l})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Pages) != 30 {
			b.Fatalf("pages = %d", len(rep.Pages))
		}
	}
}

// BenchmarkE7CheckFile measures a warm whole-file check. With the
// pooled read buffer and the zero-copy CheckBytes bridge, a warm 1 MB
// CheckFile no longer allocates for the document at all; the seed
// paid an os.ReadFile allocation plus a full string(data) copy — two
// megabytes of garbage per check at this size.
func BenchmarkE7CheckFile(b *testing.B) {
	for _, size := range []int{16 << 10, 1 << 20} {
		src := corpus.GenerateSized(99, size, corpus.ErrorRates{})
		dir := b.TempDir()
		path := filepath.Join(dir, "doc.html")
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("size-%dKB", size/1024), func(b *testing.B) {
			l := lint.MustNew(lint.Options{})
			b.SetBytes(int64(size))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := l.CheckFile(path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9Gateway measures a full gateway round trip (form post to
// rendered report).
func BenchmarkE9Gateway(b *testing.B) {
	h := gateway.NewHandler(lint.MustNew(lint.Options{}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	form := url.Values{"html": {section42}}.Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(srv.URL, "application/x-www-form-urlencoded", strings.NewReader(form))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		_ = resp.Body.Close()
	}
}

// BenchmarkE12Streaming measures the streaming seam on a large
// multi-finding document: CheckStringTo with a counting sink delivers
// every message incrementally without materialising the slice, so the
// only per-message cost left is the message text itself. The slice
// sub-benchmark is the same document through the collect-and-sort
// API, for comparison.
func BenchmarkE12Streaming(b *testing.B) {
	var doc strings.Builder
	doc.WriteString("<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>\n")
	for i := 0; i < 20000; i++ {
		doc.WriteString("<IMG SRC=\"x.gif\">\n") // img-alt + img-size per line
	}
	doc.WriteString("</BODY></HTML>\n")
	src := doc.String()

	l := lint.MustNew(lint.Options{})
	const wantMin = 20000 // one img-alt per generated line

	b.Run("sink", func(b *testing.B) {
		var count int
		sink := warn.SinkFunc(func(warn.Message) bool { count++; return true })
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			count = 0
			l.CheckStringTo("big.html", src, sink)
			if count < wantMin {
				b.Fatalf("streamed %d messages", count)
			}
		}
	})
	b.Run("slice", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := len(l.CheckString("big.html", src)); got < wantMin {
				b.Fatalf("collected %d messages", got)
			}
		}
	})
}

// tokenizerCorpus memoizes the E13 corpus: a deterministic ~8 MB mix
// of clean markup, error-injected markup, and raw-text-heavy pages,
// generated once per process so benchmark iterations measure only
// tokenization.
var tokenizerCorpus struct {
	once  sync.Once
	docs  []string
	total int64
}

func tokenizerCorpusDocs() ([]string, int64) {
	tokenizerCorpus.once.Do(func() {
		var docs []string
		for seed := int64(1); seed <= 12; seed++ {
			docs = append(docs, corpus.GenerateSized(seed, 384<<10, corpus.ErrorRates{}))
			docs = append(docs, corpus.GenerateSized(seed+100, 192<<10, corpus.Uniform(0.1)))
		}
		docs = append(docs, corpus.GenerateRawText(1024))
		var total int64
		for _, d := range docs {
			total += int64(len(d))
		}
		tokenizerCorpus.docs, tokenizerCorpus.total = docs, total
	})
	return tokenizerCorpus.docs, tokenizerCorpus.total
}

// BenchmarkE13TokenizerCorpus is the whole-corpus tokenizer benchmark
// behind BENCH_tokenizer.json: one op is a full streaming pass over
// the mixed corpus with a reused tokenizer, so the reported MB/s is
// corpus throughput, not single-document ns/op. Run at -cpu 1,4,N to
// see per-core and scaled throughput (each goroutine tokenizes the
// whole corpus independently; there is no shared state to contend on).
func BenchmarkE13TokenizerCorpus(b *testing.B) {
	docs, total := tokenizerCorpusDocs()
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tz := htmltoken.New("")
		var tok htmltoken.Token
		for pb.Next() {
			for _, doc := range docs {
				tz.Reset(doc)
				n := 0
				for tz.NextInto(&tok) {
					n++
				}
				if n == 0 {
					b.Fatal("no tokens")
				}
			}
		}
	})
}

// BenchmarkE13ErrorDense is the scaling-fix sentinel: a 1 MiB
// error-rate-0.25 corpus document, the workload whose per-byte cost
// used to double with document size before the monotone line cursors
// and O(1) stack bookkeeping (see weblint-bench -e e13 for the full
// size curve). Pre-fix this ran ~49 ms/op at ~25 MB/s; post-fix
// ~23 ms/op at ~53 MB/s.
func BenchmarkE13ErrorDense(b *testing.B) {
	l := lint.MustNew(lint.Options{})
	src := corpus.GenerateSized(7, 1<<20, corpus.Uniform(0.25))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if msgs := l.CheckString("dense.html", src); len(msgs) == 0 {
			b.Fatal("error-dense corpus produced no messages")
		}
	}
}
