// Package bufpool pools whole-document read buffers for the intake
// paths: lint.CheckReader/CheckFile and the gateway's upload and
// fetch-by-URL handlers. Every one of those used to pay a fresh
// io.ReadAll allocation (and growth copies) per request; with the pool
// a warm server reads each document into recycled memory.
package bufpool

import (
	"bytes"
	"sync"
)

// maxPooled is the largest buffer capacity the pool retains. Oversized
// documents are served correctly but their buffers are dropped on Put,
// so one pathological upload cannot pin megabytes in an idle pool.
const maxPooled = 4 << 20

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Get returns an empty buffer, recycled when possible.
func Get() *bytes.Buffer {
	b := pool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// Put returns buf to the pool. Callers must not touch buf (or byte
// slices viewing into it) afterwards.
func Put(buf *bytes.Buffer) {
	if buf == nil || buf.Cap() > maxPooled {
		return
	}
	pool.Put(buf)
}
