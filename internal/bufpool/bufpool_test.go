package bufpool

import (
	"strings"
	"testing"
)

// TestGetReturnsEmptyBuffer: a buffer from the pool is always empty,
// even when the previous user left content in it.
func TestGetReturnsEmptyBuffer(t *testing.T) {
	b := Get()
	b.WriteString("leftover")
	Put(b)
	for i := 0; i < 10; i++ {
		g := Get()
		if g.Len() != 0 {
			t.Fatalf("pooled buffer not empty: %d bytes", g.Len())
		}
		Put(g)
	}
}

// TestPoolReuse: a released buffer's capacity is reused rather than
// reallocated. sync.Pool gives no hard guarantee per Get, so the test
// asserts reuse happens at least once over several rounds.
func TestPoolReuse(t *testing.T) {
	b := Get()
	b.Grow(1 << 16)
	Put(b)
	reused := false
	for i := 0; i < 100 && !reused; i++ {
		g := Get()
		if g.Cap() >= 1<<16 {
			reused = true
		}
		Put(g)
	}
	if !reused {
		t.Skip("pool never returned the grown buffer (GC ran); nothing to assert")
	}
}

// TestOversizeRelease: buffers past the pooling cap are dropped on
// Put, so one pathological document cannot pin megabytes in the pool.
func TestOversizeRelease(t *testing.T) {
	big := Get()
	big.WriteString(strings.Repeat("x", maxPooled+1))
	if big.Cap() <= maxPooled {
		t.Fatalf("test buffer did not exceed the cap: %d", big.Cap())
	}
	Put(big) // must be dropped, not pooled

	// Whatever Get returns now, it must not be the oversized buffer.
	for i := 0; i < 50; i++ {
		g := Get()
		if g == big {
			t.Fatal("oversized buffer was pooled")
		}
		Put(g)
	}
}

// TestPutNil: a nil buffer is ignored rather than panicking.
func TestPutNil(t *testing.T) {
	Put(nil)
}

// TestConcurrentUse: the pool is safe under concurrent Get/Put with
// interleaved writes (run with -race).
func TestConcurrentUse(t *testing.T) {
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				b := Get()
				b.WriteString(strings.Repeat("y", 100+w))
				if b.Len() != 100+w {
					t.Errorf("buffer shared between goroutines")
					return
				}
				Put(b)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
