package sitewalk

import (
	"os"
	"path/filepath"
	"testing"

	"weblint/internal/corpus"
	"weblint/internal/warn"
)

// writeSite materialises a generated site into a temp directory.
func writeSite(t *testing.T, pages map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range pages {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func countID(msgs []warn.Message, id string) int {
	n := 0
	for _, m := range msgs {
		if m.ID == id {
			n++
		}
	}
	return n
}

// TestE8SiteRecursion is experiment E8: the -R switch checks a whole
// site, reporting directories without index files and orphan pages.
func TestE8SiteRecursion(t *testing.T) {
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 42, Pages: 15, Orphans: 2, BrokenLinks: 3, Subdirs: 2,
	})
	root := writeSite(t, pages)

	rep, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pages) != 15 {
		t.Errorf("pages found = %d, want 15", len(rep.Pages))
	}
	if got := countID(rep.Messages, "orphan-page"); got != 2 {
		t.Errorf("orphan-page count = %d, want 2", got)
	}
	// Three distinct missing targets were planted; each may be
	// referenced more than once within its page.
	distinct := map[string]bool{}
	for _, m := range rep.Messages {
		if m.ID == "bad-link" {
			distinct[m.Text] = true
		}
	}
	if len(distinct) != 3 {
		t.Errorf("distinct bad-link targets = %d, want 3: %v", len(distinct), distinct)
	}
	// sub1 has pages but no index file; sub0 has one; the root has
	// index.html.
	if got := countID(rep.Messages, "no-index-file"); got != 1 {
		for _, m := range rep.Messages {
			if m.ID == "no-index-file" {
				t.Logf("  %s", m.Text)
			}
		}
		t.Errorf("no-index-file count = %d, want 1", got)
	}
}

func TestCleanSiteIsQuiet(t *testing.T) {
	pages := corpus.GenerateSite(corpus.SiteConfig{Seed: 7, Pages: 8, Orphans: 0, Subdirs: 1})
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"orphan-page", "bad-link"} {
		if n := countID(rep.Messages, id); n != 0 {
			for _, m := range rep.Messages {
				if m.ID == id {
					t.Logf("  %s: %s", m.File, m.Text)
				}
			}
			t.Errorf("%s count = %d on clean site", id, n)
		}
	}
}

func TestPerPageLintMessagesIncluded(t *testing.T) {
	pages := map[string]string{
		"index.html": "<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><A HREF=\"/bad.html\">x</A></BODY></HTML>",
	}
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countID(rep.Messages, "doctype-first") != 1 {
		t.Error("per-page lint messages missing")
	}
	if countID(rep.Messages, "bad-link") != 1 {
		t.Error("broken absolute link not reported")
	}
}

func TestRelativeLinkResolution(t *testing.T) {
	pages := map[string]string{
		"index.html":     `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><A HREF="sub/a.html">a</A></BODY></HTML>`,
		"sub/a.html":     `<HTML><HEAD><TITLE>a</TITLE></HEAD><BODY><A HREF="../index.html">up</A><A HREF="b.html">sib</A></BODY></HTML>`,
		"sub/b.html":     `<HTML><HEAD><TITLE>b</TITLE></HEAD><BODY><A HREF="/index.html">root</A></BODY></HTML>`,
		"sub/index.html": `<HTML><HEAD><TITLE>si</TITLE></HEAD><BODY><A HREF="a.html">a</A></BODY></HTML>`,
	}
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := countID(rep.Messages, "bad-link"); n != 0 {
		t.Errorf("bad-link count = %d on fully linked site", n)
	}
	if n := countID(rep.Messages, "orphan-page"); n != 0 {
		for _, m := range rep.Messages {
			if m.ID == "orphan-page" {
				t.Logf("  %s", m.Text)
			}
		}
		t.Errorf("orphan-page count = %d, want 0", n)
	}
}

func TestFragmentAndQueryLinks(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY>` +
			`<A HREF="a.html#sec">frag</A><A HREF="a.html?x=1">query</A><A HREF="#local">local</A></BODY></HTML>`,
		"a.html": `<HTML><HEAD><TITLE>a</TITLE></HEAD><BODY><A HREF="/index.html">r</A></BODY></HTML>`,
	}
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := countID(rep.Messages, "bad-link"); n != 0 {
		t.Errorf("fragment/query links misresolved: %d bad-link", n)
	}
}

func TestFragmentAnchorValidation(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY>` +
			`<A HREF="a.html#exists">good</A>` +
			`<A HREF="a.html#missing">bad</A>` +
			`<A HREF="#local-missing">bad local</A>` +
			`<A NAME="top">top</A><A HREF="#top">good local</A></BODY></HTML>`,
		"a.html": `<HTML><HEAD><TITLE>a</TITLE></HEAD><BODY>` +
			`<A NAME="exists">sec</A><A HREF="/index.html">r</A></BODY></HTML>`,
	}
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var frags []string
	for _, m := range rep.Messages {
		if m.ID == "bad-fragment" {
			frags = append(frags, m.Text)
		}
	}
	if len(frags) != 2 {
		t.Fatalf("bad-fragment count = %d, want 2: %v", len(frags), frags)
	}
}

func TestFragmentViaIDAttribute(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY>` +
			`<A HREF="a.html#sec2">x</A></BODY></HTML>`,
		"a.html": `<HTML><HEAD><TITLE>a</TITLE></HEAD><BODY>` +
			`<P ID="sec2">target</P><A HREF="/index.html">r</A></BODY></HTML>`,
	}
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := countID(rep.Messages, "bad-fragment"); n != 0 {
		t.Errorf("ID-defined anchor flagged: %d", n)
	}
}

func TestDirectoryLinkResolvesThroughIndex(t *testing.T) {
	pages := map[string]string{
		"index.html":     `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><A HREF="sub/">dir</A></BODY></HTML>`,
		"sub/index.html": `<HTML><HEAD><TITLE>s</TITLE></HEAD><BODY><A HREF="/index.html">r</A></BODY></HTML>`,
	}
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := countID(rep.Messages, "bad-link"); n != 0 {
		t.Errorf("directory link flagged: %d", n)
	}
}

func TestExternalLinksCollected(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY>` +
			`<A HREF="http://a.example/">a</A><A HREF="http://b.example/">b</A>` +
			`<A HREF="http://a.example/">dup</A></BODY></HTML>`,
	}
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{CollectExternal: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.External) != 2 {
		t.Errorf("external = %v", rep.External)
	}
}

func TestSkipLocalLinks(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><A HREF="missing.html">x</A></BODY></HTML>`,
	}
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{SkipLocalLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	if countID(rep.Messages, "bad-link") != 0 {
		t.Error("bad-link reported despite SkipLocalLinks")
	}
}

func TestMessagesFor(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><BODY>x</BODY></HTML>`,
		"a.html":     `<HTML><HEAD><TITLE>a</TITLE></HEAD><BODY><A HREF="/index.html">i</A></BODY></HTML>`,
	}
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.MessagesFor("index.html") {
		if m.File != "index.html" {
			t.Errorf("MessagesFor leaked %q", m.File)
		}
	}
}

func TestNonHTMLFilesIgnored(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><IMG SRC="logo.gif" ALT="l" WIDTH="1" HEIGHT="1"></BODY></HTML>`,
		"logo.gif":   "GIF89a...",
		"notes.txt":  "not html",
	}
	root := writeSite(t, pages)
	rep, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pages) != 1 {
		t.Errorf("pages = %v", rep.Pages)
	}
	// The local image exists, so no bad-link.
	if countID(rep.Messages, "bad-link") != 0 {
		t.Error("existing local image flagged")
	}
}
