// Package sitewalk implements weblint's -R switch: recursing through
// all directories in the local filesystem so a set of pages or an
// entire site can be checked with one command. The switch also enables
// additional warnings, checking whether directories have index files,
// and reporting orphan pages (which are not referred to by any other
// page checked). Local relative links are verified against the
// filesystem.
//
// The per-page phase (read, lint, extract links and anchors) runs on a
// bounded worker pool — Options.Workers, default GOMAXPROCS — and the
// link graph is merged in page order after each page completes, so the
// Report is identical to a sequential walk regardless of scheduling.
// Each page's source is read into a pooled buffer and dropped as soon
// as its links and anchors have been extracted: the walk's memory is
// bounded by the in-flight window, not by the size of the site.
package sitewalk

import (
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"weblint/internal/bufpool"
	"weblint/internal/engine"
	"weblint/internal/linkcheck"
	"weblint/internal/lint"
	"weblint/internal/warn"
)

// Options configures a site walk.
type Options struct {
	// Linter checks each page; nil means a default Linter.
	Linter *lint.Linter
	// IndexNames are the file names accepted as directory indexes.
	// Default: index.html, index.htm.
	IndexNames []string
	// Extensions are the file name extensions treated as HTML.
	// Default: .html, .htm.
	Extensions []string
	// CheckLocalLinks verifies that relative link targets exist on
	// disk (default true; set SkipLocalLinks to disable).
	SkipLocalLinks bool
	// CollectExternal gathers external URLs for a remote link
	// checker to validate.
	CollectExternal bool
	// Workers is the number of parallel workers for the per-page
	// read/lint/extract phase; 0 means GOMAXPROCS, 1 forces a
	// sequential walk. The Report is identical for every value.
	Workers int
	// Sink, when set, streams every message — each page's as soon as
	// the page's turn in walk order comes up, the site-level messages
	// (bad-fragment, no-index-file, orphan-page) after the last page —
	// instead of accumulating them in Report.Messages. The message
	// stream is identical to the Report slice for every worker count.
	// The sink returning false cancels the walk: undispatched pages
	// are never read, and Walk returns the report built so far.
	Sink warn.Sink
}

// Report is the outcome of walking a site.
type Report struct {
	// Pages are the HTML files checked, relative to the root,
	// sorted.
	Pages []string
	// Messages holds every message from every page, plus the
	// site-level messages (no-index-file, orphan-page, bad-link).
	Messages []warn.Message
	// External are the distinct external URLs found, sorted (only
	// when Options.CollectExternal was set).
	External []string
	// Cancelled reports that Options.Sink stopped the walk early by
	// returning false: the report covers only what ran before the
	// cancellation, and callers driving several walks into one sink
	// should stop too.
	Cancelled bool
}

// MessagesFor returns the messages whose File matches name.
func (r *Report) MessagesFor(name string) []warn.Message {
	var out []warn.Message
	for _, m := range r.Messages {
		if m.File == name {
			out = append(out, m)
		}
	}
	return out
}

// Walk checks every HTML page under root.
func Walk(root string, o Options) (*Report, error) {
	if o.Linter == nil {
		o.Linter = lint.MustNew(lint.Options{})
	}
	if len(o.IndexNames) == 0 {
		o.IndexNames = []string{"index.html", "index.htm"}
	}
	if len(o.Extensions) == 0 {
		o.Extensions = []string{".html", ".htm"}
	}

	rep := &Report{}
	dirs := map[string][]string{} // dir (rel) -> html files within
	var pages []string

	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		ext := strings.ToLower(filepath.Ext(p))
		for _, want := range o.Extensions {
			if ext == want {
				rel, rerr := filepath.Rel(root, p)
				if rerr != nil {
					return rerr
				}
				rel = filepath.ToSlash(rel)
				pages = append(pages, rel)
				dir := path.Dir(rel)
				dirs[dir] = append(dirs[dir], path.Base(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pages)
	rep.Pages = pages

	pageSet := map[string]bool{}
	for _, p := range pages {
		pageSet[p] = true
	}

	// Per-page phase: read, lint, extract links and anchors, and
	// resolve link targets, in parallel. Each worker drops the page
	// source (a pooled buffer) before returning — only the extracted
	// strings survive into the merge. Results are merged in page order,
	// so the link graph and the message stream come out exactly as a
	// sequential walk produces them.
	referenced := map[string]bool{}
	external := map[string]bool{}
	anchors := map[string]map[string]bool{} // page -> defined anchors
	var fragRefs []fragRef
	var walkErr error
	// emit delivers one message: into the caller's sink when streaming,
	// into Report.Messages otherwise. Returning false cancels the walk
	// and marks the report.
	emit := func(m warn.Message) bool {
		if o.Sink != nil {
			if !o.Sink.Write(m) {
				rep.Cancelled = true
				return false
			}
			return true
		}
		rep.Messages = append(rep.Messages, m)
		return true
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	engine.OrderedSlice(workers, 0, pages,
		func(_ int, page string) pageResult {
			return checkPage(root, page, &o, pageSet)
		},
		func(_ int, res pageResult) bool {
			if res.err != nil {
				// Cancel the batch: in-flight pages finish and are
				// discarded, undispatched pages are never read.
				walkErr = res.err
				return false
			}
			if o.Sink != nil {
				warn.ReplaySuppressed(o.Sink, res.suppressed)
			}
			for _, m := range res.msgs {
				if !emit(m) {
					return false
				}
			}
			anchors[res.page] = res.anchors
			for _, t := range res.refs {
				referenced[t] = true
			}
			for _, u := range res.external {
				external[u] = true
			}
			fragRefs = append(fragRefs, res.fragRefs...)
			return true
		})
	if walkErr != nil {
		return nil, walkErr
	}
	if rep.Cancelled {
		return rep, nil
	}

	// Fragment targets: a link's #anchor must be defined in the page
	// it points at.
	for _, fr := range fragRefs {
		defined, known := anchors[fr.target]
		if !known {
			continue // target missing entirely: bad-link covers it
		}
		if !defined[fr.frag] {
			if !emit(warn.Message{
				ID: "bad-fragment", Category: warn.Warning,
				File: fr.page, Line: fr.line,
				Text: "anchor \"#" + fr.frag + "\" is not defined in " + fr.target,
			}) {
				return rep, nil
			}
		}
	}

	// Directory index checks.
	var dirNames []string
	for d := range dirs {
		dirNames = append(dirNames, d)
	}
	sort.Strings(dirNames)
	for _, d := range dirNames {
		if !hasIndex(dirs[d], o.IndexNames) {
			display := d
			if display == "." {
				display = "./"
			}
			if !emit(warn.Message{
				ID: "no-index-file", Category: warn.Warning,
				File: display, Line: 1,
				Text: "directory " + display + " does not have an index file",
			}) {
				return rep, nil
			}
		}
	}

	// Orphan pages: not referenced by any other page, and not a
	// directory index (indexes are reachable via their directory).
	for _, page := range pages {
		if referenced[page] || isIndexName(path.Base(page), o.IndexNames) {
			continue
		}
		if !emit(warn.Message{
			ID: "orphan-page", Category: warn.Warning,
			File: page, Line: 1,
			Text: "page " + page + " is not linked to by any other page checked",
		}) {
			return rep, nil
		}
	}

	if o.CollectExternal {
		for u := range external {
			rep.External = append(rep.External, u)
		}
		sort.Strings(rep.External)
	}
	return rep, nil
}

// fragRef records a link to a fragment anchor, validated after every
// page's anchors are known.
type fragRef struct {
	page, target, frag string
	line               int
}

// pageResult carries everything the merge phase needs from one page.
// It deliberately holds only extracted strings, never the source.
type pageResult struct {
	page     string
	err        error
	msgs       []warn.Message  // lint messages, then bad-link messages
	suppressed []string        // disabled-rule emission IDs, in order
	anchors    map[string]bool // fragment anchors defined in the page
	refs     []string        // local pages this page references
	external []string        // external URLs found
	fragRefs []fragRef
}

// checkPage reads, lints and link-scans one page. It runs on a worker
// goroutine: everything it touches is either private, immutable for
// the duration of the walk (Options, pageSet), or safe for concurrent
// use (the Linter, os.Stat). The page source lives in a pooled buffer
// that is released before returning — messages own their text and the
// link scan clones what it extracts.
func checkPage(root, page string, o *Options, pageSet map[string]bool) pageResult {
	res := pageResult{page: page}
	full := filepath.Join(root, filepath.FromSlash(page))
	f, err := os.Open(full)
	if err != nil {
		res.err = err
		return res
	}
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	_, err = buf.ReadFrom(f)
	f.Close()
	if err != nil {
		res.err = err
		return res
	}
	src := buf.Bytes()
	// Lint into a Recorder (sorted below, matching CheckBytes) so
	// per-rule suppression stats survive into the ordered merge.
	var rec warn.Recorder
	o.Linter.CheckBytesTo(page, src, &rec)
	warn.SortByLine(rec.Messages)
	res.msgs = rec.Messages
	res.suppressed = rec.SuppressedIDs
	var links []linkcheck.Link
	links, res.anchors = linkcheck.ScanBytes(src)

	for _, link := range links {
		if linkcheck.IsExternal(link.URL) {
			res.external = append(res.external, link.URL)
			continue
		}
		target := resolveLocal(page, link.URL)
		if _, frag := linkcheck.SplitFragment(link.URL); frag != "" {
			fragTarget := target
			if fragTarget == "" {
				fragTarget = page // fragment-only: same page
			}
			res.fragRefs = append(res.fragRefs, fragRef{page, fragTarget, frag, link.Line})
		}
		if target == "" {
			continue // fragment-only or empty reference
		}
		// Directory references resolve through index files.
		if resolved, ok := resolveIndex(root, target, o.IndexNames); ok {
			target = resolved
		}
		if pageSet[target] {
			if target != page {
				res.refs = append(res.refs, target)
			}
			continue
		}
		if !o.SkipLocalLinks && !existsLocal(root, target) {
			res.msgs = append(res.msgs, warn.Message{
				ID: "bad-link", Category: warn.Error,
				File: page, Line: link.Line,
				Text: "target for anchor \"" + link.URL + "\" not found",
			})
		}
	}
	return res
}

// resolveLocal resolves a relative link found in page (a root-relative
// slash path) to a root-relative slash path. It returns "" for
// fragment-only links.
func resolveLocal(page, url string) string {
	url, _ = linkcheck.SplitFragment(url)
	url = linkcheck.StripQuery(url)
	if url == "" {
		return ""
	}
	if strings.HasPrefix(url, "/") {
		return path.Clean(strings.TrimPrefix(url, "/"))
	}
	return path.Clean(path.Join(path.Dir(page), url))
}

// resolveIndex maps a directory reference to its index file.
func resolveIndex(root, target string, indexNames []string) (string, bool) {
	full := filepath.Join(root, filepath.FromSlash(target))
	st, err := os.Stat(full)
	if err != nil || !st.IsDir() {
		return "", false
	}
	for _, idx := range indexNames {
		cand := path.Join(target, idx)
		if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(cand))); err == nil {
			return cand, true
		}
	}
	return "", false
}

// existsLocal reports whether a root-relative target exists on disk.
func existsLocal(root, target string) bool {
	_, err := os.Stat(filepath.Join(root, filepath.FromSlash(target)))
	return err == nil
}

func hasIndex(files []string, indexNames []string) bool {
	for _, f := range files {
		if isIndexName(f, indexNames) {
			return true
		}
	}
	return false
}

func isIndexName(name string, indexNames []string) bool {
	for _, idx := range indexNames {
		if strings.EqualFold(name, idx) {
			return true
		}
	}
	return false
}
