package sitewalk

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"weblint/internal/corpus"
	"weblint/internal/lint"
)

// TestParallelEquivalence is the engine's contract applied to the
// site walker: for any worker count the Report must be deeply equal
// to the sequential walk's — same pages, same messages in the same
// order, same external URL set.
func TestParallelEquivalence(t *testing.T) {
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 5, Pages: 30, Orphans: 2, BrokenLinks: 3, Subdirs: 3,
		Errors: corpus.ErrorRates{Overlap: 0.3, DropClose: 0.2},
	})
	root := writeSite(t, pages)
	l := lint.MustNew(lint.Options{})

	seq, err := Walk(root, Options{Linter: l, Workers: 1, CollectExternal: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Pages) != 30 {
		t.Fatalf("sequential walk found %d pages", len(seq.Pages))
	}

	// 0 must resolve to GOMAXPROCS, not to a single worker.
	for _, workers := range []int{0, 2, 8, 64} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			par, err := Walk(root, Options{Linter: l, Workers: workers, CollectExternal: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.Pages, par.Pages) {
				t.Error("Pages differ")
			}
			if !reflect.DeepEqual(seq.External, par.External) {
				t.Error("External differs")
			}
			if !reflect.DeepEqual(seq.Messages, par.Messages) {
				if len(seq.Messages) != len(par.Messages) {
					t.Fatalf("message counts differ: sequential %d, parallel %d",
						len(seq.Messages), len(par.Messages))
				}
				for i := range seq.Messages {
					if seq.Messages[i] != par.Messages[i] {
						t.Fatalf("message %d differs:\n  seq: %+v\n  par: %+v",
							i, seq.Messages[i], par.Messages[i])
					}
				}
			}
		})
	}
}

// TestParallelWalkError checks an unreadable page fails the walk with
// the same error a sequential walk reports, without wedging the pool.
func TestParallelWalkError(t *testing.T) {
	pages := corpus.GenerateSite(corpus.SiteConfig{Seed: 9, Pages: 10})
	root := writeSite(t, pages)
	// A dangling symlink with an .html extension is discovered by the
	// walk but cannot be opened.
	bad := filepath.Join(root, "broken.html")
	if err := os.Symlink(filepath.Join(root, "does-not-exist"), bad); err != nil {
		t.Skipf("symlink: %v", err)
	}

	for _, workers := range []int{1, 8} {
		_, err := Walk(root, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: walk of site with unreadable page succeeded", workers)
		}
	}
}
