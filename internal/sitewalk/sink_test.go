package sitewalk

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"weblint/internal/warn"
)

// buildSinkSite writes a small site with page-level findings, a broken
// fragment, a directory without an index, and an orphan page.
func buildSinkSite(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY>
<A HREF="a.html#nowhere">a</A><IMG SRC="x.gif"></BODY></HTML>`,
		"a.html":            `<HTML><HEAD><TITLE>a</TITLE></HEAD><BODY><P>a</P></BODY></HTML>`,
		"orphan.html":       `<HTML><HEAD><TITLE>o</TITLE></HEAD><BODY><P>o</P></BODY></HTML>`,
		"sub/noindex.html":  `<HTML><HEAD><TITLE>n</TITLE></HEAD><BODY><P>n</P></BODY></HTML>`,
		"sub/noindex2.html": `<HTML><HEAD><TITLE>n</TITLE></HEAD><BODY><P>n</P></BODY></HTML>`,
	}
	for rel, src := range pages {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestWalkSinkMatchesReport: streaming a walk through a sink delivers
// exactly the Report.Messages stream, for sequential and parallel
// walks, and leaves Report.Messages empty.
func TestWalkSinkMatchesReport(t *testing.T) {
	root := buildSinkSite(t)
	want, err := Walk(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Messages) == 0 {
		t.Fatal("fixture site produced no messages")
	}

	for _, workers := range []int{1, 4} {
		var c warn.Collector
		rep, err := Walk(root, Options{Workers: workers, Sink: &c})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rep.Messages) != 0 {
			t.Errorf("workers=%d: Report.Messages accumulated %d messages while streaming", workers, len(rep.Messages))
		}
		if !reflect.DeepEqual(c.Messages, want.Messages) {
			t.Errorf("workers=%d: streamed walk differs from Report\n got %+v\nwant %+v", workers, c.Messages, want.Messages)
		}
		if !reflect.DeepEqual(rep.Pages, want.Pages) {
			t.Errorf("workers=%d: Pages differ", workers)
		}
	}
}

// TestWalkSinkCancel: the sink returning false stops the walk without
// error and without the remaining messages.
func TestWalkSinkCancel(t *testing.T) {
	root := buildSinkSite(t)
	n := 0
	rep, err := Walk(root, Options{Sink: warn.SinkFunc(func(warn.Message) bool {
		n++
		return false
	})})
	if err != nil {
		t.Fatalf("cancelled walk errored: %v", err)
	}
	if n != 1 {
		t.Errorf("sink saw %d messages after cancelling at the first", n)
	}
	if rep == nil || !rep.Cancelled {
		t.Errorf("cancelled walk must return a report with Cancelled set, got %+v", rep)
	}
}
