package gateway

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"weblint/internal/faultinject"
	"weblint/internal/fetch"
	"weblint/internal/serve"
)

// The chaos suite drives the assembled gateway stack through injected
// faults — slow lints, lint panics, fetch failures — and asserts the
// operator-facing promises hold: saturation sheds load with 429 +
// Retry-After and recovers, a panicking check costs exactly its own
// request, and a blown budget answers 504 promptly. Faults are armed
// process-globally, so these tests do not run in parallel.

// TestSaturationShedsAndRecovers: with one lint slot held busy by an
// injected slow lint, a second submission waits out the admission
// queue and is shed with 429 + Retry-After; once the slot frees, the
// gateway serves normally again.
func TestSaturationShedsAndRecovers(t *testing.T) {
	defer faultinject.Reset()

	h := NewHandler(nil)
	h.Limiter = serve.NewLimiter(1, 30*time.Millisecond)

	// The slot holder lints under an injected 400ms delay.
	faultinject.Arm("gateway.lint", faultinject.Fault{Delay: 400 * time.Millisecond, Count: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	var holderCode atomic.Int64
	go func() {
		defer wg.Done()
		rec := postValues(h, url.Values{"html": {brokenPage}})
		holderCode.Store(int64(rec.Code))
	}()

	// Wait until the holder owns the slot before submitting.
	for i := 0; h.Limiter.InFlight() == 0; i++ {
		if i > 1000 {
			t.Fatal("slot holder never acquired")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	rec := postValues(h, url.Values{"html": {brokenPage}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d under saturation, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After header")
	}
	if waited := time.Since(start); waited > 300*time.Millisecond {
		t.Errorf("shed took %v; the admission wait is 30ms", waited)
	}

	wg.Wait()
	if c := holderCode.Load(); c != http.StatusOK {
		t.Fatalf("slot holder's own request got %d", c)
	}
	// The slot is free and the fault self-disarmed: service recovers.
	rec = postValues(h, url.Values{"html": {brokenPage}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d after saturation cleared, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "malformed heading") {
		t.Error("post-recovery report missing findings")
	}
}

// TestPanicContainment: an injected lint panic costs exactly the
// request that hit it — it answers 500, the next submission is served
// normally, and the health probe stays green throughout.
func TestPanicContainment(t *testing.T) {
	defer faultinject.Reset()

	h := NewHandler(nil)
	health := &serve.Health{}
	var panicked atomic.Int64
	mux := h.Mux(health, func(v any) { panicked.Add(1) })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	post := func() *http.Response {
		resp, err := http.PostForm(srv.URL+"/", url.Values{"html": {brokenPage}})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	faultinject.Arm("gateway.lint", faultinject.Fault{Panic: "check exploded", Count: 1})
	resp := post()
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request got %d, want 500", resp.StatusCode)
	}
	if panicked.Load() != 1 {
		t.Fatalf("onPanic observed %d panics, want 1", panicked.Load())
	}

	// The process kept serving: the very next submission succeeds.
	resp = post()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after the panic got %d, want 200", resp.StatusCode)
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d after a contained panic, want 200", hz.StatusCode)
	}
}

// TestInjectedFetchFailure: a transport fault inside the hardened
// fetch client surfaces as a clear per-request error, not a hang or a
// process-level failure.
func TestInjectedFetchFailure(t *testing.T) {
	defer faultinject.Reset()

	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, brokenPage)
	}))
	defer origin.Close()

	h := NewHandler(nil)
	h.Fetcher = fetch.New(fetch.Options{AllowPrivate: true, MaxBody: h.maxUpload()})

	faultinject.Arm("fetch.get", faultinject.Fault{Err: errors.New("connection reset by chaos"), Count: 1})
	rec := postValues(h, url.Values{"url": {origin.URL + "/page.html"}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d for a failed fetch, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "connection reset by chaos") {
		t.Errorf("fetch failure not reported to the user: %s", rec.Body.String())
	}

	// Fault self-disarmed: the same submission now succeeds.
	rec = postValues(h, url.Values{"url": {origin.URL + "/page.html"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d after the fault cleared, want 200", rec.Code)
	}
}

// TestLintBudget504IsPrompt: a submission whose lint is stuck behind
// an injected multi-second stall answers 504 as soon as the budget
// expires — the deadline cuts through, it does not wait out the stall.
func TestLintBudget504IsPrompt(t *testing.T) {
	defer faultinject.Reset()

	h := NewHandler(nil)
	h.LintBudget = 20 * time.Millisecond
	faultinject.Arm("gateway.lint", faultinject.Fault{Delay: 10 * time.Second, Count: 1})

	start := time.Now()
	rec := postValues(h, url.Values{"html": {brokenPage}})
	elapsed := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("504 took %v against a 20ms budget", elapsed)
	}
	if !strings.Contains(rec.Body.String(), "budget") {
		t.Errorf("504 body does not explain the budget: %s", rec.Body.String())
	}
}

// TestBufferedFormatsNeverShipPartialResults: when the budget cuts a
// check whose response is buffered until completion — SARIF, baseline,
// fixed — the gateway answers 504 rather than a plausible-looking but
// partial document (a partial baseline would "pay down" findings that
// were never checked; a partial fix would hand back a half-repaired
// page presented as the fixed one).
func TestBufferedFormatsNeverShipPartialResults(t *testing.T) {
	h := NewHandler(nil)
	h.LintBudget = time.Nanosecond // expired before the check starts

	for _, format := range []string{"sarif", "baseline", "fixed"} {
		rec := postValues(h, url.Values{"html": {brokenPage}, "format": {format}})
		if rec.Code != http.StatusGatewayTimeout {
			t.Errorf("format=%s over budget got %d, want 504", format, rec.Code)
		}
		if strings.Contains(rec.Body.String(), "\"version\"") ||
			strings.Contains(rec.Body.String(), "<HTML>") {
			t.Errorf("format=%s over budget shipped a document body", format)
		}
	}
}
