package gateway

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"weblint/internal/serve"
)

// TestMetricsEndToEnd drives the assembled stack — Mux, counting
// middleware, cached submit path — and scrapes /metrics, asserting
// the exposition carries the gateway families and that outcome and
// cache counters reflect the traffic exactly.
func TestMetricsEndToEnd(t *testing.T) {
	h := cachedHandler()
	h.Limiter = serve.NewLimiter(2, time.Second)
	h.Metrics.ObserveState(h.Limiter, h.Cache)
	srv := httptest.NewServer(h.Mux(&serve.Health{}, nil))
	defer srv.Close()

	post := func(form url.Values) *http.Response {
		resp, err := http.PostForm(srv.URL+"/", form)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	post(url.Values{"html": {brokenPage}})                      // miss
	post(url.Values{"html": {brokenPage}})                      // hit
	post(url.Values{"html": {brokenPage}, "format": {"json"}})  // hit
	post(url.Values{"html": {"<p>hi</p>"}, "format": {"nope"}}) // 400

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("scrape Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)

	for _, want := range []string{
		"weblint_gateway_requests_total 4",
		`weblint_gateway_responses_total{code="200"} 3`,
		`weblint_gateway_responses_total{code="400"} 1`,
		"weblint_gateway_cache_misses_total 1",
		"weblint_gateway_cache_hits_total 2",
		"weblint_gateway_cache_coalesced_total 0",
		"weblint_gateway_cache_entries 1",
		"weblint_gateway_slots 2",
		"weblint_gateway_queue_depth 0",
		"weblint_gateway_lint_seconds_count 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("scrape missing %q", want)
		}
	}
	// One lint ran; its findings are tallied per rule.
	if !strings.Contains(out, `weblint_gateway_findings_total{rule="heading-mismatch"} 1`) {
		t.Errorf("per-rule findings missing from scrape:\n%s", out)
	}
	// Every line parses as a comment or a sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparseable sample line %q", line)
		}
	}
}

// TestMetricsCountPanicOutcome: the counting middleware sits outside
// panic recovery, so a contained panic's 500 shows up in the outcome
// counters.
func TestMetricsCountPanicOutcome(t *testing.T) {
	h := cachedHandler()
	mux := h.Mux(nil, func(any) {})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// An unknown format answers 400 through the full stack.
	resp, err := http.PostForm(srv.URL+"/", url.Values{"html": {"x"}, "format": {"bogus"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Metrics.Responses.Value("400") != 1 {
		t.Fatalf("400 count = %d, want 1", h.Metrics.Responses.Value("400"))
	}
}

func TestObserveStateNilArguments(t *testing.T) {
	m := NewMetrics()
	m.ObserveState(nil, nil) // must not panic or register nil readers
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), "weblint_gateway_slots") {
		t.Error("nil limiter registered a slots gauge")
	}
}

// TestDirectPathMetrics: metrics work without a cache too — the
// direct path records durations and outcomes, just no cache counters.
func TestDirectPathMetrics(t *testing.T) {
	h := NewHandler(nil)
	h.Metrics = NewMetrics()
	srv := httptest.NewServer(h.Mux(nil, nil))
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/", url.Values{"html": {brokenPage}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if h.Metrics.LintDuration.Count() != 1 {
		t.Fatalf("lint duration observations = %d, want 1", h.Metrics.LintDuration.Count())
	}
	if h.Metrics.Responses.Value("200") != 1 {
		t.Fatalf("200 count = %d, want 1", h.Metrics.Responses.Value("200"))
	}
	if h.Metrics.CacheMisses.Value() != 0 {
		t.Fatal("direct path incremented cache counters")
	}
	if len(h.Metrics.Findings.Fired()) == 0 {
		t.Fatal("direct path did not tally rule findings")
	}
}
