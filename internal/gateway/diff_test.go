package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// diffPage is a document big enough to have checkpoints and findings
// on both sides of an edit.
func diffPage() string {
	var b strings.Builder
	b.WriteString("<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>\n")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "<P>paragraph %d <IMG SRC=\"%d.gif\"></P>\n", i, i)
	}
	b.WriteString("</BODY></HTML>\n")
	return b.String()
}

// TestDiffServesEditedDocument: submit a document, edit it through the
// diff path, and require the response byte-identical to submitting the
// edited document in full — the wire-level version of the Session's
// differential guarantee — with the edited text's own ETag and
// X-Weblint-Cache: diff.
func TestDiffServesEditedDocument(t *testing.T) {
	h := cachedHandler()
	base := diffPage()

	rec := postValues(h, url.Values{"html": {base}, "format": {"json"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("base submission: %d", rec.Code)
	}
	etag := rec.Header().Get("ETag")

	// Replace one IMG with an unclosed B in the middle of the page.
	needle := "<IMG SRC=\"25.gif\">"
	off := strings.Index(base, needle)
	edit := diffEdit{Start: off, End: off + len(needle), Text: "<B>bold"}
	raw, _ := json.Marshal([]diffEdit{edit})
	drec := postValues(h, url.Values{"diff": {etag}, "edits": {string(raw)}, "format": {"json"}})
	if drec.Code != http.StatusOK {
		t.Fatalf("diff request: %d: %s", drec.Code, drec.Body.String())
	}
	if got := drec.Header().Get("X-Weblint-Cache"); got != "diff" {
		t.Fatalf("X-Weblint-Cache = %q, want diff", got)
	}

	edited := base[:off] + "<B>bold" + base[off+len(needle):]
	full := postValues(h, url.Values{"html": {edited}, "format": {"json"}})
	if full.Code != http.StatusOK {
		t.Fatalf("full submission of edited doc: %d", full.Code)
	}
	if drec.Body.String() != full.Body.String() {
		t.Fatalf("diff response differs from full submission of the edited document\ndiff:\n%s\nfull:\n%s",
			drec.Body.String(), full.Body.String())
	}
	if drec.Header().Get("ETag") != full.Header().Get("ETag") {
		t.Fatalf("diff ETag %s != edited document's content ETag %s",
			drec.Header().Get("ETag"), full.Header().Get("ETag"))
	}

	// The diff result must not have entered the result cache: its key
	// was derived, not proven by an upload. The full submission above
	// therefore registered as a miss, not a hit.
	if got := full.Header().Get("X-Weblint-Cache"); got != "miss" {
		t.Fatalf("edited document's full submission X-Weblint-Cache = %q, want miss", got)
	}
}

// TestDiffChains: a diff response's ETag serves as the base for the
// next diff, and the session state advances with each one.
func TestDiffChains(t *testing.T) {
	h := cachedHandler()
	base := diffPage()
	rec := postValues(h, url.Values{"html": {base}, "format": {"json"}})
	etag := rec.Header().Get("ETag")
	text := base

	for i := 0; i < 3; i++ {
		ins := fmt.Sprintf("<P>round %d & counting</P>\n", i)
		off := strings.Index(text, "</BODY>")
		raw, _ := json.Marshal([]diffEdit{{Start: off, End: off, Text: ins}})
		drec := postValues(h, url.Values{"diff": {etag}, "edits": {string(raw)}, "format": {"json"}})
		if drec.Code != http.StatusOK {
			t.Fatalf("diff round %d: %d: %s", i, drec.Code, drec.Body.String())
		}
		text = text[:off] + ins + text[off:]
		full := postValues(h, url.Values{"html": {text}, "format": {"json"}})
		if drec.Body.String() != full.Body.String() {
			t.Fatalf("diff round %d diverged from full submission", i)
		}
		// The superseded base is gone: diffing against the old ETag
		// must demand a resubmission.
		if old := postValues(h, url.Values{"diff": {etag}, "edits": {string(raw)}}); old.Code != http.StatusPreconditionFailed {
			t.Fatalf("diff round %d against superseded base: %d, want 412", i, old.Code)
		}
		etag = drec.Header().Get("ETag")
	}
}

// TestDiffUnknownBase: an ETag the gateway has never issued (or has
// evicted) answers 412 so the client knows to resubmit in full.
func TestDiffUnknownBase(t *testing.T) {
	h := cachedHandler()
	unknown := `"` + strings.Repeat("ab", 32) + `"`
	raw, _ := json.Marshal([]diffEdit{{Start: 0, End: 0, Text: "x"}})
	rec := postValues(h, url.Values{"diff": {unknown}, "edits": {string(raw)}})
	if rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("unknown base: %d, want 412", rec.Code)
	}
}

// TestDiffBadRequests: malformed diff fields are 400s, not crashes.
func TestDiffBadRequests(t *testing.T) {
	h := cachedHandler()
	rec := postValues(h, url.Values{"html": {brokenPage}})
	etag := rec.Header().Get("ETag")

	for name, form := range map[string]url.Values{
		"bad etag":   {"diff": {"not-hex"}, "edits": {"[]"}},
		"bad edits":  {"diff": {etag}, "edits": {"{not json"}},
		"bad format": {"diff": {etag}, "edits": {"[]"}, "format": {"nope"}},
	} {
		if got := postValues(h, form); got.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", name, got.Code)
		}
	}
}

// TestDiffRespectsUploadLimit: edits cannot grow a document past
// MaxUpload through the side door.
func TestDiffRespectsUploadLimit(t *testing.T) {
	h := cachedHandler()
	h.MaxUpload = int64(len(brokenPage) + 100)
	rec := postValues(h, url.Values{"html": {brokenPage}})
	etag := rec.Header().Get("ETag")
	raw, _ := json.Marshal([]diffEdit{{Start: 0, End: 0, Text: strings.Repeat("x", 200)}})
	if got := postValues(h, url.Values{"diff": {etag}, "edits": {string(raw)}}); got.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize diff: %d, want 413", got.Code)
	}
}
