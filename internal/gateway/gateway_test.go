package gateway

import (
	"bytes"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"weblint/internal/fetch"
	"weblint/internal/warn"
)

const brokenPage = `<HTML><HEAD><TITLE>x</TITLE></HEAD><BODY><H1>a</H2></BODY></HTML>`

func TestGetRendersForm(t *testing.T) {
	h := NewHandler(nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"<FORM", "TEXTAREA", "NAME=\"url\"", "NAME=\"upload\""} {
		if !strings.Contains(body, want) {
			t.Errorf("form missing %q", want)
		}
	}
}

func TestPostPastedHTML(t *testing.T) {
	h := NewHandler(nil)
	form := url.Values{"html": {brokenPage}}
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	body := rec.Body.String()
	if !strings.Contains(body, "malformed heading") {
		t.Errorf("report missing heading-mismatch: %s", body)
	}
	if !strings.Contains(body, "doctype-first") {
		t.Errorf("report missing message id annotation")
	}
	if !strings.Contains(body, "Checked source") {
		t.Error("checked source section missing")
	}
}

func TestPostEmptySubmission(t *testing.T) {
	h := NewHandler(nil)
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader("html="))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "no HTML provided") {
		t.Error("empty submission not rejected with guidance")
	}
}

func TestPostCleanHTML(t *testing.T) {
	h := NewHandler(nil)
	clean := "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE>" +
		"<META NAME=\"description\" CONTENT=\"d\"><META NAME=\"keywords\" CONTENT=\"k\">" +
		"</HEAD><BODY><P>fine</P></BODY></HTML>"
	form := url.Values{"html": {clean}}
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "No problems found") {
		t.Error("clean page should praise")
	}
}

func TestPostByURL(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, brokenPage)
	}))
	defer origin.Close()

	h := NewHandler(nil)
	// httptest servers listen on loopback, which the default fetcher
	// refuses; tests opt in the way an intranet operator would.
	h.Fetcher = fetch.New(fetch.Options{AllowPrivate: true, MaxBody: h.maxUpload()})
	form := url.Values{"url": {origin.URL + "/page.html"}}
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body := rec.Body.String()
	if !strings.Contains(body, "malformed heading") {
		t.Errorf("URL fetch report missing message: %s", body)
	}
	if !strings.Contains(body, origin.URL) {
		t.Error("report does not name the URL")
	}
}

// TestPostByURLPrivateBlockedByDefault: a gateway with no explicit
// Fetcher refuses to fetch loopback/private addresses — the classic
// SSRF vector for a check-by-URL form on the open web.
func TestPostByURLPrivateBlockedByDefault(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, brokenPage)
	}))
	defer origin.Close()

	h := NewHandler(nil)
	form := url.Values{"url": {origin.URL + "/page.html"}}
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), "malformed heading") {
		t.Fatal("default gateway fetched a loopback URL")
	}
	if !strings.Contains(rec.Body.String(), "private or local address") {
		t.Errorf("refusal does not explain the private-address guard: %s", rec.Body.String())
	}
}

func TestPostByURLDisabled(t *testing.T) {
	h := NewHandler(nil)
	h.AllowURLFetch = false
	form := url.Values{"url": {"http://example.org/"}}
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "disabled") {
		t.Error("URL fetch not refused when disabled")
	}
}

func TestPostBadURLScheme(t *testing.T) {
	h := NewHandler(nil)
	form := url.Values{"url": {"file:///etc/passwd"}}
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "only http and https") {
		t.Error("non-http scheme not refused")
	}
}

func TestPostFileUpload(t *testing.T) {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("upload", "upload.html")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(fw, brokenPage); err != nil {
		t.Fatal(err)
	}
	_ = mw.Close()

	h := NewHandler(nil)
	req := httptest.NewRequest(http.MethodPost, "/", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body := rec.Body.String()
	if !strings.Contains(body, "malformed heading") {
		t.Errorf("upload report missing message: %s", body)
	}
	if !strings.Contains(body, "upload.html") {
		t.Error("report does not name the uploaded file")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := NewHandler(nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPut, "/", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestHTMLFormatterEscapes(t *testing.T) {
	f := HTMLFormatter{}
	out := f.Format(warn.Message{
		ID: "odd-quotes", Category: warn.Error, Line: 7,
		Text: `odd number of quotes in element <A HREF="a.html>`,
	})
	if strings.Contains(out, `<A HREF=`) {
		t.Error("message text not HTML-escaped")
	}
	if !strings.Contains(out, "&lt;A HREF=") {
		t.Errorf("escaped form missing: %s", out)
	}
	if !strings.Contains(out, `class="error"`) {
		t.Errorf("category class missing: %s", out)
	}
}

// TestCustomFormatterSubclassing exercises the paper's Section 5.6:
// installing a different warnings formatter in the gateway.
func TestCustomFormatterSubclassing(t *testing.T) {
	h := NewHandler(nil)
	h.Formatter = warn.FormatterFunc(func(m warn.Message) string {
		return "<li>CUSTOM:" + m.ID + "</li>"
	})
	form := url.Values{"html": {brokenPage}}
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "CUSTOM:heading-mismatch") {
		t.Error("custom formatter not used")
	}
}

// TestGatewayEatsItsOwnDogFood: the gateway's form page must itself
// pass weblint cleanly (ignoring the meta style suggestions).
func TestGatewayEatsItsOwnDogFood(t *testing.T) {
	h := NewHandler(nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))

	msgs := h.Linter.CheckString("gateway-form.html", rec.Body.String())
	for _, m := range msgs {
		if m.ID == "require-meta" {
			continue
		}
		t.Errorf("gateway's own page flagged: %s [%s]", m.Text, m.ID)
	}
}

func TestSourceEscapedInReport(t *testing.T) {
	h := NewHandler(nil)
	evil := `<SCRIPT>alert(1)</SCRIPT>`
	form := url.Values{"html": {evil}}
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body := rec.Body.String()
	if strings.Contains(body, "<SCRIPT>alert") {
		t.Error("submitted source echoed unescaped")
	}
}
