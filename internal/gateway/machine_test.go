package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

// postForm submits pasted HTML with an output format and returns the
// response.
func postForm(t *testing.T, h *Handler, html, format string) *httptest.ResponseRecorder {
	t.Helper()
	form := url.Values{"html": {html}}
	if format != "" {
		form.Set("format", format)
	}
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestPostJSONFormat: format=json streams one JSON object per finding.
func TestPostJSONFormat(t *testing.T) {
	rec := postForm(t, NewHandler(nil), brokenPage, "json")
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(rec.Body.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON lines in response")
	}
	if !strings.HasPrefix(lines[len(lines)-1], `{"summary":`) {
		t.Errorf("stream does not end with a summary line: %q", lines[len(lines)-1])
	}
	lines = lines[:len(lines)-1]
	sawHeading := false
	for _, line := range lines {
		var m struct {
			ID   string `json:"id"`
			File string `json:"file"`
			Line int    `json:"line"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		if m.ID == "heading-mismatch" {
			sawHeading = true
		}
	}
	if !sawHeading {
		t.Error("heading-mismatch finding missing from JSON stream")
	}
}

// TestPostSARIFFormat: format=sarif answers with a parseable SARIF log.
func TestPostSARIFFormat(t *testing.T) {
	rec := postForm(t, NewHandler(nil), brokenPage, "sarif")
	if ct := rec.Header().Get("Content-Type"); ct != "application/sarif+json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &log); err != nil {
		t.Fatalf("SARIF response is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Errorf("degenerate SARIF log: %+v", log)
	}
}

func TestPostUnknownFormat(t *testing.T) {
	rec := postForm(t, NewHandler(nil), brokenPage, "yaml")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", rec.Code)
	}
}

// TestReportSummaryCounts: the HTML report carries per-category counts.
func TestReportSummaryCounts(t *testing.T) {
	rec := postForm(t, NewHandler(nil), brokenPage, "")
	body := rec.Body.String()
	if !strings.Contains(body, "error") || !strings.Contains(body, "warning") {
		t.Errorf("summary counts missing from report: %s", body)
	}
}

// TestConcurrentSubmissions drives the handler over a real loopback
// HTTP server with a burst of concurrent submissions: every response
// must be 200 with an identical report (the shared Linter's pooled
// per-check state must never bleed between requests).
func TestConcurrentSubmissions(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil))
	defer srv.Close()

	post := func() (string, error) {
		resp, err := http.PostForm(srv.URL, url.Values{"html": {brokenPage}})
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %d", resp.StatusCode)
		}
		return string(b), nil
	}

	const n = 24
	results := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = post()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("response %d differs from response 0 under concurrency", i)
		}
	}
}

// TestPostFixedFormat: format=fixed answers with the auto-remediated
// document and reports the fix counts in headers.
func TestPostFixedFormat(t *testing.T) {
	const page = "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>a & b<IMG SRC=\"x.gif\"></BODY></HTML>"
	rec := postForm(t, NewHandler(nil), page, "fixed")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "a &amp; b") || !strings.Contains(body, `ALT=""`) {
		t.Errorf("fixes not applied:\n%s", body)
	}
	if applied := rec.Header().Get("X-Weblint-Fixes-Applied"); applied != "2" {
		t.Errorf("X-Weblint-Fixes-Applied = %q, want 2", applied)
	}
	if skipped := rec.Header().Get("X-Weblint-Fixes-Skipped"); skipped != "0" {
		t.Errorf("X-Weblint-Fixes-Skipped = %q, want 0", skipped)
	}

	// Round-trip: the fixed document has nothing fixable left.
	rec2 := postForm(t, NewHandler(nil), body, "fixed")
	if rec2.Body.String() != body {
		t.Errorf("second fix pass changed the document")
	}
	if applied := rec2.Header().Get("X-Weblint-Fixes-Applied"); applied != "0" {
		t.Errorf("second pass applied %s fixes", applied)
	}
}

// TestPostFixedFormatClean: a clean document round-trips unchanged.
func TestPostFixedFormatClean(t *testing.T) {
	const page = "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>ok</P></BODY></HTML>"
	rec := postForm(t, NewHandler(nil), page, "fixed")
	if rec.Code != http.StatusOK || rec.Body.String() != page {
		t.Errorf("clean page changed: status=%d body=%q", rec.Code, rec.Body.String())
	}
}
