package gateway

import (
	"bytes"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"weblint/internal/fetch"
)

// The size-limit tests exercise the 413 contract at the exact boundary
// on every input path: a document of exactly MaxUpload bytes is
// checked in full, one byte more is refused with 413, and nothing is
// ever silently truncated (the seed's behaviour was to lint the first
// MaxUpload bytes of an oversize upload and report on the prefix as if
// it were the document).

const testLimit = 4 << 10

// docOfSize builds an HTML document of exactly n bytes whose last
// element is a marker that only survives to the report when the whole
// document was read.
func docOfSize(t *testing.T, n int) string {
	t.Helper()
	const head = "<HTML><BODY><P>"
	const tail = "<XMARKERX></BODY></HTML>"
	pad := n - len(head) - len(tail)
	if pad < 0 {
		t.Fatalf("docOfSize(%d): too small for skeleton", n)
	}
	doc := head + strings.Repeat("a", pad) + tail
	if len(doc) != n {
		t.Fatalf("docOfSize(%d): built %d bytes", n, len(doc))
	}
	return doc
}

func limitedHandler() *Handler {
	h := NewHandler(nil)
	h.MaxUpload = testLimit
	return h
}

func postValues(h *Handler, form url.Values) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func postUpload(t *testing.T, h *Handler, name, doc string) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("upload", name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(fw, doc); err != nil {
		t.Fatal(err)
	}
	_ = mw.Close()
	req := httptest.NewRequest(http.MethodPost, "/", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestPasteAtLimitCheckedInFull(t *testing.T) {
	h := limitedHandler()
	rec := postValues(h, url.Values{"html": {docOfSize(t, testLimit)}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d for a document exactly at the limit", rec.Code)
	}
	// The marker element at the end of the document draws an
	// unknown-element finding — proof the tail was checked, not cut.
	if !strings.Contains(rec.Body.String(), "XMARKERX") {
		t.Error("finding for the document's final element missing: the tail was not checked")
	}
}

func TestPasteOverLimitIs413(t *testing.T) {
	h := limitedHandler()
	rec := postValues(h, url.Values{"html": {docOfSize(t, testLimit+1)}})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "document too large") {
		t.Errorf("413 body does not explain the limit: %s", rec.Body.String())
	}
}

func TestUploadAtLimitCheckedInFull(t *testing.T) {
	h := limitedHandler()
	rec := postUpload(t, h, "exact.html", docOfSize(t, testLimit))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d for an upload exactly at the limit", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "XMARKERX") {
		t.Error("finding for the upload's final element missing: the tail was not checked")
	}
}

func TestUploadOverLimitIs413(t *testing.T) {
	h := limitedHandler()
	rec := postUpload(t, h, "big.html", docOfSize(t, testLimit+1))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "document too large") {
		t.Errorf("413 body does not explain the limit: %s", rec.Body.String())
	}
}

func TestFetchAtLimitCheckedInFull(t *testing.T) {
	doc := docOfSize(t, testLimit)
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, doc)
	}))
	defer origin.Close()

	h := limitedHandler()
	h.Fetcher = fetch.New(fetch.Options{AllowPrivate: true, MaxBody: h.maxUpload()})
	rec := postValues(h, url.Values{"url": {origin.URL + "/exact.html"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d for a fetched page exactly at the limit", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "XMARKERX") {
		t.Error("finding for the fetched page's final element missing: the tail was not checked")
	}
}

func TestFetchOverLimitIs413(t *testing.T) {
	doc := docOfSize(t, testLimit+1)
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, doc)
	}))
	defer origin.Close()

	h := limitedHandler()
	h.Fetcher = fetch.New(fetch.Options{AllowPrivate: true, MaxBody: h.maxUpload()})
	rec := postValues(h, url.Values{"url": {origin.URL + "/big.html"}})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "size limit") {
		t.Errorf("413 body does not explain the limit: %s", rec.Body.String())
	}
}
