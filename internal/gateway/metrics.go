package gateway

import (
	"net/http"
	"strconv"

	"weblint/internal/resultcache"
	"weblint/internal/serve"
	"weblint/internal/warn"
)

// Metrics is the gateway's Prometheus surface: request and outcome
// counters, cache traffic, admission-wait and lint-duration
// histograms, and per-rule fire/suppression tallies. Construct with
// NewMetrics, assign to Handler.Metrics, and Mux serves the scrape
// endpoint at /metrics.
//
// The cache counters have a reconciliation contract: they increment
// exactly when a response carrying the X-Weblint-Cache header is
// produced, so hits + misses + coalesced equals the number of such
// responses clients saw — the siege load generator asserts this
// end to end.
type Metrics struct {
	reg *serve.Registry

	// Requests counts every request reaching the gateway handler.
	Requests *serve.Counter
	// Responses counts completed responses by HTTP status code.
	Responses *serve.CounterVec
	// CacheHits, CacheMisses and CacheCoalesced count lint responses
	// by cache disposition.
	CacheHits      *serve.Counter
	CacheMisses    *serve.Counter
	CacheCoalesced *serve.Counter
	// AdmissionWait observes time spent waiting for a lint slot,
	// in seconds — shed and admitted requests both.
	AdmissionWait *serve.Histogram
	// LintDuration observes each executed check, in seconds. Cache
	// hits do not lint and are not observed here.
	LintDuration *serve.Histogram
	// Findings tallies fired and suppressed emissions per rule.
	Findings *warn.RuleTally
}

// NewMetrics builds the gateway metric set on a fresh registry.
func NewMetrics() *Metrics {
	reg := serve.NewRegistry()
	m := &Metrics{
		reg:      reg,
		Requests: reg.NewCounter("weblint_gateway_requests_total", "Requests reaching the gateway handler."),
		Responses: reg.NewCounterVec("weblint_gateway_responses_total",
			"Completed responses by HTTP status code.", "code"),
		CacheHits:      reg.NewCounter("weblint_gateway_cache_hits_total", "Lint responses served from the result cache."),
		CacheMisses:    reg.NewCounter("weblint_gateway_cache_misses_total", "Lint responses that ran a fresh check."),
		CacheCoalesced: reg.NewCounter("weblint_gateway_cache_coalesced_total", "Lint responses that shared a concurrent identical check."),
		AdmissionWait: reg.NewHistogram("weblint_gateway_admission_wait_seconds",
			"Time waiting for a lint slot.",
			[]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}),
		LintDuration: reg.NewHistogram("weblint_gateway_lint_seconds",
			"Duration of executed checks (cache hits excluded).",
			[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}),
		Findings: warn.NewRuleTally(),
	}
	reg.NewCounterVecFunc("weblint_gateway_findings_total",
		"Findings emitted, by rule.", "rule", m.Findings.Fired)
	reg.NewCounterVecFunc("weblint_gateway_suppressed_total",
		"Findings suppressed by in-document directives, by rule.", "rule", m.Findings.Suppressed)
	return m
}

// ObserveState registers scrape-time gauges over live serving state:
// admission-queue depth, slots in flight and configured, cache entries
// and bytes. Either argument may be nil.
func (m *Metrics) ObserveState(lim *serve.Limiter, cache *resultcache.Cache) {
	if lim != nil {
		m.reg.NewGaugeFunc("weblint_gateway_queue_depth",
			"Requests waiting for a lint slot.", func() int64 { return int64(lim.Waiting()) })
		m.reg.NewGaugeFunc("weblint_gateway_inflight",
			"Lints currently holding a slot.", func() int64 { return int64(lim.InFlight()) })
		m.reg.NewGaugeFunc("weblint_gateway_slots",
			"Configured lint slots.", func() int64 { return int64(lim.Slots()) })
	}
	if cache != nil {
		m.reg.NewGaugeFunc("weblint_gateway_cache_entries",
			"Entries resident in the result cache.", func() int64 { return int64(cache.Len()) })
		m.reg.NewGaugeFunc("weblint_gateway_cache_bytes",
			"Approximate bytes held by the result cache.", func() int64 { return int64(cache.Bytes()) })
	}
}

// Handler returns the /metrics scrape handler.
func (m *Metrics) Handler() http.Handler { return m.reg }

// CountResponses wraps next, counting each request and its response
// status. It sits outside the panic-recovery layer in Mux, so a
// contained panic's 500 is counted like any other outcome.
func (m *Metrics) CountResponses(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.Requests.Inc()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		m.Responses.Inc(sw.codeLabel())
	})
}

// statusWriter captures the response status for the outcome counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming formats keep
// streaming through the counting layer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) codeLabel() string {
	if w.code == 0 {
		// The handler never wrote: the client gave up while queued and
		// nothing went on the wire. 499 is the conventional label for
		// client-closed requests.
		return "499"
	}
	return strconv.Itoa(w.code)
}
