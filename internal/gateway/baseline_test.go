package gateway

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// baselinePage is multi-line so that edits to one line leave the
// other findings' context lines — and so their fingerprints — alone.
const baselinePage = `<HTML>
<HEAD><TITLE>x</TITLE></HEAD>
<BODY>
<H1>a</H2>
<P>text
</BODY>
</HTML>`

// postBaselineForm submits pasted HTML with a format and an optional
// baseline document.
func postBaselineForm(t *testing.T, h *Handler, html, format, base string) *httptest.ResponseRecorder {
	t.Helper()
	form := url.Values{"html": {html}, "format": {format}}
	if base != "" {
		form.Set("baseline", base)
	}
	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestBaselineRecordAndDiff: format=baseline records the submission's
// findings; resubmitting the same document with that baseline yields
// an empty SARIF result set and a zero new-findings header, and a
// changed document reports only the new finding.
func TestBaselineRecordAndDiff(t *testing.T) {
	h := NewHandler(nil)

	rec := postBaselineForm(t, h, baselinePage, "baseline", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("baseline record status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var base struct {
		Version  int            `json:"version"`
		Findings map[string]int `json:"findings"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &base); err != nil {
		t.Fatalf("baseline does not parse: %v", err)
	}
	if len(base.Findings) == 0 {
		t.Fatal("baseline recorded no findings for a broken page")
	}
	baseDoc := rec.Body.String()

	// Unchanged resubmission: no new findings.
	rec = postBaselineForm(t, h, baselinePage, "sarif", baseDoc)
	if rec.Code != http.StatusOK {
		t.Fatalf("sarif diff status = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Weblint-New-Findings"); got != "0" {
		t.Errorf("X-Weblint-New-Findings = %q, want 0", got)
	}
	var log struct {
		Runs []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if n := len(log.Runs[0].Results); n != 0 {
		t.Errorf("%d results for an unchanged submission, want 0", n)
	}

	// A new problem appears: only it is reported.
	changed := strings.Replace(baselinePage, "</BODY>", "<IMG SRC=\"new.gif\">\n</BODY>", 1)
	rec = postBaselineForm(t, h, changed, "sarif", baseDoc)
	if got := rec.Header().Get("X-Weblint-New-Findings"); got == "0" || got == "" {
		t.Errorf("X-Weblint-New-Findings = %q, want > 0", got)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if n := len(log.Runs[0].Results); n == 0 {
		t.Error("new finding missing from the diffed SARIF")
	}
	for _, res := range log.Runs[0].Results {
		if res.RuleID != "img-alt" && res.RuleID != "img-size" {
			t.Errorf("unexpected rule in diff: %s", res.RuleID)
		}
	}
}

// TestBaselineGarbageRejected: an unparseable baseline is a 400, not a
// silent full report.
func TestBaselineGarbageRejected(t *testing.T) {
	rec := postBaselineForm(t, NewHandler(nil), baselinePage, "sarif", "{nope")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
}

// TestBaselineWithJSONStream: the filter composes with the streaming
// json renderer; the trailing summary counts only new findings.
func TestBaselineWithJSONStream(t *testing.T) {
	h := NewHandler(nil)
	baseDoc := postBaselineForm(t, h, baselinePage, "baseline", "").Body.String()
	rec := postBaselineForm(t, h, baselinePage, "json", baseDoc)
	body := strings.TrimSpace(rec.Body.String())
	lines := strings.Split(body, "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], `{"summary":`) {
		t.Errorf("unchanged submission should stream only the summary line:\n%s", body)
	}
	if !strings.Contains(lines[len(lines)-1], `"errors":0`) {
		t.Errorf("summary counts baselined findings: %s", lines[len(lines)-1])
	}
}
