package gateway

import (
	"container/list"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strings"
	"sync"

	"weblint/internal/lint"
	"weblint/internal/resultcache"
)

// diff.go is the gateway's diff-granular serving path: a client that
// already submitted a document can POST diff=<etag of the base> plus
// edits=<JSON span edits> and get the re-lint of the edited document
// without resending it — and, server-side, without re-linting it from
// scratch. Recently submitted documents are retained (bounded LRU,
// content-addressed by the same key the ETag exposes); the first diff
// against a base builds a lint.Session over it, and every further diff
// re-tokenizes only the damaged window, splicing cached findings
// around it. The session guarantees output byte-identical to a
// from-scratch lint, so a diff response is indistinguishable from a
// full submission of the edited text — it even carries the edited
// text's own content-hash ETag, which in turn serves as the base for
// the next diff. An unknown or superseded base answers 412
// Precondition Failed: the client resubmits the full document.
//
// Diff results are never stored in the result cache: their keys are
// derived, not proven by a document upload, and the session already
// holds the authoritative state.

// diffEdit is the wire form of one span edit, mirroring lint.Edit:
// bytes [start, end) of the current base text are replaced by text.
type diffEdit struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Text  string `json:"text"`
}

// maxDiffEdits bounds one request's edit list; an editor sync that
// somehow batches more than this should resubmit the document.
const maxDiffEdits = 1000

// baseEntry is one retained base document. mu serialises diffs against
// it: lint.Session is not safe for concurrent use, and a diff advances
// the entry to the edited document (re-keyed under the new content
// hash), so a concurrent diff against the now-stale key misses and
// resubmits.
type baseEntry struct {
	mu   sync.Mutex
	key  resultcache.Key
	name string
	text string
	sess *lint.Session // built lazily on the first diff
}

// baseStore is a small LRU of base documents keyed by content hash.
// It is intentionally tiny: each entry may pin a session (document
// text, event stream, checker snapshots), and only actively edited
// documents earn that.
type baseStore struct {
	mu  sync.Mutex
	cap int
	m   map[resultcache.Key]*list.Element
	lru list.List // of *baseEntry, front = most recent
}

func newBaseStore(capacity int) *baseStore {
	return &baseStore{cap: capacity, m: map[resultcache.Key]*list.Element{}}
}

// put retains a document under its key (no-op if already present).
func (bs *baseStore) put(key resultcache.Key, name, text string) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if el, ok := bs.m[key]; ok {
		bs.lru.MoveToFront(el)
		return
	}
	bs.m[key] = bs.lru.PushFront(&baseEntry{key: key, name: name, text: strings.Clone(text)})
	for bs.lru.Len() > bs.cap {
		el := bs.lru.Back()
		delete(bs.m, el.Value.(*baseEntry).key)
		bs.lru.Remove(el)
	}
}

// get looks a base up and marks it recently used.
func (bs *baseStore) get(key resultcache.Key) *baseEntry {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	el, ok := bs.m[key]
	if !ok {
		return nil
	}
	bs.lru.MoveToFront(el)
	return el.Value.(*baseEntry)
}

// rekey moves an entry from old to new after a diff advanced it. The
// entry stays at its LRU position; if the new key is already present
// (another path produced the same document) the old entry is dropped.
func (bs *baseStore) rekey(e *baseEntry, newKey resultcache.Key) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	el, ok := bs.m[e.key]
	if !ok || el.Value.(*baseEntry) != e {
		return // evicted while the diff ran
	}
	delete(bs.m, e.key)
	if _, exists := bs.m[newKey]; exists {
		bs.lru.Remove(el)
		return
	}
	e.key = newKey
	bs.m[newKey] = el
}

// defaultBaseCapacity is how many base documents the gateway retains
// for diffing.
const defaultBaseCapacity = 8

func (h *Handler) bases() *baseStore {
	h.baseOnce.Do(func() { h.baseStore = newBaseStore(defaultBaseCapacity) })
	return h.baseStore
}

// retainBase remembers a fully submitted document so later requests
// can diff against its ETag.
func (h *Handler) retainBase(key resultcache.Key, name string, src []byte) {
	h.bases().put(key, name, string(src))
}

// parseDiffKey decodes the diff= form value — the ETag a previous
// response carried, quotes and weak prefix tolerated — into a cache
// key.
func parseDiffKey(v string) (resultcache.Key, bool) {
	v = strings.TrimSpace(v)
	v = strings.TrimPrefix(v, "W/")
	v = strings.Trim(v, `"`)
	var k resultcache.Key
	raw, err := hex.DecodeString(v)
	if err != nil || len(raw) != len(k) {
		return k, false
	}
	copy(k[:], raw)
	return k, true
}

// submitDiff serves a diff request: edits against a retained base.
// Responses carry the edited document's content-hash ETag and
// X-Weblint-Cache: diff.
func (h *Handler) submitDiff(w http.ResponseWriter, r *http.Request) {
	key, ok := parseDiffKey(r.FormValue("diff"))
	if !ok {
		http.Error(w, "diff= is not a weblint ETag", http.StatusBadRequest)
		return
	}
	var edits []diffEdit
	if err := json.Unmarshal([]byte(r.FormValue("edits")), &edits); err != nil {
		http.Error(w, "edits= is not a JSON edit list: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(edits) > maxDiffEdits {
		http.Error(w, "too many edits in one diff; resubmit the document", http.StatusBadRequest)
		return
	}
	format := r.FormValue("format")
	if format == "" {
		format = "html"
	}
	if !validFormat(format) {
		http.Error(w, "unknown format "+format+" (expected html, json, sarif, baseline or fixed)", http.StatusBadRequest)
		return
	}

	e := h.bases().get(key)
	if e == nil {
		http.Error(w, "unknown base document; resubmit the full document", http.StatusPreconditionFailed)
		return
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.key != key {
		// A concurrent diff advanced this base past the key the client
		// holds; its edits no longer mean what it thinks.
		http.Error(w, "base document superseded; resubmit the full document", http.StatusPreconditionFailed)
		return
	}

	grow := 0
	for _, ed := range edits {
		grow += len(ed.Text)
	}
	if int64(len(e.text)+grow) > h.maxUpload() {
		h.renderError(w, http.StatusRequestEntityTooLarge,
			"edited document would exceed the upload limit")
		return
	}

	if e.sess == nil {
		// First diff against this base pays one full lint to build the
		// session; every further diff re-lints only the edit window.
		e.sess = lint.NewSession(h.Linter, e.name, e.text)
	}
	le := make([]lint.Edit, len(edits))
	for i, ed := range edits {
		le[i] = lint.Edit{Start: ed.Start, End: ed.End, Text: ed.Text}
	}
	e.sess.Apply(le)
	// Serve the emission-order stream, not the sorted view: cached
	// full-submission results replay in emission order, and a diff
	// response must be byte-identical to what submitting the edited
	// document would produce.
	msgs := e.sess.MessagesInOrder()
	e.text = e.sess.Text()

	newKey := resultcache.KeyOf(h.Linter.ConfigFingerprint(), []byte(e.text))
	h.bases().rekey(e, newKey)

	res := resultcache.NewResult(msgs, e.sess.SuppressedInOrder())
	h.serveResult(w, r, e.name, []byte(e.text), format, res, `"`+newKey.Hex()+`"`, "diff")
}
