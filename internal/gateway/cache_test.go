package gateway

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"weblint/internal/config"
	"weblint/internal/faultinject"
	"weblint/internal/lint"
	"weblint/internal/resultcache"
	"weblint/internal/serve"
)

// cachedHandler builds a gateway with the content-addressed path and
// metrics on, the way cmd/weblint-gateway wires it by default.
func cachedHandler() *Handler {
	h := NewHandler(nil)
	h.Cache = resultcache.New(1 << 20)
	h.Metrics = NewMetrics()
	return h
}

func TestCacheHitMissHeadersAndETag(t *testing.T) {
	h := cachedHandler()

	rec1 := postValues(h, url.Values{"html": {brokenPage}})
	if rec1.Code != http.StatusOK {
		t.Fatalf("first submission: %d", rec1.Code)
	}
	if got := rec1.Header().Get("X-Weblint-Cache"); got != "miss" {
		t.Fatalf("first submission X-Weblint-Cache = %q, want miss", got)
	}
	etag := rec1.Header().Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want a quoted validator", etag)
	}

	rec2 := postValues(h, url.Values{"html": {brokenPage}})
	if got := rec2.Header().Get("X-Weblint-Cache"); got != "hit" {
		t.Fatalf("repeat submission X-Weblint-Cache = %q, want hit", got)
	}
	if rec2.Header().Get("ETag") != etag {
		t.Fatal("repeat submission changed the ETag for identical content")
	}
	if rec1.Body.String() != rec2.Body.String() {
		t.Fatal("hit and miss rendered different reports")
	}
	if h.Metrics.CacheMisses.Value() != 1 || h.Metrics.CacheHits.Value() != 1 {
		t.Fatalf("counters: misses=%d hits=%d, want 1/1",
			h.Metrics.CacheMisses.Value(), h.Metrics.CacheHits.Value())
	}
}

// TestFormatVariationsShareOneEntry: the cache stores the finding
// stream, not rendered bytes, so one entry feeds every renderer.
func TestFormatVariationsShareOneEntry(t *testing.T) {
	h := cachedHandler()

	for i, format := range []string{"html", "json", "sarif", "fixed", "baseline"} {
		rec := postValues(h, url.Values{"html": {brokenPage}, "format": {format}})
		if rec.Code != http.StatusOK {
			t.Fatalf("format=%s: %d", format, rec.Code)
		}
		want := "hit"
		if i == 0 {
			want = "miss"
		}
		if got := rec.Header().Get("X-Weblint-Cache"); got != want {
			t.Fatalf("format=%s X-Weblint-Cache = %q, want %s", format, got, want)
		}
	}
	if h.Cache.Len() != 1 {
		t.Fatalf("five formats created %d entries, want 1", h.Cache.Len())
	}
	if m, hits := h.Metrics.CacheMisses.Value(), h.Metrics.CacheHits.Value(); m != 1 || hits != 4 {
		t.Fatalf("counters: misses=%d hits=%d, want 1/4", m, hits)
	}
}

// TestBaselineDiffServedFromCache: a baseline= diff request replays
// the cached stream through the baseline filter — the hit still
// classifies new vs known findings.
func TestBaselineDiffServedFromCache(t *testing.T) {
	h := cachedHandler()

	// Record a baseline of the page (miss; populates the cache).
	rec := postValues(h, url.Values{"html": {brokenPage}, "format": {"baseline"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("baseline recording: %d", rec.Code)
	}
	base := rec.Body.String()

	// Diff against it from the cache: everything is known, zero new.
	rec = postValues(h, url.Values{"html": {brokenPage}, "format": {"sarif"}, "baseline": {base}})
	if rec.Code != http.StatusOK {
		t.Fatalf("baseline diff: %d", rec.Code)
	}
	if got := rec.Header().Get("X-Weblint-Cache"); got != "hit" {
		t.Fatalf("diff X-Weblint-Cache = %q, want hit", got)
	}
	if got := rec.Header().Get("X-Weblint-New-Findings"); got != "0" {
		t.Fatalf("X-Weblint-New-Findings = %q against the page's own baseline, want 0", got)
	}
}

// TestDistinctConfigsNeverCollide: two gateways sharing one cache but
// configured differently must not serve each other's results.
func TestDistinctConfigsNeverCollide(t *testing.T) {
	cache := resultcache.New(1 << 20)

	def := NewHandler(nil)
	def.Cache = cache

	s := config.NewSettings()
	s.HTMLVersion = "HTML 3.2"
	old := NewHandler(lint.MustNew(lint.Options{Settings: s}))
	old.Cache = cache

	if def.Linter.ConfigFingerprint() == old.Linter.ConfigFingerprint() {
		t.Fatal("different configurations share a fingerprint")
	}

	rec := postValues(def, url.Values{"html": {brokenPage}})
	if got := rec.Header().Get("X-Weblint-Cache"); got != "miss" {
		t.Fatalf("default config first check = %q, want miss", got)
	}
	// Same document, different config: must be a miss, not a replay of
	// the other configuration's findings.
	rec = postValues(old, url.Values{"html": {brokenPage}})
	if got := rec.Header().Get("X-Weblint-Cache"); got != "miss" {
		t.Fatalf("HTML 3.2 config got %q for a document only checked under the default config", got)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries for 2 configs, want 2", cache.Len())
	}
}

func TestIfNoneMatchAnswers304(t *testing.T) {
	h := cachedHandler()

	rec := postValues(h, url.Values{"html": {brokenPage}})
	etag := rec.Header().Get("ETag")

	req := httptest.NewRequest("POST", "/", strings.NewReader(url.Values{"html": {brokenPage}}.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("If-None-Match", etag)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotModified {
		t.Fatalf("If-None-Match got %d, want 304", rec2.Code)
	}
	if rec2.Body.Len() != 0 {
		t.Fatal("304 carried a body")
	}
	if got := rec2.Header().Get("X-Weblint-Cache"); got != "hit" {
		t.Fatalf("304 X-Weblint-Cache = %q, want hit", got)
	}

	// A stale validator lints (or replays) normally.
	req = httptest.NewRequest("POST", "/", strings.NewReader(url.Values{"html": {brokenPage}}.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("If-None-Match", `"deadbeef"`)
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req)
	if rec3.Code != http.StatusOK {
		t.Fatalf("stale If-None-Match got %d, want 200", rec3.Code)
	}
}

// TestErrorsAreNeverCached: oversize documents, saturation sheds,
// over-budget lints and cancelled checks must leave no cache entry —
// an error cached once would replay as truth forever.
func TestErrorsAreNeverCached(t *testing.T) {
	t.Run("413 oversize", func(t *testing.T) {
		h := cachedHandler()
		h.MaxUpload = 16
		rec := postValues(h, url.Values{"html": {brokenPage}})
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413", rec.Code)
		}
		if rec.Header().Get("X-Weblint-Cache") != "" {
			t.Error("413 carried a cache header")
		}
		if h.Cache.Len() != 0 {
			t.Error("oversize submission left a cache entry")
		}
	})

	t.Run("429 saturation", func(t *testing.T) {
		defer faultinject.Reset()
		h := cachedHandler()
		h.Limiter = serve.NewLimiter(1, 20*time.Millisecond)
		faultinject.Arm("gateway.lint", faultinject.Fault{Delay: 300 * time.Millisecond, Count: 1})

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			postValues(h, url.Values{"html": {brokenPage}})
		}()
		for i := 0; h.Limiter.InFlight() == 0; i++ {
			if i > 1000 {
				t.Error("slot holder never acquired")
				break
			}
			time.Sleep(time.Millisecond)
		}
		// A different document, so it cannot coalesce with the holder.
		rec := postValues(h, url.Values{"html": {"<p>other doc</p>"}})
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("status = %d under saturation, want 429", rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Error("429 carries no Retry-After")
		}
		if rec.Header().Get("X-Weblint-Cache") != "" {
			t.Error("429 carried a cache header")
		}
		wg.Wait()
		if h.Cache.Len() != 1 { // only the holder's completed check
			t.Errorf("cache holds %d entries, want 1 (the completed check)", h.Cache.Len())
		}
	})

	t.Run("504 over budget", func(t *testing.T) {
		defer faultinject.Reset()
		h := cachedHandler()
		h.LintBudget = 20 * time.Millisecond
		faultinject.Arm("gateway.lint", faultinject.Fault{Delay: 10 * time.Second, Count: 1})
		rec := postValues(h, url.Values{"html": {brokenPage}})
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504", rec.Code)
		}
		if rec.Header().Get("X-Weblint-Cache") != "" {
			t.Error("504 carried a cache header")
		}
		if h.Cache.Len() != 0 {
			t.Error("over-budget check left a cache entry")
		}
		// The budget fault is gone; the same document now checks clean
		// as a miss — nothing partial was retained.
		rec = postValues(h, url.Values{"html": {brokenPage}})
		if rec.Code != http.StatusOK || rec.Header().Get("X-Weblint-Cache") != "miss" {
			t.Fatalf("post-504 check: %d %q, want 200 miss", rec.Code, rec.Header().Get("X-Weblint-Cache"))
		}
	})

	t.Run("cancelled check", func(t *testing.T) {
		defer faultinject.Reset()
		h := cachedHandler()
		faultinject.Arm("gateway.lint", faultinject.Fault{Delay: 10 * time.Second, Count: 1})

		srv := httptest.NewServer(h)
		defer srv.Close()
		client := &http.Client{Timeout: 50 * time.Millisecond}
		_, err := client.PostForm(srv.URL+"/", url.Values{"html": {brokenPage}})
		if err == nil {
			t.Fatal("expected the client timeout to cancel the request")
		}
		// Give the handler a beat to observe the cancellation.
		time.Sleep(50 * time.Millisecond)
		if h.Cache.Len() != 0 {
			t.Error("cancelled check left a cache entry")
		}
	})
}

// TestSingleflightCollapsesBurst hammers one document from 64
// goroutines through a single lint slot whose check is held slow.
// Admission control would shed most of them (maxWait 0); singleflight
// means exactly one goroutine lints and the rest share its result, so
// every response is 200 and the slot was paid for once.
func TestSingleflightCollapsesBurst(t *testing.T) {
	defer faultinject.Reset()
	h := cachedHandler()
	h.Limiter = serve.NewLimiter(1, 0)
	faultinject.Arm("gateway.lint", faultinject.Fault{Delay: 150 * time.Millisecond, Count: 1})

	const n = 64
	var wg sync.WaitGroup
	var ok, other atomic.Int64
	codes := make(chan string, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rec := postValues(h, url.Values{"html": {brokenPage}})
			if rec.Code == http.StatusOK {
				ok.Add(1)
				codes <- rec.Header().Get("X-Weblint-Cache")
			} else {
				other.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(codes)

	if other.Load() != 0 {
		t.Fatalf("%d of %d burst requests were not served 200", other.Load(), n)
	}
	var miss, coalesced, hit int
	for c := range codes {
		switch c {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		case "hit":
			hit++
		}
	}
	if miss != 1 {
		t.Fatalf("burst produced %d misses, want exactly 1 (one lint)", miss)
	}
	if coalesced+hit != n-1 {
		t.Fatalf("miss=%d coalesced=%d hit=%d over %d requests", miss, coalesced, hit, n)
	}
	// Server-side counters reconcile exactly with client observations.
	if h.Metrics.CacheMisses.Value() != 1 ||
		h.Metrics.CacheCoalesced.Value() != int64(coalesced) ||
		h.Metrics.CacheHits.Value() != int64(hit) {
		t.Fatalf("server counters (m=%d c=%d h=%d) disagree with clients (m=1 c=%d h=%d)",
			h.Metrics.CacheMisses.Value(), h.Metrics.CacheCoalesced.Value(),
			h.Metrics.CacheHits.Value(), coalesced, hit)
	}
}

// TestCacheOffMatchesDirectPath: without a Cache the handler is the
// pre-cache gateway — no ETag, no X-Weblint-Cache, same report.
func TestCacheOffMatchesDirectPath(t *testing.T) {
	direct := NewHandler(nil)
	cached := cachedHandler()

	d := postValues(direct, url.Values{"html": {brokenPage}})
	c := postValues(cached, url.Values{"html": {brokenPage}})
	if d.Code != http.StatusOK || c.Code != http.StatusOK {
		t.Fatalf("codes: direct=%d cached=%d", d.Code, c.Code)
	}
	if d.Header().Get("ETag") != "" || d.Header().Get("X-Weblint-Cache") != "" {
		t.Error("direct path leaked cache headers")
	}
	if d.Body.String() != c.Body.String() {
		t.Error("direct and cached paths rendered different reports")
	}
}
