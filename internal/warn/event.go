package warn

import (
	"maps"
	"strings"
)

// LineRef is an int argument that is a 1-based line number in the
// checked document. Emission sites wrap line-valued arguments in it so
// that an incremental re-lint can tell which %d arguments must be
// shifted when lines move and which are plain counts (a title length,
// a limit). It formats exactly like int.
type LineRef int

// Event is one emission captured before formatting: everything needed
// to re-render the Message byte-identically, with the position-valued
// parts still structured. The incremental Session records the event
// stream of a full lint, shifts positions (Line, Col, LineRef args,
// Fix edit offsets) across document edits, and re-renders — producing
// the same bytes a from-scratch lint of the edited document would.
//
// Suppressed emissions are captured too, as marker events carrying
// only the ID (see Suppressed), so the recorded stream can reproduce
// what a live check's SuppressionObserver would report.
type Event struct {
	// ID and Category are copied from the resolved definition.
	ID       string
	Category Category
	// Format is the template the message text renders from, with any
	// catalog override already applied.
	Format string
	// File, Line, Col position the message as emitted.
	File string
	Line int
	Col  int
	// Fix is a deep copy of the attached remediation (see cloneFix):
	// the event owns it, but rendered Messages share it, so shifting
	// must still copy rather than mutate.
	Fix *Fix
	// Args are the format arguments, with strings cloned so the event
	// never aliases the checked document.
	Args []any
	// Suppressed marks a suppression marker: the emission was dropped
	// because its ID is disabled, and only ID is meaningful. Markers
	// keep the recorded stream aligned with what a live check's
	// SuppressionObserver sees, so an incremental splice reproduces
	// per-rule suppression stats exactly. They render no Message.
	Suppressed bool
}

// Message renders the event into the Message emit would have written.
func (ev *Event) Message() Message {
	var text string
	if len(ev.Args) == 0 && !strings.ContainsRune(ev.Format, '%') {
		text = ev.Format
	} else {
		text = string(appendFormat(make([]byte, 0, len(ev.Format)+32), ev.Format, ev.Args))
	}
	return Message{
		ID:       ev.ID,
		Category: ev.Category,
		File:     ev.File,
		Line:     ev.Line,
		Col:      ev.Col,
		Text:     text,
		Fix:      ev.Fix,
	}
}

// SetEventSink installs a function that receives a structured Event
// for every message delivered to the sink (i.e. after enablement and
// cancellation checks). Nil removes it; Reset also removes it, so
// pooled emitters never leak a recorder into the next check.
//
// Note this is distinct from the Recorder sink in sink.go, which
// collects formatted Messages plus suppressed IDs; the event sink
// captures pre-format structure for the incremental lint Session.
func (e *Emitter) SetEventSink(fn func(Event)) { e.eventSink = fn }

// cloneArgs deep-copies format arguments for retention in an Event:
// strings are cloned (checker args may alias the checked document,
// e.g. a token's raw text), value types are copied as-is.
func cloneArgs(args []any) []any {
	if len(args) == 0 {
		return nil
	}
	out := make([]any, len(args))
	for i, a := range args {
		if s, ok := a.(string); ok {
			out[i] = strings.Clone(s)
		} else {
			out[i] = a
		}
	}
	return out
}

// StaticLine reports whether id is emitted at a fixed position that
// does not refer to any document content: the whole-document structure
// checks report at line 1 however the document reads. An incremental
// splice must keep such positions as-is — they are labels, not
// locations, and do not move when lines are inserted or deleted.
func StaticLine(id string) bool {
	switch id {
	case "html-outer", "require-head", "require-title", "require-meta":
		return true
	}
	return false
}

// cloneFix deep-copies a fix for retention in an Event. Fix labels and
// edit texts are often built from document substrings (a tag's raw
// text); cloning them keeps a long-lived event stream from pinning
// every past revision of an edited document in memory.
func cloneFix(f *Fix) *Fix {
	if f == nil {
		return nil
	}
	cp := &Fix{Label: strings.Clone(f.Label), Edits: make([]Edit, len(f.Edits))}
	for i, e := range f.Edits {
		cp.Edits[i] = Edit{Start: e.Start, End: e.End, Text: strings.Clone(e.Text)}
	}
	return cp
}

// CloneOverlay returns an independent copy of the emitter's runtime
// enable/disable overlay (the in-document "weblint:" directive state),
// nil when no overrides are active. Checker snapshots capture it so an
// incremental re-lint resumes with the directive state the original
// pass had at that point.
func (e *Emitter) CloneOverlay() map[string]bool {
	if len(e.overlay) == 0 {
		return nil
	}
	return maps.Clone(e.overlay)
}

// RestoreOverlay replaces the emitter's runtime overlay with a copy of
// m (nil or empty clears it).
func (e *Emitter) RestoreOverlay(m map[string]bool) {
	if len(e.overlay) > 0 {
		clear(e.overlay)
	}
	if len(m) == 0 {
		return
	}
	if e.overlay == nil {
		e.overlay = make(map[string]bool, len(m)+8)
	}
	maps.Copy(e.overlay, m)
}

// OverlayEquals reports whether the emitter's current runtime overlay
// equals m (empty and nil are equal).
func (e *Emitter) OverlayEquals(m map[string]bool) bool {
	return maps.Equal(e.overlay, m)
}
