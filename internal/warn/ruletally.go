package warn

import "sync"

// RuleTally accumulates per-rule fired and suppressed counts across
// many checks — the gateway hangs one off its metrics surface so
// /metrics can answer "which rules fire most across the fleet" and
// "which rules do authors suppress", the operational signal a rule
// pack lives or dies by. It is a pass-through sink stage: wrap the
// next sink with Sink and every message and suppression observation is
// counted on the way through.
type RuleTally struct {
	mu         sync.Mutex
	fired      map[string]int64
	suppressed map[string]int64
}

// NewRuleTally returns an empty tally.
func NewRuleTally() *RuleTally {
	return &RuleTally{
		fired:      make(map[string]int64),
		suppressed: make(map[string]int64),
	}
}

// Sink returns a counting pass-through stage in front of next. The
// stage forwards ObserveSuppressed downstream, so it composes with
// Summary and the baseline sinks in either order.
func (t *RuleTally) Sink(next Sink) Sink {
	return &tallySink{tally: t, next: next}
}

// Add counts one fired emission of id. Exposed for replay paths that
// bypass a sink chain.
func (t *RuleTally) Add(id string) {
	t.mu.Lock()
	t.fired[id]++
	t.mu.Unlock()
}

// AddSuppressed counts one suppressed emission of id.
func (t *RuleTally) AddSuppressed(id string) {
	t.mu.Lock()
	t.suppressed[id]++
	t.mu.Unlock()
}

// Fired returns a snapshot of per-rule fired counts.
func (t *RuleTally) Fired() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyTally(t.fired)
}

// Suppressed returns a snapshot of per-rule suppressed counts.
func (t *RuleTally) Suppressed() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyTally(t.suppressed)
}

func copyTally(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

type tallySink struct {
	tally *RuleTally
	next  Sink
}

func (s *tallySink) Write(m Message) bool {
	s.tally.Add(m.ID)
	return s.next.Write(m)
}

func (s *tallySink) ObserveSuppressed(id string) {
	s.tally.AddSuppressed(id)
	if o, ok := s.next.(SuppressionObserver); ok {
		o.ObserveSuppressed(id)
	}
}
