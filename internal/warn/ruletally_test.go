package warn

import (
	"sync"
	"testing"
)

func TestRuleTallyCountsThroughChain(t *testing.T) {
	tally := NewRuleTally()
	var rec Recorder
	sink := tally.Sink(&rec)

	sink.Write(Message{ID: "img-alt"})
	sink.Write(Message{ID: "img-alt"})
	sink.Write(Message{ID: "heading-order"})
	sink.(SuppressionObserver).ObserveSuppressed("upper-case")

	fired := tally.Fired()
	if fired["img-alt"] != 2 || fired["heading-order"] != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if got := tally.Suppressed(); got["upper-case"] != 1 {
		t.Fatalf("suppressed = %v", got)
	}
	// Pass-through: downstream saw everything.
	if len(rec.Messages) != 3 || len(rec.SuppressedIDs) != 1 {
		t.Fatalf("downstream saw %d msgs / %d suppressions", len(rec.Messages), len(rec.SuppressedIDs))
	}
	// Snapshots are copies, not views.
	fired["img-alt"] = 99
	if tally.Fired()["img-alt"] != 2 {
		t.Fatal("Fired returned a live reference")
	}
}

func TestRuleTallyConcurrent(t *testing.T) {
	tally := NewRuleTally()
	sink := tally.Sink(SinkFunc(func(Message) bool { return true }))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				sink.Write(Message{ID: "img-alt"})
				sink.(SuppressionObserver).ObserveSuppressed("upper-case")
			}
		}()
	}
	wg.Wait()
	if n := tally.Fired()["img-alt"]; n != 2000 {
		t.Fatalf("fired = %d, want 2000", n)
	}
	if n := tally.Suppressed()["upper-case"]; n != 2000 {
		t.Fatalf("suppressed = %d, want 2000", n)
	}
}
