package warn

import (
	"reflect"
	"testing"
)

// TestEmitFixAttachesFix: EmitFix delivers the fix on the message;
// plain Emit leaves it nil.
func TestEmitFixAttachesFix(t *testing.T) {
	e := NewEmitter(NewSet())
	fix := &Fix{Label: "l", Edits: []Edit{{Start: 0, End: 1, Text: "x"}}}
	e.EmitFix("img-alt", "t.html", 3, 1, fix)
	e.Emit("require-title", "t.html", 1, 0)
	msgs := e.Messages()
	if len(msgs) != 2 {
		t.Fatalf("got %d messages", len(msgs))
	}
	if msgs[0].Fix != fix {
		t.Errorf("fix not attached: %+v", msgs[0])
	}
	if msgs[1].Fix != nil {
		t.Errorf("plain Emit grew a fix: %+v", msgs[1])
	}
}

// TestSuppressionObserved: disabled emissions are reported to a sink
// implementing SuppressionObserver, with the fix dropped alongside
// the message.
func TestSuppressionObserved(t *testing.T) {
	set := NewSet()
	if err := set.Disable("img-alt"); err != nil {
		t.Fatal(err)
	}
	e := NewEmitter(set)
	var rec Recorder
	e.SetSink(&rec)
	e.EmitFix("img-alt", "t.html", 3, 1, &Fix{Label: "l", Edits: []Edit{{Start: 0, End: 0, Text: "x"}}})
	e.Emit("img-alt", "t.html", 9, 1)
	e.Emit("require-title", "t.html", 1, 0)
	if len(rec.Messages) != 1 || rec.Messages[0].ID != "require-title" {
		t.Fatalf("messages = %+v", rec.Messages)
	}
	if !reflect.DeepEqual(rec.SuppressedIDs, []string{"img-alt", "img-alt"}) {
		t.Errorf("suppressed = %v", rec.SuppressedIDs)
	}
}

// TestSummarySinkCountsSuppressed: Summary.Sink counts suppressed
// emissions per ID and forwards them to a next observer.
func TestSummarySinkCountsSuppressed(t *testing.T) {
	var sum Summary
	var next Recorder
	sink := sum.Sink(&next)
	o, ok := sink.(SuppressionObserver)
	if !ok {
		t.Fatal("summary sink does not observe suppressions")
	}
	o.ObserveSuppressed("img-alt")
	o.ObserveSuppressed("img-alt")
	o.ObserveSuppressed("img-size")
	sink.Write(Message{Category: Warning})
	if sum.Warnings != 1 {
		t.Errorf("warnings = %d", sum.Warnings)
	}
	want := map[string]int{"img-alt": 2, "img-size": 1}
	if !reflect.DeepEqual(sum.Suppressed, want) {
		t.Errorf("suppressed = %v, want %v", sum.Suppressed, want)
	}
	if sum.SuppressedTotal() != 3 {
		t.Errorf("total = %d", sum.SuppressedTotal())
	}
	if !reflect.DeepEqual(next.SuppressedIDs, []string{"img-alt", "img-alt", "img-size"}) {
		t.Errorf("not forwarded: %v", next.SuppressedIDs)
	}
}

// TestRecorderReplay: Replay forwards suppressions then messages, and
// honours sink cancellation.
func TestRecorderReplay(t *testing.T) {
	rec := Recorder{SuppressedIDs: []string{"img-size"}}
	rec.Write(Message{ID: "a"})
	rec.Write(Message{ID: "b"})

	var sum Summary
	var got Collector
	if !rec.Replay(sum.Sink(&got)) {
		t.Fatal("replay cancelled unexpectedly")
	}
	if len(got.Messages) != 2 || sum.Suppressed["img-size"] != 1 {
		t.Errorf("messages=%d suppressed=%v", len(got.Messages), sum.Suppressed)
	}

	n := 0
	stop := SinkFunc(func(Message) bool { n++; return false })
	if rec.Replay(stop) {
		t.Error("replay ignored cancellation")
	}
	if n != 1 {
		t.Errorf("wrote %d messages after cancel", n)
	}
}

// TestEmitterResetClearsNothingOfBase: suppression observation goes
// through the current sink only; after Reset the default collector
// (which does not observe) is restored and nothing panics.
func TestSuppressionAfterReset(t *testing.T) {
	set := NewSet()
	if err := set.Disable("img-alt"); err != nil {
		t.Fatal(err)
	}
	e := NewEmitter(set)
	var rec Recorder
	e.SetSink(&rec)
	e.Emit("img-alt", "t.html", 1, 0)
	e.Reset()
	e.Emit("img-alt", "t.html", 1, 0) // default collector: just dropped
	if len(rec.SuppressedIDs) != 1 {
		t.Errorf("suppressed = %v", rec.SuppressedIDs)
	}
}
