// Package warn implements weblint's warnings module: the registry of
// output messages, their categories and default enablement, message
// formatting, and the pluggable formatter mechanism that the gateway
// uses to render warnings as HTML.
//
// Every output message has a stable identifier (e.g. "element-overlap")
// which is used when enabling or disabling it, and belongs to one of
// three categories: errors identify things you should fix, warnings
// identify things you should think about fixing, and style comments can
// be configured to match local guidelines.
package warn

import (
	"fmt"
	"sort"
)

// Category classifies an output message.
type Category int

const (
	// Error identifies incorrect use of syntax and other serious
	// problems which should be fixed.
	Error Category = iota
	// Warning identifies recommended optional syntax, potential
	// portability problems, and questionable use of HTML.
	Warning
	// Style identifies usage which is questionable under commonly
	// held style guidelines; stylistic comments are the most
	// opinionated category and several are disabled by default.
	Style
)

// String returns the lower-case category name used in terse output and
// in configuration files.
func (c Category) String() string {
	switch c {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Style:
		return "style"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// ParseCategory converts a category name ("error", "warning", "style")
// to a Category. The boolean result reports whether the name was valid.
func ParseCategory(s string) (Category, bool) {
	switch s {
	case "error", "errors":
		return Error, true
	case "warning", "warnings":
		return Warning, true
	case "style":
		return Style, true
	}
	return 0, false
}

// Def describes one registered output message.
type Def struct {
	// ID is the stable identifier used to enable or disable the
	// message, e.g. "img-alt".
	ID string
	// Category is the message severity class.
	Category Category
	// Default reports whether the message is enabled by default.
	// Messages which are esoteric or overly pedantic are registered
	// with Default false.
	Default bool
	// Format is the fmt-style template the message text is built
	// from.
	Format string
	// Explain is a longer human explanation used by verbose output
	// and by the gateway.
	Explain string
}

// Message is a single emitted diagnostic, positioned in a source
// document.
type Message struct {
	// ID is the identifier of the message definition this was
	// emitted from.
	ID string
	// Category is copied from the definition at emission time.
	Category Category
	// File names the checked document ("-" for stdin, a URL for
	// remote checks).
	File string
	// Line is the 1-based line the problem was detected at.
	Line int
	// Col is the 1-based column, or 0 when unknown.
	Col int
	// Text is the fully formatted message body (without file/line
	// prefix; formatters add that).
	Text string
}

// registry holds all known message definitions, keyed by ID.
var registry = map[string]*Def{}

// order preserves registration order for deterministic listings.
var order []string

// register adds a definition to the package registry. It panics on
// duplicate IDs, which would be a programming error in the tables.
func register(d Def) {
	if _, dup := registry[d.ID]; dup {
		panic("warn: duplicate message id " + d.ID)
	}
	def := d
	registry[d.ID] = &def
	order = append(order, d.ID)
}

// Register adds a message definition from outside the package. It is
// the extension point content plugins use to contribute their own
// messages (the paper's Section 6.1 plugin idea); it must be called
// during init, before any Set is constructed.
func Register(d Def) {
	register(d)
}

// Lookup returns the definition for id, or nil when id is not a
// registered message.
func Lookup(id string) *Def {
	return registry[id]
}

// IDs returns all registered message IDs in registration order.
func IDs() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// SortedIDs returns all registered message IDs in lexical order.
func SortedIDs() []string {
	out := IDs()
	sort.Strings(out)
	return out
}

// Count returns the total number of registered messages.
func Count() int { return len(registry) }

// DefaultEnabledCount returns how many registered messages are enabled
// by default.
func DefaultEnabledCount() int {
	n := 0
	for _, d := range registry {
		if d.Default {
			n++
		}
	}
	return n
}

// CountByCategory returns the number of registered messages in each
// category.
func CountByCategory() map[Category]int {
	m := map[Category]int{}
	for _, d := range registry {
		m[d.Category]++
	}
	return m
}

// Set is an enable/disable selection over the registry. The zero value
// is not useful; construct with NewSet.
type Set struct {
	enabled map[string]bool
}

// NewSet returns a Set with every message at its registered default.
func NewSet() *Set {
	s := &Set{enabled: make(map[string]bool, len(registry))}
	for id, d := range registry {
		s.enabled[id] = d.Default
	}
	return s
}

// AllEnabled returns a Set with every registered message enabled,
// including those disabled by default (the CLI's -pedantic mode).
func AllEnabled() *Set {
	s := NewSet()
	for id := range s.enabled {
		s.enabled[id] = true
	}
	return s
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{enabled: make(map[string]bool, len(s.enabled))}
	for k, v := range s.enabled {
		c.enabled[k] = v
	}
	return c
}

// Enable turns on the message with the given ID, or every message in a
// category when id names a category ("errors", "style", ...). It
// returns an error for unknown identifiers so that configuration typos
// are surfaced to the user.
func (s *Set) Enable(id string) error { return s.set(id, true) }

// Disable turns off the message with the given ID or category.
func (s *Set) Disable(id string) error { return s.set(id, false) }

func (s *Set) set(id string, v bool) error {
	if id == "all" {
		for k := range s.enabled {
			s.enabled[k] = v
		}
		return nil
	}
	if cat, ok := ParseCategory(id); ok {
		for k, d := range registry {
			if d.Category == cat {
				s.enabled[k] = v
			}
		}
		return nil
	}
	if _, ok := registry[id]; !ok {
		return fmt.Errorf("warn: unknown warning identifier %q", id)
	}
	s.enabled[id] = v
	return nil
}

// Enabled reports whether the message with the given ID is currently
// enabled. Unknown IDs report false.
func (s *Set) Enabled(id string) bool { return s.enabled[id] }

// EnabledIDs returns the identifiers of all enabled messages, sorted.
func (s *Set) EnabledIDs() []string {
	var out []string
	for id, on := range s.enabled {
		if on {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Emitter collects messages subject to an enablement Set. It is the
// object the checker engine reports through; the zero value is not
// useful, construct with NewEmitter.
type Emitter struct {
	set      *Set
	catalog  Catalog
	messages []Message
}

// NewEmitter returns an Emitter filtering through set. A nil set means
// the package defaults.
func NewEmitter(set *Set) *Emitter {
	if set == nil {
		set = NewSet()
	}
	return &Emitter{set: set}
}

// SetCatalog installs a localisation catalog; message templates found
// in the catalog replace the registered English ones.
func (e *Emitter) SetCatalog(c Catalog) { e.catalog = c }

// Emit formats and records the message id at file:line:col with the
// given arguments, unless id is disabled. Emitting an unregistered id
// panics: checker code must only reference registered messages.
func (e *Emitter) Emit(id, file string, line, col int, args ...any) {
	d := registry[id]
	if d == nil {
		panic("warn: emit of unregistered message id " + id)
	}
	if !e.set.Enabled(id) {
		return
	}
	format := d.Format
	if t, ok := e.catalog[id]; ok {
		format = t
	}
	e.messages = append(e.messages, Message{
		ID:       id,
		Category: d.Category,
		File:     file,
		Line:     line,
		Col:      col,
		Text:     fmt.Sprintf(format, args...),
	})
}

// Messages returns the messages collected so far, in emission order.
// The returned slice is owned by the emitter; callers must not modify
// it.
func (e *Emitter) Messages() []Message { return e.messages }

// Reset discards collected messages, retaining the enablement set.
func (e *Emitter) Reset() { e.messages = e.messages[:0] }

// Set returns the enablement set the emitter filters through.
func (e *Emitter) Set() *Set { return e.set }

// SortByLine orders messages by (file, line, col) while keeping
// emission order for equal positions. Checkers emit end-of-document
// messages after body messages; sorting presents them in source order
// the way weblint's output reads.
func SortByLine(ms []Message) {
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].File != ms[j].File {
			return ms[i].File < ms[j].File
		}
		if ms[i].Line != ms[j].Line {
			return ms[i].Line < ms[j].Line
		}
		return ms[i].Col < ms[j].Col
	})
}
