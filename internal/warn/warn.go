// Package warn implements weblint's warnings module: the registry of
// output messages, their categories and default enablement, message
// formatting, and the pluggable formatter mechanism that the gateway
// uses to render warnings as HTML.
//
// Every output message has a stable identifier (e.g. "element-overlap")
// which is used when enabling or disabling it, and belongs to one of
// three categories: errors identify things you should fix, warnings
// identify things you should think about fixing, and style comments can
// be configured to match local guidelines.
package warn

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
)

// Category classifies an output message.
type Category int

const (
	// Error identifies incorrect use of syntax and other serious
	// problems which should be fixed.
	Error Category = iota
	// Warning identifies recommended optional syntax, potential
	// portability problems, and questionable use of HTML.
	Warning
	// Style identifies usage which is questionable under commonly
	// held style guidelines; stylistic comments are the most
	// opinionated category and several are disabled by default.
	Style
)

// String returns the lower-case category name used in terse output and
// in configuration files.
func (c Category) String() string {
	switch c {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Style:
		return "style"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// ParseCategory converts a category name ("error", "warning", "style")
// to a Category. The boolean result reports whether the name was valid.
func ParseCategory(s string) (Category, bool) {
	switch s {
	case "error", "errors":
		return Error, true
	case "warning", "warnings":
		return Warning, true
	case "style":
		return Style, true
	}
	return 0, false
}

// Def describes one registered output message.
type Def struct {
	// ID is the stable identifier used to enable or disable the
	// message, e.g. "img-alt".
	ID string
	// Category is the message severity class.
	Category Category
	// Default reports whether the message is enabled by default.
	// Messages which are esoteric or overly pedantic are registered
	// with Default false.
	Default bool
	// Format is the fmt-style template the message text is built
	// from.
	Format string
	// Explain is a longer human explanation used by verbose output
	// and by the gateway.
	Explain string
}

// Message is a single emitted diagnostic, positioned in a source
// document.
type Message struct {
	// ID is the identifier of the message definition this was
	// emitted from.
	ID string
	// Category is copied from the definition at emission time.
	Category Category
	// File names the checked document ("-" for stdin, a URL for
	// remote checks).
	File string
	// Line is the 1-based line the problem was detected at.
	Line int
	// Col is the 1-based column, or 0 when unknown.
	Col int
	// Text is the fully formatted message body (without file/line
	// prefix; formatters add that).
	Text string
	// Fix, when non-nil, is a machine-applicable remediation for the
	// problem: a set of byte-span edits over the original source
	// document. Emission sites attach one only when a safe mechanical
	// rewrite exists; see the fixit package for applying them.
	Fix *Fix
}

// Edit is one span replacement over the original source document:
// the bytes in [Start, End) are replaced by Text. Start == End is an
// insertion; an empty Text is a deletion. Offsets are byte offsets
// into the exact document that was checked.
type Edit struct {
	// Start is the byte offset of the first replaced byte.
	Start int `json:"start"`
	// End is one past the last replaced byte; End == Start inserts.
	End int `json:"end"`
	// Text is the replacement text.
	Text string `json:"text"`
}

// Fix is a machine-applicable remediation attached to a Message: a
// human-readable label and one or more edits which together resolve
// the finding. The edits of one fix never overlap each other; fixes
// from different messages may conflict, which fixit.Apply resolves
// deterministically (first writer wins, in stream order).
type Fix struct {
	// Label describes the rewrite, e.g. `insert ALT=""`.
	Label string `json:"label"`
	// Edits are the span replacements, in ascending Start order.
	Edits []Edit `json:"edits"`
}

// registry holds all known message definitions, keyed by ID.
var registry = map[string]*Def{}

// order preserves registration order for deterministic listings.
var order []string

// register adds a definition to the package registry. It panics on
// duplicate IDs, which would be a programming error in the tables.
func register(d Def) {
	if _, dup := registry[d.ID]; dup {
		panic("warn: duplicate message id " + d.ID)
	}
	def := d
	registry[d.ID] = &def
	order = append(order, d.ID)
}

// Register adds a message definition from outside the package. It is
// the extension point content plugins use to contribute their own
// messages (the paper's Section 6.1 plugin idea); it must be called
// during init, before any Set is constructed.
func Register(d Def) {
	register(d)
}

// Lookup returns the definition for id, or nil when id is not a
// registered message.
func Lookup(id string) *Def {
	return registry[id]
}

// IDs returns all registered message IDs in registration order.
func IDs() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// SortedIDs returns all registered message IDs in lexical order.
func SortedIDs() []string {
	out := IDs()
	slices.Sort(out)
	return out
}

// Count returns the total number of registered messages.
func Count() int { return len(registry) }

// DefaultEnabledCount returns how many registered messages are enabled
// by default.
func DefaultEnabledCount() int {
	n := 0
	for _, d := range registry {
		if d.Default {
			n++
		}
	}
	return n
}

// CountByCategory returns the number of registered messages in each
// category.
func CountByCategory() map[Category]int {
	m := map[Category]int{}
	for _, d := range registry {
		m[d.Category]++
	}
	return m
}

// setEntry pairs a message definition with its enablement, so the hot
// path resolves both with one map lookup.
type setEntry struct {
	def *Def
	on  bool
}

// Set is an enable/disable selection over the registry. The zero value
// is not useful; construct with NewSet.
type Set struct {
	entries map[string]*setEntry
}

// NewSet returns a Set with every message at its registered default.
func NewSet() *Set {
	s := &Set{entries: make(map[string]*setEntry, len(registry))}
	for id, d := range registry {
		s.entries[id] = &setEntry{def: d, on: d.Default}
	}
	return s
}

// AllEnabled returns a Set with every registered message enabled,
// including those disabled by default (the CLI's -pedantic mode).
func AllEnabled() *Set {
	s := NewSet()
	for _, e := range s.entries {
		e.on = true
	}
	return s
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{entries: make(map[string]*setEntry, len(s.entries))}
	for k, e := range s.entries {
		cp := *e
		c.entries[k] = &cp
	}
	return c
}

// Enable turns on the message with the given ID, or every message in a
// category when id names a category ("errors", "style", ...). It
// returns an error for unknown identifiers so that configuration typos
// are surfaced to the user.
func (s *Set) Enable(id string) error { return s.set(id, true) }

// Disable turns off the message with the given ID or category.
func (s *Set) Disable(id string) error { return s.set(id, false) }

func (s *Set) set(id string, v bool) error {
	if id == "all" {
		for _, e := range s.entries {
			e.on = v
		}
		return nil
	}
	if cat, ok := ParseCategory(id); ok {
		for rid, d := range registry {
			if d.Category == cat {
				s.entry(rid, d).on = v
			}
		}
		return nil
	}
	d := registry[id]
	if d == nil {
		return fmt.Errorf("warn: unknown warning identifier %q", id)
	}
	s.entry(id, d).on = v
	return nil
}

// entry returns the set's entry for id, materialising one (at the
// registered default) for a message registered after the Set was
// built — plugin registrations must remain configurable through any
// existing Set, as they were when the set was a plain id→bool map.
func (s *Set) entry(id string, d *Def) *setEntry {
	if e, ok := s.entries[id]; ok {
		return e
	}
	e := &setEntry{def: d, on: d.Default}
	s.entries[id] = e
	return e
}

// Enabled reports whether the message with the given ID is currently
// enabled. Unknown IDs report false.
func (s *Set) Enabled(id string) bool {
	e := s.entries[id]
	return e != nil && e.on
}

// EnabledIDs returns the identifiers of all enabled messages, sorted.
func (s *Set) EnabledIDs() []string {
	var out []string
	for id, e := range s.entries {
		if e.on {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// Emitter streams messages, subject to an enablement Set, into a Sink.
// It is the object the checker engine reports through; the zero value
// is not useful, construct with NewEmitter.
//
// By default the emitter writes into its own internal Collector, which
// is how the slice-returning check APIs are built: run the check, then
// read Messages/CopyMessages. Installing a different destination with
// SetSink turns the same emitter into a true streaming source — each
// message is delivered the moment it is emitted, nothing accumulates,
// and a sink returning false cancels the rest of the check.
//
// The emitter holds a read-only view of its Set: it never mutates the
// set it was constructed with, so one Set can back any number of
// emitters (and checks) concurrently. Runtime enablement changes — the
// in-document "weblint:" directives — go through the emitter's own
// Enable/Disable, which record the change in a private copy-on-write
// overlay scoped to this emitter.
type Emitter struct {
	base      *Set            // read-only enablement baseline
	overlay   map[string]bool // copy-on-write runtime overrides
	catalog   Catalog
	collect   Collector // default destination: accumulate in order
	sink      Sink      // current destination; &collect unless SetSink
	cancelled bool      // the sink returned false; emit nothing more
	extCancel *atomic.Bool // external cancel flag, polled by Cancelled
	buf       []byte    // scratch buffer for message formatting
	eventSink func(Event) // structured emission recorder, see SetEventSink
}

// NewEmitter returns an Emitter filtering through set. A nil set means
// a fresh Set at the package defaults, private to this emitter. The
// emitter holds set read-only; callers sharing one Set across several
// emitters must not mutate it while checks are running (use the
// emitter's Enable/Disable for per-check changes).
func NewEmitter(set *Set) *Emitter {
	if set == nil {
		set = NewSet()
	}
	e := &Emitter{base: set}
	e.sink = &e.collect
	return e
}

// SetSink installs the destination messages are written to. A nil sink
// restores the default internal Collector. Reset also restores the
// default, so pooled emitters never leak a caller's sink into the next
// check.
func (e *Emitter) SetSink(s Sink) {
	if s == nil {
		s = &e.collect
	}
	e.sink = s
}

// Cancelled reports whether the check has been cancelled: the sink
// returned false from Write, or an external cancel flag installed
// with SetCancelFlag flipped. Once cancelled, Emit is a no-op until
// Reset.
//
// The checker polls Cancelled between tokens, which is what makes an
// external flag effective: a deadline can stop the tokenizing of a
// pathological document even when it produces no findings for a sink
// to cancel through.
func (e *Emitter) Cancelled() bool {
	return e.cancelled || (e.extCancel != nil && e.extCancel.Load())
}

// SetCancelFlag installs an external cancellation flag, typically
// flipped by a context.AfterFunc when a per-request deadline expires.
// A nil flag removes it. Reset also removes it, so pooled emitters
// never poll a stale caller's flag.
func (e *Emitter) SetCancelFlag(f *atomic.Bool) { e.extCancel = f }

// SetCatalog installs a localisation catalog; message templates found
// in the catalog replace the registered English ones.
func (e *Emitter) SetCatalog(c Catalog) { e.catalog = c }

// Enabled reports whether the message id is enabled for this emitter:
// the runtime overlay wins, then the base set.
func (e *Emitter) Enabled(id string) bool {
	if e.overlay != nil {
		if v, ok := e.overlay[id]; ok {
			return v
		}
	}
	return e.base.Enabled(id)
}

// Enable turns on a message ID or category for this emitter only. The
// base set is untouched — the change lives in the emitter's overlay
// and is dropped by Reset.
func (e *Emitter) Enable(id string) error { return e.override(id, true) }

// Disable turns off a message ID or category for this emitter only.
func (e *Emitter) Disable(id string) error { return e.override(id, false) }

func (e *Emitter) override(id string, v bool) error {
	if id != "all" {
		if cat, ok := ParseCategory(id); ok {
			if e.overlay == nil {
				e.overlay = make(map[string]bool, 16)
			}
			for k, d := range registry {
				if d.Category == cat {
					e.overlay[k] = v
				}
			}
			return nil
		}
		if _, ok := registry[id]; !ok {
			return fmt.Errorf("warn: unknown warning identifier %q", id)
		}
		if e.overlay == nil {
			e.overlay = make(map[string]bool, 16)
		}
		e.overlay[id] = v
		return nil
	}
	if e.overlay == nil {
		e.overlay = make(map[string]bool, len(registry))
	}
	for k := range registry {
		e.overlay[k] = v
	}
	return nil
}

// Emit formats the message id at file:line:col with the given
// arguments and writes it to the sink, unless id is disabled or the
// sink has cancelled the stream. Emitting an unregistered id panics:
// checker code must only reference registered messages.
//
// Args must be string, int, or bool values — the types the registered
// %s/%d templates take. The restriction is what keeps the hot path
// allocation-free: the formatter never hands args to fmt, so the
// compiler can keep the variadic slice and its boxed values on the
// caller's stack.
func (e *Emitter) Emit(id, file string, line, col int, args ...any) {
	e.emit(id, file, line, col, nil, args)
}

// EmitFix is Emit with a machine-applicable fix attached to the
// message. The fix is dropped along with the message when the id is
// disabled. Callers hand ownership of fix to the message stream; it
// must not be mutated afterwards.
func (e *Emitter) EmitFix(id, file string, line, col int, fix *Fix, args ...any) {
	e.emit(id, file, line, col, fix, args)
}

func (e *Emitter) emit(id, file string, line, col int, fix *Fix, args []any) {
	if e.Cancelled() {
		return
	}
	var (
		on bool
		d  *Def
	)
	if ent := e.base.entries[id]; ent != nil {
		on, d = ent.on, ent.def
	} else {
		// The id was registered after the base set was built. It is
		// disabled until explicitly enabled — the behaviour a plain
		// id→bool set always had for ids it doesn't know.
		d = registry[id]
		if d == nil {
			panic("warn: emit of unregistered message id " + id)
		}
	}
	if e.overlay != nil {
		if v, ok := e.overlay[id]; ok {
			on = v
		}
	}
	if !on {
		// Suppressed: tell interested sinks so per-rule suppression
		// stats can be surfaced. The type assertion only runs on this
		// cold path; enabled emissions never pay for it. The event sink
		// gets a marker so a recorded stream can replay the
		// suppression observations a live check would deliver.
		if o, ok := e.sink.(SuppressionObserver); ok {
			o.ObserveSuppressed(id)
		}
		if e.eventSink != nil {
			e.eventSink(Event{ID: id, Suppressed: true})
		}
		return
	}
	format := d.Format
	if e.catalog != nil {
		if t, ok := e.catalog[id]; ok {
			format = t
		}
	}
	if e.eventSink != nil {
		e.eventSink(Event{
			ID:       id,
			Category: d.Category,
			Format:   format,
			File:     file,
			Line:     line,
			Col:      col,
			Fix:      cloneFix(fix),
			Args:     cloneArgs(args),
		})
	}
	e.buf = appendFormat(e.buf[:0], format, args)
	if !e.sink.Write(Message{
		ID:       id,
		Category: d.Category,
		File:     file,
		Line:     line,
		Col:      col,
		Text:     string(e.buf),
		Fix:      fix,
	}) {
		e.cancelled = true
	}
}

// appendFormat renders a registered message template. It supports the
// %s, %d and %% verbs the message tables use, mirroring fmt's
// "%!s(MISSING)" notation for arity mismatches. It must never pass
// args (or an element of args) to another function that retains them:
// Emit's zero-allocation contract depends on args not escaping.
func appendFormat(dst []byte, format string, args []any) []byte {
	ai := 0
	for i := 0; i < len(format); {
		j := indexByteFrom(format, i, '%')
		if j < 0 || j+1 >= len(format) {
			dst = append(dst, format[i:]...)
			break
		}
		dst = append(dst, format[i:j]...)
		verb := format[j+1]
		i = j + 2
		switch verb {
		case '%':
			dst = append(dst, '%')
			continue
		case 's', 'd':
			if ai >= len(args) {
				dst = append(dst, "%!"...)
				dst = append(dst, verb)
				dst = append(dst, "(MISSING)"...)
				continue
			}
			dst = appendArg(dst, verb, args[ai])
			ai++
		default:
			// Not a verb the tables use; emit it literally so the
			// problem is visible in the output.
			dst = append(dst, '%', verb)
		}
	}
	for ; ai < len(args); ai++ {
		dst = append(dst, "%!(EXTRA "...)
		dst = appendArg(dst, 'v', args[ai])
		dst = append(dst, ')')
	}
	return dst
}

// indexByteFrom is strings.IndexByte over format[i:], returning an
// index into format.
func indexByteFrom(s string, i int, c byte) int {
	j := strings.IndexByte(s[i:], c)
	if j < 0 {
		return -1
	}
	return i + j
}

// appendArg renders one argument. Only string, int and bool are
// supported (see Emit); other types render as a diagnostic placeholder
// rather than being handed to fmt, which would defeat escape analysis
// for every Emit call site.
func appendArg(dst []byte, verb byte, arg any) []byte {
	switch v := arg.(type) {
	case string:
		return append(dst, v...)
	case int:
		return strconv.AppendInt(dst, int64(v), 10)
	case LineRef:
		return strconv.AppendInt(dst, int64(v), 10)
	case bool:
		return strconv.AppendBool(dst, v)
	default:
		dst = append(dst, "%!"...)
		dst = append(dst, verb)
		return append(dst, "(UNSUPPORTED)"...)
	}
}

// Messages returns the messages collected so far, in emission order.
// Only the default internal Collector accumulates: after SetSink the
// messages went to the caller's sink and this returns nothing new.
// The returned slice is owned by the emitter; callers must not modify
// it, and it is only valid until the next Reset.
func (e *Emitter) Messages() []Message { return e.collect.Messages }

// CopyMessages returns an independent copy of the collected messages,
// safe to retain after the emitter is Reset or returned to a pool.
func (e *Emitter) CopyMessages() []Message {
	if len(e.collect.Messages) == 0 {
		return nil
	}
	out := make([]Message, len(e.collect.Messages))
	copy(out, e.collect.Messages)
	return out
}

// Reset discards collected messages, any runtime Enable/Disable
// overrides, cancellation, and any installed sink (the default
// internal Collector is restored), retaining the base enablement set
// and the message capacity, so pooled emitters stop allocating once
// warm.
func (e *Emitter) Reset() {
	e.collect.Reset()
	e.sink = &e.collect
	e.cancelled = false
	e.extCancel = nil
	e.eventSink = nil
	if len(e.overlay) > 0 {
		clear(e.overlay)
	}
}

// Set returns the base enablement set the emitter filters through.
// The set is a read-only view: use the emitter's Enable/Disable for
// runtime changes.
func (e *Emitter) Set() *Set { return e.base }

// SortByLine orders messages by (file, line) while keeping emission
// order for equal positions. Checkers emit end-of-document messages
// after body messages; sorting presents them in source order the way
// weblint's output reads. Columns deliberately do not participate:
// the checker's within-line emission order (quoting problems before
// identity problems, matching the paper's output) is part of the
// output contract, and column metadata must not reorder it.
func SortByLine(ms []Message) {
	slices.SortStableFunc(ms, func(a, b Message) int {
		if a.File != b.File {
			if a.File < b.File {
				return -1
			}
			return 1
		}
		return a.Line - b.Line
	})
}
