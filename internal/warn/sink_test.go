package warn

import (
	"errors"
	"strings"
	"testing"
)

// TestEmitterStreamsToSink: messages reach an installed sink the
// moment they are emitted, and nothing accumulates in the emitter.
func TestEmitterStreamsToSink(t *testing.T) {
	e := NewEmitter(nil)
	var got []Message
	e.SetSink(SinkFunc(func(m Message) bool {
		got = append(got, m)
		return true
	}))
	e.Emit("html-outer", "f", 1, 0)
	e.Emit("require-title", "f", 1, 0)
	if len(got) != 2 || got[0].ID != "html-outer" || got[1].ID != "require-title" {
		t.Fatalf("sink received %+v", got)
	}
	if len(e.Messages()) != 0 {
		t.Errorf("emitter accumulated %d messages while a sink was installed", len(e.Messages()))
	}
}

// TestEmitterSinkCancel: a sink returning false cancels the stream —
// further emits are dropped and Cancelled reports true.
func TestEmitterSinkCancel(t *testing.T) {
	e := NewEmitter(nil)
	n := 0
	e.SetSink(SinkFunc(func(Message) bool {
		n++
		return false
	}))
	e.Emit("html-outer", "f", 1, 0)
	e.Emit("require-title", "f", 1, 0)
	if n != 1 {
		t.Errorf("sink called %d times after cancelling, want 1", n)
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after sink returned false")
	}
	e.Reset()
	if e.Cancelled() {
		t.Error("cancellation survived Reset")
	}
	e.Emit("html-outer", "f", 1, 0)
	if len(e.Messages()) != 1 {
		t.Error("Reset did not restore the default collector sink")
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	if !c.Write(Message{ID: "a"}) || !c.Write(Message{ID: "b"}) {
		t.Fatal("Collector cancelled")
	}
	if len(c.Messages) != 2 || c.Messages[0].ID != "a" {
		t.Fatalf("collected %+v", c.Messages)
	}
	c.Reset()
	if len(c.Messages) != 0 {
		t.Error("Reset kept messages")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("pipe closed")
	}
	return len(p), nil
}

func TestWriterSink(t *testing.T) {
	var b strings.Builder
	s := NewWriterSink(Terse{}, &b)
	if !s.Write(Message{ID: "img-alt", File: "a.html", Line: 3}) {
		t.Fatal("healthy writer cancelled")
	}
	if b.String() != "a.html:3:img-alt\n" {
		t.Errorf("output = %q", b.String())
	}

	fw := &failWriter{}
	s = NewWriterSink(Terse{}, fw)
	if !s.Write(Message{ID: "x-one", File: "f", Line: 1}) {
		t.Fatal("first write cancelled")
	}
	if s.Write(Message{ID: "x-two", File: "f", Line: 2}) {
		t.Error("failed write did not cancel")
	}
	if s.Err() == nil {
		t.Error("Err() lost the write error")
	}
	if s.Write(Message{ID: "x-three", File: "f", Line: 3}) {
		t.Error("sink kept accepting after an error")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	sink := s.Sink(nil)
	for _, m := range []Message{
		{Category: Error}, {Category: Error},
		{Category: Warning},
		{Category: Style},
	} {
		if !sink.Write(m) {
			t.Fatal("counting sink cancelled")
		}
	}
	if s.Errors != 2 || s.Warnings != 1 || s.Style != 1 || s.Total() != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if got := s.String(); got != "2 errors, 1 warning, 1 style" {
		t.Errorf("String() = %q", got)
	}

	cases := []struct {
		f    FailOn
		want int
	}{
		{FailOnError, 2},
		{FailOnWarning, 3},
		{FailOnStyle, 4},
		{FailOnNever, 0},
	}
	for _, c := range cases {
		if got := s.Failures(c.f); got != c.want {
			t.Errorf("Failures(%s) = %d, want %d", c.f, got, c.want)
		}
	}
}

// TestSummarySinkForwards: the counting sink passes messages (and
// cancellation) through to the wrapped sink.
func TestSummarySinkForwards(t *testing.T) {
	var s Summary
	var c Collector
	sink := s.Sink(&c)
	sink.Write(Message{ID: "a", Category: Error})
	if len(c.Messages) != 1 || s.Errors != 1 {
		t.Fatalf("forwarding sink: collected=%d errors=%d", len(c.Messages), s.Errors)
	}
	stop := s.Sink(SinkFunc(func(Message) bool { return false }))
	if stop.Write(Message{Category: Warning}) {
		t.Error("cancellation not propagated")
	}
	if s.Warnings != 1 {
		t.Error("cancelled message not counted")
	}
}

func TestParseFailOn(t *testing.T) {
	cases := map[string]FailOn{
		"error": FailOnError, "errors": FailOnError,
		"warning": FailOnWarning, "warnings": FailOnWarning,
		"style": FailOnStyle, "any": FailOnStyle,
		"never": FailOnNever, "none": FailOnNever,
	}
	for in, want := range cases {
		got, ok := ParseFailOn(in)
		if !ok || got != want {
			t.Errorf("ParseFailOn(%q) = %v, %v", in, got, ok)
		}
	}
	if _, ok := ParseFailOn("fatal"); ok {
		t.Error("ParseFailOn accepted an unknown threshold")
	}
}
