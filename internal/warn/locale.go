package warn

// Localisation support, one of the paper's Section 6.1 items
// ("Internationalisation and localisation. Masayasu Ishikawa has done
// a lot of work in this area, which is being folded into Weblint 2").
//
// A Catalog maps message identifiers to translated format templates.
// Catalogs are partial: messages absent from a catalog fall back to
// the registered English template, so a translation can be grown
// incrementally.

import "sort"

// Catalog maps message IDs to translated fmt templates. Translated
// templates must preserve the order and verbs of the English
// template's format arguments.
type Catalog map[string]string

// catalogs holds the built-in locales.
var catalogs = map[string]Catalog{
	"fr": frCatalog,
	"de": deCatalog,
}

// Locale returns a built-in catalog by name ("fr", "de"); the boolean
// result reports whether the locale is known. Unknown locales get a
// nil catalog, which formats everything in English.
func Locale(name string) (Catalog, bool) {
	c, ok := catalogs[name]
	return c, ok
}

// Locales lists the built-in locale names, sorted.
func Locales() []string {
	var out []string
	for name := range catalogs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// frCatalog translates the most common messages into French.
var frCatalog = Catalog{
	"doctype-first":       "le premier élément n'était pas la déclaration DOCTYPE",
	"unknown-element":     "élément inconnu <%s>",
	"unknown-attribute":   "attribut \"%s\" inconnu pour l'élément <%s>",
	"required-attribute":  "l'attribut %s est obligatoire pour l'élément <%s>",
	"unclosed-element":    "aucune balise </%s> trouvée pour <%s> ouverte à la ligne %d",
	"unmatched-close":     "balise </%s> sans balise ouvrante correspondante",
	"heading-mismatch":    "titre mal formé - la balise ouvrante est <%s>, mais la fermante est </%s>",
	"odd-quotes":          "nombre impair de guillemets dans l'élément %s",
	"element-overlap":     "</%s> à la ligne %d semble chevaucher <%s>, ouvert à la ligne %d.",
	"attribute-value":     "valeur illégale pour l'attribut %s de %s (%s)",
	"body-colors":         "valeur illégale pour l'attribut %s de %s (%s)",
	"empty-container":     "élément conteneur <%s> vide",
	"img-alt":             "IMG sans texte ALT",
	"img-size":            "IMG sans attributs WIDTH et HEIGHT",
	"html-outer":          "les balises extérieures devraient être <HTML> .. </HTML>",
	"require-title":       "pas de <TITLE> dans l'élément HEAD",
	"require-head":        "aucun élément <HEAD> trouvé",
	"here-anchor":         "mauvais style - le texte d'ancre \"%s\" est vide de sens",
	"attribute-delimiter": "la valeur de l'attribut %s (%s) de l'élément %s devrait être entre guillemets (c.-à-d. %s=\"%s\")",
	"markup-in-comment":   "du balisage dans un commentaire peut dérouter certains navigateurs",
	"deprecated-element":  "<%s> est déconseillé - utilisez %s à la place",
	"obsolete-element":    "<%s> est obsolète - utilisez %s à la place",
}

// deCatalog translates the most common messages into German.
var deCatalog = Catalog{
	"doctype-first":      "erstes Element war nicht die DOCTYPE-Angabe",
	"unknown-element":    "unbekanntes Element <%s>",
	"unknown-attribute":  "unbekanntes Attribut \"%s\" für Element <%s>",
	"required-attribute": "das Attribut %s ist für das Element <%s> erforderlich",
	"unclosed-element":   "kein schließendes </%s> für <%s> aus Zeile %d gefunden",
	"unmatched-close":    "</%s> ohne passendes öffnendes Tag",
	"heading-mismatch":   "fehlerhafte Überschrift - öffnendes Tag ist <%s>, schließendes ist </%s>",
	"odd-quotes":         "ungerade Anzahl von Anführungszeichen im Element %s",
	"element-overlap":    "</%s> in Zeile %d überlappt anscheinend <%s>, geöffnet in Zeile %d.",
	"attribute-value":    "unzulässiger Wert für Attribut %s von %s (%s)",
	"body-colors":        "unzulässiger Wert für Attribut %s von %s (%s)",
	"empty-container":    "leeres Container-Element <%s>",
	"img-alt":            "IMG ohne ALT-Text",
	"html-outer":         "die äußeren Tags sollten <HTML> .. </HTML> sein",
	"require-title":      "kein <TITLE> im HEAD-Element",
	"here-anchor":        "schlechter Stil - Ankertext \"%s\" ist nichtssagend",
}
