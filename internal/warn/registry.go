package warn

// This file registers every output message weblint can produce. The
// wording of the messages quoted in the paper's Section 4.2 example is
// reproduced verbatim; identifiers follow weblint 1.020's conventions
// where the paper or its examples name them, and are otherwise chosen
// to be self-describing.
//
// Messages which are esoteric or overly pedantic are registered with
// Default false, mirroring the paper's policy ("if a message seems
// esoteric or overly pedantic, it will be disabled by default").

func init() {
	// ----------------------------------------------------------------
	// Errors: incorrect use of syntax and other serious problems.
	// ----------------------------------------------------------------
	register(Def{
		ID: "unknown-element", Category: Error, Default: true,
		Format:  "unknown element <%s>",
		Explain: "The element name is not defined by the HTML version being checked against (nor by any enabled vendor extension). This is most often a typo, such as <BLOCKQOUTE>.",
	})
	register(Def{
		ID: "unknown-attribute", Category: Error, Default: true,
		Format:  "unknown attribute \"%s\" for element <%s>",
		Explain: "The attribute is not defined for this element in the HTML version being checked against. Check for typos, or enable a vendor extension if the attribute is vendor-specific.",
	})
	register(Def{
		ID: "required-attribute", Category: Error, Default: true,
		Format:  "the %s attribute is required for the <%s> element",
		Explain: "The HTML specification requires this attribute to be present, for example ROWS and COLS on <TEXTAREA>.",
	})
	register(Def{
		ID: "unclosed-element", Category: Error, Default: true,
		Format:  "no closing </%s> seen for <%s> on line %d",
		Explain: "A container element which requires an explicit closing tag was never closed before its enclosing structure ended.",
	})
	register(Def{
		ID: "unmatched-close", Category: Error, Default: true,
		Format:  "unmatched </%s> (no matching open tag seen)",
		Explain: "A closing tag appeared with no corresponding open element on the stack.",
	})
	register(Def{
		ID: "heading-mismatch", Category: Error, Default: true,
		Format:  "malformed heading - open tag is <%s>, but closing is </%s>",
		Explain: "A heading was opened at one level and closed at another, e.g. <H1>...</H2>.",
	})
	register(Def{
		ID: "odd-quotes", Category: Error, Default: true,
		Format:  "odd number of quotes in element %s",
		Explain: "The tag contains an unbalanced quote character, usually a missing closing quote on an attribute value.",
	})
	register(Def{
		ID: "element-overlap", Category: Error, Default: true,
		Format:  "</%s> on line %d seems to overlap <%s>, opened on line %d.",
		Explain: "Container elements must nest; here a close tag arrived while a more recently opened container was still open, e.g. <B><A>...</B></A>.",
	})
	register(Def{
		ID: "attribute-value", Category: Error, Default: true,
		Format:  "illegal value for %s attribute of %s (%s)",
		Explain: "The attribute value does not match the set of legal values for the attribute in this HTML version.",
	})
	register(Def{
		ID: "body-colors", Category: Error, Default: true,
		Format:  "illegal value for %s attribute of %s (%s)",
		Explain: "Color attributes must be either a color name or an RGB triplet of the form #rrggbb.",
	})
	register(Def{
		ID: "empty-container", Category: Error, Default: true,
		Format:  "empty container element <%s>",
		Explain: "The container element has no content at all; this is usually an editing accident.",
	})
	register(Def{
		ID: "required-context", Category: Error, Default: true,
		Format:  "illegal context for <%s> - must appear in %s element",
		Explain: "The element is only legal inside particular parents; for example <LI> must appear inside a list such as <UL> or <OL>.",
	})
	register(Def{
		ID: "head-element", Category: Error, Default: true,
		Format:  "<%s> can only appear in the HEAD element",
		Explain: "Elements such as <TITLE>, <BASE> and <META> describe the document and belong in the HEAD, not the BODY.",
	})
	register(Def{
		ID: "body-element", Category: Error, Default: true,
		Format:  "<%s> should only appear in the BODY",
		Explain: "Rendered markup belongs in the BODY element, not in the HEAD.",
	})
	register(Def{
		ID: "nested-element", Category: Error, Default: true,
		Format:  "<%s> cannot be nested - </%s> not yet seen for <%s> on line %d",
		Explain: "Some elements, such as <A> and <FORM>, may not be nested within themselves.",
	})
	register(Def{
		ID: "once-only", Category: Error, Default: true,
		Format:  "<%s> element already seen on line %d",
		Explain: "Elements such as <HTML>, <HEAD>, <BODY> and <TITLE> may appear only once per document.",
	})
	register(Def{
		ID: "closing-attribute", Category: Error, Default: true,
		Format:  "closing tag </%s> should not have any attributes specified",
		Explain: "Attributes are only legal on opening tags.",
	})
	register(Def{
		ID: "empty-element-close", Category: Error, Default: true,
		Format:  "</%s> is not legal - <%s> is an empty element",
		Explain: "Empty elements such as <BR> and <IMG> have no content and therefore no closing tag.",
	})
	register(Def{
		ID: "repeated-attribute", Category: Error, Default: true,
		Format:  "attribute %s is repeated in element <%s>",
		Explain: "The same attribute appears more than once in the tag; only the first occurrence will be used by most browsers.",
	})
	register(Def{
		ID: "unknown-entity", Category: Error, Default: true,
		Format:  "unknown entity &%s;",
		Explain: "The named character entity is not defined by the HTML version being checked against.",
	})
	register(Def{
		ID: "unterminated-entity", Category: Error, Default: true,
		Format:  "entity &%s is missing its closing ';'",
		Explain: "Character entities must be terminated with a semicolon; some browsers accept the unterminated form, many don't.",
	})
	register(Def{
		ID: "unterminated-comment", Category: Error, Default: true,
		Format:  "unterminated comment opened on line %d",
		Explain: "A comment was opened with <!-- but never closed with -->.",
	})
	register(Def{
		ID: "malformed-tag", Category: Error, Default: true,
		Format:  "malformed tag - '<' not followed by a tag name closed before end of document",
		Explain: "A '<' introduced what looked like markup but no closing '>' was found before the end of the document.",
	})
	register(Def{
		ID: "empty-tag", Category: Error, Default: true,
		Format:  "empty tag \"<>\"",
		Explain: "A bare <> pair is not legal markup.",
	})
	register(Def{
		ID: "duplicate-id", Category: Error, Default: true,
		Format:  "document ID \"%s\" already used on line %d",
		Explain: "The ID attribute must be unique within a document.",
	})
	register(Def{
		ID: "duplicate-anchor", Category: Error, Default: true,
		Format:  "anchor name \"%s\" already used on line %d",
		Explain: "Two anchors in the same document have the same NAME; fragment links to it are ambiguous.",
	})
	register(Def{
		ID: "bad-link", Category: Error, Default: true,
		Format:  "target for anchor \"%s\" not found",
		Explain: "The link target does not exist. For local links the file was not found; for remote links the server reported failure.",
	})

	// ----------------------------------------------------------------
	// Warnings: recommended optional syntax, portability problems,
	// and questionable use of HTML.
	// ----------------------------------------------------------------
	register(Def{
		ID: "doctype-first", Category: Warning, Default: true,
		Format:  "first element was not DOCTYPE specification",
		Explain: "The DOCTYPE declaration identifies the definition of HTML which your page uses and should precede all other markup.",
	})
	register(Def{
		ID: "html-outer", Category: Warning, Default: true,
		Format:  "outer tags should be <HTML> .. </HTML>",
		Explain: "The entire document should be wrapped in a single HTML element.",
	})
	register(Def{
		ID: "require-head", Category: Warning, Default: true,
		Format:  "no <HEAD> element found",
		Explain: "Documents should contain a HEAD element holding the TITLE and document metadata.",
	})
	register(Def{
		ID: "require-title", Category: Warning, Default: true,
		Format:  "no <TITLE> in HEAD element",
		Explain: "Every document should have a title; it is used by browsers, bookmarks and search engines.",
	})
	register(Def{
		ID: "empty-title", Category: Warning, Default: true,
		Format:  "<TITLE> element is empty",
		Explain: "The document title has no content.",
	})
	register(Def{
		ID: "title-length", Category: Warning, Default: false,
		Format:  "TITLE is %d characters long - many browsers display at most %d",
		Explain: "Very long titles are truncated by browsers and search engines.",
	})
	register(Def{
		ID: "attribute-delimiter", Category: Warning, Default: true,
		Format:  "value for attribute %s (%s) of element %s should be quoted (i.e. %s=\"%s\")",
		Explain: "Attribute values containing anything other than letters, digits, hyphens and periods must be quoted.",
	})
	register(Def{
		ID: "single-quotes", Category: Warning, Default: true,
		Format:  "use of single quotes around value for attribute %s of element %s (many clients can't handle them)",
		Explain: "HTML allows attribute values to be quoted with single or double quotes, but many clients and HTML processors can't handle single quotes.",
	})
	register(Def{
		ID: "img-alt", Category: Warning, Default: true,
		Format:  "IMG does not have ALT text defined",
		Explain: "ALT text is rendered by text-only browsers and speech clients, and shown while images load; every IMG should carry it.",
	})
	register(Def{
		ID: "img-size", Category: Warning, Default: false,
		Format:  "IMG does not have WIDTH and HEIGHT attributes specified",
		Explain: "WIDTH and HEIGHT let browsers lay out the page before the image arrives, giving the impression of a faster loading page.",
	})
	register(Def{
		ID: "markup-in-comment", Category: Warning, Default: true,
		Format:  "markup embedded in a comment can confuse some browsers",
		Explain: "It is legal to comment out markup, but quick and dirty parsers can be confused by it.",
	})
	register(Def{
		ID: "nested-comment", Category: Warning, Default: true,
		Format:  "\"--\" sequence within comment; possible nested comment",
		Explain: "SGML comments use -- as delimiters; a -- inside a comment body may be parsed as the end of the comment by some browsers.",
	})
	register(Def{
		ID: "deprecated-element", Category: Warning, Default: true,
		Format:  "<%s> is deprecated - use %s instead",
		Explain: "The element is deprecated in the HTML version being checked against in favour of a newer construct.",
	})
	register(Def{
		ID: "obsolete-element", Category: Warning, Default: true,
		Format:  "<%s> is obsolete - use %s instead",
		Explain: "The element has been removed from HTML, e.g. <LISTING>, in place of which you should use <PRE>.",
	})
	register(Def{
		ID: "deprecated-attribute", Category: Warning, Default: false,
		Format:  "attribute %s of element <%s> is deprecated",
		Explain: "The attribute is deprecated in the HTML version being checked against, usually in favour of style sheets.",
	})
	register(Def{
		ID: "extension-markup", Category: Warning, Default: true,
		Format:  "<%s> is %s-specific markup (not part of %s)",
		Explain: "The element is a vendor extension and will not be understood by other browsers. Enable the extension with -x to accept it silently.",
	})
	register(Def{
		ID: "extension-attribute", Category: Warning, Default: true,
		Format:  "attribute %s of element <%s> is %s-specific (not part of %s)",
		Explain: "The attribute is a vendor extension and will not be understood by other browsers.",
	})
	register(Def{
		ID: "heading-order", Category: Warning, Default: true,
		Format:  "bad style - heading <%s> follows <%s> - skipped heading level",
		Explain: "Heading levels should descend one step at a time; an H3 directly after an H1 skips a level.",
	})
	register(Def{
		ID: "spurious-slash", Category: Warning, Default: true,
		Format:  "spurious trailing '/' in tag <%s>",
		Explain: "A trailing slash inside a tag (as in <BR/>) is not legal in classic HTML and confuses older browsers.",
	})
	register(Def{
		ID: "form-field-context", Category: Warning, Default: true,
		Format:  "<%s> should only appear inside a <FORM> element",
		Explain: "Form fields outside a FORM cannot be submitted anywhere.",
	})
	register(Def{
		ID: "require-noframes", Category: Warning, Default: true,
		Format:  "FRAMESET without NOFRAMES - content is inaccessible to clients without frames",
		Explain: "Provide a NOFRAMES alternative so text browsers and robots can reach your content.",
	})
	register(Def{
		ID: "metacharacter", Category: Warning, Default: true,
		Format:  "literal '%s' in text should be written as %s",
		Explain: "The SGML metacharacters <, > and & should be written as entities in document text.",
	})
	register(Def{
		ID: "bad-url-scheme", Category: Warning, Default: true,
		Format:  "unknown URL scheme \"%s\" in link \"%s\"",
		Explain: "The link's scheme is not one of the well-known schemes; this is most often a typo like \"htpp:\".",
	})
	register(Def{
		ID: "bad-text-context", Category: Warning, Default: true,
		Format:  "text appears directly in the <%s> element",
		Explain: "Document text must appear inside BODY content, not directly in HTML or HEAD.",
	})
	register(Def{
		ID: "unexpected-open", Category: Warning, Default: true,
		Format:  "unexpected <%s> - previous <%s> on line %d not closed",
		Explain: "A new once-only structural element was opened while a previous one was still open.",
	})
	register(Def{
		ID: "stray-doctype", Category: Warning, Default: true,
		Format:  "DOCTYPE specification should appear only at the start of the document",
		Explain: "The DOCTYPE declaration must be the very first thing in the document.",
	})
	register(Def{
		ID: "meta-in-body", Category: Warning, Default: true,
		Format:  "<META> should be used in the HEAD element",
		Explain: "META elements provide document metadata and belong in the HEAD.",
	})
	register(Def{
		ID: "bad-inline-directive", Category: Warning, Default: true,
		Format:  "unrecognised weblint directive in comment (%s)",
		Explain: "Page-embedded configuration comments have the form <!-- weblint: enable id ... --> or <!-- weblint: disable id ... -->.",
	})
	register(Def{
		ID: "unhidden-script", Category: Warning, Default: false,
		Format:  "contents of <%s> element should be hidden inside an SGML comment for older browsers",
		Explain: "Browsers that predate SCRIPT/STYLE render their content as text unless it is wrapped in a comment.",
	})

	// ----------------------------------------------------------------
	// Style: usage which at least one person thinks is questionable.
	// ----------------------------------------------------------------
	register(Def{
		ID: "here-anchor", Category: Style, Default: false,
		Format:  "bad style - anchor text \"%s\" is content-free",
		Explain: "Anchor text such as \"here\" or \"click here\" carries no meaning; many search engines use anchor text, so make it descriptive.",
	})
	register(Def{
		ID: "physical-font", Category: Style, Default: false,
		Format:  "bad style - use logical markup (e.g. <%s>) rather than physical markup (<%s>)",
		Explain: "Logical markup such as <STRONG> and <EM> expresses intent and renders sensibly everywhere; physical markup such as <B> and <I> does not.",
	})
	register(Def{
		ID: "mailto-link", Category: Style, Default: false,
		Format:  "mailto link \"%s\" - consider also giving the address as text",
		Explain: "mailto: links are useless in browsers without configured mail; spell the address out as well.",
	})
	register(Def{
		ID: "heading-in-anchor", Category: Style, Default: false,
		Format:  "bad style - heading <%s> inside anchor; anchor should be inside the heading",
		Explain: "Put the anchor inside the heading, not the heading inside the anchor.",
	})
	register(Def{
		ID: "tag-case", Category: Style, Default: false,
		Format:  "tag <%s> is not in %s case",
		Explain: "A local style guide may require all element names to be in a consistent case; configure the preferred case with 'set tag-case'.",
	})
	register(Def{
		ID: "attribute-case", Category: Style, Default: false,
		Format:  "attribute %s of <%s> is not in %s case",
		Explain: "A local style guide may require all attribute names in a consistent case.",
	})
	register(Def{
		ID: "anchor-whitespace", Category: Style, Default: false,
		Format:  "whitespace between anchor tag and anchor text",
		Explain: "Leading or trailing whitespace inside an anchor is underlined by many browsers and looks sloppy.",
	})
	register(Def{
		ID: "require-meta", Category: Style, Default: false,
		Format:  "no <META NAME=\"%s\"> found in HEAD",
		Explain: "META description and keywords improve how the page is presented by search engines.",
	})
	register(Def{
		ID: "require-version", Category: Style, Default: false,
		Format:  "DOCTYPE does not declare an HTML version",
		Explain: "The DOCTYPE should reference a public HTML DTD identifier.",
	})
	register(Def{
		ID: "container-whitespace", Category: Style, Default: false,
		Format:  "%s whitespace in content of container element <%s>",
		Explain: "Leading or trailing whitespace in containers such as headings is rendered by some browsers.",
	})

	// ----------------------------------------------------------------
	// Site-mode messages (-R recursion and robot mode).
	// ----------------------------------------------------------------
	register(Def{
		ID: "no-index-file", Category: Warning, Default: true,
		Format:  "directory %s does not have an index file",
		Explain: "Requests for the directory URL will show a server-generated listing (or an error) instead of a page you control.",
	})
	register(Def{
		ID: "orphan-page", Category: Warning, Default: true,
		Format:  "page %s is not linked to by any other page checked",
		Explain: "No checked page links to this page; visitors can only reach it by typing the URL or via an external link.",
	})
	register(Def{
		ID: "bad-fragment", Category: Warning, Default: true,
		Format:  "anchor \"#%s\" is not defined in %s",
		Explain: "The link's fragment does not match any <A NAME> or ID attribute in the target page; the browser will land at the top of the page.",
	})
}
