package warn

import (
	"strings"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	if Count() == 0 {
		t.Fatal("registry is empty")
	}
	if len(IDs()) != Count() {
		t.Errorf("IDs() length %d != Count() %d", len(IDs()), Count())
	}
	if Lookup("doctype-first") == nil {
		t.Error("doctype-first not registered")
	}
	if Lookup("no-such-warning") != nil {
		t.Error("bogus id resolved")
	}
}

// TestE2MessageInventory is experiment E2: the paper reports weblint
// 1.020 supported 50 output messages, 42 enabled by default, in three
// categories. This implementation is a weblint-2-generation rewrite
// with a larger inventory; the test pins the shape of the claim: a
// substantial inventory, most-but-not-all enabled by default, three
// categories all populated.
func TestE2MessageInventory(t *testing.T) {
	total := Count()
	enabled := DefaultEnabledCount()
	if total < 50 {
		t.Errorf("message inventory %d; the paper's tool had 50", total)
	}
	if enabled >= total {
		t.Error("every message is default-enabled; pedantic ones must be off")
	}
	if enabled < total/2 {
		t.Errorf("only %d/%d messages default-enabled; defaults should cover common practice", enabled, total)
	}
	byCat := CountByCategory()
	for _, c := range []Category{Error, Warning, Style} {
		if byCat[c] == 0 {
			t.Errorf("category %v has no messages", c)
		}
	}
	t.Logf("inventory: %d messages, %d enabled by default (paper: 50/42); errors=%d warnings=%d style=%d",
		total, enabled, byCat[Error], byCat[Warning], byCat[Style])
}

func TestEveryDefHasTextAndExplanation(t *testing.T) {
	for _, id := range IDs() {
		d := Lookup(id)
		if d.Format == "" {
			t.Errorf("%s: empty format", id)
		}
		if d.Explain == "" {
			t.Errorf("%s: empty explanation", id)
		}
		if d.Category != Error && d.Category != Warning && d.Category != Style {
			t.Errorf("%s: bad category %v", id, d.Category)
		}
	}
}

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{Error: "error", Warning: "warning", Style: "style"}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if got := Category(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown category string = %q", got)
	}
}

func TestParseCategory(t *testing.T) {
	for _, s := range []string{"error", "errors", "warning", "warnings", "style"} {
		if _, ok := ParseCategory(s); !ok {
			t.Errorf("ParseCategory(%q) failed", s)
		}
	}
	if _, ok := ParseCategory("nonsense"); ok {
		t.Error("ParseCategory accepted nonsense")
	}
}

func TestSetDefaults(t *testing.T) {
	s := NewSet()
	n := 0
	for _, id := range IDs() {
		if s.Enabled(id) != Lookup(id).Default {
			t.Errorf("%s: enabled=%v, default=%v", id, s.Enabled(id), Lookup(id).Default)
		}
		if s.Enabled(id) {
			n++
		}
	}
	if n != DefaultEnabledCount() {
		t.Errorf("enabled count %d != DefaultEnabledCount %d", n, DefaultEnabledCount())
	}
}

func TestSetEnableDisableByID(t *testing.T) {
	s := NewSet()
	if err := s.Disable("doctype-first"); err != nil {
		t.Fatal(err)
	}
	if s.Enabled("doctype-first") {
		t.Error("doctype-first still enabled after Disable")
	}
	if err := s.Enable("doctype-first"); err != nil {
		t.Fatal(err)
	}
	if !s.Enabled("doctype-first") {
		t.Error("doctype-first not enabled after Enable")
	}
}

func TestSetEnableUnknownID(t *testing.T) {
	s := NewSet()
	if err := s.Enable("made-up-warning"); err == nil {
		t.Error("Enable of unknown id did not error")
	}
	if err := s.Disable("made-up-warning"); err == nil {
		t.Error("Disable of unknown id did not error")
	}
}

func TestSetEnableByCategory(t *testing.T) {
	s := NewSet()
	if err := s.Enable("style"); err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if Lookup(id).Category == Style && !s.Enabled(id) {
			t.Errorf("style message %s not enabled after Enable(style)", id)
		}
	}
	if err := s.Disable("errors"); err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if Lookup(id).Category == Error && s.Enabled(id) {
			t.Errorf("error message %s still enabled after Disable(errors)", id)
		}
	}
}

func TestSetAll(t *testing.T) {
	s := NewSet()
	if err := s.Disable("all"); err != nil {
		t.Fatal(err)
	}
	if got := len(s.EnabledIDs()); got != 0 {
		t.Errorf("%d messages enabled after Disable(all)", got)
	}
	if err := s.Enable("all"); err != nil {
		t.Fatal(err)
	}
	if got := len(s.EnabledIDs()); got != Count() {
		t.Errorf("%d messages enabled after Enable(all), want %d", got, Count())
	}
}

func TestAllEnabled(t *testing.T) {
	s := AllEnabled()
	if len(s.EnabledIDs()) != Count() {
		t.Error("AllEnabled did not enable everything")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewSet()
	b := a.Clone()
	if err := b.Disable("all"); err != nil {
		t.Fatal(err)
	}
	if !a.Enabled("doctype-first") {
		t.Error("mutating clone affected original")
	}
}

func TestEmitterFiltering(t *testing.T) {
	s := NewSet()
	if err := s.Disable("doctype-first"); err != nil {
		t.Fatal(err)
	}
	e := NewEmitter(s)
	e.Emit("doctype-first", "f.html", 1, 0)
	e.Emit("html-outer", "f.html", 1, 0)
	msgs := e.Messages()
	if len(msgs) != 1 || msgs[0].ID != "html-outer" {
		t.Fatalf("messages = %+v, want just html-outer", msgs)
	}
}

func TestEmitterFormatsArgs(t *testing.T) {
	e := NewEmitter(nil)
	e.Emit("unclosed-element", "f.html", 4, 0, "TITLE", "TITLE", 3)
	got := e.Messages()[0].Text
	want := "no closing </TITLE> seen for <TITLE> on line 3"
	if got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
	if e.Messages()[0].Category != Error {
		t.Error("category not copied from def")
	}
}

func TestEmitterPanicsOnUnregistered(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on unregistered id")
		}
	}()
	NewEmitter(nil).Emit("bogus-id", "f", 1, 0)
}

func TestEmitterReset(t *testing.T) {
	e := NewEmitter(nil)
	e.Emit("html-outer", "f", 1, 0)
	e.Reset()
	if len(e.Messages()) != 0 {
		t.Error("messages survived Reset")
	}
}

func TestSortByLine(t *testing.T) {
	ms := []Message{
		{File: "b", Line: 1},
		{File: "a", Line: 9},
		{File: "a", Line: 2, Col: 5},
		{File: "a", Line: 2, Col: 1},
	}
	SortByLine(ms)
	// Same (file, line) keeps emission order: columns never reorder
	// (the checker's within-line order is part of the output contract).
	if ms[0].File != "a" || ms[0].Line != 2 || ms[0].Col != 5 {
		t.Errorf("sort order wrong: %+v", ms)
	}
	if ms[1].Col != 1 || ms[3].File != "b" {
		t.Errorf("stability/file order wrong: %+v", ms)
	}
}

func TestFormatters(t *testing.T) {
	m := Message{ID: "doctype-first", Category: Warning, File: "test.html", Line: 1,
		Text: "first element was not DOCTYPE specification"}

	if got := (Lint{}).Format(m); got != "test.html(1): first element was not DOCTYPE specification" {
		t.Errorf("lint format = %q", got)
	}
	if got := (Short{}).Format(m); got != "line 1: first element was not DOCTYPE specification" {
		t.Errorf("short format = %q", got)
	}
	if got := (Terse{}).Format(m); got != "test.html:1:doctype-first" {
		t.Errorf("terse format = %q", got)
	}
	v := (Verbose{}).Format(m)
	if !strings.Contains(v, "test.html(1):") || !strings.Contains(v, "\n    ") {
		t.Errorf("verbose format missing parts: %q", v)
	}
	if !strings.Contains(v, "[doctype-first, warning]") {
		t.Errorf("verbose format missing id/category: %q", v)
	}
}

func TestVerboseWrapWidth(t *testing.T) {
	m := Message{ID: "doctype-first", File: "f", Line: 1, Text: "x"}
	out := (Verbose{Width: 40}).Format(m)
	for i, line := range strings.Split(out, "\n")[1:] {
		if len(line) > 44 {
			t.Errorf("explanation line %d too long (%d): %q", i, len(line), line)
		}
	}
}

func TestFormatterFunc(t *testing.T) {
	f := FormatterFunc(func(m Message) string { return m.ID })
	if f.Format(Message{ID: "x"}) != "x" {
		t.Error("FormatterFunc did not delegate")
	}
}

func TestFormatAll(t *testing.T) {
	ms := []Message{{ID: "a", File: "f", Line: 1, Text: "one"}, {ID: "b", File: "f", Line: 2, Text: "two"}}
	out := FormatAll(Short{}, ms)
	if out != "line 1: one\nline 2: two\n" {
		t.Errorf("FormatAll = %q", out)
	}
}

func TestWrap(t *testing.T) {
	lines := wrap("a b c d e f", 3)
	for _, l := range lines {
		if len(l) > 8 {
			t.Errorf("line %q exceeds clamped width", l)
		}
	}
	if len(wrap("", 20)) != 0 {
		t.Error("wrap of empty text returned lines")
	}
	one := wrap("word", 20)
	if len(one) != 1 || one[0] != "word" {
		t.Errorf("wrap single word = %v", one)
	}
}

// TestLateRegistrationConfigurable verifies a message registered after
// a Set was built can still be enabled/disabled through that Set, and
// stays silent until explicitly enabled (the semantics of the original
// id→bool set).
func TestLateRegistrationConfigurable(t *testing.T) {
	s := NewSet()
	Register(Def{
		ID: "late-test-check", Category: Warning, Default: true,
		Format: "late check: %s",
	})
	e := NewEmitter(s)
	e.Emit("late-test-check", "f", 1, 0, "x")
	if len(e.Messages()) != 0 {
		t.Error("late-registered id emitted without being enabled in the set")
	}
	if err := s.Enable("late-test-check"); err != nil {
		t.Fatalf("Enable of late-registered id: %v", err)
	}
	if !s.Enabled("late-test-check") {
		t.Error("late-registered id not enabled after Enable")
	}
	e.Emit("late-test-check", "f", 1, 0, "x")
	if len(e.Messages()) != 1 || e.Messages()[0].Text != "late check: x" {
		t.Errorf("messages = %+v", e.Messages())
	}
	if err := s.Disable("late-test-check"); err != nil {
		t.Fatalf("Disable of late-registered id: %v", err)
	}
	if s.Enabled("late-test-check") {
		t.Error("still enabled after Disable")
	}
}

// TestEmitterSetIsPrivate verifies NewEmitter(nil) emitters do not
// share mutable state: disabling through one emitter's Set must not
// affect another.
func TestEmitterSetIsPrivate(t *testing.T) {
	a := NewEmitter(nil)
	b := NewEmitter(nil)
	if err := a.Set().Disable("img-alt"); err != nil {
		t.Fatal(err)
	}
	if !b.Set().Enabled("img-alt") {
		t.Error("mutating one nil-set emitter's Set affected another")
	}
}
