package warn

import (
	"fmt"
	"strings"
)

// Formatter renders a Message to one line (or, for verbose formatters,
// several). The checker and CLI are formatter-agnostic; the gateway
// installs its own HTML formatter, which is the paper's "warnings
// module can be sub-classed" mechanism.
type Formatter interface {
	Format(Message) string
}

// FormatterFunc adapts a function to the Formatter interface.
type FormatterFunc func(Message) string

// Format calls f(m).
func (f FormatterFunc) Format(m Message) string { return f(m) }

// Lint is the default, traditional lint style of message:
//
//	test.html(1): first element was not DOCTYPE specification
type Lint struct{}

// Format renders m in traditional lint style.
func (Lint) Format(m Message) string {
	return fmt.Sprintf("%s(%d): %s", m.File, m.Line, m.Text)
}

// Short is the -s style of message shown in the paper:
//
//	line 1: first element was not DOCTYPE specification
type Short struct{}

// Format renders m in short style.
func (Short) Format(m Message) string {
	return fmt.Sprintf("line %d: %s", m.Line, m.Text)
}

// Terse is a machine-readable style for driving editors and scripts:
//
//	test.html:1:doctype-first
type Terse struct{}

// Format renders m in terse style.
func (Terse) Format(m Message) string {
	return fmt.Sprintf("%s:%d:%s", m.File, m.Line, m.ID)
}

// Verbose renders the lint-style line followed by the message's longer
// explanation, wrapped to Width columns (default 72 when zero).
type Verbose struct {
	// Width is the wrap column for the explanation text.
	Width int
}

// Format renders m with its explanation.
func (v Verbose) Format(m Message) string {
	width := v.Width
	if width <= 0 {
		width = 72
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%d): %s [%s, %s]", m.File, m.Line, m.Text, m.ID, m.Category)
	if d := Lookup(m.ID); d != nil && d.Explain != "" {
		for _, line := range wrap(d.Explain, width-4) {
			b.WriteString("\n    ")
			b.WriteString(line)
		}
	}
	return b.String()
}

// wrap splits text into lines no longer than width, breaking at spaces.
func wrap(text string, width int) []string {
	if width < 8 {
		width = 8
	}
	words := strings.Fields(text)
	var lines []string
	var cur strings.Builder
	for _, w := range words {
		if cur.Len() > 0 && cur.Len()+1+len(w) > width {
			lines = append(lines, cur.String())
			cur.Reset()
		}
		if cur.Len() > 0 {
			cur.WriteByte(' ')
		}
		cur.WriteString(w)
	}
	if cur.Len() > 0 {
		lines = append(lines, cur.String())
	}
	return lines
}

// FormatAll renders every message with f, one per line, in the given
// order.
func FormatAll(f Formatter, ms []Message) string {
	var b strings.Builder
	for _, m := range ms {
		b.WriteString(f.Format(m))
		b.WriteByte('\n')
	}
	return b.String()
}
