package warn

import (
	"context"
	"fmt"
	"io"
)

// Sink is the universal streaming diagnostics channel: every layer of
// the pipeline (emitter, linter, batch engine, site walker, command
// line) delivers messages by writing them to a Sink, one at a time, as
// they are produced.
//
// Write consumes one message and reports whether the producer should
// continue: returning false cancels the check (or batch) feeding the
// sink, which stops promptly and produces no further messages. A Sink
// is driven by a single goroutine at a time; implementations only need
// internal synchronisation when one instance is deliberately shared
// across concurrent checks.
//
// Plugin authors: a renderer, filter, counter or forwarder is just a
// Sink. Compose them by wrapping — see Summary.Sink for a counting
// pass-through and NewWriterSink for a Formatter-backed line writer.
type Sink interface {
	Write(Message) bool
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Message) bool

// Write calls f(m).
func (f SinkFunc) Write(m Message) bool { return f(m) }

// ContextSink wraps next so the stream cancels once ctx is done: the
// first Write at or after cancellation returns false without
// delivering its message, which stops the producing check through the
// normal sink seam. Suppression observations pass through.
//
// It bounds delivery, not computation: a check that emits nothing has
// no Write to refuse, which is why deadline-bounded lints also install
// an emitter cancel flag (see lint.CheckStringToCtx) that the checker
// polls between tokens.
func ContextSink(ctx context.Context, next Sink) Sink {
	return &contextSink{ctx: ctx, next: next}
}

type contextSink struct {
	ctx  context.Context
	next Sink
}

func (s *contextSink) Write(m Message) bool {
	if s.ctx.Err() != nil {
		return false
	}
	return s.next.Write(m)
}

func (s *contextSink) ObserveSuppressed(id string) {
	if o, ok := s.next.(SuppressionObserver); ok {
		o.ObserveSuppressed(id)
	}
}

// Collector is a Sink that accumulates messages in order. It is how
// the slice-returning check APIs are built on the streaming core: run
// the check into a Collector, then hand back its Messages.
type Collector struct {
	// Messages are the collected messages, in write order.
	Messages []Message
}

// Write appends m and never cancels.
func (c *Collector) Write(m Message) bool {
	c.Messages = append(c.Messages, m)
	return true
}

// Reset discards collected messages, retaining capacity.
func (c *Collector) Reset() { c.Messages = c.Messages[:0] }

// SuppressionObserver is implemented by sinks that want to know about
// emissions the emitter dropped because their message ID was disabled.
// The emitter checks for it only on the suppressed path, so ordinary
// sinks pay nothing.
type SuppressionObserver interface {
	// ObserveSuppressed reports one suppressed emission of id.
	ObserveSuppressed(id string)
}

// ReplaySuppressed forwards recorded suppressed-emission IDs into sink
// when it cares; a sink without SuppressionObserver ignores them.
func ReplaySuppressed(sink Sink, ids []string) {
	if len(ids) == 0 {
		return
	}
	if o, ok := sink.(SuppressionObserver); ok {
		for _, id := range ids {
			o.ObserveSuppressed(id)
		}
	}
}

// Recorder is a Collector that additionally records suppressed
// emission IDs, in emission order. Buffered delivery paths (the batch
// engine, the sequential CLI) check into a Recorder and later Replay
// it into the real sink, so per-rule suppression stats survive the
// buffering hop.
type Recorder struct {
	Collector
	// SuppressedIDs are the IDs of suppressed emissions, in order.
	SuppressedIDs []string
}

// ObserveSuppressed records one suppressed emission.
func (r *Recorder) ObserveSuppressed(id string) {
	r.SuppressedIDs = append(r.SuppressedIDs, id)
}

// Replay forwards the recorded suppressions and then every collected
// message into sink, reporting whether the stream may continue.
func (r *Recorder) Replay(sink Sink) bool {
	ReplaySuppressed(sink, r.SuppressedIDs)
	for _, m := range r.Messages {
		if !sink.Write(m) {
			return false
		}
	}
	return true
}

// WriterSink renders each message with a Formatter and writes it to an
// io.Writer, one per line. The first write error cancels the stream
// and is retained for Err.
type WriterSink struct {
	f   Formatter
	w   io.Writer
	buf []byte
	err error
}

// NewWriterSink returns a WriterSink rendering through f to w.
func NewWriterSink(f Formatter, w io.Writer) *WriterSink {
	return &WriterSink{f: f, w: w}
}

// Write renders and writes one message, returning false once a write
// has failed.
func (s *WriterSink) Write(m Message) bool {
	if s.err != nil {
		return false
	}
	s.buf = append(s.buf[:0], s.f.Format(m)...)
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
		return false
	}
	return true
}

// Err returns the first write error, or nil.
func (s *WriterSink) Err() error { return s.err }

// Summary counts diagnostics by category. It is the severity-policy
// half of the pipeline: stream messages through Sink (or count them
// directly with Add), then derive an exit decision from Failures.
type Summary struct {
	// Errors, Warnings and Style are the per-category counts.
	Errors   int
	Warnings int
	Style    int
	// Suppressed counts emissions dropped because their message ID
	// was disabled, per ID. Nil until the first suppression is
	// observed.
	Suppressed map[string]int
}

// Add counts one message.
func (s *Summary) Add(m Message) {
	switch m.Category {
	case Error:
		s.Errors++
	case Warning:
		s.Warnings++
	case Style:
		s.Style++
	}
}

// AddSuppressed counts one suppressed emission of id.
func (s *Summary) AddSuppressed(id string) {
	if s.Suppressed == nil {
		s.Suppressed = make(map[string]int)
	}
	s.Suppressed[id]++
}

// SuppressedTotal returns how many emissions were suppressed in all.
func (s *Summary) SuppressedTotal() int {
	n := 0
	for _, c := range s.Suppressed {
		n += c
	}
	return n
}

// Total returns the number of messages counted.
func (s *Summary) Total() int { return s.Errors + s.Warnings + s.Style }

// Count returns the count for one category.
func (s *Summary) Count(c Category) int {
	switch c {
	case Error:
		return s.Errors
	case Warning:
		return s.Warnings
	case Style:
		return s.Style
	}
	return 0
}

// Sink returns a counting pass-through: every message is counted into
// s and then forwarded to next. A nil next counts without forwarding.
// The returned sink also observes suppressed emissions (counting them
// into s.Suppressed) and forwards them to next when it cares.
func (s *Summary) Sink(next Sink) Sink {
	return &summarySink{s: s, next: next}
}

// summarySink is the counting pass-through Summary.Sink returns.
type summarySink struct {
	s    *Summary
	next Sink
}

func (k *summarySink) Write(m Message) bool {
	k.s.Add(m)
	if k.next == nil {
		return true
	}
	return k.next.Write(m)
}

func (k *summarySink) ObserveSuppressed(id string) {
	k.s.AddSuppressed(id)
	if o, ok := k.next.(SuppressionObserver); ok {
		o.ObserveSuppressed(id)
	}
}

// String renders the summary as "N errors, N warnings, N style".
func (s *Summary) String() string {
	return fmt.Sprintf("%d %s, %d %s, %d style",
		s.Errors, plural("error", s.Errors),
		s.Warnings, plural("warning", s.Warnings),
		s.Style)
}

func plural(word string, n int) string {
	if n == 1 {
		return word
	}
	return word + "s"
}

// FailOn is the severity threshold that turns findings into a failing
// exit: findings at or above the threshold fail the run.
type FailOn int

const (
	// FailOnError fails only on errors.
	FailOnError FailOn = iota
	// FailOnWarning fails on errors and warnings.
	FailOnWarning
	// FailOnStyle fails on any finding, style comments included. It
	// is the historical weblint behaviour ("any problem exits 1") and
	// the default.
	FailOnStyle
	// FailOnNever never fails on findings; only operational errors
	// produce a non-zero exit.
	FailOnNever
)

// ParseFailOn converts a threshold name to a FailOn. "any" is accepted
// as an alias for "style" (every finding fails). The boolean result
// reports whether the name was valid.
func ParseFailOn(s string) (FailOn, bool) {
	switch s {
	case "error", "errors":
		return FailOnError, true
	case "warning", "warnings":
		return FailOnWarning, true
	case "style", "any":
		return FailOnStyle, true
	case "never", "none":
		return FailOnNever, true
	}
	return 0, false
}

// String returns the canonical threshold name.
func (f FailOn) String() string {
	switch f {
	case FailOnError:
		return "error"
	case FailOnWarning:
		return "warning"
	case FailOnStyle:
		return "style"
	case FailOnNever:
		return "never"
	}
	return fmt.Sprintf("failon(%d)", int(f))
}

// Failures returns how many counted findings are at or above the
// threshold f: the run should exit non-zero when it is positive.
func (s *Summary) Failures(f FailOn) int {
	switch f {
	case FailOnError:
		return s.Errors
	case FailOnWarning:
		return s.Errors + s.Warnings
	case FailOnStyle:
		return s.Errors + s.Warnings + s.Style
	}
	return 0
}
