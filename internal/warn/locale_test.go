package warn

import (
	"fmt"
	"strings"
	"testing"
)

func TestLocaleLookup(t *testing.T) {
	if _, ok := Locale("fr"); !ok {
		t.Error("fr locale missing")
	}
	if _, ok := Locale("de"); !ok {
		t.Error("de locale missing")
	}
	if _, ok := Locale("xx"); ok {
		t.Error("unknown locale resolved")
	}
	locs := Locales()
	if len(locs) != 2 || locs[0] != "de" || locs[1] != "fr" {
		t.Errorf("Locales() = %v", locs)
	}
}

// TestCatalogEntriesAreValid: every catalog entry must reference a
// registered message and carry the same number (and order) of format
// verbs as the English template, so translated messages format
// correctly with the same arguments.
func TestCatalogEntriesAreValid(t *testing.T) {
	for _, name := range Locales() {
		c, _ := Locale(name)
		for id, format := range c {
			d := Lookup(id)
			if d == nil {
				t.Errorf("%s: catalog entry for unregistered id %q", name, id)
				continue
			}
			if got, want := verbs(format), verbs(d.Format); got != want {
				t.Errorf("%s/%s: verbs %q, English has %q", name, id, got, want)
			}
		}
	}
}

// verbs extracts the sequence of format verbs from a template.
func verbs(format string) string {
	var b strings.Builder
	for i := 0; i < len(format); i++ {
		if format[i] != '%' || i+1 >= len(format) {
			continue
		}
		i++
		if format[i] == '%' {
			continue
		}
		b.WriteByte(format[i])
	}
	return b.String()
}

func TestEmitterCatalog(t *testing.T) {
	e := NewEmitter(nil)
	cat, _ := Locale("fr")
	e.SetCatalog(cat)
	e.Emit("doctype-first", "f.html", 1, 0)
	got := e.Messages()[0].Text
	if got != "le premier élément n'était pas la déclaration DOCTYPE" {
		t.Errorf("translated text = %q", got)
	}
}

func TestEmitterCatalogFallback(t *testing.T) {
	e := NewEmitter(nil)
	e.SetCatalog(Catalog{}) // empty catalog: everything falls back
	e.Emit("doctype-first", "f.html", 1, 0)
	if got := e.Messages()[0].Text; got != "first element was not DOCTYPE specification" {
		t.Errorf("fallback text = %q", got)
	}
}

func TestCatalogFormatsArgs(t *testing.T) {
	e := NewEmitter(nil)
	cat, _ := Locale("fr")
	e.SetCatalog(cat)
	e.Emit("unclosed-element", "f.html", 4, 0, "TITLE", "TITLE", 3)
	got := e.Messages()[0].Text
	want := "aucune balise </TITLE> trouvée pour <TITLE> ouverte à la ligne 3"
	if got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
	if strings.Contains(got, "%!") {
		t.Errorf("format error in translation: %s", got)
	}
	_ = fmt.Sprintf // documented dependency of the catalog contract
}
