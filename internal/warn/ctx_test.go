package warn

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestContextSinkPassesThroughUntilDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var got Collector
	s := ContextSink(ctx, &got)

	if !s.Write(Message{ID: "x", Text: "one"}) {
		t.Fatal("live context refused a write")
	}
	cancel()
	if s.Write(Message{ID: "x", Text: "two"}) {
		t.Fatal("cancelled context accepted a write")
	}
	if len(got.Messages) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got.Messages))
	}
}

func TestContextSinkForwardsSuppressions(t *testing.T) {
	var rec Recorder
	s := ContextSink(context.Background(), &rec)
	if o, ok := s.(SuppressionObserver); !ok {
		t.Fatal("ContextSink does not forward suppressions")
	} else {
		o.ObserveSuppressed("some-id")
	}
	if len(rec.SuppressedIDs) != 1 || rec.SuppressedIDs[0] != "some-id" {
		t.Fatalf("suppressions = %v", rec.SuppressedIDs)
	}
}

func TestEmitterExternalCancelFlag(t *testing.T) {
	e := NewEmitter(AllEnabled())
	var flag atomic.Bool
	e.SetCancelFlag(&flag)

	if e.Cancelled() {
		t.Fatal("cancelled before the flag flipped")
	}
	e.Emit("html-outer", "f.html", 1, 0)
	if n := len(e.Messages()); n != 1 {
		t.Fatalf("collected %d messages before cancellation", n)
	}

	flag.Store(true)
	if !e.Cancelled() {
		t.Fatal("flag flip not observed")
	}
	e.Emit("html-outer", "f.html", 2, 0)
	if n := len(e.Messages()); n != 1 {
		t.Fatalf("emit after external cancel delivered (have %d messages)", n)
	}

	// Reset drops the flag: the pooled emitter must not observe a
	// stale caller's deadline.
	e.Reset()
	if e.Cancelled() {
		t.Fatal("stale cancel flag survived Reset")
	}
}

func TestRegistryIntrospection(t *testing.T) {
	ids := SortedIDs()
	if len(ids) == 0 || len(ids) != Count() {
		t.Fatalf("SortedIDs() has %d entries, Count() = %d", len(ids), Count())
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("SortedIDs not sorted at %d: %q >= %q", i, ids[i-1], ids[i])
		}
	}
}

func TestEmitterOverlayEnableDisable(t *testing.T) {
	e := NewEmitter(AllEnabled())
	if !e.Enabled("html-outer") {
		t.Fatal("html-outer disabled under AllEnabled")
	}
	if err := e.Disable("html-outer"); err != nil {
		t.Fatal(err)
	}
	if e.Enabled("html-outer") {
		t.Fatal("Disable did not take in the overlay")
	}
	if err := e.Enable("html-outer"); err != nil {
		t.Fatal(err)
	}
	if !e.Enabled("html-outer") {
		t.Fatal("Enable did not take in the overlay")
	}
	if err := e.Disable("no-such-message-id"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestEmitterCopyMessages(t *testing.T) {
	e := NewEmitter(AllEnabled())
	if got := e.CopyMessages(); got != nil {
		t.Fatalf("CopyMessages on an empty emitter = %v", got)
	}
	e.Emit("html-outer", "f.html", 1, 0)
	msgs := e.CopyMessages()
	if len(msgs) != 1 {
		t.Fatalf("copied %d messages", len(msgs))
	}
	e.Reset()
	if len(msgs) != 1 || msgs[0].ID != "html-outer" {
		t.Fatal("copy not independent of Reset")
	}
}

func TestSummaryCountAndFailOnString(t *testing.T) {
	var s Summary
	s.Add(Message{ID: "a", Category: Error})
	s.Add(Message{ID: "b", Category: Warning})
	s.Add(Message{ID: "c", Category: Warning})
	s.Add(Message{ID: "d", Category: Style})
	if s.Count(Error) != 1 || s.Count(Warning) != 2 || s.Count(Style) != 1 {
		t.Fatalf("counts = %d/%d/%d", s.Count(Error), s.Count(Warning), s.Count(Style))
	}
	for f, want := range map[FailOn]string{
		FailOnError: "error", FailOnWarning: "warning",
		FailOnStyle: "style", FailOnNever: "never",
	} {
		if f.String() != want {
			t.Errorf("FailOn(%d).String() = %q, want %q", f, f.String(), want)
		}
	}
}
