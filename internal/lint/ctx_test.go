package lint

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"weblint/internal/warn"
)

func TestCheckStringToCtxNoDeadlineMatchesPlain(t *testing.T) {
	l := MustNew(Options{})
	src := `<HTML><HEAD><TITLE>x</TITLE></HEAD><BODY><H1>a</H2></BODY></HTML>`

	var plain, ctxed warn.Collector
	l.CheckStringTo("doc.html", src, &plain)
	if err := l.CheckStringToCtx(context.Background(), "doc.html", src, &ctxed); err != nil {
		t.Fatal(err)
	}
	if len(plain.Messages) == 0 || len(plain.Messages) != len(ctxed.Messages) {
		t.Fatalf("plain %d messages, ctx %d", len(plain.Messages), len(ctxed.Messages))
	}
	for i := range plain.Messages {
		// Fix pointers differ by identity run to run; compare the
		// message content.
		a, b := plain.Messages[i], ctxed.Messages[i]
		a.Fix, b.Fix = nil, nil
		if a != b {
			t.Fatalf("message %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestCheckBytesToCtxMatchesStringVariant(t *testing.T) {
	l := MustNew(Options{})
	src := `<HTML><HEAD><TITLE>x</TITLE></HEAD><BODY><H1>a</H2></BODY></HTML>`

	var fromString, fromBytes warn.Collector
	if err := l.CheckStringToCtx(context.Background(), "doc.html", src, &fromString); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckBytesToCtx(context.Background(), "doc.html", []byte(src), &fromBytes); err != nil {
		t.Fatal(err)
	}
	if len(fromBytes.Messages) == 0 || len(fromString.Messages) != len(fromBytes.Messages) {
		t.Fatalf("string %d messages, bytes %d", len(fromString.Messages), len(fromBytes.Messages))
	}
}

func TestCheckBytesToCtxCancelledBeforeStart(t *testing.T) {
	l := MustNew(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var sink warn.Collector
	err := l.CheckBytesToCtx(ctx, "doc.html", []byte("<HTML><BODY><H1>a</H2></BODY></HTML>"), &sink)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(sink.Messages) != 0 {
		t.Fatalf("%d messages delivered after cancellation", len(sink.Messages))
	}
}

func TestCheckStringToCtxCancelledBeforeStart(t *testing.T) {
	l := MustNew(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var sink warn.Collector
	err := l.CheckStringToCtx(ctx, "doc.html", "<HTML><BODY><H1>a</H2></BODY></HTML>", &sink)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(sink.Messages) != 0 {
		t.Fatalf("%d messages delivered after cancellation", len(sink.Messages))
	}
}

// TestCheckStringToCtxStopsQuietDocumentPromptly is the budget seam's
// hard case: a huge document that emits nothing gives the sink no
// Write to refuse, so only the emitter's polled cancel flag can stop
// the tokenizer. A tight deadline over many megabytes must return in
// far less time than the full tokenize would take.
func TestCheckStringToCtxStopsQuietDocumentPromptly(t *testing.T) {
	l := MustNew(Options{})
	// A long clean body: no per-token findings, tokenized start to end
	// when uncancelled.
	var b strings.Builder
	b.WriteString("<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE>" +
		`<META NAME="description" CONTENT="d"><META NAME="keywords" CONTENT="k"></HEAD><BODY>`)
	for i := 0; i < 400000; i++ {
		b.WriteString("<P>some perfectly ordinary filler text</P>\n")
	}
	b.WriteString("</BODY></HTML>")
	src := b.String()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	var sink warn.Collector
	start := time.Now()
	err := l.CheckStringToCtx(ctx, "big.html", src, &sink)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded (doc %d bytes in %v)", err, len(src), elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v for a 1ms budget", elapsed)
	}
}
