package lint

import (
	"testing"

	"weblint/internal/corpus"
	"weblint/internal/textpos"
	"weblint/internal/warn"
)

// benchSession builds a steady-state session over a 1 MiB document
// with a moderate error rate, mirroring the weblint-bench e14 guard
// cell.
func benchSession(b *testing.B) (*Session, string) {
	src := corpus.GenerateSized(7, 1<<20, corpus.Uniform(0.05))
	l := MustNew(Options{})
	s := NewSession(l, "bench.html", src)
	b.ResetTimer()
	return s, src
}

// BenchmarkSessionApply is the end-to-end per-edit cost the e14 guard
// bounds: apply + render, alternating a one-line edit and its revert.
func BenchmarkSessionApply(b *testing.B) {
	s, src := benchSession(b)
	mid := len(src) / 2
	fwd := Edit{Start: mid, End: mid, Text: "x"}
	rev := Edit{Start: mid, End: mid + 1, Text: ""}
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			s.Apply([]Edit{fwd})
		} else {
			s.Apply([]Edit{rev})
		}
	}
}

// BenchmarkSessionApplyNoRender isolates the splice machinery from
// message rendering.
func BenchmarkSessionApplyNoRender(b *testing.B) {
	s, src := benchSession(b)
	mid := len(src) / 2
	fwd := Edit{Start: mid, End: mid, Text: "x"}
	rev := Edit{Start: mid, End: mid + 1, Text: ""}
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			s.applyOne(fwd)
		} else {
			s.applyOne(rev)
		}
	}
}

// BenchmarkSessionRender isolates rendering the full findings list.
func BenchmarkSessionRender(b *testing.B) {
	s, _ := benchSession(b)
	var msgs []warn.Message
	for i := 0; i < b.N; i++ {
		msgs = s.Messages()
	}
	_ = msgs
}

// BenchmarkSessionIndex isolates the line-index rebuild of the edited
// text, the only other whole-document scan on the apply path.
func BenchmarkSessionIndex(b *testing.B) {
	_, src := benchSession(b)
	var ix *textpos.Index
	for i := 0; i < b.N; i++ {
		ix = textpos.NewLF(src)
	}
	_ = ix
}
