package lint

import (
	"weblint/internal/core"
	"weblint/internal/htmltoken"
	"weblint/internal/textpos"
	"weblint/internal/warn"
)

// This file implements incremental re-lint: a Session keeps a linted
// document alive together with the structured event stream of its last
// lint and periodic checker snapshots keyed to byte offsets. Applying
// an edit restores the nearest snapshot before the damage, re-lints
// forward, and — as soon as the live checker state again matches an old
// snapshot beyond the edit under the position shift — splices the
// cached remainder of the event stream (positions shifted) instead of
// linting the rest of the document. The result is byte-identical to a
// from-scratch lint of the edited text (the differential tests and
// FuzzIncremental enforce exactly that); when no snapshot re-syncs,
// the session simply lints to end of document, so correctness never
// depends on the splice firing.

// Edit is one span replacement against the session's current text:
// bytes [Start, End) are replaced by Text. Start == End inserts.
// Offsets are byte offsets; LSP UTF-16 ranges must be converted first
// (see textpos.Index.UTF16ToOffset).
type Edit struct {
	Start int
	End   int
	Text  string
}

// SessionConfig tunes a Session.
type SessionConfig struct {
	// CheckpointSpacing is the target byte distance between checker
	// snapshots; 0 means the default (16 KiB). Smaller spacing
	// shortens re-lint windows at the cost of snapshot memory — tests
	// and the fuzz target use tiny spacings to exercise the splice
	// machinery on small documents.
	CheckpointSpacing int
}

// defaultCheckpointSpacing balances re-lint window length (an edit
// re-lints from the previous checkpoint to the next one that re-syncs,
// so roughly 2× the spacing) against snapshot memory (a 1 MiB document
// keeps ~64 snapshots).
const defaultCheckpointSpacing = 16 << 10

// checkpoint is one resumable position: the checker snapshot as of a
// token-boundary byte offset, plus how many events had been emitted.
// hor is the scan horizon at capture (see htmltoken.Tokenizer.Horizon):
// the tokenization producing this boundary examined no byte at or past
// hor, so the checkpoint can restore for any edit at offset >= hor —
// and for none earlier, since a scan decision (a quote-recovery
// lookahead, a raw-text close-tag match, a text run's peek past '<')
// may then no longer hold in the edited document.
type checkpoint struct {
	off    int
	events int
	hor    int
	snap   *core.Snapshot
}

// Session is an incrementally re-lintable document. Construct with
// NewSession (which performs the initial full lint) and push edits
// through Apply. A Session is NOT safe for concurrent use; callers
// serialise access (the LSP server is single-threaded per document,
// the gateway guards each cached session with a mutex).
//
// Full-document checks (Linter.CheckString and friends) are unchanged
// and remain the right tool for one-shot lints; a Session earns its
// memory only when the same document is re-linted across edits.
type Session struct {
	l    *Linter
	name string
	text string
	ix   *textpos.Index // LF-only index of text

	em *warn.Emitter
	ck *core.Checker
	tz *htmltoken.Tokenizer

	events []warn.Event
	ckpts  []checkpoint

	spacing int
	rec     *[]warn.Event // where the event sink currently appends
	// horFloor is folded into the horizon of checkpoints taken during
	// an Apply window: the window's validity also rests on the restore
	// checkpoint's prefix tokenization, whose scans examined bytes up
	// to the restore point's own horizon.
	horFloor int

	stats SessionStats
}

// SessionStats counts how the session's Applies resolved, for tests
// and benchmarks that must prove the splice actually fires.
type SessionStats struct {
	// Applies counts individual edits applied.
	Applies int
	// Spliced counts edits resolved by re-syncing with a cached
	// checkpoint and splicing the cached suffix events.
	Spliced int
	// FullTail counts edits that re-linted to end of document because
	// no checkpoint beyond the edit re-synchronised.
	FullTail int
}

// discardSink drops messages: Session output is rendered from the
// recorded events, so the formatted stream has no consumer.
type discardSink struct{}

func (discardSink) Write(warn.Message) bool { return true }

// NewSession lints text from scratch and returns a session that can
// re-lint it incrementally. name names the document in messages,
// exactly as in Linter.CheckString.
func NewSession(l *Linter, name, text string) *Session {
	return NewSessionWith(l, name, text, SessionConfig{})
}

// NewSessionWith is NewSession with explicit tuning.
func NewSessionWith(l *Linter, name, text string, cfg SessionConfig) *Session {
	spacing := cfg.CheckpointSpacing
	if spacing <= 0 {
		spacing = defaultCheckpointSpacing
	}
	em := warn.NewEmitter(l.set)
	em.SetCatalog(l.catalog)
	s := &Session{
		l:       l,
		name:    name,
		text:    text,
		ix:      textpos.NewLF(text),
		em:      em,
		ck:      core.New(em, l.sessionOpts(name)),
		tz:      htmltoken.New(""),
		spacing: spacing,
	}
	s.lintAll()
	return s
}

// sessionOpts mirrors runFlag's per-check option derivation.
func (l *Linter) sessionOpts(name string) core.Options {
	opts := l.coreOpts
	opts.Filename = name
	return opts
}

// Text returns the session's current document text.
func (s *Session) Text() string { return s.text }

// Name returns the document name used in messages.
func (s *Session) Name() string { return s.name }

// Stats returns how the session's edits resolved so far.
func (s *Session) Stats() SessionStats { return s.stats }

// Messages renders the current findings, byte-identical to what
// Linter.CheckString would return for the session's text.
func (s *Session) Messages() []warn.Message {
	msgs := s.MessagesInOrder()
	warn.SortByLine(msgs)
	return msgs
}

// MessagesInOrder renders the current findings in emission order — the
// order a live check delivers through warn.Sink, which splices
// preserve — for consumers that replay streams rather than sorted
// reports (the gateway's cached results are emission-ordered).
func (s *Session) MessagesInOrder() []warn.Message {
	msgs := make([]warn.Message, 0, len(s.events))
	for i := range s.events {
		if s.events[i].Suppressed {
			continue
		}
		msgs = append(msgs, s.events[i].Message())
	}
	return msgs
}

// SuppressedInOrder returns the IDs of suppressed emissions in
// emission order — exactly what a live check's SuppressionObserver
// would see for the session's current text.
func (s *Session) SuppressedInOrder() []string {
	var ids []string
	for i := range s.events {
		if s.events[i].Suppressed {
			ids = append(ids, s.events[i].ID)
		}
	}
	return ids
}

// Apply applies edits in order — each against the result of the
// previous, the LSP incremental-sync contract — re-linting only the
// damaged window of each, and returns the full updated findings.
func (s *Session) Apply(edits []Edit) []warn.Message {
	for _, e := range edits {
		s.applyOne(e)
	}
	return s.Messages()
}

// arm points the emitter's event sink at dst and discards the
// formatted message stream.
func (s *Session) arm(dst *[]warn.Event) {
	s.rec = dst
	s.em.SetSink(discardSink{})
	s.em.SetEventSink(func(ev warn.Event) { *s.rec = append(*s.rec, ev) })
}

// takeCheckpoint snapshots the checker at token-boundary offset off.
func (s *Session) takeCheckpoint(dst []checkpoint, off, events int) []checkpoint {
	hor := s.tz.Horizon()
	if hor < s.horFloor {
		hor = s.horFloor
	}
	return append(dst, checkpoint{off: off, events: events, hor: hor, snap: s.ck.Snapshot()})
}

// lintAll performs the initial full lint, recording events and taking
// checkpoints as it goes. Checkpoint 0 captures the fresh pre-document
// state so edits near the top of the document restore cleanly.
func (s *Session) lintAll() {
	s.events = s.events[:0]
	s.ckpts = s.ckpts[:0]
	s.em.Reset()
	s.arm(&s.events)
	s.ck.Reset(s.em, s.l.sessionOpts(s.name))
	s.tz.Reset(s.text)
	s.horFloor = 0
	s.ckpts = s.takeCheckpoint(s.ckpts, 0, 0)
	next := s.spacing
	var tok htmltoken.Token
	for s.tz.NextInto(&tok) {
		s.ck.Step(&tok)
		if b := s.tz.Pos(); b >= next && !s.tz.InRawText() {
			s.ckpts = s.takeCheckpoint(s.ckpts, b, len(s.events))
			next = b + s.spacing
		}
	}
	s.ck.Finish()
}

// applyOne applies a single edit. The re-lint window runs from the
// last checkpoint at or before the edit start; at every token boundary
// it tries to re-synchronise with the first surviving checkpoint past
// the replaced span. Candidates that fail the state compare (or whose
// suffix events cannot be shifted) are skipped and the lint continues
// to the next; with no survivor the window extends to end of document.
func (s *Session) applyOne(e Edit) {
	s.stats.Applies++
	start, end := e.Start, e.End
	if start < 0 {
		start = 0
	}
	if start > len(s.text) {
		start = len(s.text)
	}
	if end < start {
		end = start
	}
	if end > len(s.text) {
		end = len(s.text)
	}
	newText := s.text[:start] + e.Text + s.text[end:]
	newIx := textpos.SpliceLF(s.ix, start, end, e.Text, newText)
	sh := textpos.NewShift(s.ix, newIx, start, end, e.Text)

	// Restore point: the furthest checkpoint whose scan horizon the
	// edit does not reach. Offset alone is not enough — a token ending
	// at the checkpoint may owe its boundary to bytes at or past the
	// edit (a text run stops only because '<' follows, a raw-text run
	// because the close tag matches, a quote-recovery scan because no
	// closing quote turned up ahead) — the horizon is exactly how far
	// those decisions looked. Checkpoint 0 (hor 0) always qualifies.
	ri := 0
	for i := len(s.ckpts) - 1; i > 0; i-- {
		if s.ckpts[i].hor <= start {
			ri = i
			break
		}
	}
	rc := s.ckpts[ri]
	s.ck.Restore(rc.snap)
	s.tz.ResetAtLines(newText, rc.off, newIx.LineStarts())
	s.horFloor = rc.hor

	var win []warn.Event
	s.arm(&win)
	var winCk []checkpoint
	nextCk := rc.off + s.spacing

	// First sync candidate: the first checkpoint past the replaced
	// span. Checkpoints inside (restore, end) are damaged and will be
	// dropped by whichever splice path completes the apply.
	cand := ri + 1
	for cand < len(s.ckpts) && s.ckpts[cand].off < end {
		cand++
	}

	var tok htmltoken.Token
	for s.tz.NextInto(&tok) {
		s.ck.Step(&tok)
		b := s.tz.Pos()
		if s.tz.InRawText() {
			continue // raw mode carries state beyond the offset
		}
		for cand < len(s.ckpts) && s.ckpts[cand].off+sh.Delta < b {
			cand++
		}
		if cand < len(s.ckpts) && s.ckpts[cand].off+sh.Delta == b &&
			s.ckpts[cand].snap.LiveEquals(s.ck, sh) {
			if s.splice(ri, cand, win, winCk, sh, start, newText, newIx) {
				s.stats.Spliced++
				return
			}
			// Some suffix event's position could not be shifted; the
			// events before the NEXT candidate get re-emitted live
			// instead, so a later sync can still succeed.
			cand++
		}
		if b >= nextCk {
			winCk = s.takeCheckpoint(winCk, b, len(win))
			nextCk = b + s.spacing
		}
	}
	s.ck.Finish()
	s.stats.FullTail++

	// No re-sync: prefix + window is the whole stream. Prefix
	// checkpoints whose horizon the edit reached are stale now — their
	// scan decisions may not hold in the new text — and are dropped
	// (the restore point itself always survives: its horizon passed
	// the selection test above).
	s.events = append(s.events[:rc.events], win...)
	for i := range winCk {
		winCk[i].events += rc.events
	}
	n := 0
	for _, c := range s.ckpts[:ri+1] {
		if c.hor <= start {
			s.ckpts[n] = c
			n++
		}
	}
	s.ckpts = append(s.ckpts[:n], winCk...)
	s.text, s.ix = newText, newIx
}

// splice commits a successful re-sync at old checkpoint cand: the
// event stream becomes prefix (before the restore point, unchanged) +
// window (just re-linted) + cached suffix with positions shifted, and
// the checkpoint list is rebuilt the same way, rebasing the suffix
// snapshots in place so later edits near the end of the document stay
// cheap. It reports false — committing nothing — when any suffix
// event's position cannot be mapped across the edit; suffix snapshots
// that cannot be rebased are silently dropped (they were an
// optimisation, not a correctness requirement).
func (s *Session) splice(ri, cand int, win []warn.Event, winCk []checkpoint,
	sh *textpos.Shift, start int, newText string, newIx *textpos.Index) bool {
	base := s.ckpts[ri].events
	syncEv := s.ckpts[cand].events
	suffix := s.events[syncEv:]
	shifted := make([]warn.Event, len(suffix))
	for i := range suffix {
		ev, ok := shiftEvent(suffix[i], sh)
		if !ok {
			return false
		}
		shifted[i] = ev
	}

	// Rebuild the stream in place: the suffix was value-copied into
	// shifted above, so overwriting s.events[base:] is safe, and reusing
	// the backing array spares a whole-stream allocation per edit.
	evs := append(s.events[:base], win...)
	evs = append(evs, shifted...)

	ckpts := make([]checkpoint, 0, ri+1+len(winCk)+len(s.ckpts)-cand)
	for _, c := range s.ckpts[:ri+1] {
		if c.hor <= start { // stale-horizon prefix checkpoints, as in applyOne
			ckpts = append(ckpts, c)
		}
	}
	for _, c := range winCk {
		c.events += base
		ckpts = append(ckpts, c)
	}
	// A rebased suffix checkpoint's validity now also rests on the
	// window tokenization that re-established its state, so its horizon
	// absorbs the live scan horizon at the sync point. Its own recorded
	// horizon shifts with the suffix bytes (an over-approximation for
	// the pre-sync extents folded into the running maximum — larger
	// horizons only make restores more conservative).
	hlive := s.tz.Horizon()
	for _, c := range s.ckpts[cand:] {
		if !c.snap.Rebase(sh) {
			continue
		}
		c.off += sh.Delta
		c.events = base + len(win) + (c.events - syncEv)
		if c.hor += sh.Delta; c.hor < hlive {
			c.hor = hlive
		}
		ckpts = append(ckpts, c)
	}

	s.events, s.ckpts = evs, ckpts
	s.text, s.ix = newText, newIx
	return true
}

// shiftSpan maps a fix-edit byte span across the edit. Point spans
// (insertions) map through Shift.Off; nonempty spans must lie entirely
// before the replaced region (unchanged) or entirely at/after it
// (shifted) — a span overlapping changed bytes cannot be mapped, since
// a from-scratch lint could attach different replacement text there.
func shiftSpan(start, end int, sh *textpos.Shift) (int, int, bool) {
	if start == end {
		ns, ok := sh.Off(start)
		return ns, ns, ok
	}
	switch {
	case end <= sh.P:
		return start, end, true
	case start >= sh.Q:
		return start + sh.Delta, end + sh.Delta, true
	}
	return 0, 0, false
}

// shiftEvent maps one cached event across the edit, copy-on-write:
// the message position via the exact line/column mapping, LineRef
// arguments via the line mapping, fix edit spans via shiftSpan. Any
// unmappable position fails the whole event (and with it the splice
// candidate).
func shiftEvent(ev warn.Event, sh *textpos.Shift) (warn.Event, bool) {
	if ev.Suppressed {
		return ev, true // markers carry no position
	}
	if !warn.StaticLine(ev.ID) {
		line, col, ok := sh.Pos(ev.Line, ev.Col)
		if !ok {
			return ev, false
		}
		ev.Line, ev.Col = line, col
	}
	var args []any
	for i, a := range ev.Args {
		lr, isLine := a.(warn.LineRef)
		if !isLine {
			continue
		}
		nl, lok := sh.Line(int(lr))
		if !lok {
			return ev, false
		}
		if args == nil {
			args = append([]any(nil), ev.Args...)
		}
		args[i] = warn.LineRef(nl)
	}
	if args != nil {
		ev.Args = args
	}
	if ev.Fix != nil {
		fix := &warn.Fix{Label: ev.Fix.Label, Edits: append([]warn.Edit(nil), ev.Fix.Edits...)}
		for i := range fix.Edits {
			ns, ne, sok := shiftSpan(fix.Edits[i].Start, fix.Edits[i].End, sh)
			if !sok {
				return ev, false
			}
			fix.Edits[i].Start, fix.Edits[i].End = ns, ne
		}
		ev.Fix = fix
	}
	return ev, true
}
