package lint

import (
	"fmt"
	"strings"
	"testing"

	"weblint/internal/corpus"
	"weblint/internal/warn"
)

// renderMsgs renders a message slice canonically — every field that
// reaches any output surface, fix edits included — so two streams are
// equal iff their rendered forms are byte-identical.
func renderMsgs(msgs []warn.Message) string {
	var b strings.Builder
	for _, m := range msgs {
		fmt.Fprintf(&b, "%s|%d|%s|%d|%d|%s", m.ID, m.Category, m.File, m.Line, m.Col, m.Text)
		if m.Fix != nil {
			fmt.Fprintf(&b, "|fix:%s", m.Fix.Label)
			for _, e := range m.Fix.Edits {
				fmt.Fprintf(&b, "|[%d,%d)=%q", e.Start, e.End, e.Text)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// checkEquivalent asserts the session's findings are byte-identical to
// a from-scratch lint of its current text — the sorted report, the
// emission-order stream, and the suppressed-emission observations.
func checkEquivalent(t testing.TB, l *Linter, s *Session, label string) {
	t.Helper()
	got := renderMsgs(s.Messages())
	want := renderMsgs(l.CheckString(s.Name(), s.Text()))
	if got != want {
		t.Fatalf("%s: incremental findings diverge from from-scratch lint\nincremental:\n%s\nfrom-scratch:\n%s", label, got, want)
	}
	var rec warn.Recorder
	l.CheckStringTo(s.Name(), s.Text(), &rec)
	if gotStream := renderMsgs(s.MessagesInOrder()); gotStream != renderMsgs(rec.Messages) {
		t.Fatalf("%s: emission-order stream diverges\nincremental:\n%s\nfrom-scratch:\n%s",
			label, gotStream, renderMsgs(rec.Messages))
	}
	if gotSup, wantSup := strings.Join(s.SuppressedInOrder(), ","), strings.Join(rec.SuppressedIDs, ","); gotSup != wantSup {
		t.Fatalf("%s: suppressed-emission stream diverges\nincremental: %s\nfrom-scratch: %s", label, gotSup, wantSup)
	}
}

// scriptedEdits derives a deterministic edit sequence from the
// document: inserts (with and without newlines), deletions, span
// replacements, edits at both ends, and a no-op — each applied to the
// result of the previous one.
func scriptedEdits(n int) []Edit {
	at := func(f float64) int {
		p := int(f * float64(n))
		if p > n {
			p = n
		}
		return p
	}
	return []Edit{
		{Start: at(0.5), End: at(0.5), Text: "x"},                             // 1-byte insert mid-document
		{Start: at(0.25), End: at(0.25), Text: "<p>inserted\nline</p>\n"},     // multi-line insert
		{Start: at(0.75), End: at(0.75) + 3, Text: ""},                        // small deletion
		{Start: 0, End: 0, Text: "<!-- leading comment -->\n"},                // insert at top
		{Start: n, End: n, Text: "\n<p>trailing & tail</p>"},                  // append at end (vs original n: clamped)
		{Start: at(0.4), End: at(0.6), Text: "<B>replaced <i>span</b>\n</i>"}, // large replacement
		{Start: at(0.1), End: at(0.1), Text: ""},                              // no-op
		{Start: at(0.9), End: at(0.9), Text: "<img src=\"x.gif\">"},           // finding-introducing insert
	}
}

// sessionDocs is the differential sweep document set: the suite and
// corpus documents the golden-equivalence test pins.
func sessionDocs(t testing.TB) map[string]string {
	return equivDocs(t)
}

// TestSessionDifferential applies scripted edit sequences to every
// suite/corpus document through a Session and asserts after every
// single edit that the incremental findings are byte-identical to a
// from-scratch lint. Small checkpoint spacings force the splice
// machinery to run even on small documents.
func TestSessionDifferential(t *testing.T) {
	l := MustNew(Options{})
	docs := sessionDocs(t)
	for _, spacing := range []int{97, 1024} {
		for name, src := range docs {
			s := NewSessionWith(l, name, src, SessionConfig{CheckpointSpacing: spacing})
			checkEquivalent(t, l, s, fmt.Sprintf("%s spacing=%d initial", name, spacing))
			for i, e := range scriptedEdits(len(src)) {
				s.Apply([]Edit{e})
				checkEquivalent(t, l, s, fmt.Sprintf("%s spacing=%d edit %d", name, spacing, i))
			}
		}
	}
}

// TestSessionPedantic runs a reduced differential sweep under the
// pedantic configuration, which enables every registered warning —
// including the style checks with their own emission sites.
func TestSessionPedantic(t *testing.T) {
	l := MustNew(Options{Pedantic: true})
	for name, src := range sessionDocs(t) {
		if !strings.HasPrefix(name, "suite/") {
			continue
		}
		s := NewSessionWith(l, name, src, SessionConfig{CheckpointSpacing: 64})
		for i, e := range scriptedEdits(len(src)) {
			s.Apply([]Edit{e})
			checkEquivalent(t, l, s, fmt.Sprintf("%s edit %d", name, i))
		}
	}
}

// TestSessionSplices proves the splice path actually fires — a
// regression here would leave every edit silently falling back to a
// full-tail re-lint, correct but defeating the optimisation.
func TestSessionSplices(t *testing.T) {
	l := MustNew(Options{})
	src := corpus.GenerateSized(7, 256<<10, corpus.Uniform(0.05))
	s := NewSession(l, "splice.html", src)
	mid := len(src) / 2
	s.Apply([]Edit{{Start: mid, End: mid, Text: "y"}})
	checkEquivalent(t, l, s, "mid-document insert")
	st := s.Stats()
	if st.Spliced == 0 {
		t.Fatalf("mid-document 1-byte insert did not splice: %+v", st)
	}
	// An edit near the end must not re-lint from offset zero either:
	// rebased checkpoints from the first splice have to keep serving.
	near := len(s.Text()) - 200
	s.Apply([]Edit{{Start: near, End: near, Text: "z"}})
	checkEquivalent(t, l, s, "near-end insert")
	if got := s.Stats().Applies; got != 2 {
		t.Fatalf("Applies = %d, want 2", got)
	}
}

// TestSessionEditClamping feeds out-of-range and inverted spans; the
// session must clamp rather than panic, and stay equivalent.
func TestSessionEditClamping(t *testing.T) {
	l := MustNew(Options{})
	src := "<html><head><title>t</title></head><body><p>hello</p></body></html>\n"
	s := NewSessionWith(l, "clamp.html", src, SessionConfig{CheckpointSpacing: 16})
	for i, e := range []Edit{
		{Start: -5, End: 3, Text: "x"},
		{Start: 1 << 20, End: 1 << 21, Text: "tail"},
		{Start: 10, End: 4, Text: "y"}, // inverted span: treated as insert at 10
	} {
		s.Apply([]Edit{e})
		checkEquivalent(t, l, s, fmt.Sprintf("clamp edit %d", i))
	}
}

// TestSessionRawTextEdits edits inside and around SCRIPT raw-text
// bodies, where checkpoints are forbidden and re-sync must wait for
// the tokenizer to leave raw mode.
func TestSessionRawTextEdits(t *testing.T) {
	l := MustNew(Options{})
	src := corpus.GenerateRawText(40)
	s := NewSessionWith(l, "raw.html", src, SessionConfig{CheckpointSpacing: 512})
	for i, e := range scriptedEdits(len(src)) {
		s.Apply([]Edit{e})
		checkEquivalent(t, l, s, fmt.Sprintf("raw edit %d", i))
	}
}

// TestSessionDirectiveEdits exercises in-document "weblint:" directive
// comments: the emitter overlay is checkpointed state, and inserting
// or deleting a directive must change downstream findings exactly as a
// from-scratch lint would.
func TestSessionDirectiveEdits(t *testing.T) {
	l := MustNew(Options{})
	var b strings.Builder
	b.WriteString("<html><head><title>t</title>\n")
	b.WriteString("<META NAME=\"description\" CONTENT=\"x\"><META NAME=\"keywords\" CONTENT=\"x\">\n")
	b.WriteString("</head><body>\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "<p><img src=\"%d.gif\"></p>\n", i)
	}
	b.WriteString("</body></html>\n")
	src := b.String()
	s := NewSessionWith(l, "directives.html", src, SessionConfig{CheckpointSpacing: 128})

	insertAt := strings.Index(src, "<p><img src=\"10.gif\">")
	s.Apply([]Edit{{Start: insertAt, End: insertAt, Text: "<!-- weblint: disable img-alt -->\n"}})
	checkEquivalent(t, l, s, "insert disable directive")

	reEnable := strings.Index(s.Text(), "<p><img src=\"20.gif\">")
	s.Apply([]Edit{{Start: reEnable, End: reEnable, Text: "<!-- weblint: enable img-alt -->\n"}})
	checkEquivalent(t, l, s, "insert enable directive")

	// Delete the disable directive again.
	cur := s.Text()
	dIdx := strings.Index(cur, "<!-- weblint: disable img-alt -->\n")
	s.Apply([]Edit{{Start: dIdx, End: dIdx + len("<!-- weblint: disable img-alt -->\n"), Text: ""}})
	checkEquivalent(t, l, s, "delete disable directive")
}

// FuzzIncremental applies fuzzer-chosen edit pairs at fuzzer-chosen
// checkpoint spacings and requires byte-identical equivalence with a
// from-scratch lint after each edit.
func FuzzIncremental(f *testing.F) {
	addSuiteSeeds(f)
	f.Add("<html><head><title>t</title></head><body><p>a & b</p></body></html>\n")
	f.Add("<p ALIGN='a' align=\"b\"><a name=x><h3>x</h3><script>var a=1;</script>")
	l := MustNew(Options{})
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip()
		}
		// Derive deterministic edit parameters and spacing from the
		// input itself, so the fuzzer mutates them along with the text.
		h := 0
		for i := 0; i < len(src); i++ {
			h = h*131 + int(src[i])
			h &= 0x7fffffff
		}
		n := len(src)
		spacing := h%509 + 1
		s := NewSessionWith(l, "fuzz.html", src, SessionConfig{CheckpointSpacing: spacing})
		edits := []Edit{
			{Start: h % (n + 1), End: h % (n + 1), Text: "<"},
			{Start: (h / 7) % (n + 1), End: (h/7)%(n+1) + h%5, Text: src[:min(n, h%17)]},
			{Start: (h / 13) % (n + 1), End: n, Text: "\n<p>"},
			{Start: 0, End: min(n, h%11), Text: "<!--x-->"},
		}
		for i, e := range edits {
			s.Apply([]Edit{e})
			got := renderMsgs(s.Messages())
			want := renderMsgs(l.CheckString("fuzz.html", s.Text()))
			if got != want {
				t.Fatalf("edit %d %+v diverged\nincremental:\n%s\nfrom-scratch:\n%s", i, e, got, want)
			}
		}
	})
}
