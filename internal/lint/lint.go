// Package lint provides the Weblint class of the paper's Section 5.4:
// an object which encapsulates the HTML checking functionality, making
// it easy to embed weblint in any application. The simplest use is
//
//	l := lint.New(lint.Options{})
//	msgs, err := l.CheckFile("index.html")
//
// In addition to CheckFile it provides CheckString, CheckReader and
// CheckURL methods (the latter using net/http, the stdlib stand-in for
// the paper's LWP).
package lint

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"weblint/internal/bufpool"
	"weblint/internal/bytestr"
	"weblint/internal/config"
	"weblint/internal/core"
	"weblint/internal/csslint"
	"weblint/internal/fetch"
	"weblint/internal/htmlspec"
	"weblint/internal/htmltoken"
	"weblint/internal/plugin"
	"weblint/internal/warn"
)

// Options configures a Linter.
type Options struct {
	// Settings carries the layered configuration (warning set, HTML
	// version, extensions, style knobs). Nil means defaults.
	Settings *config.Settings
	// Pedantic enables every registered warning, including the
	// esoteric ones ("I love 'em!").
	Pedantic bool
	// HTTPClient is used by CheckURL; nil means a client with a
	// 30-second timeout.
	HTTPClient *http.Client
	// Plugins adds content checkers for non-HTML content beyond the
	// built-in CSS style sheet checker.
	Plugins []plugin.ContentChecker
	// NoBuiltinPlugins drops the built-in CSS checker.
	NoBuiltinPlugins bool
	// Ablation knobs, exposed for the cascade experiments.
	DisableCascadeSuppression bool
	DisableImpliedClose       bool
}

// Linter checks HTML documents against a configured HTML version and
// warning selection. A Linter is safe for concurrent use: each check
// borrows a private emitter/checker/tokenizer bundle from an internal
// pool, so concurrent CheckString calls share nothing but the
// immutable spec and the read-only warning set, and repeated checks
// reuse the bundle's warmed-up buffers instead of reallocating them.
type Linter struct {
	set      *warn.Set
	spec     *htmlspec.Spec
	catalog  warn.Catalog
	coreOpts core.Options
	client   *http.Client
	fp       string

	states sync.Pool // of *checkState
}

// releaseThreshold is the document size in bytes above which a pooled
// checkState's document references are dropped before parking it.
const releaseThreshold = 64 << 10

// checkState is the per-check mutable machinery a Linter pools.
type checkState struct {
	em *warn.Emitter
	ck *core.Checker
	tz *htmltoken.Tokenizer
}

// New builds a Linter from options.
func New(o Options) (*Linter, error) {
	s := o.Settings
	if s == nil {
		s = config.NewSettings()
	}

	set := s.Set
	if set == nil {
		set = warn.NewSet()
	}
	if o.Pedantic {
		set = warn.AllEnabled()
	}

	spec := htmlspec.Default()
	if s.HTMLVersion != "" {
		v, ok := htmlspec.ByVersion(s.HTMLVersion)
		if !ok {
			return nil, fmt.Errorf("lint: unknown HTML version %q", s.HTMLVersion)
		}
		spec = v
	}
	// The version specs are shared and immutable; extensions go into a
	// per-linter overlay so linters never contaminate each other.
	spec = spec.WithExtensions(s.Extensions...)

	client := o.HTTPClient
	if client == nil {
		// The hardened shared fetch client: connect + total timeouts
		// and a redirect cap. Private targets stay reachable — CheckURL
		// is a library/CLI surface whose caller names the URL, commonly
		// their own intranet or localhost; services exposing URL checks
		// to others (the gateway) use their own guarded fetch.Client.
		client = fetch.New(fetch.Options{
			Timeout:      30 * time.Second,
			AllowPrivate: true,
			UserAgent:    "weblint/2.0",
		}).HTTPClient()
	}

	var catalog warn.Catalog
	if s.Locale != "" && s.Locale != "en" {
		c, ok := warn.Locale(s.Locale)
		if !ok {
			return nil, fmt.Errorf("lint: unknown locale %q", s.Locale)
		}
		catalog = c
	}

	// Copy the caller's plugin slice: appending the built-in checker
	// to o.Plugins directly could write into (and clobber) spare
	// capacity of the caller's backing array.
	plugins := make([]plugin.ContentChecker, 0, len(o.Plugins)+1)
	plugins = append(plugins, o.Plugins...)
	if !o.NoBuiltinPlugins {
		plugins = append(plugins, csslint.Checker{})
	}

	l := &Linter{
		set:     set,
		catalog: catalog,
		spec:    spec,
		coreOpts: core.Options{
			Spec:                      spec,
			DisableCascadeSuppression: o.DisableCascadeSuppression,
			DisableImpliedClose:       o.DisableImpliedClose,
			TagCase:                   s.TagCase,
			AttrCase:                  s.AttrCase,
			TitleLength:               s.TitleLength,
			HereWords:                 s.HereWords,
			Plugins:                   plugins,
		},
		client: client,
	}
	l.fp = fingerprintConfig(s, o, spec, set, plugins)
	return l, nil
}

// fingerprintConfig digests every input that can change a check's
// findings into a stable hex string. Two linters with equal
// fingerprints produce identical finding streams for identical input;
// the gateway's result cache leans on exactly that, so anything new
// that alters behaviour — an option, a settings knob, a plugin — must
// be folded in here. Same fingerprint discipline as internal/baseline:
// hash a canonical, delimited rendering, never a formatted struct.
func fingerprintConfig(s *config.Settings, o Options, spec *htmlspec.Spec, set *warn.Set, plugins []plugin.ContentChecker) string {
	h := sha256.New()
	field := func(parts ...string) {
		for _, p := range parts {
			io.WriteString(h, p)
			h.Write([]byte{0})
		}
		h.Write([]byte{1})
	}
	field("weblint-config-v1")
	field("spec", spec.Version)
	exts := append([]string(nil), s.Extensions...)
	sort.Strings(exts)
	field(append([]string{"extensions"}, exts...)...)
	field(append([]string{"enabled"}, set.EnabledIDs()...)...)
	field("locale", s.Locale)
	field("tagcase", s.TagCase, "attrcase", s.AttrCase)
	field("titlelength", strconv.Itoa(s.TitleLength))
	field(append([]string{"herewords"}, s.HereWords...)...)
	field("cascade-off", strconv.FormatBool(o.DisableCascadeSuppression))
	field("impliedclose-off", strconv.FormatBool(o.DisableImpliedClose))
	names := make([]string, 0, len(plugins))
	for _, p := range plugins {
		names = append(names, p.Name())
	}
	sort.Strings(names)
	field(append([]string{"plugins"}, names...)...)
	return hex.EncodeToString(h.Sum(nil))
}

// ConfigFingerprint returns a stable content hash of the linter's
// effective configuration: HTML version, extensions, enabled warning
// set, locale, style knobs, ablation switches, and plugin names.
// Linters with equal fingerprints are interchangeable for caching.
func (l *Linter) ConfigFingerprint() string { return l.fp }

// MustNew is New for callers with known-good options; it panics on
// error and is intended for tests and examples.
func MustNew(o Options) *Linter {
	l, err := New(o)
	if err != nil {
		panic(err)
	}
	return l
}

// Spec returns the HTML version spec the linter checks against.
func (l *Linter) Spec() *htmlspec.Spec { return l.spec }

// Set returns the warning enablement set the linter uses.
func (l *Linter) Set() *warn.Set { return l.set }

// run drives one check over src through a pooled emitter/checker/
// tokenizer bundle, streaming diagnostics into sink. A nil sink keeps
// the emitter's default internal collector, which is how the
// slice-returning APIs accumulate. The caller must hand the returned
// state back with release.
func (l *Linter) run(name, src string, sink warn.Sink) *checkState {
	return l.runFlag(name, src, sink, nil)
}

// runFlag is run with an optional external cancel flag the emitter
// polls between tokens — the deadline seam of the Ctx variants.
func (l *Linter) runFlag(name, src string, sink warn.Sink, cancel *atomic.Bool) *checkState {
	st, _ := l.states.Get().(*checkState)
	if st == nil {
		em := warn.NewEmitter(l.set)
		em.SetCatalog(l.catalog)
		st = &checkState{
			em: em,
			ck: core.New(em, l.coreOpts),
			tz: htmltoken.New(""),
		}
	}
	opts := l.coreOpts
	opts.Filename = name
	st.em.Reset()
	if sink != nil {
		st.em.SetSink(sink)
	}
	if cancel != nil {
		st.em.SetCancelFlag(cancel)
	}
	st.ck.Reset(st.em, opts)
	st.tz.Reset(src)
	st.ck.Run(st.tz)
	return st
}

// release parks a check bundle back in the pool. It detaches any
// caller sink (Reset would too, but the pool entry must not retain a
// reference meanwhile) and drops the bundle's references into a large
// checked document: an idle pool entry must not pin a huge source
// string until the next check happens to draw it. Below the threshold
// the sweep would cost more than the memory it frees.
func (l *Linter) release(st *checkState, srcLen int) {
	st.em.SetSink(nil)
	st.em.SetCancelFlag(nil)
	if srcLen >= releaseThreshold {
		st.tz.Release()
		st.ck.Release()
	}
	l.states.Put(st)
}

// CheckString checks a document held in memory. name is used as the
// file name in messages. Messages are returned in source order.
//
// The emitter, checker and tokenizer driving the check come from a
// per-linter pool: the emitter reads the linter's warning set through
// a read-only view (in-document "weblint:" directives land in a
// per-check overlay, not in the shared set), and all per-document
// state is recycled across calls. It is the collect-sink wrapper over
// [Linter.CheckStringTo]: the emitter streams into its pooled internal
// collector, and the result is copied out and sorted.
func (l *Linter) CheckString(name, src string) []warn.Message {
	st := l.run(name, src, nil)
	msgs := st.em.CopyMessages()
	l.release(st, len(src))
	warn.SortByLine(msgs)
	return msgs
}

// CheckStringTo checks a document held in memory, streaming each
// diagnostic into sink the moment it is produced: nothing accumulates,
// so memory stays flat however many findings a pathological document
// generates. Messages arrive in emission order — document order for
// body checks, with the end-of-document checks (require-title, ...)
// last — not the (file, line)-sorted order the slice APIs return.
// The sink returning false cancels the check: tokenizing stops
// promptly and no further messages are delivered.
func (l *Linter) CheckStringTo(name, src string, sink warn.Sink) {
	l.release(l.run(name, src, sink), len(src))
}

// CheckBytes checks an in-memory document without copying it: the
// tokenizer reads src through a zero-copy string view (see bytestr).
// src must not be mutated while the call is in progress; once it
// returns, every message owns its text and the caller may reuse or
// recycle the buffer freely.
func (l *Linter) CheckBytes(name string, src []byte) []warn.Message {
	return l.CheckString(name, bytestr.String(src))
}

// CheckBytesTo is CheckStringTo over a byte slice, zero-copy; see
// CheckBytes for the aliasing contract.
func (l *Linter) CheckBytesTo(name string, src []byte, sink warn.Sink) {
	l.CheckStringTo(name, bytestr.String(src), sink)
}

// CheckStringToCtx is CheckStringTo bounded by a context: when ctx is
// cancelled (a per-request lint budget expiring, a client hanging up)
// the check stops promptly — the sink refuses further messages AND the
// checker's token loop observes a cancel flag flipped by the context,
// so even a pathological document that emits nothing stops tokenizing
// instead of running to completion. Messages already delivered stay
// delivered. Returns ctx.Err() when the check was cut short, nil when
// it ran to completion.
func (l *Linter) CheckStringToCtx(ctx context.Context, name, src string, sink warn.Sink) error {
	if ctx == nil || ctx.Done() == nil {
		l.CheckStringTo(name, src, sink)
		return nil
	}
	var flag atomic.Bool
	stop := context.AfterFunc(ctx, func() { flag.Store(true) })
	defer stop()
	l.release(l.runFlag(name, src, warn.ContextSink(ctx, sink), &flag), len(src))
	return ctx.Err()
}

// CheckBytesToCtx is CheckStringToCtx over a byte slice, zero-copy;
// see CheckBytes for the aliasing contract.
func (l *Linter) CheckBytesToCtx(ctx context.Context, name string, src []byte, sink warn.Sink) error {
	return l.CheckStringToCtx(ctx, name, bytestr.String(src), sink)
}

// CheckReader checks a document read from r. The read buffer comes
// from a shared pool, so a warm server checks each request without a
// per-document io.ReadAll allocation.
func (l *Linter) CheckReader(name string, r io.Reader) ([]warn.Message, error) {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", name, err)
	}
	return l.CheckBytes(name, buf.Bytes()), nil
}

// CheckReaderTo checks a document read from r, streaming diagnostics
// into sink (see CheckStringTo for the delivery contract).
func (l *Linter) CheckReaderTo(name string, r io.Reader, sink warn.Sink) error {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	if _, err := buf.ReadFrom(r); err != nil {
		return fmt.Errorf("lint: reading %s: %w", name, err)
	}
	l.CheckBytesTo(name, buf.Bytes(), sink)
	return nil
}

// CheckFile checks a document on disk, reading it into a pooled
// buffer: a warm CheckFile does not allocate for the document at all
// (the seed paid one allocation for the read plus a full string(data)
// copy per file).
func (l *Linter) CheckFile(path string) ([]warn.Message, error) {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	if err := l.readFile(path, buf); err != nil {
		return nil, err
	}
	return l.CheckBytes(path, buf.Bytes()), nil
}

// CheckFileTo checks a document on disk, streaming diagnostics into
// sink (see CheckStringTo for the delivery contract).
func (l *Linter) CheckFileTo(path string, sink warn.Sink) error {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	if err := l.readFile(path, buf); err != nil {
		return err
	}
	l.CheckBytesTo(path, buf.Bytes(), sink)
	return nil
}

// readFile reads path into the pooled buffer buf.
func (l *Linter) readFile(path string, buf *bytes.Buffer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.Size() > 0 && st.Size() < int64(^uint(0)>>1)-bytes.MinRead {
		// The MinRead margin lets ReadFrom hit EOF without one last
		// grow-and-copy of the whole buffer.
		buf.Grow(int(st.Size()) + bytes.MinRead)
	}
	if _, err := buf.ReadFrom(f); err != nil {
		return fmt.Errorf("lint: reading %s: %w", path, err)
	}
	return nil
}

// CheckURL retrieves a page over HTTP and checks it. The URL is used
// as the file name in messages.
func (l *Linter) CheckURL(url string) ([]warn.Message, error) {
	resp, err := l.fetch(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return l.CheckReader(url, resp.Body)
}

// CheckURLTo retrieves a page over HTTP and checks it, streaming
// diagnostics into sink (see CheckStringTo for the delivery contract).
func (l *Linter) CheckURLTo(url string, sink warn.Sink) error {
	resp, err := l.fetch(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return l.CheckReaderTo(url, resp.Body, sink)
}

// fetch retrieves url, turning non-200 statuses into errors.
func (l *Linter) fetch(url string) (*http.Response, error) {
	resp, err := l.client.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("lint: GET %s: %s", url, resp.Status)
	}
	return resp, nil
}
