package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weblint/internal/fixit"
	"weblint/internal/warn"
)

// addSuiteSeeds feeds every suite sample to the fuzzer as seed input.
func addSuiteSeeds(f *testing.F) {
	f.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "suite"))
	if err != nil {
		f.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".html" {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", "suite", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
		n++
	}
	if n < 25 {
		f.Fatalf("only %d suite seeds", n)
	}
}

// FuzzCheckString: linting never panics, and the returned messages
// honour the SortByLine contract (grouped by file, non-decreasing
// lines, sane positions). On top of that it pins the monotone line
// cursor in checkEntities: raw (streamed, unsorted) emission of the
// entity-scan findings must carry non-decreasing line numbers within
// each of its two passes — the entity/'&' pass and the '<' pass run
// separately over each text run, so each class is monotone on its own
// but the two interleave (a '<' early in a run is emitted after an
// unknown entity late in it). A cursor bug that ever walked backwards
// would break the monotonicity of its own class.
func FuzzCheckString(f *testing.F) {
	addSuiteSeeds(f)
	f.Add("<p ALIGN='a' align=\"b\" Align=c x><a name=x><h3>")
	f.Add("x & y\n<\n&bogus;\n&#x41 <")
	l := MustNew(Options{Pedantic: true})
	f.Fuzz(func(t *testing.T, src string) {
		msgs := l.CheckString("fuzz.html", src)
		for i, m := range msgs {
			if m.Line < 1 {
				t.Fatalf("message %d has line %d: %+v", i, m.Line, m)
			}
			if m.File != "fuzz.html" {
				t.Fatalf("message %d names file %q", i, m.File)
			}
			if i > 0 && msgs[i-1].Line > m.Line {
				t.Fatalf("messages out of line order at %d: %d after %d", i, m.Line, msgs[i-1].Line)
			}
			if warn.Lookup(m.ID) == nil {
				t.Fatalf("message %d has unregistered ID %q", i, m.ID)
			}
		}

		// Raw emission order, per entity-scan class.
		ampLine, ltLine := 0, 0 // last line seen per pass
		l.CheckStringTo("fuzz.html", src, warn.SinkFunc(func(m warn.Message) bool {
			switch {
			case m.ID == "unknown-entity" || m.ID == "unterminated-entity" ||
				(m.ID == "metacharacter" && strings.Contains(m.Text, "&amp;")):
				if m.Line < ampLine {
					t.Fatalf("entity-pass line went backwards: %d after %d (%s %q)", m.Line, ampLine, m.ID, m.Text)
				}
				ampLine = m.Line
			case m.ID == "metacharacter" && strings.Contains(m.Text, "&lt;"):
				if m.Line < ltLine {
					t.Fatalf("'<'-pass line went backwards: %d after %d (%q)", m.Line, ltLine, m.Text)
				}
				ltLine = m.Line
			}
			return true
		}))
	})
}

// FuzzApplyFixes: every fix the checker attaches has in-bounds,
// non-overlapping edits (fixit reports any violation as a skip, which
// the checker's builders never trigger); applying them never panics;
// and a second apply over the re-lint of the fixed document is a
// byte-identical no-op.
func FuzzApplyFixes(f *testing.F) {
	addSuiteSeeds(f)
	f.Add("<IMG src=x one.gif><A HREF='y>z</A><BR/></BR></P>&")
	l := MustNew(Options{})
	f.Fuzz(func(t *testing.T, src string) {
		msgs := l.CheckString("fuzz.html", src)
		fixed, rep := fixit.Apply(src, msgs)
		for _, o := range rep.Outcomes {
			if o.Reason == "invalid edit span" {
				t.Fatalf("checker emitted an out-of-bounds fix: %s line %d (%s)", o.ID, o.Line, o.Label)
			}
		}
		relint := l.CheckString("fuzz.html", fixed)
		fixed2, rep2 := fixit.Apply(fixed, relint)
		if fixed2 != fixed {
			t.Fatalf("second apply not a no-op:\nsrc:    %q\nfixed:  %q\nfixed2: %q", src, fixed, fixed2)
		}
		if rep2.Applied != 0 {
			t.Fatalf("re-lint of fixed document still has %d applicable fixes (src %q)", rep2.Applied, src)
		}
	})
}
