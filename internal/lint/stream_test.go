package lint

import (
	"reflect"
	"strings"
	"testing"

	"weblint/internal/warn"
)

const streamDoc = `<HTML>
<HEAD><TITLE>stream</TITLE></HEAD>
<BODY>
<IMG SRC="a.gif">
<P ALIGN=middle>text & more
</BODY>
</HTML>
`

// TestCheckStringToMatchesCheckString: collecting the stream and
// sorting it reproduces the slice API exactly — the slice APIs are the
// collect-sink wrapper over the streaming core.
func TestCheckStringToMatchesCheckString(t *testing.T) {
	l := MustNew(Options{})
	want := l.CheckString("doc.html", streamDoc)
	if len(want) == 0 {
		t.Fatal("fixture produced no messages")
	}

	var c warn.Collector
	l.CheckStringTo("doc.html", streamDoc, &c)
	got := append([]warn.Message(nil), c.Messages...)
	warn.SortByLine(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed+sorted = %+v\nwant %+v", got, want)
	}
}

// TestCheckStringToStreamsInEmissionOrder: the stream arrives in
// document order with end-of-document checks last, unsorted.
func TestCheckStringToStreamsInEmissionOrder(t *testing.T) {
	l := MustNew(Options{})
	var c warn.Collector
	// No TITLE: require-title is emitted by Finish, after everything.
	l.CheckStringTo("doc.html", "<HTML><BODY><IMG SRC=x.gif></BODY></HTML>", &c)
	if len(c.Messages) == 0 {
		t.Fatal("no messages streamed")
	}
	last := c.Messages[len(c.Messages)-1]
	if last.ID != "require-meta" && last.ID != "require-title" && last.ID != "require-head" {
		t.Errorf("last streamed message = %s, want an end-of-document check", last.ID)
	}
}

// TestCheckStringToCancellation: a sink returning false stops the
// check — no further messages are delivered, even though the rest of
// the document is full of findings.
func TestCheckStringToCancellation(t *testing.T) {
	var b strings.Builder
	b.WriteString("<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>\n")
	for i := 0; i < 5000; i++ {
		b.WriteString("<IMG SRC=\"x.gif\">\n") // img-alt + img-size each line
	}
	b.WriteString("</BODY></HTML>\n")
	doc := b.String()

	l := MustNew(Options{})
	var all warn.Collector
	l.CheckStringTo("big.html", doc, &all)
	if len(all.Messages) < 5000 {
		t.Fatalf("fixture only produced %d messages", len(all.Messages))
	}

	n := 0
	l.CheckStringTo("big.html", doc, warn.SinkFunc(func(warn.Message) bool {
		n++
		return false
	}))
	if n != 1 {
		t.Errorf("cancelled stream delivered %d messages, want 1", n)
	}
}

// TestPooledStateAfterStreaming: a streaming check must not leak its
// sink or its cancellation into the pooled bundle the next slice-API
// check draws.
func TestPooledStateAfterStreaming(t *testing.T) {
	l := MustNew(Options{})
	want := l.CheckString("doc.html", streamDoc)

	l.CheckStringTo("doc.html", streamDoc, warn.SinkFunc(func(warn.Message) bool { return false }))
	got := l.CheckString("doc.html", streamDoc)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("slice API after a cancelled stream = %+v\nwant %+v", got, want)
	}
}

func TestCheckReaderTo(t *testing.T) {
	l := MustNew(Options{})
	var c warn.Collector
	if err := l.CheckReaderTo("r.html", strings.NewReader(streamDoc), &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Messages) == 0 {
		t.Error("no messages streamed from reader")
	}
	for _, m := range c.Messages {
		if m.File != "r.html" {
			t.Errorf("message file = %q, want r.html", m.File)
		}
	}
}

func TestCheckFileToMissingFile(t *testing.T) {
	l := MustNew(Options{})
	sink := warn.SinkFunc(func(warn.Message) bool {
		t.Error("sink received a message for an unreadable file")
		return true
	})
	if err := l.CheckFileTo("/nonexistent/no.html", sink); err == nil {
		t.Error("CheckFileTo returned nil error for a missing file")
	}
}

// TestStartTagColumns: the high-traffic start-tag/attribute emission
// sites carry tokenizer columns through to the messages.
func TestStartTagColumns(t *testing.T) {
	l := MustNew(Options{})
	//        123456789...
	doc := "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>\n" +
		"  <IMG SRC=\"x.gif\" BOGUS=\"1\">\n" +
		"</BODY></HTML>\n"
	byID := map[string]warn.Message{}
	for _, m := range l.CheckString("col.html", doc) {
		byID[m.ID] = m
	}
	img, ok := byID["img-alt"]
	if !ok || img.Line != 2 || img.Col != 3 {
		t.Errorf("img-alt at %d:%d, want 2:3 (%+v)", img.Line, img.Col, img)
	}
	bogus, ok := byID["unknown-attribute"]
	if !ok || bogus.Line != 2 || bogus.Col != 20 {
		t.Errorf("unknown-attribute at %d:%d, want 2:20 (%+v)", bogus.Line, bogus.Col, bogus)
	}
}
