package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"weblint/internal/corpus"
)

// -update-golden regenerates testdata/golden_equiv.json from the
// current checker output. Run it ONLY when a message change is
// intended; the file pins the exact (ID, line, col, text, fix)
// stream the optimized hot paths must keep emitting.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_equiv.json")

// goldenEntry pins one document's full diagnostic stream: the message
// count and a SHA-256 over a canonical rendering of every message
// including its fix edits.
type goldenEntry struct {
	Messages int    `json:"messages"`
	SHA256   string `json:"sha256"`
}

// equivDocs builds the deterministic document set the equivalence
// sweep pins: the sample suite, corpus documents at error rates
// 0/0.1/0.25, and handcrafted documents shaped to stress each path
// the scaling fixes touched (long metachar-dense text runs, close-tag
// storms, dense-error STYLE blocks).
func equivDocs(t testing.TB) map[string]string {
	docs := map[string]string{}

	entries, err := os.ReadDir(filepath.Join("testdata", "suite"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".html" {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", "suite", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		docs["suite/"+e.Name()] = string(data)
	}

	for _, rate := range []float64{0, 0.1, 0.25} {
		for _, seed := range []int64{1, 2} {
			for _, size := range []int{16 << 10, 64 << 10} {
				name := fmt.Sprintf("corpus/r%v-s%d-%dk.html", rate, seed, size>>10)
				docs[name] = corpus.GenerateSized(seed, size, corpus.Uniform(rate))
			}
		}
	}
	// One large error-dense document: the shape whose per-byte cost
	// regressed superlinearly before the scaling fixes.
	docs["corpus/r0.25-s1-256k.html"] = corpus.GenerateSized(1, 256<<10, corpus.Uniform(0.25))

	// A single multi-KiB text run dense with bare '&' and '<': every
	// finding used to re-count newlines from the start of the run.
	var run strings.Builder
	run.WriteString("<HTML><HEAD><TITLE>t</TITLE>\n")
	run.WriteString("<META NAME=\"description\" CONTENT=\"x\">")
	run.WriteString("<META NAME=\"keywords\" CONTENT=\"x\">")
	run.WriteString("</HEAD><BODY><P>\n")
	for i := 0; i < 1500; i++ {
		fmt.Fprintf(&run, "a & b < c &bogus; &#x41 d %d\n", i)
	}
	run.WriteString("</P></BODY></HTML>\n")
	docs["dense/metachar-run.html"] = run.String()

	// Close-tag storm: a structural close moves a deep pile of inline
	// elements to the secondary stack, then their own close tags
	// resolve innermost-first — the order that forced a front-of-slice
	// deletion (full tail copy) per close.
	var storm strings.Builder
	storm.WriteString("<HTML><HEAD><TITLE>t</TITLE>\n")
	storm.WriteString("<META NAME=\"description\" CONTENT=\"x\">")
	storm.WriteString("<META NAME=\"keywords\" CONTENT=\"x\">")
	storm.WriteString("</HEAD><BODY><P>x\n")
	const stormDepth = 400
	tags := []string{"B", "I", "TT", "EM", "STRONG", "CODE"}
	storm.WriteString("<DIV>")
	for i := 0; i < stormDepth; i++ {
		fmt.Fprintf(&storm, "<%s>x\n", tags[i%len(tags)])
	}
	storm.WriteString("</DIV>\n")
	for i := stormDepth - 1; i >= 0; i-- {
		fmt.Fprintf(&storm, "</%s>\n", tags[i%len(tags)])
	}
	storm.WriteString("</BODY></HTML>\n")
	docs["dense/close-storm.html"] = storm.String()

	// STYLE block dense with unknown properties, bad colors and syntax
	// errors: csslint used to re-count newlines per declaration.
	var style strings.Builder
	style.WriteString("<HTML><HEAD><TITLE>t</TITLE>\n")
	style.WriteString("<META NAME=\"description\" CONTENT=\"x\">")
	style.WriteString("<META NAME=\"keywords\" CONTENT=\"x\">")
	style.WriteString("<STYLE>\n<!--\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&style, ".c%d {\n  colour: red;\n  color: notacolor%d;\n  margin: 0;\n  broken decl\n}\n", i, i)
	}
	style.WriteString("-->\n</STYLE></HEAD><BODY><P>x</P></BODY></HTML>\n")
	docs["dense/style-errors.html"] = style.String()

	return docs
}

// TestGoldenEquivalence asserts the checker's full diagnostic stream
// over the suite + corpus sweep is byte-identical to the recorded
// pre-optimization output: same IDs, lines, cols, texts, and fixes,
// under both the default and the pedantic configuration. Any scaling
// or hot-path rework must keep this green without -update-golden.
func TestGoldenEquivalence(t *testing.T) {
	docs := equivDocs(t)
	linters := map[string]*Linter{
		"default":  MustNew(Options{}),
		"pedantic": MustNew(Options{Pedantic: true}),
	}

	got := map[string]goldenEntry{}
	for docName, src := range docs {
		for cfgName, l := range linters {
			msgs := l.CheckString(docName, src)
			h := sha256.New()
			for _, m := range msgs {
				fix := ""
				if m.Fix != nil {
					parts := make([]string, 0, len(m.Fix.Edits)+1)
					parts = append(parts, m.Fix.Label)
					for _, e := range m.Fix.Edits {
						parts = append(parts, fmt.Sprintf("[%d,%d)=%q", e.Start, e.End, e.Text))
					}
					fix = strings.Join(parts, " ")
				}
				fmt.Fprintf(h, "%s|%d|%d|%s|%s\n", m.ID, m.Line, m.Col, m.Text, fix)
			}
			got[cfgName+"/"+docName] = goldenEntry{
				Messages: len(msgs),
				SHA256:   hex.EncodeToString(h.Sum(nil)),
			}
		}
	}

	goldenPath := filepath.Join("testdata", "golden_equiv.json")
	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]goldenEntry, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d entries, sweep produced %d", len(want), len(got))
	}
	for k, g := range got {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: no golden entry", k)
			continue
		}
		if g != w {
			t.Errorf("%s: output diverged from pre-optimization golden:\n  got  %d messages, hash %s\n  want %d messages, hash %s",
				k, g.Messages, g.SHA256, w.Messages, w.SHA256)
		}
	}
}
