package lint

import (
	"os"
	"testing"

	"weblint/internal/config"
	"weblint/internal/testsuite"
	"weblint/internal/warn"
)

// TestSampleSuite runs the HTML sample suite under testdata/suite: the
// paper's test-suite approach ("a large test set of HTML samples,
// which are believed to be valid or invalid for specific versions of
// HTML"), with expectations declared in each sample's leading
// comments.
func TestSampleSuite(t *testing.T) {
	cases, err := testsuite.Load(os.DirFS("testdata"), "suite")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 25 {
		t.Fatalf("only %d samples found; suite incomplete", len(cases))
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			s := config.NewSettings()
			s.HTMLVersion = c.HTMLVersion
			s.Extensions = c.Extensions
			l, err := New(Options{Settings: s, Pedantic: c.Pedantic})
			if err != nil {
				t.Fatal(err)
			}
			msgs := l.CheckString(c.Name, c.Source)
			ids := make([]string, len(msgs))
			for i, m := range msgs {
				ids[i] = m.ID
			}
			for _, problem := range c.Diff(ids) {
				t.Error(problem)
			}
			if t.Failed() {
				for _, m := range msgs {
					t.Logf("  got: %s [%s]", warn.Short{}.Format(m), m.ID)
				}
			}
		})
	}
}
