package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"weblint/internal/corpus"
)

// TestCheckBytesMatchesCheckString: the zero-copy path must produce
// exactly the messages the string path produces.
func TestCheckBytesMatchesCheckString(t *testing.T) {
	l := MustNew(Options{})
	src := corpus.Generate(corpus.Config{
		Seed: 3, Sections: 6,
		Errors: corpus.ErrorRates{Overlap: 0.4, DropClose: 0.3, Misspell: 0.2},
	})
	want := l.CheckString("doc.html", src)
	got := l.CheckBytes("doc.html", []byte(src))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CheckBytes differs from CheckString:\n got %v\nwant %v", got, want)
	}
}

// TestCheckBytesBufferReuse: once CheckBytes returns, the caller may
// overwrite the buffer — earlier messages must be unaffected (they own
// their text) and later checks over the recycled buffer must be
// correct. This is the contract the pooled read paths depend on.
func TestCheckBytesBufferReuse(t *testing.T) {
	l := MustNew(Options{})
	a := corpus.Generate(corpus.Config{Seed: 1, Sections: 4,
		Errors: corpus.ErrorRates{Overlap: 0.5}})
	b := corpus.Generate(corpus.Config{Seed: 2, Sections: 4,
		Errors: corpus.ErrorRates{DropClose: 0.5}})

	wantA := l.CheckString("a.html", a)
	wantB := l.CheckString("b.html", b)

	buf := make([]byte, 0, max(len(a), len(b))+1)
	buf = append(buf[:0], a...)
	gotA := l.CheckBytes("a.html", buf)

	// Recycle the buffer for a different document.
	buf = append(buf[:0], b...)
	gotB := l.CheckBytes("b.html", buf)

	// And clobber it entirely.
	for i := range buf {
		buf[i] = 'x'
	}

	if !reflect.DeepEqual(gotA, wantA) {
		t.Errorf("messages from first check corrupted by buffer reuse")
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Errorf("messages from recycled-buffer check differ")
	}
}

// TestCheckReaderPooledBuffer: repeated CheckReader calls must stay
// correct while sharing pooled read buffers, including interleaved
// sizes (a big document then a small one must not see stale bytes).
func TestCheckReaderPooledBuffer(t *testing.T) {
	l := MustNew(Options{})
	big := corpus.GenerateSized(7, 256<<10, corpus.ErrorRates{})
	small := "<html><head><title>t</title></head><body>tiny</body></html>"

	wantBig := l.CheckString("big.html", big)
	wantSmall := l.CheckString("small.html", small)

	for i := 0; i < 4; i++ {
		gotBig, err := l.CheckReader("big.html", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		gotSmall, err := l.CheckReader("small.html", strings.NewReader(small))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotBig, wantBig) {
			t.Fatalf("iteration %d: big document messages differ", i)
		}
		if !reflect.DeepEqual(gotSmall, wantSmall) {
			t.Fatalf("iteration %d: small document messages differ", i)
		}
	}
}

// TestCheckFilePooledRead: CheckFile through the pooled read path must
// match CheckString over the same content, across repeated and
// concurrent use.
func TestCheckFilePooledRead(t *testing.T) {
	l := MustNew(Options{})
	dir := t.TempDir()
	src := corpus.Generate(corpus.Config{Seed: 11, Sections: 5,
		Errors: corpus.ErrorRates{Overlap: 0.3}})
	path := filepath.Join(dir, "page.html")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	want := l.CheckString(path, src)

	for i := 0; i < 3; i++ {
		got, err := l.CheckFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: CheckFile differs from CheckString", i)
		}
	}

	t.Run("concurrent", func(t *testing.T) {
		done := make(chan []int, 8)
		for g := 0; g < 8; g++ {
			go func() {
				var bad []int
				for i := 0; i < 20; i++ {
					got, err := l.CheckFile(path)
					if err != nil || !reflect.DeepEqual(got, want) {
						bad = append(bad, i)
					}
				}
				done <- bad
			}()
		}
		for g := 0; g < 8; g++ {
			if bad := <-done; len(bad) > 0 {
				t.Fatalf("concurrent CheckFile diverged on iterations %v", bad)
			}
		}
	})
}

// TestCheckReaderError: a failing reader still reports its error.
func TestCheckReaderError(t *testing.T) {
	l := MustNew(Options{})
	r := &failReader{data: []byte("<html>")}
	if _, err := l.CheckReader("x.html", r); err == nil {
		t.Fatal("CheckReader swallowed the read error")
	}
}

type failReader struct{ data []byte }

func (f *failReader) Read(p []byte) (int, error) {
	if len(f.data) > 0 {
		n := copy(p, f.data)
		f.data = nil
		return n, nil
	}
	return 0, os.ErrClosed
}
