package lint

import (
	"testing"

	"weblint/internal/config"
)

// The cache contract: equal fingerprints must mean interchangeable
// linters, and any configuration input that can change findings must
// move the fingerprint.
func TestConfigFingerprintStableAndSensitive(t *testing.T) {
	base := func() Options {
		return Options{Settings: config.NewSettings()}
	}
	fp := func(o Options) string {
		t.Helper()
		return MustNew(o).ConfigFingerprint()
	}

	ref := fp(base())
	if ref == "" || len(ref) != 64 {
		t.Fatalf("fingerprint = %q, want 64 hex chars", ref)
	}
	if fp(base()) != ref {
		t.Fatal("identical options produced different fingerprints")
	}
	if fp(Options{}) != ref {
		t.Fatal("nil Settings is not equivalent to default Settings")
	}

	variants := map[string]Options{}

	o := base()
	o.Pedantic = true
	variants["pedantic"] = o

	o = base()
	o.Settings.HTMLVersion = "HTML 3.2"
	variants["html version"] = o

	o = base()
	o.Settings.Extensions = []string{"netscape"}
	variants["extensions"] = o

	o = base()
	o.Settings.Set.Disable("img-alt")
	variants["enabled set"] = o

	o = base()
	o.Settings.TagCase = "upper"
	variants["tag case"] = o

	o = base()
	o.Settings.TitleLength = 12
	variants["title length"] = o

	o = base()
	o.Settings.HereWords = []string{"press"}
	variants["here words"] = o

	o = base()
	o.DisableCascadeSuppression = true
	variants["cascade ablation"] = o

	o = base()
	o.DisableImpliedClose = true
	variants["implied-close ablation"] = o

	o = base()
	o.NoBuiltinPlugins = true
	variants["plugin set"] = o

	seen := map[string]string{ref: "default"}
	for name, o := range variants {
		got := fp(o)
		if prev, dup := seen[got]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[got] = name
	}

	// Extension order is canonicalised: permutations are the same
	// configuration, so they share a fingerprint.
	a, b := base(), base()
	a.Settings.Extensions = []string{"netscape", "microsoft"}
	b.Settings.Extensions = []string{"microsoft", "netscape"}
	if fp(a) != fp(b) {
		t.Error("extension order changed the fingerprint")
	}
}
