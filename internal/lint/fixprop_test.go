package lint

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"weblint/internal/config"
	"weblint/internal/corpus"
	"weblint/internal/fixit"
	"weblint/internal/testsuite"
	"weblint/internal/warn"
)

// assertFixIdempotent enforces the fix-it contract on one document:
// applying the fixes and re-linting leaves zero fixable findings and
// introduces no new finding (per-ID counts never grow), and a second
// apply pass is a byte-identical no-op.
func assertFixIdempotent(t *testing.T, l *Linter, name, src string) {
	t.Helper()
	msgs := l.CheckString(name, src)
	fixed, rep := fixit.Apply(src, msgs)
	if rep.Skipped > 0 {
		// The checker's fix builders are engineered not to conflict
		// with each other; a skip here means two of them fought.
		for _, o := range rep.Outcomes {
			if !o.Applied {
				t.Errorf("%s: fix for %s (line %d, %s) skipped: %s", name, o.ID, o.Line, o.Label, o.Reason)
			}
		}
	}

	relint := l.CheckString(name, fixed)
	for _, m := range relint {
		if m.Fix != nil {
			t.Errorf("%s: fixable finding survives apply: %s line %d: %s (fix %q)",
				name, m.ID, m.Line, m.Text, m.Fix.Label)
		}
	}

	before := countByID(msgs)
	after := countByID(relint)
	for id, n := range after {
		if n > before[id] {
			t.Errorf("%s: apply introduced new %s findings: %d -> %d", name, id, before[id], n)
		}
	}

	fixed2, rep2 := fixit.Apply(fixed, relint)
	if fixed2 != fixed {
		t.Errorf("%s: second apply is not a byte-identical no-op", name)
	}
	if rep2.Applied != 0 {
		t.Errorf("%s: second apply applied %d fixes", name, rep2.Applied)
	}

	if t.Failed() {
		t.Logf("%s: original:\n%s", name, src)
		t.Logf("%s: fixed:\n%s", name, fixed)
		for _, m := range relint {
			t.Logf("  relint: %s [%s]", warn.Short{}.Format(m), m.ID)
		}
	}
}

func countByID(msgs []warn.Message) map[string]int {
	m := map[string]int{}
	for _, msg := range msgs {
		m[msg.ID]++
	}
	return m
}

// TestFixIdempotencySuite: the suite-wide headline property, run over
// every sample with the sample's own configuration.
func TestFixIdempotencySuite(t *testing.T) {
	cases, err := testsuite.Load(os.DirFS("testdata"), "suite")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 25 {
		t.Fatalf("only %d samples found; suite incomplete", len(cases))
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			s := config.NewSettings()
			s.HTMLVersion = c.HTMLVersion
			s.Extensions = c.Extensions
			l, err := New(Options{Settings: s, Pedantic: c.Pedantic})
			if err != nil {
				t.Fatal(err)
			}
			assertFixIdempotent(t, l, c.Name, c.Source)
		})
	}
}

// TestFixIdempotencyCorpus: the same property over generated documents
// at several error rates and configurations, including the case-style
// checks whose fixes rewrite names in place.
func TestFixIdempotencyCorpus(t *testing.T) {
	configs := []struct {
		name  string
		build func(t *testing.T) *Linter
	}{
		{"default", func(t *testing.T) *Linter {
			return MustNew(Options{})
		}},
		{"pedantic", func(t *testing.T) *Linter {
			return MustNew(Options{Pedantic: true})
		}},
		{"lower-case-style", func(t *testing.T) *Linter {
			return caseStyleLinter(t, "lower")
		}},
		{"upper-case-style", func(t *testing.T) *Linter {
			return caseStyleLinter(t, "upper")
		}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			l := cfg.build(t)
			for seed := int64(0); seed < 8; seed++ {
				for _, rate := range []float64{0, 0.2, 0.6} {
					name := fmt.Sprintf("corpus-seed%d-rate%v.html", seed, rate)
					src := corpus.Generate(corpus.Config{
						Seed:     seed,
						Sections: 3 + int(seed%3),
						Errors:   corpus.Uniform(rate),
					})
					assertFixIdempotent(t, l, name, src)
				}
			}
		})
	}
}

// caseStyleLinter builds a linter with the tag/attribute case style
// checks configured AND enabled (they are registered Default false,
// so setting the knob alone exercises nothing).
func caseStyleLinter(t *testing.T, want string) *Linter {
	t.Helper()
	s := config.NewSettings()
	s.TagCase = want
	s.AttrCase = want
	for _, id := range []string{"tag-case", "attribute-case"} {
		if err := s.Set.Enable(id); err != nil {
			t.Fatal(err)
		}
	}
	return MustNew(Options{Settings: s})
}

// TestFixIdempotencyTricky pins documents that once broke the
// property — mostly fuzz-found tokenizer-interaction cases — plus the
// XHTML-spacing shape where an attribute insertion must coexist with
// the trailing-slash deletion at its boundary.
func TestFixIdempotencyTricky(t *testing.T) {
	docs := map[string]string{
		"xhtml-spaced-slash":   `<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><IMG SRC="x.gif" /></BODY></HTML>`,
		"xhtml-double-slash":   `<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><IMG SRC="x.gif"//></BODY></HTML>`,
		"eof-unterminated-tag": "000000000000000000<B>0<C0",
		"trailing-slash-run":   "<A000000000000000000000//>",
		"quote-garbled-attrs":  "<B\" > \">",
		"stray-equals":         "<A000000 0 0=0 =>",
		"odd-quotes-then-del":  "<A\"0000\n>\n></TITLE\n>\n\">0",
		"quoted-garbage-value": "<A\"=> &0\">",
		"unterminated-quote":   "<FORM\"=\">",
	}
	l := MustNew(Options{})
	for name, src := range docs {
		t.Run(name, func(t *testing.T) {
			assertFixIdempotent(t, l, name+".html", src)
		})
	}
}

// TestFixXHTMLSpacedSlash: the insertion lands before the whole
// slash/space run, so both fixes apply and the rewrite is complete.
func TestFixXHTMLSpacedSlash(t *testing.T) {
	l := MustNew(Options{})
	src := `<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><IMG SRC="x.gif" /></BODY></HTML>`
	fixed, rep := fixit.Apply(src, l.CheckString("t.html", src))
	if rep.Skipped != 0 {
		t.Fatalf("skipped fixes: %+v", rep.Outcomes)
	}
	if !strings.Contains(fixed, `<IMG SRC="x.gif" ALT="">`) {
		t.Errorf("fixed = %q", fixed)
	}
}

// TestFixUnicodeAttrCaseLengthPreserved pins the review-found case:
// an attribute name containing U+212A (Kelvin sign) under `set
// attr-case lower`. The Unicode fold would shrink it ("K" -> "k",
// 3 bytes -> 1), and a length-changing edit after an odd-quotes
// recovery re-tokenizes the document differently; the ASCII fold the
// fix uses is length-preserving, so the idempotency property holds.
func TestFixUnicodeAttrCaseLengthPreserved(t *testing.T) {
	l := caseStyleLinter(t, "lower")
	// Sweep the filler length across the tokenizer's 300-byte
	// odd-quote recovery budget: a 2-byte shrink anywhere in the range
	// would flip the recovery decision on a re-parse.
	for n := 285; n <= 305; n++ {
		doc := "<p 'x>" + strings.Repeat("0", n) + "<p AK=1>'q>tail"
		assertFixIdempotent(t, l, fmt.Sprintf("kelvin-%d.html", n), doc)
	}
}
