package lint

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weblint/internal/config"
	"weblint/internal/core"
	"weblint/internal/csslint"
	"weblint/internal/plugin"
)

const brokenPage = `<HTML>
<HEAD>
<TITLE>example page
</HEAD>
<BODY BGCOLOR="fffff" TEXT=#00ff00>
<H1>My Example</H2>
Click <B><A HREF="a.html>here</B></A>
for more details.
</BODY>
</HTML>
`

func TestCheckStringSection42(t *testing.T) {
	l := MustNew(Options{})
	msgs := l.CheckString("test.html", brokenPage)
	if len(msgs) != 7 {
		t.Fatalf("got %d messages, want 7", len(msgs))
	}
	// Sorted by line.
	for i := 1; i < len(msgs); i++ {
		if msgs[i].Line < msgs[i-1].Line {
			t.Error("messages not sorted by line")
		}
	}
	if msgs[0].File != "test.html" {
		t.Errorf("file = %q", msgs[0].File)
	}
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "page.html")
	if err := os.WriteFile(path, []byte(brokenPage), 0o644); err != nil {
		t.Fatal(err)
	}
	l := MustNew(Options{})
	msgs, err := l.CheckFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 7 {
		t.Errorf("got %d messages, want 7", len(msgs))
	}
	if msgs[0].File != path {
		t.Errorf("file = %q", msgs[0].File)
	}
	if _, err := l.CheckFile(filepath.Join(dir, "missing.html")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestCheckReader(t *testing.T) {
	l := MustNew(Options{})
	msgs, err := l.CheckReader("r.html", strings.NewReader(brokenPage))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 7 {
		t.Errorf("got %d messages, want 7", len(msgs))
	}
}

func TestCheckURL(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			w.Header().Set("Content-Type", "text/html")
			_, _ = w.Write([]byte(brokenPage))
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	l := MustNew(Options{HTTPClient: srv.Client()})
	msgs, err := l.CheckURL(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 7 {
		t.Errorf("got %d messages, want 7", len(msgs))
	}
	if msgs[0].File != srv.URL+"/" {
		t.Errorf("file = %q", msgs[0].File)
	}

	if _, err := l.CheckURL(srv.URL + "/missing"); err == nil {
		t.Error("404 did not error")
	}
}

func TestPedantic(t *testing.T) {
	src := "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE>" +
		"<META NAME=\"description\" CONTENT=\"d\"><META NAME=\"keywords\" CONTENT=\"k\">" +
		"</HEAD><BODY><P>see <A HREF=\"x.html\">here</A></P></BODY></HTML>"
	def := MustNew(Options{})
	if msgs := def.CheckString("p.html", src); len(msgs) != 0 {
		t.Fatalf("default run produced %v", msgs)
	}
	ped := MustNew(Options{Pedantic: true})
	msgs := ped.CheckString("p.html", src)
	found := false
	for _, m := range msgs {
		if m.ID == "here-anchor" {
			found = true
		}
	}
	if !found {
		t.Errorf("pedantic run missing here-anchor: %v", msgs)
	}
}

func TestSettingsDrivenVersion(t *testing.T) {
	s := config.NewSettings()
	s.HTMLVersion = "3.2"
	l, err := New(Options{Settings: s})
	if err != nil {
		t.Fatal(err)
	}
	if l.Spec().Version != "HTML 3.2" {
		t.Errorf("spec = %s", l.Spec().Version)
	}
	// SPAN is 4.0-only: flagged as unknown under 3.2.
	msgs := l.CheckString("v.html", "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><SPAN>x</SPAN></BODY></HTML>")
	found := false
	for _, m := range msgs {
		if m.ID == "unknown-element" && strings.Contains(m.Text, "SPAN") {
			found = true
		}
	}
	if !found {
		t.Errorf("SPAN not flagged under 3.2: %v", msgs)
	}
}

func TestUnknownVersionErrors(t *testing.T) {
	s := config.NewSettings()
	s.HTMLVersion = "5.0"
	if _, err := New(Options{Settings: s}); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestSettingsDrivenExtensions(t *testing.T) {
	s := config.NewSettings()
	s.Extensions = []string{"netscape"}
	l := MustNew(Options{Settings: s})
	msgs := l.CheckString("x.html",
		"<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><BLINK>hi</BLINK></BODY></HTML>")
	for _, m := range msgs {
		if m.ID == "extension-markup" {
			t.Errorf("BLINK flagged despite netscape extension: %v", m)
		}
	}
}

func TestLocaleThroughSettings(t *testing.T) {
	s := config.NewSettings()
	s.Locale = "fr"
	l, err := New(Options{Settings: s})
	if err != nil {
		t.Fatal(err)
	}
	msgs := l.CheckString("t.html", brokenPage)
	if len(msgs) == 0 {
		t.Fatal("no messages")
	}
	if msgs[0].Text != "le premier élément n'était pas la déclaration DOCTYPE" {
		t.Errorf("translated message = %q", msgs[0].Text)
	}
	// Untranslated messages fall back to English.
	found := false
	for _, m := range msgs {
		if strings.Contains(m.Text, "guillemets") {
			found = true
		}
	}
	if !found {
		t.Error("odd-quotes translation missing")
	}
}

func TestUnknownLocaleErrors(t *testing.T) {
	s := config.NewSettings()
	s.Locale = "xx"
	if _, err := New(Options{Settings: s}); err == nil {
		t.Error("unknown locale accepted")
	}
}

func TestCSSPluginThroughLinter(t *testing.T) {
	src := "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE>" +
		"<META NAME=\"description\" CONTENT=\"d\"><META NAME=\"keywords\" CONTENT=\"k\">" +
		"<STYLE TYPE=\"text/css\">P { colour: red }</STYLE>" +
		"</HEAD><BODY><P>x</P></BODY></HTML>"
	l := MustNew(Options{})
	msgs := l.CheckString("s.html", src)
	found := false
	for _, m := range msgs {
		if m.ID == "style-unknown-property" {
			found = true
		}
	}
	if !found {
		t.Errorf("CSS plugin not engaged: %v", msgs)
	}
	// And it can be switched off like any other checker.
	off := MustNew(Options{NoBuiltinPlugins: true})
	for _, m := range off.CheckString("s.html", src) {
		if m.ID == "style-unknown-property" {
			t.Error("plugin ran despite NoBuiltinPlugins")
		}
	}
}

func TestAblationOptionsPassThrough(t *testing.T) {
	src := "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>" +
		"<B><I><A HREF=\"x\">y</B></I></A></BODY></HTML>"
	normal := MustNew(Options{}).CheckString("a.html", src)
	ablated := MustNew(Options{DisableCascadeSuppression: true}).CheckString("a.html", src)
	if len(ablated) <= len(normal) {
		t.Errorf("ablated %d <= normal %d", len(ablated), len(normal))
	}
}

func TestLinterIsReusable(t *testing.T) {
	l := MustNew(Options{})
	a := l.CheckString("a.html", brokenPage)
	b := l.CheckString("b.html", brokenPage)
	if len(a) != len(b) {
		t.Errorf("reuse changed results: %d vs %d", len(a), len(b))
	}
	if b[0].File != "b.html" {
		t.Errorf("file = %q", b[0].File)
	}
}

func TestConcurrentChecks(t *testing.T) {
	l := MustNew(Options{})
	done := make(chan int, 8)
	for i := 0; i < 8; i++ {
		go func() {
			done <- len(l.CheckString("c.html", brokenPage))
		}()
	}
	for i := 0; i < 8; i++ {
		if n := <-done; n != 7 {
			t.Errorf("concurrent check returned %d messages", n)
		}
	}
}

// TestCoreOptionsWiring verifies settings reach the checker.
func TestCoreOptionsWiring(t *testing.T) {
	s := config.NewSettings()
	s.TitleLength = 5
	if err := s.Set.Enable("title-length"); err != nil {
		t.Fatal(err)
	}
	l := MustNew(Options{Settings: s})
	msgs := l.CheckString("t.html",
		"<!DOCTYPE HTML><HTML><HEAD><TITLE>much too long</TITLE></HEAD><BODY><P>x</P></BODY></HTML>")
	found := false
	for _, m := range msgs {
		if m.ID == "title-length" {
			found = true
		}
	}
	if !found {
		t.Errorf("title-length with custom limit not reported: %v", msgs)
	}
	_ = core.Options{} // package used for documentation of the wiring
}

// TestLinterExtensionIsolation verifies that two linters with
// different extensions enabled never observe each other's
// configuration — the cross-linter contamination hazard the shared
// memoized specs would otherwise introduce.
func TestLinterExtensionIsolation(t *testing.T) {
	mk := func(exts ...string) *Linter {
		s := config.NewSettings()
		s.Extensions = exts
		return MustNew(Options{Settings: s})
	}
	plain := mk()
	ns := mk("netscape")
	ms := mk("microsoft")

	const doc = "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>" +
		"<BLINK>x</BLINK><MARQUEE>y</MARQUEE></BODY></HTML>"
	count := func(l *Linter) map[string]int {
		got := map[string]int{}
		for _, m := range l.CheckString("t.html", doc) {
			got[m.ID]++
		}
		return got
	}

	if got := count(ns); got["extension-markup"] != 1 {
		t.Errorf("netscape linter: want 1 extension-markup (MARQUEE), got %v", got)
	}
	if got := count(ms); got["extension-markup"] != 1 {
		t.Errorf("microsoft linter: want 1 extension-markup (BLINK), got %v", got)
	}
	// The plain linter must still report both, even after the other
	// two linters were built from the same shared spec.
	if got := count(plain); got["extension-markup"] != 2 {
		t.Errorf("plain linter: want 2 extension-markup, got %v", got)
	}
}

// TestPluginsSliceNotAliased verifies New copies the caller's plugin
// slice rather than appending the built-in CSS checker into its spare
// capacity, which would clobber the caller's backing array.
func TestPluginsSliceNotAliased(t *testing.T) {
	backing := make([]plugin.ContentChecker, 1, 2)
	backing[0] = csslint.Checker{}
	sentinel := backing[:2][1] // spare capacity, currently nil
	if sentinel != nil {
		t.Fatal("test setup: spare slot not nil")
	}
	MustNew(Options{Plugins: backing[:1]})
	if got := backing[:2][1]; got != nil {
		t.Errorf("New wrote %T into the caller's backing array", got)
	}
}

// TestInlineDirectiveDoesNotLeak verifies a document's "weblint:"
// directives affect only that check: the linter's shared warning set
// must not be mutated, so the next document sees defaults again.
func TestInlineDirectiveDoesNotLeak(t *testing.T) {
	l := MustNew(Options{})
	const silenced = "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>" +
		"<!-- weblint: disable img-alt --><IMG SRC=\"x.gif\"></BODY></HTML>"
	const plain = "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>" +
		"<IMG SRC=\"x.gif\"></BODY></HTML>"
	for _, m := range l.CheckString("a.html", silenced) {
		if m.ID == "img-alt" {
			t.Error("inline disable ignored")
		}
	}
	found := false
	for _, m := range l.CheckString("b.html", plain) {
		if m.ID == "img-alt" {
			found = true
		}
	}
	if !found {
		t.Error("inline disable leaked into the next check")
	}
	if !l.Set().Enabled("img-alt") {
		t.Error("inline directive mutated the linter's shared set")
	}
}
