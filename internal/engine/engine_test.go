package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"weblint/internal/corpus"
	"weblint/internal/lint"
	"weblint/internal/plugin"
	"weblint/internal/warn"
)

// adversarialWorkerCounts are the pool sizes every determinism test
// runs under: degenerate (1), small (2), and far more workers than
// jobs or cores (64), which maximises scheduling reorder pressure.
var adversarialWorkerCounts = []int{1, 2, 64}

// genDocs builds an in-memory corpus with deliberately uneven document
// sizes, so fast documents constantly finish ahead of slow ones.
func genDocs(n int) [][]byte {
	docs := make([][]byte, n)
	for i := range docs {
		size := 512 << (i % 6) // 512 B .. 16 KB
		docs[i] = []byte(corpus.GenerateSized(int64(i), size, corpus.ErrorRates{
			Overlap: 0.2, DropClose: 0.2,
		}))
	}
	return docs
}

// TestRunDeterministicOrder checks the engine's core contract: results
// come back in input order with the same messages a sequential run
// produces, for any worker count.
func TestRunDeterministicOrder(t *testing.T) {
	docs := genDocs(120)
	l := lint.MustNew(lint.Options{})

	want := make([][]warn.Message, len(docs))
	for i, d := range docs {
		want[i] = l.CheckBytes(fmt.Sprintf("doc%d.html", i), d)
	}

	jobs := make([]Job, len(docs))
	for i, d := range docs {
		jobs[i] = Job{Name: fmt.Sprintf("doc%d.html", i), Src: d}
	}

	for _, workers := range adversarialWorkerCounts {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			eng := &Engine{Linter: l, Workers: workers}
			results := eng.RunAll(jobs)
			if len(results) != len(jobs) {
				t.Fatalf("got %d results, want %d", len(results), len(jobs))
			}
			for i, r := range results {
				if r.Index != i {
					t.Fatalf("result %d has Index %d", i, r.Index)
				}
				if r.Err != nil {
					t.Fatalf("result %d: unexpected error %v", i, r.Err)
				}
				if r.Name != jobs[i].Name {
					t.Fatalf("result %d: Name = %q, want %q", i, r.Name, jobs[i].Name)
				}
				if !reflect.DeepEqual(r.Messages, want[i]) {
					t.Fatalf("result %d: messages differ from sequential run", i)
				}
			}
		})
	}
}

// TestStreamOrder checks the channel-fed interface delivers in input
// order too.
func TestStreamOrder(t *testing.T) {
	docs := genDocs(60)
	l := lint.MustNew(lint.Options{})
	for _, workers := range adversarialWorkerCounts {
		eng := &Engine{Linter: l, Workers: workers}
		jobs := make(chan Job)
		go func() {
			for i, d := range docs {
				jobs <- Job{Name: fmt.Sprintf("doc%d.html", i), Src: d}
			}
			close(jobs)
		}()
		results, cancel := eng.Stream(jobs)
		defer cancel()
		i := 0
		for r := range results {
			if r.Index != i {
				t.Fatalf("workers=%d: result %d has Index %d", workers, i, r.Index)
			}
			i++
		}
		if i != len(docs) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, i, len(docs))
		}
	}
}

// TestStreamCancel: abandoning a stream after cancel() must unwind the
// feeder, dispatcher and workers — the result channel closes and the
// jobs feed is drained rather than stranded.
func TestStreamCancel(t *testing.T) {
	docs := genDocs(8)
	eng := &Engine{Linter: lint.MustNew(lint.Options{}), Workers: 2}
	jobs := make(chan Job)
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		for i := 0; i < 500; i++ {
			jobs <- Job{Name: fmt.Sprintf("doc%d.html", i), Src: docs[i%len(docs)]}
		}
		close(jobs)
	}()
	results, cancel := eng.Stream(jobs)
	got := 0
	for range results {
		got++
		if got == 3 {
			cancel()
		}
	}
	select {
	case <-fed:
	case <-time.After(5 * time.Second):
		t.Fatal("jobs feeder stranded after cancel")
	}
	if got < 3 {
		t.Fatalf("got %d results before cancel", got)
	}
}

// TestErrorPropagation plants unreadable files mid-batch: their
// results carry the error, every other job still checks, and the pool
// drains to completion rather than wedging.
func TestErrorPropagation(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.html")
	if err := os.WriteFile(good, []byte("<html><head><title>t</title></head><body>hi</body></html>"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "missing.html")

	var jobs []Job
	for i := 0; i < 30; i++ {
		if i%3 == 1 {
			jobs = append(jobs, Job{Path: missing})
		} else {
			jobs = append(jobs, Job{Path: good})
		}
	}
	jobs = append(jobs, Job{}) // no source at all

	for _, workers := range adversarialWorkerCounts {
		eng := &Engine{Workers: workers}
		results := eng.RunAll(jobs)
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(results), len(jobs))
		}
		for i, r := range results {
			switch {
			case i == len(jobs)-1:
				if r.Err == nil || !strings.Contains(r.Err.Error(), "no source") {
					t.Fatalf("empty job: Err = %v", r.Err)
				}
			case i%3 == 1:
				if r.Err == nil {
					t.Fatalf("workers=%d: job %d should have failed", workers, i)
				}
			default:
				if r.Err != nil {
					t.Fatalf("workers=%d: job %d failed: %v", workers, i, r.Err)
				}
				if len(r.Messages) == 0 {
					t.Fatalf("workers=%d: job %d produced no messages", workers, i)
				}
			}
		}
	}
}

// panicChecker is a content plugin that panics, standing in for a
// poisoned document or a buggy plugin.
type panicChecker struct{}

func (panicChecker) Name() string       { return "panic" }
func (panicChecker) Elements() []string { return []string{"style"} }
func (panicChecker) Check(string, int, plugin.Report) {
	panic("boom")
}

// TestPanicDoesNotWedgePool turns a worker panic into Result.Err; the
// rest of the batch still delivers in order.
func TestPanicDoesNotWedgePool(t *testing.T) {
	l := lint.MustNew(lint.Options{Plugins: []plugin.ContentChecker{panicChecker{}}})
	eng := &Engine{Linter: l, Workers: 4}
	jobs := []Job{
		{Name: "a.html", Src: []byte("<html><head><title>a</title></head><body>x</body></html>")},
		{Name: "b.html", Src: []byte("<html><head><style>p{}</style><title>b</title></head><body>x</body></html>")},
		{Name: "c.html", Src: []byte("<html><head><title>c</title></head><body>x</body></html>")},
	}
	results := eng.RunAll(jobs)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Fatalf("panicking job: Err = %v", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("job %d: %v", i, results[i].Err)
		}
	}
}

// TestCancellation: returning false from emit stops dispatch — with
// a big batch, only a handful of jobs past the cancellation point may
// run, and Run still returns cleanly (no stranded feeder or workers).
func TestCancellation(t *testing.T) {
	var ran atomic.Int32
	jobs := make(chan int)
	go func() {
		for i := 0; i < 1000; i++ {
			jobs <- i
		}
		close(jobs)
	}()
	emitted := 0
	Ordered(2, 4, jobs, func(i int) int {
		ran.Add(1)
		return i
	}, func(v int) bool {
		emitted++
		return emitted < 3 // cancel after the third result
	})
	if emitted != 3 {
		t.Fatalf("emitted %d results after cancel", emitted)
	}
	// 3 emitted + at most window+workers-ish in flight; nowhere near
	// the full batch.
	if n := ran.Load(); n > 20 {
		t.Fatalf("%d jobs ran after cancellation", n)
	}
}

// TestEngineRunCancel: the same contract through Engine.Run with file
// jobs — an error can stop the batch without wedging the pool.
func TestEngineRunCancel(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.html")
	if err := os.WriteFile(good, []byte("<html><head><title>t</title></head><body>hi</body></html>"), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 200)
	for i := range jobs {
		jobs[i] = Job{Path: good}
	}
	jobs[5] = Job{Path: filepath.Join(dir, "missing.html")}

	eng := &Engine{Workers: 8}
	var firstErr error
	delivered := 0
	eng.Run(jobs, func(r Result) bool {
		if r.Err != nil {
			firstErr = r.Err
			return false
		}
		delivered++
		return true
	})
	if firstErr == nil {
		t.Fatal("error result never delivered")
	}
	if delivered != 5 {
		t.Fatalf("delivered %d results before the error, want 5", delivered)
	}
}

// TestOrderedWindowBound checks the generic core respects its window:
// while the first job blocks, no more than window jobs may be
// dispatched, so a slow early document bounds how far a fast batch
// runs ahead (and therefore how much memory buffered results pin).
func TestOrderedWindowBound(t *testing.T) {
	const window = 4
	release := make(chan struct{})
	started := make(chan int, 64)
	jobs := make(chan int)
	go func() {
		for i := 0; i < 20; i++ {
			jobs <- i
		}
		close(jobs)
	}()
	go func() {
		// With job 0 wedged, at most window+1 jobs can start: the
		// collector holds job 0's cell while the order queue holds the
		// next window cells, and then the dispatcher blocks.
		for i := 0; i < window+1; i++ {
			<-started
		}
		time.Sleep(50 * time.Millisecond) // let an unbounded dispatcher overrun
		select {
		case i := <-started:
			t.Errorf("job %d started beyond the window while job 0 was blocked", i)
		default:
		}
		close(release)
	}()
	var got []int
	Ordered(window, window, jobs, func(i int) int {
		started <- i
		if i == 0 {
			<-release
		}
		return i * i
	}, func(v int) bool {
		got = append(got, v)
		return true
	})
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if len(got) != 20 {
		t.Fatalf("emitted %d results, want 20", len(got))
	}
}
