// Package engine implements weblint's parallel batch-lint engine: a
// bounded worker pool that takes a stream of lint jobs (a path, a URL,
// or in-memory bytes), checks them on GOMAXPROCS workers through one
// shared Linter, and streams results back in deterministic input
// order.
//
// Every fleet surface in the repo lints a corpus, not a page: the
// multi-file command line, the -R site recursion, and the poacher
// robot. The engine is the shared substrate: it owns the scheduling,
// the surfaces own the jobs. Ordering is part of the contract — the
// output of a parallel run is byte-identical to the sequential run
// regardless of how the scheduler interleaves workers, so adding -j
// can never change what a build log or a diff-based test sees.
//
// # Concurrency model
//
// One Linter is shared by all workers; it is safe for concurrent use
// (each check borrows pooled per-check state, and the spec and warning
// set are read-only). Results are buffered per input slot: the
// dispatcher allocates a single-result cell per job and queues the
// cells in input order, workers fill cells as they finish, and the
// collector drains cells strictly in queue order. A window bounds how
// far computation may run ahead of the collector, so a slow early
// document cannot make a fast batch buffer unbounded results.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"weblint/internal/lint"
	"weblint/internal/warn"
)

// Job names one document for the engine. Exactly one of Src, Path and
// URL should be set; they are consulted in that order.
type Job struct {
	// Name labels the document in messages. When empty it defaults to
	// Path or URL.
	Name string
	// Path is a file to read from disk.
	Path string
	// URL is a page to retrieve over HTTP.
	URL string
	// Src is an in-memory document, checked zero-copy; it must not be
	// mutated until the job's Result has been delivered.
	Src []byte
}

// Result is the outcome of one job.
type Result struct {
	// Index is the job's position in the input stream, counting from
	// zero. Results are always delivered in increasing Index order.
	Index int
	// Name is the document name messages carry.
	Name string
	// Messages are the diagnostics, in source order.
	Messages []warn.Message
	// Suppressed are the IDs of emissions dropped because their
	// message was disabled, in emission order; RunTo replays them so
	// per-rule suppression stats survive the ordered-delivery hop.
	Suppressed []string
	// Err is set when the document could not be obtained (unreadable
	// file, failed fetch) or the check panicked. The engine itself
	// never stops on an errored job — every job runs and delivers —
	// but the consumer decides: Run's emit callback may cancel, and
	// RunTo cancels the batch on the first error it sees.
	Err error
}

// Engine is a reusable batch-lint configuration. The zero value lints
// with a default Linter on GOMAXPROCS workers; an Engine may be shared
// and its Run/Stream methods called concurrently.
type Engine struct {
	// Linter checks the documents; nil means a default Linter,
	// constructed once on first use.
	Linter *lint.Linter
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Window bounds how many results may be buffered ahead of the
	// collector; <= 0 means 4x the worker count.
	Window int

	defaultOnce   sync.Once
	defaultLinter *lint.Linter
}

// New returns an Engine checking through l (nil for a default Linter).
func New(l *lint.Linter) *Engine {
	return &Engine{Linter: l}
}

func (e *Engine) linter() *lint.Linter {
	if e.Linter != nil {
		return e.Linter
	}
	e.defaultOnce.Do(func() { e.defaultLinter = lint.MustNew(lint.Options{}) })
	return e.defaultLinter
}

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) window() int {
	if e.Window > 0 {
		return e.Window
	}
	return 4 * e.workers()
}

// Run lints every job and calls emit once per job, in input order,
// from the calling goroutine. Returning false from emit cancels the
// batch: no further jobs are dispatched, already-dispatched jobs
// finish and are discarded, and Run returns once the pool drains.
func (e *Engine) Run(jobs []Job, emit func(Result) bool) {
	OrderedSlice(e.workers(), e.window(), jobs, e.lintJob, func(_ int, r Result) bool { return emit(r) })
}

// RunAll lints every job and returns the results in input order; a
// convenience for batches small enough to hold in memory at once.
func (e *Engine) RunAll(jobs []Job) []Result {
	out := make([]Result, 0, len(jobs))
	e.Run(jobs, func(r Result) bool { out = append(out, r); return true })
	return out
}

// RunTo lints every job and streams every message into sink: each
// job's messages are written, in source order, as soon as the job's
// turn in the input order comes up, so a consumer sees findings the
// moment each document completes instead of after the whole batch.
// Within-batch lookahead is bounded by the engine window, so memory
// stays bounded however large the batch is.
//
// The first operational failure (unreadable file, failed fetch, check
// panic) cancels the batch — matching sequential CLI semantics, no
// further documents are read or fetched — and is returned. The sink
// returning false also cancels the batch; RunTo then returns nil.
func (e *Engine) RunTo(jobs []Job, sink warn.Sink) error {
	var firstErr error
	e.Run(jobs, func(r Result) bool {
		if r.Err != nil {
			// Job errors already name their document (path, URL, or
			// panic recovery text), so no extra wrapping.
			firstErr = r.Err
			return false
		}
		warn.ReplaySuppressed(sink, r.Suppressed)
		for _, m := range r.Messages {
			if !sink.Write(m) {
				return false
			}
		}
		return true
	})
	return firstErr
}

// Stream lints jobs as they arrive on the channel and delivers results
// on the returned channel in input order. The result channel is closed
// once the input channel has been closed and every job delivered.
//
// The caller must either drain the result channel or call cancel
// (idempotent, safe to defer): a consumer that simply stops reading
// would otherwise wedge the collector and leak the pool. After cancel,
// remaining input is drained unprocessed and the result channel is
// closed once in-flight jobs finish. The jobs channel must still be
// closed by the caller — cancel releases the workers, but a drain
// goroutine stays parked on jobs until it closes.
func (e *Engine) Stream(jobs <-chan Job) (results <-chan Result, cancel func()) {
	out := make(chan Result)
	quit := make(chan struct{})
	var once sync.Once
	cancel = func() { once.Do(func() { close(quit) }) }
	seq := make(chan indexed[Job])
	go func() {
		defer close(seq)
		i := 0
		for j := range jobs {
			select {
			case seq <- indexed[Job]{i, j}:
				i++
			case <-quit:
				// Unblock the caller's feeder before bowing out.
				for range jobs {
				}
				return
			}
		}
	}()
	go func() {
		defer close(out)
		Ordered(e.workers(), e.window(), seq,
			func(sj indexed[Job]) Result { return e.lintJob(sj.i, sj.r) },
			func(r Result) bool {
				select {
				case out <- r:
					return true
				case <-quit:
					return false
				}
			})
	}()
	return out, cancel
}

// lintJob checks one job, recovering panics into Result.Err so a
// poisoned document cannot wedge the pool.
func (e *Engine) lintJob(idx int, j Job) (res Result) {
	res.Index = idx
	res.Name = j.Name
	defer func() {
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("engine: check of %s panicked: %v", res.Name, p)
		}
	}()
	l := e.linter()
	// Check into a Recorder rather than through the slice APIs: it
	// collects the same messages (sorted below, matching CheckFile's
	// contract) and additionally captures suppressed-emission IDs for
	// per-rule stats.
	var rec warn.Recorder
	switch {
	case j.Src != nil:
		if res.Name == "" {
			res.Name = "-"
		}
		l.CheckBytesTo(res.Name, j.Src, &rec)
	case j.Path != "":
		if res.Name == "" {
			res.Name = j.Path
		}
		res.Err = l.CheckFileTo(j.Path, &rec)
	case j.URL != "":
		if res.Name == "" {
			res.Name = j.URL
		}
		res.Err = l.CheckURLTo(j.URL, &rec)
	default:
		res.Err = errors.New("engine: job has no source (Src, Path or URL)")
	}
	if res.Err == nil {
		warn.SortByLine(rec.Messages)
		res.Messages = rec.Messages
		res.Suppressed = rec.SuppressedIDs
	}
	return res
}

// Ordered is the fan-out/fan-in core: it runs fn over the jobs channel
// on `workers` goroutines and calls emit with every result, in input
// order, from the calling goroutine. Each job gets a one-slot result
// cell; cells enter a queue in dispatch order and the caller drains
// them in that order, so emission overlaps the computation of later
// jobs but never reorders. window bounds how many jobs may be past
// dispatch and not yet emitted.
//
// Returning false from emit cancels the run: dispatch stops (a job or
// two already racing past the window may still run), in-flight jobs
// finish and are discarded, and any remaining input is drained
// unprocessed so the feeding goroutine is never stranded. Ordered
// returns when the workers have exited.
func Ordered[J, R any](workers, window int, jobs <-chan J, fn func(J) R, emit func(R) bool) {
	if workers < 1 {
		workers = 1
	}
	if window < workers {
		window = workers
	}
	type task struct {
		j    J
		cell chan R
	}
	tasks := make(chan task)
	order := make(chan chan R, window)
	stop := make(chan struct{})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				t.cell <- fn(t.j)
			}
		}()
	}
	go func() {
	dispatch:
		for j := range jobs {
			// The unconditional check first: once stop is closed, at
			// most one more job (already past this line) dispatches,
			// even when the window also has room.
			select {
			case <-stop:
				break dispatch
			default:
			}
			cell := make(chan R, 1)
			select {
			case <-stop:
				break dispatch
			case order <- cell: // blocks when the window is full
			}
			tasks <- task{j, cell}
		}
		close(tasks)
		// Unblock the feeder: after a cancel there may be unread input.
		for range jobs {
		}
		wg.Wait()
		close(order)
	}()
	stopped := false
	for cell := range order {
		r := <-cell
		if !stopped && !emit(r) {
			stopped = true
			close(stop)
		}
	}
}

// indexed pairs a value with its input position.
type indexed[R any] struct {
	i int
	r R
}

// OrderedSlice is Ordered over a slice, passing each element's index
// through to fn and emit.
func OrderedSlice[J, R any](workers, window int, jobs []J, fn func(int, J) R, emit func(int, R) bool) {
	ch := make(chan int)
	go func() {
		for i := range jobs {
			ch <- i
		}
		close(ch)
	}()
	Ordered(workers, window, ch,
		func(i int) indexed[R] { return indexed[R]{i, fn(i, jobs[i])} },
		func(out indexed[R]) bool { return emit(out.i, out.r) })
}
