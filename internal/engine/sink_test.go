package engine

import (
	"path/filepath"
	"reflect"
	"testing"

	"weblint/internal/config"
	"weblint/internal/lint"
	"weblint/internal/warn"
)

// TestRunToStreamsInOrder: RunTo delivers every job's messages to the
// sink in input order, identical to concatenating the RunAll slices,
// for any worker count.
func TestRunToStreamsInOrder(t *testing.T) {
	docs := genDocs(24)
	jobs := make([]Job, len(docs))
	for i, d := range docs {
		jobs[i] = Job{Name: filepath.Join("docs", "d"+string(rune('a'+i%26))+".html"), Src: d}
	}

	seq := New(nil)
	seq.Workers = 1
	var want []warn.Message
	for _, r := range seq.RunAll(jobs) {
		want = append(want, r.Messages...)
	}
	if len(want) == 0 {
		t.Fatal("corpus produced no messages")
	}

	for _, workers := range adversarialWorkerCounts {
		e := New(nil)
		e.Workers = workers
		var c warn.Collector
		if err := e.RunTo(jobs, &c); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(c.Messages, want) {
			t.Errorf("workers=%d: streamed messages differ from sequential run", workers)
		}
	}
}

// TestRunToError: an unreadable document cancels the batch and the
// error comes back; messages from documents before it were delivered.
func TestRunToError(t *testing.T) {
	docs := genDocs(4)
	jobs := []Job{
		{Name: "ok.html", Src: docs[0]},
		{Path: "/nonexistent/batch.html"},
		{Name: "never.html", Src: docs[1]},
	}
	e := New(nil)
	e.Workers = 2
	var c warn.Collector
	err := e.RunTo(jobs, &c)
	if err == nil {
		t.Fatal("RunTo swallowed the job error")
	}
	if len(c.Messages) == 0 || c.Messages[0].File != "ok.html" {
		t.Errorf("messages before the failing job were not delivered: %+v", c.Messages)
	}
	for _, m := range c.Messages {
		if m.File == "never.html" {
			t.Error("messages after the failing job were delivered")
		}
	}
}

// TestRunToSinkCancel: the sink returning false stops the batch with a
// nil error.
func TestRunToSinkCancel(t *testing.T) {
	docs := genDocs(8)
	jobs := make([]Job, len(docs))
	for i, d := range docs {
		jobs[i] = Job{Name: "d.html", Src: d}
	}
	e := New(nil)
	e.Workers = 2
	n := 0
	err := e.RunTo(jobs, warn.SinkFunc(func(warn.Message) bool {
		n++
		return n < 3
	}))
	if err != nil {
		t.Fatalf("sink cancellation surfaced as an error: %v", err)
	}
	if n != 3 {
		t.Errorf("sink saw %d messages after cancelling at 3", n)
	}
}

// TestRunToForwardsSuppressions: per-rule suppression stats survive
// the engine's ordered-delivery hop — a summary sink downstream of
// RunTo sees the same counts for any worker count.
func TestRunToForwardsSuppressions(t *testing.T) {
	s := config.NewSettings()
	if err := s.Set.Disable("img-alt"); err != nil {
		t.Fatal(err)
	}
	l := lint.MustNew(lint.Options{Settings: s})
	doc := []byte(`<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><IMG SRC="a.gif"><IMG SRC="b.gif"></BODY></HTML>`)
	jobs := []Job{
		{Name: "a.html", Src: doc},
		{Name: "b.html", Src: doc},
		{Name: "c.html", Src: doc},
	}
	for _, workers := range []int{1, 4} {
		eng := &Engine{Linter: l, Workers: workers}
		var sum warn.Summary
		if err := eng.RunTo(jobs, sum.Sink(nil)); err != nil {
			t.Fatal(err)
		}
		if got := sum.Suppressed["img-alt"]; got != 6 {
			t.Errorf("workers=%d: img-alt suppressed %d times, want 6 (all: %v)", workers, got, sum.Suppressed)
		}
	}
}
