package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestLimiterIntrospection(t *testing.T) {
	l := NewLimiter(3, 200*time.Millisecond)
	if l.Slots() != 3 {
		t.Fatalf("Slots() = %d, want 3", l.Slots())
	}
	if l.Waiting() != 0 {
		t.Fatalf("Waiting() = %d on an idle limiter", l.Waiting())
	}

	// Fill every slot, then queue one Acquire and observe it waiting.
	var releases []func()
	for i := 0; i < 3; i++ {
		rel, err := l.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		releases = append(releases, rel)
	}
	done := make(chan error, 1)
	go func() {
		rel, err := l.Acquire(context.Background())
		if err == nil {
			rel()
		}
		done <- err
	}()
	for i := 0; l.Waiting() == 0; i++ {
		if i > 1000 {
			t.Fatal("queued Acquire never observed waiting")
		}
		time.Sleep(time.Millisecond)
	}
	releases[0]()
	if err := <-done; err != nil {
		t.Fatalf("queued Acquire failed after a slot freed: %v", err)
	}
	for _, rel := range releases[1:] {
		rel()
	}
}

// TestRecoverPreservesExplicitStatus: a handler that committed its own
// status code before panicking keeps it — the recovery must not stack
// a 500 onto an already-started response.
func TestRecoverPreservesExplicitStatus(t *testing.T) {
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		panic("after explicit status")
	}), func(any) {})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d, want the handler's own 418", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "internal error") {
		t.Error("500 body appended to a committed response")
	}
}

// TestRecoverPassesFlushThrough: streaming handlers behind the
// recovery wrapper still reach the underlying Flusher.
func TestRecoverPassesFlushThrough(t *testing.T) {
	flushed := false
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "chunk")
		w.(http.Flusher).Flush()
		flushed = true
	}), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if !flushed {
		t.Fatal("handler never reached Flush")
	}
	if !rec.Flushed {
		t.Fatal("Flush did not pass through to the underlying writer")
	}
}

// TestListenAndServeDrains: the address-based entry point serves real
// connections and drains on signal like Serve does.
func TestListenAndServeDrains(t *testing.T) {
	sig := make(chan os.Signal, 1)
	health := &Health{}
	mux := http.NewServeMux()
	mux.Handle("/healthz", health)
	s := &Server{
		HTTP:         &http.Server{Addr: "127.0.0.1:0", Handler: mux},
		Health:       health,
		DrainTimeout: time.Second,
		Signals:      sig,
	}
	// Reserve a free port, release it, and have ListenAndServe bind it
	// by address — the tiny rebind race is acceptable in a test.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.HTTP.Addr = ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe() }()

	url := "http://" + s.HTTP.Addr + "/healthz"
	var ok bool
	for i := 0; i < 200; i++ {
		resp, err := http.Get(url)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.TrimSpace(string(body)) == "ok" {
				ok = true
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !ok {
		t.Fatal("server never answered the health probe")
	}

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ListenAndServe did not return after SIGTERM")
	}
}
