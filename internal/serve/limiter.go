// Package serve is the gateway's resilient serving layer: admission
// control with backpressure, health/drain signalling, panic-recovery
// middleware, and a graceful HTTP server that finishes in-flight
// requests on SIGTERM. It rides the same bounded-window discipline as
// internal/engine — a fixed number of lint slots, a deadline-bounded
// wait queue, and load shed with 429 + Retry-After once the queue
// cannot clear in time — so the gateway keeps answering fast under
// saturation instead of collapsing into an unbounded queue.
package serve

import (
	"context"
	"errors"
	"strconv"
	"sync/atomic"
	"time"
)

// ErrSaturated reports that admission timed out: every lint slot was
// busy for the whole admission wait. The caller should shed the
// request with 429 + Retry-After.
var ErrSaturated = errors.New("serve: all lint slots busy; request not admitted")

// Limiter is a bounded lint-concurrency semaphore with a
// deadline-bounded wait queue. Concurrent Acquires beyond the slot
// count wait — briefly, so a short burst rides out a transient spike —
// and are rejected with ErrSaturated once MaxWait passes, converting
// overload into fast, explicit backpressure instead of latency
// collapse.
type Limiter struct {
	slots   chan struct{}
	maxWait time.Duration
	waiting atomic.Int64
}

// NewLimiter returns a Limiter admitting up to slots concurrent
// holders, each Acquire waiting at most maxWait for a free slot
// (0 means reject immediately when saturated).
func NewLimiter(slots int, maxWait time.Duration) *Limiter {
	if slots < 1 {
		slots = 1
	}
	return &Limiter{slots: make(chan struct{}, slots), maxWait: maxWait}
}

// Slots returns the configured concurrency.
func (l *Limiter) Slots() int { return cap(l.slots) }

// InFlight returns how many slots are currently held.
func (l *Limiter) InFlight() int { return len(l.slots) }

// Waiting returns how many Acquires are queued for a slot right now.
func (l *Limiter) Waiting() int { return int(l.waiting.Load()) }

// Acquire claims a slot, waiting up to the limiter's MaxWait (and no
// longer than the context allows). It returns a release function that
// must be called exactly once, or an error: ErrSaturated when the
// wait deadline passed, or the context error when the caller gave up
// first.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no queueing.
	select {
	case l.slots <- struct{}{}:
		return l.releaseFunc(), nil
	default:
	}
	if l.maxWait <= 0 {
		return nil, ErrSaturated
	}
	l.waiting.Add(1)
	defer l.waiting.Add(-1)
	t := time.NewTimer(l.maxWait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return l.releaseFunc(), nil
	case <-t.C:
		return nil, ErrSaturated
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *Limiter) releaseFunc() func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			<-l.slots
		}
	}
}

// RetryAfter suggests a Retry-After value, in whole seconds (at least
// 1), for a request shed with ErrSaturated: the admission wait already
// spent is the best local signal for how long the queue needs.
func (l *Limiter) RetryAfter() string {
	secs := int64((l.maxWait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
