package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToSlots(t *testing.T) {
	l := NewLimiter(2, 0)
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := l.InFlight(); got != 2 {
		t.Errorf("InFlight = %d", got)
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third acquire = %v, want ErrSaturated", err)
	}
	r1()
	r2()
	if got := l.InFlight(); got != 0 {
		t.Errorf("InFlight after release = %d", got)
	}
}

func TestLimiterWaitsForSlot(t *testing.T) {
	l := NewLimiter(1, 5*time.Second)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		r, err := l.Acquire(context.Background())
		if err == nil {
			r()
		}
		done <- err
	}()
	// The waiter must be queued, not rejected.
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("waiter finished early: %v", err)
	default:
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("waiter after release: %v", err)
	}
}

func TestLimiterWaitDeadline(t *testing.T) {
	l := NewLimiter(1, 30*time.Millisecond)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = l.Acquire(context.Background())
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("rejected after %v, want ~30ms", elapsed)
	}
}

func TestLimiterContextCancel(t *testing.T) {
	l := NewLimiter(1, 10*time.Second)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", err)
	}
}

func TestLimiterReleaseIdempotent(t *testing.T) {
	l := NewLimiter(1, 0)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // second call must not free a slot it does not hold
	if _, err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("double release leaked a slot: %v", err)
	}
}

// TestLimiterUnderContention hammers the limiter and asserts the slot
// invariant holds: never more than Slots holders at once, and every
// admitted request completes. Run with -race in CI.
func TestLimiterUnderContention(t *testing.T) {
	const slots, goroutines = 4, 64
	l := NewLimiter(slots, 50*time.Millisecond)
	var inFlight, peak, admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background())
			if err != nil {
				rejected.Add(1)
				return
			}
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			admitted.Add(1)
			release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > slots {
		t.Errorf("peak concurrency %d exceeded %d slots", p, slots)
	}
	if admitted.Load()+rejected.Load() != goroutines {
		t.Errorf("admitted %d + rejected %d != %d", admitted.Load(), rejected.Load(), goroutines)
	}
	if admitted.Load() == 0 {
		t.Error("nothing was admitted")
	}
}

func TestRetryAfterAtLeastOneSecond(t *testing.T) {
	if got := NewLimiter(1, 0).RetryAfter(); got != "1" {
		t.Errorf("RetryAfter = %q", got)
	}
	if got := NewLimiter(1, 2500*time.Millisecond).RetryAfter(); got != "3" {
		t.Errorf("RetryAfter = %q", got)
	}
}
