package serve

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is a minimal Prometheus client: counters, gauges and
// histograms rendered in the text exposition format (version 0.0.4).
// The repository deliberately has no third-party dependencies, and the
// slice of the Prometheus data model a lint gateway needs — monotonic
// counters, point-in-time gauges, cumulative-bucket histograms, one
// optional label — is small enough to own outright. Everything here is
// lock-free on the hot path (atomics) except labelled counters, which
// take a mutex only to discover a new label value.

// Registry holds a fixed set of metrics and serves them over HTTP in
// Prometheus text format. Register everything at startup; collection
// is concurrent-safe, registration is not.
type Registry struct {
	metrics []metric
}

// metric is anything that can render itself in exposition format.
type metric interface {
	expose(w *strings.Builder)
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return &Registry{} }

// ServeHTTP renders every registered metric. The content type carries
// the exposition format version, which scrapers use to pick a parser.
func (reg *Registry) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	for _, m := range reg.metrics {
		m.expose(&b)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// Counter is a monotonically increasing counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter registers and returns a counter. Prometheus convention:
// counter names end in _total.
func (reg *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	reg.metrics = append(reg.metrics, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(w *strings.Builder) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// CounterVec is a counter partitioned by one label. Label values are
// discovered at first use and reported forever after (zero-resetting a
// counter mid-flight breaks rate() queries).
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	vals              map[string]*atomic.Int64
}

// NewCounterVec registers and returns a counter partitioned by the
// given label name.
func (reg *Registry) NewCounterVec(name, help, label string) *CounterVec {
	c := &CounterVec{name: name, help: help, label: label, vals: make(map[string]*atomic.Int64)}
	reg.metrics = append(reg.metrics, c)
	return c
}

// Inc adds one to the counter for the given label value.
func (c *CounterVec) Inc(labelValue string) {
	c.mu.Lock()
	v := c.vals[labelValue]
	if v == nil {
		v = new(atomic.Int64)
		c.vals[labelValue] = v
	}
	c.mu.Unlock()
	v.Add(1)
}

// Value returns the current count for the given label value.
func (c *CounterVec) Value(labelValue string) int64 {
	c.mu.Lock()
	v := c.vals[labelValue]
	c.mu.Unlock()
	if v == nil {
		return 0
	}
	return v.Load()
}

func (c *CounterVec) expose(w *strings.Builder) {
	c.mu.Lock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	snap := make(map[string]int64, len(keys))
	for _, k := range keys {
		snap[k] = c.vals[k].Load()
	}
	c.mu.Unlock()
	sort.Strings(keys)
	header(w, c.name, c.help, "counter")
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", c.name, c.label, escapeLabel(k), snap[k])
	}
}

// GaugeFunc is a gauge whose value is read at scrape time — the right
// shape for instantaneous state the process already tracks (queue
// depth, slots in flight, cache size) without double bookkeeping.
type GaugeFunc struct {
	name, help string
	fn         func() int64
}

// NewGaugeFunc registers a gauge that calls fn at every scrape. fn
// must be safe to call concurrently.
func (reg *Registry) NewGaugeFunc(name, help string, fn func() int64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	reg.metrics = append(reg.metrics, g)
	return g
}

func (g *GaugeFunc) expose(w *strings.Builder) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.fn())
}

// CounterVecFunc reports a labelled counter family whose values are
// snapshotted from fn at scrape time — used to expose tallies a
// subsystem already maintains (per-rule fire counts) without routing
// every increment through the registry. fn must return monotonically
// non-decreasing values for this to behave as a Prometheus counter.
type CounterVecFunc struct {
	name, help, label string
	fn                func() map[string]int64
}

// NewCounterVecFunc registers a scrape-time labelled counter family.
func (reg *Registry) NewCounterVecFunc(name, help, label string, fn func() map[string]int64) *CounterVecFunc {
	c := &CounterVecFunc{name: name, help: help, label: label, fn: fn}
	reg.metrics = append(reg.metrics, c)
	return c
}

func (c *CounterVecFunc) expose(w *strings.Builder) {
	snap := c.fn()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	header(w, c.name, c.help, "counter")
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", c.name, c.label, escapeLabel(k), snap[k])
	}
}

// Histogram is a fixed-bucket histogram of float64 observations
// (seconds, by Prometheus convention). Buckets are cumulative in the
// exposition, per the format; internally each bucket counts only its
// own range so Observe is one atomic increment.
type Histogram struct {
	name, help string
	bounds     []float64 // upper bounds, ascending; +Inf implicit
	buckets    []atomic.Int64
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram registers a histogram with the given ascending upper
// bounds (in seconds). The +Inf bucket is implicit.
func (reg *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{name: name, help: help, bounds: bounds}
	h.buckets = make([]atomic.Int64, len(bounds)+1)
	reg.metrics = append(reg.metrics, h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

func (h *Histogram) expose(w *strings.Builder) {
	header(w, h.name, h.help, "histogram")
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.name, formatBound(b), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, math.Float64frombits(h.sumBits.Load()))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}

func header(w *strings.Builder, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format, which
// defines exactly three escapes inside quoted label values: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
