package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// startServer serves mux on an ephemeral port with an injectable
// signal channel and returns the base URL, the signal channel, and a
// channel carrying Serve's return value.
func startServer(t *testing.T, mux http.Handler, health *Health, drain time.Duration) (string, chan os.Signal, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	srv := &Server{
		HTTP:         &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		Health:       health,
		DrainTimeout: drain,
		Signals:      sig,
		Log:          log.New(io.Discard, "", 0),
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), sig, done
}

// TestDrainCompletesInFlight is the drain-semantics contract: SIGTERM
// with a request in flight completes that request, /healthz flips to
// draining, new connections are refused, and Serve returns within the
// drain deadline having dropped nothing.
func TestDrainCompletesInFlight(t *testing.T) {
	health := &Health{}
	inHandler := make(chan struct{})
	finish := make(chan struct{})
	mux := http.NewServeMux()
	mux.Handle("/healthz", health)
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-finish
		io.WriteString(w, "completed")
	})

	base, sig, done := startServer(t, mux, health, 5*time.Second)

	// A long request in flight...
	resc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			errc <- err
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resc <- string(b)
	}()
	<-inHandler

	// ...then the drain signal lands.
	sig <- syscall.SIGTERM

	// The probe reports draining while the request still runs.
	waitFor(t, time.Second, func() bool {
		return health.Draining()
	})
	select {
	case err := <-done:
		t.Fatalf("Serve returned (%v) with a request still in flight", err)
	default:
	}

	// New connections are refused once Shutdown closed the listener.
	waitFor(t, 2*time.Second, func() bool {
		_, err := http.Get(base + "/healthz")
		return err != nil
	})

	// The in-flight request completes, not drops.
	close(finish)
	select {
	case body := <-resc:
		if body != "completed" {
			t.Fatalf("in-flight response = %q", body)
		}
	case err := <-errc:
		t.Fatalf("in-flight request dropped: %v", err)
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight request never finished")
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clean drain returned %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return after the drain")
	}
}

// TestDrainDeadline: a request that outlives the drain budget is cut
// off, Serve returns the deadline error within the budget, and the
// process is free to exit — drain never hangs forever.
func TestDrainDeadline(t *testing.T) {
	health := &Health{}
	inHandler := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})

	base, sig, done := startServer(t, mux, health, 100*time.Millisecond)
	go func() {
		resp, err := http.Get(base + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inHandler
	start := time.Now()
	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("over-deadline drain returned %v", err)
		}
		if time.Since(start) > 3*time.Second {
			t.Fatalf("drain took %v against a 100ms budget", time.Since(start))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve hung past its drain deadline")
	}
}

// TestServeIdleDrainIsImmediate: with nothing in flight, a signal
// drains and returns promptly.
func TestServeIdleDrainIsImmediate(t *testing.T) {
	health := &Health{}
	mux := http.NewServeMux()
	mux.Handle("/healthz", health)
	base, sig, done := startServer(t, mux, health, 10*time.Second)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("idle drain returned %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("idle drain did not return promptly")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time: " + fmt.Sprint(timeout))
}
