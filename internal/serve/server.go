package serve

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Server runs an http.Server with graceful drain semantics: on
// SIGTERM/SIGINT (or any signal delivered on Signals) it flips Health
// to draining, stops accepting new connections, finishes in-flight
// requests, and returns once the server has shut down — within
// DrainTimeout, after which remaining connections are closed hard.
type Server struct {
	// HTTP is the configured server. Callers set the handler and the
	// Read/Write/ReadHeader/Idle timeouts; Server owns its lifecycle.
	HTTP *http.Server
	// Health, when non-nil, is flipped to draining the moment a
	// shutdown signal arrives — before Shutdown begins — so probes see
	// the drain for its whole duration.
	Health *Health
	// DrainTimeout bounds the drain (default 30s).
	DrainTimeout time.Duration
	// Signals delivers shutdown triggers. Nil installs the default
	// SIGTERM/SIGINT handler; tests inject their own channel.
	Signals <-chan os.Signal
	// Log receives lifecycle messages; nil means the standard logger.
	Log *log.Logger
}

func (s *Server) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (s *Server) drainTimeout() time.Duration {
	if s.DrainTimeout > 0 {
		return s.DrainTimeout
	}
	return 30 * time.Second
}

// ListenAndServe listens on s.HTTP.Addr and serves until a shutdown
// signal drains the server or the listener fails.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.HTTP.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until a shutdown signal arrives, then drains:
// new connections are refused immediately, in-flight requests get
// DrainTimeout to finish, and Serve returns nil on a clean drain or
// the shutdown error (context.DeadlineExceeded) when the drain
// deadline passed with requests still running.
func (s *Server) Serve(ln net.Listener) error {
	sig := s.Signals
	if sig == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGTERM, os.Interrupt)
		defer signal.Stop(ch)
		sig = ch
	}

	errc := make(chan error, 1)
	go func() { errc <- s.HTTP.Serve(ln) }()

	select {
	case err := <-errc:
		// Listener failure before any shutdown was requested.
		return err
	case v := <-sig:
		s.logf("serve: received %v, draining (timeout %s)", v, s.drainTimeout())
		if s.Health != nil {
			s.Health.SetDraining()
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.drainTimeout())
		defer cancel()
		err := s.HTTP.Shutdown(ctx)
		// Shutdown closed the listener; collect Serve's exit.
		if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			s.logf("serve: %v", serr)
		}
		if err != nil {
			s.logf("serve: drain deadline passed with requests in flight: %v", err)
			return err
		}
		s.logf("serve: drained cleanly")
		return nil
	}
}
