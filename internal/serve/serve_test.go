package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHealthReadyThenDraining(t *testing.T) {
	h := &Health{}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("ready probe: %d %q", rec.Code, rec.Body.String())
	}

	h.SetDraining()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("draining probe: %d %q", rec.Code, rec.Body.String())
	}
}

func TestRecoverConvertsPanicTo500(t *testing.T) {
	var panics []any
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			panic("check crashed")
		}
		io.WriteString(w, "fine")
	}), func(v any) { panics = append(panics, v) })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic request status = %d", rec.Code)
	}
	if len(panics) != 1 || panics[0] != "check crashed" {
		t.Fatalf("panics observed: %v", panics)
	}

	// The wrapped handler still serves the next request.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ok", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "fine" {
		t.Fatalf("follow-up request: %d %q", rec.Code, rec.Body.String())
	}
}

func TestRecoverAfterPartialWrite(t *testing.T) {
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "partial")
		panic("late crash")
	}), func(any) {})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	// Headers already went out as 200; the recovery must not try to
	// stack a 500 on top (httptest would tolerate it, a real conn
	// would log spam).
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "partial") {
		t.Fatalf("partial response mangled: %d %q", rec.Code, rec.Body.String())
	}
}

func TestRecoverPropagatesAbortHandler(t *testing.T) {
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), func(any) { t.Error("ErrAbortHandler must not be observed as a crash") })
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("recover = %v, want ErrAbortHandler", r)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}
