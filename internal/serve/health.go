package serve

import (
	"io"
	"net/http"
	"sync/atomic"
)

// Health is the gateway's readiness signal: an http.Handler answering
// 200 "ok" while serving and 503 "draining" once a drain has begun, so
// load balancers and orchestration probes stop routing new traffic to
// a process that is finishing its in-flight requests.
type Health struct {
	draining atomic.Bool
}

// SetDraining flips the health signal to draining. It is one-way: a
// draining process never goes ready again.
func (h *Health) SetDraining() { h.draining.Store(true) }

// Draining reports whether the drain has begun.
func (h *Health) Draining() bool { return h.draining.Load() }

// ServeHTTP answers the probe.
func (h *Health) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	if h.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}
