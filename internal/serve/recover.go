package serve

import (
	"log"
	"net/http"
	"runtime/debug"
)

// Recover wraps next with panic containment: a panicking handler (for
// example, a lint plugin crashing on one request's document) is
// converted into a 500 for that request while the process keeps
// serving everyone else. onPanic, when non-nil, observes the panic
// value (tests count them; production logs them). When nil, the panic
// and stack go to the standard logger.
//
// If the handler had already written response headers before
// panicking, the 500 cannot be sent; the recovery still contains the
// panic and the connection is simply dropped mid-response.
func Recover(next http.Handler, onPanic func(v any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rw := &recoverWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					// The server's own way to abort a response; let it
					// keep its meaning.
					panic(v)
				}
				if onPanic != nil {
					onPanic(v)
				} else {
					log.Printf("serve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				}
				if !rw.wrote {
					http.Error(w, "internal error: the check crashed on this document", http.StatusInternalServerError)
				}
			}
		}()
		next.ServeHTTP(rw, r)
	})
}

// recoverWriter tracks whether the response has been started, so the
// recovery path knows whether a 500 can still be delivered.
type recoverWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *recoverWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *recoverWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush passes through so streaming responses keep working behind the
// recovery wrapper.
func (w *recoverWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
