package serve

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func scrape(reg *Registry) string {
	rec := httptest.NewRecorder()
	reg.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec.Body.String()
}

func TestCounterExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("weblint_requests_total", "Total requests.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if c.Value() != 3 {
		t.Fatalf("Value = %d, want 3", c.Value())
	}
	out := scrape(reg)
	for _, want := range []string{
		"# HELP weblint_requests_total Total requests.",
		"# TYPE weblint_requests_total counter",
		"weblint_requests_total 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounterVec("weblint_responses_total", "Responses by code.", "code")
	c.Inc("200")
	c.Inc("200")
	c.Inc("429")
	if c.Value("200") != 2 || c.Value("429") != 1 || c.Value("504") != 0 {
		t.Fatal("Value snapshots wrong")
	}
	out := scrape(reg)
	// Sorted label order, one TYPE header for the family.
	i200 := strings.Index(out, `weblint_responses_total{code="200"} 2`)
	i429 := strings.Index(out, `weblint_responses_total{code="429"} 1`)
	if i200 < 0 || i429 < 0 || i429 < i200 {
		t.Fatalf("labelled series wrong or unsorted:\n%s", out)
	}
	if strings.Count(out, "# TYPE weblint_responses_total") != 1 {
		t.Fatalf("family TYPE header not unique:\n%s", out)
	}
}

func TestGaugeAndCounterVecFunc(t *testing.T) {
	reg := NewRegistry()
	depth := int64(0)
	reg.NewGaugeFunc("weblint_queue_depth", "Admission queue depth.", func() int64 { return depth })
	reg.NewCounterVecFunc("weblint_findings_total", "Findings by rule.", "rule",
		func() map[string]int64 { return map[string]int64{"img-alt": 4, "heading-order": 1} })

	depth = 7
	out := scrape(reg)
	if !strings.Contains(out, "weblint_queue_depth 7\n") {
		t.Errorf("gauge did not read through fn:\n%s", out)
	}
	if !strings.Contains(out, `weblint_findings_total{rule="heading-order"} 1`) ||
		!strings.Contains(out, `weblint_findings_total{rule="img-alt"} 4`) {
		t.Errorf("scrape-time counter family missing series:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE weblint_queue_depth gauge\n") {
		t.Errorf("gauge TYPE header missing:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("weblint_lint_seconds", "Lint duration.", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // le 0.01
	h.Observe(0.05)  // le 0.1
	h.Observe(0.05)  // le 0.1
	h.Observe(0.5)   // le 1
	h.Observe(5)     // +Inf only
	out := scrape(reg)
	for _, want := range []string{
		`weblint_lint_seconds_bucket{le="0.01"} 1`,
		`weblint_lint_seconds_bucket{le="0.1"} 3`,
		`weblint_lint_seconds_bucket{le="1"} 4`,
		`weblint_lint_seconds_bucket{le="+Inf"} 5`,
		`weblint_lint_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("histogram missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "weblint_lint_seconds_sum 5.605") {
		t.Errorf("histogram sum wrong:\n%s", out)
	}
	// An observation exactly on a bound lands in that bound's bucket
	// (le is inclusive).
	h2 := reg.NewHistogram("weblint_exact_seconds", "x", []float64{0.1})
	h2.Observe(0.1)
	if !strings.Contains(scrape(reg), `weblint_exact_seconds_bucket{le="0.1"} 1`) {
		t.Error("observation on the bound fell into the wrong bucket")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("weblint_t_seconds", "x", []float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	out := scrape(reg)
	if !strings.Contains(out, "weblint_t_seconds_sum 2000\n") {
		t.Errorf("concurrent sum drifted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounterVec("weblint_odd_total", "x", "v")
	c.Inc("a\"b\\c\nd")
	out := scrape(reg)
	if !strings.Contains(out, `weblint_odd_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
}

func TestContentTypeCarriesFormatVersion(t *testing.T) {
	rec := httptest.NewRecorder()
	NewRegistry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 exposition marker", ct)
	}
}
