// Package resultcache is the gateway's content-addressed result
// cache: at fleet scale most traffic is repeat documents — CI re-runs,
// crawler revisits, unchanged pages — and the cheapest lint is the one
// that never runs. Entries are keyed on (SHA-256 of the document
// bytes, configuration fingerprint) and hold the *finding stream* —
// the emitted messages plus the suppressed-emission IDs, exactly what
// a live check delivers through warn.Sink — not rendered bytes, so one
// cached entry replays through any renderer: HTML report, JSON Lines,
// SARIF, baseline recording, fix application and baseline= diffs all
// ride the same entry.
//
// The cache is a bounded, sharded LRU: shards are picked by key byte,
// each shard is an independent mutex + hash map + intrusive recency
// list, and the byte budget is enforced per shard so eviction never
// takes a global lock. The companion Group (flight.go) collapses
// concurrent identical submissions into one computation.
package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"weblint/internal/warn"
)

// Key identifies one cache entry: a SHA-256 over the configuration
// fingerprint and the exact document bytes. Two documents, or two
// configurations, that could produce different findings never share a
// Key.
type Key [sha256.Size]byte

// KeyOf derives the cache key for checking doc under the configuration
// identified by configFP (see lint.Linter.ConfigFingerprint). The
// fingerprint is length-delimited by a NUL — it is hex, so it cannot
// contain one — making (fp, doc) unambiguous.
func KeyOf(configFP string, doc []byte) Key {
	h := sha256.New()
	h.Write([]byte(configFP))
	h.Write([]byte{0})
	h.Write(doc)
	var k Key
	h.Sum(k[:0])
	return k
}

// Hex returns the key in lower-case hex — the gateway uses it as the
// strong ETag validator, since the key is a content address: equal
// keys imply byte-identical responses.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// Result is one cached finding stream: the messages in emission order
// and the suppressed-emission IDs, i.e. everything a warn.Sink chain
// observes from a live check. A Result is immutable once constructed
// and safe to replay concurrently; consumers that need to reorder
// (the HTML report sorts by line) must copy first.
type Result struct {
	msgs       []warn.Message
	suppressed []string
	size       int
}

// NewResult builds a Result from a completed check's stream. The
// caller hands over ownership of both slices.
func NewResult(msgs []warn.Message, suppressed []string) *Result {
	r := &Result{msgs: msgs, suppressed: suppressed}
	r.size = r.computeSize()
	return r
}

// Replay delivers the stream into sink exactly like a live check:
// suppression observations first (mirroring warn.Recorder.Replay),
// then each message in emission order. It reports whether the sink
// accepted the whole stream.
func (r *Result) Replay(sink warn.Sink) bool {
	warn.ReplaySuppressed(sink, r.suppressed)
	for _, m := range r.msgs {
		if !sink.Write(m) {
			return false
		}
	}
	return true
}

// Len returns the number of cached messages.
func (r *Result) Len() int { return len(r.msgs) }

// Size is the entry's approximate memory footprint in bytes, used for
// the cache's byte budget.
func (r *Result) Size() int { return r.size }

// computeSize approximates the heap bytes the entry pins: slice
// headers and struct overhead plus every owned string. Precision does
// not matter — the budget is a bound, not an accounting system — but
// the estimate must scale with the real footprint so a pathological
// million-finding document cannot hide behind a flat per-entry cost.
func (r *Result) computeSize() int {
	const (
		entryOverhead = 160 // entry + Result + map slot, roughly
		msgOverhead   = 96  // warn.Message struct
		editOverhead  = 40  // warn.Edit struct
	)
	n := entryOverhead
	for i := range r.msgs {
		m := &r.msgs[i]
		n += msgOverhead + len(m.ID) + len(m.File) + len(m.Text)
		if m.Fix != nil {
			n += 48 + len(m.Fix.Label)
			for _, e := range m.Fix.Edits {
				n += editOverhead + len(e.Text)
			}
		}
	}
	for _, id := range r.suppressed {
		n += 16 + len(id)
	}
	return n
}

// shardCount is the number of independent LRU shards. 16 keeps lock
// contention negligible at gateway concurrencies (tens of slots) while
// costing only a few hundred bytes of fixed overhead.
const shardCount = 16

// Cache is the bounded, sharded LRU. Construct with New; the zero
// value is not useful.
type Cache struct {
	shards   [shardCount]shard
	perShard int
}

// shard is one independent LRU: a mutex, the key index, and an
// intrusive doubly-linked recency list (head = most recent).
type shard struct {
	mu         sync.Mutex
	entries    map[Key]*entry
	head, tail *entry
	bytes      int
}

type entry struct {
	key        Key
	res        *Result
	prev, next *entry
}

// DefaultMaxBytes is the cache budget New applies when given a
// non-positive size: 64 MiB, a few thousand typical documents' finding
// streams.
const DefaultMaxBytes = 64 << 20

// New returns a Cache bounded to approximately maxBytes of cached
// results (non-positive means DefaultMaxBytes). The bound is enforced
// per shard, so a single shard can hold at most maxBytes/16; with
// SHA-256 keys the shard spread is uniform and the distinction is
// invisible in practice.
func New(maxBytes int) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	perShard := maxBytes / shardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*entry)
	}
	return c
}

func (c *Cache) shard(k Key) *shard { return &c.shards[k[0]&(shardCount-1)] }

// Get returns the cached result for k, refreshing its recency.
func (c *Cache) Get(k Key) (*Result, bool) {
	s := c.shard(k)
	s.mu.Lock()
	e := s.entries[k]
	if e == nil {
		s.mu.Unlock()
		return nil, false
	}
	s.moveToFront(e)
	res := e.res
	s.mu.Unlock()
	return res, true
}

// Put stores res under k, evicting least-recently-used entries until
// the shard fits its budget. A result larger than the whole shard
// budget is not stored at all: caching it would evict everything else
// for an entry that cannot stay resident anyway.
func (c *Cache) Put(k Key, res *Result) {
	if res.Size() > c.perShard {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	if e := s.entries[k]; e != nil {
		// Same key means same content and config: the result is
		// equivalent. Keep the incumbent, refresh recency.
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	e := &entry{key: k, res: res}
	s.entries[k] = e
	s.pushFront(e)
	s.bytes += res.Size()
	for s.bytes > c.perShard && s.tail != nil && s.tail != e {
		s.evict(s.tail)
	}
	s.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the approximate bytes held across all shards.
func (c *Cache) Bytes() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// locked list plumbing ------------------------------------------------

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *shard) evict(e *entry) {
	s.unlink(e)
	delete(s.entries, e.key)
	s.bytes -= e.res.Size()
}
