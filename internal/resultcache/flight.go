package resultcache

import (
	"context"
	"errors"
	"sync"
)

// Group collapses concurrent duplicate work: when N submissions with
// the same Key arrive together, one caller (the leader) runs the
// computation — paying one admission slot, one lint — and the rest
// wait for its result. This is what makes a thundering herd of
// identical CI submissions cost one slot in the gateway's limiter
// instead of N.
//
// Cancellation is per-caller: a follower whose own context dies stops
// waiting and returns its context's error without disturbing the
// flight. If the *leader* is cancelled (its client hung up), its
// context error is not inherited by followers — the flight is retired
// and a waiting follower loops around to become the new leader, so one
// impatient client cannot poison everyone behind it. Non-cancellation
// leader errors (saturation, lint budget, faults) are shared: every
// waiter fails the same way, which is exactly what would have happened
// had they each run alone, minus the duplicate work.
type Group struct {
	mu      sync.Mutex
	flights map[Key]*flight
}

type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// NewGroup returns an empty singleflight group.
func NewGroup() *Group {
	return &Group{flights: make(map[Key]*flight)}
}

// Do returns the result of fn for key, collapsing concurrent calls:
// at most one fn runs per key at a time. shared reports whether this
// caller received a leader's outcome rather than running fn itself —
// the gateway surfaces it as X-Weblint-Cache: coalesced.
//
// fn must honour ctx; Do does not interrupt a running fn.
func (g *Group) Do(ctx context.Context, key Key, fn func() (*Result, error)) (res *Result, shared bool, err error) {
	for {
		g.mu.Lock()
		if f := g.flights[key]; f != nil {
			g.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, true, ctx.Err()
			}
			if f.err != nil && errors.Is(f.err, context.Canceled) {
				// The leader's client hung up; its cancellation is not
				// ours. Loop: either a new flight exists to join, or
				// this caller becomes the leader.
				continue
			}
			return f.res, true, f.err
		}
		f := &flight{done: make(chan struct{})}
		g.flights[key] = f
		g.mu.Unlock()

		f.res, f.err = fn()

		g.mu.Lock()
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
		return f.res, false, f.err
	}
}
