package resultcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"weblint/internal/warn"
)

func TestDoCollapsesConcurrentCallers(t *testing.T) {
	g := NewGroup()
	k := KeyOf("fp", []byte("doc"))
	res := NewResult([]warn.Message{msg("rule", "finding")}, nil)

	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	const callers = 64
	var shared atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, wasShared, err := g.Do(context.Background(), k, func() (*Result, error) {
				calls.Add(1)
				once.Do(func() { close(started) })
				<-gate
				return res, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if r != res {
				t.Error("caller got a different result")
			}
			if wasShared {
				shared.Add(1)
			}
		}()
	}
	<-started
	// Give followers a beat to pile onto the flight before releasing.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if c := calls.Load(); c < 1 || c > 3 {
		// Exactly-one needs every follower to arrive before the leader
		// finishes; the sleep makes that overwhelmingly likely, but a
		// slow-start goroutine may legitimately start a second flight.
		t.Fatalf("fn ran %d times for %d concurrent callers", c, callers)
	}
	if s := shared.Load(); s < callers-3 {
		t.Fatalf("only %d of %d callers were coalesced", s, callers)
	}
}

func TestDoSharesLeaderError(t *testing.T) {
	g := NewGroup()
	k := KeyOf("fp", []byte("doc"))
	boom := errors.New("lint budget exceeded")

	gate := make(chan struct{})
	started := make(chan struct{})
	go g.Do(context.Background(), k, func() (*Result, error) {
		close(started)
		<-gate
		return nil, boom
	})
	<-started

	errc := make(chan error, 1)
	go func() {
		_, shared, err := g.Do(context.Background(), k, func() (*Result, error) {
			t.Error("follower ran fn despite an active flight")
			return nil, nil
		})
		if !shared {
			t.Error("follower not marked shared")
		}
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(gate)
	if err := <-errc; !errors.Is(err, boom) {
		t.Fatalf("follower got %v, want the leader's error", err)
	}
}

func TestDoFollowerOwnCancellation(t *testing.T) {
	g := NewGroup()
	k := KeyOf("fp", []byte("doc"))
	gate := make(chan struct{})
	started := make(chan struct{})
	defer close(gate)
	go g.Do(context.Background(), k, func() (*Result, error) {
		close(started)
		<-gate
		return nil, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := g.Do(ctx, k, func() (*Result, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower got %v, want context.Canceled", err)
	}
}

// TestDoLeaderCancelPromotesFollower: a leader whose own client hung
// up must not poison the queue behind it — a waiting follower loops
// around, becomes the new leader, and completes the work.
func TestDoLeaderCancelPromotesFollower(t *testing.T) {
	g := NewGroup()
	k := KeyOf("fp", []byte("doc"))
	res := NewResult(nil, nil)

	gate := make(chan struct{})
	started := make(chan struct{})
	go g.Do(context.Background(), k, func() (*Result, error) {
		close(started)
		<-gate
		return nil, context.Canceled
	})
	<-started

	done := make(chan struct{})
	go func() {
		defer close(done)
		r, _, err := g.Do(context.Background(), k, func() (*Result, error) {
			return res, nil
		})
		if err != nil {
			t.Errorf("promoted follower: %v", err)
		}
		if r != res {
			t.Error("promoted follower got the wrong result")
		}
	}()
	time.Sleep(5 * time.Millisecond)
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never promoted after leader cancellation")
	}
}

func TestDoDistinctKeysDoNotCollapse(t *testing.T) {
	g := NewGroup()
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := KeyOf("fp", []byte{byte(i)})
			g.Do(context.Background(), k, func() (*Result, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if calls.Load() != 4 {
		t.Fatalf("distinct keys ran fn %d times, want 4", calls.Load())
	}
}
