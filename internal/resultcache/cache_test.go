package resultcache

import (
	"fmt"
	"sync"
	"testing"

	"weblint/internal/warn"
)

func msg(id, text string) warn.Message {
	return warn.Message{ID: id, Category: warn.Warning, File: "t.html", Line: 1, Col: 1, Text: text}
}

func TestKeyOfSeparatesConfigAndDocument(t *testing.T) {
	doc := []byte("<html></html>")
	k1 := KeyOf("fp-a", doc)
	k2 := KeyOf("fp-b", doc)
	if k1 == k2 {
		t.Fatal("different config fingerprints produced the same key")
	}
	if KeyOf("fp-a", doc) != k1 {
		t.Fatal("KeyOf is not deterministic")
	}
	if KeyOf("fp-a", []byte("<html> </html>")) == k1 {
		t.Fatal("different documents produced the same key")
	}
	// The NUL delimiter means no (fp, doc) boundary ambiguity: moving a
	// byte across the boundary changes the key.
	if KeyOf("fp-ab", []byte("c")) == KeyOf("fp-a", []byte("bc")) {
		t.Fatal("fingerprint/document boundary is ambiguous")
	}
	if len(k1.Hex()) != 64 {
		t.Fatalf("Hex() length = %d, want 64", len(k1.Hex()))
	}
}

func TestReplayMatchesRecorderContract(t *testing.T) {
	res := NewResult(
		[]warn.Message{msg("heading-order", "a"), msg("img-alt", "b")},
		[]string{"upper-case", "upper-case"},
	)
	var rec warn.Recorder
	if !res.Replay(&rec) {
		t.Fatal("Replay reported a refused stream")
	}
	if got := len(rec.Messages); got != 2 {
		t.Fatalf("replayed %d messages, want 2", got)
	}
	if rec.Messages[0].Text != "a" || rec.Messages[1].Text != "b" {
		t.Fatal("replay did not preserve emission order")
	}
	if got := len(rec.SuppressedIDs); got != 2 {
		t.Fatalf("replayed %d suppressions, want 2", got)
	}
	// A sink that refuses mid-stream stops the replay.
	n := 0
	stop := warn.SinkFunc(func(warn.Message) bool { n++; return false })
	if res.Replay(stop) {
		t.Fatal("Replay ignored a refusing sink")
	}
	if n != 1 {
		t.Fatalf("refusing sink saw %d messages, want 1", n)
	}
}

func TestGetPutAndRecency(t *testing.T) {
	c := New(1 << 20)
	k := KeyOf("fp", []byte("doc"))
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	res := NewResult([]warn.Message{msg("x", "y")}, nil)
	c.Put(k, res)
	got, ok := c.Get(k)
	if !ok || got != res {
		t.Fatal("Put/Get round trip failed")
	}
	if c.Len() != 1 || c.Bytes() != res.Size() {
		t.Fatalf("Len/Bytes = %d/%d, want 1/%d", c.Len(), c.Bytes(), res.Size())
	}
	// Re-putting the same key keeps the incumbent.
	c.Put(k, NewResult(nil, nil))
	if got, _ := c.Get(k); got != res {
		t.Fatal("duplicate Put replaced the incumbent entry")
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate Put changed Len to %d", c.Len())
	}
}

// forceShard derives keys that all land in shard 0, so the test
// exercises one shard's LRU discipline deterministically.
func forceShard(t *testing.T, n int) []Key {
	t.Helper()
	keys := make([]Key, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := KeyOf("fp", []byte(fmt.Sprintf("doc-%d", i)))
		if k[0]&(shardCount-1) == 0 {
			keys = append(keys, k)
		}
		if i > 100000 {
			t.Fatal("could not derive enough shard-0 keys")
		}
	}
	return keys
}

func TestLRUEvictionRespectsRecency(t *testing.T) {
	keys := forceShard(t, 3)
	res := NewResult([]warn.Message{msg("rule", "some finding text")}, nil)
	// Budget two entries per shard (total = 16 shards × 2 × size).
	c := New(2 * res.Size() * shardCount)

	c.Put(keys[0], res)
	c.Put(keys[1], res)
	// Touch keys[0] so keys[1] is now least recent.
	c.Get(keys[0])
	c.Put(keys[2], res)

	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently-touched entry was evicted")
	}
	if _, ok := c.Get(keys[2]); !ok {
		t.Fatal("newest entry was evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", c.Len())
	}
}

func TestOversizeResultIsNotStored(t *testing.T) {
	c := New(1024)
	big := make([]warn.Message, 0, 64)
	for i := 0; i < 64; i++ {
		big = append(big, msg("rule", "a long finding message that pads the entry well past the shard budget"))
	}
	k := KeyOf("fp", []byte("huge"))
	c.Put(k, NewResult(big, nil))
	if _, ok := c.Get(k); ok {
		t.Fatal("oversize result was cached")
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversize Put leaked accounting: Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
}

func TestBytesAccountingAfterEviction(t *testing.T) {
	keys := forceShard(t, 8)
	res := NewResult([]warn.Message{msg("rule", "finding")}, nil)
	c := New(3 * res.Size() * shardCount)
	for _, k := range keys {
		c.Put(k, res)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want the 3 the budget allows", c.Len())
	}
	if want := 3 * res.Size(); c.Bytes() != want {
		t.Fatalf("Bytes = %d after evictions, want %d", c.Bytes(), want)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := New(1 << 16) // small: forces constant eviction under load
	res := NewResult([]warn.Message{msg("rule", "finding")}, []string{"supp"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := KeyOf("fp", []byte(fmt.Sprintf("doc-%d", (seed*31+i)%97)))
				if r, ok := c.Get(k); ok {
					var rec warn.Recorder
					r.Replay(&rec)
				} else {
					c.Put(k, res)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > 1<<16 {
		t.Fatalf("cache exceeded its budget: %d bytes", c.Bytes())
	}
}
