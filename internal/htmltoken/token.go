// Package htmltoken implements the lenient HTML tokenizer underneath
// weblint: the paper's "ad-hoc parser, which uses various heuristics to
// keep things together as it goes along".
//
// The tokenizer never fails. Every malformation it recovers from is
// recorded as a flag on the token it produced (odd number of quotes,
// unterminated comment, attributes on a closing tag, ...), so the
// checker can turn recoveries into diagnostics while continuing to
// check the rest of the document. All tokens carry 1-based line and
// column positions.
//
// # Allocation and ownership
//
// The tokenizer is built for a zero-allocation streaming hot path:
// token text is sliced out of the source (never copied), tag and
// attribute names carry interned lower-case forms, raw-text scanning
// is case-insensitive in place, and a Tokenizer can be Reset and
// reused so its line-index and attribute buffers warm up once. The one
// contract this imposes on streaming callers: a Token's Attrs slice is
// only valid until the next call to Next. Tokenize returns fully
// independent tokens.
package htmltoken

import "strings"

// Type identifies the kind of a token.
type Type int

const (
	// Text is document text between tags (including raw SCRIPT and
	// STYLE content, which is marked with Token.RawText).
	Text Type = iota
	// StartTag is an opening tag such as <A HREF="x">.
	StartTag
	// EndTag is a closing tag such as </A>.
	EndTag
	// Comment is an SGML comment <!-- ... -->.
	Comment
	// Doctype is a <!DOCTYPE ...> declaration.
	Doctype
	// Declaration is any other <! ...> markup declaration.
	Declaration
	// ProcInst is a <? ... > processing instruction.
	ProcInst
)

// String returns a short name for the token type.
func (t Type) String() string {
	switch t {
	case Text:
		return "text"
	case StartTag:
		return "start-tag"
	case EndTag:
		return "end-tag"
	case Comment:
		return "comment"
	case Doctype:
		return "doctype"
	case Declaration:
		return "declaration"
	case ProcInst:
		return "proc-inst"
	}
	return "unknown"
}

// Attr is one attribute of a start (or, erroneously, end) tag.
type Attr struct {
	// Name is the attribute name as written in the source.
	Name string
	// Lower is the ASCII lower-case form of Name, interned for known
	// HTML attribute names so checkers can use it as a map key
	// without re-folding (and re-allocating) per attribute.
	Lower string
	// Value is the attribute value with surrounding quotes removed
	// and entities left undecoded.
	Value string
	// HasValue distinguishes NAME=VALUE attributes from boolean
	// flag attributes such as ISMAP.
	HasValue bool
	// Quote is the quoting character used: '"', '\'', or 0 for an
	// unquoted value.
	Quote byte
	// Line and Col give the 1-based position of the attribute name.
	Line, Col int
	// Offset is the byte offset of the attribute name in the source
	// document; machine-applicable fixes are expressed as byte-span
	// edits anchored by it.
	Offset int
	// ValOffset is the byte offset of the attribute value (past any
	// opening quote). It is meaningful only when HasValue is true.
	ValOffset int
	// UnterminatedQuote reports that the value's opening quote was
	// never closed within the tag.
	UnterminatedQuote bool
}

// Token is one lexical item of the document.
type Token struct {
	// Type is the token kind.
	Type Type
	// Name is the tag name as written (original case) for start and
	// end tags, and "DOCTYPE" for doctype tokens.
	Name string
	// Lower is the ASCII lower-case form of Name for start and end
	// tags, interned for known HTML element names. It is the form
	// spec lookups key on.
	Lower string
	// Text is the content for Text and Comment tokens, and the full
	// declaration body for Doctype/Declaration tokens.
	Text string
	// Raw is the exact source consumed for this token.
	Raw string
	// Attrs are the parsed attributes of a tag.
	Attrs []Attr
	// Line and Col give the 1-based position of the token start.
	Line, Col int
	// Offset is the byte offset of the token's first byte in the
	// source document; Offset + len(Raw) is one past its last byte.
	// Checkers use it to attach byte-span fixes to diagnostics.
	Offset int
	// EndLine is the line on which the token's last byte falls.
	EndLine int

	// RawText marks Text tokens produced in raw-text mode (SCRIPT,
	// STYLE and friends).
	RawText bool
	// OddQuotes reports that the tag contained an unbalanced quote
	// and was recovered by ending it at the first '>'.
	OddQuotes bool
	// Unterminated reports that end of input arrived before the
	// token's closing delimiter.
	Unterminated bool
	// SlashClose reports an XHTML-style trailing slash (<BR/>).
	SlashClose bool
	// EmptyTag reports a bare "<>".
	EmptyTag bool
}

// TagText reconstructs the tag as it appeared in the source, for use in
// messages like the paper's
//
//	odd number of quotes in element <A HREF="a.html>
func (t Token) TagText() string {
	if t.Type == StartTag || t.Type == EndTag {
		return t.Raw
	}
	return t.Raw
}

// Attr returns the first attribute with the given name,
// case-insensitively, or nil.
func (t Token) Attr(name string) *Attr {
	for i := range t.Attrs {
		if strings.EqualFold(t.Attrs[i].Name, name) {
			return &t.Attrs[i]
		}
	}
	return nil
}

// HasAttr reports whether the tag carries the named attribute,
// case-insensitively.
func (t Token) HasAttr(name string) bool { return t.Attr(name) != nil }

// DefaultRawTextElements are the elements whose content is not parsed
// as markup. The tokenizer switches to raw-text mode automatically
// after emitting a start tag for one of these.
var DefaultRawTextElements = map[string]bool{
	"script":    true,
	"style":     true,
	"xmp":       true,
	"listing":   true,
	"plaintext": true,
}
