//go:build tokendiff

package htmltoken

import (
	"os"
	"path/filepath"
	"testing"

	"weblint/internal/corpus"
)

// The differential oracle: the table-driven tokenizer and the
// preserved per-byte ReferenceTokenizer must produce byte-identical
// token streams on every input. These tests run only under the
// tokendiff build tag (go test -tags tokendiff ./internal/htmltoken/).

// assertStreamsEqual compares the full token streams of both
// implementations over src.
func assertStreamsEqual(t *testing.T, src string) {
	t.Helper()
	got := Tokenize(src)
	want := ReferenceTokenize(src)
	if len(got) != len(want) {
		t.Fatalf("token counts differ: new=%d reference=%d (src %q...)",
			len(got), len(want), clip(src, 80))
	}
	for i := range want {
		assertTokensEqual(t, i, got[i], want[i])
	}
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// TestDifferentialSuite runs the oracle over every lint suite sample.
func TestDifferentialSuite(t *testing.T) {
	dir := filepath.Join("..", "lint", "testdata", "suite")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("suite testdata: %v", err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".html" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		t.Run(e.Name(), func(t *testing.T) { assertStreamsEqual(t, string(data)) })
		n++
	}
	if n < 25 {
		t.Fatalf("only %d suite samples", n)
	}
}

// TestDifferentialCorpus runs the oracle over synthetic documents,
// clean and with every error class injected, plus the raw-text-heavy
// generator.
func TestDifferentialCorpus(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		assertStreamsEqual(t, corpus.GenerateSized(seed, 64<<10, corpus.ErrorRates{}))
		assertStreamsEqual(t, corpus.GenerateSized(seed+100, 64<<10, corpus.Uniform(0.2)))
	}
	assertStreamsEqual(t, corpus.GenerateRawText(64))
}

// TestDifferentialEdgeCases runs the oracle over hand-picked
// tokenizer corners: quote recovery, raw-text EOF, empty raw bodies,
// false close-tag prefixes, declarations, stray markup.
func TestDifferentialEdgeCases(t *testing.T) {
	cases := []string{
		"",
		"x",
		"<",
		"<>",
		"< p>",
		"a < b > c",
		"<p>text</p>",
		"<a href=\"x\">y</a>",
		"<a href='x>y</a <b>",
		"<a href=\"" + string(make([]byte, 400)) + "\">",
		"<a b='1' c=\"2\" d=3 e f = 4>",
		"<a =x b==c>",
		"<a b=\"unterminated",
		"<a b='line\nline\nline\nline\nline'>ok</a>",
		"<!DOCTYPE html>",
		"<!doctype\vhtml>",
		"<! other decl >",
		"<!-- comment -->",
		"<!-- unterminated",
		"<!-- -- -->",
		"<?php echo ?>",
		"<?unterminated",
		"<br/>",
		"<br />",
		"<img src=x =/>",
		"<script>var x = 1;</script>",
		"<script></script>x",
		"<SCRIPT></SCRIPT>",
		"<script>x</scr",
		"<script>unclosed at EOF",
		"<SCRIPT TYPE=\"a\">var x=1;",
		"<script></scriptfoo>rest",
		"<style>p { color: red }</style>",
		"<xmp><p>not markup</p></xmp>",
		"<plaintext>everything raw",
		"<aé>8bit name</a>",
		"\x00<p>\x00</p>\x00",
		"<p attr=\">\" next>",
		"<p attr='>'>after</p>",
		"<p a='>\n>\n>\n>\n>'>",
	}
	for _, src := range cases {
		assertStreamsEqual(t, src)
	}
}

// FuzzDifferential fuzzes the oracle itself.
func FuzzDifferential(f *testing.F) {
	addSuiteSeeds(f)
	f.Add("<script></script><script>x</scr")
	f.Add("<a href='x>y</a <b><script>...</scr")
	f.Fuzz(func(t *testing.T, src string) {
		assertStreamsEqual(t, src)
	})
}
