package htmltoken

import "weblint/internal/ascii"

// Tag and attribute name interning.
//
// Real documents of the weblint era write markup in upper case (<BODY
// BGCOLOR=...>), so the tokenizer would otherwise allocate a fresh
// lower-cased string for every tag and attribute it hands to the
// checker. internLower resolves any case variant of a known HTML name
// to one canonical lower-case string without allocating; unknown names
// fall back to ascii.ToLower (which itself is allocation-free for
// already-lower input). The table is purely a cache: correctness never
// depends on a name being present in it.

// maxInternLen is the longest name the stack-buffer lookup handles;
// the longest interned name ("onmousemove") is 11 bytes.
const maxInternLen = 16

// internNames lists the element names of every HTML version weblint
// knows (2.0, 3.2, 4.0, Netscape and Microsoft extensions) and the
// attribute names that appear on them.
var internNames = []string{
	// Elements.
	"a", "abbr", "acronym", "address", "applet", "area", "b", "base",
	"basefont", "bdo", "bgsound", "big", "blink", "blockquote", "body",
	"br", "button", "caption", "center", "cite", "code", "col",
	"colgroup", "comment", "dd", "del", "dfn", "dir", "div", "dl",
	"dt", "em", "embed", "fieldset", "font", "form", "frame",
	"frameset", "h1", "h2", "h3", "h4", "h5", "h6", "head", "hr",
	"html", "i", "iframe", "ilayer", "img", "input", "ins", "isindex",
	"kbd", "keygen", "label", "layer", "legend", "li", "link",
	"listing", "map", "marquee", "menu", "meta", "multicol", "nextid",
	"nobr", "noembed", "noframes", "nolayer", "noscript", "object",
	"ol", "optgroup", "option", "p", "param", "plaintext", "pre", "q",
	"s", "samp", "script", "select", "server", "small", "spacer",
	"span", "strike", "strong", "style", "sub", "sup", "table",
	"tbody", "td", "textarea", "tfoot", "th", "thead", "title", "tr",
	"tt", "u", "ul", "var", "wbr", "xmp",
	// Attributes.
	"abbr", "accept", "accesskey", "action", "align", "alink", "alt",
	"archive", "autostart", "axis", "background", "balance",
	"behavior", "bgcolor", "bgproperties", "border", "bordercolor",
	"bordercolordark", "bordercolorlight", "bottommargin", "cellpadding",
	"cellspacing", "challenge", "char", "charoff", "charset", "checked",
	"cite", "class", "classid", "clear", "code", "codebase", "codetype",
	"color", "cols", "colspan", "compact", "content", "coords", "data",
	"datetime", "declare", "defer", "dir", "direction", "disabled",
	"dynsrc", "enctype", "face", "for", "frame", "frameborder",
	"gutter", "headers", "height", "hidden", "href", "hreflang",
	"hspace", "http-equiv", "id", "ismap", "label", "lang", "language",
	"left", "leftmargin", "link", "longdesc", "loop", "lowsrc",
	"marginheight", "marginwidth", "maxlength", "media", "method",
	"methods", "multiple", "n", "name", "nohref", "noresize",
	"noshade", "nowrap", "object", "onblur", "onchange", "onclick",
	"ondblclick", "onfocus", "onkeydown", "onkeypress", "onkeyup",
	"onload", "onmousedown", "onmousemove", "onmouseout",
	"onmouseover", "onmouseup", "onreset", "onselect", "onsubmit",
	"onunload", "palette", "pluginspage", "profile", "prompt",
	"readonly", "rel", "rev", "rightmargin", "rows", "rowspan",
	"rules", "scheme", "scope", "scrollamount", "scrolldelay",
	"scrolling", "selected", "shape", "size", "span", "src",
	"standby", "start", "style", "summary", "tabindex", "target",
	"text", "title", "top", "topmargin", "truespeed", "type", "urn",
	"usemap", "valign", "value", "valuetype", "version", "visibility",
	"vlink", "volume", "vspace", "width", "z-index",
}

// internTable maps a lower-case name to its canonical string.
var internTable = func() map[string]string {
	m := make(map[string]string, len(internNames))
	for _, n := range internNames {
		m[n] = n
	}
	return m
}()

// internLower returns the ASCII lower-case form of s, resolving known
// HTML names to a canonical interned string. It allocates only for
// unknown mixed- or upper-case names.
func internLower(s string) string {
	if ascii.IsLower(s) {
		return s
	}
	if len(s) <= maxInternLen {
		var buf [maxInternLen]byte
		if canon, ok := internTable[string(ascii.AppendLower(buf[:0], s))]; ok {
			return canon
		}
	}
	return ascii.ToLower(s)
}
