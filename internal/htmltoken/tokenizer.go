package htmltoken

import (
	"sort"
	"strings"
)

// Quote-recovery limits: when a quoted attribute value runs past this
// many newlines or bytes, the quote is assumed to be a mistake and the
// tag is re-terminated at the first '>' seen (the paper's "odd number
// of quotes" diagnosis).
const (
	quoteMaxNewlines = 3
	quoteMaxBytes    = 300
)

// Tokenizer scans an HTML document into tokens. Construct with New.
type Tokenizer struct {
	src string
	pos int

	// lineStarts[i] is the byte offset of the start of line i+1,
	// used to translate offsets to positions in O(log n).
	lineStarts []int

	// rawUntil, when non-empty, is the lower-case element name whose
	// closing tag ends raw-text mode.
	rawUntil string

	// RawTextElements configures which elements switch the tokenizer
	// into raw-text mode. Defaults to DefaultRawTextElements.
	RawTextElements map[string]bool
}

// New returns a Tokenizer over src.
func New(src string) *Tokenizer {
	t := &Tokenizer{src: src, RawTextElements: DefaultRawTextElements}
	t.lineStarts = append(t.lineStarts, 0)
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			t.lineStarts = append(t.lineStarts, i+1)
		}
	}
	return t
}

// Tokenize scans the whole of src and returns all tokens.
func Tokenize(src string) []Token {
	tz := New(src)
	var out []Token
	for {
		tok, ok := tz.Next()
		if !ok {
			return out
		}
		out = append(out, tok)
	}
}

// position translates a byte offset into a 1-based line and column.
func (t *Tokenizer) position(off int) (line, col int) {
	i := sort.Search(len(t.lineStarts), func(i int) bool { return t.lineStarts[i] > off }) - 1
	return i + 1, off - t.lineStarts[i] + 1
}

// lineAt returns just the 1-based line of a byte offset.
func (t *Tokenizer) lineAt(off int) int {
	l, _ := t.position(off)
	return l
}

// Next returns the next token. The boolean result is false at end of
// input.
func (t *Tokenizer) Next() (Token, bool) {
	if t.pos >= len(t.src) {
		return Token{}, false
	}
	if t.rawUntil != "" {
		return t.nextRaw(), true
	}
	if t.src[t.pos] == '<' && t.startsMarkup(t.pos) {
		return t.nextMarkup(), true
	}
	return t.nextText(), true
}

// startsMarkup reports whether the '<' at off begins markup rather
// than document text.
func (t *Tokenizer) startsMarkup(off int) bool {
	if off+1 >= len(t.src) {
		return false
	}
	c := t.src[off+1]
	return isNameStart(c) || c == '/' || c == '!' || c == '?' || c == '>'
}

// nextText consumes document text up to the next markup-starting '<'.
func (t *Tokenizer) nextText() Token {
	start := t.pos
	i := start
	for i < len(t.src) {
		if t.src[i] == '<' && i > start && t.startsMarkup(i) {
			break
		}
		i++
	}
	t.pos = i
	line, col := t.position(start)
	return Token{
		Type:    Text,
		Text:    t.src[start:i],
		Raw:     t.src[start:i],
		Line:    line,
		Col:     col,
		EndLine: t.lineAt(max(start, i-1)),
	}
}

// nextRaw consumes raw text until the closing tag of the raw element.
func (t *Tokenizer) nextRaw() Token {
	start := t.pos
	needle := "</" + t.rawUntil
	lower := strings.ToLower(t.src[start:])
	idx := strings.Index(lower, needle)
	end := len(t.src)
	if idx >= 0 {
		end = start + idx
	}
	t.pos = end
	t.rawUntil = ""
	line, col := t.position(start)
	return Token{
		Type:    Text,
		Text:    t.src[start:end],
		Raw:     t.src[start:end],
		Line:    line,
		Col:     col,
		EndLine: t.lineAt(max(start, end-1)),
		RawText: true,
	}
}

// nextMarkup consumes one tag, comment, or declaration.
func (t *Tokenizer) nextMarkup() Token {
	start := t.pos
	line, col := t.position(start)
	next := t.src[start+1]

	switch {
	case next == '>': // "<>"
		t.pos = start + 2
		return Token{
			Type: StartTag, Raw: t.src[start:t.pos],
			Line: line, Col: col, EndLine: line, EmptyTag: true,
		}
	case next == '!':
		if strings.HasPrefix(t.src[start:], "<!--") {
			return t.nextComment(start, line, col)
		}
		return t.nextDeclaration(start, line, col)
	case next == '?':
		return t.nextProcInst(start, line, col)
	case next == '/':
		return t.nextTag(start, line, col, true)
	default:
		return t.nextTag(start, line, col, false)
	}
}

// nextComment consumes an SGML comment.
func (t *Tokenizer) nextComment(start, line, col int) Token {
	bodyStart := start + 4 // past "<!--"
	idx := strings.Index(t.src[bodyStart:], "-->")
	tok := Token{Type: Comment, Line: line, Col: col}
	if idx < 0 {
		tok.Text = t.src[bodyStart:]
		tok.Raw = t.src[start:]
		tok.Unterminated = true
		t.pos = len(t.src)
	} else {
		end := bodyStart + idx + 3
		tok.Text = t.src[bodyStart : bodyStart+idx]
		tok.Raw = t.src[start:end]
		t.pos = end
	}
	tok.EndLine = t.lineAt(max(start, t.pos-1))
	return tok
}

// nextDeclaration consumes <! ...> declarations, classifying DOCTYPE.
func (t *Tokenizer) nextDeclaration(start, line, col int) Token {
	end, odd, unterminated := t.scanToGT(start + 2)
	body := t.src[start+2 : end]
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}
	tok := Token{
		Type: Declaration, Text: body, Raw: t.src[start:t.pos],
		Line: line, Col: col, EndLine: t.lineAt(max(start, t.pos-1)),
		OddQuotes: odd, Unterminated: unterminated,
	}
	fields := strings.Fields(body)
	if len(fields) > 0 && strings.EqualFold(fields[0], "doctype") {
		tok.Type = Doctype
		tok.Name = "DOCTYPE"
	}
	return tok
}

// nextProcInst consumes a <? ... > processing instruction.
func (t *Tokenizer) nextProcInst(start, line, col int) Token {
	end, _, unterminated := t.scanToGT(start + 2)
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}
	return Token{
		Type: ProcInst, Text: t.src[start+2 : end], Raw: t.src[start:t.pos],
		Line: line, Col: col, EndLine: t.lineAt(max(start, t.pos-1)),
		Unterminated: unterminated,
	}
}

// nextTag consumes a start or end tag, parsing its attributes.
func (t *Tokenizer) nextTag(start, line, col int, closing bool) Token {
	nameStart := start + 1
	if closing {
		nameStart++
	}
	nameEnd := nameStart
	for nameEnd < len(t.src) && isNameChar(t.src[nameEnd]) {
		nameEnd++
	}
	name := t.src[nameStart:nameEnd]

	end, odd, unterminated := t.scanToGT(nameEnd)
	body := t.src[nameEnd:end]
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}

	tok := Token{
		Type: StartTag, Name: name,
		Raw:  t.src[start:t.pos],
		Line: line, Col: col, EndLine: t.lineAt(max(start, t.pos-1)),
		OddQuotes: odd, Unterminated: unterminated,
	}
	if closing {
		tok.Type = EndTag
	}

	// XHTML-style trailing slash: strip it before attribute parsing
	// so it doesn't read as a stray attribute.
	trimmed := strings.TrimRight(body, " \t\r\n")
	if strings.HasSuffix(trimmed, "/") && !strings.HasSuffix(trimmed, "=/") {
		tok.SlashClose = true
		body = strings.TrimSuffix(trimmed, "/")
	}

	tok.Attrs = t.parseAttrs(body, nameEnd)

	if tok.Type == StartTag && !unterminated && t.RawTextElements[strings.ToLower(name)] {
		t.rawUntil = strings.ToLower(name)
	}
	return tok
}

// scanToGT scans from off for the '>' terminating a tag, honouring
// quoted attribute values, with heuristic recovery for unbalanced
// quotes. It returns the offset of the terminating '>' (or len(src)),
// whether odd quotes were detected, and whether the tag was
// unterminated at end of input.
func (t *Tokenizer) scanToGT(off int) (end int, oddQuotes, unterminated bool) {
	var quote byte
	firstGT := -1
	quoteStart := 0
	quoteNewlines := 0

	recover := func() (int, bool, bool) {
		// The open quote is assumed to be a mistake: re-terminate
		// at the first '>' seen anywhere, or fail at EOF.
		if firstGT >= 0 {
			return firstGT, true, false
		}
		for j := off; j < len(t.src); j++ {
			if t.src[j] == '>' {
				return j, true, false
			}
		}
		return len(t.src), true, true
	}

	for i := off; i < len(t.src); i++ {
		c := t.src[i]
		if quote != 0 {
			switch {
			case c == quote:
				quote = 0
			case c == '>':
				if firstGT < 0 {
					firstGT = i
				}
				if i-quoteStart > quoteMaxBytes {
					return recover()
				}
			case c == '\n':
				quoteNewlines++
				if quoteNewlines > quoteMaxNewlines {
					return recover()
				}
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
			quoteStart = i
			quoteNewlines = 0
		case '>':
			return i, false, false
		}
	}
	if quote != 0 {
		return recover()
	}
	return len(t.src), false, true
}

// parseAttrs parses the attribute section of a tag. base is the byte
// offset of the section within the source, used for positions.
func (t *Tokenizer) parseAttrs(body string, base int) []Attr {
	var attrs []Attr
	i := 0
	for i < len(body) {
		for i < len(body) && isSpace(body[i]) {
			i++
		}
		if i >= len(body) {
			break
		}
		nameStart := i
		for i < len(body) && !isSpace(body[i]) && body[i] != '=' {
			i++
		}
		name := body[nameStart:i]
		if name == "" { // stray '=' with no name
			i++
			continue
		}
		line, col := t.position(base + nameStart)
		attr := Attr{Name: name, Line: line, Col: col}

		j := i
		for j < len(body) && isSpace(body[j]) {
			j++
		}
		if j < len(body) && body[j] == '=' {
			j++
			for j < len(body) && isSpace(body[j]) {
				j++
			}
			attr.HasValue = true
			if j < len(body) && (body[j] == '"' || body[j] == '\'') {
				attr.Quote = body[j]
				j++
				valStart := j
				for j < len(body) && body[j] != attr.Quote {
					j++
				}
				attr.Value = body[valStart:j]
				if j < len(body) {
					j++
				} else {
					attr.UnterminatedQuote = true
				}
			} else {
				valStart := j
				for j < len(body) && !isSpace(body[j]) {
					j++
				}
				attr.Value = body[valStart:j]
			}
			i = j
		}
		attrs = append(attrs, attr)
	}
	return attrs
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.' || c == ':' || c == '_'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}
