package htmltoken

import (
	"strings"

	"weblint/internal/ascii"
	"weblint/internal/bytestr"
)

// Quote-recovery limits: when a quoted attribute value runs past this
// many newlines or bytes, the quote is assumed to be a mistake and the
// tag is re-terminated at the first '>' seen (the paper's "odd number
// of quotes" diagnosis).
const (
	quoteMaxNewlines = 3
	quoteMaxBytes    = 300
)

// Tokenizer scans an HTML document into tokens. Construct with New;
// reuse across documents with Reset, which keeps the internal buffers
// and makes a warm tokenizer allocation-free for typical markup.
//
// The scanning loops are table- and run-driven rather than per-byte:
// bytes are classified through the 256-entry classTable (tables.go),
// uninteresting runs are skipped with strings.IndexByte (vectorised in
// the runtime) or the SWAR word-at-a-time helpers in internal/ascii,
// and raw-text bodies ride ascii.IndexFold's occurrence cache. The
// token stream is byte-identical to the per-byte implementation this
// replaced, which is preserved as ReferenceTokenizer under the
// tokendiff build tag and compared token for token by the differential
// tests.
type Tokenizer struct {
	src string
	pos int

	// horizon is one past the furthest byte any scan decision has
	// examined so far — a running maximum. Token boundaries are not
	// always causally delimited: a text run peeks past its terminating
	// '<', raw text ends on a close-tag match covering bytes beyond
	// the token, and scanToGT's unbalanced-quote recovery can choose a
	// boundary based on bytes far ahead. A scan whose outcome depended
	// on running out of input records len(src)+1: the absence of
	// further bytes was load-bearing, so even an append invalidates
	// it. Incremental re-lint uses Horizon to decide which checkpoints
	// an edit leaves intact.
	horizon int

	// lineStarts[i] is the byte offset of the start of line i+1,
	// used to translate offsets to positions in O(log n).
	lineStarts []int

	// posLine is the 0-based lineStarts index of the most recently
	// resolved position. Lookups arrive in nearly monotone offset
	// order, so almost every one lands on the cached or the following
	// line and skips the binary search entirely.
	posLine int

	// rawUntil, when non-empty, is the lower-case element name whose
	// closing tag ends raw-text mode; rawNeedle is the "</name"
	// search needle for it.
	rawUntil  string
	rawNeedle string

	// attrBuf backs the Attrs slices of returned tokens; see the
	// ownership note on Next.
	attrBuf []Attr

	// internCache is a small direct-mapped cache in front of
	// internLower for non-lower-case names. Documents repeat the same
	// handful of upper-case tag and attribute spellings (<TD>, HREF,
	// ...) thousands of times; a hit here is a length/byte compare
	// instead of a map hash per name. Entries alias the current
	// source document — Release clears them.
	internCache [internCacheSize]struct{ name, canon string }

	// RawTextElements configures which elements switch the tokenizer
	// into raw-text mode. Defaults to DefaultRawTextElements.
	RawTextElements map[string]bool
}

// New returns a Tokenizer over src.
func New(src string) *Tokenizer {
	t := &Tokenizer{RawTextElements: DefaultRawTextElements}
	t.Reset(src)
	return t
}

// Reset re-arms the tokenizer over a new document, retaining the
// line-index and attribute buffers so that a pooled tokenizer does not
// reallocate them per document.
func (t *Tokenizer) Reset(src string) {
	t.src = src
	t.pos = 0
	t.horizon = 0
	t.rawUntil = ""
	t.rawNeedle = ""
	t.posLine = 0
	t.lineStarts = append(t.lineStarts[:0], 0)
	for i := 0; i < len(src); {
		j := strings.IndexByte(src[i:], '\n')
		if j < 0 {
			break
		}
		i += j + 1
		t.lineStarts = append(t.lineStarts, i)
	}
}

// ResetAt is Reset positioned to begin scanning at byte offset pos,
// for the incremental re-lint: the line index still covers the whole
// document, so tokens carry the same positions a full scan would
// produce. pos must lie on a token boundary of src that is outside
// raw-text mode (the Session guarantees this by checkpointing only at
// boundaries where InRawText reports false).
func (t *Tokenizer) ResetAt(src string, pos int) {
	t.Reset(src)
	t.pos = pos
	t.horizon = pos
}

// ResetAtLines is ResetAt with a caller-supplied line-start table —
// the same LF semantics Reset computes itself: offset 0 followed by
// one past every '\n'. The incremental Session maintains the table
// across edits by splicing (textpos.SpliceLF), so re-arming over a
// megabyte document costs a table copy, not a document scan. The table
// is copied; the caller's slice is not retained.
func (t *Tokenizer) ResetAtLines(src string, pos int, lineStarts []int) {
	t.src = src
	t.pos = pos
	t.horizon = pos
	t.rawUntil = ""
	t.rawNeedle = ""
	t.posLine = 0
	t.lineStarts = append(t.lineStarts[:0], lineStarts...)
}

// Pos returns the byte offset scanning resumes at. After NextInto it
// is one past the token just returned: tokens partition the document,
// so this is a token-boundary offset.
func (t *Tokenizer) Pos() int { return t.pos }

// Horizon returns one past the furthest byte examined by any scan
// decision since Reset (see the field comment). It is always at least
// Pos; len(src)+1 means some decision depended on end of input. An
// edit at byte offset start invalidates the tokenization prefix iff
// start < Horizon recorded at that point.
func (t *Tokenizer) Horizon() int { return t.horizon }

// see records that a scan decision examined bytes up to (excluding)
// off.
func (t *Tokenizer) see(off int) {
	if off > t.horizon {
		t.horizon = off
	}
}

// InRawText reports whether the next token will be scanned in
// raw-text mode (inside a SCRIPT/STYLE/... body). A boundary with raw
// mode armed carries tokenizer state beyond the byte offset, so
// checkpoints are only taken where this is false.
func (t *Tokenizer) InRawText() bool { return t.rawUntil != "" }

// ResetBytes is Reset over a byte slice, without copying it. Token
// substrings alias src: the caller must not mutate src until the last
// token from this document has been consumed (see bytestr).
func (t *Tokenizer) ResetBytes(src []byte) {
	t.Reset(bytestr.String(src))
}

// Release drops the references a parked tokenizer retains into the
// last document: the source string itself and the attribute substrings
// left in spare attrBuf capacity. Pools should call it before storing
// a tokenizer; buffer capacity is kept so the next Reset stays
// allocation-free.
func (t *Tokenizer) Release() {
	t.Reset("")
	buf := t.attrBuf[:cap(t.attrBuf)]
	for i := range buf {
		buf[i] = Attr{}
	}
	t.attrBuf = t.attrBuf[:0]
	clear(t.internCache[:])
}

const internCacheSize = 32

// internName is internLower through the tokenizer's direct-mapped
// cache. Lower-case names resolve without touching the cache (they
// are returned as-is); canonical strings stored on a miss never alias
// the document, but the cache keys do.
func (t *Tokenizer) internName(s string) string {
	if ascii.IsLower(s) {
		return s
	}
	e := &t.internCache[(uint(s[0])*2+uint(len(s)))%internCacheSize]
	if e.name == s {
		return e.canon
	}
	canon := internLower(s)
	e.name, e.canon = s, canon
	return canon
}

// Tokenize scans the whole of src and returns all tokens. The returned
// tokens are fully independent of the tokenizer (attribute slices are
// copied out of the reused buffer).
func Tokenize(src string) []Token {
	tz := New(src)
	var out []Token
	for {
		tok, ok := tz.Next()
		if !ok {
			return out
		}
		if len(tok.Attrs) > 0 {
			tok.Attrs = append([]Attr(nil), tok.Attrs...)
		}
		out = append(out, tok)
	}
}

// TokenizeBytes is Tokenize over a byte slice, without copying it.
// Token substrings alias src; the caller must not mutate src while the
// tokens are in use.
func TokenizeBytes(src []byte) []Token {
	return Tokenize(bytestr.String(src))
}

// position translates a byte offset into a 1-based line and column.
// The posLine cursor makes the common cases — same line as the last
// lookup, or the next one — two comparisons; everything else falls
// back to binary search over the narrowed range.
func (t *Tokenizer) position(off int) (line, col int) {
	starts := t.lineStarts
	lo := t.posLine
	if starts[lo] <= off {
		if lo+1 == len(starts) || off < starts[lo+1] {
			return lo + 1, off - starts[lo] + 1
		}
		if lo+2 == len(starts) || off < starts[lo+2] {
			t.posLine = lo + 1
			return lo + 2, off - starts[lo+1] + 1
		}
		lo = t.searchLine(lo+2, len(starts), off)
	} else {
		lo = t.searchLine(0, lo, off)
	}
	t.posLine = lo
	return lo + 1, off - starts[lo] + 1
}

// searchLine returns the greatest i in [lo, hi) with lineStarts[i] <=
// off. The caller guarantees one exists (lineStarts[0] is 0).
// Open-coded binary search: this ran several times per token before
// the posLine cursor, and the sort.Search closure showed up in
// profiles.
func (t *Tokenizer) searchLine(lo, hi, off int) int {
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.lineStarts[mid] <= off {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// lineAt returns just the 1-based line of a byte offset.
func (t *Tokenizer) lineAt(off int) int {
	l, _ := t.position(off)
	return l
}

// Next returns the next token. The boolean result is false at end of
// input.
//
// Ownership: the returned token's Attrs slice points into a buffer the
// tokenizer reuses on the following Next call. Callers which process
// tokens one at a time (the checker) need not care; callers which
// retain tokens must copy Attrs first (Tokenize does).
func (t *Tokenizer) Next() (Token, bool) {
	var tok Token
	ok := t.NextInto(&tok)
	return tok, ok
}

// NextInto scans the next token into *tok, returning false at end of
// input. It is Next without the struct-copy per call layer: streaming
// callers reuse one Token value across the whole document. The Attrs
// ownership note on Next applies.
func (t *Tokenizer) NextInto(tok *Token) bool {
	if t.pos >= len(t.src) {
		return false
	}
	*tok = Token{}
	// nextRaw reports false when the closing tag starts immediately
	// (empty raw body): raw mode is exited without emitting a
	// zero-length token, and the close tag is scanned as markup below.
	if t.rawUntil != "" && t.nextRaw(tok) {
		return true
	}
	if t.src[t.pos] == '<' && t.startsMarkup(t.pos) {
		t.nextMarkup(tok)
		t.see(t.pos)
		return true
	}
	t.nextText(tok)
	t.see(t.pos)
	return true
}

// startsMarkup reports whether the '<' at off begins markup rather
// than document text.
func (t *Tokenizer) startsMarkup(off int) bool {
	if off+1 >= len(t.src) {
		return false
	}
	return classTable[t.src[off+1]]&classMarkup != 0
}

// nextText consumes document text up to the next markup-starting '<'.
// The run is skipped '<' to '<': everything between candidates is
// covered by one IndexByte call each.
func (t *Tokenizer) nextText(tok *Token) {
	start := t.pos
	// The byte at start was already rejected as markup by NextInto
	// (or is not '<' at all), so the scan starts one past it.
	i := start + 1
	for {
		j := strings.IndexByte(t.src[i:], '<')
		if j < 0 {
			i = len(t.src)
			// The run ended only because input did: appended bytes
			// would fuse into this token.
			t.see(i + 1)
			break
		}
		i += j
		if t.startsMarkup(i) {
			t.see(i + 2) // peeked at the byte after '<'
			break
		}
		i++
	}
	t.pos = i
	line, col := t.position(start)
	tok.Type = Text
	tok.Text = t.src[start:i]
	tok.Raw = t.src[start:i]
	tok.Line = line
	tok.Col = col
	tok.Offset = start
	tok.EndLine = t.lineAt(max(start, i-1))
}

// nextRaw consumes raw text until the closing tag of the raw element.
// The scan is case-insensitive without lower-casing (and so copying)
// the rest of the document, which made raw-text-heavy pages quadratic:
// every SCRIPT element re-copied everything after it. A body that ends
// at EOF without a closing tag is emitted as one raw token to EOF.
//
// nextRaw reports false — emitting nothing — when the closing tag
// starts immediately (<script></script>), so the token stream never
// contains a zero-length token. Raw mode is exited either way.
func (t *Tokenizer) nextRaw(tok *Token) bool {
	start := t.pos
	idx := ascii.IndexFold(t.src[start:], t.rawNeedle)
	if idx < 0 {
		// No close tag anywhere: the raw run to EOF depends on the
		// absence of further input.
		t.see(len(t.src) + 1)
	} else {
		// The run ends here only because the close-tag needle matched
		// these bytes.
		t.see(start + idx + len(t.rawNeedle))
	}
	t.rawUntil = ""
	t.rawNeedle = ""
	if idx == 0 {
		return false
	}
	end := len(t.src)
	if idx > 0 {
		end = start + idx
	}
	t.pos = end
	line, col := t.position(start)
	tok.Type = Text
	tok.Text = t.src[start:end]
	tok.Raw = t.src[start:end]
	tok.Line = line
	tok.Col = col
	tok.Offset = start
	tok.EndLine = t.lineAt(max(start, end-1))
	tok.RawText = true
	return true
}

// nextMarkup consumes one tag, comment, or declaration.
func (t *Tokenizer) nextMarkup(tok *Token) {
	start := t.pos
	line, col := t.position(start)
	tok.Offset = start
	next := t.src[start+1]

	switch {
	case next == '>': // "<>"
		t.pos = start + 2
		tok.Type = StartTag
		tok.Raw = t.src[start:t.pos]
		tok.Line, tok.Col, tok.EndLine = line, col, line
		tok.EmptyTag = true
	case next == '!':
		if strings.HasPrefix(t.src[start:], "<!--") {
			t.nextComment(tok, start, line, col)
			return
		}
		t.nextDeclaration(tok, start, line, col)
	case next == '?':
		t.nextProcInst(tok, start, line, col)
	case next == '/':
		t.nextTag(tok, start, line, col, true)
	default:
		t.nextTag(tok, start, line, col, false)
	}
}

// nextComment consumes an SGML comment.
func (t *Tokenizer) nextComment(tok *Token, start, line, col int) {
	bodyStart := start + 4 // past "<!--"
	idx := strings.Index(t.src[bodyStart:], "-->")
	tok.Type, tok.Line, tok.Col = Comment, line, col
	if idx < 0 {
		tok.Text = t.src[bodyStart:]
		tok.Raw = t.src[start:]
		tok.Unterminated = true
		t.pos = len(t.src)
		t.see(len(t.src) + 1) // unterminated: an appended "-->" would end it
	} else {
		end := bodyStart + idx + 3
		tok.Text = t.src[bodyStart : bodyStart+idx]
		tok.Raw = t.src[start:end]
		t.pos = end
	}
	tok.EndLine = t.lineAt(max(start, t.pos-1))
}

// nextDeclaration consumes <! ...> declarations, classifying DOCTYPE.
func (t *Tokenizer) nextDeclaration(tok *Token, start, line, col int) {
	end, odd, unterminated := t.scanToGT(start + 2)
	body := t.src[start+2 : end]
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}
	tok.Type, tok.Text, tok.Raw = Declaration, body, t.src[start:t.pos]
	tok.Line, tok.Col, tok.EndLine = line, col, t.lineAt(max(start, t.pos-1))
	tok.OddQuotes, tok.Unterminated = odd, unterminated
	if rest := strings.TrimLeft(body, " \t\r\n\f\v"); ascii.HasPrefixFold(rest, "doctype") &&
		(len(rest) == len("doctype") || isSpace(rest[len("doctype")]) || rest[len("doctype")] == '\v') {
		tok.Type = Doctype
		tok.Name = "DOCTYPE"
	}
}

// nextProcInst consumes a <? ... > processing instruction.
func (t *Tokenizer) nextProcInst(tok *Token, start, line, col int) {
	end, _, unterminated := t.scanToGT(start + 2)
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}
	tok.Type, tok.Text, tok.Raw = ProcInst, t.src[start+2:end], t.src[start:t.pos]
	tok.Line, tok.Col, tok.EndLine = line, col, t.lineAt(max(start, t.pos-1))
	tok.Unterminated = unterminated
}

// nextTag consumes a start or end tag, parsing its attributes.
func (t *Tokenizer) nextTag(tok *Token, start, line, col int, closing bool) {
	nameStart := start + 1
	if closing {
		nameStart++
	}
	nameEnd := nameStart
	for nameEnd < len(t.src) && classTable[t.src[nameEnd]]&classNameChar != 0 {
		nameEnd++
	}
	name := t.src[nameStart:nameEnd]
	lower := t.internName(name)

	end, odd, unterminated := t.scanToGT(nameEnd)
	body := t.src[nameEnd:end]
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}

	tok.Type, tok.Name, tok.Lower = StartTag, name, lower
	tok.Raw = t.src[start:t.pos]
	tok.Line, tok.Col = line, col
	tok.OddQuotes, tok.Unterminated = odd, unterminated
	if closing {
		tok.Type = EndTag
	}

	// XHTML-style trailing slash: strip it before attribute parsing
	// so it doesn't read as a stray attribute.
	trimmed := strings.TrimRight(body, " \t\r\n")
	if strings.HasSuffix(trimmed, "/") && !strings.HasSuffix(trimmed, "=/") {
		tok.SlashClose = true
		body = strings.TrimSuffix(trimmed, "/")
	}

	tok.Attrs = t.parseAttrs(body, nameEnd)
	// EndLine last: attribute positions precede the tag's final byte,
	// so resolving them first keeps the posLine cursor monotone.
	tok.EndLine = t.lineAt(max(start, t.pos-1))

	if tok.Type == StartTag && !unterminated && t.RawTextElements[lower] {
		t.rawUntil = lower
		t.rawNeedle = rawNeedleFor(lower)
	}
}

// rawNeedles precomputes the "</name" search needle for the default
// raw-text elements; custom elements fall back to concatenation.
var rawNeedles = func() map[string]string {
	m := make(map[string]string, len(DefaultRawTextElements))
	for name := range DefaultRawTextElements {
		m[name] = "</" + name
	}
	return m
}()

func rawNeedleFor(lower string) string {
	if n, ok := rawNeedles[lower]; ok {
		return n
	}
	return "</" + lower
}

// scanToGT scans from off for the '>' terminating a tag, honouring
// quoted attribute values, with heuristic recovery for unbalanced
// quotes. It returns the offset of the terminating '>' (or len(src)),
// whether odd quotes were detected, and whether the tag was
// unterminated at end of input.
//
// The scan is event-driven: outside a quote only '"', '\'' and '>'
// matter, inside a quote only the closing quote, '>' and '\n' do, so
// each IndexAny3 call jumps straight to the next such byte. Successive
// searches cover disjoint ranges of the source, keeping the whole scan
// linear even on pathological quote soup.
func (t *Tokenizer) scanToGT(off int) (end int, oddQuotes, unterminated bool) {
	src := t.src
	firstGT := -1

	// recoverFrom re-terminates the tag after an open quote is
	// declared a mistake: at the first '>' seen anywhere, or failing
	// at EOF. No '>' can hide in src[off:i] — an unquoted one would
	// have ended the tag, a quoted one would have set firstGT — so
	// searching onward from i equals the per-byte scan from off.
	recoverFrom := func(i int) (int, bool, bool) {
		// The choice to recover — and where — was made by examining
		// bytes up to i; i == len(src) means running out of input made
		// it, so even appended bytes would change the outcome.
		if i >= len(src) {
			t.see(len(src) + 1)
		} else {
			t.see(i + 1)
		}
		if firstGT >= 0 {
			return firstGT, true, false
		}
		if j := ascii.IndexByteFrom(src, '>', i); j >= 0 {
			t.see(j + 1)
			return j, true, false
		}
		t.see(len(src) + 1)
		return len(src), true, true
	}

	i := off
	for i < len(src) {
		j := ascii.IndexAny3(src[i:], '"', '\'', '>')
		if j < 0 {
			t.see(len(src) + 1) // unterminated: appended bytes would extend the tag
			return len(src), false, true
		}
		i += j
		quote := src[i]
		if quote == '>' {
			t.see(i + 1)
			return i, false, false
		}
		quoteStart := i
		quoteNewlines := 0
		i++
		for {
			j := ascii.IndexAny3(src[i:], quote, '>', '\n')
			if j < 0 {
				return recoverFrom(len(src))
			}
			i += j
			switch c := src[i]; {
			case c == quote:
				i++
			case c == '>':
				if firstGT < 0 {
					firstGT = i
				}
				if i-quoteStart > quoteMaxBytes {
					return recoverFrom(i)
				}
				i++
				continue
			default: // '\n'
				quoteNewlines++
				if quoteNewlines > quoteMaxNewlines {
					return recoverFrom(i)
				}
				i++
				continue
			}
			break
		}
	}
	t.see(len(src) + 1) // unterminated at EOF
	return len(src), false, true
}

// parseAttrs parses the attribute section of a tag. base is the byte
// offset of the section within the source, used for positions. The
// returned slice aliases t.attrBuf and is valid until the next Next
// call.
func (t *Tokenizer) parseAttrs(body string, base int) []Attr {
	attrs := t.attrBuf[:0]
	i := 0
	for i < len(body) {
		for i < len(body) && classTable[body[i]]&classSpace != 0 {
			i++
		}
		if i >= len(body) {
			break
		}
		nameStart := i
		for i < len(body) && classTable[body[i]]&classAttrDelim == 0 {
			i++
		}
		name := body[nameStart:i]
		if name == "" { // stray '=' with no name
			i++
			continue
		}
		line, col := t.position(base + nameStart)
		attr := Attr{Name: name, Lower: t.internName(name), Line: line, Col: col, Offset: base + nameStart}

		j := i
		for j < len(body) && classTable[body[j]]&classSpace != 0 {
			j++
		}
		if j < len(body) && body[j] == '=' {
			j++
			for j < len(body) && classTable[body[j]]&classSpace != 0 {
				j++
			}
			attr.HasValue = true
			if j < len(body) && (body[j] == '"' || body[j] == '\'') {
				attr.Quote = body[j]
				j++
				valStart := j
				// The whole quoted value is one IndexByte skip: the
				// quote byte is the only delimiter that matters.
				if k := strings.IndexByte(body[valStart:], attr.Quote); k >= 0 {
					j = valStart + k + 1
					attr.Value = body[valStart : j-1]
				} else {
					j = len(body)
					attr.Value = body[valStart:]
					attr.UnterminatedQuote = true
				}
				attr.ValOffset = base + valStart
			} else {
				valStart := j
				for j < len(body) && classTable[body[j]]&classSpace == 0 {
					j++
				}
				attr.Value = body[valStart:j]
				attr.ValOffset = base + valStart
			}
			i = j
		}
		attrs = append(attrs, attr)
	}
	t.attrBuf = attrs[:0]
	return attrs
}
