package htmltoken

import (
	"strings"

	"weblint/internal/ascii"
	"weblint/internal/bytestr"
)

// Quote-recovery limits: when a quoted attribute value runs past this
// many newlines or bytes, the quote is assumed to be a mistake and the
// tag is re-terminated at the first '>' seen (the paper's "odd number
// of quotes" diagnosis).
const (
	quoteMaxNewlines = 3
	quoteMaxBytes    = 300
)

// Tokenizer scans an HTML document into tokens. Construct with New;
// reuse across documents with Reset, which keeps the internal buffers
// and makes a warm tokenizer allocation-free for typical markup.
type Tokenizer struct {
	src string
	pos int

	// lineStarts[i] is the byte offset of the start of line i+1,
	// used to translate offsets to positions in O(log n).
	lineStarts []int

	// rawUntil, when non-empty, is the lower-case element name whose
	// closing tag ends raw-text mode; rawNeedle is the "</name"
	// search needle for it.
	rawUntil  string
	rawNeedle string

	// attrBuf backs the Attrs slices of returned tokens; see the
	// ownership note on Next.
	attrBuf []Attr

	// RawTextElements configures which elements switch the tokenizer
	// into raw-text mode. Defaults to DefaultRawTextElements.
	RawTextElements map[string]bool
}

// New returns a Tokenizer over src.
func New(src string) *Tokenizer {
	t := &Tokenizer{RawTextElements: DefaultRawTextElements}
	t.Reset(src)
	return t
}

// Reset re-arms the tokenizer over a new document, retaining the
// line-index and attribute buffers so that a pooled tokenizer does not
// reallocate them per document.
func (t *Tokenizer) Reset(src string) {
	t.src = src
	t.pos = 0
	t.rawUntil = ""
	t.rawNeedle = ""
	t.lineStarts = append(t.lineStarts[:0], 0)
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			t.lineStarts = append(t.lineStarts, i+1)
		}
	}
}

// ResetBytes is Reset over a byte slice, without copying it. Token
// substrings alias src: the caller must not mutate src until the last
// token from this document has been consumed (see bytestr).
func (t *Tokenizer) ResetBytes(src []byte) {
	t.Reset(bytestr.String(src))
}

// Release drops the references a parked tokenizer retains into the
// last document: the source string itself and the attribute substrings
// left in spare attrBuf capacity. Pools should call it before storing
// a tokenizer; buffer capacity is kept so the next Reset stays
// allocation-free.
func (t *Tokenizer) Release() {
	t.Reset("")
	buf := t.attrBuf[:cap(t.attrBuf)]
	for i := range buf {
		buf[i] = Attr{}
	}
	t.attrBuf = t.attrBuf[:0]
}

// Tokenize scans the whole of src and returns all tokens. The returned
// tokens are fully independent of the tokenizer (attribute slices are
// copied out of the reused buffer).
func Tokenize(src string) []Token {
	tz := New(src)
	var out []Token
	for {
		tok, ok := tz.Next()
		if !ok {
			return out
		}
		if len(tok.Attrs) > 0 {
			tok.Attrs = append([]Attr(nil), tok.Attrs...)
		}
		out = append(out, tok)
	}
}

// TokenizeBytes is Tokenize over a byte slice, without copying it.
// Token substrings alias src; the caller must not mutate src while the
// tokens are in use.
func TokenizeBytes(src []byte) []Token {
	return Tokenize(bytestr.String(src))
}

// position translates a byte offset into a 1-based line and column.
// Open-coded binary search: this runs several times per token, and the
// sort.Search closure showed up in profiles.
func (t *Tokenizer) position(off int) (line, col int) {
	lo, hi := 0, len(t.lineStarts) // invariant: lineStarts[lo] <= off < lineStarts[hi]
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.lineStarts[mid] <= off {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + 1, off - t.lineStarts[lo] + 1
}

// lineAt returns just the 1-based line of a byte offset.
func (t *Tokenizer) lineAt(off int) int {
	l, _ := t.position(off)
	return l
}

// Next returns the next token. The boolean result is false at end of
// input.
//
// Ownership: the returned token's Attrs slice points into a buffer the
// tokenizer reuses on the following Next call. Callers which process
// tokens one at a time (the checker) need not care; callers which
// retain tokens must copy Attrs first (Tokenize does).
func (t *Tokenizer) Next() (Token, bool) {
	var tok Token
	ok := t.NextInto(&tok)
	return tok, ok
}

// NextInto scans the next token into *tok, returning false at end of
// input. It is Next without the struct-copy per call layer: streaming
// callers reuse one Token value across the whole document. The Attrs
// ownership note on Next applies.
func (t *Tokenizer) NextInto(tok *Token) bool {
	if t.pos >= len(t.src) {
		return false
	}
	*tok = Token{}
	if t.rawUntil != "" {
		t.nextRaw(tok)
		return true
	}
	if t.src[t.pos] == '<' && t.startsMarkup(t.pos) {
		t.nextMarkup(tok)
		return true
	}
	t.nextText(tok)
	return true
}

// startsMarkup reports whether the '<' at off begins markup rather
// than document text.
func (t *Tokenizer) startsMarkup(off int) bool {
	if off+1 >= len(t.src) {
		return false
	}
	c := t.src[off+1]
	return isNameStart(c) || c == '/' || c == '!' || c == '?' || c == '>'
}

// nextText consumes document text up to the next markup-starting '<'.
func (t *Tokenizer) nextText(tok *Token) {
	start := t.pos
	i := start
	for i < len(t.src) {
		if t.src[i] == '<' && i > start && t.startsMarkup(i) {
			break
		}
		i++
	}
	t.pos = i
	line, col := t.position(start)
	tok.Type = Text
	tok.Text = t.src[start:i]
	tok.Raw = t.src[start:i]
	tok.Line = line
	tok.Col = col
	tok.Offset = start
	tok.EndLine = t.lineAt(max(start, i-1))
}

// nextRaw consumes raw text until the closing tag of the raw element.
// The scan is case-insensitive without lower-casing (and so copying)
// the rest of the document, which made raw-text-heavy pages quadratic:
// every SCRIPT element re-copied everything after it.
func (t *Tokenizer) nextRaw(tok *Token) {
	start := t.pos
	idx := ascii.IndexFold(t.src[start:], t.rawNeedle)
	end := len(t.src)
	if idx >= 0 {
		end = start + idx
	}
	t.pos = end
	t.rawUntil = ""
	t.rawNeedle = ""
	line, col := t.position(start)
	tok.Type = Text
	tok.Text = t.src[start:end]
	tok.Raw = t.src[start:end]
	tok.Line = line
	tok.Col = col
	tok.Offset = start
	tok.EndLine = t.lineAt(max(start, end-1))
	tok.RawText = true
}

// nextMarkup consumes one tag, comment, or declaration.
func (t *Tokenizer) nextMarkup(tok *Token) {
	start := t.pos
	line, col := t.position(start)
	tok.Offset = start
	next := t.src[start+1]

	switch {
	case next == '>': // "<>"
		t.pos = start + 2
		tok.Type = StartTag
		tok.Raw = t.src[start:t.pos]
		tok.Line, tok.Col, tok.EndLine = line, col, line
		tok.EmptyTag = true
	case next == '!':
		if strings.HasPrefix(t.src[start:], "<!--") {
			t.nextComment(tok, start, line, col)
			return
		}
		t.nextDeclaration(tok, start, line, col)
	case next == '?':
		t.nextProcInst(tok, start, line, col)
	case next == '/':
		t.nextTag(tok, start, line, col, true)
	default:
		t.nextTag(tok, start, line, col, false)
	}
}

// nextComment consumes an SGML comment.
func (t *Tokenizer) nextComment(tok *Token, start, line, col int) {
	bodyStart := start + 4 // past "<!--"
	idx := strings.Index(t.src[bodyStart:], "-->")
	tok.Type, tok.Line, tok.Col = Comment, line, col
	if idx < 0 {
		tok.Text = t.src[bodyStart:]
		tok.Raw = t.src[start:]
		tok.Unterminated = true
		t.pos = len(t.src)
	} else {
		end := bodyStart + idx + 3
		tok.Text = t.src[bodyStart : bodyStart+idx]
		tok.Raw = t.src[start:end]
		t.pos = end
	}
	tok.EndLine = t.lineAt(max(start, t.pos-1))
}

// nextDeclaration consumes <! ...> declarations, classifying DOCTYPE.
func (t *Tokenizer) nextDeclaration(tok *Token, start, line, col int) {
	end, odd, unterminated := t.scanToGT(start + 2)
	body := t.src[start+2 : end]
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}
	tok.Type, tok.Text, tok.Raw = Declaration, body, t.src[start:t.pos]
	tok.Line, tok.Col, tok.EndLine = line, col, t.lineAt(max(start, t.pos-1))
	tok.OddQuotes, tok.Unterminated = odd, unterminated
	if rest := strings.TrimLeft(body, " \t\r\n\f\v"); ascii.HasPrefixFold(rest, "doctype") &&
		(len(rest) == len("doctype") || isSpace(rest[len("doctype")]) || rest[len("doctype")] == '\v') {
		tok.Type = Doctype
		tok.Name = "DOCTYPE"
	}
}

// nextProcInst consumes a <? ... > processing instruction.
func (t *Tokenizer) nextProcInst(tok *Token, start, line, col int) {
	end, _, unterminated := t.scanToGT(start + 2)
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}
	tok.Type, tok.Text, tok.Raw = ProcInst, t.src[start+2:end], t.src[start:t.pos]
	tok.Line, tok.Col, tok.EndLine = line, col, t.lineAt(max(start, t.pos-1))
	tok.Unterminated = unterminated
}

// nextTag consumes a start or end tag, parsing its attributes.
func (t *Tokenizer) nextTag(tok *Token, start, line, col int, closing bool) {
	nameStart := start + 1
	if closing {
		nameStart++
	}
	nameEnd := nameStart
	for nameEnd < len(t.src) && isNameChar(t.src[nameEnd]) {
		nameEnd++
	}
	name := t.src[nameStart:nameEnd]
	lower := internLower(name)

	end, odd, unterminated := t.scanToGT(nameEnd)
	body := t.src[nameEnd:end]
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}

	tok.Type, tok.Name, tok.Lower = StartTag, name, lower
	tok.Raw = t.src[start:t.pos]
	tok.Line, tok.Col, tok.EndLine = line, col, t.lineAt(max(start, t.pos-1))
	tok.OddQuotes, tok.Unterminated = odd, unterminated
	if closing {
		tok.Type = EndTag
	}

	// XHTML-style trailing slash: strip it before attribute parsing
	// so it doesn't read as a stray attribute.
	trimmed := strings.TrimRight(body, " \t\r\n")
	if strings.HasSuffix(trimmed, "/") && !strings.HasSuffix(trimmed, "=/") {
		tok.SlashClose = true
		body = strings.TrimSuffix(trimmed, "/")
	}

	tok.Attrs = t.parseAttrs(body, nameEnd)

	if tok.Type == StartTag && !unterminated && t.RawTextElements[lower] {
		t.rawUntil = lower
		t.rawNeedle = rawNeedleFor(lower)
	}
}

// rawNeedles precomputes the "</name" search needle for the default
// raw-text elements; custom elements fall back to concatenation.
var rawNeedles = func() map[string]string {
	m := make(map[string]string, len(DefaultRawTextElements))
	for name := range DefaultRawTextElements {
		m[name] = "</" + name
	}
	return m
}()

func rawNeedleFor(lower string) string {
	if n, ok := rawNeedles[lower]; ok {
		return n
	}
	return "</" + lower
}

// scanToGT scans from off for the '>' terminating a tag, honouring
// quoted attribute values, with heuristic recovery for unbalanced
// quotes. It returns the offset of the terminating '>' (or len(src)),
// whether odd quotes were detected, and whether the tag was
// unterminated at end of input.
func (t *Tokenizer) scanToGT(off int) (end int, oddQuotes, unterminated bool) {
	var quote byte
	firstGT := -1
	quoteStart := 0
	quoteNewlines := 0

	recover := func() (int, bool, bool) {
		// The open quote is assumed to be a mistake: re-terminate
		// at the first '>' seen anywhere, or fail at EOF.
		if firstGT >= 0 {
			return firstGT, true, false
		}
		for j := off; j < len(t.src); j++ {
			if t.src[j] == '>' {
				return j, true, false
			}
		}
		return len(t.src), true, true
	}

	for i := off; i < len(t.src); i++ {
		c := t.src[i]
		if quote != 0 {
			switch {
			case c == quote:
				quote = 0
			case c == '>':
				if firstGT < 0 {
					firstGT = i
				}
				if i-quoteStart > quoteMaxBytes {
					return recover()
				}
			case c == '\n':
				quoteNewlines++
				if quoteNewlines > quoteMaxNewlines {
					return recover()
				}
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
			quoteStart = i
			quoteNewlines = 0
		case '>':
			return i, false, false
		}
	}
	if quote != 0 {
		return recover()
	}
	return len(t.src), false, true
}

// parseAttrs parses the attribute section of a tag. base is the byte
// offset of the section within the source, used for positions. The
// returned slice aliases t.attrBuf and is valid until the next Next
// call.
func (t *Tokenizer) parseAttrs(body string, base int) []Attr {
	attrs := t.attrBuf[:0]
	i := 0
	for i < len(body) {
		for i < len(body) && isSpace(body[i]) {
			i++
		}
		if i >= len(body) {
			break
		}
		nameStart := i
		for i < len(body) && !isSpace(body[i]) && body[i] != '=' {
			i++
		}
		name := body[nameStart:i]
		if name == "" { // stray '=' with no name
			i++
			continue
		}
		line, col := t.position(base + nameStart)
		attr := Attr{Name: name, Lower: internLower(name), Line: line, Col: col, Offset: base + nameStart}

		j := i
		for j < len(body) && isSpace(body[j]) {
			j++
		}
		if j < len(body) && body[j] == '=' {
			j++
			for j < len(body) && isSpace(body[j]) {
				j++
			}
			attr.HasValue = true
			if j < len(body) && (body[j] == '"' || body[j] == '\'') {
				attr.Quote = body[j]
				j++
				valStart := j
				for j < len(body) && body[j] != attr.Quote {
					j++
				}
				attr.Value = body[valStart:j]
				attr.ValOffset = base + valStart
				if j < len(body) {
					j++
				} else {
					attr.UnterminatedQuote = true
				}
			} else {
				valStart := j
				for j < len(body) && !isSpace(body[j]) {
					j++
				}
				attr.Value = body[valStart:j]
				attr.ValOffset = base + valStart
			}
			i = j
		}
		attrs = append(attrs, attr)
	}
	t.attrBuf = attrs[:0]
	return attrs
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.' || c == ':' || c == '_'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}
