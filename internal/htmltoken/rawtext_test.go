package htmltoken

import "testing"

// Regression tests for the raw-text scan / needle-search interaction:
// bodies ending at EOF without a close tag, empty bodies, and false
// close-tag prefixes. These corners were previously only fuzz-covered.

// assertPartition checks the offset-partition invariant directly: the
// tokens cover the source exactly, with no zero-length token.
func assertPartition(t *testing.T, src string, toks []Token) {
	t.Helper()
	pos := 0
	for i, tok := range toks {
		if tok.Offset != pos {
			t.Fatalf("token %d (%v): offset %d, want %d", i, tok.Type, tok.Offset, pos)
		}
		if len(tok.Raw) == 0 {
			t.Fatalf("token %d (%v): empty Raw", i, tok.Type)
		}
		pos += len(tok.Raw)
	}
	if pos != len(src) {
		t.Fatalf("tokens cover %d of %d bytes", pos, len(src))
	}
}

func TestRawTextEOFWithoutCloseTag(t *testing.T) {
	for _, src := range []string{
		"<SCRIPT TYPE=\"a\">var x=1;",
		"<script>document.write('</p');",
		"<STYLE>h1 { color: red }",
	} {
		toks := tokens(t, src)
		assertPartition(t, src, toks)
		if len(toks) != 2 {
			t.Fatalf("%q: tokens = %+v", src, toks)
		}
		if toks[1].Type != Text || !toks[1].RawText {
			t.Fatalf("%q: token 1 = %+v", src, toks[1])
		}
		if toks[1].Offset+len(toks[1].Raw) != len(src) {
			t.Errorf("%q: raw token does not run to EOF", src)
		}
	}
}

func TestRawTextPartialCloseTagAtEOF(t *testing.T) {
	// "</scr" is not a close-tag prefix match for "</script", so the
	// raw body swallows it and runs to EOF.
	src := "<script>x</scr"
	toks := tokens(t, src)
	assertPartition(t, src, toks)
	if len(toks) != 2 || toks[1].Text != "x</scr" || !toks[1].RawText {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestEmptyRawBodyEmitsNoToken(t *testing.T) {
	// An immediately-closed raw element produces no zero-length text
	// token: the stream goes straight from start tag to end tag.
	for _, src := range []string{
		"<script></script>x",
		"<SCRIPT></SCRIPT>x",
		"<script></SCRIPT>x",
		"<style></style>x",
	} {
		toks := tokens(t, src)
		assertPartition(t, src, toks)
		if len(toks) != 3 {
			t.Fatalf("%q: tokens = %+v", src, toks)
		}
		if toks[1].Type != EndTag {
			t.Fatalf("%q: token 1 = %+v", src, toks[1])
		}
		if toks[2].Type != Text || toks[2].Text != "x" || toks[2].RawText {
			t.Fatalf("%q: token 2 = %+v", src, toks[2])
		}
	}
}

func TestRawTextFalseClosePrefixEndsRawMode(t *testing.T) {
	// The needle "</script" matches the start of "</scriptmore>":
	// raw mode ends there and the tag is tokenized as an ordinary
	// (mismatched) end tag — the lenient behavior the checker's
	// mis-matched-close diagnostics rely on.
	src := "<script></scriptmore>x"
	toks := tokens(t, src)
	assertPartition(t, src, toks)
	if len(toks) != 3 {
		t.Fatalf("tokens = %+v", toks)
	}
	if toks[1].Type != EndTag || toks[1].Name != "scriptmore" {
		t.Fatalf("token 1 = %+v", toks[1])
	}
	if toks[2].RawText {
		t.Fatalf("text after false close still raw: %+v", toks[2])
	}
}

func TestRawTextCloseTagAtExactEOF(t *testing.T) {
	// The close tag is the last thing in the document.
	src := "<script>a</script>"
	toks := tokens(t, src)
	assertPartition(t, src, toks)
	if len(toks) != 3 || toks[2].Type != EndTag {
		t.Fatalf("tokens = %+v", toks)
	}
	// And an empty body closed at exact EOF.
	src = "<script></script>"
	toks = tokens(t, src)
	assertPartition(t, src, toks)
	if len(toks) != 2 || toks[1].Type != EndTag {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestRawTextUnterminatedStartTagDoesNotEnterRawMode(t *testing.T) {
	// A SCRIPT start tag cut off at EOF never enters raw mode; there
	// is nothing after it either way, but the tokenizer must not
	// record a pending needle that a Reset reuse could trip over.
	src := "<script type=\"a"
	tz := New(src)
	var tok Token
	n := 0
	for tz.NextInto(&tok) {
		n++
	}
	if n != 1 {
		t.Fatalf("%d tokens", n)
	}
	tz.Reset("plain text")
	toks := collectNextInto("plain text")
	if len(toks) != 1 || toks[0].RawText {
		t.Fatalf("reused tokenizer: %+v", toks)
	}
}

// TestResetBytesAndRelease pins the pool contract: ResetBytes aliases
// the slice without copying, and Release drops every reference into
// the last document (source, attr spares, intern-cache keys) while
// keeping the tokenizer reusable.
func TestResetBytesAndRelease(t *testing.T) {
	tk := New("")
	tk.ResetBytes([]byte(`<IMG SRC="a.gif" ALT="x">text`))
	var tok Token
	if !tk.NextInto(&tok) || tok.Type != StartTag || tok.Name != "IMG" || len(tok.Attrs) != 2 {
		t.Fatalf("ResetBytes first token = %+v", tok)
	}
	tk.Release()
	if tk.NextInto(&tok) {
		t.Fatalf("released tokenizer still yields tokens: %+v", tok)
	}
	// Released tokenizers re-arm cleanly.
	tk.Reset("<P>hi")
	if !tk.NextInto(&tok) || tok.Type != StartTag || tok.Name != "P" {
		t.Fatalf("post-Release token = %+v", tok)
	}
}

// TestStartsMarkupAtEOF: a lone '<' as the document's final byte is
// text, not markup.
func TestStartsMarkupAtEOF(t *testing.T) {
	toks := Tokenize("a<")
	if len(toks) != 1 || toks[0].Type != Text || toks[0].Raw != "a<" {
		t.Fatalf("trailing '<' tokens = %+v", toks)
	}
}
