package htmltoken

// byteClass is a bitmask of lexical roles a byte can play. One
// 256-entry table replaces the spelled-out predicate functions in the
// scanning loops: classifying a byte is a single indexed load, and
// compound questions ("space or '='?") are one mask test instead of a
// branch chain.
type byteClass uint8

const (
	// classSpace: HTML whitespace (' ', '\t', '\n', '\r', '\f').
	classSpace byteClass = 1 << iota
	// classNameStart: may begin a tag name (ASCII letters).
	classNameStart
	// classNameChar: may continue a tag or attribute name
	// (letters, digits, '-', '.', ':', '_').
	classNameChar
	// classMarkup: after '<', this byte makes the '<' start markup
	// (name-start letters plus '/', '!', '?', '>').
	classMarkup
	// classAttrDelim: ends an attribute name (space or '=').
	classAttrDelim
)

// classTable maps every byte to its class bits. Built once at init
// from the same definitions the old predicates spelled out; the
// exhaustive 0–255 agreement test in tables_test.go pins the two
// formulations together.
var classTable = func() (t [256]byteClass) {
	for i := 0; i < 256; i++ {
		c := byte(i)
		switch c {
		case ' ', '\t', '\n', '\r', '\f':
			t[i] |= classSpace | classAttrDelim
		case '=':
			t[i] |= classAttrDelim
		}
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			t[i] |= classNameStart | classNameChar | classMarkup
		}
		if c >= '0' && c <= '9' || c == '-' || c == '.' || c == ':' || c == '_' {
			t[i] |= classNameChar
		}
		switch c {
		case '/', '!', '?', '>':
			t[i] |= classMarkup
		}
	}
	return t
}()

func isNameStart(c byte) bool { return classTable[c]&classNameStart != 0 }

func isNameChar(c byte) bool { return classTable[c]&classNameChar != 0 }

func isSpace(c byte) bool { return classTable[c]&classSpace != 0 }
