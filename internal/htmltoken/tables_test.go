package htmltoken

import "testing"

// The byte-class table must agree with the spelled-out predicates it
// replaced, for every one of the 256 byte values. The closures here
// are the predicate definitions as they stood before the table.
func TestClassTableAgreement(t *testing.T) {
	oldIsNameStart := func(c byte) bool {
		return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
	}
	oldIsNameChar := func(c byte) bool {
		return oldIsNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.' || c == ':' || c == '_'
	}
	oldIsSpace := func(c byte) bool {
		return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
	}
	oldStartsMarkup := func(c byte) bool {
		return oldIsNameStart(c) || c == '/' || c == '!' || c == '?' || c == '>'
	}
	oldAttrDelim := func(c byte) bool {
		return oldIsSpace(c) || c == '='
	}

	for i := 0; i < 256; i++ {
		c := byte(i)
		if got, want := isNameStart(c), oldIsNameStart(c); got != want {
			t.Errorf("isNameStart(%q) = %v, want %v", c, got, want)
		}
		if got, want := isNameChar(c), oldIsNameChar(c); got != want {
			t.Errorf("isNameChar(%q) = %v, want %v", c, got, want)
		}
		if got, want := isSpace(c), oldIsSpace(c); got != want {
			t.Errorf("isSpace(%q) = %v, want %v", c, got, want)
		}
		if got, want := classTable[c]&classMarkup != 0, oldStartsMarkup(c); got != want {
			t.Errorf("classMarkup(%q) = %v, want %v", c, got, want)
		}
		if got, want := classTable[c]&classAttrDelim != 0, oldAttrDelim(c); got != want {
			t.Errorf("classAttrDelim(%q) = %v, want %v", c, got, want)
		}
	}
}
