package htmltoken

import (
	"strings"
	"testing"
	"testing/quick"
)

func tokens(t *testing.T, src string) []Token {
	t.Helper()
	return Tokenize(src)
}

func TestSimpleDocument(t *testing.T) {
	toks := tokens(t, "<HTML><BODY>hello</BODY></HTML>")
	types := []Type{StartTag, StartTag, Text, EndTag, EndTag}
	names := []string{"HTML", "BODY", "", "BODY", "HTML"}
	if len(toks) != len(types) {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	for i := range toks {
		if toks[i].Type != types[i] {
			t.Errorf("token %d type = %v, want %v", i, toks[i].Type, types[i])
		}
		if toks[i].Name != names[i] {
			t.Errorf("token %d name = %q, want %q", i, toks[i].Name, names[i])
		}
	}
	if toks[2].Text != "hello" {
		t.Errorf("text = %q", toks[2].Text)
	}
}

func TestLineAndColumnTracking(t *testing.T) {
	src := "line one\n<P>\n  <B>x</B>\n"
	toks := tokens(t, src)
	// text, <P>, text, <B>, text, </B>, text
	p := toks[1]
	if p.Line != 2 || p.Col != 1 {
		t.Errorf("<P> at %d:%d, want 2:1", p.Line, p.Col)
	}
	b := toks[3]
	if b.Line != 3 || b.Col != 3 {
		t.Errorf("<B> at %d:%d, want 3:3", b.Line, b.Col)
	}
}

func TestMultilineTagEndLine(t *testing.T) {
	src := "<IMG\n SRC=\"x.gif\"\n ALT=\"y\">"
	toks := tokens(t, src)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if toks[0].Line != 1 || toks[0].EndLine != 3 {
		t.Errorf("lines %d-%d, want 1-3", toks[0].Line, toks[0].EndLine)
	}
	at := toks[0].Attr("alt")
	if at == nil || at.Line != 3 {
		t.Errorf("ALT attr position: %+v", at)
	}
}

func TestAttributeForms(t *testing.T) {
	toks := tokens(t, `<INPUT TYPE="text" NAME='user' SIZE=10 DISABLED>`)
	tok := toks[0]
	if len(tok.Attrs) != 4 {
		t.Fatalf("got %d attrs: %+v", len(tok.Attrs), tok.Attrs)
	}
	typ := tok.Attr("type")
	if typ.Value != "text" || typ.Quote != '"' || !typ.HasValue {
		t.Errorf("type attr = %+v", typ)
	}
	name := tok.Attr("name")
	if name.Value != "user" || name.Quote != '\'' {
		t.Errorf("name attr = %+v", name)
	}
	size := tok.Attr("size")
	if size.Value != "10" || size.Quote != 0 {
		t.Errorf("size attr = %+v", size)
	}
	dis := tok.Attr("disabled")
	if dis.HasValue {
		t.Errorf("disabled should be a flag attribute: %+v", dis)
	}
	if tok.Attr("missing") != nil {
		t.Error("Attr found nonexistent attribute")
	}
}

func TestAttrCaseInsensitiveLookup(t *testing.T) {
	toks := tokens(t, `<IMG src="x.gif">`)
	if toks[0].Attr("SRC") == nil || !toks[0].HasAttr("Src") {
		t.Error("case-insensitive attribute lookup failed")
	}
}

func TestAttrValueWithSpaces(t *testing.T) {
	toks := tokens(t, `<IMG ALT="two words here">`)
	if got := toks[0].Attr("alt").Value; got != "two words here" {
		t.Errorf("alt = %q", got)
	}
}

func TestAttrValueEqualsInValue(t *testing.T) {
	toks := tokens(t, `<A HREF="page?a=1&b=2">x</A>`)
	if got := toks[0].Attr("href").Value; got != "page?a=1&b=2" {
		t.Errorf("href = %q", got)
	}
}

func TestOddQuotesRecovery(t *testing.T) {
	// The paper's Section 4.2 case: missing closing quote; the tag
	// must be re-terminated at the first '>' and flagged.
	src := "Click <B><A HREF=\"a.html>here</B></A>\nfor more.\n"
	toks := tokens(t, src)
	var a *Token
	for i := range toks {
		if toks[i].Type == StartTag && toks[i].Name == "A" {
			a = &toks[i]
		}
	}
	if a == nil {
		t.Fatal("no <A> token found")
	}
	if !a.OddQuotes {
		t.Error("OddQuotes not flagged")
	}
	if a.Raw != `<A HREF="a.html>` {
		t.Errorf("raw = %q", a.Raw)
	}
	// Following text resumes right after the recovered tag.
	var sawHere bool
	for _, tok := range toks {
		if tok.Type == Text && strings.Contains(tok.Text, "here") {
			sawHere = true
		}
	}
	if !sawHere {
		t.Error("text after recovered tag lost")
	}
}

func TestOddQuotesLongQuoteRecovery(t *testing.T) {
	// A run-away quote spanning more than quoteMaxNewlines newlines
	// triggers recovery even when a later quote would close it.
	src := "<A HREF=\"x>one</A>\ntwo\nthree\nfour\nfive\n<IMG ALT=\"ok\" SRC=\"y.gif\">"
	toks := tokens(t, src)
	if toks[0].Type != StartTag || toks[0].Name != "A" || !toks[0].OddQuotes {
		t.Fatalf("first token = %+v", toks[0])
	}
	// The IMG tag must still be tokenized as a tag.
	found := false
	for _, tok := range toks {
		if tok.Type == StartTag && tok.Name == "IMG" && !tok.OddQuotes {
			found = true
		}
	}
	if !found {
		t.Error("IMG tag after recovery not tokenized cleanly")
	}
}

func TestUnterminatedTagAtEOF(t *testing.T) {
	toks := tokens(t, "text <A HREF=\"x.html\"")
	last := toks[len(toks)-1]
	if last.Type != StartTag || !last.Unterminated {
		t.Errorf("last token = %+v, want unterminated start tag", last)
	}
}

func TestEmptyTag(t *testing.T) {
	toks := tokens(t, "a <> b")
	var found bool
	for _, tok := range toks {
		if tok.EmptyTag {
			found = true
		}
	}
	if !found {
		t.Error("<> not flagged as empty tag")
	}
}

func TestStrayLessThanIsText(t *testing.T) {
	toks := tokens(t, "if a < b then")
	if len(toks) != 1 || toks[0].Type != Text {
		t.Fatalf("tokens = %+v", toks)
	}
	if toks[0].Text != "if a < b then" {
		t.Errorf("text = %q", toks[0].Text)
	}
}

func TestComment(t *testing.T) {
	toks := tokens(t, "<!-- a comment -->after")
	if toks[0].Type != Comment || toks[0].Text != " a comment " {
		t.Fatalf("comment token = %+v", toks[0])
	}
	if toks[1].Type != Text || toks[1].Text != "after" {
		t.Errorf("text after comment = %+v", toks[1])
	}
}

func TestUnterminatedComment(t *testing.T) {
	toks := tokens(t, "<!-- never closed")
	if len(toks) != 1 || !toks[0].Unterminated || toks[0].Type != Comment {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestCommentWithMarkupInside(t *testing.T) {
	toks := tokens(t, "<!-- <B>bold</B> -->")
	if len(toks) != 1 || toks[0].Type != Comment {
		t.Fatalf("tokens = %+v", toks)
	}
	if !strings.Contains(toks[0].Text, "<B>") {
		t.Errorf("comment text = %q", toks[0].Text)
	}
}

func TestDoctype(t *testing.T) {
	toks := tokens(t, `<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.0//EN"><HTML>`)
	if toks[0].Type != Doctype || toks[0].Name != "DOCTYPE" {
		t.Fatalf("doctype token = %+v", toks[0])
	}
	if !strings.Contains(toks[0].Text, "W3C//DTD HTML 4.0") {
		t.Errorf("doctype text = %q", toks[0].Text)
	}
	if toks[1].Type != StartTag || toks[1].Name != "HTML" {
		t.Errorf("token after doctype = %+v", toks[1])
	}
}

func TestDeclarationAndProcInst(t *testing.T) {
	toks := tokens(t, `<!ENTITY x "y"><?php echo ?>text`)
	if toks[0].Type != Declaration {
		t.Errorf("token 0 = %+v", toks[0])
	}
	if toks[1].Type != ProcInst {
		t.Errorf("token 1 = %+v", toks[1])
	}
	if toks[2].Type != Text {
		t.Errorf("token 2 = %+v", toks[2])
	}
}

func TestEndTagWithAttributes(t *testing.T) {
	toks := tokens(t, `</A HREF="x">`)
	if toks[0].Type != EndTag || toks[0].Name != "A" {
		t.Fatalf("token = %+v", toks[0])
	}
	if len(toks[0].Attrs) != 1 {
		t.Errorf("end tag attrs = %+v", toks[0].Attrs)
	}
}

func TestSlashClose(t *testing.T) {
	toks := tokens(t, `<BR/><HR /><IMG SRC="x"/>`)
	for i, tok := range toks {
		if !tok.SlashClose {
			t.Errorf("token %d (%s) SlashClose not set", i, tok.Name)
		}
	}
	img := toks[2]
	if img.Attr("src") == nil || img.Attr("src").Value != "x" {
		t.Errorf("IMG attrs = %+v", img.Attrs)
	}
	if img.HasAttr("/") {
		t.Error("trailing slash leaked into attributes")
	}
}

func TestRawTextScript(t *testing.T) {
	src := "<SCRIPT TYPE=\"text/javascript\">if (a<b && c>d) { x(\"</p>\") }</SCRIPT>after"
	toks := tokens(t, src)
	if toks[0].Type != StartTag || toks[0].Name != "SCRIPT" {
		t.Fatalf("token 0 = %+v", toks[0])
	}
	if toks[1].Type != Text || !toks[1].RawText {
		t.Fatalf("token 1 = %+v", toks[1])
	}
	if !strings.Contains(toks[1].Text, "a<b && c>d") {
		t.Errorf("script body = %q", toks[1].Text)
	}
	if toks[2].Type != EndTag || toks[2].Name != "SCRIPT" {
		t.Errorf("token 2 = %+v", toks[2])
	}
	if toks[3].Type != Text || toks[3].Text != "after" {
		t.Errorf("token 3 = %+v", toks[3])
	}
}

func TestRawTextCaseInsensitiveClose(t *testing.T) {
	toks := tokens(t, "<style>h1 { color: red }</STYLE>x")
	if toks[1].Type != Text || !toks[1].RawText {
		t.Fatalf("token 1 = %+v", toks[1])
	}
	if toks[2].Type != EndTag || toks[2].Name != "STYLE" {
		t.Errorf("token 2 = %+v", toks[2])
	}
}

func TestRawTextUnclosedRunsToEOF(t *testing.T) {
	toks := tokens(t, "<script>var x = 1; <b>not a tag</b>")
	if len(toks) != 2 {
		t.Fatalf("tokens = %+v", toks)
	}
	if !toks[1].RawText || !strings.Contains(toks[1].Text, "<b>not a tag</b>") {
		t.Errorf("raw text = %+v", toks[1])
	}
}

func TestXMPIsRawText(t *testing.T) {
	toks := tokens(t, "<XMP><html> literally </XMP>")
	if toks[1].Type != Text || !toks[1].RawText || !strings.Contains(toks[1].Text, "<html>") {
		t.Errorf("XMP content = %+v", toks[1])
	}
}

func TestTagNamePreservesCase(t *testing.T) {
	toks := tokens(t, "<TiTlE></tItLe>")
	if toks[0].Name != "TiTlE" || toks[1].Name != "tItLe" {
		t.Errorf("names = %q, %q", toks[0].Name, toks[1].Name)
	}
}

func TestUnterminatedAttrQuote(t *testing.T) {
	// Quote closes at next line's quote within limits: the tokenizer
	// accepts it (SGML allows multi-line values) without flags.
	toks := tokens(t, "<IMG ALT=\"spans\nlines\" SRC=\"x\">")
	if toks[0].OddQuotes {
		t.Error("legal multi-line value flagged as odd quotes")
	}
	if got := toks[0].Attr("alt").Value; got != "spans\nlines" {
		t.Errorf("alt = %q", got)
	}
}

// TestRawConcatenationInvariant: concatenating every token's Raw must
// reproduce the source exactly — the tokenizer consumes all input.
func TestRawConcatenationInvariant(t *testing.T) {
	sources := []string{
		"",
		"plain",
		"<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>x</BODY></HTML>",
		"Click <B><A HREF=\"a.html>here</B></A>\nfor more details.\n",
		"<!-- c --><p>x<br/>y</p><script>a<b</script>done",
		"a <> b < c &amp; <!DOCTYPE HTML>",
		"<A HREF=\"unterminated",
	}
	for _, src := range sources {
		var b strings.Builder
		for _, tok := range Tokenize(src) {
			b.WriteString(tok.Raw)
		}
		if b.String() != src {
			t.Errorf("raw concat mismatch:\n src %q\n got %q", src, b.String())
		}
	}
}

// TestTokenizerNeverPanics drives the tokenizer with arbitrary input
// and checks structural invariants.
func TestTokenizerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		var b strings.Builder
		lastLine := 0
		for _, tok := range toks {
			if tok.Line < 1 || tok.Col < 1 || tok.EndLine < tok.Line {
				return false
			}
			if tok.Line < lastLine {
				return false // positions must be monotonic
			}
			lastLine = tok.Line
			b.WriteString(tok.Raw)
		}
		return b.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	names := map[Type]string{
		Text: "text", StartTag: "start-tag", EndTag: "end-tag",
		Comment: "comment", Doctype: "doctype", Declaration: "declaration",
		ProcInst: "proc-inst", Type(99): "unknown",
	}
	for ty, want := range names {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(ty), ty.String(), want)
		}
	}
}

// TestTokenLowerInterned verifies tokens carry the lower-case tag and
// attribute names the checker keys on, for every case variant.
func TestTokenLowerInterned(t *testing.T) {
	toks := Tokenize(`<IMG SRC="x.gif" Alt="y"><p CLASS="z"></P>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if toks[0].Lower != "img" || toks[1].Lower != "p" || toks[2].Lower != "p" {
		t.Errorf("tag Lower = %q, %q, %q", toks[0].Lower, toks[1].Lower, toks[2].Lower)
	}
	if toks[0].Attrs[0].Lower != "src" || toks[0].Attrs[1].Lower != "alt" {
		t.Errorf("attr Lower = %q, %q", toks[0].Attrs[0].Lower, toks[0].Attrs[1].Lower)
	}
	// Unknown names still get a correct lower-case form.
	toks = Tokenize(`<CUSTOMWIDGET DATA-Thing="v">`)
	if toks[0].Lower != "customwidget" || toks[0].Attrs[0].Lower != "data-thing" {
		t.Errorf("unknown-name Lower = %q / %q", toks[0].Lower, toks[0].Attrs[0].Lower)
	}
}

// TestRawTextMixedCaseCloseAtEOF exercises the indexFold scan edges:
// a mixed-case closing tag, and raw text whose closing tag sits at the
// very end of the input.
func TestRawTextMixedCaseCloseAtEOF(t *testing.T) {
	toks := Tokenize("<script>var s = 1;</ScRiPt>")
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if !toks[1].RawText || toks[1].Text != "var s = 1;" {
		t.Errorf("raw token = %+v", toks[1])
	}
	if toks[2].Type != EndTag || toks[2].Lower != "script" {
		t.Errorf("close token = %+v", toks[2])
	}

	// Needle truncated at EOF must not match: raw text runs out.
	toks = Tokenize("<script>var s = 1;</scrip")
	if len(toks) != 2 || toks[1].Text != "var s = 1;</scrip" {
		t.Errorf("truncated close: %+v", toks)
	}
}

// TestTokenizerReset verifies a reused tokenizer produces the same
// stream a fresh one does, including line positions and raw-text state
// left over from a previous document.
func TestTokenizerReset(t *testing.T) {
	docs := []string{
		"<HTML>\n<BODY>\n<P>one</P>\n</BODY>\n</HTML>",
		"<script>unclosed raw text",
		"<P>plain\ntext</P>",
	}
	tz := New("")
	for _, doc := range docs {
		want := Tokenize(doc)
		tz.Reset(doc)
		var got []Token
		var tok Token
		for tz.NextInto(&tok) {
			cp := tok
			if len(cp.Attrs) > 0 {
				cp.Attrs = append([]Attr(nil), cp.Attrs...)
			}
			got = append(got, cp)
		}
		if len(got) != len(want) {
			t.Fatalf("doc %q: got %d tokens, want %d", doc, len(got), len(want))
		}
		for i := range got {
			if got[i].Type != want[i].Type || got[i].Raw != want[i].Raw ||
				got[i].Line != want[i].Line || got[i].Col != want[i].Col {
				t.Errorf("doc %q token %d: got %+v, want %+v", doc, i, got[i], want[i])
			}
		}
	}
}

// TestTokenizeCopiesAttrs verifies Tokenize returns tokens whose Attrs
// survive further scanning (they must not alias the reused buffer).
func TestTokenizeCopiesAttrs(t *testing.T) {
	toks := Tokenize(`<A HREF="one"><B></B><A HREF="two">`)
	if toks[0].Attrs[0].Value != "one" || toks[3].Attrs[0].Value != "two" {
		t.Errorf("attrs clobbered: %+v / %+v", toks[0].Attrs, toks[3].Attrs)
	}
}

// TestDoctypeExoticWhitespace pins DOCTYPE classification for ASCII
// whitespace variants between "<!" and the keyword.
func TestDoctypeExoticWhitespace(t *testing.T) {
	for _, src := range []string{
		"<!DOCTYPE HTML>", "<! DOCTYPE HTML>", "<!\tDOCTYPE HTML>",
		"<!\vDOCTYPE HTML>", "<!\fDOCTYPE\vHTML>",
	} {
		toks := Tokenize(src)
		if len(toks) != 1 || toks[0].Type != Doctype {
			t.Errorf("%q: got %v, want Doctype", src, toks[0].Type)
		}
	}
	if toks := Tokenize("<!DOCTYPES HTML>"); toks[0].Type != Declaration {
		t.Errorf("DOCTYPES prefix wrongly classified as Doctype")
	}
}
