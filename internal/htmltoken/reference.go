//go:build tokendiff

package htmltoken

import (
	"strings"

	"weblint/internal/ascii"
	"weblint/internal/bytestr"
)

// ReferenceTokenizer is the pre-table-driven tokenizer: per-byte
// scanning loops with spelled-out predicate calls, preserved as the
// differential oracle for the SWAR/byte-class rewrite. It is compiled
// only under the tokendiff build tag, where the differential tests
// assert that both implementations produce byte-identical token
// streams and weblint-bench uses it as the "before" measurement in
// BENCH_tokenizer.json.
//
// The one deliberate stream change of the rewrite — dropping the
// zero-length raw-text token that used to be emitted for
// <script></script> — is mirrored here (see refNextRaw), so the two
// streams are comparable token for token.
type ReferenceTokenizer struct {
	src string
	pos int

	lineStarts []int

	rawUntil  string
	rawNeedle string

	attrBuf []Attr

	// RawTextElements configures which elements switch the tokenizer
	// into raw-text mode. Defaults to DefaultRawTextElements.
	RawTextElements map[string]bool
}

// NewReference returns a ReferenceTokenizer over src.
func NewReference(src string) *ReferenceTokenizer {
	t := &ReferenceTokenizer{RawTextElements: DefaultRawTextElements}
	t.Reset(src)
	return t
}

// ReferenceTokenize scans src with the reference tokenizer and returns
// all tokens, mirroring Tokenize.
func ReferenceTokenize(src string) []Token {
	tz := NewReference(src)
	var out []Token
	var tok Token
	for tz.NextInto(&tok) {
		cp := tok
		if len(tok.Attrs) > 0 {
			cp.Attrs = append([]Attr(nil), tok.Attrs...)
		}
		out = append(out, cp)
	}
	return out
}

// Reset re-arms the tokenizer over a new document.
func (t *ReferenceTokenizer) Reset(src string) {
	t.src = src
	t.pos = 0
	t.rawUntil = ""
	t.rawNeedle = ""
	t.lineStarts = append(t.lineStarts[:0], 0)
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			t.lineStarts = append(t.lineStarts, i+1)
		}
	}
}

// ResetBytes is Reset over a byte slice, without copying it.
func (t *ReferenceTokenizer) ResetBytes(src []byte) {
	t.Reset(bytestr.String(src))
}

func (t *ReferenceTokenizer) position(off int) (line, col int) {
	lo, hi := 0, len(t.lineStarts)
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.lineStarts[mid] <= off {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + 1, off - t.lineStarts[lo] + 1
}

func (t *ReferenceTokenizer) lineAt(off int) int {
	l, _ := t.position(off)
	return l
}

// NextInto scans the next token into *tok, returning false at end of
// input.
func (t *ReferenceTokenizer) NextInto(tok *Token) bool {
	if t.pos >= len(t.src) {
		return false
	}
	*tok = Token{}
	if t.rawUntil != "" && t.nextRaw(tok) {
		return true
	}
	if t.src[t.pos] == '<' && t.startsMarkup(t.pos) {
		t.nextMarkup(tok)
		return true
	}
	t.nextText(tok)
	return true
}

func (t *ReferenceTokenizer) startsMarkup(off int) bool {
	if off+1 >= len(t.src) {
		return false
	}
	c := t.src[off+1]
	return refIsNameStart(c) || c == '/' || c == '!' || c == '?' || c == '>'
}

func (t *ReferenceTokenizer) nextText(tok *Token) {
	start := t.pos
	i := start
	for i < len(t.src) {
		if t.src[i] == '<' && i > start && t.startsMarkup(i) {
			break
		}
		i++
	}
	t.pos = i
	line, col := t.position(start)
	tok.Type = Text
	tok.Text = t.src[start:i]
	tok.Raw = t.src[start:i]
	tok.Line = line
	tok.Col = col
	tok.Offset = start
	tok.EndLine = t.lineAt(max(start, i-1))
}

// nextRaw consumes raw text until the closing tag of the raw element.
// It reports false — emitting nothing — when the closing tag starts
// immediately, so the stream never contains a zero-length token.
func (t *ReferenceTokenizer) nextRaw(tok *Token) bool {
	start := t.pos
	idx := ascii.IndexFold(t.src[start:], t.rawNeedle)
	t.rawUntil = ""
	t.rawNeedle = ""
	if idx == 0 {
		return false
	}
	end := len(t.src)
	if idx > 0 {
		end = start + idx
	}
	t.pos = end
	line, col := t.position(start)
	tok.Type = Text
	tok.Text = t.src[start:end]
	tok.Raw = t.src[start:end]
	tok.Line = line
	tok.Col = col
	tok.Offset = start
	tok.EndLine = t.lineAt(max(start, end-1))
	tok.RawText = true
	return true
}

func (t *ReferenceTokenizer) nextMarkup(tok *Token) {
	start := t.pos
	line, col := t.position(start)
	tok.Offset = start
	next := t.src[start+1]

	switch {
	case next == '>': // "<>"
		t.pos = start + 2
		tok.Type = StartTag
		tok.Raw = t.src[start:t.pos]
		tok.Line, tok.Col, tok.EndLine = line, col, line
		tok.EmptyTag = true
	case next == '!':
		if strings.HasPrefix(t.src[start:], "<!--") {
			t.nextComment(tok, start, line, col)
			return
		}
		t.nextDeclaration(tok, start, line, col)
	case next == '?':
		t.nextProcInst(tok, start, line, col)
	case next == '/':
		t.nextTag(tok, start, line, col, true)
	default:
		t.nextTag(tok, start, line, col, false)
	}
}

func (t *ReferenceTokenizer) nextComment(tok *Token, start, line, col int) {
	bodyStart := start + 4 // past "<!--"
	idx := strings.Index(t.src[bodyStart:], "-->")
	tok.Type, tok.Line, tok.Col = Comment, line, col
	if idx < 0 {
		tok.Text = t.src[bodyStart:]
		tok.Raw = t.src[start:]
		tok.Unterminated = true
		t.pos = len(t.src)
	} else {
		end := bodyStart + idx + 3
		tok.Text = t.src[bodyStart : bodyStart+idx]
		tok.Raw = t.src[start:end]
		t.pos = end
	}
	tok.EndLine = t.lineAt(max(start, t.pos-1))
}

func (t *ReferenceTokenizer) nextDeclaration(tok *Token, start, line, col int) {
	end, odd, unterminated := t.scanToGT(start + 2)
	body := t.src[start+2 : end]
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}
	tok.Type, tok.Text, tok.Raw = Declaration, body, t.src[start:t.pos]
	tok.Line, tok.Col, tok.EndLine = line, col, t.lineAt(max(start, t.pos-1))
	tok.OddQuotes, tok.Unterminated = odd, unterminated
	if rest := strings.TrimLeft(body, " \t\r\n\f\v"); ascii.HasPrefixFold(rest, "doctype") &&
		(len(rest) == len("doctype") || refIsSpace(rest[len("doctype")]) || rest[len("doctype")] == '\v') {
		tok.Type = Doctype
		tok.Name = "DOCTYPE"
	}
}

func (t *ReferenceTokenizer) nextProcInst(tok *Token, start, line, col int) {
	end, _, unterminated := t.scanToGT(start + 2)
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}
	tok.Type, tok.Text, tok.Raw = ProcInst, t.src[start+2:end], t.src[start:t.pos]
	tok.Line, tok.Col, tok.EndLine = line, col, t.lineAt(max(start, t.pos-1))
	tok.Unterminated = unterminated
}

func (t *ReferenceTokenizer) nextTag(tok *Token, start, line, col int, closing bool) {
	nameStart := start + 1
	if closing {
		nameStart++
	}
	nameEnd := nameStart
	for nameEnd < len(t.src) && refIsNameChar(t.src[nameEnd]) {
		nameEnd++
	}
	name := t.src[nameStart:nameEnd]
	lower := internLower(name)

	end, odd, unterminated := t.scanToGT(nameEnd)
	body := t.src[nameEnd:end]
	t.pos = end
	if !unterminated {
		t.pos = end + 1
	}

	tok.Type, tok.Name, tok.Lower = StartTag, name, lower
	tok.Raw = t.src[start:t.pos]
	tok.Line, tok.Col, tok.EndLine = line, col, t.lineAt(max(start, t.pos-1))
	tok.OddQuotes, tok.Unterminated = odd, unterminated
	if closing {
		tok.Type = EndTag
	}

	trimmed := strings.TrimRight(body, " \t\r\n")
	if strings.HasSuffix(trimmed, "/") && !strings.HasSuffix(trimmed, "=/") {
		tok.SlashClose = true
		body = strings.TrimSuffix(trimmed, "/")
	}

	tok.Attrs = t.parseAttrs(body, nameEnd)

	if tok.Type == StartTag && !unterminated && t.RawTextElements[lower] {
		t.rawUntil = lower
		t.rawNeedle = rawNeedleFor(lower)
	}
}

func (t *ReferenceTokenizer) scanToGT(off int) (end int, oddQuotes, unterminated bool) {
	var quote byte
	firstGT := -1
	quoteStart := 0
	quoteNewlines := 0

	recover := func() (int, bool, bool) {
		if firstGT >= 0 {
			return firstGT, true, false
		}
		for j := off; j < len(t.src); j++ {
			if t.src[j] == '>' {
				return j, true, false
			}
		}
		return len(t.src), true, true
	}

	for i := off; i < len(t.src); i++ {
		c := t.src[i]
		if quote != 0 {
			switch {
			case c == quote:
				quote = 0
			case c == '>':
				if firstGT < 0 {
					firstGT = i
				}
				if i-quoteStart > quoteMaxBytes {
					return recover()
				}
			case c == '\n':
				quoteNewlines++
				if quoteNewlines > quoteMaxNewlines {
					return recover()
				}
			}
			continue
		}
		switch c {
		case '"', '\'':
			quote = c
			quoteStart = i
			quoteNewlines = 0
		case '>':
			return i, false, false
		}
	}
	if quote != 0 {
		return recover()
	}
	return len(t.src), false, true
}

func (t *ReferenceTokenizer) parseAttrs(body string, base int) []Attr {
	attrs := t.attrBuf[:0]
	i := 0
	for i < len(body) {
		for i < len(body) && refIsSpace(body[i]) {
			i++
		}
		if i >= len(body) {
			break
		}
		nameStart := i
		for i < len(body) && !refIsSpace(body[i]) && body[i] != '=' {
			i++
		}
		name := body[nameStart:i]
		if name == "" { // stray '=' with no name
			i++
			continue
		}
		line, col := t.position(base + nameStart)
		attr := Attr{Name: name, Lower: internLower(name), Line: line, Col: col, Offset: base + nameStart}

		j := i
		for j < len(body) && refIsSpace(body[j]) {
			j++
		}
		if j < len(body) && body[j] == '=' {
			j++
			for j < len(body) && refIsSpace(body[j]) {
				j++
			}
			attr.HasValue = true
			if j < len(body) && (body[j] == '"' || body[j] == '\'') {
				attr.Quote = body[j]
				j++
				valStart := j
				for j < len(body) && body[j] != attr.Quote {
					j++
				}
				attr.Value = body[valStart:j]
				attr.ValOffset = base + valStart
				if j < len(body) {
					j++
				} else {
					attr.UnterminatedQuote = true
				}
			} else {
				valStart := j
				for j < len(body) && !refIsSpace(body[j]) {
					j++
				}
				attr.Value = body[valStart:j]
				attr.ValOffset = base + valStart
			}
			i = j
		}
		attrs = append(attrs, attr)
	}
	t.attrBuf = attrs[:0]
	return attrs
}

func refIsNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func refIsNameChar(c byte) bool {
	return refIsNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.' || c == ':' || c == '_'
}

func refIsSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}
