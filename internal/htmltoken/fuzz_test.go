package htmltoken

import (
	"os"
	"path/filepath"
	"testing"
)

// addSuiteSeeds feeds every sample of the lint test suite to the
// fuzzer as seed input, so fuzzing starts from realistic HTML with
// known malformations rather than from random bytes alone.
func addSuiteSeeds(f *testing.F) {
	f.Helper()
	dir := filepath.Join("..", "lint", "testdata", "suite")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("suite testdata: %v", err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".html" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
		n++
	}
	if n < 25 {
		f.Fatalf("only %d suite seeds", n)
	}
}

// FuzzTokenize: the tokenizer never panics, NextInto and TokenizeBytes
// agree token for token, and the token stream partitions the source
// exactly (every byte belongs to exactly one token, offsets line up).
func FuzzTokenize(f *testing.F) {
	addSuiteSeeds(f)
	f.Add("<a href='x>y</a <b><script>...</scr")
	f.Add("<!DOCTYPE html><!-- -- --><p&<>")
	f.Add("<script></script><SCRIPT TYPE=\"a\">var x=1;")
	f.Add("<script></scriptfoo>x<style></style>")
	f.Fuzz(func(t *testing.T, src string) {
		streamed := collectNextInto(src)
		batch := Tokenize(src)
		bytesBatch := TokenizeBytes([]byte(src))

		if len(streamed) != len(batch) || len(batch) != len(bytesBatch) {
			t.Fatalf("token counts differ: NextInto=%d Tokenize=%d TokenizeBytes=%d",
				len(streamed), len(batch), len(bytesBatch))
		}
		for i := range batch {
			assertTokensEqual(t, i, streamed[i], batch[i])
			assertTokensEqual(t, i, batch[i], bytesBatch[i])
		}

		pos := 0
		for i, tok := range batch {
			if tok.Offset != pos {
				t.Fatalf("token %d (%v): offset %d, want %d", i, tok.Type, tok.Offset, pos)
			}
			if tok.Raw != src[pos:pos+len(tok.Raw)] {
				t.Fatalf("token %d: Raw does not alias the source at its offset", i)
			}
			if len(tok.Raw) == 0 {
				t.Fatalf("token %d: empty Raw would stall the stream", i)
			}
			pos += len(tok.Raw)
			for _, at := range tok.Attrs {
				if at.Offset < 0 || at.Offset+len(at.Name) > len(src) {
					t.Fatalf("token %d: attr %q name span out of bounds", i, at.Name)
				}
				if at.HasValue && (at.ValOffset < 0 || at.ValOffset+len(at.Value) > len(src)) {
					t.Fatalf("token %d: attr %q value span out of bounds", i, at.Name)
				}
			}
		}
		if pos != len(src) {
			t.Fatalf("tokens cover %d of %d bytes", pos, len(src))
		}
	})
}

// collectNextInto drives the streaming API, copying out the per-token
// state that the next NextInto call is allowed to clobber.
func collectNextInto(src string) []Token {
	tz := New(src)
	var out []Token
	var tok Token
	for tz.NextInto(&tok) {
		cp := tok
		if len(tok.Attrs) > 0 {
			cp.Attrs = append([]Attr(nil), tok.Attrs...)
		}
		out = append(out, cp)
	}
	return out
}

func assertTokensEqual(t *testing.T, i int, a, b Token) {
	t.Helper()
	if a.Type != b.Type || a.Name != b.Name || a.Lower != b.Lower ||
		a.Text != b.Text || a.Raw != b.Raw ||
		a.Line != b.Line || a.Col != b.Col || a.Offset != b.Offset || a.EndLine != b.EndLine ||
		a.RawText != b.RawText || a.OddQuotes != b.OddQuotes ||
		a.Unterminated != b.Unterminated || a.SlashClose != b.SlashClose || a.EmptyTag != b.EmptyTag {
		t.Fatalf("token %d differs:\n%+v\nvs\n%+v", i, a, b)
	}
	if len(a.Attrs) != len(b.Attrs) {
		t.Fatalf("token %d: attr counts differ: %d vs %d", i, len(a.Attrs), len(b.Attrs))
	}
	for j := range a.Attrs {
		if a.Attrs[j] != b.Attrs[j] {
			t.Fatalf("token %d attr %d differs: %+v vs %+v", i, j, a.Attrs[j], b.Attrs[j])
		}
	}
}
