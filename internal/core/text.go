package core

import (
	"fmt"
	"strings"

	"weblint/internal/entity"
	"weblint/internal/htmltoken"
	"weblint/internal/plugin"
	"weblint/internal/warn"
)

// text handles a document text token: content bookkeeping for the
// enclosing elements, placement checks, and entity / metacharacter
// scanning.
func (c *Checker) text(tok *htmltoken.Token) {
	t := c.top()

	if tok.RawText {
		// SCRIPT/STYLE content: optionally check it is hidden in a
		// comment for pre-SCRIPT browsers; no entity checks apply.
		if t != nil {
			t.content = true
			body := strings.TrimSpace(tok.Text)
			if body != "" && !strings.HasPrefix(body, "<!--") {
				c.emit("unhidden-script", tok.Line, t.display)
			}
			// Content plugins (Section 6.1): hand the raw content
			// to a checker claiming this element.
			if p := plugin.ForElement(c.opts.Plugins, t.name); p != nil {
				p.Check(tok.Text, tok.Line, func(id string, line int, args ...any) {
					// The emitter's formatter takes string/int/bool
					// only; stringify anything else (error, Stringer,
					// float, ...) here on the cold plugin path so
					// third-party checkers keep Report's fmt-style
					// argument behaviour. Stringify into a copy: a
					// spread slice shares the caller's backing array,
					// which the plugin may still own and reuse.
					needCopy := false
					for _, a := range args {
						switch a.(type) {
						case string, int, bool:
						default:
							needCopy = true
						}
					}
					if needCopy {
						cp := make([]any, len(args))
						for i, a := range args {
							switch a.(type) {
							case string, int, bool:
								cp[i] = a
							default:
								cp[i] = fmt.Sprint(a)
							}
						}
						args = cp
					}
					c.emit(id, line, args...)
				})
			}
		}
		return
	}

	// Accumulate text into the nearest TITLE, A or heading for their
	// content checks (even pure whitespace matters to the whitespace
	// style checks). The accum index stack tracks exactly those open
	// elements, so this is O(1) per token — scanning the whole element
	// stack here made error-dense documents with deep unclosed
	// containers superlinear.
	if n := len(c.accum); n > 0 {
		o := c.stack[c.accum[n-1]]
		o.text = append(o.text, tok.Text...)
	}

	if strings.TrimSpace(tok.Text) == "" {
		return
	}

	if t != nil {
		t.content = true
		if t.name == "html" || t.name == "head" {
			c.emit("bad-text-context", tok.Line, t.display)
		}
	}

	c.checkEntities(tok.Text, tok.Offset, tok.Line, true)
}

// checkEntities scans text for entity references, reporting unknown
// and unterminated references. When inText is true, bare ampersands
// and stray '<' characters are additionally reported as unescaped
// metacharacters, with fixes rewriting the byte as an entity; base is
// the byte offset of text in the document (pass -1 when unknown, e.g.
// for attribute values, where no fixes are attached anyway).
func (c *Checker) checkEntities(text string, base, line int, inText bool) {
	// Each pass reports findings at ascending offsets, so a monotone
	// line cursor turns line computation into ONE forward newline scan
	// per pass — counting newlines from offset zero per finding made a
	// multi-KiB run with thousands of bare metacharacters quadratic.
	if strings.IndexByte(text, '&') >= 0 {
		lc := lineCursor{text: text}
		entity.ScanFunc(text, func(ref entity.Ref) {
			switch {
			case ref.Name == "":
				if inText {
					var fix *warn.Fix
					if base >= 0 {
						fix = c.guardFix(metacharFix(base+ref.Offset, "&amp;"))
					}
					c.emitFix("metacharacter", line+lc.lineAt(ref.Offset), fix, "&", "&amp;")
				}
			case !ref.Terminated:
				c.emit("unterminated-entity", line+lc.lineAt(ref.Offset), ref.Name)
			case ref.Numeric:
				// Numeric references are always structurally fine here.
			case !entity.KnownIn(ref.Name, c.spec.HTML40):
				c.emit("unknown-entity", line+lc.lineAt(ref.Offset), ref.Name)
			}
		})
	}
	if inText {
		lc := lineCursor{text: text}
		for i := 0; i < len(text); i++ {
			k := strings.IndexByte(text[i:], '<')
			if k < 0 {
				break
			}
			i += k
			var fix *warn.Fix
			if base >= 0 {
				fix = c.guardFix(metacharFix(base+i, "&lt;"))
			}
			c.emitFix("metacharacter", line+lc.lineAt(i), fix, "<", "&lt;")
		}
	}
}

// lineCursor converts ascending byte offsets within one text run into
// newline counts incrementally: the run is walked forward exactly
// once however many findings it produces. Offsets passed to lineAt
// must be non-decreasing.
type lineCursor struct {
	text string
	pos  int
	line int
}

// lineAt returns the number of newlines in the run before offset.
func (lc *lineCursor) lineAt(offset int) int {
	if offset > len(lc.text) {
		offset = len(lc.text)
	}
	if offset > lc.pos {
		lc.line += strings.Count(lc.text[lc.pos:offset], "\n")
		lc.pos = offset
	}
	return lc.line
}
