package core

import (
	"fmt"
	"strings"

	"weblint/internal/entity"
	"weblint/internal/htmltoken"
	"weblint/internal/plugin"
	"weblint/internal/warn"
)

// text handles a document text token: content bookkeeping for the
// enclosing elements, placement checks, and entity / metacharacter
// scanning.
func (c *Checker) text(tok *htmltoken.Token) {
	t := c.top()

	if tok.RawText {
		// SCRIPT/STYLE content: optionally check it is hidden in a
		// comment for pre-SCRIPT browsers; no entity checks apply.
		if t != nil {
			t.content = true
			body := strings.TrimSpace(tok.Text)
			if body != "" && !strings.HasPrefix(body, "<!--") {
				c.emit("unhidden-script", tok.Line, t.display)
			}
			// Content plugins (Section 6.1): hand the raw content
			// to a checker claiming this element.
			if p := plugin.ForElement(c.opts.Plugins, t.name); p != nil {
				p.Check(tok.Text, tok.Line, func(id string, line int, args ...any) {
					// The emitter's formatter takes string/int/bool
					// only; stringify anything else (error, Stringer,
					// float, ...) here on the cold plugin path so
					// third-party checkers keep Report's fmt-style
					// argument behaviour. Stringify into a copy: a
					// spread slice shares the caller's backing array,
					// which the plugin may still own and reuse.
					needCopy := false
					for _, a := range args {
						switch a.(type) {
						case string, int, bool:
						default:
							needCopy = true
						}
					}
					if needCopy {
						cp := make([]any, len(args))
						for i, a := range args {
							switch a.(type) {
							case string, int, bool:
								cp[i] = a
							default:
								cp[i] = fmt.Sprint(a)
							}
						}
						args = cp
					}
					c.emit(id, line, args...)
				})
			}
		}
		return
	}

	// Accumulate text into the nearest TITLE, A or heading for their
	// content checks (even pure whitespace matters to the whitespace
	// style checks).
	for i := len(c.stack) - 1; i >= 0; i-- {
		n := c.stack[i].name
		if n == "title" || n == "a" || headingLevel(n) > 0 {
			c.stack[i].text = append(c.stack[i].text, tok.Text...)
			break
		}
	}

	if strings.TrimSpace(tok.Text) == "" {
		return
	}

	if t != nil {
		t.content = true
		if t.name == "html" || t.name == "head" {
			c.emit("bad-text-context", tok.Line, t.display)
		}
	}

	c.checkEntities(tok.Text, tok.Offset, tok.Line, true)
}

// checkEntities scans text for entity references, reporting unknown
// and unterminated references. When inText is true, bare ampersands
// and stray '<' characters are additionally reported as unescaped
// metacharacters, with fixes rewriting the byte as an entity; base is
// the byte offset of text in the document (pass -1 when unknown, e.g.
// for attribute values, where no fixes are attached anyway).
func (c *Checker) checkEntities(text string, base, line int, inText bool) {
	for _, ref := range entity.Scan(text) {
		switch {
		case ref.Name == "":
			if inText {
				var fix *warn.Fix
				if base >= 0 {
					fix = c.guardFix(metacharFix(base+ref.Offset, "&amp;"))
				}
				c.emitFix("metacharacter", line+lineOffset(text, ref.Offset), fix, "&", "&amp;")
			}
		case !ref.Terminated:
			c.emit("unterminated-entity", line+lineOffset(text, ref.Offset), ref.Name)
		case ref.Numeric:
			// Numeric references are always structurally fine here.
		case !entity.KnownIn(ref.Name, c.spec.HTML40):
			c.emit("unknown-entity", line+lineOffset(text, ref.Offset), ref.Name)
		}
	}
	if inText {
		for i := 0; i < len(text); i++ {
			if text[i] == '<' {
				var fix *warn.Fix
				if base >= 0 {
					fix = c.guardFix(metacharFix(base+i, "&lt;"))
				}
				c.emitFix("metacharacter", line+lineOffset(text, i), fix, "<", "&lt;")
			}
		}
	}
}

// lineOffset counts the newlines in text before offset, so messages in
// multi-line text tokens point at the right line.
func lineOffset(text string, offset int) int {
	n := 0
	for i := 0; i < offset && i < len(text); i++ {
		if text[i] == '\n' {
			n++
		}
	}
	return n
}
