package core

import (
	"strings"
	"testing"
)

// The tokenizer emits no token for an empty raw-text body
// (<script></script>); the pendingRawText compensation must keep the
// checker's verdicts identical to when a zero-length raw token marked
// the element as having content.

func TestEmptyScriptIsNotEmptyContainer(t *testing.T) {
	msgs := checkAll(t, valid(`<SCRIPT TYPE="text/javascript"></SCRIPT>`), Options{})
	forbidID(t, msgs, "empty-container")
	// The empty body is also not an unhidden script.
	forbidID(t, msgs, "unhidden-script")
}

func TestEmptyContainerStillReportedForOrdinaryElements(t *testing.T) {
	msgs := checkAll(t, valid(`<P></P>`), Options{})
	requireID(t, msgs, "empty-container")
}

func TestScriptBodyAtEOFGetsNoCloseFix(t *testing.T) {
	// A SCRIPT cut off at EOF (no body, no close tag) is contentless:
	// unclosed-element is reported without the EOF insert-close fix,
	// exactly as when the zero-length token was never produced.
	msgs := checkAll(t, `<SCRIPT TYPE="text/javascript">`, Options{})
	m := requireID(t, msgs, "unclosed-element")
	if !strings.Contains(m.Text, "SCRIPT") {
		t.Errorf("unclosed-element text = %q", m.Text)
	}
	if m.Fix != nil {
		t.Errorf("contentless SCRIPT at EOF got a close fix: %+v", m.Fix)
	}
	// With a body, the fix comes back.
	msgs = checkAll(t, `<SCRIPT TYPE="text/javascript">var x=1;`, Options{})
	m = requireID(t, msgs, "unclosed-element")
	if m.Fix == nil {
		t.Error("SCRIPT with body at EOF lost its close fix")
	}
}

func TestEmptyRawBodyFalseClosePrefix(t *testing.T) {
	// </SCRIPTX> ends raw mode but closes nothing; the SCRIPT element
	// still counts as having content (the close attempt arrived), and
	// the stray close is diagnosed, not the container emptiness.
	msgs := checkAll(t, valid(`<SCRIPT TYPE="text/javascript"></SCRIPTX></SCRIPT>`), Options{})
	forbidID(t, msgs, "empty-container")
}
