package core

import (
	"strings"
	"testing"

	"weblint/internal/htmltoken"
	"weblint/internal/warn"
)

// stateHeavyDocs exercise every piece of cross-token checker state:
// once-only tracking, ids, anchors, meta names, heading order, the
// secondary (pending) stack, accumulated TITLE/anchor text, and inline
// directives.
var stateHeavyDocs = []string{
	`<!DOCTYPE HTML PUBLIC "html"><HTML><HEAD><TITLE>first</TITLE>
<META NAME="description" CONTENT="x"></HEAD><BODY>
<H1>one</H1><H3>skip</H3>
<P ID="p1">a<P ID="p1">b
<A NAME="top">x</A><A NAME="top">y</A>
<B><A HREF="z.html">overlap</B></A>
<!-- weblint: disable img-alt --><IMG SRC="i.gif">
</BODY></HTML>`,
	`<HTML><HEAD></HEAD><BODY>
<P ID="p1">not a duplicate in this document
<A NAME="top">not a duplicate either</A>
<H1>fresh heading state</H1>
<IMG SRC="i.gif">
</BODY></HTML>`,
	`<P>tiny fragment`,
}

func checkWith(t *testing.T, c *Checker, src string) []warn.Message {
	t.Helper()
	em := warn.NewEmitter(nil)
	if c == nil {
		c = New(em, Options{Filename: "t.html"})
	} else {
		c.Reset(em, Options{Filename: "t.html"})
	}
	c.Run(htmltoken.New(src))
	return em.CopyMessages()
}

// TestCheckerResetMatchesFresh guards the pooled-checker invariant: a
// Reset checker must behave exactly like a freshly constructed one,
// in every document order. Any Checker field added without a matching
// Reset line leaks one document's state into the next and fails here.
func TestCheckerResetMatchesFresh(t *testing.T) {
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 1}, {0, 0, 0}}
	for _, order := range orders {
		reused := New(warn.NewEmitter(nil), Options{})
		for _, di := range order {
			src := stateHeavyDocs[di]
			want := checkWith(t, nil, src)
			got := checkWith(t, reused, src)
			if len(got) != len(want) {
				t.Fatalf("order %v doc %d: reused checker produced %d messages, fresh %d\n got: %v\nwant: %v",
					order, di, len(got), len(want), idList(got), idList(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || got[i].Line != want[i].Line || got[i].Text != want[i].Text {
					t.Errorf("order %v doc %d msg %d: reused %+v, fresh %+v", order, di, i, got[i], want[i])
				}
			}
		}
	}
}

func idList(ms []warn.Message) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.ID
	}
	return out
}

// TestAnchorWhitespaceSemantics pins the textual checks to their
// historical whitespace behaviour (strings.TrimSpace / strings.Fields),
// which the zero-copy fast path must not change: form feeds and other
// exotic whitespace still normalise, and here-anchor still matches.
func TestAnchorWhitespaceSemantics(t *testing.T) {
	check := func(src string) map[string]bool {
		em := warn.NewEmitter(warn.AllEnabled())
		Check(src, em, Options{Filename: "t.html"})
		got := map[string]bool{}
		for _, m := range em.Messages() {
			got[m.ID] = true
		}
		return got
	}
	base := "<!DOCTYPE HTML PUBLIC \"html\"><HTML><HEAD><TITLE>t</TITLE>" +
		"<META NAME=\"description\" CONTENT=\"x\"><META NAME=\"keywords\" CONTENT=\"x\">" +
		"</HEAD><BODY>%s</BODY></HTML>"

	// Form feed between words: Fields-normalised to one space, so the
	// phrase is still content-free.
	got := check(strings.Replace(base, "%s", "<A HREF=\"x.html\">click\fhere</A>", 1))
	if !got["here-anchor"] {
		t.Error("form-feed-separated \"click here\" no longer triggers here-anchor")
	}
	// Form-feed padding trims away: anchor-whitespace fires, and the
	// padded phrase still matches.
	got = check(strings.Replace(base, "%s", "<A HREF=\"x.html\">\fhere\f</A>", 1))
	if !got["anchor-whitespace"] || !got["here-anchor"] {
		t.Errorf("form-feed padding: got %v, want anchor-whitespace and here-anchor", got)
	}
	// Mixed case still folds on the slow path.
	got = check(strings.Replace(base, "%s", "<A HREF=\"x.html\">Click Here</A>", 1))
	if !got["here-anchor"] {
		t.Error("mixed-case \"Click Here\" no longer triggers here-anchor")
	}
}
