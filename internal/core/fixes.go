package core

import (
	"bytes"
	"sort"
	"strings"

	"weblint/internal/ascii"

	"weblint/internal/htmlspec"
	"weblint/internal/htmltoken"
	"weblint/internal/warn"
)

// This file builds the machine-applicable fixes the checker attaches
// to diagnostics. Every builder runs on the cold path — only when its
// check has already fired — and must obey two rules:
//
//  1. Replacement text never aliases the checked source (messages own
//     everything they carry; CheckBytes callers may recycle the
//     buffer the moment the check returns).
//  2. Applying the fix must make the finding disappear on a re-lint
//     WITHOUT introducing any new finding. Where that cannot be
//     guaranteed (a close tag whose insertion would expose an
//     empty-container message, a value that cannot be quoted safely),
//     no fix is attached: a correct diagnostic without a fix beats a
//     fix that needs fixing.

// guardFix withholds a length-changing fix whose edits touch the
// document at or after the first odd-quotes recovery point (see
// Checker.oddQuotesAt): the recovered tag's extent depends on byte
// distances that such an edit would shift. Edits strictly before the
// recovery point only move the recovered region wholesale — every
// distance the recovery heuristics measured is preserved — so those
// fixes stay attached. The guard is positional, not temporal: fixes
// are emitted in token order, so a fix emitted before any recovery has
// been seen necessarily edits before any later recovery point.
// Length-preserving fixes (case rewrites) bypass it.
func (c *Checker) guardFix(fix *warn.Fix) *warn.Fix {
	if fix == nil || c.oddQuotesAt < 0 {
		return fix
	}
	for _, e := range fix.Edits {
		// An edit is distance-sensitive when it removes or replaces a
		// byte at/after the recovery point (End > at) or inserts at or
		// after it (Start >= at). An insertion exactly at the boundary
		// lands before the recovered tag, but the recovered tag's own
		// fixes anchor there too; withholding at the boundary keeps the
		// rule simple and safe.
		if e.End > c.oddQuotesAt || e.Start >= c.oddQuotesAt {
			return nil
		}
	}
	return fix
}

// singleEdit builds a one-edit fix.
func singleEdit(label string, start, end int, text string) *warn.Fix {
	return &warn.Fix{Label: label, Edits: []warn.Edit{{Start: start, End: end, Text: text}}}
}

// caseFix rewrites a name span to the wanted case ("upper"/"lower").
// ASCII folding, deliberately: it matches the ascii.IsUpper/IsLower
// predicates that trigger the emission, and — unlike the Unicode
// fold, where e.g. U+212A Kelvin shrinks to "k" — it never changes
// byte length, the invariant that exempts case fixes from the
// odd-quotes distance guard.
func caseFix(label, name string, off int, want string) *warn.Fix {
	cased := ascii.ToLower(name)
	if want == "upper" {
		cased = ascii.ToUpper(name)
	}
	return singleEdit(label, off, off+len(name), cased)
}

// quoteValueFix wraps an unquoted attribute value in double quotes.
// The value must not itself contain a quote character (the caller
// checks). One span replacement, not two insertions: a zero-width
// insert at the value's end offset could land at the same point as a
// tag-end insertion (a value ending right before '>'), where relative
// order would depend on emission order.
func quoteValueFix(at *htmltoken.Attr) *warn.Fix {
	return singleEdit("quote attribute value",
		at.ValOffset, at.ValOffset+len(at.Value), `"`+at.Value+`"`)
}

// requoteValueFix replaces single-quote delimiters with double quotes,
// as one replacement spanning quotes and value.
func requoteValueFix(at *htmltoken.Attr) *warn.Fix {
	return singleEdit("use double quotes",
		at.ValOffset-1, at.ValOffset+len(at.Value)+1, `"`+at.Value+`"`)
}

// quotableValue reports whether an attribute value can be wrapped in
// double quotes without escaping.
func quotableValue(v string) bool {
	return !strings.ContainsAny(v, `"'`)
}

// attrEnd returns the byte offset one past the attribute's last byte
// (the closing quote when there is one).
func attrEnd(at *htmltoken.Attr) int {
	if !at.HasValue {
		return at.Offset + len(at.Name)
	}
	end := at.ValOffset + len(at.Value)
	if at.Quote != 0 && !at.UnterminatedQuote {
		end++
	}
	return end
}

// deleteAttrFix removes an attribute (name and value) from its tag.
func deleteAttrFix(at *htmltoken.Attr) *warn.Fix {
	return singleEdit("remove repeated attribute", at.Offset, attrEnd(at), "")
}

// deletableAttr reports whether removing the attribute re-tokenizes
// the rest of the tag unchanged. A recovered "attribute" whose name
// embeds a quote character, an unquoted value carrying one, or a
// value whose closing quote never arrived would shift the tag's
// quoting balance; and when the next non-space byte after the
// attribute is '=', deleting it would make the PRECEDING attribute
// bind to that stray '='.
func deletableAttr(tok *htmltoken.Token, at *htmltoken.Attr) bool {
	if strings.ContainsAny(at.Name, `"'`) || at.UnterminatedQuote {
		return false
	}
	if at.HasValue && at.Quote == 0 && strings.ContainsAny(at.Value, `"'`) {
		return false
	}
	for i := attrEnd(at) - tok.Offset; i < len(tok.Raw); i++ {
		if isSpaceByte(tok.Raw[i]) {
			continue
		}
		return tok.Raw[i] != '='
	}
	return true
}

// deleteTagFix removes a whole tag token.
func deleteTagFix(label string, tok *htmltoken.Token) *warn.Fix {
	return singleEdit(label, tok.Offset, tok.Offset+len(tok.Raw), "")
}

// tagInsertPos returns the byte offset at which new attribute text
// can be inserted into a tag: just before the terminating '>', or —
// for an XHTML-style tag — before the whole trailing slash/space run.
// That run is exactly what slashFix deletes, and a deletion's START
// boundary is where a zero-width insertion coexists with it (inserting
// anywhere inside the run would conflict the two fixes away). Returns
// -1 when the tag has no safe insertion point (the '=' guarded case
// slashFix also refuses).
func tagInsertPos(tok *htmltoken.Token) int {
	end := tok.Offset + len(tok.Raw)
	if tok.Unterminated {
		return end
	}
	i := len(tok.Raw) - 1 // the '>'
	if !tok.SlashClose {
		return tok.Offset + i
	}
	j := i - 1
	for j >= 0 && (isSpaceByte(tok.Raw[j]) || tok.Raw[j] == '/') {
		j--
	}
	if j >= 0 && tok.Raw[j] == '=' {
		return -1
	}
	return tok.Offset + j + 1
}

// insertAttrFix inserts ` NAME=""` before the tag's terminator. The
// attribute name follows the configured attribute case; the historical
// upper case is the default. Nil when the tag has no safe insertion
// point.
func insertAttrFix(tok *htmltoken.Token, name, attrCase string) *warn.Fix {
	pos := tagInsertPos(tok)
	if pos < 0 {
		return nil
	}
	cased := strings.ToUpper(name)
	if attrCase == "lower" {
		cased = strings.ToLower(name)
	}
	return singleEdit("insert "+cased+`=""`, pos, pos, " "+cased+`=""`)
}

// slashFix removes the spurious trailing '/' of a tag — the whole
// trailing run of slashes and whitespace, since the tokenizer strips
// only one slash per parse and removing just one from "//" would
// leave the next re-lint reporting spurious-slash again. When the run
// is preceded by '=', the slash is (part of) an attribute value, not
// XHTML noise; no mechanical fix then.
func slashFix(tok *htmltoken.Token) *warn.Fix {
	if tok.Unterminated {
		return nil
	}
	i := len(tok.Raw) - 1 // the '>'
	j := i - 1
	sawSlash := false
	for j >= 0 && (isSpaceByte(tok.Raw[j]) || tok.Raw[j] == '/') {
		if tok.Raw[j] == '/' {
			sawSlash = true
		}
		j--
	}
	if !sawSlash || (j >= 0 && tok.Raw[j] == '=') {
		return nil
	}
	return singleEdit("remove trailing '/'", tok.Offset+j+1, tok.Offset+i, "")
}

// metacharFix replaces one literal metacharacter byte with its entity.
func metacharFix(off int, entity string) *warn.Fix {
	return singleEdit("write "+entity, off, off+1, entity)
}

// closeElementFix inserts a closing tag at byte offset at — the end
// of the document for Finish-time unclosed elements, or just before a
// structural close tag that forced the element shut. The tag name
// follows the configured tag case (upper by default, matching the
// display name the message quotes).
func closeElementFix(o *open, tagCase string, at int) *warn.Fix {
	name := o.display
	if tagCase == "lower" {
		name = o.name
	}
	return singleEdit("insert </"+o.display+">", at, at, "</"+name+">")
}

// renameCloseFix rewrites the name of a close tag to the open
// element's name — the heading-mismatch remediation (</H2> closing an
// open <H1> becomes </H1>). Heading names are all two bytes, so the
// rewrite is length-preserving and exempt from the odd-quotes distance
// guard, like the case fixes. The replacement follows the configured
// tag case (upper display form by default).
func renameCloseFix(tok *htmltoken.Token, o *open, tagCase string) *warn.Fix {
	name := o.display
	if tagCase == "lower" {
		name = o.name
	}
	return singleEdit("rename to </"+o.display+">",
		tok.Offset+2, tok.Offset+2+len(tok.Name), name)
}

// headingRenameSafe reports whether renaming a mismatched heading
// close tag to the open heading's name is guaranteed not to surface a
// new finding. The mismatch path pops the open element silently; after
// the rename a re-lint pops it through popChecks, so the element must
// survive those checks: it needs content (else empty-container) and
// its text must not carry the leading/trailing whitespace the
// container-whitespace check reports. The gates test the text itself,
// not rule enablement — a pedantic re-lint must stay clean too.
func headingRenameSafe(o *open) bool {
	if !o.content {
		return false
	}
	raw := o.text
	if len(bytes.TrimSpace(raw)) == 0 {
		return true // whitespace-only text: neither check fires
	}
	return !isStyleSpace(raw[0]) && !isStyleSpace(raw[len(raw)-1])
}

// divertFix reroutes a fix into the pending relocation's cure set when
// tok is the tag being relocated (the message then goes out fixless:
// its problem is cured inside the relocated text instead). Any other
// tag's fix passes through unchanged. Length-preserving fix sites use
// it directly; length-changing sites compose it with guardFix via
// tagFix.
func (c *Checker) divertFix(tok *htmltoken.Token, fix *warn.Fix) *warn.Fix {
	if fix != nil && c.relocateTok == tok {
		c.relocateFixes = append(c.relocateFixes, fix)
		return nil
	}
	return fix
}

// tagFix is the attach path for length-changing fixes that edit inside
// a start tag: diverted into the relocation when the tag is being
// moved, odd-quotes-guarded otherwise.
func (c *Checker) tagFix(tok *htmltoken.Token, fix *warn.Fix) *warn.Fix {
	if fix == nil {
		return nil
	}
	if c.relocateTok == tok {
		return c.divertFix(tok, fix)
	}
	return c.guardFix(fix)
}

// planMetaRelocation decides, before any in-tag fix site runs, whether
// this META start tag will be relocated into the HEAD by the
// meta-in-body fix. It must see the same placement state the
// meta-in-body emission tests (a META implies no closes, so evaluating
// before applyImpliedClose is equivalent), and it requires a cleanly
// tokenized tag, a recorded HEAD insertion point, and no odd-quotes
// recovery so far — the relocation edits at and before the current
// token, so a recovery seen later cannot be crossed.
func (c *Checker) planMetaRelocation(tok *htmltoken.Token, name string, info *htmlspec.ElementInfo) bool {
	if name != "meta" || info == nil || !info.HeadOnly {
		return false
	}
	if tok.OddQuotes || tok.Unterminated || attrsGarbled(tok) {
		return false
	}
	if c.headInsertPos < 0 || c.oddQuotesAt >= 0 {
		return false
	}
	if c.inElement("head") != nil || !(c.seenBody || c.inElement("body") != nil) {
		return false // not a meta-in-body site
	}
	// The tag counts as its direct parent's content; moving the
	// parent's ONLY content away would surface empty-container (or
	// empty-title) on a re-lint. Content arriving later would keep the
	// parent non-empty, but that is unknowable here — withhold.
	if t := c.top(); t != nil && !t.content && t.info != nil && !t.info.EmptyOK {
		return false
	}
	c.relocateTok = tok
	c.relocateFixes = c.relocateFixes[:0]
	return true
}

// metaRelocationFix builds the meta-in-body fix: insert the tag's text
// — with every diverted cure applied — at the HEAD insertion point (a
// zero-width insertion, coexisting with close-tag fixes anchored
// there), and delete the tag at its original location. The insertion
// text is built fresh, never aliasing the checked source.
func (c *Checker) metaRelocationFix(tok *htmltoken.Token) *warn.Fix {
	cleaned := applyTagEdits(tok, c.relocateFixes)
	c.relocateTok = nil
	c.relocateFixes = c.relocateFixes[:0]
	return &warn.Fix{Label: "move <META> into HEAD", Edits: []warn.Edit{
		{Start: c.headInsertPos, End: c.headInsertPos, Text: cleaned},
		{Start: tok.Offset, End: tok.Offset + len(tok.Raw), Text: ""},
	}}
}

// applyTagEdits rewrites a tag's text with the collected in-tag fixes.
// It reproduces fixit.Apply's semantics on the tag's span — first
// writer wins in collection (= emission) order, half-open overlap,
// insertions before replacements at equal offsets — so the relocated
// text is byte-identical to what applying those fixes in place would
// have produced.
func applyTagEdits(tok *htmltoken.Token, fixes []*warn.Fix) string {
	var accepted []warn.Edit
	for _, f := range fixes {
		ok := true
		for _, e := range f.Edits {
			for _, a := range accepted {
				if e.Start < a.End && a.Start < e.End {
					ok = false
				}
			}
		}
		if ok {
			accepted = append(accepted, f.Edits...)
		}
	}
	sort.SliceStable(accepted, func(i, j int) bool {
		a, b := accepted[i], accepted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Start == a.End && b.Start != b.End
	})
	var sb strings.Builder
	last := tok.Offset
	for _, e := range accepted {
		sb.WriteString(tok.Raw[last-tok.Offset : e.Start-tok.Offset])
		sb.WriteString(e.Text)
		last = e.End
	}
	sb.WriteString(tok.Raw[last-tok.Offset:])
	return sb.String()
}

// closableAtEOF reports whether inserting a close tag for o (at end
// of document or before the structural close that forced it shut) is
// guaranteed not to surface a new finding: the element must have
// content (or tolerate emptiness), and must not be one of the
// elements whose orderly close runs content checks (TITLE length,
// anchor text, heading whitespace) that the checker cannot predict
// won't fire.
func (c *Checker) closableAtEOF(o *open) bool {
	if o.info == nil {
		return false
	}
	if !o.content && !o.info.EmptyOK {
		return false
	}
	if o.name == "title" || o.name == "a" || headingLevel(o.name) > 0 {
		return false
	}
	return true
}

// firstOfName reports whether none of the earlier attributes shares
// this lower-case name — i.e. the attribute is not a repeat whose fix
// will be a deletion.
func firstOfName(earlier []htmltoken.Attr, lower string) bool {
	for i := range earlier {
		if earlier[i].Lower == lower {
			return false
		}
	}
	return true
}

// attrsGarbled reports whether the tag's attribute parse is suspect:
// an attribute NAME containing a quote character means the tokenizer
// balanced quotes across what parseAttrs then read as names, and a
// value whose closing quote never arrived will absorb whatever text
// follows it on a re-parse. Any fix editing inside such a tag —
// including inserting new attributes before its terminator — could
// re-tokenize differently, so none is attached.
func attrsGarbled(tok *htmltoken.Token) bool {
	for i := range tok.Attrs {
		if strings.ContainsAny(tok.Attrs[i].Name, `"'`) || tok.Attrs[i].UnterminatedQuote {
			return true
		}
	}
	return false
}

// isSpaceByte matches the tokenizer's intra-tag whitespace set.
func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}
