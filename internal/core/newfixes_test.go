package core

import (
	"strings"
	"testing"

	"weblint/internal/fixit"
	"weblint/internal/warn"
)

// msgsOf collects the messages with the given id, in emission order.
func msgsOf(msgs []warn.Message, id string) []warn.Message {
	var out []warn.Message
	for _, m := range msgs {
		if m.ID == id {
			out = append(out, m)
		}
	}
	return out
}

// applyAndRecheck applies the stream's fixes and re-lints the result,
// asserting the fix contract: per-ID counts never grow, no fixable
// finding survives, and a second apply is a no-op.
func applyAndRecheck(t *testing.T, src string, msgs []warn.Message, opts Options) []warn.Message {
	t.Helper()
	fixed, rep := fixit.Apply(src, msgs)
	if rep.Skipped > 0 {
		for _, o := range rep.Outcomes {
			if !o.Applied {
				t.Errorf("fix for %s (line %d, %s) skipped: %s", o.ID, o.Line, o.Label, o.Reason)
			}
		}
	}
	relint := checkAll(t, fixed, opts)
	for _, m := range relint {
		if m.Fix != nil {
			t.Errorf("fixable finding survives apply: %s line %d (fix %q)", m.ID, m.Line, m.Fix.Label)
		}
	}
	before, after := ids(msgs), ids(relint)
	for id, n := range after {
		if n > before[id] {
			t.Errorf("apply introduced new %s findings: %d -> %d", id, before[id], n)
		}
	}
	if fixed2, rep2 := fixit.Apply(fixed, relint); fixed2 != fixed || rep2.Applied != 0 {
		t.Errorf("second apply is not a no-op (%d applied)", rep2.Applied)
	}
	if t.Failed() {
		t.Logf("fixed document:\n%s", fixed)
	}
	return relint
}

// TestOddQuotesFixGuardPositional: the regression sweep for the
// positional guard. A document carries identical fixable tags before
// and after an odd-quotes recovery, with the distance between them
// swept across the tokenizer's recovery budget: the fixes anchored
// strictly before the recovered tag must stay attached, the ones at or
// after it must be withheld, at every distance.
func TestOddQuotesFixGuardPositional(t *testing.T) {
	for _, n := range []int{0, 1, 8, 64, 298, 299, 300, 301, 302, 512} {
		filler := strings.Repeat("z", n)
		src := `<IMG SRC=a/b.gif>` + filler + `<P "x>y` + filler + `<IMG SRC=c/d.gif>`
		msgs := checkAll(t, src, Options{})

		if got := msgsOf(msgs, "odd-quotes"); len(got) != 1 {
			t.Fatalf("n=%d: %d odd-quotes messages, want 1", n, len(got))
		}
		for _, id := range []string{"img-alt", "attribute-delimiter"} {
			got := msgsOf(msgs, id)
			if len(got) != 2 {
				t.Fatalf("n=%d: %d %s messages, want 2", n, len(got), id)
			}
			if got[0].Fix == nil {
				t.Errorf("n=%d: %s before the recovery point lost its fix", n, id)
			}
			if got[1].Fix != nil {
				t.Errorf("n=%d: %s after the recovery point kept fix %q", n, id, got[1].Fix.Label)
			}
		}
		applyAndRecheck(t, src, msgs, Options{})
	}
}

// TestOddQuotesGuardEOFInsertions: EOF close-tag insertions anchor at
// the end of the document — behind any recovery point — so they are
// withheld whenever a recovery occurred, wherever it was.
func TestOddQuotesGuardEOFInsertions(t *testing.T) {
	src := `<UL><LI>item` + `<P "x>y`
	msgs := checkAll(t, src, Options{})
	for _, m := range msgsOf(msgs, "unclosed-element") {
		if m.Fix != nil {
			t.Errorf("EOF close fix attached after odd-quotes recovery: %q", m.Fix.Label)
		}
	}
}

// TestHeadingMismatchFix: </H2> closing an open <H1> gets a rename
// fix; applying it resolves the mismatch without surfacing the checks
// a clean pop runs.
func TestHeadingMismatchFix(t *testing.T) {
	src := valid("<H1>Title</H2>")
	msgs := checkAll(t, src, Options{})
	m := requireID(t, msgs, "heading-mismatch")
	if m.Fix == nil {
		t.Fatal("heading-mismatch carries no fix")
	}
	if m.Fix.Label != "rename to </H1>" {
		t.Errorf("fix label = %q", m.Fix.Label)
	}
	relint := applyAndRecheck(t, src, msgs, Options{})
	forbidID(t, relint, "heading-mismatch")
}

// TestHeadingMismatchFixWithheld: the rename is withheld when the
// renamed close tag would pop through popChecks into a new finding —
// an empty heading, or heading text with the leading/trailing
// whitespace the container-whitespace check reports.
func TestHeadingMismatchFixWithheld(t *testing.T) {
	for name, body := range map[string]string{
		"empty-heading":       "<H1></H2>",
		"leading-whitespace":  "<H1> x</H2>",
		"trailing-whitespace": "<H1>x </H2>",
	} {
		t.Run(name, func(t *testing.T) {
			msgs := checkAll(t, valid(body), Options{})
			if m := requireID(t, msgs, "heading-mismatch"); m.Fix != nil {
				t.Errorf("unsafe rename attached: %q", m.Fix.Label)
			}
		})
	}
	// Child-element content without stray whitespace fires neither
	// check: the rename is safe. (Text accumulates through children,
	// so `<H1> <B>x</B> </H2>` would still trip the whitespace gate.)
	msgs := checkAll(t, valid("<H1><B>x</B></H2>"), Options{})
	if m := requireID(t, msgs, "heading-mismatch"); m.Fix == nil {
		t.Error("child-element heading content should still rename")
	}
}

// TestHeadingMismatchTagCase: when the rename fix runs it rewrites the
// name span, so the tag-case check withholds its own in-span fix (the
// rename restores the configured case anyway); when the rename is
// unsafe the case fix must come back.
func TestHeadingMismatchTagCase(t *testing.T) {
	opts := Options{TagCase: "lower"}
	msgs := checkAll(t, "<h1>x</H2>", opts)
	if m := requireID(t, msgs, "tag-case"); m.Fix != nil {
		t.Errorf("tag-case fix attached alongside the rename: %q", m.Fix.Label)
	}
	mm := requireID(t, msgs, "heading-mismatch")
	if mm.Fix == nil {
		t.Fatal("no rename fix")
	}
	if mm.Fix.Edits[0].Text != "h1" {
		t.Errorf("rename text = %q, want lower-case h1", mm.Fix.Edits[0].Text)
	}
	applyAndRecheck(t, "<h1>x</H2>", msgs, opts)

	// Unsafe rename (empty heading): the case fix runs instead.
	msgs = checkAll(t, "<h1></H2>", opts)
	if m := requireID(t, msgs, "tag-case"); m.Fix == nil {
		t.Error("tag-case fix missing when the rename is withheld")
	}
}

// TestMetaInBodyFix: a pristine META in the BODY is relocated to where
// the HEAD element ended.
func TestMetaInBodyFix(t *testing.T) {
	src := `<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<META NAME="a" CONTENT="b"></BODY></HTML>`
	msgs := checkAll(t, src, Options{})
	m := requireID(t, msgs, "meta-in-body")
	if m.Fix == nil {
		t.Fatal("meta-in-body carries no fix")
	}
	fixed, _ := fixit.Apply(src, msgs)
	want := `<HTML><HEAD><TITLE>t</TITLE><META NAME="a" CONTENT="b"></HEAD><BODY><P>x</BODY></HTML>`
	if fixed != want {
		t.Errorf("fixed = %q\nwant    %q", fixed, want)
	}
	relint := applyAndRecheck(t, src, msgs, Options{})
	forbidID(t, relint, "meta-in-body")
}

// TestMetaInBodyFixImpliedHeadClose: the insertion point is recorded
// when BODY implies the HEAD's close, not only at an explicit </HEAD>.
func TestMetaInBodyFixImpliedHeadClose(t *testing.T) {
	src := `<HTML><HEAD><TITLE>t</TITLE><BODY><P>x<META NAME="a" CONTENT="b"></BODY></HTML>`
	msgs := checkAll(t, src, Options{})
	m := requireID(t, msgs, "meta-in-body")
	if m.Fix == nil {
		t.Fatal("meta-in-body carries no fix after an implied head close")
	}
	relint := applyAndRecheck(t, src, msgs, Options{})
	forbidID(t, relint, "meta-in-body")
}

// TestMetaInBodyFixWithheld: the relocation is withheld when no HEAD
// element was seen, after an odd-quotes recovery (the deletion edits
// at/after the recovery point), or when the tag's own parse is
// garbled.
func TestMetaInBodyFixWithheld(t *testing.T) {
	cases := map[string]string{
		"no-head":         `<HTML><BODY><P>x<META NAME="a" CONTENT="b"></BODY></HTML>`,
		"after-odd-quote": `<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<P "q>y<META NAME="a" CONTENT="b"></BODY></HTML>`,
		"odd-quote-tag":   `<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<META NAME="a CONTENT="b"></BODY></HTML>`,
		"only-content":    `<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><META NAME="a" CONTENT="b"></BODY></HTML>`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			msgs := checkAll(t, src, Options{})
			if m := requireID(t, msgs, "meta-in-body"); m.Fix != nil {
				t.Errorf("unsafe relocation attached: %q", m.Fix.Label)
			}
			applyAndRecheck(t, src, msgs, Options{})
		})
	}
}

// TestMetaInBodyFixCuresDirtyTag: in-tag fixes for a relocated META
// are diverted into the relocation — the tag is moved AND cured in one
// apply pass, and the cured findings go out fixless (their edits would
// conflict with the relocation's deletion).
func TestMetaInBodyFixCuresDirtyTag(t *testing.T) {
	cases := map[string]struct{ src, cured string }{
		"single-quotes": {
			`<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<META NAME='a' CONTENT="b"></BODY></HTML>`,
			`<META NAME="a" CONTENT="b"></HEAD>`,
		},
		"unquoted-value": {
			`<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<META NAME="a" CONTENT=b/c></BODY></HTML>`,
			`<META NAME="a" CONTENT="b/c"></HEAD>`,
		},
		"trailing-slash": {
			`<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<META NAME="a" CONTENT="b"/></BODY></HTML>`,
			`<META NAME="a" CONTENT="b"></HEAD>`,
		},
		"repeated-attr": {
			// The deletion removes the attribute, not its surrounding
			// space — exactly what an in-place apply produces.
			`<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<META NAME="a" NAME="a" CONTENT="b"></BODY></HTML>`,
			`<META NAME="a"  CONTENT="b"></HEAD>`,
		},
		"missing-required-content": {
			`<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<META NAME="a"></BODY></HTML>`,
			`<META NAME="a" CONTENT=""></HEAD>`,
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			msgs := checkAll(t, tc.src, Options{})
			m := requireID(t, msgs, "meta-in-body")
			if m.Fix == nil {
				t.Fatal("no relocation fix on a curable tag")
			}
			for _, other := range msgs {
				if other.ID != "meta-in-body" && other.Fix != nil {
					t.Errorf("in-tag fix escaped diversion: %s (%q)", other.ID, other.Fix.Label)
				}
			}
			fixed, _ := fixit.Apply(tc.src, msgs)
			if !strings.Contains(fixed, tc.cured) {
				t.Errorf("fixed = %q\nwant substring %q", fixed, tc.cured)
			}
			relint := applyAndRecheck(t, tc.src, msgs, Options{})
			forbidID(t, relint, "meta-in-body")
		})
	}
}

// TestMetaInBodyFixTwoMetas: two relocatable METAs insert at the same
// point in stream order, keeping their document order inside the HEAD.
func TestMetaInBodyFixTwoMetas(t *testing.T) {
	src := `<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<META NAME="a" CONTENT="1"><META NAME="b" CONTENT="2"></BODY></HTML>`
	msgs := checkAll(t, src, Options{})
	if got := msgsOf(msgs, "meta-in-body"); len(got) != 2 {
		t.Fatalf("%d meta-in-body messages, want 2", len(got))
	}
	fixed, _ := fixit.Apply(src, msgs)
	if !strings.Contains(fixed, `<META NAME="a" CONTENT="1"><META NAME="b" CONTENT="2"></HEAD>`) {
		t.Errorf("metas not relocated in order: %q", fixed)
	}
	relint := applyAndRecheck(t, src, msgs, Options{})
	forbidID(t, relint, "meta-in-body")
}
