package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"weblint/internal/corpus"
	"weblint/internal/warn"
)

// TestCheckerNeverPanics drives the checker with arbitrary byte
// strings: whatever the input, the checker must terminate normally and
// produce messages with sane positions.
func TestCheckerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		em := warn.NewEmitter(warn.AllEnabled())
		Check(s, em, Options{Filename: "fuzz.html"})
		for _, m := range em.Messages() {
			if m.Line < 1 {
				return false
			}
			if m.Text == "" || m.ID == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestCheckerNeverPanicsOnMarkupishInput biases the fuzz toward
// markup-looking strings, where the interesting paths live.
func TestCheckerNeverPanicsOnMarkupishInput(t *testing.T) {
	pieces := []string{
		"<", ">", "</", "<!", "<!--", "-->", "\"", "'", "=", "&",
		"A", "B", "TABLE", "TD", "SCRIPT", "TITLE", "#PCDATA", ";",
		"HREF", "amp", " ", "\n", "x", "<>", "</>", "<P", "--",
	}
	f := func(choices []uint8) bool {
		var b []byte
		for _, c := range choices {
			b = append(b, pieces[int(c)%len(pieces)]...)
		}
		em := warn.NewEmitter(warn.AllEnabled())
		Check(string(b), em, Options{Filename: "fuzz.html"})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestValidCorpusIsErrorFree: the generator with zero error rates
// produces documents on which the default-enabled checker is silent.
// This is a joint property of the generator and the checker.
func TestValidCorpusIsErrorFree(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := corpus.Generate(corpus.Config{Seed: seed, Sections: 3})
		em := warn.NewEmitter(nil)
		Check(src, em, Options{Filename: "gen.html"})
		if msgs := em.Messages(); len(msgs) != 0 {
			t.Fatalf("seed %d: valid corpus produced %d messages, first: %s %q (line %d)",
				seed, len(msgs), msgs[0].ID, msgs[0].Text, msgs[0].Line)
		}
	}
}

// TestInjectedErrorsAreDetected: each injector class produces its
// matching message on at least most seeds.
func TestInjectedErrorsAreDetected(t *testing.T) {
	cases := []struct {
		name   string
		rates  corpus.ErrorRates
		expect []string // any of these IDs count as detection
	}{
		{"DropClose", corpus.ErrorRates{DropClose: 1}, []string{"unclosed-element"}},
		{"Misspell", corpus.ErrorRates{Misspell: 1}, []string{"unknown-element"}},
		{"UnquoteAttr", corpus.ErrorRates{UnquoteAttr: 1}, []string{"attribute-delimiter"}},
		{"BadColor", corpus.ErrorRates{BadColor: 1}, []string{"body-colors"}},
		{"Overlap", corpus.ErrorRates{Overlap: 1}, []string{"element-overlap"}},
		{"MissingAlt", corpus.ErrorRates{MissingAlt: 1}, []string{"img-alt"}},
		{"BadEntity", corpus.ErrorRates{BadEntity: 1}, []string{"unknown-entity"}},
		{"HeadingSkip", corpus.ErrorRates{HeadingSkip: 1}, []string{"heading-order"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			detected := 0
			trials := 10
			for seed := int64(0); seed < int64(trials); seed++ {
				src := corpus.Generate(corpus.Config{Seed: seed, Sections: 6, Errors: tc.rates})
				em := warn.NewEmitter(warn.AllEnabled())
				Check(src, em, Options{Filename: "gen.html"})
				found := false
				for _, m := range em.Messages() {
					for _, want := range tc.expect {
						if m.ID == want {
							found = true
						}
					}
				}
				if found {
					detected++
				}
			}
			// Injection sites are probabilistic per document; most
			// seeds must exhibit the defect and be caught.
			if detected < trials/2 {
				t.Errorf("detected on %d/%d seeds", detected, trials)
			}
		})
	}
}

// TestEnabledSubsetProperty: disabling warnings never adds messages,
// and the messages of a run with a subset enabled are a subset of the
// all-enabled run.
func TestEnabledSubsetProperty(t *testing.T) {
	src := corpus.Generate(corpus.Config{Seed: 7, Sections: 5, Errors: corpus.Uniform(0.5)})

	all := warn.NewEmitter(warn.AllEnabled())
	Check(src, all, Options{Filename: "g.html"})
	allSet := map[string]bool{}
	for _, m := range all.Messages() {
		allSet[m.ID+"|"+m.Text+"|"+itoa(m.Line)] = true
	}

	def := warn.NewEmitter(nil)
	Check(src, def, Options{Filename: "g.html"})
	if len(def.Messages()) > len(all.Messages()) {
		t.Fatal("default set produced more messages than all-enabled")
	}
	for _, m := range def.Messages() {
		if !allSet[m.ID+"|"+m.Text+"|"+itoa(m.Line)] {
			t.Errorf("default-run message missing from all-enabled run: %+v", m)
		}
	}
}

// TestMessageLinesWithinDocument: every message's line is within the
// document.
func TestMessageLinesWithinDocument(t *testing.T) {
	src := corpus.Generate(corpus.Config{Seed: 3, Sections: 6, Errors: corpus.Uniform(0.6)})
	lines := 1
	for _, c := range src {
		if c == '\n' {
			lines++
		}
	}
	em := warn.NewEmitter(warn.AllEnabled())
	Check(src, em, Options{Filename: "g.html"})
	for _, m := range em.Messages() {
		if m.Line < 1 || m.Line > lines {
			t.Errorf("message line %d outside document (1-%d): %s", m.Line, lines, m.ID)
		}
	}
}

// TestDeterminism: the checker is a pure function of its input.
func TestDeterminism(t *testing.T) {
	src := corpus.Generate(corpus.Config{Seed: 11, Sections: 5, Errors: corpus.Uniform(0.4)})
	run := func() []warn.Message {
		em := warn.NewEmitter(warn.AllEnabled())
		Check(src, em, Options{Filename: "g.html"})
		return em.Messages()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// DeepEqual: Message carries a *Fix whose contents (not
		// pointer identity) must match between runs.
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("message %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
