package core

import (
	"strings"

	"weblint/internal/ascii"
	"weblint/internal/htmlspec"
	"weblint/internal/htmltoken"
	"weblint/internal/warn"
)

// startTag handles an opening tag: tokenizer-recovery diagnostics,
// implied closes, element identity and context checks, attribute
// checks, and stack maintenance.
func (c *Checker) startTag(tok *htmltoken.Token) {
	if tok.EmptyTag {
		c.emitAt("empty-tag", tok.Line, tok.Col)
		return
	}
	c.noteElement(tok.Line)

	name := tok.Lower
	display := c.spec.Display(name)
	info := c.spec.Element(name)

	if tok.Unterminated {
		c.emitAt("malformed-tag", tok.Line, tok.Col)
		return
	}
	if tok.OddQuotes {
		c.emitAt("odd-quotes", tok.Line, tok.Col, tok.Raw)
	}
	// Decide up front whether this tag will be relocated by the
	// meta-in-body fix: from here on, every fix editing inside the tag
	// is diverted into the relocation's insertion text instead of the
	// message stream (two fixes on one span would conflict in fixit).
	relocating := c.planMetaRelocation(tok, name, info)
	if tok.SlashClose {
		c.emitFixAt("spurious-slash", tok.Line, tok.Col, c.tagFix(tok, slashFix(tok)), display)
	}
	c.checkTagCase(tok, display, false)

	// Element identity.
	switch {
	case info == nil:
		c.emitAt("unknown-element", tok.Line, tok.Col, display)
	case info.Extension != "" && !c.spec.ExtensionEnabled(info.Extension):
		c.emitAt("extension-markup", tok.Line, tok.Col, display, info.Extension, c.spec.Version)
	case info.Obsolete:
		c.emitAt("obsolete-element", tok.Line, tok.Col, display, info.Replacement)
	case info.Deprecated:
		c.emitAt("deprecated-element", tok.Line, tok.Col, display, info.Replacement)
	}

	// Implied closes: opening this element legally ends some open
	// elements (LI ends LI, a block element ends P, ...).
	c.applyImpliedClose(name, tok.Line, tok.Offset)

	if info != nil {
		c.checkStructure(tok, name, display, info)
	}

	// Mark content on the parent before pushing.
	if parent := c.top(); parent != nil {
		parent.content = true
	}

	// Attribute checks (suppressed wholesale on odd-quote recovery,
	// since the attribute list is then known to be garbled).
	if !tok.OddQuotes {
		c.checkAttrs(tok, name, display, info)
	}

	// The meta-in-body message is emitted after the attribute checks
	// so its relocation fix can carry every diverted cure; fixless
	// sites emit it at the usual placement point in checkStructure.
	if relocating {
		c.emitFixAt("meta-in-body", tok.Line, tok.Col, c.guardFix(c.metaRelocationFix(tok)))
	}

	c.trackDocumentState(name, tok.Line)

	if info != nil && info.Empty {
		return // empty elements are never pushed
	}
	c.pushOpen(c.newOpen(name, display, tok.Line, tok.Col, info))

	// The tokenizer switches into raw-text mode after this tag; arm the
	// empty-raw-body compensation (see the pendingRawText field).
	if htmltoken.DefaultRawTextElements[name] {
		c.pendingRawText = true
	}
}

// applyImpliedClose pops open elements whose end is implied by the
// arrival of a start tag for name at byte offset off.
func (c *Checker) applyImpliedClose(name string, line, off int) {
	for {
		t := c.top()
		if t == nil || t.info == nil || !t.info.ImpliedEndedBy(name) {
			return
		}
		c.truncateStack(len(c.stack) - 1)
		c.noteHeadPop(t, off)
		if c.opts.DisableImpliedClose {
			c.emit("unclosed-element", line, t.display, t.display, warn.LineRef(t.line))
		} else {
			c.popChecks(t)
		}
	}
}

// checkStructure performs the element-level structure checks: once
// only elements, head/body placement, required context, self-nesting,
// heading order.
func (c *Checker) checkStructure(tok *htmltoken.Token, name, display string, info *htmlspec.ElementInfo) {
	line, col := tok.Line, tok.Col
	// Once-only elements (HTML, HEAD, BODY, TITLE).
	if info.OnceOnly {
		if first, dup := c.seenOnce[name]; dup {
			c.emitAt("once-only", line, col, display, warn.LineRef(first))
		} else {
			c.seenOnce[name] = line
		}
	}

	// HEAD-only elements appearing in the BODY.
	if info.HeadOnly {
		c.headContent = true
		if c.inElement("head") == nil && (c.seenBody || c.inElement("body") != nil) {
			if name == "meta" {
				// A tag being relocated emits its message after the
				// attribute checks (see startTag), carrying the fix.
				if c.relocateTok != tok {
					c.emitAt("meta-in-body", line, col)
				}
			} else {
				c.emitAt("head-element", line, col, display)
			}
		}
	} else if !info.Empty && c.inElement("head") != nil &&
		name != "html" && name != "script" && name != "noscript" && !info.HeadOnly {
		// Rendered markup inside the HEAD.
		c.emitAt("body-element", line, col, display)
	}

	// Required parent context (LI in lists, TD in TR, ...).
	if len(info.Context) > 0 {
		parent := ""
		if t := c.top(); t != nil {
			parent = t.name
		}
		if !info.InContext(parent) {
			c.emitAt("required-context", line, col, display, contextList(info.Context))
		}
	}

	// Form fields outside any FORM.
	if info.FormField && c.inElement("form") == nil {
		c.emitAt("form-field-context", line, col, display)
	}

	// Elements which may not nest within themselves.
	if info.NoSelfNest {
		if prev := c.inElement(name); prev != nil {
			c.emitAt("nested-element", line, col, display, display, display, warn.LineRef(prev.line))
		}
	}

	// Heading order and headings inside anchors.
	if lvl := headingLevel(name); lvl > 0 {
		if c.lastHeading > 0 && lvl > c.lastHeading+1 {
			c.emitAt("heading-order", line, col, display, c.lastHeadingName)
		}
		c.lastHeading = lvl
		c.lastHeadingName = display
		if c.inElement("a") != nil {
			c.emitAt("heading-in-anchor", line, col, display)
		}
	}

	// BODY and FRAMESET are mutually exclusive document styles.
	if name == "frameset" {
		if b := c.inElement("body"); b != nil {
			c.emitAt("unexpected-open", line, col, display, "BODY", warn.LineRef(b.line))
		}
	}

	// Physical vs. logical markup (style, off by default).
	if logical, ok := PhysicalToLogical[name]; ok {
		c.emitAt("physical-font", line, col, logical, display)
	}
}

// trackDocumentState records document-level facts used by Finish.
func (c *Checker) trackDocumentState(name string, line int) {
	switch name {
	case "html":
		c.seenHTML = true
	case "head":
		c.seenHead = true
	case "body":
		c.seenBody = true
	case "title":
		c.seenTitle = true
		c.titleLine = line
	case "frameset":
		c.seenFrameset = true
	case "noframes":
		c.seenNoframes = true
	}
}

// checkTagCase implements the optional tag-case style check. The fix
// rewrites the tag name span in place (offset +1 past '<', +2 past
// '</' for closing tags). noFix suppresses the fix when the caller
// knows the whole tag will be deleted by a later fix — a rewrite
// inside a deleted span would win the conflict and block the
// deletion.
func (c *Checker) checkTagCase(tok *htmltoken.Token, display string, noFix bool) {
	want := c.opts.TagCase
	if want != "upper" && want != "lower" {
		return
	}
	written := tok.Name
	if want == "upper" && ascii.IsUpper(written) || want == "lower" && ascii.IsLower(written) {
		return
	}
	var fix *warn.Fix
	if !noFix {
		nameOff := tok.Offset + 1
		if tok.Type == htmltoken.EndTag {
			nameOff++
		}
		fix = c.divertFix(tok, caseFix(want+"-case tag name", written, nameOff, want))
	}
	c.emitFixAt("tag-case", tok.Line, tok.Col, fix, display, want)
}

// checkAttrs checks the attribute list of a start tag. The checks run
// in two passes to match weblint's output order: quoting style first,
// then attribute identity and value legality.
func (c *Checker) checkAttrs(tok *htmltoken.Token, name, display string, info *htmlspec.ElementInfo) {
	// Pass 1: quoting. Quoting fixes are only attached to the first
	// occurrence of an attribute name (a repeated attribute's fix is
	// its deletion in pass 2, and two fixes on the same span would
	// conflict away the deletion) and only when the tag's attribute
	// parse is trustworthy.
	garbled := attrsGarbled(tok)
	for i := range tok.Attrs {
		at := &tok.Attrs[i]
		if !at.HasValue {
			continue
		}
		switch at.Quote {
		case 0:
			if !isNameTokenValue(at.Value) {
				var fix *warn.Fix
				if !garbled && quotableValue(at.Value) && firstOfName(tok.Attrs[:i], at.Lower) {
					fix = c.tagFix(tok, quoteValueFix(at))
				}
				c.emitFixAt("attribute-delimiter", at.Line, at.Col, fix, at.Name, at.Value, display, at.Name, at.Value)
			}
		case '\'':
			var fix *warn.Fix
			if !garbled && !at.UnterminatedQuote && quotableValue(at.Value) && firstOfName(tok.Attrs[:i], at.Lower) {
				fix = c.tagFix(tok, requoteValueFix(at))
			}
			c.emitFixAt("single-quotes", at.Line, at.Col, fix, at.Name, display)
		}
	}

	// Pass 2: identity, duplication, and value legality. The seen map
	// is owned by the checker and recycled per tag.
	seen := c.attrSeen
	clear(seen)
	for i := range tok.Attrs {
		at := &tok.Attrs[i]
		lower := at.Lower
		if _, dup := seen[lower]; dup {
			var fix *warn.Fix
			if !garbled && deletableAttr(tok, at) {
				fix = c.tagFix(tok, deleteAttrFix(at))
			}
			c.emitFixAt("repeated-attribute", at.Line, at.Col, fix, at.Name, display)
			continue
		}
		seen[lower] = at

		if info == nil {
			continue // unknown element already reported; don't cascade
		}
		ai := info.Attr(lower)
		if ai == nil {
			c.emitAt("unknown-attribute", at.Line, at.Col, at.Name, display)
			continue
		}
		if ai.Extension != "" && !c.spec.ExtensionEnabled(ai.Extension) {
			c.emitAt("extension-attribute", at.Line, at.Col, at.Name, display, ai.Extension, c.spec.Version)
		} else if ai.Deprecated {
			c.emitAt("deprecated-attribute", at.Line, at.Col, at.Name, display)
		}
		if at.HasValue {
			c.checkAttrValue(at, ai, display)
		}
	}

	if info == nil {
		return
	}

	// Required attributes. The fix inserts NAME="" before the tag
	// terminator — only when the empty value is legal for the
	// attribute, so the fix cannot trade a required-attribute finding
	// for an attribute-value one.
	for _, reqName := range info.RequiredAttrs() {
		if _, ok := seen[reqName]; !ok {
			var fix *warn.Fix
			if ai := info.Attr(reqName); !garbled && ai != nil && ai.ValidValue("") {
				fix = c.tagFix(tok, insertAttrFix(tok, reqName, c.opts.AttrCase))
			}
			c.emitFixAt("required-attribute", tok.Line, tok.Col, fix, strings.ToUpper(reqName), display)
		}
	}

	c.checkAttrCase(tok, display)
	c.checkSpecialAttrs(tok, name, seen)
}

// checkAttrValue validates one attribute value against its definition.
func (c *Checker) checkAttrValue(at *htmltoken.Attr, ai *htmlspec.AttrInfo, display string) {
	if !ai.ValidValue(at.Value) {
		id := "attribute-value"
		if ai.Type == htmlspec.Color {
			id = "body-colors"
		}
		c.emitAt(id, at.Line, at.Col, strings.ToUpper(at.Name), display, at.Value)
		return
	}
	// Entity references inside the value.
	c.checkEntities(at.Value, -1, at.Line, false)

	if ai.Type == htmlspec.URL && at.Value != "" {
		if scheme, bad := badScheme(at.Value); bad {
			c.emitAt("bad-url-scheme", at.Line, at.Col, scheme, at.Value)
		}
		if ascii.HasPrefixFold(at.Value, "mailto:") {
			c.emitAt("mailto-link", at.Line, at.Col, at.Value)
		}
	}
}

// checkAttrCase implements the optional attribute-case style check.
// The fix rewrites the attribute name span in place; when the name is
// a repeat its rewrite overlaps the pass-2 deletion fix, which was
// emitted first and therefore wins in fixit's conflict resolution —
// exactly right, since deleting the repeat also removes the case
// problem.
func (c *Checker) checkAttrCase(tok *htmltoken.Token, display string) {
	want := c.opts.AttrCase
	if want != "upper" && want != "lower" {
		return
	}
	for i := range tok.Attrs {
		at := &tok.Attrs[i]
		if want == "upper" && ascii.IsUpper(at.Name) || want == "lower" && ascii.IsLower(at.Name) {
			continue
		}
		fix := c.divertFix(tok, caseFix(want+"-case attribute name", at.Name, at.Offset, want))
		c.emitFixAt("attribute-case", at.Line, at.Col, fix, at.Name, display, want)
	}
}

// checkSpecialAttrs holds the per-element attribute checks: IMG's ALT
// and sizing, duplicate IDs and anchor names, META bookkeeping.
func (c *Checker) checkSpecialAttrs(tok *htmltoken.Token, name string, seen map[string]*htmltoken.Attr) {
	switch name {
	case "img":
		if _, ok := seen["alt"]; !ok {
			var fix *warn.Fix
			if !attrsGarbled(tok) {
				fix = c.guardFix(insertAttrFix(tok, "alt", c.opts.AttrCase))
			}
			c.emitFixAt("img-alt", tok.Line, tok.Col, fix)
		}
		_, w := seen["width"]
		_, h := seen["height"]
		if !w || !h {
			c.emitAt("img-size", tok.Line, tok.Col)
		}
	case "a":
		if at, ok := seen["name"]; ok && at.HasValue {
			if first, dup := c.anchors[at.Value]; dup {
				c.emitAt("duplicate-anchor", at.Line, at.Col, at.Value, warn.LineRef(first))
			} else {
				c.anchors[at.Value] = at.Line
			}
		}
	case "meta":
		if at, ok := seen["name"]; ok && at.HasValue {
			c.metaNames[ascii.ToLower(at.Value)] = true
		}
	}
	if at, ok := seen["id"]; ok && at.HasValue {
		if first, dup := c.ids[at.Value]; dup {
			c.emitAt("duplicate-id", at.Line, at.Col, at.Value, warn.LineRef(first))
		} else {
			c.ids[at.Value] = at.Line
		}
	}
}
