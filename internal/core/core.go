// Package core implements weblint's checker engine: a stack machine
// with an ad-hoc parser which uses various heuristics to keep things
// together as it goes along. The heuristics are based on commonly-made
// mistakes in HTML, and exist to minimise the number of warning
// cascades, where a single problem generates a flurry of error
// messages.
//
// The file being processed is tokenised into start tags (possibly with
// attributes), text content, and end tags. When an opening tag is
// seen, it is pushed onto the main stack. Closing tags result in the
// stack being popped. A secondary stack comes into play when
// unexpected things happen, like overlapping elements: it holds
// unresolved tags, and where they appeared.
package core

import (
	"strings"

	"weblint/internal/ascii"
	"weblint/internal/bytestr"
	"weblint/internal/htmlspec"
	"weblint/internal/htmltoken"
	"weblint/internal/plugin"
	"weblint/internal/warn"
)

// Options configures one checking run.
type Options struct {
	// Spec is the HTML version to check against; nil means the
	// default (HTML 4.0).
	Spec *htmlspec.Spec
	// Filename names the document in messages.
	Filename string

	// DisableCascadeSuppression turns off the secondary stack and
	// the overlap heuristics, reporting every forced pop
	// individually. It exists for the E5 ablation experiment; real
	// use keeps it false.
	DisableCascadeSuppression bool
	// DisableImpliedClose turns off silent popping of elements with
	// omissible close tags (also for E5); every implied close is
	// then reported as unclosed-element.
	DisableImpliedClose bool

	// TagCase enables the tag-case style check when set to "upper"
	// or "lower".
	TagCase string
	// AttrCase enables the attribute-case style check when set to
	// "upper" or "lower".
	AttrCase string
	// TitleLength is the TITLE length the title-length check warns
	// beyond; 0 means the default of 64.
	TitleLength int
	// HereWords extends the built-in list of content-free anchor
	// texts checked by here-anchor.
	HereWords []string

	// Plugins are content checkers for non-HTML content embedded in
	// the document (style sheets, scripts) — the paper's Section 6.1
	// plugin mechanism.
	Plugins []plugin.ContentChecker
}

// open is one entry on the main or secondary stack.
type open struct {
	name    string // lower-case element name
	display string // upper-case display name for messages
	line    int
	col     int
	info    *htmlspec.ElementInfo // nil for unknown elements
	content bool                  // element has direct content
	text    []byte                // accumulated text (TITLE, A); reused
	// prevSame chains same-named entries: while the entry is on the
	// main stack it is the stack index of the next-deeper element with
	// this name (-1 for none; see Checker.openTop), and after a move to
	// the secondary stack it is rewritten to the analogous pending
	// index (see Checker.pendingTop).
	prevSame int
}

// requiresClose reports whether popping this element without its close
// tag deserves an unclosed-element message.
func (o *open) requiresClose() bool {
	if o.info == nil {
		return false // unknown element: suppress cascades
	}
	return !o.info.Empty && !o.info.OmitClose
}

// Checker checks one document. Construct with New; re-arm for further
// documents with Reset, which retains the internal maps, stacks and
// buffers so a pooled checker stops allocating once warm.
type Checker struct {
	opts Options
	spec *htmlspec.Spec
	em   *warn.Emitter
	file string

	stack   []*open
	pending []*open // the secondary stack of unresolved tags

	// openTop maps an element name to the stack index of its nearest
	// open instance, or -1; open.prevSame chains to the instance below.
	// It makes inElement and the end-tag match lookup O(1) — per-close
	// stack scans were superlinear on error-dense documents whose
	// unclosed containers pile the stack deep. Maintained by pushOpen
	// and truncateStack, which every stack mutation must go through.
	openTop map[string]int
	// pendingTop is the same chain over the secondary stack. Resolved
	// entries are nil-marked in pending instead of deleted — the
	// mid-slice delete per resolved close was quadratic under
	// close-tag storms.
	pendingTop map[string]int
	// accum holds the stack indices (ascending) of the open elements
	// that accumulate text content (TITLE, A, headings), so text
	// tokens append to the nearest one without scanning the stack.
	accum []int

	// slab backs the open entries pointed at by stack and pending.
	// Entries are handed out in document order and recycled wholesale
	// by Reset; their text buffers survive recycling.
	slab []open

	firstElement bool // a non-doctype element has been seen
	doctypeSeen  bool

	seenOnce map[string]int // once-only element -> first line

	seenHTML  bool
	seenHead  bool
	seenBody  bool
	seenTitle bool
	titleLine int

	seenFrameset bool
	seenNoframes bool

	headContent bool // any head-only element seen

	lastHeading     int // last heading level seen (0 = none)
	lastHeadingName string

	ids     map[string]int // ID attribute value -> first line
	anchors map[string]int // A NAME value -> first line

	metaNames map[string]bool

	attrSeen map[string]*htmltoken.Attr // per-tag duplicate tracking, reused

	lastLine int
	// lastOffset is one past the last byte of the last token seen.
	// Tokens partition the document, so at Finish it is the document
	// length — where the EOF close-tag fixes insert.
	lastOffset int
	// lastUnterminated records that the final token was cut off by
	// end of input (malformed tag, unterminated comment or quote).
	// Text inserted at EOF would be absorbed INTO that construct on a
	// re-parse, so the EOF close-tag fixes are withheld.
	lastUnterminated bool
	// oddQuotesAt is the byte offset of the first token recovered from
	// an unbalanced quote, or -1 while none has been seen. The
	// tokenizer's recovery budget (quoteMaxBytes/quoteMaxNewlines)
	// makes the extent of an odd-quoted tag sensitive to how far away
	// later bytes are, so a length-CHANGING fix editing at or beyond
	// that offset could re-tokenize the document differently. Edits
	// strictly before it only shift the recovered region wholesale —
	// every in-region distance is preserved — so fixes there stay
	// attached; guardFix enforces the boundary per edit.
	// Length-preserving fixes (case rewrites) bypass the guard
	// entirely.
	oddQuotesAt int
	// headInsertPos is the byte offset at which head-only content can
	// be inserted and still land inside the HEAD element: the start of
	// the close (or closing-implying) tag that ended it. -1 until a
	// real HEAD element has been popped; the meta-in-body relocation
	// fix is withheld without it.
	headInsertPos int
	// relocateTok, when non-nil, is the start tag currently being
	// checked that will be relocated by a meta-in-body fix. Fixes the
	// attribute checks build for this tag are diverted into
	// relocateFixes (their messages go out fixless) and applied to the
	// tag's text when the relocation fix is built, so the tag is moved
	// AND cured in one apply pass — two fixes editing the same span
	// would conflict, and fixit would drop one of them. Both fields
	// are scoped to one startTag call.
	relocateTok   *htmltoken.Token
	relocateFixes []*warn.Fix

	// pendingRawText is set after a raw-text element (SCRIPT, STYLE,
	// ...) is pushed. The tokenizer emits no token for an empty raw
	// body (<script></script>), so when the next token is anything but
	// raw text, the element is marked as having content here — exactly
	// what the zero-length raw token used to do — keeping
	// empty-container and the EOF close-tag fixes unchanged. A raw
	// element cut off at end of input leaves the flag set and the
	// element contentless, also as before.
	pendingRawText bool
}

// New returns a Checker which reports through em.
func New(em *warn.Emitter, opts Options) *Checker {
	c := &Checker{
		seenOnce:   map[string]int{},
		ids:        map[string]int{},
		anchors:    map[string]int{},
		metaNames:  map[string]bool{},
		attrSeen:   map[string]*htmltoken.Attr{},
		openTop:    map[string]int{},
		pendingTop: map[string]int{},
	}
	c.Reset(em, opts)
	return c
}

// Reset re-arms the checker for a new document reporting through em,
// keeping allocated state (maps, stacks, text buffers) for reuse.
func (c *Checker) Reset(em *warn.Emitter, opts Options) {
	spec := opts.Spec
	if spec == nil {
		spec = htmlspec.Default()
	}
	file := opts.Filename
	if file == "" {
		file = "-"
	}
	c.opts = opts
	c.spec = spec
	c.em = em
	c.file = file
	c.stack = c.stack[:0]
	c.pending = c.pending[:0]
	c.accum = c.accum[:0]
	clear(c.openTop)
	clear(c.pendingTop)
	c.slab = c.slab[:0]
	c.firstElement = false
	c.doctypeSeen = false
	clear(c.seenOnce)
	c.seenHTML = false
	c.seenHead = false
	c.seenBody = false
	c.seenTitle = false
	c.titleLine = 0
	c.seenFrameset = false
	c.seenNoframes = false
	c.headContent = false
	c.lastHeading = 0
	c.lastHeadingName = ""
	clear(c.ids)
	clear(c.anchors)
	clear(c.metaNames)
	clear(c.attrSeen)
	c.lastLine = 1
	c.lastOffset = 0
	c.lastUnterminated = false
	c.oddQuotesAt = -1
	c.headInsertPos = -1
	c.relocateTok = nil
	c.relocateFixes = c.relocateFixes[:0]
	c.pendingRawText = false
}

// Release drops every reference the checker retains into the last
// checked document — map keys, slab entry names, attribute pointers —
// while keeping the allocated capacity for reuse. Pools should call it
// before parking a checker: Reset alone truncates, leaving the old
// document's substrings reachable through spare slab capacity until
// the entry is next used.
func (c *Checker) Release() {
	clear(c.seenOnce)
	clear(c.ids)
	clear(c.anchors)
	clear(c.metaNames)
	clear(c.attrSeen)
	clear(c.openTop)
	clear(c.pendingTop)
	c.lastHeadingName = ""
	c.stack = c.stack[:0]
	c.pending = c.pending[:0]
	c.accum = c.accum[:0]
	slab := c.slab[:cap(c.slab)]
	for i := range slab {
		slab[i] = open{text: slab[i].text[:0]}
	}
	c.slab = c.slab[:0]
}

// newOpen allocates a stack entry from the slab, reusing entries (and
// their text buffers) recycled by Reset.
func (c *Checker) newOpen(name, display string, line, col int, info *htmlspec.ElementInfo) *open {
	var o *open
	if n := len(c.slab); n < cap(c.slab) {
		c.slab = c.slab[:n+1]
		o = &c.slab[n]
	} else {
		c.slab = append(c.slab, open{})
		o = &c.slab[n]
	}
	text := o.text[:0]
	*o = open{name: name, display: display, line: line, col: col, info: info, text: text}
	return o
}

// Check runs the checker over a whole document.
func Check(src string, em *warn.Emitter, opts Options) {
	c := New(em, opts)
	tz := htmltoken.New(src)
	c.Run(tz)
}

// CheckBytes is Check over a byte slice, without copying it. The
// caller must not mutate src while the call is in progress; after it
// returns, every emitted message owns its text and src may be reused.
func CheckBytes(src []byte, em *warn.Emitter, opts Options) {
	Check(bytestr.String(src), em, opts)
}

// Run feeds every token from tz through the checker and finishes the
// document. It is the streaming core of Check, exposed so callers with
// pooled tokenizers and checkers can drive it without reallocating.
//
// When the emitter's sink cancels the stream (Write returned false),
// Run stops tokenizing promptly and skips the end-of-document checks:
// a cancelled check never pays for the rest of the document.
func (c *Checker) Run(tz *htmltoken.Tokenizer) {
	var tok htmltoken.Token
	for tz.NextInto(&tok) {
		c.token(&tok)
		if c.em.Cancelled() {
			return
		}
	}
	c.Finish()
}

// emit reports a message at a line in the checked file, with no column
// information.
func (c *Checker) emit(id string, line int, args ...any) {
	c.em.Emit(id, c.file, line, 0, args...)
}

// emitAt reports a message at a line and column in the checked file.
// The start-tag and attribute checks use it with tokenizer offsets so
// structured output (JSON, SARIF) carries real columns; columns never
// affect output order (see warn.SortByLine).
func (c *Checker) emitAt(id string, line, col int, args ...any) {
	c.em.Emit(id, c.file, line, col, args...)
}

// emitFix reports a message carrying a machine-applicable fix. A nil
// fix degrades to a plain emit, so emission sites can hand over
// whatever their fix builder returned.
func (c *Checker) emitFix(id string, line int, fix *warn.Fix, args ...any) {
	c.em.EmitFix(id, c.file, line, 0, fix, args...)
}

// emitFixAt is emitFix with column information.
func (c *Checker) emitFixAt(id string, line, col int, fix *warn.Fix, args ...any) {
	c.em.EmitFix(id, c.file, line, col, fix, args...)
}

// Token feeds one token to the checker.
func (c *Checker) Token(tok htmltoken.Token) { c.token(&tok) }

// token is the dispatch core; the token is passed by pointer so the
// (large) Token struct is copied once per token, not once per layer.
func (c *Checker) token(tok *htmltoken.Token) {
	if tok.EndLine > c.lastLine {
		c.lastLine = tok.EndLine
	}
	if end := tok.Offset + len(tok.Raw); end > c.lastOffset {
		c.lastOffset = end
	}
	c.lastUnterminated = tok.Unterminated
	if tok.OddQuotes && c.oddQuotesAt < 0 {
		c.oddQuotesAt = tok.Offset
	}
	if c.pendingRawText {
		c.pendingRawText = false
		if tok.Type != htmltoken.Text || !tok.RawText {
			// Empty raw body: the close tag arrived immediately, so no
			// raw-text token marked the element as having content.
			if t := c.top(); t != nil {
				t.content = true
			}
		}
	}
	switch tok.Type {
	case htmltoken.Doctype:
		c.doctype(tok)
	case htmltoken.Comment:
		c.comment(tok)
	case htmltoken.Text:
		c.text(tok)
	case htmltoken.StartTag:
		c.startTag(tok)
	case htmltoken.EndTag:
		c.endTag(tok)
	case htmltoken.Declaration, htmltoken.ProcInst:
		// SGML declarations and processing instructions are not
		// checked, but they count as markup for DOCTYPE placement.
		c.noteElement(tok.Line)
	}
}

// noteElement records that markup other than a DOCTYPE has been seen,
// emitting doctype-first exactly once at the first such token.
func (c *Checker) noteElement(line int) {
	if c.firstElement {
		return
	}
	c.firstElement = true
	if !c.doctypeSeen {
		c.emit("doctype-first", line)
	}
}

// doctype handles a <!DOCTYPE> declaration.
func (c *Checker) doctype(tok *htmltoken.Token) {
	if c.firstElement {
		c.emit("stray-doctype", tok.Line)
		return
	}
	c.doctypeSeen = true
	if !ascii.ContainsFold(tok.Text, "html") {
		c.emit("require-version", tok.Line)
	}
}

// comment checks an SGML comment token, and handles page-specific
// configuration embedded in comments (the lint tradition, one of the
// paper's Section 6.1 items):
//
//	<!-- weblint: disable img-alt -->
//	<IMG SRC="decoration.gif">
//	<!-- weblint: enable img-alt -->
func (c *Checker) comment(tok *htmltoken.Token) {
	if tok.Unterminated {
		c.emit("unterminated-comment", tok.Line, warn.LineRef(tok.Line))
		return
	}
	if body := strings.TrimSpace(tok.Text); strings.HasPrefix(body, "weblint:") {
		c.inlineDirective(strings.TrimPrefix(body, "weblint:"), tok.Line)
		return // directive comments are not style-checked
	}
	if markupInComment(tok.Text) {
		c.emit("markup-in-comment", tok.Line)
	}
	if strings.Contains(tok.Text, "--") {
		c.emit("nested-comment", tok.Line)
	}
}

// inlineDirective applies one "weblint:" comment directive. The
// mutation is scoped to this check run: it goes into the emitter's
// copy-on-write overlay, never into the shared enablement set.
func (c *Checker) inlineDirective(text string, line int) {
	fields := strings.Fields(text)
	if len(fields) < 2 {
		c.emit("bad-inline-directive", line, strings.TrimSpace(text))
		return
	}
	var apply func(string) error
	switch fields[0] {
	case "enable":
		apply = c.em.Enable
	case "disable":
		apply = c.em.Disable
	default:
		c.emit("bad-inline-directive", line, strings.TrimSpace(text))
		return
	}
	for _, id := range fields[1:] {
		if err := apply(strings.Trim(id, ",")); err != nil {
			c.emit("bad-inline-directive", line, strings.TrimSpace(text))
			return
		}
	}
}

// markupInComment reports whether a comment body appears to contain
// commented-out markup.
func markupInComment(text string) bool {
	for i := 0; i+1 < len(text); i++ {
		if text[i] != '<' {
			continue
		}
		c := text[i+1]
		if c == '/' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			return true
		}
	}
	return false
}

// top returns the top of the main stack, or nil when empty.
func (c *Checker) top() *open {
	if len(c.stack) == 0 {
		return nil
	}
	return c.stack[len(c.stack)-1]
}

// inElement returns the nearest open element with the given lower-case
// name on the main stack, or nil. One map probe, not a stack scan.
func (c *Checker) inElement(name string) *open {
	if i, ok := c.openTop[name]; ok && i >= 0 {
		return c.stack[i]
	}
	return nil
}

// pushOpen pushes an element onto the main stack, threading the
// openTop same-name chain and the accumulating-element index stack.
func (c *Checker) pushOpen(o *open) {
	idx := len(c.stack)
	prev, ok := c.openTop[o.name]
	if !ok {
		prev = -1
	}
	o.prevSame = prev
	c.openTop[o.name] = idx
	c.stack = append(c.stack, o)
	if o.name == "title" || o.name == "a" || headingLevel(o.name) > 0 {
		c.accum = append(c.accum, idx)
	}
}

// truncateStack pops the main stack down to n entries, unwinding the
// openTop chains and the accum indices for everything popped. Every
// stack truncation must go through here so the indexes stay exact.
func (c *Checker) truncateStack(n int) {
	for i := len(c.stack) - 1; i >= n; i-- {
		c.openTop[c.stack[i].name] = c.stack[i].prevSame
	}
	c.stack = c.stack[:n]
	for len(c.accum) > 0 && c.accum[len(c.accum)-1] >= n {
		c.accum = c.accum[:len(c.accum)-1]
	}
}

// pushPending moves o to the secondary stack, threading the
// pendingTop same-name chain (o has already left the main stack, so
// its prevSame link is free to reuse).
func (c *Checker) pushPending(o *open) {
	prev, ok := c.pendingTop[o.name]
	if !ok {
		prev = -1
	}
	o.prevSame = prev
	c.pendingTop[o.name] = len(c.pending)
	c.pending = append(c.pending, o)
}

// takePending resolves and returns the most recent secondary-stack
// entry with the given name, or nil. The slot is nil-marked; order is
// preserved for Finish without a mid-slice delete.
func (c *Checker) takePending(name string) *open {
	i, ok := c.pendingTop[name]
	if !ok || i < 0 {
		return nil
	}
	o := c.pending[i]
	c.pendingTop[name] = o.prevSame
	c.pending[i] = nil
	return o
}

// Finish runs the end-of-document checks: unclosed elements left on
// either stack, and whole-document structure checks.
func (c *Checker) Finish() {
	// Elements still open at end of document. Fixes insert the missing
	// close tags at end of document, innermost first so the inserted
	// tags nest. The chain stops at the first element that cannot be
	// closed safely: inserting a close tag for an element OUTSIDE it
	// would cross the unfixed one and change what a re-lint reports.
	// (The odd-quotes guard always withholds these: the insertion
	// point is the end of the document, behind any recovery point.)
	closable := !c.lastUnterminated
	for i := len(c.stack) - 1; i >= 0; i-- {
		o := c.stack[i]
		if o.requiresClose() {
			var fix *warn.Fix
			if closable && c.closableAtEOF(o) {
				fix = c.guardFix(closeElementFix(o, c.opts.TagCase, c.lastOffset))
			}
			if fix == nil {
				closable = false
			}
			c.emitFix("unclosed-element", c.lastLine, fix, o.display, o.display, warn.LineRef(o.line))
		} else {
			c.popChecks(o)
		}
	}
	c.truncateStack(0)
	for i := len(c.pending) - 1; i >= 0; i-- {
		o := c.pending[i]
		if o == nil {
			continue // already resolved by its own close tag
		}
		if o.requiresClose() {
			c.emit("unclosed-element", c.lastLine, o.display, o.display, warn.LineRef(o.line))
		}
	}
	c.pending = c.pending[:0]
	clear(c.pendingTop)

	if !c.seenHTML {
		c.emit("html-outer", 1)
	}
	if !c.seenHead && !c.headContent {
		c.emit("require-head", 1)
	}
	if !c.seenTitle {
		c.emit("require-title", 1)
	}
	if c.seenFrameset && !c.seenNoframes {
		c.emit("require-noframes", c.lastLine)
	}
	for _, name := range []string{"description", "keywords"} {
		if !c.metaNames[name] {
			c.emit("require-meta", 1, name)
		}
	}
}
