package core

import (
	"strings"

	"weblint/internal/ascii"
)

// defaultTitleLength is the TITLE length beyond which title-length
// warns; many browsers of the era displayed at most about 64
// characters of title.
const defaultTitleLength = 64

// hereWords is the built-in list of content-free anchor texts checked
// by here-anchor; it can be extended through Options.HereWords (and
// the "add here-words" configuration directive).
var hereWords = map[string]bool{
	"here":       true,
	"click here": true,
	"click":      true,
	"this":       true,
	"this link":  true,
	"link":       true,
	"more":       true,
	"read more":  true,
	"click this": true,
	"go":         true,
}

// PhysicalToLogical maps physical font markup to the logical markup
// the physical-font style check suggests.
var PhysicalToLogical = map[string]string{
	"b":  "STRONG",
	"i":  "EM",
	"tt": "CODE",
}

// knownSchemes are the URL schemes in common use when a link's scheme
// is checked; anything else is most likely a typo.
var knownSchemes = map[string]bool{
	"http":       true,
	"https":      true,
	"ftp":        true,
	"mailto":     true,
	"news":       true,
	"nntp":       true,
	"telnet":     true,
	"gopher":     true,
	"wais":       true,
	"file":       true,
	"javascript": true,
}

// badScheme extracts the scheme from a URL-valued attribute and
// reports whether it is suspicious. Relative URLs have no scheme and
// are never suspicious.
func badScheme(u string) (scheme string, bad bool) {
	i := strings.IndexByte(u, ':')
	if i <= 0 {
		return "", false
	}
	s := u[:i]
	for j := 0; j < len(s); j++ {
		c := s[j]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '+' || c == '-' || c == '.'
		if !ok || (j == 0 && !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z')) {
			return "", false // not a scheme at all (e.g. a path with ':')
		}
	}
	if knownSchemes[ascii.ToLower(s)] {
		return s, false
	}
	return s, true
}

// headingLevel returns 1-6 for h1..h6 and 0 otherwise.
func headingLevel(name string) int {
	if len(name) == 2 && name[0] == 'h' && name[1] >= '1' && name[1] <= '6' {
		return int(name[1] - '0')
	}
	return 0
}

// contextList renders an element's legal-context list for messages,
// e.g. "UL, OL, DIR or MENU".
func contextList(ctx []string) string {
	upper := make([]string, len(ctx))
	for i, c := range ctx {
		upper[i] = strings.ToUpper(c)
	}
	switch len(upper) {
	case 0:
		return ""
	case 1:
		return upper[0]
	default:
		return strings.Join(upper[:len(upper)-1], ", ") + " or " + upper[len(upper)-1]
	}
}

// isNameTokenValue reports whether an unquoted attribute value is a
// legal SGML name token (letters, digits, periods and hyphens); any
// other unquoted value should be quoted.
func isNameTokenValue(v string) bool {
	if v == "" {
		return false
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '.':
		default:
			return false
		}
	}
	return true
}
