package core

import (
	"bytes"
	"strings"

	"weblint/internal/ascii"
	"weblint/internal/htmlspec"
	"weblint/internal/htmltoken"
	"weblint/internal/warn"
)

// endTag handles a closing tag. This is where the two-stack heuristics
// live: matching against the main stack, implied closes of omissible
// elements, the overlap-vs-unclosed distinction, and silent resolution
// of tags previously moved to the secondary stack.
func (c *Checker) endTag(tok *htmltoken.Token) {
	c.noteElement(tok.Line)

	name := tok.Lower
	display := c.spec.Display(name)
	info := c.spec.Element(name)

	if tok.Unterminated {
		c.emitAt("malformed-tag", tok.Line, tok.Col)
		return
	}
	if tok.OddQuotes {
		c.emitAt("odd-quotes", tok.Line, tok.Col, tok.Raw)
	} else if len(tok.Attrs) > 0 {
		c.emitAt("closing-attribute", tok.Line, tok.Col, display)
	}
	c.checkTagCase(tok, display, c.willRewriteEndTag(name, info))

	// Close tags for empty elements are never legal; the fix deletes
	// the tag (an empty element has no content to un-close).
	if info != nil && info.Empty {
		c.emitFix("empty-element-close", tok.Line, c.guardFix(deleteTagFix("remove illegal close tag", tok)), display, display)
		return
	}

	// Find the matching open element on the main stack: one openTop
	// probe instead of a per-close stack scan.
	idx := -1
	if i, ok := c.openTop[name]; ok {
		idx = i
	}

	if idx < 0 {
		c.unmatchedClose(tok, name, display, info == nil)
		return
	}

	intervening := c.stack[idx+1:]
	matched := c.stack[idx]
	c.truncateStack(idx)
	// Everything from idx up is leaving the stack at this tag; a HEAD
	// among them marks where head-only content can still be inserted.
	c.noteHeadPop(matched, tok.Offset)
	for _, o := range intervening {
		c.noteHeadPop(o, tok.Offset)
	}

	if len(intervening) == 0 {
		c.popChecks(matched)
		return
	}

	if c.opts.DisableCascadeSuppression {
		// Ablation mode: report every forced pop individually and
		// never defer to the secondary stack.
		for i := len(intervening) - 1; i >= 0; i-- {
			o := intervening[i]
			c.emit("unclosed-element", tok.Line, o.display, o.display, warn.LineRef(o.line))
		}
		c.popChecks(matched)
		return
	}

	// Heuristic: when an inline element's close tag crosses other
	// elements, the document most likely has overlapping markup such
	// as <B><A>..</B>..</A>; report the overlap once and move the
	// crossed elements to the secondary stack so their own close
	// tags resolve silently later. When a structural container's
	// close tag forces elements shut, those closes are simply
	// missing: report each as unclosed-element, with a fix inserting
	// the missing close tag just before this one — innermost first,
	// so the inserted tags nest. As at end of document, the fix chain
	// stops at the first element that cannot be closed safely.
	structuralClose := info == nil || !info.Inline
	closable := true

	for i := len(intervening) - 1; i >= 0; i-- {
		o := intervening[i]
		if !o.requiresClose() {
			// Omissible or unknown: implied close, no message.
			if c.opts.DisableImpliedClose && o.info != nil {
				c.emit("unclosed-element", tok.Line, o.display, o.display, warn.LineRef(o.line))
			} else {
				c.popChecks(o)
			}
			continue
		}
		if structuralClose {
			var fix *warn.Fix
			if closable && c.closableAtEOF(o) {
				fix = c.guardFix(closeElementFix(o, c.opts.TagCase, tok.Offset))
			}
			if fix == nil {
				closable = false
			}
			c.emitFix("unclosed-element", tok.Line, fix, o.display, o.display, warn.LineRef(o.line))
		} else {
			c.emit("element-overlap", tok.Line, display, warn.LineRef(tok.Line), o.display, warn.LineRef(o.line))
			c.pushPending(o)
		}
	}
	c.popChecks(matched)
}

// willRewriteEndTag predicts whether this end tag will be reported
// with a fix that deletes or renames the whole tag (empty-element-
// close, unmatched-close, or the heading-mismatch rename), so the
// tag-case check can withhold its in-span rewrite — a case fix inside
// a deleted or renamed span would win the conflict and block the real
// fix. It mirrors the dispatch below with read-only stack scans.
func (c *Checker) willRewriteEndTag(name string, info *htmlspec.ElementInfo) bool {
	if info == nil {
		return false // unknown-element path, no deletion fix
	}
	if info.Empty {
		return true // empty-element-close deletes the tag
	}
	if c.inElement(name) != nil {
		return false // matches an open element
	}
	if headingLevel(name) > 0 {
		if t := c.top(); t != nil && headingLevel(t.name) > 0 {
			// heading-mismatch path: a safe rename rewrites the name
			// span (and restores the configured case along the way);
			// an unsafe one attaches no fix, so the case fix may run.
			return headingRenameSafe(t)
		}
	}
	if i, ok := c.pendingTop[name]; ok && i >= 0 {
		return false // resolves a pending overlap silently
	}
	return true // unmatched-close deletes the tag
}

// noteHeadPop records the offset at which the HEAD element ended —
// the point where the meta-in-body relocation fix can insert head
// content. Only the first HEAD counts (a second one is a once-only
// error anyway).
func (c *Checker) noteHeadPop(o *open, off int) {
	if o.name == "head" && c.headInsertPos < 0 {
		c.headInsertPos = off
	}
}

// unmatchedClose handles a close tag with no matching open element:
// heading cross-matching, secondary-stack resolution, and finally the
// unmatched-close message.
func (c *Checker) unmatchedClose(tok *htmltoken.Token, name, display string, unknown bool) {
	// </H2> closing an open <H1> is reported as a malformed heading
	// rather than a stray close tag. The fix renames the close tag to
	// the open heading's name — length-preserving (headings are all
	// two bytes), so it needs no odd-quotes guard — gated on the
	// renamed close popping cleanly through popChecks on a re-lint.
	if headingLevel(name) > 0 {
		if t := c.top(); t != nil && headingLevel(t.name) > 0 {
			var fix *warn.Fix
			if headingRenameSafe(t) {
				fix = renameCloseFix(tok, t, c.opts.TagCase)
			}
			c.emitFix("heading-mismatch", tok.Line, fix, t.display, display)
			c.truncateStack(len(c.stack) - 1)
			return
		}
	}

	// Tags moved to the secondary stack resolve silently: their
	// overlap has already been reported. Content checks (anchor
	// text, title length) still run on resolution. takePending
	// nil-marks the slot — deleting mid-slice here cost a tail copy
	// per close, quadratic under a close-tag storm.
	if o := c.takePending(name); o != nil {
		c.popChecks(o)
		return
	}

	if unknown {
		c.emit("unknown-element", tok.Line, display)
		return
	}
	// A stray close tag is a no-op on the element stack; deleting it
	// is always safe.
	c.emitFix("unmatched-close", tok.Line, c.guardFix(deleteTagFix("remove unmatched close tag", tok)), display)
}

// popChecks runs the checks performed when an element leaves the stack
// in an orderly way: empty containers, TITLE content, content-free
// anchor text.
func (c *Checker) popChecks(o *open) {
	if o.info == nil {
		return
	}
	if !o.content && !o.info.Empty && !o.info.EmptyOK {
		if o.name == "title" {
			c.emit("empty-title", o.line)
		} else {
			c.emit("empty-container", o.line, o.display)
		}
	}
	switch {
	case o.name == "title":
		c.checkTitleText(o)
	case o.name == "a":
		c.checkAnchorText(o)
	case headingLevel(o.name) > 0:
		c.checkContainerWhitespace(o)
	}
}

// checkContainerWhitespace reports leading or trailing whitespace in
// the content of a container such as a heading (style, off by
// default). The leading/trailing test uses the historical " \t\r\n"
// set; the emptiness gate is full Unicode whitespace, as before.
func (c *Checker) checkContainerWhitespace(o *open) {
	raw := o.text
	if len(bytes.TrimSpace(raw)) == 0 {
		return
	}
	if isStyleSpace(raw[0]) {
		c.emit("container-whitespace", o.line, "leading", o.display)
	}
	if isStyleSpace(raw[len(raw)-1]) {
		c.emit("container-whitespace", o.line, "trailing", o.display)
	}
}

// isStyleSpace matches the whitespace set the container-whitespace
// check has always used.
func isStyleSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}

// checkTitleText checks the accumulated TITLE content length.
func (c *Checker) checkTitleText(o *open) {
	limit := c.opts.TitleLength
	if limit <= 0 {
		limit = defaultTitleLength
	}
	if n := len(bytes.TrimSpace(o.text)); n > limit {
		c.emit("title-length", o.line, n, limit)
	}
}

// checkAnchorText checks anchor content for content-free phrases and
// sloppy whitespace.
func (c *Checker) checkAnchorText(o *open) {
	trimmed := bytes.TrimSpace(o.text)
	if len(trimmed) == 0 {
		return
	}
	if len(trimmed) != len(o.text) {
		c.emit("anchor-whitespace", o.line)
	}
	if c.isHereText(trimmed) {
		c.emit("here-anchor", o.line, string(trimmed))
	}
}

// isHereText reports whether anchor text, whitespace-normalised and
// lower-cased, is one of the content-free phrases. Anchor text that is
// already normalised — pure ASCII, no upper-case letters, no
// whitespace beyond single spaces, the overwhelmingly common shape —
// is matched without copying; anything else takes the exact
// Fields/ToLower path the check has always used.
func (c *Checker) isHereText(trimmed []byte) bool {
	if anchorTextNormalised(trimmed) {
		if hereWords[string(trimmed)] {
			return true
		}
		for _, w := range c.opts.HereWords {
			if ascii.EqualFoldBytes(trimmed, w) {
				return true
			}
		}
		return false
	}
	norm := strings.Join(strings.Fields(strings.ToLower(string(trimmed))), " ")
	for _, w := range c.opts.HereWords {
		if norm == strings.ToLower(w) {
			return true
		}
	}
	return hereWords[norm]
}

// anchorTextNormalised reports whether b is already in normalised
// form: ASCII-only, no upper-case letters, and no whitespace other
// than single spaces. Non-ASCII bytes and exotic whitespace send the
// text down the exact slow path instead.
func anchorTextNormalised(b []byte) bool {
	for i := 0; i < len(b); i++ {
		c := b[i]
		switch {
		case c >= 0x80 || 'A' <= c && c <= 'Z':
			return false
		case c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v':
			return false
		case c == ' ' && i+1 < len(b) && b[i+1] == ' ':
			return false
		}
	}
	return true
}
