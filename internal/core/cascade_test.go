package core

import (
	"testing"

	"weblint/internal/corpus"
	"weblint/internal/warn"
)

// countMessages runs the default-enabled checker over src with the
// given ablation switches and returns the message count.
func countMessages(src string, disableCascade, disableImplied bool) int {
	em := warn.NewEmitter(nil)
	Check(src, em, Options{
		Filename:                  "x.html",
		DisableCascadeSuppression: disableCascade,
		DisableImpliedClose:       disableImplied,
	})
	return len(em.Messages())
}

// TestE5OverlapCascade: a single overlap produces one message with the
// heuristics on; with the secondary stack ablated it produces a
// message per crossed element plus an unmatched close.
func TestE5OverlapCascade(t *testing.T) {
	src := valid(`<B><I><A HREF="x.html">text</B></I></A>`)

	on := checkAll(t, src, Options{})
	onCounts := ids(on)
	if onCounts["element-overlap"] == 0 {
		t.Fatal("no overlap detected with heuristics on")
	}
	if onCounts["unmatched-close"] != 0 || onCounts["unclosed-element"] != 0 {
		t.Errorf("cascade leaked with heuristics on: %v", onCounts)
	}

	off := checkAll(t, src, Options{DisableCascadeSuppression: true})
	offCounts := ids(off)
	if offCounts["unclosed-element"] == 0 || offCounts["unmatched-close"] == 0 {
		t.Errorf("ablated run should cascade: %v", offCounts)
	}
	if len(off) <= len(on) {
		t.Errorf("ablated run produced %d messages, heuristic run %d; expected more",
			len(off), len(on))
	}
}

// TestE5ImpliedCloseAblation: legal SGML omission (LI, P, TD) is
// silent normally and noisy with implied-close ablated.
func TestE5ImpliedCloseAblation(t *testing.T) {
	src := valid(`<UL><LI>one<LI>two<LI>three</UL><P>a<P>b`)

	if n := countMessages(src, false, false); n != 0 {
		t.Errorf("legal omission produced %d messages with heuristics on", n)
	}
	if n := countMessages(src, false, true); n == 0 {
		t.Error("implied-close ablation produced no messages")
	}
}

// TestE5CascadeSuppression runs the corpus with error injection
// through both configurations, pinning that the heuristics
// substantially reduce message volume on the same documents — the
// paper's "minimise the number of warning cascades".
func TestE5CascadeSuppression(t *testing.T) {
	var withH, withoutH int
	for seed := int64(0); seed < 20; seed++ {
		src := corpus.Generate(corpus.Config{
			Seed:     seed,
			Sections: 4,
			Errors:   corpus.ErrorRates{Overlap: 0.4, DropClose: 0.3},
		})
		withH += countMessages(src, false, false)
		withoutH += countMessages(src, true, true)
	}
	if withH == 0 {
		t.Fatal("corpus produced no messages at all")
	}
	if withoutH <= withH {
		t.Errorf("heuristics on: %d messages, off: %d; ablation should be noisier", withH, withoutH)
	}
	ratio := float64(withoutH) / float64(withH)
	t.Logf("E5: %d messages with heuristics, %d without (%.2fx cascade reduction)", withH, withoutH, ratio)
}

// TestPendingResolvedAtEOF: tags moved to the secondary stack whose
// closes never arrive are reported at end of document.
func TestPendingResolvedAtEOF(t *testing.T) {
	src := valid(`<B><A HREF="x.html">text</B> trailing`)
	msgs := checkAll(t, src, Options{})
	requireID(t, msgs, "element-overlap")
	requireID(t, msgs, "unclosed-element") // the <A> never closed
}

// TestStructuralCloseReportsUnclosed: a structural close forces
// unclosed-element, not overlap, per the heuristic.
func TestStructuralCloseReportsUnclosed(t *testing.T) {
	src := "<HTML><HEAD><TITLE>x</HEAD><BODY>y</BODY></HTML>"
	msgs := checkAll(t, src, Options{})
	requireID(t, msgs, "unclosed-element")
	forbidID(t, msgs, "element-overlap")
}

// TestInlineCloseReportsOverlap: an inline close crossing an element
// reports overlap, not unclosed.
func TestInlineCloseReportsOverlap(t *testing.T) {
	src := valid(`<B><A HREF="x">y</B></A>`)
	msgs := checkAll(t, src, Options{})
	requireID(t, msgs, "element-overlap")
	forbidID(t, msgs, "unclosed-element")
}
