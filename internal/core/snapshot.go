package core

import (
	"bytes"
	"maps"
	"slices"

	"weblint/internal/htmltoken"
	"weblint/internal/textpos"
)

// This file implements checkpointing for the incremental re-lint: a
// Snapshot is a deep copy of every piece of Checker state that depends
// on the document seen so far, taken at a token boundary. A re-lint of
// an edited document restores the nearest snapshot before the edit,
// re-tokenizes forward, and — once the live state again matches an old
// snapshot beyond the edit under the position shift — splices the
// cached remainder of the original finding stream instead of linting
// the rest of the document.
//
// The state compare is by VALUE under the single-valued textpos.Shift
// mapping. That is sound because the checker consumes positions only
// by copying them into output and by order-preserving comparisons
// (guardFix's oddQuotesAt boundary test), so two runs whose state is
// value-equal under the shift behave identically on an identical
// suffix of tokens.
//
// Not captured, by design:
//   - opts, spec, em wiring, file: fixed for the session (Reset-time).
//   - slab: an allocation pool; Restore rebuilds entries on the heap.
//   - attrSeen: per-tag scratch, cleared at each use.
//   - relocateTok/relocateFixes: scoped to a single startTag call,
//     always nil/empty at token boundaries.

// Snapshot is a deep, immutable copy of a Checker's document-dependent
// state at a token boundary. It may be restored any number of times;
// Restore never aliases the snapshot's own storage.
type Snapshot struct {
	stack   []*open
	pending []*open // nil slots = resolved entries, order preserved

	openTop    map[string]int
	pendingTop map[string]int
	accum      []int

	firstElement bool
	doctypeSeen  bool

	seenOnce map[string]int // values are lines

	seenHTML  bool
	seenHead  bool
	seenBody  bool
	seenTitle bool
	titleLine int // line (0 = unset)

	seenFrameset bool
	seenNoframes bool

	headContent bool

	lastHeading     int // heading level, not a position
	lastHeadingName string

	ids     map[string]int // values are lines
	anchors map[string]int // values are lines

	metaNames map[string]bool

	lastLine         int // line
	lastOffset       int // byte offset
	lastUnterminated bool
	oddQuotesAt      int // byte offset, -1 = unset
	headInsertPos    int // byte offset, -1 = unset
	pendingRawText   bool

	overlay map[string]bool // emitter inline-directive overlay
}

func cloneOpen(o *open) *open {
	if o == nil {
		return nil
	}
	cp := *o
	if len(o.text) > 0 {
		cp.text = append([]byte(nil), o.text...)
	} else {
		cp.text = nil
	}
	return &cp
}

func cloneOpens(src []*open) []*open {
	if len(src) == 0 {
		return nil
	}
	out := make([]*open, len(src))
	for i, o := range src {
		out[i] = cloneOpen(o)
	}
	return out
}

// Snapshot deep-copies the checker's document-dependent state,
// including the emitter's inline-directive overlay. It must be called
// only at a token boundary (never from inside a token callback).
func (c *Checker) Snapshot() *Snapshot {
	return &Snapshot{
		stack:   cloneOpens(c.stack),
		pending: cloneOpens(c.pending),

		openTop:    maps.Clone(c.openTop),
		pendingTop: maps.Clone(c.pendingTop),
		accum:      slices.Clone(c.accum),

		firstElement: c.firstElement,
		doctypeSeen:  c.doctypeSeen,

		seenOnce: maps.Clone(c.seenOnce),

		seenHTML:  c.seenHTML,
		seenHead:  c.seenHead,
		seenBody:  c.seenBody,
		seenTitle: c.seenTitle,
		titleLine: c.titleLine,

		seenFrameset: c.seenFrameset,
		seenNoframes: c.seenNoframes,

		headContent: c.headContent,

		lastHeading:     c.lastHeading,
		lastHeadingName: c.lastHeadingName,

		ids:     maps.Clone(c.ids),
		anchors: maps.Clone(c.anchors),

		metaNames: maps.Clone(c.metaNames),

		lastLine:         c.lastLine,
		lastOffset:       c.lastOffset,
		lastUnterminated: c.lastUnterminated,
		oddQuotesAt:      c.oddQuotesAt,
		headInsertPos:    c.headInsertPos,
		pendingRawText:   c.pendingRawText,

		overlay: c.em.CloneOverlay(),
	}
}

// restoreMap replaces dst's contents with a copy of src, reusing dst's
// storage. Returns dst (allocated if nil).
func restoreMap[V any](dst, src map[string]V) map[string]V {
	if dst == nil {
		dst = make(map[string]V, len(src))
	} else {
		clear(dst)
	}
	maps.Copy(dst, src)
	return dst
}

// Restore rewinds the checker to the snapshotted state. The snapshot
// is not consumed: stack entries are deep-copied back out, so the same
// snapshot can seed any number of re-lints. The emitter the checker
// reports through has its inline-directive overlay restored too.
// Scratch state scoped to a single token (attrSeen, relocation
// diversion) is cleared.
func (c *Checker) Restore(s *Snapshot) {
	c.stack = append(c.stack[:0], cloneOpens(s.stack)...)
	c.pending = append(c.pending[:0], cloneOpens(s.pending)...)
	c.openTop = restoreMap(c.openTop, s.openTop)
	c.pendingTop = restoreMap(c.pendingTop, s.pendingTop)
	c.accum = append(c.accum[:0], s.accum...)

	c.firstElement = s.firstElement
	c.doctypeSeen = s.doctypeSeen
	c.seenOnce = restoreMap(c.seenOnce, s.seenOnce)
	c.seenHTML = s.seenHTML
	c.seenHead = s.seenHead
	c.seenBody = s.seenBody
	c.seenTitle = s.seenTitle
	c.titleLine = s.titleLine
	c.seenFrameset = s.seenFrameset
	c.seenNoframes = s.seenNoframes
	c.headContent = s.headContent
	c.lastHeading = s.lastHeading
	c.lastHeadingName = s.lastHeadingName
	c.ids = restoreMap(c.ids, s.ids)
	c.anchors = restoreMap(c.anchors, s.anchors)
	c.metaNames = restoreMap(c.metaNames, s.metaNames)

	c.lastLine = s.lastLine
	c.lastOffset = s.lastOffset
	c.lastUnterminated = s.lastUnterminated
	c.oddQuotesAt = s.oddQuotesAt
	c.headInsertPos = s.headInsertPos
	c.pendingRawText = s.pendingRawText

	clear(c.attrSeen)
	c.relocateTok = nil
	c.relocateFixes = c.relocateFixes[:0]

	c.em.RestoreOverlay(s.overlay)
}

// openEqualShifted reports whether live open entry b (new-document
// positions) equals snapshotted entry a (old-document positions) under
// the shift. Element identity is by pointer for the spec info (both
// runs resolve through the same spec instance) and by bytes for the
// accumulated text: an element still accumulating across the edit
// window compares unequal and the caller retries at a later boundary.
func openEqualShifted(a, b *open, sh *textpos.Shift) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.name != b.name || a.display != b.display || a.info != b.info ||
		a.content != b.content || a.prevSame != b.prevSame {
		return false
	}
	line, col, ok := sh.Pos(a.line, a.col)
	if !ok || line != b.line || col != b.col {
		return false
	}
	return bytes.Equal(a.text, b.text)
}

// lineMapEqualShifted compares a snapshotted name→line map against the
// live one, shifting each snapshotted line.
func lineMapEqualShifted(snap, live map[string]int, sh *textpos.Shift) bool {
	if len(snap) != len(live) {
		return false
	}
	for k, v := range snap {
		sv, ok := sh.Line(v)
		if !ok {
			return false
		}
		lv, ok := live[k]
		if !ok || lv != sv {
			return false
		}
	}
	return true
}

// offEqualShifted compares a byte-offset field with a -1 "unset"
// sentinel passed through unshifted.
func offEqualShifted(snap, live int, sh *textpos.Shift) bool {
	if snap < 0 || live < 0 {
		return snap == live
	}
	sv, ok := sh.Off(snap)
	return ok && sv == live
}

// LiveEquals reports whether the checker's current state equals the
// snapshot under the position shift — i.e. whether a run that reached
// this snapshot in the old document and the live run in the edited one
// are guaranteed to behave identically on the identical remaining
// bytes. Every positional field in the snapshot must map successfully
// (ok shift) onto the live value; any unmappable position means the
// comparison is undecidable and reports false.
func (s *Snapshot) LiveEquals(c *Checker, sh *textpos.Shift) bool {
	if len(s.stack) != len(c.stack) || len(s.pending) != len(c.pending) {
		return false
	}
	for i := range s.stack {
		if !openEqualShifted(s.stack[i], c.stack[i], sh) {
			return false
		}
	}
	for i := range s.pending {
		if !openEqualShifted(s.pending[i], c.pending[i], sh) {
			return false
		}
	}
	if !maps.Equal(s.openTop, c.openTop) || !maps.Equal(s.pendingTop, c.pendingTop) ||
		!slices.Equal(s.accum, c.accum) {
		return false
	}
	if s.firstElement != c.firstElement || s.doctypeSeen != c.doctypeSeen ||
		s.seenHTML != c.seenHTML || s.seenHead != c.seenHead ||
		s.seenBody != c.seenBody || s.seenTitle != c.seenTitle ||
		s.seenFrameset != c.seenFrameset || s.seenNoframes != c.seenNoframes ||
		s.headContent != c.headContent ||
		s.lastHeading != c.lastHeading || s.lastHeadingName != c.lastHeadingName ||
		s.lastUnterminated != c.lastUnterminated ||
		s.pendingRawText != c.pendingRawText {
		return false
	}
	if !maps.Equal(s.metaNames, c.metaNames) {
		return false
	}
	if !lineMapEqualShifted(s.seenOnce, c.seenOnce, sh) ||
		!lineMapEqualShifted(s.ids, c.ids, sh) ||
		!lineMapEqualShifted(s.anchors, c.anchors, sh) {
		return false
	}
	if s.titleLine == 0 || c.titleLine == 0 {
		if s.titleLine != c.titleLine {
			return false
		}
	} else if tl, ok := sh.Line(s.titleLine); !ok || tl != c.titleLine {
		return false
	}
	if ll, ok := sh.Line(s.lastLine); !ok || ll != c.lastLine {
		return false
	}
	if lo, ok := sh.Off(s.lastOffset); !ok || lo != c.lastOffset {
		return false
	}
	if !offEqualShifted(s.oddQuotesAt, c.oddQuotesAt, sh) ||
		!offEqualShifted(s.headInsertPos, c.headInsertPos, sh) {
		return false
	}
	return c.em.OverlayEquals(s.overlay)
}

// Rebase shifts every position in the snapshot (in place) from
// old-document to new-document coordinates, so a checkpoint taken
// after the edit window in the original pass stays usable for future
// edits. It reports false when any position cannot be mapped; the
// snapshot is then partially mutated and must be discarded.
func (s *Snapshot) Rebase(sh *textpos.Shift) bool {
	rebaseOpen := func(o *open) bool {
		if o == nil {
			return true
		}
		line, col, ok := sh.Pos(o.line, o.col)
		if !ok {
			return false
		}
		o.line, o.col = line, col
		return true
	}
	for _, o := range s.stack {
		if !rebaseOpen(o) {
			return false
		}
	}
	for _, o := range s.pending {
		if !rebaseOpen(o) {
			return false
		}
	}
	// When the edit left the line count unchanged, Line is the identity
	// for every line, so the per-entry rewrite of the line maps — the
	// bulk of a rebase on anchor-heavy documents — is a no-op. This is
	// the common editor case (typing within one line), so it is worth
	// short-circuiting: a 1 MiB session rebases every suffix snapshot on
	// every edit.
	if sh.LineDelta != 0 {
		rebaseLineMap := func(m map[string]int) bool {
			for k, v := range m {
				nv, ok := sh.Line(v)
				if !ok {
					return false
				}
				m[k] = nv
			}
			return true
		}
		if !rebaseLineMap(s.seenOnce) || !rebaseLineMap(s.ids) || !rebaseLineMap(s.anchors) {
			return false
		}
		if s.titleLine != 0 {
			tl, ok := sh.Line(s.titleLine)
			if !ok {
				return false
			}
			s.titleLine = tl
		}
	}
	ll, ok := sh.Line(s.lastLine)
	if !ok {
		return false
	}
	s.lastLine = ll
	lo, ok := sh.Off(s.lastOffset)
	if !ok {
		return false
	}
	s.lastOffset = lo
	if s.oddQuotesAt >= 0 {
		oq, ok := sh.Off(s.oddQuotesAt)
		if !ok {
			return false
		}
		s.oddQuotesAt = oq
	}
	if s.headInsertPos >= 0 {
		hp, ok := sh.Off(s.headInsertPos)
		if !ok {
			return false
		}
		s.headInsertPos = hp
	}
	return true
}

// Step feeds one token to the checker by pointer: Token without the
// per-call struct copy, for streaming drivers that also checkpoint
// between tokens (the incremental lint Session).
func (c *Checker) Step(tok *htmltoken.Token) { c.token(tok) }
