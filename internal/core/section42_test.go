package core

import (
	"strings"
	"testing"

	"weblint/internal/warn"
)

// Section42HTML is the example page from Section 4.2 of the paper,
// verbatim.
const Section42HTML = `<HTML>
<HEAD>
<TITLE>example page
</HEAD>
<BODY BGCOLOR="fffff" TEXT=#00ff00>
<H1>My Example</H2>
Click <B><A HREF="a.html>here</B></A>
for more details.
</BODY>
</HTML>
`

// checkString is a test helper running the checker with default
// options over src.
func checkString(t *testing.T, src string, opts Options) []warn.Message {
	t.Helper()
	em := warn.NewEmitter(nil)
	if opts.Filename == "" {
		opts.Filename = "test.html"
	}
	Check(src, em, opts)
	return em.Messages()
}

// TestSection42Example reproduces the worked example from the paper's
// Section 4.2: weblint must produce exactly the seven messages shown
// in the paper, in order, with the paper's wording.
func TestSection42Example(t *testing.T) {
	msgs := checkString(t, Section42HTML, Options{})
	warn.SortByLine(msgs)

	want := []struct {
		line int
		id   string
		text string
	}{
		{1, "doctype-first", "first element was not DOCTYPE specification"},
		{4, "unclosed-element", "no closing </TITLE> seen for <TITLE> on line 3"},
		{5, "attribute-delimiter", `value for attribute TEXT (#00ff00) of element BODY should be quoted (i.e. TEXT="#00ff00")`},
		{5, "body-colors", "illegal value for BGCOLOR attribute of BODY (fffff)"},
		{6, "heading-mismatch", "malformed heading - open tag is <H1>, but closing is </H2>"},
		{7, "odd-quotes", `odd number of quotes in element <A HREF="a.html>`},
		{7, "element-overlap", "</B> on line 7 seems to overlap <A>, opened on line 7."},
	}

	if len(msgs) != len(want) {
		var got strings.Builder
		for _, m := range msgs {
			got.WriteString("\n  " + warn.Short{}.Format(m) + " [" + m.ID + "]")
		}
		t.Fatalf("got %d messages, want %d:%s", len(msgs), len(want), got.String())
	}
	for i, w := range want {
		m := msgs[i]
		if m.Line != w.line {
			t.Errorf("message %d: line = %d, want %d (%s)", i, m.Line, w.line, m.Text)
		}
		if m.ID != w.id {
			t.Errorf("message %d: id = %s, want %s (%s)", i, m.ID, w.id, m.Text)
		}
		if m.Text != w.text {
			t.Errorf("message %d:\n got  %q\n want %q", i, m.Text, w.text)
		}
	}
}

// TestSection42ShortFormat checks the -s rendering of the first
// message matches the paper's sample output format.
func TestSection42ShortFormat(t *testing.T) {
	msgs := checkString(t, Section42HTML, Options{})
	warn.SortByLine(msgs)
	if len(msgs) == 0 {
		t.Fatal("no messages")
	}
	got := warn.Short{}.Format(msgs[0])
	want := "line 1: first element was not DOCTYPE specification"
	if got != want {
		t.Errorf("short format = %q, want %q", got, want)
	}
	lint := warn.Lint{}.Format(msgs[0])
	wantLint := "test.html(1): first element was not DOCTYPE specification"
	if lint != wantLint {
		t.Errorf("lint format = %q, want %q", lint, wantLint)
	}
}
