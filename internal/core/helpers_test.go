package core

import (
	"testing"

	"weblint/internal/htmlspec"
)

// spec32 returns the HTML 3.2 spec for tests.
func spec32(t *testing.T) *htmlspec.Spec {
	t.Helper()
	s, ok := htmlspec.ByVersion("3.2")
	if !ok {
		t.Fatal("HTML 3.2 spec unavailable")
	}
	return s
}

// specWithExt returns an HTML 4.0 spec with a vendor extension enabled.
func specWithExt(t *testing.T, vendor string) *htmlspec.Spec {
	t.Helper()
	return htmlspec.HTML40().WithExtensions(vendor)
}
