package core

import (
	"fmt"
	"strings"
	"testing"

	"weblint/internal/warn"
)

// ids extracts the multiset of message IDs.
func ids(msgs []warn.Message) map[string]int {
	out := map[string]int{}
	for _, m := range msgs {
		out[m.ID]++
	}
	return out
}

// checkAll runs the checker with every warning enabled (so tests can
// exercise default-off messages too).
func checkAll(t *testing.T, src string, opts Options) []warn.Message {
	t.Helper()
	em := warn.NewEmitter(warn.AllEnabled())
	if opts.Filename == "" {
		opts.Filename = "t.html"
	}
	Check(src, em, opts)
	return em.Messages()
}

// valid wraps body in a well-formed document skeleton.
func valid(body string) string {
	return "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0//EN\">\n" +
		"<HTML>\n<HEAD>\n<TITLE>Test Page</TITLE>\n" +
		"<META NAME=\"description\" CONTENT=\"d\">\n" +
		"<META NAME=\"keywords\" CONTENT=\"k\">\n" +
		"</HEAD>\n<BODY>\n" + body + "\n</BODY>\n</HTML>\n"
}

// requireID asserts at least one message with the given id.
func requireID(t *testing.T, msgs []warn.Message, id string) warn.Message {
	t.Helper()
	for _, m := range msgs {
		if m.ID == id {
			return m
		}
	}
	var all []string
	for _, m := range msgs {
		all = append(all, fmt.Sprintf("%s@%d", m.ID, m.Line))
	}
	t.Fatalf("no %s message; got %v", id, all)
	return warn.Message{}
}

// forbidID asserts no message with the given id.
func forbidID(t *testing.T, msgs []warn.Message, id string) {
	t.Helper()
	for _, m := range msgs {
		if m.ID == id {
			t.Fatalf("unexpected %s message: %q (line %d)", id, m.Text, m.Line)
		}
	}
}

func TestValidDocumentIsQuiet(t *testing.T) {
	src := valid(`<H1>Hello</H1><P>Body text with an <A HREF="http://x.org/">informative anchor</A>.</P>`)
	msgs := checkString(t, src, Options{}) // default-enabled set
	if len(msgs) != 0 {
		var all []string
		for _, m := range msgs {
			all = append(all, m.ID+": "+m.Text)
		}
		t.Fatalf("valid document produced messages: %v", all)
	}
}

func TestUnknownElement(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<BLOCKQOUTE>x</BLOCKQOUTE>"), Options{}), "unknown-element")
	if !strings.Contains(m.Text, "BLOCKQOUTE") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestUnknownElementCloseDoesNotCascade(t *testing.T) {
	// The unknown element is pushed so its own close tag resolves
	// silently: one message for the pair, no unmatched-close, no
	// unclosed-element — the cascade suppression of Section 5.1.
	msgs := checkAll(t, valid("<BLOCKQOUTE>x</BLOCKQOUTE>"), Options{})
	if got := ids(msgs)["unknown-element"]; got != 1 {
		t.Errorf("unknown-element count = %d, want 1", got)
	}
	forbidID(t, msgs, "unmatched-close")
	forbidID(t, msgs, "unclosed-element")
}

func TestUnknownCloseAloneReported(t *testing.T) {
	// A close tag for an unknown element that was never opened is
	// still reported.
	msgs := checkAll(t, valid("x</BLOCKQOUTE>y"), Options{})
	if got := ids(msgs)["unknown-element"]; got != 1 {
		t.Errorf("unknown-element count = %d, want 1", got)
	}
}

func TestUnknownAttribute(t *testing.T) {
	m := requireID(t, checkAll(t, valid(`<P BOGUS="1">x</P>`), Options{}), "unknown-attribute")
	if !strings.Contains(m.Text, "BOGUS") || !strings.Contains(m.Text, "<P>") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestRequiredAttribute(t *testing.T) {
	msgs := checkAll(t, valid(`<FORM ACTION="/x"><TEXTAREA NAME="t"></TEXTAREA></FORM>`), Options{})
	n := 0
	for _, m := range msgs {
		if m.ID == "required-attribute" {
			n++
			if !strings.Contains(m.Text, "TEXTAREA") {
				t.Errorf("text = %q", m.Text)
			}
		}
	}
	if n != 2 {
		t.Errorf("required-attribute count = %d, want 2 (ROWS and COLS)", n)
	}
}

func TestUnclosedElementAtEOF(t *testing.T) {
	src := "<HTML><BODY><EM>never closed</BODY></HTML>"
	m := requireID(t, checkAll(t, src, Options{}), "unclosed-element")
	if !strings.Contains(m.Text, "</EM>") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestUnmatchedClose(t *testing.T) {
	m := requireID(t, checkAll(t, valid("x</EM>y"), Options{}), "unmatched-close")
	if m.Text != "unmatched </EM> (no matching open tag seen)" {
		t.Errorf("text = %q", m.Text)
	}
}

func TestHeadingMismatch(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<H2>title</H3>"), Options{}), "heading-mismatch")
	if !strings.Contains(m.Text, "<H2>") || !strings.Contains(m.Text, "</H3>") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestOddQuotes(t *testing.T) {
	requireID(t, checkAll(t, valid(`<A HREF="broken.html>x</A>`), Options{}), "odd-quotes")
}

func TestOddQuotesSuppressesAttrChecks(t *testing.T) {
	msgs := checkAll(t, valid(`<A HREF="broken.html>x</A>`), Options{})
	forbidID(t, msgs, "attribute-delimiter")
	forbidID(t, msgs, "unknown-attribute")
	forbidID(t, msgs, "attribute-value")
}

func TestElementOverlap(t *testing.T) {
	src := valid(`<B><A HREF="x.html">text</B></A>`)
	msgs := checkAll(t, src, Options{})
	m := requireID(t, msgs, "element-overlap")
	if !strings.Contains(m.Text, "</B>") || !strings.Contains(m.Text, "<A>") {
		t.Errorf("text = %q", m.Text)
	}
	// The </A> resolves from the secondary stack: no cascade.
	forbidID(t, msgs, "unmatched-close")
	forbidID(t, msgs, "unclosed-element")
}

func TestAttributeValueEnum(t *testing.T) {
	m := requireID(t, checkAll(t, valid(`<FORM ACTION="/x" METHOD="push"></FORM>`), Options{}), "attribute-value")
	if !strings.Contains(m.Text, "METHOD") || !strings.Contains(m.Text, "push") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestBodyColors(t *testing.T) {
	src := strings.Replace(valid("<P>x</P>"), "<BODY>", `<BODY BGCOLOR="fffff">`, 1)
	m := requireID(t, checkAll(t, src, Options{}), "body-colors")
	if m.Text != "illegal value for BGCOLOR attribute of BODY (fffff)" {
		t.Errorf("text = %q", m.Text)
	}
	// A legal color name is fine.
	src = strings.Replace(valid("<P>x</P>"), "<BODY>", `<BODY BGCOLOR="navy">`, 1)
	forbidID(t, checkAll(t, src, Options{}), "body-colors")
}

func TestFontColorChecked(t *testing.T) {
	requireID(t, checkAll(t, valid(`<FONT COLOR="#12345">x</FONT>`), Options{}), "body-colors")
}

func TestEmptyContainer(t *testing.T) {
	requireID(t, checkAll(t, valid("<B></B>"), Options{}), "empty-container")
	// EmptyOK elements don't fire.
	forbidID(t, checkAll(t, valid("<TABLE><TR><TD></TD></TR></TABLE>"), Options{}), "empty-container")
}

func TestRequiredContext(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<LI>loose item"), Options{}), "required-context")
	if !strings.Contains(m.Text, "<LI>") || !strings.Contains(m.Text, "UL") {
		t.Errorf("text = %q", m.Text)
	}
	forbidID(t, checkAll(t, valid("<UL><LI>fine</UL>"), Options{}), "required-context")
}

func TestTDOutsideTR(t *testing.T) {
	requireID(t, checkAll(t, valid("<TABLE><TD>x</TD></TABLE>"), Options{}), "required-context")
}

func TestHeadElementInBody(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<BASE HREF=\"http://x/\">"), Options{}), "head-element")
	if !strings.Contains(m.Text, "BASE") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestMetaInBody(t *testing.T) {
	requireID(t, checkAll(t, valid(`<META NAME="x" CONTENT="y">`), Options{}), "meta-in-body")
}

func TestBodyElementInHead(t *testing.T) {
	src := strings.Replace(valid("<P>x</P>"), "</HEAD>", "<P>rendered</P></HEAD>", 1)
	requireID(t, checkAll(t, src, Options{}), "body-element")
}

func TestNestedAnchor(t *testing.T) {
	m := requireID(t, checkAll(t, valid(`<A HREF="a"><A HREF="b">x</A></A>`), Options{}), "nested-element")
	if !strings.Contains(m.Text, "<A>") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestNestedForm(t *testing.T) {
	requireID(t, checkAll(t, valid(`<FORM ACTION="a"><FORM ACTION="b"></FORM></FORM>`), Options{}), "nested-element")
}

func TestOnceOnly(t *testing.T) {
	src := "<HTML><HEAD><TITLE>a</TITLE><TITLE>b</TITLE></HEAD><BODY>x</BODY></HTML>"
	m := requireID(t, checkAll(t, src, Options{}), "once-only")
	if !strings.Contains(m.Text, "TITLE") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestClosingAttribute(t *testing.T) {
	requireID(t, checkAll(t, valid(`<B>x</B CLASS="y">`), Options{}), "closing-attribute")
}

func TestEmptyElementClose(t *testing.T) {
	m := requireID(t, checkAll(t, valid("line<BR>break</BR>"), Options{}), "empty-element-close")
	if !strings.Contains(m.Text, "BR") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestRepeatedAttribute(t *testing.T) {
	requireID(t, checkAll(t, valid(`<IMG SRC="a.gif" SRC="b.gif" ALT="x">`), Options{}), "repeated-attribute")
}

func TestUnknownEntity(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<P>fish &bogus; chips</P>"), Options{}), "unknown-entity")
	if !strings.Contains(m.Text, "&bogus;") {
		t.Errorf("text = %q", m.Text)
	}
	forbidID(t, checkAll(t, valid("<P>fish &amp; chips</P>"), Options{}), "unknown-entity")
}

func TestHTML40EntityInHTML32(t *testing.T) {
	spec32 := spec32(t)
	msgs := checkAll(t, valid("<P>x &euro; y</P>"), Options{Spec: spec32})
	requireID(t, msgs, "unknown-entity")
	// The same entity is fine in 4.0.
	forbidID(t, checkAll(t, valid("<P>x &euro; y</P>"), Options{}), "unknown-entity")
}

func TestUnterminatedEntity(t *testing.T) {
	requireID(t, checkAll(t, valid("<P>fish &amp chips</P>"), Options{}), "unterminated-entity")
}

func TestUnterminatedComment(t *testing.T) {
	requireID(t, checkAll(t, valid("<!-- never closed"), Options{}), "unterminated-comment")
}

func TestMalformedTag(t *testing.T) {
	// The tag must be truncated by the real end of input.
	src := "<HTML><BODY><P>x</P><A HREF=\"y\""
	requireID(t, checkAll(t, src, Options{}), "malformed-tag")
}

func TestEmptyTagMessage(t *testing.T) {
	requireID(t, checkAll(t, valid("a <> b"), Options{}), "empty-tag")
}

func TestDuplicateID(t *testing.T) {
	requireID(t, checkAll(t, valid(`<P ID="x">a</P><P ID="x">b</P>`), Options{}), "duplicate-id")
	forbidID(t, checkAll(t, valid(`<P ID="x">a</P><P ID="y">b</P>`), Options{}), "duplicate-id")
}

func TestDuplicateAnchor(t *testing.T) {
	requireID(t, checkAll(t, valid(`<A NAME="top">a</A><A NAME="top">b</A>`), Options{}), "duplicate-anchor")
}

func TestDoctypeFirst(t *testing.T) {
	msgs := checkAll(t, "<HTML><HEAD><TITLE>x</TITLE></HEAD><BODY>y</BODY></HTML>", Options{})
	m := requireID(t, msgs, "doctype-first")
	if m.Line != 1 {
		t.Errorf("line = %d", m.Line)
	}
	forbidID(t, checkAll(t, valid("<P>x</P>"), Options{}), "doctype-first")
}

func TestDoctypeFirstTriggeredByProcInst(t *testing.T) {
	// Non-doctype markup declarations count as "first element".
	src := "<?php echo ?>\n" + "<HTML><HEAD><TITLE>x</TITLE></HEAD><BODY>y</BODY></HTML>"
	requireID(t, checkAll(t, src, Options{}), "doctype-first")
}

func TestEndTagCaseInsensitiveMatch(t *testing.T) {
	msgs := checkString(t, valid("<em>fine</EM>"), Options{})
	if len(msgs) != 0 {
		t.Fatalf("case-insensitive close mis-handled: %v", msgs)
	}
}

func TestRawTextNotEntityChecked(t *testing.T) {
	src := strings.Replace(valid("<P>x</P>"), "</HEAD>",
		"<SCRIPT TYPE=\"text/javascript\"><!-- if (a && b) x(); //--></SCRIPT></HEAD>", 1)
	msgs := checkAll(t, src, Options{})
	forbidID(t, msgs, "metacharacter")
	forbidID(t, msgs, "unterminated-entity")
}

func TestDoctypeAfterCommentOK(t *testing.T) {
	src := "<!-- header comment -->\n" + valid("<P>x</P>")
	forbidID(t, checkAll(t, src, Options{}), "doctype-first")
}

func TestStrayDoctype(t *testing.T) {
	src := valid("<P>x</P>") + "<!DOCTYPE HTML>\n"
	requireID(t, checkAll(t, src, Options{}), "stray-doctype")
}

func TestHTMLOuter(t *testing.T) {
	requireID(t, checkAll(t, "<BODY><P>x</P></BODY>", Options{}), "html-outer")
}

func TestRequireHeadAndTitle(t *testing.T) {
	msgs := checkAll(t, "<HTML><BODY><P>x</P></BODY></HTML>", Options{})
	requireID(t, msgs, "require-head")
	requireID(t, msgs, "require-title")
	// HEAD omitted but TITLE present: only require-head stays quiet.
	msgs = checkAll(t, "<HTML><TITLE>x</TITLE><BODY><P>x</P></BODY></HTML>", Options{})
	forbidID(t, msgs, "require-head")
	forbidID(t, msgs, "require-title")
}

func TestEmptyTitle(t *testing.T) {
	src := strings.Replace(valid("<P>x</P>"), "<TITLE>Test Page</TITLE>", "<TITLE></TITLE>", 1)
	requireID(t, checkAll(t, src, Options{}), "empty-title")
}

func TestTitleLength(t *testing.T) {
	long := strings.Repeat("very long title ", 8)
	src := strings.Replace(valid("<P>x</P>"), "Test Page", long, 1)
	m := requireID(t, checkAll(t, src, Options{}), "title-length")
	if !strings.Contains(m.Text, "64") {
		t.Errorf("text = %q", m.Text)
	}
	// Custom limit.
	src2 := strings.Replace(valid("<P>x</P>"), "Test Page", "a somewhat long title", 1)
	requireID(t, checkAll(t, src2, Options{TitleLength: 10}), "title-length")
}

func TestAttributeDelimiter(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<P ALIGN=#center>x</P>"), Options{}), "attribute-delimiter")
	if !strings.Contains(m.Text, "should be quoted") {
		t.Errorf("text = %q", m.Text)
	}
	// Name-token values may legally be unquoted.
	forbidID(t, checkAll(t, valid("<P ALIGN=center>x</P>"), Options{}), "attribute-delimiter")
}

func TestSingleQuotes(t *testing.T) {
	requireID(t, checkAll(t, valid("<P ALIGN='center'>x</P>"), Options{}), "single-quotes")
}

func TestImgAlt(t *testing.T) {
	requireID(t, checkAll(t, valid(`<IMG SRC="x.gif" WIDTH="1" HEIGHT="1">`), Options{}), "img-alt")
	forbidID(t, checkAll(t, valid(`<IMG SRC="x.gif" ALT="pic" WIDTH="1" HEIGHT="1">`), Options{}), "img-alt")
}

func TestImgSize(t *testing.T) {
	requireID(t, checkAll(t, valid(`<IMG SRC="x.gif" ALT="p">`), Options{}), "img-size")
	requireID(t, checkAll(t, valid(`<IMG SRC="x.gif" ALT="p" WIDTH="10">`), Options{}), "img-size")
	forbidID(t, checkAll(t, valid(`<IMG SRC="x.gif" ALT="p" WIDTH="10" HEIGHT="2">`), Options{}), "img-size")
}

func TestMarkupInComment(t *testing.T) {
	requireID(t, checkAll(t, valid("<!-- <B>hidden</B> -->"), Options{}), "markup-in-comment")
	forbidID(t, checkAll(t, valid("<!-- a < b, plain -->"), Options{}), "markup-in-comment")
}

func TestNestedComment(t *testing.T) {
	requireID(t, checkAll(t, valid("<!-- outer -- inner -->"), Options{}), "nested-comment")
}

func TestDeprecatedElement(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<CENTER>x</CENTER>"), Options{}), "deprecated-element")
	if !strings.Contains(m.Text, "CENTER") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestObsoleteElement(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<LISTING>x</LISTING>"), Options{}), "obsolete-element")
	if !strings.Contains(m.Text, "<PRE>") {
		t.Errorf("text = %q (should suggest <PRE>)", m.Text)
	}
}

func TestDeprecatedAttribute(t *testing.T) {
	requireID(t, checkAll(t, valid(`<P ALIGN="center">x</P>`), Options{}), "deprecated-attribute")
}

func TestExtensionMarkup(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<BLINK>x</BLINK>"), Options{}), "extension-markup")
	if !strings.Contains(m.Text, "Netscape") || !strings.Contains(m.Text, "HTML 4.0") {
		t.Errorf("text = %q", m.Text)
	}
	requireID(t, checkAll(t, valid("<MARQUEE>x</MARQUEE>"), Options{}), "extension-markup")
}

func TestExtensionMarkupEnabled(t *testing.T) {
	spec := specWithExt(t, "netscape")
	msgs := checkAll(t, valid("<BLINK>x</BLINK>"), Options{Spec: spec})
	forbidID(t, msgs, "extension-markup")
	forbidID(t, msgs, "unknown-element")
	// Microsoft markup still warns.
	requireID(t, checkAll(t, valid("<MARQUEE>x</MARQUEE>"), Options{Spec: spec}), "extension-markup")
}

func TestExtensionAttribute(t *testing.T) {
	requireID(t, checkAll(t, valid(`<IMG SRC="x" ALT="a" WIDTH="1" HEIGHT="1" LOWSRC="y">`), Options{}), "extension-attribute")
}

func TestHeadingOrder(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<H1>a</H1><H3>b</H3>"), Options{}), "heading-order")
	if !strings.Contains(m.Text, "<H3>") || !strings.Contains(m.Text, "<H1>") {
		t.Errorf("text = %q", m.Text)
	}
	forbidID(t, checkAll(t, valid("<H1>a</H1><H2>b</H2><H3>c</H3>"), Options{}), "heading-order")
	forbidID(t, checkAll(t, valid("<H2>a</H2><H1>b</H1>"), Options{}), "heading-order")
}

func TestSpuriousSlash(t *testing.T) {
	requireID(t, checkAll(t, valid("a<BR/>b"), Options{}), "spurious-slash")
}

func TestFormFieldContext(t *testing.T) {
	requireID(t, checkAll(t, valid(`<INPUT TYPE="text" NAME="x">`), Options{}), "form-field-context")
	forbidID(t, checkAll(t, valid(`<FORM ACTION="/y"><INPUT TYPE="text" NAME="x"></FORM>`), Options{}), "form-field-context")
}

func TestRequireNoframes(t *testing.T) {
	src := "<!DOCTYPE HTML><HTML><HEAD><TITLE>f</TITLE></HEAD><FRAMESET COLS=\"50%,50%\"><FRAME SRC=\"a.html\"></FRAMESET></HTML>"
	requireID(t, checkAll(t, src, Options{}), "require-noframes")
	src2 := strings.Replace(src, "</FRAMESET>", "<NOFRAMES>alt</NOFRAMES></FRAMESET>", 1)
	forbidID(t, checkAll(t, src2, Options{}), "require-noframes")
}

func TestMetacharacter(t *testing.T) {
	msgs := checkAll(t, valid("<P>a < b</P>"), Options{})
	m := requireID(t, msgs, "metacharacter")
	if !strings.Contains(m.Text, "&lt;") {
		t.Errorf("text = %q", m.Text)
	}
	requireID(t, checkAll(t, valid("<P>AT& T</P>"), Options{}), "metacharacter")
}

func TestBadURLScheme(t *testing.T) {
	m := requireID(t, checkAll(t, valid(`<A HREF="htpp://typo.org/">x</A>`), Options{}), "bad-url-scheme")
	if !strings.Contains(m.Text, "htpp") {
		t.Errorf("text = %q", m.Text)
	}
	forbidID(t, checkAll(t, valid(`<A HREF="relative/page.html">x</A>`), Options{}), "bad-url-scheme")
	forbidID(t, checkAll(t, valid(`<A HREF="ftp://host/file">x</A>`), Options{}), "bad-url-scheme")
}

func TestBadTextContext(t *testing.T) {
	src := "<HTML>loose text<HEAD><TITLE>x</TITLE></HEAD><BODY>ok</BODY></HTML>"
	m := requireID(t, checkAll(t, src, Options{}), "bad-text-context")
	if !strings.Contains(m.Text, "HTML") {
		t.Errorf("text = %q", m.Text)
	}
}

func TestUnexpectedOpenFramesetAfterBody(t *testing.T) {
	src := "<!DOCTYPE HTML><HTML><HEAD><TITLE>x</TITLE></HEAD><BODY><FRAMESET ROWS=\"*\"></FRAMESET></BODY></HTML>"
	requireID(t, checkAll(t, src, Options{}), "unexpected-open")
}

func TestUnhiddenScript(t *testing.T) {
	src := strings.Replace(valid("<P>x</P>"), "</HEAD>",
		`<SCRIPT TYPE="text/javascript">var x=1;</SCRIPT></HEAD>`, 1)
	requireID(t, checkAll(t, src, Options{}), "unhidden-script")
	src2 := strings.Replace(valid("<P>x</P>"), "</HEAD>",
		"<SCRIPT TYPE=\"text/javascript\"><!--\nvar x=1;\n//--></SCRIPT></HEAD>", 1)
	forbidID(t, checkAll(t, src2, Options{}), "unhidden-script")
}

// ---- Style checks (all default-off; exercised via AllEnabled) ----

func TestHereAnchor(t *testing.T) {
	m := requireID(t, checkAll(t, valid(`Click <A HREF="x.html">here</A>`), Options{}), "here-anchor")
	if !strings.Contains(m.Text, `"here"`) {
		t.Errorf("text = %q", m.Text)
	}
	requireID(t, checkAll(t, valid(`<A HREF="x.html">Click  Here</A>`), Options{}), "here-anchor")
	forbidID(t, checkAll(t, valid(`<A HREF="x.html">the 1998 report</A>`), Options{}), "here-anchor")
}

func TestHereAnchorCustomWords(t *testing.T) {
	opts := Options{HereWords: []string{"klik hier"}}
	requireID(t, checkAll(t, valid(`<A HREF="x.html">klik hier</A>`), opts), "here-anchor")
}

func TestPhysicalFont(t *testing.T) {
	m := requireID(t, checkAll(t, valid("<B>bold</B>"), Options{}), "physical-font")
	if !strings.Contains(m.Text, "STRONG") {
		t.Errorf("text = %q", m.Text)
	}
	requireID(t, checkAll(t, valid("<I>it</I>"), Options{}), "physical-font")
}

func TestMailtoLink(t *testing.T) {
	requireID(t, checkAll(t, valid(`<A HREF="mailto:n@x.org">mail</A>`), Options{}), "mailto-link")
}

func TestHeadingInAnchor(t *testing.T) {
	requireID(t, checkAll(t, valid(`<A HREF="x"><H2>head</H2></A>`), Options{}), "heading-in-anchor")
}

func TestTagCase(t *testing.T) {
	msgs := checkAll(t, valid("<em>x</em>"), Options{TagCase: "upper"})
	requireID(t, msgs, "tag-case")
	forbidID(t, checkAll(t, valid("<EM>x</EM>"), Options{TagCase: "upper"}), "tag-case")
	requireID(t, checkAll(t, valid("<EM>x</EM>"), Options{TagCase: "lower"}), "tag-case")
}

func TestAttributeCase(t *testing.T) {
	requireID(t, checkAll(t, valid(`<P align="center">x</P>`), Options{AttrCase: "upper"}), "attribute-case")
	forbidID(t, checkAll(t, valid(`<P ALIGN="center">x</P>`), Options{AttrCase: "upper"}), "attribute-case")
}

func TestAnchorWhitespace(t *testing.T) {
	requireID(t, checkAll(t, valid(`<A HREF="x"> padded </A>`), Options{}), "anchor-whitespace")
	forbidID(t, checkAll(t, valid(`<A HREF="x">tight</A>`), Options{}), "anchor-whitespace")
}

func TestContainerWhitespace(t *testing.T) {
	requireID(t, checkAll(t, valid("<H2> padded</H2>"), Options{}), "container-whitespace")
}

func TestRequireMeta(t *testing.T) {
	src := "<!DOCTYPE HTML><HTML><HEAD><TITLE>x</TITLE></HEAD><BODY><P>y</P></BODY></HTML>"
	msgs := checkAll(t, src, Options{})
	n := 0
	for _, m := range msgs {
		if m.ID == "require-meta" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("require-meta count = %d, want 2 (description and keywords)", n)
	}
	forbidID(t, checkAll(t, valid("<P>x</P>"), Options{}), "require-meta")
}

func TestRequireVersion(t *testing.T) {
	src := "<!DOCTYPE SYSTEM \"whatever\">\n<HTML><HEAD><TITLE>x</TITLE></HEAD><BODY>y</BODY></HTML>"
	requireID(t, checkAll(t, src, Options{}), "require-version")
}

// ---- Implied closes must stay silent ----

func TestImpliedClosesAreLegal(t *testing.T) {
	src := valid(`
<UL><LI>one<LI>two<LI>three</UL>
<P>first para
<P>second para
<TABLE><TR><TD>a<TD>b<TR><TD>c<TD>d</TABLE>
<DL><DT>term<DD>def<DT>term2<DD>def2</DL>
`)
	msgs := checkString(t, src, Options{}) // default set
	if len(msgs) != 0 {
		var all []string
		for _, m := range msgs {
			all = append(all, m.ID+": "+m.Text)
		}
		t.Fatalf("legal tag omission produced: %v", all)
	}
}

func TestHeadBodyOmittedClosesAreLegal(t *testing.T) {
	src := "<!DOCTYPE HTML><HTML><HEAD><TITLE>t</TITLE>" +
		"<META NAME=\"description\" CONTENT=\"d\"><META NAME=\"keywords\" CONTENT=\"k\">" +
		"<BODY><P>x</BODY></HTML>"
	msgs := checkString(t, src, Options{})
	if len(msgs) != 0 {
		t.Fatalf("omitted </HEAD> produced: %v", msgs)
	}
}
