package core

import (
	"strings"
	"testing"
)

// Page-specific configuration embedded in comments, the paper's
// Section 6.1 item ("configuration information embedded in comments,
// which traditional lint supports").

func TestInlineDisable(t *testing.T) {
	src := valid(`
<!-- weblint: disable img-alt -->
<IMG SRC="decoration.gif" WIDTH="1" HEIGHT="1">
`)
	forbidID(t, checkAll(t, src, Options{}), "img-alt")
}

func TestInlineDisableThenEnable(t *testing.T) {
	src := valid(`
<!-- weblint: disable img-alt -->
<IMG SRC="decoration.gif" WIDTH="1" HEIGHT="1">
<!-- weblint: enable img-alt -->
<IMG SRC="content.gif" WIDTH="1" HEIGHT="1">
`)
	msgs := checkAll(t, src, Options{})
	n := 0
	for _, m := range msgs {
		if m.ID == "img-alt" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("img-alt count = %d, want 1 (only the re-enabled region)", n)
	}
}

func TestInlineDisableCategory(t *testing.T) {
	src := valid(`
<!-- weblint: disable style -->
<B>physical</B>
`)
	msgs := checkAll(t, src, Options{})
	forbidID(t, msgs, "physical-font")
}

func TestInlineDirectiveMultipleIDs(t *testing.T) {
	src := valid(`
<!-- weblint: disable img-alt, img-size -->
<IMG SRC="x.gif">
`)
	msgs := checkAll(t, src, Options{})
	forbidID(t, msgs, "img-alt")
	forbidID(t, msgs, "img-size")
}

func TestInlineDirectiveBad(t *testing.T) {
	cases := []string{
		"<!-- weblint: frobnicate img-alt -->",
		"<!-- weblint: disable -->",
		"<!-- weblint: disable no-such-id -->",
	}
	for _, comment := range cases {
		msgs := checkAll(t, valid(comment), Options{})
		found := false
		for _, m := range msgs {
			if m.ID == "bad-inline-directive" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no bad-inline-directive message", comment)
		}
	}
}

func TestInlineDirectiveNotStyleChecked(t *testing.T) {
	// Directive comments must not trigger markup-in-comment or
	// nested-comment themselves.
	src := valid("<!-- weblint: disable img-alt -->")
	msgs := checkAll(t, src, Options{})
	forbidID(t, msgs, "markup-in-comment")
	forbidID(t, msgs, "nested-comment")
}

func TestInlineDirectiveScopedToRun(t *testing.T) {
	// A directive in one document must not leak into the next check
	// through the linter's shared configuration.
	srcOff := valid("<!-- weblint: disable doctype-first -->")
	srcPlain := strings.Replace(valid("<P>x</P>"), "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0//EN\">\n", "", 1)

	_ = checkAll(t, srcOff, Options{})
	msgs := checkAll(t, srcPlain, Options{})
	requireID(t, msgs, "doctype-first")
}
