package core

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// metacharRun builds one text run of n lines, each holding a bare '&',
// a bare '<' metacharacter, and an unknown entity — the shape that
// made the old per-finding lineOffset rescan quadratic.
func metacharRun(n int) string {
	var b strings.Builder
	b.Grow(n * 32)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "word%d & x < y &bogus%d; tail\n", i, i%7)
	}
	return b.String()
}

// TestMetacharLinesExact pins the line numbers the monotone cursor
// produces for findings deep inside a single multi-line text run: each
// of the run's lines must report its own line number, not the run's
// first line and not an off-by-one.
func TestMetacharLinesExact(t *testing.T) {
	const lines = 200
	src := valid("<P>\n" + metacharRun(lines) + "</P>")
	msgs := checkAll(t, src, Options{})

	// The run starts on the line after <P>; <P> sits on the 9th line
	// of the valid() skeleton (body is spliced in at line 9).
	const runStart = 10
	gotMeta := map[int]int{}   // line -> metacharacter findings
	gotEntity := map[int]int{} // line -> unknown-entity findings
	for _, m := range msgs {
		switch m.ID {
		case "metacharacter":
			gotMeta[m.Line]++
		case "unknown-entity":
			gotEntity[m.Line]++
		}
	}
	for i := 0; i < lines; i++ {
		line := runStart + i
		if gotMeta[line] != 2 {
			t.Fatalf("line %d: %d metacharacter findings, want 2 (one '&', one '<')", line, gotMeta[line])
		}
		if gotEntity[line] != 1 {
			t.Fatalf("line %d: %d unknown-entity findings, want 1", line, gotEntity[line])
		}
	}
}

// TestMetacharDenseLinearTime is the scaling regression guard for
// checkEntities: a 16x bigger error-dense text run must not cost
// anywhere near 16x more per byte. With the old from-the-top
// lineOffset rescan per finding the per-byte ratio here was ~16x
// (quadratic); the monotone cursor holds it near 1x. The threshold is
// 6x — far above timer noise on a loaded CI box, far below quadratic.
func TestMetacharDenseLinearTime(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	perByte := func(nLines int) float64 {
		src := valid("<P>\n" + metacharRun(nLines) + "</P>")
		// Warm once, then take the best of 3 to shed scheduler noise.
		checkAll(t, src, Options{})
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			checkAll(t, src, Options{})
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return float64(best) / float64(len(src))
	}
	small := perByte(1 << 10) // ~28 KiB
	big := perByte(1 << 14)   // ~450 KiB, 16x the lines
	if ratio := big / small; ratio > 6 {
		t.Fatalf("per-byte cost grew %.1fx from 1k to 16k error lines (superlinear regression)", ratio)
	}
}

// TestCloseTagStorm exercises the pending-stack bookkeeping under a
// generated storm of overlapping and unmatched close tags: the shape
// that drove per-close stack scans and mid-slice pending deletions
// quadratic. It pins the message multiset so the O(1) bookkeeping
// (openTop/pendingTop chains, nil-marked pending slots) provably
// reports the same things the linear scans did.
func TestCloseTagStorm(t *testing.T) {
	const storms = 300
	var b strings.Builder
	for i := 0; i < storms; i++ {
		// Overlap: </B> arrives while I is open, then </I> matches a
		// pending entry; plus one close with no open tag at all.
		b.WriteString("<B><I>x</B></I></TT>\n")
	}
	src := valid(b.String())
	msgs := checkAll(t, src, Options{})

	got := ids(msgs)
	if got["element-overlap"] != storms {
		t.Errorf("element-overlap: got %d, want %d", got["element-overlap"], storms)
	}
	if got["unmatched-close"] != storms {
		t.Errorf("unmatched-close: got %d (</TT> storm), want %d", got["unmatched-close"], storms)
	}

	// Every finding must carry the storm line it happened on.
	const runStart = 9 // body splice line in valid()
	for _, m := range msgs {
		if m.ID != "element-overlap" && m.ID != "unmatched-close" {
			continue
		}
		if m.Line < runStart || m.Line >= runStart+storms {
			t.Fatalf("%s reported at line %d, outside the storm (%d..%d)",
				m.ID, m.Line, runStart, runStart+storms-1)
		}
	}
}

// TestDeepUnclosedStack pins behavior for the corpus's dominant
// pathology: deeply nested elements that never close, so the open
// stack grows without bound while text keeps accumulating. The openTop
// map and accum index stack must keep per-token work flat; here we pin
// correctness (TITLE text still accumulates across the deep stack and
// the unclosed elements are all reported at Finish).
func TestDeepUnclosedStack(t *testing.T) {
	const depth = 500
	var b strings.Builder
	b.WriteString("<HTML><HEAD><TITLE>deep")
	for i := 0; i < depth; i++ {
		b.WriteString("<B>")
	}
	b.WriteString(" title text</TITLE></HEAD><BODY><P>x</P></BODY></HTML>")
	msgs := checkAll(t, b.String(), Options{})

	got := ids(msgs)
	if got["unclosed-element"] < depth {
		t.Errorf("unclosed-element: got %d, want >= %d", got["unclosed-element"], depth)
	}
	// The empty-container check must NOT fire for TITLE: text after
	// the nested opens still reaches it through the accum stack.
	for _, m := range msgs {
		if m.ID == "empty-container" && strings.Contains(m.Text, "TITLE") {
			t.Fatalf("TITLE reported empty; accumulation broke across the deep stack: %q", m.Text)
		}
	}
}
