package ascii

import (
	"math/rand"
	"strings"
	"testing"
)

func naiveIndexAny(s string, targets ...byte) int {
	for i := 0; i < len(s); i++ {
		for _, c := range targets {
			if s[i] == c {
				return i
			}
		}
	}
	return -1
}

func TestIndexAnyFixed(t *testing.T) {
	cases := []struct {
		s       string
		a, b, c byte
	}{
		{"", '"', '\'', '>'},
		{"x", '"', '\'', '>'},
		{">", '"', '\'', '>'},
		{"no match here at all", 'q', 'z', 'Q'},
		{"........>", '"', '\'', '>'},        // match in the 8-byte word
		{".........>", '"', '\'', '>'},       // match in the tail
		{"\">'", '"', '\'', '>'},             // all three present: first wins
		{"'\">", '"', '\'', '>'},             // order of targets irrelevant
		{strings.Repeat(".", 8) + "'", 'a', 'b', '\''},
		{strings.Repeat(".", 7) + "'", 'a', 'b', '\''},
		{strings.Repeat("\x80\xff", 16) + ">", '"', '\'', '>'}, // high bytes set
		{"\x00\x00>", '"', '\'', '>'},
		{"a\x01b", '\x01', '\x02', '\x03'},
	}
	for _, tc := range cases {
		if got, want := IndexAny3(tc.s, tc.a, tc.b, tc.c), naiveIndexAny(tc.s, tc.a, tc.b, tc.c); got != want {
			t.Errorf("IndexAny3(%q, %q, %q, %q) = %d, want %d", tc.s, tc.a, tc.b, tc.c, got, want)
		}
		if got, want := IndexAny2(tc.s, tc.a, tc.b), naiveIndexAny(tc.s, tc.a, tc.b); got != want {
			t.Errorf("IndexAny2(%q, %q, %q) = %d, want %d", tc.s, tc.a, tc.b, got, want)
		}
	}
}

// TestIndexAnyProperty: on random strings over small alphabets (so
// matches land at every position relative to word boundaries, and
// SWAR false-positive lanes get exercised by near-miss byte values),
// the word-at-a-time helpers agree with the naive scan exactly.
func TestIndexAnyProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	alphabets := [][]byte{
		{'a', 'b', 'c', '>', '"', '\''},
		{0x00, 0x01, 0x7f, 0x80, 0xfe, 0xff, '>'},
		{'>', '?', '=', '<'}, // adjacent byte values: near-miss lanes
	}
	for _, alpha := range alphabets {
		for trial := 0; trial < 2000; trial++ {
			n := rnd.Intn(40)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = alpha[rnd.Intn(len(alpha))]
			}
			s := string(buf)
			a := alpha[rnd.Intn(len(alpha))]
			b := alpha[rnd.Intn(len(alpha))]
			c := alpha[rnd.Intn(len(alpha))]
			if got, want := IndexAny3(s, a, b, c), naiveIndexAny(s, a, b, c); got != want {
				t.Fatalf("IndexAny3(%q, %q, %q, %q) = %d, want %d", s, a, b, c, got, want)
			}
			if got, want := IndexAny2(s, a, b), naiveIndexAny(s, a, b); got != want {
				t.Fatalf("IndexAny2(%q, %q, %q) = %d, want %d", s, a, b, got, want)
			}
		}
	}
}

// TestIndexAnyExhaustiveShort: every string of length ≤ 3 over a tiny
// alphabet, all target choices — covers the pure-tail path completely.
func TestIndexAnyExhaustiveShort(t *testing.T) {
	alpha := []byte{'x', '>', 0xff}
	var rec func(prefix []byte, depth int)
	rec = func(prefix []byte, depth int) {
		s := string(prefix)
		for _, a := range alpha {
			for _, b := range alpha {
				for _, c := range alpha {
					if got, want := IndexAny3(s, a, b, c), naiveIndexAny(s, a, b, c); got != want {
						t.Fatalf("IndexAny3(%q, %q, %q, %q) = %d, want %d", s, a, b, c, got, want)
					}
					if got, want := IndexAny2(s, a, b), naiveIndexAny(s, a, b); got != want {
						t.Fatalf("IndexAny2(%q, %q, %q) = %d, want %d", s, a, b, got, want)
					}
				}
			}
		}
		if depth == 0 {
			return
		}
		for _, c := range alpha {
			rec(append(prefix, c), depth-1)
		}
	}
	rec(nil, 3)
}

func TestIndexByteFrom(t *testing.T) {
	s := "abcabc"
	cases := []struct {
		c    byte
		from int
		want int
	}{
		{'a', 0, 0},
		{'a', 1, 3},
		{'a', 4, -1},
		{'c', 2, 2},
		{'z', 0, -1},
		{'a', 6, -1},
		{'a', 99, -1},
	}
	for _, tc := range cases {
		if got := IndexByteFrom(s, tc.c, tc.from); got != tc.want {
			t.Errorf("IndexByteFrom(%q, %q, %d) = %d, want %d", s, tc.c, tc.from, got, tc.want)
		}
	}
}

func TestMatchMaskFirstLaneExact(t *testing.T) {
	// The SWAR zero-byte trick may set spurious high bits in lanes
	// above the first true match (borrow propagation through 0xff
	// lanes), never below it. Pin that the first set lane is always a
	// true match, including the documented worst case.
	s := "\xff\xff\xff\xff\xff\xff\xff\x00"
	v := load64(s, 0)
	m := matchMask(v, 0x00)
	if lane := trailingLane(m); lane != 7 || s[lane] != 0x00 {
		t.Fatalf("first lane %d is not the true match", lane)
	}
	// 0x01 0x00: searching for 0x00 must report lane 1, not lane 0,
	// even though subtracting ones from lane 0 borrows.
	s = "\x01\x00______"
	m = matchMask(load64(s, 0), 0x00)
	if lane := trailingLane(m); lane != 1 {
		t.Fatalf("first lane %d, want 1", lane)
	}
}

func trailingLane(m uint64) int {
	n := 0
	for m&0x80 == 0 {
		m >>= 8
		n++
		if n > 8 {
			return -1
		}
	}
	return n
}
