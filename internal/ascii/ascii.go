// Package ascii provides allocation-conscious ASCII case helpers for
// the lint hot path: case folding, case-insensitive comparison, and
// case-insensitive substring search.
//
// HTML element names, attribute names, and vendor identifiers are
// ASCII by construction, so these helpers deliberately fold only the
// byte range 'A'..'Z'. They are not Unicode-correct (strings.EqualFold
// folds the Kelvin sign; these do not) and must not be used on
// arbitrary user text where that matters.
//
// The key contracts, relied on by htmltoken and htmlspec:
//
//   - ToLower and ToUpper return the input string unchanged (no copy,
//     no allocation) when it is already in the requested case.
//   - EqualFold and IndexFold never allocate.
package ascii

import "strings"

// lowerByte folds one byte to lower case.
func lowerByte(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// upperByte folds one byte to upper case.
func upperByte(c byte) byte {
	if 'a' <= c && c <= 'z' {
		return c - ('a' - 'A')
	}
	return c
}

// IsLower reports whether s contains no upper-case ASCII letters.
func IsLower(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			return false
		}
	}
	return true
}

// IsUpper reports whether s contains no lower-case ASCII letters.
func IsUpper(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'a' <= c && c <= 'z' {
			return false
		}
	}
	return true
}

// ToLower returns s with ASCII upper-case letters folded to lower
// case. When s is already lower-case the input string is returned
// unchanged, without allocating.
func ToLower(s string) string {
	i := 0
	for ; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			break
		}
	}
	if i == len(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:i])
	for ; i < len(s); i++ {
		b.WriteByte(lowerByte(s[i]))
	}
	return b.String()
}

// ToUpper returns s with ASCII lower-case letters folded to upper
// case. When s is already upper-case the input string is returned
// unchanged, without allocating.
func ToUpper(s string) string {
	i := 0
	for ; i < len(s); i++ {
		if c := s[i]; 'a' <= c && c <= 'z' {
			break
		}
	}
	if i == len(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:i])
	for ; i < len(s); i++ {
		b.WriteByte(upperByte(s[i]))
	}
	return b.String()
}

// AppendLower appends the lower-case folding of s to dst.
func AppendLower(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		dst = append(dst, lowerByte(s[i]))
	}
	return dst
}

// EqualFoldBytes reports whether b and s are equal under ASCII
// case-folding. It never allocates.
func EqualFoldBytes(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		cb, cs := b[i], s[i]
		if cb == cs {
			continue
		}
		if lowerByte(cb) != lowerByte(cs) {
			return false
		}
	}
	return true
}

// EqualFold reports whether a and b are equal under ASCII
// case-folding. It never allocates.
func EqualFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if ca == cb {
			continue
		}
		if lowerByte(ca) != lowerByte(cb) {
			return false
		}
	}
	return true
}

// HasPrefixFold reports whether s begins with prefix under ASCII
// case-folding.
func HasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && EqualFold(s[:len(prefix)], prefix)
}

// IndexFold returns the byte index of the first occurrence of substr
// in s under ASCII case-folding, or -1 when absent. It never
// allocates, unlike the strings.Index(strings.ToLower(s), ...) idiom
// it replaces, which copies the whole of s per call, and its IndexByte
// work is amortised linear in len(s): the next occurrence of each case
// variant of the first needle byte is cached across candidate
// positions, never re-scanned per candidate (searching for "html" in a
// long run of 'h's would otherwise go quadratic).
func IndexFold(s, substr string) int {
	n := len(substr)
	switch {
	case n == 0:
		return 0
	case n > len(s):
		return -1
	}
	lo := lowerByte(substr[0])
	up := upperByte(lo)
	last := len(s) - n
	// nextLo/nextUp track the nearest occurrence of each case variant
	// at or after the scan position: -2 not yet searched, -1 absent
	// from the rest of s. IndexByte (SIMD-accelerated in the runtime)
	// only runs when the cached position falls behind the scan, and
	// successive searches cover disjoint ranges of s.
	nextLo, nextUp := -2, -2
	if lo == up {
		nextUp = -1
	}
	for i := 0; i <= last; {
		if nextLo != -1 && nextLo < i {
			if j := strings.IndexByte(s[i:], lo); j >= 0 {
				nextLo = i + j
			} else {
				nextLo = -1
			}
		}
		if nextUp != -1 && nextUp < i {
			if j := strings.IndexByte(s[i:], up); j >= 0 {
				nextUp = i + j
			} else {
				nextUp = -1
			}
		}
		j := nextLo
		if j < 0 || (nextUp >= 0 && nextUp < j) {
			j = nextUp
		}
		if j < 0 || j > last {
			return -1
		}
		i = j
		if EqualFold(s[i:i+n], substr) {
			return i
		}
		i++
	}
	return -1
}

// ContainsFold reports whether substr occurs in s under ASCII
// case-folding.
func ContainsFold(s, substr string) bool {
	return IndexFold(s, substr) >= 0
}
