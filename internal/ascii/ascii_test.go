package ascii

import (
	"fmt"
	"strings"
	"testing"
)

func TestToLower(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"script", "script"},
		{"SCRIPT", "script"},
		{"ScRiPt", "script"},
		{"a-b.c:d_9", "a-b.c:d_9"},
		{"MIXED text 123", "mixed text 123"},
		{"caf\xc3\xa9", "caf\xc3\xa9"},           // UTF-8 bytes pass through
		{"CAF\xc3\x89", "caf\xc3\x89"},           // only ASCII letters fold
		{"\x00\x7f\x80\xff", "\x00\x7f\x80\xff"}, // non-letter bytes untouched
	}
	for _, c := range cases {
		if got := ToLower(c.in); got != c.want {
			t.Errorf("ToLower(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Already-lower inputs must be returned without copying.
	in := "already lower"
	if out := ToLower(in); out != in {
		t.Errorf("ToLower fast path returned %q", out)
	}
}

func TestToUpper(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"TITLE", "TITLE"},
		{"title", "TITLE"},
		{"TiTlE", "TITLE"},
		{"h1", "H1"},
		{"caf\xc3\xa9", "CAF\xc3\xa9"},
	}
	for _, c := range cases {
		if got := ToUpper(c.in); got != c.want {
			t.Errorf("ToUpper(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsLowerIsUpper(t *testing.T) {
	if !IsLower("abc-123") || IsLower("aBc") {
		t.Error("IsLower wrong")
	}
	if !IsUpper("ABC-123") || IsUpper("AbC") {
		t.Error("IsUpper wrong")
	}
	if !IsLower("") || !IsUpper("") {
		t.Error("empty string should be both")
	}
	// Non-ASCII bytes are neither upper nor lower.
	if !IsLower("\xc3\x89") || !IsUpper("\xc3\xa9") {
		t.Error("non-ASCII bytes must not affect case tests")
	}
}

func TestAppendLower(t *testing.T) {
	got := AppendLower([]byte("x:"), "AbC")
	if string(got) != "x:abc" {
		t.Errorf("AppendLower = %q", got)
	}
}

func TestEqualFold(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"", "", true},
		{"script", "SCRIPT", true},
		{"ScRiPt", "sCrIpT", true},
		{"script", "scripts", false},
		{"a", "b", false},
		{"K", "k", true},
		// Unlike strings.EqualFold, the Kelvin sign does not fold.
		{"K", "k", false},
		{"caf\xc3\xa9", "CAF\xc3\xa9", true},
		{"\xc3\xa9", "\xc3\x89", false}, // é vs É: non-ASCII, no fold
	}
	for _, c := range cases {
		if got := EqualFold(c.a, c.b); got != c.want {
			t.Errorf("EqualFold(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualFoldBytes(t *testing.T) {
	if !EqualFoldBytes([]byte("here"), "HERE") || EqualFoldBytes([]byte("here"), "her") {
		t.Error("EqualFoldBytes wrong")
	}
	if EqualFoldBytes([]byte("caf\xc3\xa9"), "CAF\xc3\x89") {
		t.Error("EqualFoldBytes must not fold non-ASCII bytes")
	}
}

func TestHasPrefixFold(t *testing.T) {
	if !HasPrefixFold("</SCRIPT>", "</script") {
		t.Error("mixed-case closing tag prefix not matched")
	}
	if HasPrefixFold("</scrip", "</script") {
		t.Error("short string matched longer prefix")
	}
}

func TestIndexFold(t *testing.T) {
	cases := []struct {
		s, substr string
		want      int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"", "a", -1},
		{"hello </script> bye", "</script", 6},
		{"hello </SCRIPT> bye", "</script", 6},
		{"hello </ScRiPt> bye", "</script", 6},
		// Needle exactly at end of input.
		{"var x = 1; </script", "</script", 11},
		{"</script", "</script", 0},
		// Needle longer than haystack.
		{"</scrip", "</script", -1},
		// Absent needle, with near misses.
		{"</scr </scrip </scri", "</script", -1},
		// First byte is not a letter: single-variant scan.
		{"aaa<b<B</x", "</x", 7},
		// Repeated false starts sharing the first byte.
		{"sss sss sscript script", "script", 9},
		{"SSS SSS SSCRIPT SCRIPT", "script", 9},
		// Long single-letter runs (both cases): every position is a
		// candidate; the scan must stay linear and still answer right.
		{strings.Repeat("h", 4096), "html", -1},
		{strings.Repeat("H", 4096), "html", -1},
		{strings.Repeat("h", 4096) + "tml", "html", 4095},
		{strings.Repeat("H", 4096) + "TML", "html", 4095},
		// Candidates alternating between the two case variants.
		{strings.Repeat("hH", 2048) + "html", "html", 4096},
		// Non-ASCII bytes in the haystack are opaque.
		{"caf\xc3\xa9 </STYLE>", "</style", 6},
		{"\xc3\xa9\xc3\xa9", "\xc3\xa9", 0},
		// 0x80-0xFF bytes must not fold onto ASCII letters.
		{"\xe9", "i", -1},
		{"abc\xff", "\xff", 3},
	}
	for _, c := range cases {
		if got := IndexFold(c.s, c.substr); got != c.want {
			t.Errorf("IndexFold(%q, %q) = %d, want %d", c.s, c.substr, got, c.want)
		}
	}
}

// TestIndexFoldAgainstReference cross-checks IndexFold with the
// strings.Index(strings.ToLower(...)) idiom it replaces, over ASCII
// inputs where the two must agree.
func TestIndexFoldAgainstReference(t *testing.T) {
	haystacks := []string{
		"", "x", "<script>var s = '</scr';</script>",
		"AAAA</SCRIPT", "</sCrIpT</sCrIpT", "just text, no tags at all",
		strings.Repeat("pad ", 100) + "</Style>",
		strings.Repeat("s", 300), strings.Repeat("S", 300),
		strings.Repeat("sS", 150) + "style",
	}
	needles := []string{"", "</script", "</style", "s", "T", "</", "style"}
	for _, h := range haystacks {
		for _, n := range needles {
			want := strings.Index(strings.ToLower(h), strings.ToLower(n))
			if got := IndexFold(h, n); got != want {
				t.Errorf("IndexFold(%q, %q) = %d, want %d", h, n, got, want)
			}
		}
	}
}

func TestContainsFold(t *testing.T) {
	if !ContainsFold("<!DOCTYPE html PUBLIC>", "html") {
		t.Error("ContainsFold missed html")
	}
	if ContainsFold("nothing here", "doctype") {
		t.Error("ContainsFold false positive")
	}
}

func BenchmarkIndexFold(b *testing.B) {
	src := strings.Repeat("var x = 'no closing tag here';\n", 2000) + "</script>"
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if IndexFold(src, "</script") < 0 {
			b.Fatal("not found")
		}
	}
}

// BenchmarkIndexFoldLetterNeedle is the adversarial case: a letter-led
// needle over a haystack where every byte is a candidate position.
// MB/s collapsing as size grows here means the scan has gone
// super-linear.
func BenchmarkIndexFoldLetterNeedle(b *testing.B) {
	for _, size := range []int{1 << 12, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) {
			src := strings.Repeat("h", size)
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if IndexFold(src, "html") >= 0 {
					b.Fatal("unexpected hit")
				}
			}
		})
	}
}
