package ascii

import (
	"math/bits"
	"strings"
)

// Run-skipping primitives for the tokenizer hot path.
//
// The tokenizer's inner loops spend their time finding the next
// "interesting" byte — the next '<' in a text run, the next quote or
// '>' in a tag, the closing quote of an attribute value. A per-byte
// loop with predicate calls moves one byte per iteration; these
// helpers move a word (or, via the runtime's IndexByte, a SIMD
// register) per iteration instead:
//
//   - Single-byte searches go through strings.IndexByte, which the
//     runtime vectorises.
//   - Two- and three-byte searches (IndexAny2, IndexAny3) use SWAR:
//     load 8 bytes as one word and match all lanes at once with the
//     zero-byte trick, falling back to a byte loop only for the tail.
//
// All helpers return the index of the FIRST matching byte, exactly as
// the naive per-byte scan would, so callers can swap them in without
// changing run boundaries (the property tests in skip_test.go pin
// this).

const (
	swarOnes  = 0x0101010101010101
	swarHighs = 0x8080808080808080
)

// load64 reads 8 little-endian bytes of s starting at i as one word.
// The shift-or chain is fused into a single load by the compiler's
// memcombine pass on little-endian architectures; on others it is
// still correct, just byte-at-a-time.
func load64(s string, i int) uint64 {
	_ = s[i+7] // bounds hint
	return uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
		uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
}

// matchMask returns a word with 0x80 set in (at least) the lowest lane
// of v equal to c. The zero-byte detection trick can flag spurious
// lanes ABOVE a true match (borrow propagation), never below one, so
// the lowest set lane is always a true match — which is all a
// first-match search needs, including when masks for several target
// bytes are ORed together.
func matchMask(v uint64, c byte) uint64 {
	x := v ^ (swarOnes * uint64(c))
	return (x - swarOnes) &^ x & swarHighs
}

// IndexAny2 returns the index of the first byte of s equal to a or b,
// or -1. It matches the naive per-byte scan exactly.
func IndexAny2(s string, a, b byte) int {
	i := 0
	for ; i+8 <= len(s); i += 8 {
		v := load64(s, i)
		if m := matchMask(v, a) | matchMask(v, b); m != 0 {
			return i + bits.TrailingZeros64(m)>>3
		}
	}
	for ; i < len(s); i++ {
		if c := s[i]; c == a || c == b {
			return i
		}
	}
	return -1
}

// IndexAny3 returns the index of the first byte of s equal to a, b or
// c, or -1. It matches the naive per-byte scan exactly.
func IndexAny3(s string, a, b, c byte) int {
	i := 0
	for ; i+8 <= len(s); i += 8 {
		v := load64(s, i)
		if m := matchMask(v, a) | matchMask(v, b) | matchMask(v, c); m != 0 {
			return i + bits.TrailingZeros64(m)>>3
		}
	}
	for ; i < len(s); i++ {
		if x := s[i]; x == a || x == b || x == c {
			return i
		}
	}
	return -1
}

// IndexByteFrom returns the index of the first occurrence of c in s at
// or after from, in s's own coordinates, or -1. It is the IndexByte
// idiom every skip loop repeats, packaged so call sites stay readable.
func IndexByteFrom(s string, c byte, from int) int {
	if from >= len(s) {
		return -1
	}
	if j := strings.IndexByte(s[from:], c); j >= 0 {
		return from + j
	}
	return -1
}
