// Package config implements weblint's configuration handling: the
// site configuration file (useful for defining the style guide for a
// company or group), the user configuration file (.weblintrc on Unix
// systems), and the layering rules under which the user's file extends
// or overrides the site configuration and command-line switches
// override both.
//
// The configuration syntax is line-oriented:
//
//	# comments run to end of line
//	enable here-anchor physical-font
//	disable img-alt, mailto-link
//	extension netscape
//	html-version 3.2
//	set tag-case upper
//	set title-length 48
//	set output-style sarif
//	set fail-on warning
//	add here-words "more info" "click me"
//
// Identifiers may be separated by spaces or commas. Category names
// ("errors", "style") and "all" are accepted wherever a warning
// identifier is.
package config

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"weblint/internal/warn"
)

// opKind is the kind of one configuration directive.
type opKind int

const (
	opEnable opKind = iota
	opDisable
	opExtension
	opHTMLVersion
	opSet
	opAddHereWords
)

// op is one parsed directive, retained in file order so that later
// directives override earlier ones.
type op struct {
	kind  opKind
	key   string
	value string
	words []string
	line  int
}

// Config is a parsed configuration file (or an accumulation of several
// layered files).
type Config struct {
	ops []op
	// Source names the file the configuration was read from, for
	// error messages.
	Source string
}

// ParseError describes a syntax problem in a configuration file.
type ParseError struct {
	Source string
	Line   int
	Msg    string
}

// Error formats the parse error with its position.
func (e *ParseError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.Source, e.Line, e.Msg)
}

// Parse reads a configuration from r. source names the input for
// error reporting.
func Parse(r io.Reader, source string) (*Config, error) {
	cfg := &Config{Source: source}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := cfg.parseLine(line, lineNo); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("config: reading %s: %w", source, err)
	}
	return cfg, nil
}

// ParseFile reads a configuration file from disk.
func ParseFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f, path)
}

// parseLine parses one non-empty directive line.
func (c *Config) parseLine(line string, lineNo int) error {
	fields := splitDirective(line)
	if len(fields) == 0 {
		return nil
	}
	cmd := strings.ToLower(fields[0])
	args := fields[1:]
	fail := func(msg string) error {
		return &ParseError{Source: c.Source, Line: lineNo, Msg: msg}
	}
	switch cmd {
	case "enable", "disable":
		if len(args) == 0 {
			return fail(cmd + " requires at least one warning identifier")
		}
		kind := opEnable
		if cmd == "disable" {
			kind = opDisable
		}
		for _, id := range args {
			c.ops = append(c.ops, op{kind: kind, key: id, line: lineNo})
		}
	case "extension":
		if len(args) == 0 {
			return fail("extension requires a vendor name")
		}
		for _, v := range args {
			c.ops = append(c.ops, op{kind: opExtension, key: v, line: lineNo})
		}
	case "html-version":
		if len(args) != 1 {
			return fail("html-version requires exactly one version")
		}
		c.ops = append(c.ops, op{kind: opHTMLVersion, key: args[0], line: lineNo})
	case "set":
		if len(args) < 2 {
			return fail("set requires a key and a value")
		}
		c.ops = append(c.ops, op{
			kind: opSet, key: strings.ToLower(args[0]),
			value: strings.Join(args[1:], " "), line: lineNo,
		})
	case "add":
		if len(args) < 2 {
			return fail("add requires a list name and at least one value")
		}
		if strings.ToLower(args[0]) != "here-words" {
			return fail("unknown list " + strconv.Quote(args[0]))
		}
		c.ops = append(c.ops, op{kind: opAddHereWords, words: args[1:], line: lineNo})
	default:
		return fail("unknown directive " + strconv.Quote(cmd))
	}
	return nil
}

// splitDirective splits a directive line into fields, honouring
// double-quoted strings and treating commas as separators.
func splitDirective(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		ch := line[i]
		switch {
		case ch == '"':
			if inQuote {
				out = append(out, cur.String()) // may be empty
				cur.Reset()
			}
			inQuote = !inQuote
		case inQuote:
			cur.WriteByte(ch)
		case ch == ' ' || ch == '\t' || ch == ',':
			flush()
		default:
			cur.WriteByte(ch)
		}
	}
	flush()
	return out
}

// Settings is the result of applying a stack of configurations: the
// warning enablement set plus the option values the checker consumes.
type Settings struct {
	// Set is the warning enablement selection.
	Set *warn.Set
	// HTMLVersion is the requested version ("" = default).
	HTMLVersion string
	// Extensions are the enabled vendor extensions.
	Extensions []string
	// TagCase and AttrCase configure the case style checks.
	TagCase  string
	AttrCase string
	// TitleLength overrides the title-length limit (0 = default).
	TitleLength int
	// HereWords extends the content-free anchor text list.
	HereWords []string
	// OutputStyle selects the diagnostics renderer: "lint", "short",
	// "terse", "verbose", or the machine-readable "json" (JSON Lines)
	// and "sarif" (SARIF 2.1.0).
	OutputStyle string
	// FailOn is the severity threshold that turns findings into a
	// failing exit: "error", "warning", "style" (or "any", the
	// default), or "never".
	FailOn string
	// Locale selects a message translation catalog ("" = English).
	Locale string
}

// NewSettings returns the default settings.
func NewSettings() *Settings {
	return &Settings{Set: warn.NewSet()}
}

// Apply layers cfg's directives onto s, in file order. Directives in
// later-applied configurations therefore override earlier ones, which
// is how the user file overrides the site file.
func (s *Settings) Apply(cfg *Config) error {
	for _, o := range cfg.ops {
		if err := s.applyOp(cfg, o); err != nil {
			return err
		}
	}
	return nil
}

func (s *Settings) applyOp(cfg *Config, o op) error {
	wrap := func(err error) error {
		if err == nil {
			return nil
		}
		return &ParseError{Source: cfg.Source, Line: o.line, Msg: err.Error()}
	}
	switch o.kind {
	case opEnable:
		return wrap(s.Set.Enable(o.key))
	case opDisable:
		return wrap(s.Set.Disable(o.key))
	case opExtension:
		s.Extensions = append(s.Extensions, o.key)
	case opHTMLVersion:
		s.HTMLVersion = o.key
	case opAddHereWords:
		s.HereWords = append(s.HereWords, o.words...)
	case opSet:
		switch o.key {
		case "tag-case":
			s.TagCase = strings.ToLower(o.value)
		case "attribute-case":
			s.AttrCase = strings.ToLower(o.value)
		case "title-length":
			n, err := strconv.Atoi(o.value)
			if err != nil || n <= 0 {
				return wrap(fmt.Errorf("title-length must be a positive integer, got %q", o.value))
			}
			s.TitleLength = n
		case "output-style":
			v := strings.ToLower(o.value)
			switch v {
			case "lint", "short", "terse", "verbose", "json", "sarif":
				s.OutputStyle = v
			default:
				return wrap(fmt.Errorf("unknown output-style %q", o.value))
			}
		case "fail-on":
			v := strings.ToLower(o.value)
			if _, ok := warn.ParseFailOn(v); !ok {
				return wrap(fmt.Errorf("unknown fail-on threshold %q", o.value))
			}
			s.FailOn = v
		case "locale":
			v := strings.ToLower(o.value)
			if v != "en" && v != "" {
				if _, ok := warn.Locale(v); !ok {
					return wrap(fmt.Errorf("unknown locale %q (built in: %s)",
						o.value, strings.Join(warn.Locales(), ", ")))
				}
			}
			s.Locale = v
		default:
			return wrap(fmt.Errorf("unknown setting %q", o.key))
		}
	}
	return nil
}

// SiteConfigPath returns the path of the site configuration file,
// honouring $WEBLINTRC_SITE; the file need not exist.
func SiteConfigPath() string {
	if p := os.Getenv("WEBLINTRC_SITE"); p != "" {
		return p
	}
	return "/etc/weblintrc"
}

// UserConfigPath returns the path of the user configuration file,
// honouring $WEBLINTRC; the file need not exist.
func UserConfigPath() string {
	if p := os.Getenv("WEBLINTRC"); p != "" {
		return p
	}
	home, err := os.UserHomeDir()
	if err != nil {
		return ""
	}
	return filepath.Join(home, ".weblintrc")
}

// LoadDefault builds Settings from the default layering: built-in
// defaults, then the site configuration file, then the user
// configuration file. Missing files are not errors.
func LoadDefault() (*Settings, error) {
	s := NewSettings()
	for _, path := range []string{SiteConfigPath(), UserConfigPath()} {
		if path == "" {
			continue
		}
		cfg, err := ParseFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		if err := s.Apply(cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}
