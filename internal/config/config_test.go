package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *Config {
	t.Helper()
	cfg, err := Parse(strings.NewReader(src), "test.rc")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return cfg
}

func apply(t *testing.T, src string) *Settings {
	t.Helper()
	s := NewSettings()
	if err := s.Apply(parse(t, src)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return s
}

func TestEnableDisableDirectives(t *testing.T) {
	s := apply(t, `
# turn on the pedantic stuff
enable here-anchor physical-font
disable img-alt
`)
	if !s.Set.Enabled("here-anchor") || !s.Set.Enabled("physical-font") {
		t.Error("enable directive ineffective")
	}
	if s.Set.Enabled("img-alt") {
		t.Error("disable directive ineffective")
	}
}

func TestCommaSeparatedLists(t *testing.T) {
	s := apply(t, "enable here-anchor, physical-font,mailto-link\n")
	for _, id := range []string{"here-anchor", "physical-font", "mailto-link"} {
		if !s.Set.Enabled(id) {
			t.Errorf("%s not enabled", id)
		}
	}
}

func TestCategoryDirectives(t *testing.T) {
	s := apply(t, "disable errors\nenable style\n")
	if s.Set.Enabled("unknown-element") {
		t.Error("errors not disabled")
	}
	if !s.Set.Enabled("here-anchor") {
		t.Error("style not enabled")
	}
}

func TestExtensionAndVersion(t *testing.T) {
	s := apply(t, "extension netscape microsoft\nhtml-version 3.2\n")
	if len(s.Extensions) != 2 || s.Extensions[0] != "netscape" {
		t.Errorf("extensions = %v", s.Extensions)
	}
	if s.HTMLVersion != "3.2" {
		t.Errorf("version = %q", s.HTMLVersion)
	}
}

func TestSetDirectives(t *testing.T) {
	s := apply(t, `
set tag-case upper
set attribute-case lower
set title-length 48
set output-style short
`)
	if s.TagCase != "upper" || s.AttrCase != "lower" {
		t.Errorf("cases = %q/%q", s.TagCase, s.AttrCase)
	}
	if s.TitleLength != 48 {
		t.Errorf("title-length = %d", s.TitleLength)
	}
	if s.OutputStyle != "short" {
		t.Errorf("output-style = %q", s.OutputStyle)
	}
}

func TestAddHereWords(t *testing.T) {
	s := apply(t, `add here-words "more info" "click me" plain`)
	want := []string{"more info", "click me", "plain"}
	if len(s.HereWords) != len(want) {
		t.Fatalf("here words = %v", s.HereWords)
	}
	for i := range want {
		if s.HereWords[i] != want[i] {
			t.Errorf("here word %d = %q, want %q", i, s.HereWords[i], want[i])
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	s := apply(t, `

# full-line comment
enable here-anchor # trailing comment

`)
	if !s.Set.Enabled("here-anchor") {
		t.Error("directive with trailing comment ignored")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate x",
		"enable",
		"html-version",
		"html-version 4.0 extra",
		"set tag-case",
		"add unknown-list x",
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src), "bad.rc"); err == nil {
			t.Errorf("Parse(%q) did not error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse(strings.NewReader("enable here-anchor\nbogus\n"), "my.rc")
	if err == nil {
		t.Fatal("no error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 || pe.Source != "my.rc" {
		t.Errorf("position = %s:%d", pe.Source, pe.Line)
	}
	if !strings.Contains(pe.Error(), "my.rc:2:") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestApplyErrors(t *testing.T) {
	cases := []string{
		"enable no-such-warning",
		"set title-length zero",
		"set title-length -3",
		"set output-style loud",
		"set unknown-key v",
	}
	for _, src := range cases {
		s := NewSettings()
		if err := s.Apply(parse(t, src)); err == nil {
			t.Errorf("Apply(%q) did not error", src)
		}
	}
}

// TestE4ConfigLayering is experiment E4: the paper's Section 4.4
// precedence — the user's file can extend or override the site
// configuration, and command-line switches override both.
func TestE4ConfigLayering(t *testing.T) {
	site := `
disable img-alt
disable here-anchor
set title-length 40
`
	user := `
enable here-anchor
set title-length 80
`
	s := NewSettings()
	if err := s.Apply(parse(t, site)); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(parse(t, user)); err != nil {
		t.Fatal(err)
	}

	// Site-only directives survive.
	if s.Set.Enabled("img-alt") {
		t.Error("site disable lost")
	}
	// User overrides site.
	if !s.Set.Enabled("here-anchor") {
		t.Error("user enable did not override site disable")
	}
	if s.TitleLength != 80 {
		t.Errorf("title-length = %d, want user's 80", s.TitleLength)
	}

	// Command-line layer (a third Apply) overrides both.
	cli := "disable here-anchor\n"
	if err := s.Apply(parse(t, cli)); err != nil {
		t.Fatal(err)
	}
	if s.Set.Enabled("here-anchor") {
		t.Error("command-line disable did not override user enable")
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rc")
	if err := os.WriteFile(path, []byte("enable here-anchor\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSettings()
	if err := s.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	if !s.Set.Enabled("here-anchor") {
		t.Error("file directives not applied")
	}
	if _, err := ParseFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestLoadDefaultLayering(t *testing.T) {
	dir := t.TempDir()
	site := filepath.Join(dir, "site.rc")
	user := filepath.Join(dir, "user.rc")
	if err := os.WriteFile(site, []byte("disable img-alt\nset title-length 10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(user, []byte("set title-length 99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv("WEBLINTRC_SITE", site)
	t.Setenv("WEBLINTRC", user)

	s, err := LoadDefault()
	if err != nil {
		t.Fatal(err)
	}
	if s.Set.Enabled("img-alt") {
		t.Error("site config not loaded")
	}
	if s.TitleLength != 99 {
		t.Errorf("user config did not override: title-length = %d", s.TitleLength)
	}
}

func TestLoadDefaultMissingFilesOK(t *testing.T) {
	t.Setenv("WEBLINTRC_SITE", "/nonexistent/site.rc")
	t.Setenv("WEBLINTRC", "/nonexistent/user.rc")
	s, err := LoadDefault()
	if err != nil {
		t.Fatalf("missing rc files should not error: %v", err)
	}
	if !s.Set.Enabled("img-alt") {
		t.Error("defaults disturbed")
	}
}

func TestConfigPaths(t *testing.T) {
	t.Setenv("WEBLINTRC_SITE", "/tmp/s")
	t.Setenv("WEBLINTRC", "/tmp/u")
	if SiteConfigPath() != "/tmp/s" || UserConfigPath() != "/tmp/u" {
		t.Error("env overrides ignored")
	}
	t.Setenv("WEBLINTRC_SITE", "")
	if SiteConfigPath() != "/etc/weblintrc" {
		t.Errorf("default site path = %q", SiteConfigPath())
	}
	t.Setenv("WEBLINTRC", "")
	if p := UserConfigPath(); p != "" && !strings.HasSuffix(p, ".weblintrc") {
		t.Errorf("default user path = %q", p)
	}
}

func TestSplitDirective(t *testing.T) {
	got := splitDirective(`add here-words "two words" bare,comma`)
	want := []string{"add", "here-words", "two words", "bare", "comma"}
	if len(got) != len(want) {
		t.Fatalf("fields = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("field %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestFailOnSetting: "set fail-on" layers into Settings.FailOn with
// validation.
func TestFailOnSetting(t *testing.T) {
	s := NewSettings()
	cfg, err := Parse(strings.NewReader("set fail-on warning\n"), "rc")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	if s.FailOn != "warning" {
		t.Errorf("FailOn = %q, want warning", s.FailOn)
	}
	bad, err := Parse(strings.NewReader("set fail-on fatal\n"), "rc")
	if err != nil {
		t.Fatal(err)
	}
	if err := NewSettings().Apply(bad); err == nil {
		t.Error("unknown fail-on threshold accepted")
	}
}

// TestMachineOutputStyles: output-style accepts the machine formats.
func TestMachineOutputStyles(t *testing.T) {
	for _, style := range []string{"json", "sarif"} {
		s := NewSettings()
		cfg, err := Parse(strings.NewReader("set output-style "+style+"\n"), "rc")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Apply(cfg); err != nil {
			t.Fatal(err)
		}
		if s.OutputStyle != style {
			t.Errorf("OutputStyle = %q, want %s", s.OutputStyle, style)
		}
	}
}
