package corpus

import (
	"fmt"
	"math/rand"
)

// SiteConfig controls multi-page site generation for the -R and robot
// experiments.
type SiteConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Pages is the number of pages (default 20).
	Pages int
	// Orphans is how many pages no other page links to (default 2).
	Orphans int
	// BrokenLinks plants links to nonexistent pages (default 0).
	BrokenLinks int
	// Subdirs spreads pages over this many subdirectories, one of
	// which gets no index file (default 2).
	Subdirs int
	// Errors are the per-page injected mistakes.
	Errors ErrorRates
}

// GenerateSite produces a set of pages keyed by site-relative path
// (slash-separated). The root index.html links (transitively) to every
// page except the orphans; broken links point at missing-N.html.
func GenerateSite(cfg SiteConfig) map[string]string {
	if cfg.Pages <= 0 {
		cfg.Pages = 20
	}
	if cfg.Orphans < 0 || cfg.Orphans >= cfg.Pages {
		cfg.Orphans = 0
	}
	if cfg.Subdirs <= 0 {
		cfg.Subdirs = 2
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))

	// Assign page paths: index at root, the rest spread over
	// subdirectories. Only subdirectory 0 gets an index file; the
	// others exercise the no-index-file warning (Subdirs-1 of them).
	paths := make([]string, cfg.Pages)
	paths[0] = "index.html"
	for i := 1; i < cfg.Pages; i++ {
		switch {
		case i == 1 && cfg.Subdirs > 0:
			paths[i] = "sub0/index.html"
		case i%3 == 0 && cfg.Subdirs > 0:
			paths[i] = fmt.Sprintf("sub%d/page%d.html", (i/3)%cfg.Subdirs, i)
		default:
			paths[i] = fmt.Sprintf("page%d.html", i)
		}
	}

	// Linked pages: everything except the chosen orphans (the last
	// Orphans non-index pages).
	orphan := map[string]bool{}
	for i := cfg.Pages - 1; i > 0 && len(orphan) < cfg.Orphans; i-- {
		if paths[i] != "sub0/index.html" {
			orphan[paths[i]] = true
		}
	}

	var linkable []string
	for _, p := range paths[1:] {
		if !orphan[p] {
			linkable = append(linkable, p)
		}
	}

	out := make(map[string]string, cfg.Pages)
	broken := cfg.BrokenLinks
	for i, p := range paths {
		// Each page links to a few other linkable pages, with
		// root-relative targets so resolution is uniform.
		var links []string
		for j := 0; j < 3 && len(linkable) > 0; j++ {
			t := linkable[rnd.Intn(len(linkable))]
			if t != p {
				links = append(links, "/"+t)
			}
		}
		if i == 0 {
			// The root index links to every linkable page so none
			// are accidentally orphaned.
			links = links[:0]
			for _, t := range linkable {
				links = append(links, "/"+t)
			}
		}
		if broken > 0 {
			links = append(links, fmt.Sprintf("/missing-%d.html", broken))
			broken--
		}
		out[p] = Generate(Config{
			Seed:      cfg.Seed + int64(i)*7919,
			Sections:  2 + i%3,
			Errors:    cfg.Errors,
			Links:     links,
			Title:     fmt.Sprintf("Page %d", i),
			ImageBase: "http://images.example.org/",
		})
	}
	return out
}
