// Package corpus generates synthetic HTML documents for benchmarks and
// experiments. It substitutes for the paper's real-world page
// collection: a deterministic generator (seeded PRNG) produces pages
// of controlled size, and an error injector plants exactly the classes
// of commonly-made mistakes the paper's Section 4.3 enumerates —
// missing close tags, mis-typed element names, unquoted attribute
// values, illegal colors, overlapping elements, missing ALT text,
// unknown entities and skipped heading levels — at configurable rates.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// ErrorRates sets the per-opportunity probability of each injected
// mistake class. All zero means a valid document.
type ErrorRates struct {
	// DropClose drops the closing tag of a container.
	DropClose float64
	// Misspell mis-types an element name (<BLOCKQOUTE>).
	Misspell float64
	// UnquoteAttr leaves an attribute value unquoted although it
	// needs quoting.
	UnquoteAttr float64
	// BadColor plants an illegal color value.
	BadColor float64
	// Overlap produces overlapping inline markup (<B><A>..</B></A>).
	Overlap float64
	// MissingAlt omits ALT from an IMG.
	MissingAlt float64
	// BadEntity plants an unknown character entity.
	BadEntity float64
	// HeadingSkip skips a heading level (H1 then H3).
	HeadingSkip float64
}

// Uniform returns rates with every class set to p.
func Uniform(p float64) ErrorRates {
	return ErrorRates{
		DropClose: p, Misspell: p, UnquoteAttr: p, BadColor: p,
		Overlap: p, MissingAlt: p, BadEntity: p, HeadingSkip: p,
	}
}

// Config controls document generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Sections is the number of body sections (heading + content).
	// Default 5.
	Sections int
	// ParagraphsPerSection controls page size. Default 3.
	ParagraphsPerSection int
	// Title is the page title; empty means a generated one.
	Title string
	// Errors selects the injected mistakes.
	Errors ErrorRates
	// Links are candidate link targets for generated anchors.
	Links []string
	// ImageBase prefixes generated IMG SRC values; site generation
	// sets an external base so images never read as broken local
	// links.
	ImageBase string
}

var words = []string{
	"web", "site", "quality", "assurance", "page", "syntax", "style",
	"checker", "lint", "perl", "hack", "document", "markup", "anchor",
	"element", "attribute", "browser", "robot", "gateway", "victims",
	"validation", "heuristic", "stack", "warning", "cascade", "bazaar",
}

var colorList = []string{"#ff0000", "#00ff00", "#0000ff", "navy", "olive", "teal", "#c0c0c0"}

// gen carries generation state.
type gen struct {
	rnd     *rand.Rand
	b       strings.Builder
	cfg     Config
	heading int
	imgN    int
}

// Generate produces one HTML document.
func Generate(cfg Config) string {
	if cfg.Sections <= 0 {
		cfg.Sections = 5
	}
	if cfg.ParagraphsPerSection <= 0 {
		cfg.ParagraphsPerSection = 3
	}
	g := &gen{rnd: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	g.document()
	return g.b.String()
}

// GenerateRawText produces a document whose bulk is raw SCRIPT
// content, the workload that stresses the tokenizer's raw-text scan:
// blocks script elements of 16 lines each, separated by ordinary
// markup. It is deterministic (no error injection) so benchmark runs
// are comparable.
func GenerateRawText(blocks int) string {
	var b strings.Builder
	b.WriteString("<HTML><HEAD><TITLE>raw text</TITLE>\n")
	b.WriteString(`<META NAME="description" CONTENT="x">`)
	b.WriteString(`<META NAME="keywords" CONTENT="x">`)
	b.WriteString("</HEAD><BODY>\n")
	for i := 0; i < blocks; i++ {
		b.WriteString("<SCRIPT>\n<!--\n")
		for j := 0; j < 16; j++ {
			fmt.Fprintf(&b, "var v%d_%d = 'raw < text & with > markup-ish bytes';\n", i, j)
		}
		b.WriteString("// -->\n</SCRIPT>\n<P>between blocks\n")
	}
	b.WriteString("</BODY></HTML>\n")
	return b.String()
}

// GenerateSized produces a document of at least n bytes by scaling the
// section count.
func GenerateSized(seed int64, n int, errors ErrorRates) string {
	cfg := Config{Seed: seed, Errors: errors, Sections: 1, ParagraphsPerSection: 3}
	for cfg.Sections < 1<<20 {
		doc := Generate(cfg)
		if len(doc) >= n {
			return doc
		}
		cfg.Sections *= 2
	}
	return Generate(cfg)
}

func (g *gen) hit(p float64) bool {
	return p > 0 && g.rnd.Float64() < p
}

func (g *gen) word() string { return words[g.rnd.Intn(len(words))] }

func (g *gen) phrase(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = g.word()
	}
	return strings.Join(parts, " ")
}

func (g *gen) document() {
	title := g.cfg.Title
	if title == "" {
		title = titleCase(g.phrase(3))
	}
	g.b.WriteString("<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0 Transitional//EN\">\n")
	g.b.WriteString("<HTML>\n<HEAD>\n")
	fmt.Fprintf(&g.b, "<TITLE>%s</TITLE>\n", title)
	fmt.Fprintf(&g.b, "<META NAME=\"description\" CONTENT=\"%s\">\n", g.phrase(5))
	fmt.Fprintf(&g.b, "<META NAME=\"keywords\" CONTENT=\"%s\">\n", strings.Join([]string{g.word(), g.word(), g.word()}, ", "))
	g.b.WriteString("</HEAD>\n")

	// BODY with optionally broken color attribute.
	bg := colorList[g.rnd.Intn(len(colorList))]
	if g.hit(g.cfg.Errors.BadColor) {
		bg = "fffff"
	}
	fmt.Fprintf(&g.b, "<BODY BGCOLOR=\"%s\">\n", bg)

	// A navigation list covering every configured link target, so
	// that site-level experiments get a deterministic link graph.
	if len(g.cfg.Links) > 0 {
		g.b.WriteString("<UL>\n")
		for _, l := range g.cfg.Links {
			fmt.Fprintf(&g.b, "<LI><A HREF=\"%s\">%s</A>\n", l, g.phrase(2))
		}
		g.b.WriteString("</UL>\n")
	}

	g.heading = 0
	for s := 0; s < g.cfg.Sections; s++ {
		g.section(s)
	}

	g.b.WriteString("</BODY>\n</HTML>\n")
}

func (g *gen) section(idx int) {
	// Heading level walk, with optional skipped levels.
	level := 1
	if idx > 0 {
		level = g.heading
		switch g.rnd.Intn(3) {
		case 0:
			if level < 4 {
				level++
			}
		case 1:
			if level > 1 {
				level--
			}
		}
		if g.hit(g.cfg.Errors.HeadingSkip) && g.heading <= 3 {
			level = g.heading + 2
		}
	}
	g.heading = level
	fmt.Fprintf(&g.b, "<H%d>%s</H%d>\n", level, titleCase(g.phrase(2)), level)

	for p := 0; p < g.cfg.ParagraphsPerSection; p++ {
		switch g.rnd.Intn(6) {
		case 0:
			g.list()
		case 1:
			g.table()
		case 2:
			g.image()
			g.paragraph()
		default:
			g.paragraph()
		}
	}
}

func (g *gen) paragraph() {
	g.b.WriteString("<P>")
	n := 2 + g.rnd.Intn(4)
	for i := 0; i < n; i++ {
		switch {
		case g.rnd.Intn(5) == 0:
			g.inlineMarkup()
		case g.rnd.Intn(7) == 0:
			g.anchor()
		default:
			g.b.WriteString(g.phrase(4 + g.rnd.Intn(5)))
		}
		if g.hit(g.cfg.Errors.BadEntity) {
			g.b.WriteString(" &bogus; ")
		} else if g.rnd.Intn(8) == 0 {
			g.b.WriteString(" &amp; ")
		} else {
			g.b.WriteString(" ")
		}
	}
	g.b.WriteString("</P>\n")
}

// inlineMarkup emits phrase markup, optionally misspelled, unclosed or
// overlapping.
func (g *gen) inlineMarkup() {
	tags := []string{"EM", "STRONG", "CODE", "B", "I", "TT"}
	tag := tags[g.rnd.Intn(len(tags))]

	if g.hit(g.cfg.Errors.Overlap) {
		// <B><A ...>text</B></A>: the overlap from Section 4.2.
		href := g.linkTarget()
		fmt.Fprintf(&g.b, "<%s><A HREF=\"%s\">%s</%s></A>", tag, href, g.phrase(2), tag)
		return
	}
	open := tag
	if g.hit(g.cfg.Errors.Misspell) {
		open = misspell(tag)
	}
	if g.hit(g.cfg.Errors.DropClose) {
		fmt.Fprintf(&g.b, "<%s>%s", open, g.phrase(2))
		return
	}
	fmt.Fprintf(&g.b, "<%s>%s</%s>", open, g.phrase(2), tag)
}

func (g *gen) anchor() {
	href := g.linkTarget()
	if g.hit(g.cfg.Errors.UnquoteAttr) {
		// Unquoted value needing quotes (contains '/').
		fmt.Fprintf(&g.b, "<A HREF=%s>%s</A>", href, g.phrase(2))
		return
	}
	fmt.Fprintf(&g.b, "<A HREF=\"%s\">%s</A>", href, g.phrase(2))
}

func (g *gen) linkTarget() string {
	if len(g.cfg.Links) > 0 {
		return g.cfg.Links[g.rnd.Intn(len(g.cfg.Links))]
	}
	// Fabricated targets are external so they never read as broken
	// local links in site experiments.
	return fmt.Sprintf("http://www.example.org/%s/%s.html", g.word(), g.word())
}

func (g *gen) image() {
	g.imgN++
	src := fmt.Sprintf("%simg%d.gif", g.cfg.ImageBase, g.imgN)
	if g.hit(g.cfg.Errors.MissingAlt) {
		fmt.Fprintf(&g.b, "<IMG SRC=\"%s\" WIDTH=\"120\" HEIGHT=\"80\">\n", src)
		return
	}
	fmt.Fprintf(&g.b, "<IMG SRC=\"%s\" ALT=\"%s\" WIDTH=\"120\" HEIGHT=\"80\">\n", src, g.phrase(2))
}

func (g *gen) list() {
	g.b.WriteString("<UL>\n")
	n := 2 + g.rnd.Intn(4)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&g.b, "<LI>%s\n", g.phrase(3+g.rnd.Intn(4)))
	}
	g.b.WriteString("</UL>\n")
}

func (g *gen) table() {
	g.b.WriteString("<TABLE BORDER=\"1\">\n")
	rows := 2 + g.rnd.Intn(3)
	cols := 2 + g.rnd.Intn(2)
	for r := 0; r < rows; r++ {
		g.b.WriteString("<TR>")
		for c := 0; c < cols; c++ {
			fmt.Fprintf(&g.b, "<TD>%s</TD>", g.phrase(2))
		}
		g.b.WriteString("</TR>\n")
	}
	if g.hit(g.cfg.Errors.DropClose) {
		// A dropped </TABLE> is the cascade-rich case: the next
		// structural close is forced to pop it (and, with the
		// heuristics ablated, every open row and cell too).
		g.b.WriteString("\n")
		return
	}
	g.b.WriteString("</TABLE>\n")
}

// titleCase upper-cases the first letter of each word.
func titleCase(s string) string {
	b := []byte(s)
	up := true
	for i := range b {
		if up && b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
		up = b[i] == ' '
	}
	return string(b)
}

// misspell swaps two interior letters, or doubles one for short names.
func misspell(name string) string {
	if len(name) < 4 {
		return name + name[len(name)-1:]
	}
	b := []byte(name)
	i := 1 + len(b)%2
	b[i], b[i+1] = b[i+1], b[i]
	return string(b)
}
