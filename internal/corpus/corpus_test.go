package corpus

import (
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 5, Sections: 4, Errors: Uniform(0.3)}
	a := Generate(cfg)
	b := Generate(cfg)
	if a != b {
		t.Error("same seed produced different documents")
	}
	c := Generate(Config{Seed: 6, Sections: 4, Errors: Uniform(0.3)})
	if a == c {
		t.Error("different seeds produced identical documents")
	}
}

func TestDocumentSkeleton(t *testing.T) {
	doc := Generate(Config{Seed: 1})
	for _, want := range []string{"<!DOCTYPE", "<HTML>", "<HEAD>", "<TITLE>", "</TITLE>", "<BODY", "</BODY>", "</HTML>"} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %s", want)
		}
	}
}

func TestGenerateSized(t *testing.T) {
	for _, n := range []int{1 << 10, 16 << 10, 128 << 10} {
		doc := GenerateSized(1, n, ErrorRates{})
		if len(doc) < n {
			t.Errorf("GenerateSized(%d) produced %d bytes", n, len(doc))
		}
	}
}

func TestErrorInjectionChangesOutput(t *testing.T) {
	clean := Generate(Config{Seed: 9, Sections: 5})
	dirty := Generate(Config{Seed: 9, Sections: 5, Errors: Uniform(1)})
	if clean == dirty {
		t.Error("full error injection produced identical output")
	}
	// Full bad-color injection plants the known bad value.
	if !strings.Contains(dirty, "fffff") {
		t.Error("bad color not planted")
	}
	if !strings.Contains(dirty, "&bogus;") {
		t.Error("bad entity not planted")
	}
}

func TestUniform(t *testing.T) {
	r := Uniform(0.5)
	if r.DropClose != 0.5 || r.Overlap != 0.5 || r.BadEntity != 0.5 || r.HeadingSkip != 0.5 {
		t.Errorf("Uniform = %+v", r)
	}
}

func TestLinksUsedVerbatim(t *testing.T) {
	doc := Generate(Config{Seed: 2, Links: []string{"/target-a.html", "/target-b.html"}})
	if !strings.Contains(doc, `HREF="/target-a.html"`) || !strings.Contains(doc, `HREF="/target-b.html"`) {
		t.Error("configured links not all present in navigation list")
	}
}

func TestImageBase(t *testing.T) {
	doc := Generate(Config{Seed: 4, Sections: 12, ImageBase: "http://img.example/"})
	if strings.Contains(doc, `SRC="img`) {
		t.Error("relative image slipped through ImageBase")
	}
}

func TestGenerateSiteShape(t *testing.T) {
	pages := GenerateSite(SiteConfig{Seed: 3, Pages: 12, Orphans: 2, BrokenLinks: 1, Subdirs: 2})
	if len(pages) != 12 {
		t.Fatalf("pages = %d", len(pages))
	}
	if _, ok := pages["index.html"]; !ok {
		t.Error("no root index")
	}
	if _, ok := pages["sub0/index.html"]; !ok {
		t.Error("no sub0 index")
	}
	// The root index must link to every non-orphan page.
	idx := pages["index.html"]
	linked := 0
	for path := range pages {
		if path == "index.html" {
			continue
		}
		if strings.Contains(idx, "/"+path) {
			linked++
		}
	}
	if linked < len(pages)-1-2 { // all but the two orphans
		t.Errorf("root index links %d pages, want >= %d", linked, len(pages)-3)
	}
	// A broken link is planted somewhere.
	found := false
	for _, body := range pages {
		if strings.Contains(body, "/missing-1.html") {
			found = true
		}
	}
	if !found {
		t.Error("broken link not planted")
	}
}

func TestGenerateSiteDeterminism(t *testing.T) {
	a := GenerateSite(SiteConfig{Seed: 8, Pages: 6})
	b := GenerateSite(SiteConfig{Seed: 8, Pages: 6})
	if len(a) != len(b) {
		t.Fatal("site shape differs")
	}
	for k := range a {
		if a[k] != b[k] {
			t.Errorf("page %s differs between runs", k)
		}
	}
}

func TestMisspell(t *testing.T) {
	if misspell("EM") == "EM" {
		t.Error("short name not altered")
	}
	if misspell("STRONG") == "STRONG" {
		t.Error("long name not altered")
	}
}

func TestTitleCase(t *testing.T) {
	if titleCase("web site quality") != "Web Site Quality" {
		t.Errorf("titleCase = %q", titleCase("web site quality"))
	}
}
