package corpus

import (
	"reflect"
	"strings"
	"testing"
)

// TestGenerateSiteDeterministic: the same seed produces byte-identical
// sites; different seeds differ.
func TestGenerateSiteDeterministic(t *testing.T) {
	cfg := SiteConfig{Seed: 42, Pages: 12, Orphans: 2, BrokenLinks: 3, Errors: Uniform(0.3)}
	a := GenerateSite(cfg)
	b := GenerateSite(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different sites")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	if reflect.DeepEqual(a, GenerateSite(cfg2)) {
		t.Fatal("different seeds produced identical sites")
	}
}

// TestGenerateSiteCounts: the requested counts hold exactly — pages,
// orphans (pages no other page links to), and planted broken links.
func TestGenerateSiteCounts(t *testing.T) {
	site := GenerateSite(SiteConfig{Seed: 7, Pages: 15, Orphans: 2, BrokenLinks: 2, Subdirs: 2})
	if len(site) != 15 {
		t.Fatalf("generated %d pages, want 15", len(site))
	}
	if _, ok := site["index.html"]; !ok {
		t.Fatal("no root index.html")
	}
	if _, ok := site["sub0/index.html"]; !ok {
		t.Fatal("no sub0/index.html")
	}

	// Collect every link target used anywhere.
	links := map[string]int{}
	for _, src := range site {
		for _, chunk := range strings.Split(src, `HREF="`)[1:] {
			end := strings.IndexByte(chunk, '"')
			if end < 0 {
				continue
			}
			links[chunk[:end]]++
		}
	}

	broken := 0
	for target := range links {
		if strings.HasPrefix(target, "/missing-") {
			broken++
		}
	}
	if broken != 2 {
		t.Errorf("planted %d broken link targets, want 2", broken)
	}

	// Orphans: pages (beyond the root) never linked by any page.
	orphans := 0
	for path := range site {
		if path == "index.html" {
			continue
		}
		if links["/"+path] == 0 {
			orphans++
		}
	}
	if orphans != 2 {
		t.Errorf("found %d orphan pages, want 2", orphans)
	}
}

// TestGenerateSiteDefaults: a zero config still produces a coherent
// site (20 pages, root index present).
func TestGenerateSiteDefaults(t *testing.T) {
	site := GenerateSite(SiteConfig{})
	if len(site) != 20 {
		t.Fatalf("default site has %d pages, want 20", len(site))
	}
	for path, src := range site {
		if !strings.HasPrefix(path, "sub") && path != "index.html" && !strings.HasPrefix(path, "page") {
			t.Errorf("unexpected page path %q", path)
		}
		if src == "" {
			t.Errorf("page %q is empty", path)
		}
	}
}
