package plugin

import "testing"

type fake struct {
	name string
	els  []string
}

func (f fake) Name() string       { return f.name }
func (f fake) Elements() []string { return f.els }
func (f fake) Check(content string, baseLine int, report Report) {
	report("x", baseLine)
}

func TestForElement(t *testing.T) {
	css := fake{"css", []string{"style"}}
	js := fake{"js", []string{"script", "server"}}
	plugins := []ContentChecker{css, js}

	if got := ForElement(plugins, "style"); got == nil || got.Name() != "css" {
		t.Errorf("style -> %v", got)
	}
	if got := ForElement(plugins, "script"); got == nil || got.Name() != "js" {
		t.Errorf("script -> %v", got)
	}
	if got := ForElement(plugins, "server"); got == nil || got.Name() != "js" {
		t.Errorf("server -> %v", got)
	}
	if ForElement(plugins, "xmp") != nil {
		t.Error("unclaimed element matched")
	}
	if ForElement(nil, "style") != nil {
		t.Error("nil plugin list matched")
	}
}

func TestFirstClaimWins(t *testing.T) {
	a := fake{"a", []string{"style"}}
	b := fake{"b", []string{"style"}}
	if got := ForElement([]ContentChecker{a, b}, "style"); got.Name() != "a" {
		t.Errorf("first-registered plugin should win, got %s", got.Name())
	}
}

func TestReportPassthrough(t *testing.T) {
	var gotID string
	var gotLine int
	fake{"f", []string{"style"}}.Check("body", 7, func(id string, line int, args ...any) {
		gotID, gotLine = id, line
	})
	if gotID != "x" || gotLine != 7 {
		t.Errorf("report = %s@%d", gotID, gotLine)
	}
}
