// Package plugin defines weblint's content-checker plugin interface,
// the paper's Section 6.1 item: "Support for 'plugins' which are used
// to validate non-HTML content (e.g. to validate stylesheets)".
//
// A ContentChecker receives the raw content of elements it claims
// (STYLE, SCRIPT, ...) and reports problems through the same message
// registry as the HTML checks — plugins register their message
// definitions with warn.Register at init time, so they participate in
// enable/disable configuration, categories and formatting exactly like
// built-in messages.
package plugin

// Report emits one message: a registered message identifier, the
// 1-based line within the checked document, and the message's format
// arguments. String, int and bool arguments format allocation-free
// (they are the types the registered %s/%d templates take, see
// warn.Emitter.Emit); any other value is rendered with fmt.Sprint
// before formatting.
type Report func(id string, line int, args ...any)

// ContentChecker validates the raw content of particular elements.
type ContentChecker interface {
	// Name identifies the plugin in diagnostics.
	Name() string
	// Elements returns the lower-case element names whose content
	// the plugin checks.
	Elements() []string
	// Check validates content. baseLine is the document line the
	// content starts on; the plugin adds its own relative offsets.
	Check(content string, baseLine int, report Report)
}

// ForElement returns the first plugin claiming the element, or nil.
func ForElement(plugins []ContentChecker, element string) ContentChecker {
	for _, p := range plugins {
		for _, e := range p.Elements() {
			if e == element {
				return p
			}
		}
	}
	return nil
}
