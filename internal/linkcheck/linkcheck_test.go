package linkcheck

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestExtract(t *testing.T) {
	src := `<HTML><BODY BACKGROUND="bg.gif">
<A HREF="page.html">one</A>
<IMG SRC="pic.gif" ALT="p" LOWSRC="lo.gif">
<AREA HREF="map.html" ALT="m">
<FORM ACTION="/cgi/submit"></FORM>
<SCRIPT SRC="s.js"></SCRIPT>
<BLOCKQUOTE CITE="http://src.org/q"></BLOCKQUOTE>
</BODY></HTML>`
	links := Extract(src)
	want := map[string]string{
		"bg.gif":           "body/background",
		"page.html":        "a/href",
		"pic.gif":          "img/src",
		"lo.gif":           "img/lowsrc",
		"map.html":         "area/href",
		"/cgi/submit":      "form/action",
		"s.js":             "script/src",
		"http://src.org/q": "blockquote/cite",
	}
	if len(links) != len(want) {
		t.Fatalf("got %d links, want %d: %+v", len(links), len(want), links)
	}
	for _, l := range links {
		if want[l.URL] != l.Element+"/"+l.Attr {
			t.Errorf("link %q from %s/%s, want %s", l.URL, l.Element, l.Attr, want[l.URL])
		}
		if l.Line < 1 {
			t.Errorf("link %q line = %d", l.URL, l.Line)
		}
	}
}

func TestExtractSkipsOddQuoteTags(t *testing.T) {
	links := Extract(`<A HREF="broken.html>x</A>`)
	if len(links) != 0 {
		t.Errorf("links from garbled tag: %+v", links)
	}
}

func TestExtractEmptyValues(t *testing.T) {
	links := Extract(`<A HREF="">x</A><A NAME="anchor">y</A>`)
	if len(links) != 0 {
		t.Errorf("links = %+v", links)
	}
}

func TestAnchors(t *testing.T) {
	src := `<A NAME="top">x</A><P ID="sec1">y</P><A HREF="z">no name</A>`
	anchors := Anchors(src)
	if !anchors["top"] || !anchors["sec1"] {
		t.Errorf("anchors = %v", anchors)
	}
	if len(anchors) != 2 {
		t.Errorf("anchors = %v", anchors)
	}
}

func TestIsExternal(t *testing.T) {
	ext := []string{"http://x/", "https://x/", "ftp://h/f", "mailto:a@b", "//proto-relative/x", "news:comp.infosystems"}
	local := []string{"page.html", "/abs/page.html", "../up.html", "dir/x.html", "#frag", "dir with space:x"}
	for _, u := range ext {
		if !IsExternal(u) {
			t.Errorf("IsExternal(%q) = false", u)
		}
	}
	for _, u := range local {
		if IsExternal(u) {
			t.Errorf("IsExternal(%q) = true", u)
		}
	}
}

func TestSplitFragmentAndQuery(t *testing.T) {
	doc, frag := SplitFragment("page.html#sec")
	if doc != "page.html" || frag != "sec" {
		t.Errorf("split = %q, %q", doc, frag)
	}
	doc, frag = SplitFragment("plain.html")
	if doc != "plain.html" || frag != "" {
		t.Errorf("split = %q, %q", doc, frag)
	}
	if StripQuery("x.html?a=1") != "x.html" || StripQuery("x.html") != "x.html" {
		t.Error("StripQuery wrong")
	}
}

func newTestServer() *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/gone", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	mux.HandleFunc("/moved", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/ok", http.StatusMovedPermanently)
	})
	mux.HandleFunc("/no-head", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/server-error", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	return httptest.NewServer(mux)
}

func TestCheckOneOK(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	c := &Checker{Client: srv.Client()}

	res := c.CheckOne(srv.URL + "/ok")
	if !res.OK || res.Status != 200 || res.Err != nil {
		t.Errorf("result = %+v", res)
	}
}

func TestCheckOne404(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	c := &Checker{Client: srv.Client()}

	res := c.CheckOne(srv.URL + "/gone")
	if res.OK || res.Status != 404 {
		t.Errorf("result = %+v", res)
	}
}

func TestCheckOneRedirect(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	c := &Checker{Client: srv.Client()}

	res := c.CheckOne(srv.URL + "/moved")
	if !res.OK {
		t.Errorf("result = %+v", res)
	}
	if res.FinalURL != srv.URL+"/ok" {
		t.Errorf("final URL = %q (redirect fixing info)", res.FinalURL)
	}
}

func TestCheckOneHeadFallback(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	c := &Checker{Client: srv.Client()}

	res := c.CheckOne(srv.URL + "/no-head")
	if !res.OK || res.Status != 200 {
		t.Errorf("HEAD-rejecting server not retried with GET: %+v", res)
	}
}

func TestCheckOneTransportError(t *testing.T) {
	c := &Checker{}
	res := c.CheckOne("http://127.0.0.1:1/unreachable")
	if res.Err == nil || res.OK {
		t.Errorf("result = %+v", res)
	}
}

func TestCheckAll(t *testing.T) {
	srv := newTestServer()
	defer srv.Close()
	c := &Checker{Client: srv.Client(), Concurrency: 4}

	urls := []string{
		srv.URL + "/ok",
		srv.URL + "/gone",
		srv.URL + "/moved",
		srv.URL + "/server-error",
		srv.URL + "/ok", // duplicate: checked once
	}
	results := c.CheckAll(urls)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4 (dedup)", len(results))
	}
	if !results[srv.URL+"/ok"].OK {
		t.Error("/ok not OK")
	}
	if results[srv.URL+"/gone"].OK {
		t.Error("/gone OK")
	}
	if results[srv.URL+"/server-error"].OK {
		t.Error("/server-error OK")
	}
}

func TestResultString(t *testing.T) {
	cases := []struct {
		res  Result
		want string
	}{
		{Result{URL: "u", OK: true}, "u: ok"},
		{Result{URL: "u", Status: 404}, "u: 404"},
		{Result{URL: "u", OK: true, FinalURL: "v"}, "u: ok (redirects to v)"},
	}
	for _, tc := range cases {
		if got := tc.res.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
