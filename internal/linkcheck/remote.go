package linkcheck

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"weblint/internal/fetch"
)

// defaultClient is the shared hardened default: connect + total
// timeouts and the documented 10-redirect cap. Private targets stay
// reachable — link checking runs against URLs the operator's own
// pages reference, intranet targets included.
var defaultClient = sync.OnceValue(func() *http.Client {
	return fetch.New(fetch.Options{
		Timeout:      15 * time.Second,
		MaxRedirects: 10,
		AllowPrivate: true,
		UserAgent:    "weblint-linkcheck",
	}).HTTPClient()
})

// Result is the outcome of validating one remote URL.
type Result struct {
	// URL is the checked URL.
	URL string
	// Status is the final HTTP status code (0 on transport error).
	Status int
	// OK reports whether the target exists (2xx or 3xx after
	// redirects).
	OK bool
	// Err is the transport error, if any.
	Err error
	// FinalURL is the URL after following redirects, when it
	// differs from URL (the "smarter robots will handle redirects"
	// feature: callers can fix their links).
	FinalURL string
}

// String renders the result for reports.
func (r Result) String() string {
	switch {
	case r.Err != nil:
		return fmt.Sprintf("%s: error: %v", r.URL, r.Err)
	case !r.OK:
		return fmt.Sprintf("%s: %d", r.URL, r.Status)
	case r.FinalURL != "":
		return fmt.Sprintf("%s: ok (redirects to %s)", r.URL, r.FinalURL)
	default:
		return fmt.Sprintf("%s: ok", r.URL)
	}
}

// Checker validates remote links. The zero value is usable; fields
// customise behaviour.
type Checker struct {
	// Client is the HTTP client; nil means a 15-second-timeout
	// client following up to 10 redirects.
	Client *http.Client
	// Concurrency bounds parallel requests (default 8).
	Concurrency int
	// UserAgent is sent with requests (default "weblint-linkcheck").
	UserAgent string
}

func (c *Checker) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return defaultClient()
}

// CheckOne validates a single URL: a HEAD request, retried as GET when
// the server rejects HEAD (405 or 501, a common server limitation).
func (c *Checker) CheckOne(url string) Result {
	res := Result{URL: url}
	client := c.client()

	do := func(method string) (*http.Response, error) {
		req, err := http.NewRequest(method, url, nil)
		if err != nil {
			return nil, err
		}
		ua := c.UserAgent
		if ua == "" {
			ua = "weblint-linkcheck"
		}
		req.Header.Set("User-Agent", ua)
		return client.Do(req)
	}

	resp, err := do(http.MethodHead)
	if err == nil && (resp.StatusCode == http.StatusMethodNotAllowed ||
		resp.StatusCode == http.StatusNotImplemented) {
		resp.Body.Close()
		resp, err = do(http.MethodGet)
	}
	if err != nil {
		res.Err = err
		return res
	}
	defer resp.Body.Close()

	res.Status = resp.StatusCode
	res.OK = resp.StatusCode >= 200 && resp.StatusCode < 400
	if final := resp.Request.URL.String(); final != url {
		res.FinalURL = final
	}
	return res
}

// CheckAll validates a set of URLs concurrently and returns results
// keyed by URL. Duplicate URLs are checked once.
func (c *Checker) CheckAll(urls []string) map[string]Result {
	unique := map[string]bool{}
	var order []string
	for _, u := range urls {
		if !unique[u] {
			unique[u] = true
			order = append(order, u)
		}
	}
	sort.Strings(order)

	conc := c.Concurrency
	if conc <= 0 {
		conc = 8
	}
	sem := make(chan struct{}, conc)
	var mu sync.Mutex
	out := make(map[string]Result, len(order))
	var wg sync.WaitGroup
	for _, u := range order {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := c.CheckOne(u)
			mu.Lock()
			out[u] = r
			mu.Unlock()
		}(u)
	}
	wg.Wait()
	return out
}
