// Package linkcheck implements hyperlink extraction and validation:
// the "broken link" class of checks from the paper's Sections 3.5 and
// 4.5. Local links are resolved against the filesystem; remote links
// are validated by sending a HEAD request and reporting URLs which
// result in failure response codes, with redirects followed.
package linkcheck

import (
	"strings"

	"weblint/internal/bytestr"
	"weblint/internal/htmltoken"
)

// Link is one outbound reference found in a document.
type Link struct {
	// URL is the raw attribute value.
	URL string
	// Line is the 1-based source line the link appears on.
	Line int
	// Element and Attr identify where the link was found
	// (lower-case), e.g. "a"/"href" or "img"/"src".
	Element, Attr string
}

// linkElem maps any case-folded element name in linkAttrs to a
// canonical string constant, so Link.Element never aliases the
// scanned document (tok.Lower is a source substring for lower-case
// markup — see Scan's no-aliasing contract).
var linkElem = func() map[string]string {
	m := make(map[string]string, len(linkAttrs))
	for name := range linkAttrs {
		m[name] = name
	}
	return m
}()

// linkAttrs maps element names to the attributes which hold URLs.
var linkAttrs = map[string][]string{
	"a":          {"href"},
	"area":       {"href"},
	"link":       {"href"},
	"base":       {"href"},
	"img":        {"src", "lowsrc", "usemap", "longdesc"},
	"frame":      {"src", "longdesc"},
	"iframe":     {"src", "longdesc"},
	"script":     {"src"},
	"input":      {"src"},
	"body":       {"background"},
	"table":      {"background"},
	"td":         {"background"},
	"th":         {"background"},
	"embed":      {"src"},
	"bgsound":    {"src"},
	"object":     {"data", "codebase"},
	"applet":     {"codebase"},
	"form":       {"action"},
	"q":          {"cite"},
	"blockquote": {"cite"},
	"ins":        {"cite"},
	"del":        {"cite"},
}

// Scan extracts the outbound links and the defined fragment anchors
// (<A NAME=...> and ID attributes) of a document in one tokenizer
// pass. The seed walked the token stream once per question; the site
// walker asks both, so Scan answers both.
//
// Nothing in the result aliases src: every URL and anchor name is
// copied out, so the caller may drop or recycle the source the moment
// Scan returns. That property is what keeps a large site walk's
// memory flat — the link graph retains kilobytes of extracted
// strings, not every page's full text.
func Scan(src string) (links []Link, anchors map[string]bool) {
	anchors = map[string]bool{}
	tz := htmltoken.New(src)
	var tok htmltoken.Token
	for tz.NextInto(&tok) {
		if tok.Type != htmltoken.StartTag {
			continue
		}
		if tok.Lower == "a" {
			if at := tok.Attr("name"); at != nil && at.HasValue {
				anchors[strings.Clone(at.Value)] = true
			}
		}
		if at := tok.Attr("id"); at != nil && at.HasValue {
			anchors[strings.Clone(at.Value)] = true
		}
		if tok.OddQuotes {
			continue
		}
		attrs, ok := linkAttrs[tok.Lower]
		if !ok {
			continue
		}
		for _, name := range attrs {
			if at := tok.Attr(name); at != nil && at.HasValue && at.Value != "" {
				links = append(links, Link{
					URL:     strings.Clone(at.Value),
					Line:    at.Line,
					Element: linkElem[tok.Lower],
					Attr:    name,
				})
			}
		}
	}
	return links, anchors
}

// ScanBytes is Scan over a byte slice, without copying the document.
func ScanBytes(src []byte) (links []Link, anchors map[string]bool) {
	return Scan(bytestr.String(src))
}

// Extract returns every outbound link in the document, in source
// order. The returned URLs are copies; they never alias src.
func Extract(src string) []Link {
	links, _ := Scan(src)
	return links
}

// Anchors returns the fragment anchor names defined in the document
// (<A NAME=...> and ID attributes), for fragment link validation.
func Anchors(src string) map[string]bool {
	_, anchors := Scan(src)
	return anchors
}

// IsExternal reports whether a link leaves the local filesystem: it
// has a URL scheme or is protocol-relative.
func IsExternal(url string) bool {
	if strings.HasPrefix(url, "//") {
		return true
	}
	i := strings.IndexByte(url, ':')
	if i <= 0 {
		return false
	}
	for j := 0; j < i; j++ {
		c := url[j]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '+' || c == '-' || c == '.'
		if !ok {
			return false
		}
	}
	return true
}

// SplitFragment splits a URL into its document part and fragment.
func SplitFragment(url string) (doc, frag string) {
	if i := strings.IndexByte(url, '#'); i >= 0 {
		return url[:i], url[i+1:]
	}
	return url, ""
}

// StripQuery removes a query string from a URL path.
func StripQuery(url string) string {
	if i := strings.IndexByte(url, '?'); i >= 0 {
		return url[:i]
	}
	return url
}
