// Package linkcheck implements hyperlink extraction and validation:
// the "broken link" class of checks from the paper's Sections 3.5 and
// 4.5. Local links are resolved against the filesystem; remote links
// are validated by sending a HEAD request and reporting URLs which
// result in failure response codes, with redirects followed.
package linkcheck

import (
	"strings"

	"weblint/internal/htmltoken"
)

// Link is one outbound reference found in a document.
type Link struct {
	// URL is the raw attribute value.
	URL string
	// Line is the 1-based source line the link appears on.
	Line int
	// Element and Attr identify where the link was found
	// (lower-case), e.g. "a"/"href" or "img"/"src".
	Element, Attr string
}

// linkAttrs maps element names to the attributes which hold URLs.
var linkAttrs = map[string][]string{
	"a":          {"href"},
	"area":       {"href"},
	"link":       {"href"},
	"base":       {"href"},
	"img":        {"src", "lowsrc", "usemap", "longdesc"},
	"frame":      {"src", "longdesc"},
	"iframe":     {"src", "longdesc"},
	"script":     {"src"},
	"input":      {"src"},
	"body":       {"background"},
	"table":      {"background"},
	"td":         {"background"},
	"th":         {"background"},
	"embed":      {"src"},
	"bgsound":    {"src"},
	"object":     {"data", "codebase"},
	"applet":     {"codebase"},
	"form":       {"action"},
	"q":          {"cite"},
	"blockquote": {"cite"},
	"ins":        {"cite"},
	"del":        {"cite"},
}

// Extract returns every outbound link in the document, in source
// order.
func Extract(src string) []Link {
	var out []Link
	for _, tok := range htmltoken.Tokenize(src) {
		if tok.Type != htmltoken.StartTag || tok.OddQuotes {
			continue
		}
		attrs, ok := linkAttrs[strings.ToLower(tok.Name)]
		if !ok {
			continue
		}
		for _, name := range attrs {
			if at := tok.Attr(name); at != nil && at.HasValue && at.Value != "" {
				out = append(out, Link{
					URL:     at.Value,
					Line:    at.Line,
					Element: strings.ToLower(tok.Name),
					Attr:    name,
				})
			}
		}
	}
	return out
}

// Anchors returns the fragment anchor names defined in the document
// (<A NAME=...> and ID attributes), for fragment link validation.
func Anchors(src string) map[string]bool {
	out := map[string]bool{}
	for _, tok := range htmltoken.Tokenize(src) {
		if tok.Type != htmltoken.StartTag {
			continue
		}
		if strings.EqualFold(tok.Name, "a") {
			if at := tok.Attr("name"); at != nil && at.HasValue {
				out[at.Value] = true
			}
		}
		if at := tok.Attr("id"); at != nil && at.HasValue {
			out[at.Value] = true
		}
	}
	return out
}

// IsExternal reports whether a link leaves the local filesystem: it
// has a URL scheme or is protocol-relative.
func IsExternal(url string) bool {
	if strings.HasPrefix(url, "//") {
		return true
	}
	i := strings.IndexByte(url, ':')
	if i <= 0 {
		return false
	}
	for j := 0; j < i; j++ {
		c := url[j]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '+' || c == '-' || c == '.'
		if !ok {
			return false
		}
	}
	return true
}

// SplitFragment splits a URL into its document part and fragment.
func SplitFragment(url string) (doc, frag string) {
	if i := strings.IndexByte(url, '#'); i >= 0 {
		return url[:i], url[i+1:]
	}
	return url, ""
}

// StripQuery removes a query string from a URL path.
func StripQuery(url string) string {
	if i := strings.IndexByte(url, '?'); i >= 0 {
		return url[:i]
	}
	return url
}
