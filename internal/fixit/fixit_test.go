package fixit

import (
	"strings"
	"testing"
	"time"

	"weblint/internal/warn"
)

func msg(id string, fix *warn.Fix) warn.Message {
	return warn.Message{ID: id, File: "t.html", Line: 1, Fix: fix}
}

func fix(label string, edits ...warn.Edit) *warn.Fix {
	return &warn.Fix{Label: label, Edits: edits}
}

func TestApplyBasic(t *testing.T) {
	src := "<IMG src=x.gif>"
	msgs := []warn.Message{
		{ID: "no-fix"}, // ignored
		msg("img-alt", fix(`insert ALT=""`, warn.Edit{Start: 14, End: 14, Text: ` ALT=""`})),
		msg("attribute-delimiter", fix("quote",
			warn.Edit{Start: 9, End: 14, Text: `"x.gif"`})),
	}
	got, rep := Apply(src, msgs)
	want := `<IMG src="x.gif" ALT="">`
	if got != want {
		t.Errorf("Apply = %q, want %q", got, want)
	}
	if rep.Applied != 2 || rep.Skipped != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestApplySamePointInsertionsStreamOrder(t *testing.T) {
	src := "<HTML><BODY>x"
	msgs := []warn.Message{
		msg("unclosed-element", fix("close BODY", warn.Edit{Start: 13, End: 13, Text: "</BODY>"})),
		msg("unclosed-element", fix("close HTML", warn.Edit{Start: 13, End: 13, Text: "</HTML>"})),
	}
	got, rep := Apply(src, msgs)
	if want := "<HTML><BODY>x</BODY></HTML>"; got != want {
		t.Errorf("Apply = %q, want %q", got, want)
	}
	if rep.Applied != 2 {
		t.Errorf("report = %+v", rep)
	}
}

func TestApplyConflictFirstWins(t *testing.T) {
	src := "abcdef"
	msgs := []warn.Message{
		msg("first", fix("replace bc", warn.Edit{Start: 1, End: 3, Text: "X"})),
		msg("second", fix("replace cd", warn.Edit{Start: 2, End: 4, Text: "Y"})),
	}
	got, rep := Apply(src, msgs)
	if want := "aXdef"; got != want {
		t.Errorf("Apply = %q, want %q", got, want)
	}
	if rep.Applied != 1 || rep.Skipped != 1 {
		t.Fatalf("report = %+v", rep)
	}
	out := rep.Outcomes[1]
	if out.Applied || out.Reason != "conflicts with an earlier fix" {
		t.Errorf("second outcome = %+v", out)
	}
}

func TestApplyInsertionInsideSpanConflicts(t *testing.T) {
	src := "abcdef"
	msgs := []warn.Message{
		msg("del", fix("delete bcd", warn.Edit{Start: 1, End: 4, Text: ""})),
		msg("ins", fix("insert", warn.Edit{Start: 2, End: 2, Text: "Z"})),
	}
	got, rep := Apply(src, msgs)
	if want := "aef"; got != want {
		t.Errorf("Apply = %q, want %q", got, want)
	}
	if rep.Skipped != 1 {
		t.Errorf("report = %+v", rep)
	}
}

func TestApplyBoundaryInsertionCoexists(t *testing.T) {
	// Insertion exactly at the start of a deleted span survives and
	// renders before the deletion, whatever the acceptance order.
	src := "<BR/>"
	msgs := []warn.Message{
		msg("spurious-slash", fix("remove '/'", warn.Edit{Start: 3, End: 4, Text: ""})),
		msg("attr", fix("insert", warn.Edit{Start: 3, End: 3, Text: ` X=""`})),
	}
	got, rep := Apply(src, msgs)
	if want := `<BR X="">`; got != want {
		t.Errorf("Apply = %q, want %q", got, want)
	}
	if rep.Applied != 2 {
		t.Errorf("report = %+v", rep)
	}
}

func TestApplyInvalidSpans(t *testing.T) {
	src := "abc"
	cases := []*warn.Fix{
		fix("oob", warn.Edit{Start: 2, End: 9, Text: "x"}),
		fix("neg", warn.Edit{Start: -1, End: 1, Text: "x"}),
		fix("inverted", warn.Edit{Start: 2, End: 1, Text: "x"}),
		fix("empty"), // a fix must carry at least one edit
		fix("self-overlap",
			warn.Edit{Start: 0, End: 2, Text: "x"},
			warn.Edit{Start: 1, End: 3, Text: "y"}),
	}
	for _, f := range cases {
		got, rep := Apply(src, []warn.Message{msg("m", f)})
		if got != src {
			t.Errorf("%s: source mutated to %q", f.Label, got)
		}
		if rep.Applied != 0 || rep.Skipped != 1 || rep.Outcomes[0].Reason != "invalid edit span" {
			t.Errorf("%s: report = %+v", f.Label, rep)
		}
	}
}

func TestApplyNoFixableIsIdentity(t *testing.T) {
	src := "unchanged"
	got, rep := Apply(src, []warn.Message{{ID: "plain"}})
	if got != src || rep.Changed() {
		t.Errorf("got %q, report %+v", got, rep)
	}
}

func TestApplierSink(t *testing.T) {
	var col warn.Collector
	a := &Applier{Next: &col}
	a.Write(warn.Message{ID: "plain"})
	a.Write(msg("fixable", fix("del", warn.Edit{Start: 0, End: 1, Text: ""})))
	if len(col.Messages) != 2 {
		t.Fatalf("forwarded %d messages, want 2", len(col.Messages))
	}
	if len(a.Fixable) != 1 {
		t.Fatalf("retained %d fixable, want 1", len(a.Fixable))
	}
	got, rep := a.Apply("xy")
	if got != "y" || rep.Applied != 1 {
		t.Errorf("Apply = %q, %+v", got, rep)
	}
}

func TestApplyIdempotentOnResult(t *testing.T) {
	// Applying the same fix list to the fixed output must not be done
	// (offsets refer to the original), but applying an EMPTY fixable
	// set — what a re-lint of a fully fixed document produces — is a
	// byte-identical no-op.
	src := "a&b"
	fixed, _ := Apply(src, []warn.Message{
		msg("metacharacter", fix("amp", warn.Edit{Start: 1, End: 2, Text: "&amp;"})),
	})
	again, rep := Apply(fixed, nil)
	if again != fixed || rep.Changed() {
		t.Errorf("second apply changed the document: %q -> %q", fixed, again)
	}
	if !strings.Contains(fixed, "&amp;") {
		t.Errorf("fixed = %q", fixed)
	}
}

// TestApplyScalesLinearly: conflict detection over a fix-per-byte
// document must not be quadratic (a 2 MiB gateway submission of "& "
// repeated is a fix per two bytes; the old all-pairs scan took ~27s
// for this input, the sorted set takes well under a second).
func TestApplyScalesLinearly(t *testing.T) {
	const n = 200000
	src := strings.Repeat("& ", n)
	msgs := make([]warn.Message, n)
	for i := range msgs {
		msgs[i] = warn.Message{ID: "metacharacter", Fix: &warn.Fix{Label: "amp",
			Edits: []warn.Edit{{Start: i * 2, End: i*2 + 1, Text: "&amp;"}}}}
	}
	start := time.Now()
	out, rep := Apply(src, msgs)
	if rep.Applied != n || len(out) != n*6 {
		t.Fatalf("applied=%d len=%d", rep.Applied, len(out))
	}
	if el := time.Since(start); el > 15*time.Second {
		t.Fatalf("Apply took %v for %d fixes; conflict detection has gone quadratic", el, n)
	}
}
