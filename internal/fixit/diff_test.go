package fixit

import (
	"strconv"
	"strings"
	"testing"
)

func TestUnifiedDiffIdentical(t *testing.T) {
	if d := UnifiedDiff("a", "b", "same\n", "same\n"); d != "" {
		t.Errorf("diff of identical texts = %q", d)
	}
}

func TestUnifiedDiffBasic(t *testing.T) {
	old := "one\ntwo\nthree\nfour\nfive\nsix\nseven\neight\nnine\n"
	new := "one\ntwo\nthree\nFOUR\nfive\nsix\nseven\neight\nnine\n"
	d := UnifiedDiff("a/f", "b/f", old, new)
	want := `--- a/f
+++ b/f
@@ -1,7 +1,7 @@
 one
 two
 three
-four
+FOUR
 five
 six
 seven
`
	if d != want {
		t.Errorf("diff:\n%s\nwant:\n%s", d, want)
	}
}

func TestUnifiedDiffTwoHunks(t *testing.T) {
	var a, b []string
	for i := 0; i < 30; i++ {
		a = append(a, "line")
		b = append(b, "line")
	}
	b[2] = "CHANGED-A"
	b[25] = "CHANGED-B"
	d := UnifiedDiff("x", "y", strings.Join(a, "\n")+"\n", strings.Join(b, "\n")+"\n")
	if got := strings.Count(d, "@@ -"); got != 2 {
		t.Errorf("hunk count = %d, want 2:\n%s", got, d)
	}
	if !strings.Contains(d, "+CHANGED-A\n") || !strings.Contains(d, "+CHANGED-B\n") {
		t.Errorf("changes missing:\n%s", d)
	}
}

func TestUnifiedDiffNoTrailingNewline(t *testing.T) {
	d := UnifiedDiff("a", "b", "x", "x\n")
	if !strings.Contains(d, "\\ No newline at end of file") {
		t.Errorf("missing no-newline marker:\n%s", d)
	}
	if !strings.Contains(d, "-x\n") || !strings.Contains(d, "+x\n") {
		t.Errorf("trailing-newline change not diffed:\n%s", d)
	}
}

func TestUnifiedDiffAppendAtEOF(t *testing.T) {
	old := "a\nb\nc\n"
	new := "a\nb\nc\nd\n"
	d := UnifiedDiff("f", "f", old, new)
	if !strings.Contains(d, "+d\n") {
		t.Errorf("appended line missing:\n%s", d)
	}
	if !strings.Contains(d, "@@ -1,3 +1,4 @@") {
		t.Errorf("unexpected hunk header:\n%s", d)
	}
}

func TestUnifiedDiffFromEmpty(t *testing.T) {
	d := UnifiedDiff("f", "f", "", "new\n")
	if !strings.Contains(d, "@@ -0,0 +1 @@") || !strings.Contains(d, "+new\n") {
		t.Errorf("diff from empty:\n%s", d)
	}
}

// TestUnifiedDiffApplies sanity-checks the script against a tiny
// patch interpreter: replaying the hunks over the old text must
// reproduce the new text exactly, for a variety of edit shapes.
func TestUnifiedDiffApplies(t *testing.T) {
	cases := [][2]string{
		{"a\nb\nc\n", "a\nX\nc\n"},
		{"a\nb\nc\n", "b\nc\n"},
		{"a\nb\nc\n", "a\nb\nc\nd\ne\n"},
		{"", "x\ny\n"},
		{"x\ny\n", ""},
		{"one\ntwo\nthree\nfour\nfive\nsix\nseven\neight\n", "one\n2\nthree\nfour\nfive\nsix\n7\neight\n"},
		{"tail", "tail\n"},
		{"a\nsame\nb\nsame\nc\n", "A\nsame\nB\nsame\nC\n"},
	}
	for _, c := range cases {
		d := UnifiedDiff("a", "b", c[0], c[1])
		if got := applyPatch(t, c[0], d); got != c[1] {
			t.Errorf("patch replay: old=%q new=%q diff=\n%s\ngot=%q", c[0], c[1], d, got)
		}
	}
}

// applyPatch replays a unified diff over old (a minimal interpreter
// for the subset UnifiedDiff emits).
func applyPatch(t *testing.T, old, diff string) string {
	t.Helper()
	if diff == "" {
		return old
	}
	oldLines := splitLines(old)
	var out strings.Builder
	pos := 0 // next unconsumed old line
	lines := strings.Split(diff, "\n")
	i := 0
	for i < len(lines) {
		line := lines[i]
		switch {
		case strings.HasPrefix(line, "--- ") || strings.HasPrefix(line, "+++ "):
			i++
		case strings.HasPrefix(line, "@@ -"):
			aStart, aLen, ok := parseHunkHeader(line)
			if !ok {
				t.Fatalf("bad hunk header %q", line)
			}
			// Copy unchanged lines up to the hunk.
			from := aStart - 1
			if aLen == 0 {
				from = aStart
			}
			for pos < from {
				out.WriteString(oldLines[pos])
				pos++
			}
			i++
		case strings.HasPrefix(line, " "):
			out.WriteString(oldLines[pos])
			pos++
			i++
		case strings.HasPrefix(line, "-"):
			pos++
			i++
		case strings.HasPrefix(line, "+"):
			body := line[1:]
			// The marker line, if any, says the previous body line had
			// no newline.
			if i+1 < len(lines) && strings.HasPrefix(lines[i+1], "\\") {
				out.WriteString(body)
				i += 2
			} else {
				out.WriteString(body + "\n")
				i++
			}
		case strings.HasPrefix(line, "\\"):
			i++ // consumed with its - or ' ' line below
		case line == "":
			i++
		default:
			t.Fatalf("unexpected diff line %q", line)
		}
	}
	for pos < len(oldLines) {
		out.WriteString(oldLines[pos])
		pos++
	}
	return out.String()
}

// parseHunkHeader parses the old-side range of "@@ -a[,b] +c[,d] @@".
func parseHunkHeader(s string) (aStart, aLen int, ok bool) {
	s = strings.TrimPrefix(s, "@@ -")
	sp := strings.IndexByte(s, ' ')
	if sp < 0 {
		return 0, 0, false
	}
	rangeA := s[:sp]
	aLen = 1
	if k := strings.IndexByte(rangeA, ','); k >= 0 {
		n, err := strconv.Atoi(rangeA[k+1:])
		if err != nil {
			return 0, 0, false
		}
		aLen = n
		rangeA = rangeA[:k]
	}
	n, err := strconv.Atoi(rangeA)
	if err != nil {
		return 0, 0, false
	}
	return n, aLen, true
}
