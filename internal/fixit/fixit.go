// Package fixit applies the machine-applicable fixes the checker
// attaches to diagnostics (warn.Message.Fix): byte-span edits over the
// original source document.
//
// Apply merges the edits of every fixable message in stream order,
// detecting and dropping conflicting fixes deterministically — the
// first fix to claim a span wins, later fixes touching it are skipped
// and reported. The merge is a pure function of (source, message
// stream), so applying the fixes of a parallel -j N run rewrites the
// document byte-identically to a sequential run.
//
// The contract the checker's fix builders maintain, and the suite-wide
// property test enforces: applying the fixes and re-linting leaves no
// fixable finding behind and introduces no new finding, and a second
// apply pass is a byte-identical no-op.
package fixit

import (
	"fmt"
	"sort"
	"strings"

	"weblint/internal/warn"
)

// Outcome records what happened to one fixable message during Apply.
type Outcome struct {
	// ID and Line identify the message the fix came from.
	ID   string
	Line int
	// Label is the fix's human-readable label.
	Label string
	// Applied reports whether the fix's edits made it into the
	// output.
	Applied bool
	// Reason explains a skip ("conflicts with an earlier fix",
	// "invalid edit span"); empty for applied fixes.
	Reason string
}

// Report summarises one Apply: how many fixes were applied, how many
// were skipped, and the per-fix outcomes in message-stream order.
type Report struct {
	// Applied and Skipped count fixes (not edits).
	Applied int
	Skipped int
	// Outcomes has one entry per fixable message, in stream order.
	Outcomes []Outcome
}

// Changed reports whether any fix was applied.
func (r *Report) Changed() bool { return r.Applied > 0 }

// String renders the report as "N applied, M skipped".
func (r *Report) String() string {
	return fmt.Sprintf("%d applied, %d skipped", r.Applied, r.Skipped)
}

// Apply rewrites src with the fixes carried by msgs and returns the
// new document and a report. Messages without a fix are ignored, so
// the full diagnostic stream of a check can be passed as-is.
//
// Fixes are considered in stream order. A fix is skipped — never
// partially applied — when any of its edits is out of bounds, when its
// own edits overlap each other, or when an edit overlaps an edit of an
// already-accepted fix. Overlap is tested on half-open spans, so
// insertions at the boundary of a replaced span, and any number of
// insertions at the same point, coexist; same-point insertions apply
// in stream order.
func Apply(src string, msgs []warn.Message) (string, Report) {
	var rep Report
	var accepted editSet
	for _, m := range msgs {
		if m.Fix == nil {
			continue
		}
		out := Outcome{ID: m.ID, Line: m.Line, Label: m.Fix.Label}
		switch {
		case !validEdits(m.Fix.Edits, len(src)):
			out.Reason = "invalid edit span"
		case accepted.conflictsAny(m.Fix.Edits):
			out.Reason = "conflicts with an earlier fix"
		default:
			out.Applied = true
			for _, e := range m.Fix.Edits {
				accepted.insert(e)
			}
		}
		if out.Applied {
			rep.Applied++
		} else {
			rep.Skipped++
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}
	if len(accepted.edits) == 0 {
		return src, rep
	}
	return applyEdits(src, accepted.edits), rep
}

// validEdits reports whether every edit is in bounds and no two edits
// of the same fix overlap.
func validEdits(edits []warn.Edit, n int) bool {
	if len(edits) == 0 {
		return false
	}
	for i, e := range edits {
		if e.Start < 0 || e.End < e.Start || e.End > n {
			return false
		}
		for _, f := range edits[:i] {
			if overlap(e, f) {
				return false
			}
		}
	}
	return true
}

// editSet holds the accepted edits ordered the way applyEdits renders
// them — by start offset; at equal offsets insertions before span
// replacements, otherwise acceptance order — so conflict checks are a
// binary search plus a bounded neighbour scan instead of a linear
// sweep over everything accepted (checker streams emit fixes in
// near-document order, so a pathological document with a fix per byte
// stays O(n log n) rather than quadratic).
type editSet struct {
	edits []warn.Edit
}

// insertPos returns where e belongs: after every edit with a smaller
// start, after same-start insertions (stream order), and — when e is
// an insertion — before a same-start span replacement.
func (s *editSet) insertPos(e warn.Edit) int {
	zero := e.Start == e.End
	return sort.Search(len(s.edits), func(k int) bool {
		f := s.edits[k]
		if f.Start != e.Start {
			return f.Start > e.Start
		}
		return zero && f.Start != f.End
	})
}

// conflictsAny reports whether any edit overlaps an accepted edit.
func (s *editSet) conflictsAny(edits []warn.Edit) bool {
	for _, e := range edits {
		i := sort.Search(len(s.edits), func(k int) bool { return s.edits[k].Start >= e.Start })
		// Before i: the only accepted edit that can reach past e.Start
		// is the last one — spans are pairwise non-overlapping and a
		// same-start span sorts after its start's insertions.
		if i > 0 && overlap(s.edits[i-1], e) {
			return true
		}
		for k := i; k < len(s.edits) && s.edits[k].Start < e.End; k++ {
			if overlap(s.edits[k], e) {
				return true
			}
		}
	}
	return false
}

// insert adds a non-conflicting edit at its ordered position.
func (s *editSet) insert(e warn.Edit) {
	i := s.insertPos(e)
	s.edits = append(s.edits, warn.Edit{})
	copy(s.edits[i+1:], s.edits[i:])
	s.edits[i] = e
}

// overlap tests half-open span overlap. Zero-width edits (insertions)
// conflict only when strictly inside the other span, so inserting at
// the boundary of a deletion — or several insertions at one point —
// is fine.
func overlap(a, b warn.Edit) bool {
	return a.Start < b.End && b.Start < a.End
}

// applyEdits rewrites src with a set of mutually non-conflicting
// edits. Edits are ordered by start offset; at equal offsets,
// insertions go before span replacements (so text inserted at the
// start of a deleted span survives), and otherwise acceptance order is
// kept, which makes same-point insertions apply in stream order.
func applyEdits(src string, edits []warn.Edit) string {
	sorted := make([]warn.Edit, len(edits))
	copy(sorted, edits)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Start == a.End && b.Start != b.End
	})
	var b strings.Builder
	b.Grow(len(src) + grownBy(sorted))
	last := 0
	for _, e := range sorted {
		// Non-conflicting edits sorted this way never regress: each
		// edit starts at or after the previous edit's end.
		b.WriteString(src[last:e.Start])
		b.WriteString(e.Text)
		last = e.End
	}
	b.WriteString(src[last:])
	return b.String()
}

// grownBy estimates the net size change of the edits.
func grownBy(edits []warn.Edit) int {
	n := 0
	for _, e := range edits {
		n += len(e.Text) - (e.End - e.Start)
	}
	if n < 0 {
		return 0
	}
	return n
}

// Applier is a warn.Sink that retains fixable messages from a
// diagnostics stream — the composition point with the streaming
// pipeline: install it (or chain it) as the sink of any check, then
// call Apply once the check finishes.
type Applier struct {
	// Next, when non-nil, receives every message after recording.
	Next warn.Sink
	// Fixable are the retained messages carrying fixes.
	Fixable []warn.Message
}

// Write records fixable messages and forwards to Next.
func (a *Applier) Write(m warn.Message) bool {
	if m.Fix != nil {
		a.Fixable = append(a.Fixable, m)
	}
	if a.Next == nil {
		return true
	}
	return a.Next.Write(m)
}

// Apply rewrites src with the fixes collected so far.
func (a *Applier) Apply(src string) (string, Report) {
	return Apply(src, a.Fixable)
}
