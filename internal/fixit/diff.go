package fixit

import (
	"fmt"
	"strings"
)

// UnifiedDiff renders a unified diff (three lines of context) from
// oldText to newText, labelling the sides aName and bName. It returns
// the empty string when the texts are identical. The diff is a pure
// function of its inputs — the -fix-dry-run output of a parallel run
// is byte-identical to a sequential one.
func UnifiedDiff(aName, bName, oldText, newText string) string {
	if oldText == newText {
		return ""
	}
	a := splitLines(oldText)
	b := splitLines(newText)
	ops := diffLines(a, b)

	const ctx = 3
	var out strings.Builder
	fmt.Fprintf(&out, "--- %s\n+++ %s\n", aName, bName)

	// Group change ops into hunks: changes separated by more than
	// 2*ctx equal lines start a new hunk.
	i := 0
	for i < len(ops) {
		// Find the next change.
		for i < len(ops) && ops[i].kind == ' ' {
			i++
		}
		if i >= len(ops) {
			break
		}
		start := max(0, i-ctx)
		// Extend over changes whose equal-gap is small enough.
		end := i
		last := i
		for end < len(ops) {
			if ops[end].kind != ' ' {
				last = end
				end++
				continue
			}
			// A run of equals: if it reaches past 2*ctx (or the end),
			// the hunk stops after the last change.
			j := end
			for j < len(ops) && ops[j].kind == ' ' {
				j++
			}
			if j-end > 2*ctx || j == len(ops) {
				break
			}
			end = j
		}
		end = min(len(ops), last+ctx+1)
		writeHunk(&out, a, b, ops[start:end])
		i = end
	}
	return out.String()
}

// op is one line of the diff script.
type op struct {
	kind byte // ' ', '-', '+'
	a, b int  // 0-based next positions in a and b when emitted
}

// writeHunk renders one hunk with its @@ header.
func writeHunk(out *strings.Builder, a, b []string, hunk []op) {
	aLen, bLen := 0, 0
	for _, o := range hunk {
		switch o.kind {
		case ' ':
			aLen++
			bLen++
		case '-':
			aLen++
		case '+':
			bLen++
		}
	}
	aStart := hunk[0].a + 1
	if aLen == 0 {
		aStart-- // convention: the line before the insertion point
	}
	bStart := hunk[0].b + 1
	if bLen == 0 {
		bStart--
	}
	out.WriteString("@@ -")
	writeRange(out, aStart, aLen)
	out.WriteString(" +")
	writeRange(out, bStart, bLen)
	out.WriteString(" @@\n")
	for _, o := range hunk {
		switch o.kind {
		case ' ', '-':
			writeLine(out, o.kind, a[o.a])
		case '+':
			writeLine(out, o.kind, b[o.b])
		}
	}
}

// writeRange renders "start,len", omitting ",1" per GNU convention.
func writeRange(out *strings.Builder, start, length int) {
	if length == 1 {
		fmt.Fprintf(out, "%d", start)
		return
	}
	fmt.Fprintf(out, "%d,%d", start, length)
}

// writeLine renders one diff body line; a final line without a
// newline gets the classic "\ No newline at end of file" marker.
func writeLine(out *strings.Builder, kind byte, line string) {
	out.WriteByte(kind)
	out.WriteString(line)
	if !strings.HasSuffix(line, "\n") {
		out.WriteString("\n\\ No newline at end of file\n")
	}
}

// splitLines splits text into lines which keep their terminating
// newline; a final unterminated line is kept as-is (its missing
// newline then participates in comparisons, so "x" vs "x\n" diffs).
func splitLines(text string) []string {
	if text == "" {
		return nil
	}
	lines := strings.SplitAfter(text, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}

// diffLines computes a minimal line diff with the Myers O(ND)
// algorithm, returning the full edit script (equal lines included)
// annotated with 0-based positions.
func diffLines(a, b []string) []op {
	n, m := len(a), len(b)
	maxD := n + m
	if maxD == 0 {
		return nil
	}
	off := maxD
	v := make([]int, 2*maxD+2)
	var trace [][]int
	found := -1
	for d := 0; d <= maxD && found < 0; d++ {
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[off+k-1] < v[off+k+1]) {
				x = v[off+k+1]
			} else {
				x = v[off+k-1] + 1
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[off+k] = x
			if x >= n && y >= m {
				found = d
				break
			}
		}
		snapshot := make([]int, len(v))
		copy(snapshot, v)
		trace = append(trace, snapshot)
	}

	// Backtrack from (n, m) through the D-path snapshots.
	var rev []op
	x, y := n, m
	for d := found; d > 0; d-- {
		prev := trace[d-1]
		k := x - y
		var prevK int
		if k == -d || (k != d && prev[off+k-1] < prev[off+k+1]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := prev[off+prevK]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			rev = append(rev, op{' ', x, y})
		}
		if x == prevX {
			y--
			rev = append(rev, op{'+', x, y})
		} else {
			x--
			rev = append(rev, op{'-', x, y})
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		rev = append(rev, op{' ', x, y})
	}
	ops := make([]op, len(rev))
	for i, o := range rev {
		ops[len(rev)-1-i] = o
	}
	return ops
}
