// Package fetch provides the shared hardened HTTP fetch client used
// by every surface that retrieves documents from the network: the
// gateway's check-by-URL form, the poacher robot, the remote link
// checker, and the library's CheckURL. It exists because a bare
// http.Get in a long-lived service is a liability: no connect timeout,
// no total budget, unlimited redirects, unbounded response bodies, and
// a willingness to fetch link-local metadata endpoints on behalf of
// whoever submitted the form.
//
// The client enforces, in one place:
//
//   - a connect timeout and a total per-request timeout;
//   - a redirect cap;
//   - a response-size limit (exceeding it is an error, never a silent
//     truncation);
//   - a private/loopback/link-local address guard, applied at dial
//     time against the resolved connect address — so DNS rebinding and
//     redirects cannot smuggle a request past it. Surfaces that check
//     the operator's own site (the robot, the link checker, the CLI)
//     opt in to private targets with AllowPrivate; the public gateway
//     leaves it off unless started with -allow-private-fetch.
package fetch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"syscall"
	"time"

	"weblint/internal/faultinject"
)

// Options configures a Client. The zero value gets conservative
// service defaults; see the field comments.
type Options struct {
	// ConnectTimeout bounds TCP connect + TLS handshake (default 5s).
	ConnectTimeout time.Duration
	// Timeout bounds the whole request, body read included
	// (default 15s). A per-call context deadline may shorten it.
	Timeout time.Duration
	// MaxRedirects caps how many redirects are followed (default 5).
	MaxRedirects int
	// MaxBody caps the response body, in bytes (default 4 MiB).
	// A longer body fails with ErrBodyTooLarge; it is never silently
	// truncated.
	MaxBody int64
	// AllowPrivate permits connections to loopback, RFC 1918,
	// link-local and otherwise non-public addresses. Off by default:
	// a service fetching attacker-supplied URLs must not reach
	// 169.254.169.254 or the operator's intranet.
	AllowPrivate bool
	// UserAgent is sent with requests (default "weblint-fetch/1.0").
	UserAgent string
}

// ErrBodyTooLarge reports a response body over the MaxBody cap.
var ErrBodyTooLarge = errors.New("response body exceeds size limit")

// ErrPrivateAddress reports a dial blocked by the private-address
// guard.
var ErrPrivateAddress = errors.New("target resolves to a private or local address (start the gateway with -allow-private-fetch to permit)")

// ErrTooManyRedirects reports a redirect chain over the cap.
var ErrTooManyRedirects = errors.New("too many redirects")

// Client is a hardened fetcher. Construct with New; a Client is
// immutable and safe for concurrent use.
type Client struct {
	opts Options
	http *http.Client
}

// New builds a Client from options, filling defaults.
func New(o Options) *Client {
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 5 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 15 * time.Second
	}
	if o.MaxRedirects <= 0 {
		o.MaxRedirects = 5
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 4 << 20
	}
	if o.UserAgent == "" {
		o.UserAgent = "weblint-fetch/1.0"
	}

	dialer := &net.Dialer{Timeout: o.ConnectTimeout}
	if !o.AllowPrivate {
		// The guard runs against the address actually being connected
		// to, after DNS resolution — the only point where a rebinding
		// or redirecting attacker cannot lie about the target.
		dialer.Control = func(network, address string, _ syscall.RawConn) error {
			host, _, err := net.SplitHostPort(address)
			if err != nil {
				return fmt.Errorf("fetch: bad dial address %q: %w", address, err)
			}
			ip := net.ParseIP(host)
			if ip == nil || !isPublic(ip) {
				return ErrPrivateAddress
			}
			return nil
		}
	}
	transport := &http.Transport{
		Proxy:                 http.ProxyFromEnvironment,
		DialContext:           dialer.DialContext,
		TLSHandshakeTimeout:   o.ConnectTimeout,
		ResponseHeaderTimeout: o.Timeout,
		MaxIdleConns:          32,
		IdleConnTimeout:       30 * time.Second,
	}
	maxRedirects := o.MaxRedirects
	return &Client{
		opts: o,
		http: &http.Client{
			Timeout:   o.Timeout,
			Transport: transport,
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				if len(via) >= maxRedirects {
					return ErrTooManyRedirects
				}
				return nil
			},
		},
	}
}

// isPublic reports whether ip is a routable public address — not
// loopback, not RFC 1918/4193 private space, not link-local (which
// includes the cloud metadata range 169.254.0.0/16), and not the
// unspecified address.
func isPublic(ip net.IP) bool {
	return !(ip.IsLoopback() || ip.IsPrivate() || ip.IsLinkLocalUnicast() ||
		ip.IsLinkLocalMulticast() || ip.IsInterfaceLocalMulticast() ||
		ip.IsUnspecified())
}

// HTTPClient returns the underlying hardened *http.Client — every
// limit except MaxBody applies to requests made through it. Callers
// owning their own body handling (HEAD probes, streaming) use this;
// everything else should prefer Fetch.
func (c *Client) HTTPClient() *http.Client { return c.http }

// MaxBody returns the configured response-size cap.
func (c *Client) MaxBody() int64 { return c.opts.MaxBody }

// Result describes a completed fetch.
type Result struct {
	// Status is the final HTTP status code.
	Status int
	// ContentType is the response Content-Type header.
	ContentType string
	// FinalURL is the URL after redirects (equal to the request URL
	// when none were followed).
	FinalURL string
}

// Fetch retrieves url into buf, enforcing every configured limit, and
// reports the response status. Transport failures, blocked dials,
// redirect-cap and body-size violations return errors; a non-2xx
// status is not an error — the caller decides what statuses mean.
// The injection point "fetch.get" fires before the request is made.
func (c *Client) Fetch(ctx context.Context, url string, buf *bytes.Buffer) (Result, error) {
	if err := faultinject.FireCtx(ctx, "fetch.get"); err != nil {
		return Result{}, fmt.Errorf("retrieving %s: %w", url, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Result{}, fmt.Errorf("retrieving %s: %w", url, err)
	}
	req.Header.Set("User-Agent", c.opts.UserAgent)
	resp, err := c.http.Do(req)
	if err != nil {
		return Result{}, fmt.Errorf("retrieving %s: %w", url, err)
	}
	defer resp.Body.Close()

	res := Result{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		FinalURL:    resp.Request.URL.String(),
	}
	// Read one byte past the cap: hitting it means the document is
	// over the limit, and linting a silently truncated prefix would
	// report findings for a document nobody submitted.
	n, err := buf.ReadFrom(io.LimitReader(resp.Body, c.opts.MaxBody+1))
	if err != nil {
		return res, fmt.Errorf("retrieving %s: %w", url, err)
	}
	if n > c.opts.MaxBody {
		return res, fmt.Errorf("retrieving %s: %w (limit %d bytes)", url, ErrBodyTooLarge, c.opts.MaxBody)
	}
	return res, nil
}
