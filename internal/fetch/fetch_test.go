package fetch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"weblint/internal/faultinject"
)

// testClient returns a client permitted to reach the httptest server's
// loopback address.
func testClient(o Options) *Client {
	o.AllowPrivate = true
	return New(o)
}

func TestFetchBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, "<HTML>hello</HTML>")
	}))
	defer srv.Close()

	var buf bytes.Buffer
	res, err := testClient(Options{}).Fetch(context.Background(), srv.URL, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 200 || !strings.Contains(res.ContentType, "text/html") {
		t.Errorf("result = %+v", res)
	}
	if buf.String() != "<HTML>hello</HTML>" {
		t.Errorf("body = %q", buf.String())
	}
}

func TestPrivateAddressBlockedByDefault(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("request reached the origin through the private-address guard")
	}))
	defer srv.Close()

	var buf bytes.Buffer
	_, err := New(Options{}).Fetch(context.Background(), srv.URL, &buf)
	if !errors.Is(err, ErrPrivateAddress) {
		t.Fatalf("err = %v, want ErrPrivateAddress", err)
	}
}

func TestBodySizeLimitIsAnError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(bytes.Repeat([]byte("x"), 2048))
	}))
	defer srv.Close()

	var buf bytes.Buffer
	_, err := testClient(Options{MaxBody: 1024}).Fetch(context.Background(), srv.URL, &buf)
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("err = %v, want ErrBodyTooLarge", err)
	}

	// At the boundary it succeeds whole.
	buf.Reset()
	if _, err := testClient(Options{MaxBody: 2048}).Fetch(context.Background(), srv.URL, &buf); err != nil {
		t.Fatalf("exactly-at-limit fetch: %v", err)
	}
	if buf.Len() != 2048 {
		t.Errorf("body length = %d, want 2048", buf.Len())
	}
}

func TestRedirectCap(t *testing.T) {
	var srv *httptest.Server
	srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, srv.URL+r.URL.Path+"x", http.StatusFound)
	}))
	defer srv.Close()

	var buf bytes.Buffer
	_, err := testClient(Options{MaxRedirects: 3}).Fetch(context.Background(), srv.URL, &buf)
	if err == nil || !strings.Contains(err.Error(), "too many redirects") {
		t.Fatalf("err = %v, want redirect cap", err)
	}
}

func TestRedirectFollowedWithinCap(t *testing.T) {
	var srv *httptest.Server
	srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/start" {
			http.Redirect(w, r, srv.URL+"/end", http.StatusMovedPermanently)
			return
		}
		fmt.Fprint(w, "arrived")
	}))
	defer srv.Close()

	var buf bytes.Buffer
	res, err := testClient(Options{}).Fetch(context.Background(), srv.URL+"/start", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != "arrived" || !strings.HasSuffix(res.FinalURL, "/end") {
		t.Errorf("body = %q, final = %q", buf.String(), res.FinalURL)
	}
}

func TestNonOKStatusIsNotAnError(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()

	var buf bytes.Buffer
	res, err := testClient(Options{}).Fetch(context.Background(), srv.URL, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 404 {
		t.Errorf("status = %d", res.Status)
	}
}

func TestContextDeadline(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	var buf bytes.Buffer
	start := time.Now()
	_, err := testClient(Options{}).Fetch(ctx, srv.URL, &buf)
	if err == nil {
		t.Fatal("fetch of a stalled origin succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("context deadline not honoured (took %v)", time.Since(start))
	}
}

func TestInjectedFetchFailure(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("injected fetch outage")
	faultinject.Arm("fetch.get", faultinject.Fault{Err: boom})

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("request reached the origin despite injected failure")
	}))
	defer srv.Close()

	var buf bytes.Buffer
	_, err := testClient(Options{}).Fetch(context.Background(), srv.URL, &buf)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected", err)
	}
}

func TestIsPublic(t *testing.T) {
	private := []string{"127.0.0.1", "10.0.0.8", "172.16.3.4", "192.168.1.1",
		"169.254.169.254", "0.0.0.0", "::1", "fe80::1", "fc00::1"}
	for _, s := range private {
		if isPublic(parseIP(t, s)) {
			t.Errorf("isPublic(%s) = true", s)
		}
	}
	public := []string{"93.184.216.34", "8.8.8.8", "2001:4860:4860::8888"}
	for _, s := range public {
		if !isPublic(parseIP(t, s)) {
			t.Errorf("isPublic(%s) = false", s)
		}
	}
}

func parseIP(t *testing.T, s string) net.IP {
	t.Helper()
	ip := net.ParseIP(s)
	if ip == nil {
		t.Fatalf("bad test IP %q", s)
	}
	return ip
}

func TestClientAccessors(t *testing.T) {
	c := New(Options{MaxBody: 1234})
	if c.HTTPClient() == nil {
		t.Fatal("HTTPClient() = nil")
	}
	if c.MaxBody() != 1234 {
		t.Fatalf("MaxBody() = %d, want 1234", c.MaxBody())
	}
}
