package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestUnarmedIsNil(t *testing.T) {
	if err := Fire("nowhere"); err != nil {
		t.Fatalf("unarmed Fire = %v", err)
	}
	if err := FireCtx(context.Background(), "nowhere"); err != nil {
		t.Fatalf("unarmed FireCtx = %v", err)
	}
}

func TestArmedError(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Fault{Err: boom})
	if err := Fire("p"); !errors.Is(err, boom) {
		t.Fatalf("Fire = %v, want boom", err)
	}
	// Other points stay clean.
	if err := Fire("q"); err != nil {
		t.Fatalf("Fire(q) = %v", err)
	}
}

func TestCountDisarms(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Arm("p", Fault{Err: boom, Count: 2})
	for i := 0; i < 2; i++ {
		if err := Fire("p"); !errors.Is(err, boom) {
			t.Fatalf("firing %d = %v", i, err)
		}
	}
	if err := Fire("p"); err != nil {
		t.Fatalf("after count exhausted: %v", err)
	}
	if active.Load() {
		t.Error("package still active after last fault disarmed")
	}
}

func TestPanicValue(t *testing.T) {
	defer Reset()
	Arm("p", Fault{Panic: "injected"})
	defer func() {
		if r := recover(); r != "injected" {
			t.Fatalf("recover = %v", r)
		}
	}()
	_ = Fire("p")
	t.Fatal("Fire did not panic")
}

func TestDelayHonoursContext(t *testing.T) {
	defer Reset()
	Arm("p", Fault{Delay: 5 * time.Second, Err: errors.New("late")})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := FireCtx(ctx, "p")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("FireCtx did not wake on cancellation (took %v)", time.Since(start))
	}
}

func TestDisarmAndReset(t *testing.T) {
	Arm("p", Fault{Err: errors.New("x")})
	Disarm("p")
	if err := Fire("p"); err != nil {
		t.Fatalf("after Disarm: %v", err)
	}
	Arm("a", Fault{Err: errors.New("x")})
	Arm("b", Fault{Err: errors.New("y")})
	Reset()
	if err := Fire("a"); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
	if active.Load() {
		t.Error("active after Reset")
	}
}
