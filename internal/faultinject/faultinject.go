// Package faultinject provides deterministic fault-injection hooks
// for chaos testing the serving stack. Production code calls Fire (or
// FireCtx) at named injection points; with no faults armed the call is
// a single atomic load and returns nil, so hook sites cost nothing in
// a production process. Tests arm faults — a delay, an error, a panic,
// or a combination — at a point and then drive the system under test
// through its public surface, asserting it degrades the way the
// operator was promised.
//
// Points are plain strings owned by the package that hosts the hook
// (e.g. "gateway.lint", "fetch.get"). Arming is process-global and
// guarded by a mutex; tests that arm faults must not run in parallel
// with each other and should defer Reset.
package faultinject

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes one injected failure mode at a point. Fields
// compose: a Fault with both Delay and Err sleeps, then fails.
type Fault struct {
	// Delay is slept before the other effects. FireCtx wakes early
	// when the context is cancelled and returns the context error, so
	// an injected slow path still honours deadlines the way a real
	// slow dependency behind a context would.
	Delay time.Duration
	// Err, when non-nil, is returned by Fire.
	Err error
	// Panic, when non-nil, is the value passed to panic() after Delay.
	Panic any
	// Count bounds how many times the fault fires; 0 means until
	// Reset or Disarm. A fault that has fired Count times disarms
	// itself.
	Count int
}

// armed is nil (the common case, checked via active) or the current
// point → fault table.
var (
	active atomic.Bool
	mu     sync.Mutex
	armed  map[string]*faultState
)

type faultState struct {
	f     Fault
	fired int
}

// Arm installs a fault at a point, replacing any previous fault there.
func Arm(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if armed == nil {
		armed = make(map[string]*faultState)
	}
	armed[point] = &faultState{f: f}
	active.Store(true)
}

// Disarm removes the fault at a point, if any.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(armed, point)
	active.Store(len(armed) > 0)
}

// Reset disarms every fault. Tests defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = nil
	active.Store(false)
}

// Fire consults the fault armed at point: it sleeps the fault's Delay,
// panics with its Panic value, or returns its Err. With nothing armed
// (the production state) it is a single atomic load returning nil.
func Fire(point string) error {
	if !active.Load() {
		return nil
	}
	return fire(context.Background(), point)
}

// FireCtx is Fire with a context bounding any injected delay: when the
// context is cancelled mid-delay, FireCtx returns the context error
// immediately (the fault's own Err and Panic do not apply).
func FireCtx(ctx context.Context, point string) error {
	if !active.Load() {
		return nil
	}
	return fire(ctx, point)
}

func fire(ctx context.Context, point string) error {
	mu.Lock()
	st := armed[point]
	if st == nil {
		mu.Unlock()
		return nil
	}
	f := st.f
	st.fired++
	if f.Count > 0 && st.fired >= f.Count {
		delete(armed, point)
		active.Store(len(armed) > 0)
	}
	mu.Unlock()

	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}
