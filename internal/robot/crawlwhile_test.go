package robot

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestCrawlWhileCancellation: returning false from the visitor stops
// the crawl promptly — pages queued behind the cancellation are never
// fetched, even with a deep prefetch pipeline.
func TestCrawlWhileCancellation(t *testing.T) {
	var served atomic.Int32
	var srvURL string
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Header().Set("Content-Type", "text/html")
		// A long chain: each page links to the next.
		fmt.Fprintf(w, `<HTML><BODY><A HREF="%s/p%d">next</A></BODY></HTML>`, srvURL, served.Load())
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	srvURL = srv.URL

	r := NewRobot()
	r.IgnoreRobotsTxt = true
	r.Prefetch = 4
	visited := 0
	fetched, err := r.CrawlWhile(srv.URL+"/", func(p Page) bool {
		visited++
		return visited < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 3 {
		t.Errorf("visited %d pages after cancelling at 3", visited)
	}
	if fetched != 3 {
		t.Errorf("fetched = %d, want 3 (delivery stops at the cancellation)", fetched)
	}
	// The prefetch window may have a few fetches in flight past the
	// cancellation, but nothing beyond it may be dispatched.
	if n := served.Load(); n > int32(3+r.Prefetch) {
		t.Errorf("%d pages fetched after the visitor cancelled", n)
	}
}
