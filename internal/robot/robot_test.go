package robot

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"weblint/internal/corpus"
)

func TestParseRobotsTxtBasic(t *testing.T) {
	p := ParseRobotsTxt(`
User-agent: *
Disallow: /private/
Disallow: /tmp/
`, "poacher/2.0")
	if p.Allowed("/private/x.html") || p.Allowed("/tmp/y") {
		t.Error("disallowed paths allowed")
	}
	if !p.Allowed("/public/x.html") || !p.Allowed("/") {
		t.Error("allowed paths disallowed")
	}
}

func TestParseRobotsTxtAgentSpecific(t *testing.T) {
	body := `
User-agent: poacher
Disallow: /poacher-only/

User-agent: *
Disallow: /everyone/
`
	p := ParseRobotsTxt(body, "poacher/2.0")
	if p.Allowed("/poacher-only/x") {
		t.Error("agent-specific rule ignored")
	}
	if !p.Allowed("/everyone/x") {
		t.Error("star group applied despite specific match")
	}
	q := ParseRobotsTxt(body, "otherbot/1.0")
	if q.Allowed("/everyone/x") {
		t.Error("star group not applied to other agent")
	}
	if !q.Allowed("/poacher-only/x") {
		t.Error("foreign agent rules applied")
	}
}

func TestParseRobotsTxtAllowOverride(t *testing.T) {
	p := ParseRobotsTxt(`
User-agent: *
Allow: /private/ok/
Disallow: /private/
`, "bot")
	if !p.Allowed("/private/ok/page") {
		t.Error("Allow rule ignored")
	}
	if p.Allowed("/private/no") {
		t.Error("Disallow after Allow ignored")
	}
}

func TestParseRobotsTxtEmptyDisallow(t *testing.T) {
	p := ParseRobotsTxt("User-agent: *\nDisallow:\n", "bot")
	if !p.Allowed("/anything") {
		t.Error("empty Disallow should allow everything")
	}
}

func TestParseRobotsTxtCommentsAndJunk(t *testing.T) {
	p := ParseRobotsTxt(`
# header comment
User-agent: * # star
Disallow: /x # no robots here
not-a-field-line
`, "bot")
	if p.Allowed("/x/page") {
		t.Error("commented rules not parsed")
	}
}

func TestNilPolicyAllows(t *testing.T) {
	var p *RobotsPolicy
	if !p.Allowed("/x") {
		t.Error("nil policy should allow")
	}
}

// siteServer serves a small generated site over httptest, with a
// robots.txt, some broken links, and a non-HTML resource.
func siteServer(t *testing.T, pages map[string]string, robotsTxt string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	if robotsTxt != "" {
		mux.HandleFunc("/robots.txt", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, robotsTxt)
		})
	}
	mux.HandleFunc("/data.bin", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write([]byte{1, 2, 3})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimPrefix(r.URL.Path, "/")
		if path == "" {
			path = "index.html"
		}
		body, ok := pages[path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, body)
	})
	return httptest.NewServer(mux)
}

// TestE9RobotCrawl is experiment E9: poacher traverses all accessible
// pages, delivering every fetch (including broken-link 404s) to the
// visitor.
func TestE9RobotCrawl(t *testing.T) {
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 9, Pages: 12, Orphans: 0, BrokenLinks: 2, Subdirs: 2,
	})
	srv := siteServer(t, pages, "")
	defer srv.Close()

	r := NewRobot()
	r.Client = srv.Client()
	stats := NewCrawlStats()
	notFound := 0
	fetched, err := r.Crawl(srv.URL+"/", func(p Page) {
		stats.Record(p)
		if p.Status == http.StatusNotFound {
			notFound++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// All 12 pages plus 2 broken targets.
	if fetched != 14 {
		t.Errorf("fetched = %d, want 14", fetched)
	}
	if notFound != 2 {
		t.Errorf("404s seen = %d, want 2", notFound)
	}
	if stats.Statuses[200] != 12 {
		t.Errorf("200s = %d, want 12", stats.Statuses[200])
	}
	sum := stats.Summary()
	if !strings.Contains(sum, "pages fetched: 14") || !strings.Contains(sum, "status 404: 2") {
		t.Errorf("summary = %q", sum)
	}
}

func TestRobotHonorsRobotsTxt(t *testing.T) {
	pages := map[string]string{
		"index.html":          `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><A HREF="/private/secret.html">s</A><A HREF="/open.html">o</A></BODY></HTML>`,
		"open.html":           `<HTML><HEAD><TITLE>o</TITLE></HEAD><BODY>open</BODY></HTML>`,
		"private/secret.html": `<HTML><HEAD><TITLE>s</TITLE></HEAD><BODY>secret</BODY></HTML>`,
	}
	srv := siteServer(t, pages, "User-agent: *\nDisallow: /private/\n")
	defer srv.Close()

	r := NewRobot()
	r.Client = srv.Client()
	var visited []string
	_, err := r.Crawl(srv.URL+"/", func(p Page) { visited = append(visited, p.URL) })
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range visited {
		if strings.Contains(u, "/private/") {
			t.Errorf("robots.txt violated: fetched %s", u)
		}
	}
	if len(visited) != 2 {
		t.Errorf("visited = %v", visited)
	}
}

func TestRobotIgnoreRobotsTxt(t *testing.T) {
	pages := map[string]string{
		"index.html":          `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><A HREF="/private/secret.html">s</A></BODY></HTML>`,
		"private/secret.html": `<HTML><HEAD><TITLE>s</TITLE></HEAD><BODY>secret</BODY></HTML>`,
	}
	srv := siteServer(t, pages, "User-agent: *\nDisallow: /private/\n")
	defer srv.Close()

	r := NewRobot()
	r.Client = srv.Client()
	r.IgnoreRobotsTxt = true
	n := 0
	if _, err := r.Crawl(srv.URL+"/", func(p Page) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("fetched %d pages, want 2", n)
	}
}

func TestRobotMaxPages(t *testing.T) {
	pages := corpus.GenerateSite(corpus.SiteConfig{Seed: 1, Pages: 20, Subdirs: 1})
	srv := siteServer(t, pages, "")
	defer srv.Close()

	r := NewRobot()
	r.Client = srv.Client()
	r.MaxPages = 5
	fetched, err := r.Crawl(srv.URL+"/", func(Page) {})
	if err != nil {
		t.Fatal(err)
	}
	if fetched != 5 {
		t.Errorf("fetched = %d, want 5", fetched)
	}
}

func TestRobotMaxDepth(t *testing.T) {
	// A linear chain: depth limit cuts traversal.
	pages := map[string]string{}
	for i := 0; i < 10; i++ {
		pages[fmt.Sprintf("p%d.html", i)] =
			fmt.Sprintf(`<HTML><HEAD><TITLE>p</TITLE></HEAD><BODY><A HREF="/p%d.html">next</A></BODY></HTML>`, i+1)
	}
	pages["index.html"] = `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><A HREF="/p0.html">start</A></BODY></HTML>`
	srv := siteServer(t, pages, "")
	defer srv.Close()

	r := NewRobot()
	r.Client = srv.Client()
	r.MaxDepth = 3
	fetched, err := r.Crawl(srv.URL+"/", func(Page) {})
	if err != nil {
		t.Fatal(err)
	}
	// index (0) -> p0 (1) -> p1 (2) -> p2 (3); links from depth 3
	// are not followed.
	if fetched != 4 {
		t.Errorf("fetched = %d, want 4", fetched)
	}
}

func TestRobotStaysOnHost(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><A HREF="http://other.example/x.html">off-site</A></BODY></HTML>`,
	}
	srv := siteServer(t, pages, "")
	defer srv.Close()

	r := NewRobot()
	r.Client = srv.Client()
	fetched, err := r.Crawl(srv.URL+"/", func(Page) {})
	if err != nil {
		t.Fatal(err)
	}
	if fetched != 1 {
		t.Errorf("fetched = %d, want 1 (no off-site traversal)", fetched)
	}
}

func TestRobotSkipsNonHTML(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><A HREF="/data.bin">blob</A></BODY></HTML>`,
	}
	srv := siteServer(t, pages, "")
	defer srv.Close()

	r := NewRobot()
	r.Client = srv.Client()
	var blob *Page
	_, err := r.Crawl(srv.URL+"/", func(p Page) {
		if strings.HasSuffix(p.URL, "data.bin") {
			cp := p
			blob = &cp
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("binary resource not fetched")
	}
	if blob.Body != "" || len(blob.Links) != 0 {
		t.Error("non-HTML body parsed as HTML")
	}
}

func TestRobotDedupliatesURLs(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY>` +
			`<A HREF="/a.html">1</A><A HREF="/a.html#frag">2</A><A HREF="/a.html">3</A></BODY></HTML>`,
		"a.html": `<HTML><HEAD><TITLE>a</TITLE></HEAD><BODY>leaf</BODY></HTML>`,
	}
	srv := siteServer(t, pages, "")
	defer srv.Close()

	r := NewRobot()
	r.Client = srv.Client()
	fetched, err := r.Crawl(srv.URL+"/", func(Page) {})
	if err != nil {
		t.Fatal(err)
	}
	if fetched != 2 {
		t.Errorf("fetched = %d, want 2 (deduplicated)", fetched)
	}
}

func TestRobotPolitenessDelay(t *testing.T) {
	pages := map[string]string{
		"index.html": `<HTML><HEAD><TITLE>i</TITLE></HEAD><BODY><A HREF="/a.html">a</A><A HREF="/b.html">b</A></BODY></HTML>`,
		"a.html":     `<HTML><HEAD><TITLE>a</TITLE></HEAD><BODY>leaf</BODY></HTML>`,
		"b.html":     `<HTML><HEAD><TITLE>b</TITLE></HEAD><BODY>leaf</BODY></HTML>`,
	}
	srv := siteServer(t, pages, "")
	defer srv.Close()

	r := NewRobot()
	r.Client = srv.Client()
	r.Delay = 40 * time.Millisecond

	start := time.Now()
	fetched, err := r.Crawl(srv.URL+"/", func(Page) {})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if fetched != 3 {
		t.Fatalf("fetched = %d", fetched)
	}
	// Three fetches means at least two inter-request delays.
	if elapsed < 80*time.Millisecond {
		t.Errorf("crawl of 3 pages took %v; politeness delay not honoured", elapsed)
	}
}

func TestCrawlRejectsBadStart(t *testing.T) {
	r := NewRobot()
	if _, err := r.Crawl("ftp://x/", func(Page) {}); err == nil {
		t.Error("non-http start accepted")
	}
	if _, err := r.Crawl("://bad", func(Page) {}); err == nil {
		t.Error("malformed start accepted")
	}
}

// TestPrefetchOrderEquivalence: the pipelined crawl must visit exactly
// the pages a sequential crawl visits, in the same breadth-first
// order, for any prefetch depth.
func TestPrefetchOrderEquivalence(t *testing.T) {
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 21, Pages: 18, BrokenLinks: 2, Subdirs: 2,
	})
	srv := siteServer(t, pages, "")
	defer srv.Close()

	crawl := func(prefetch int) []string {
		r := NewRobot()
		r.Client = srv.Client()
		r.Prefetch = prefetch
		var order []string
		if _, err := r.Crawl(srv.URL+"/", func(p Page) { order = append(order, p.URL) }); err != nil {
			t.Fatal(err)
		}
		return order
	}

	want := crawl(1)
	if len(want) == 0 {
		t.Fatal("sequential crawl visited nothing")
	}
	for _, prefetch := range []int{2, 8, 64} {
		got := crawl(prefetch)
		if len(got) != len(want) {
			t.Fatalf("prefetch=%d visited %d pages, sequential %d", prefetch, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("prefetch=%d: visit %d is %s, sequential visited %s", prefetch, i, got[i], want[i])
			}
		}
	}
}

// TestPrefetchMaxPages: the pipeline must not fetch past MaxPages even
// with a deep prefetch window.
func TestPrefetchMaxPages(t *testing.T) {
	pages := corpus.GenerateSite(corpus.SiteConfig{Seed: 4, Pages: 20})
	srv := siteServer(t, pages, "")
	defer srv.Close()

	r := NewRobot()
	r.Client = srv.Client()
	r.MaxPages = 5
	r.Prefetch = 16
	visited := 0
	fetched, err := r.Crawl(srv.URL+"/", func(p Page) { visited++ })
	if err != nil {
		t.Fatal(err)
	}
	if fetched != 5 || visited != 5 {
		t.Errorf("fetched=%d visited=%d, want 5", fetched, visited)
	}
}
