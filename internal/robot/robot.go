// Package robot implements the web traversal engine used by poacher,
// weblint's site-checking robot (the paper's WWW::Robot substitute):
// a URL frontier with per-host politeness, the robots exclusion
// protocol, bounded depth and page count, and a visitor callback which
// receives each fetched page.
package robot

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"weblint/internal/bytestr"
	"weblint/internal/fetch"
	"weblint/internal/linkcheck"
)

// defaultClient is the shared hardened default: connect + total
// timeouts and a redirect cap in one place. Private targets stay
// reachable — a robot is pointed at the operator's own site, often a
// local or intranet server.
var defaultClient = sync.OnceValue(func() *http.Client {
	return fetch.New(fetch.Options{
		Timeout:      15 * time.Second,
		AllowPrivate: true,
		UserAgent:    "poacher/2.0",
	}).HTTPClient()
})

// Page is one fetched document delivered to the visitor.
type Page struct {
	// URL is the canonical fetched URL.
	URL string
	// Status is the HTTP status code.
	Status int
	// Body is the page content (only for HTML responses).
	Body string
	// ContentType is the response Content-Type header.
	ContentType string
	// Depth is the link distance from the start URL.
	Depth int
	// Links are the outbound links extracted from the body.
	Links []linkcheck.Link
	// Err is set when the fetch failed at the transport level.
	Err error
}

// Robot crawls a web site. The zero value is usable; fields customise
// behaviour.
type Robot struct {
	// Client is the HTTP client (nil: 15-second timeout).
	Client *http.Client
	// UserAgent identifies the robot (default "poacher/2.0").
	UserAgent string
	// MaxPages bounds the number of pages fetched (default 500).
	MaxPages int
	// MaxDepth bounds traversal depth (default 16).
	MaxDepth int
	// Delay is the politeness delay between requests to one host
	// (default none, suitable for checking your own site).
	Delay time.Duration
	// SameHost restricts traversal to the start URL's host
	// (default true via NewRobot; the zero value does not restrict).
	SameHost bool
	// IgnoreRobotsTxt skips the robots exclusion protocol; only
	// appropriate when checking your own server.
	IgnoreRobotsTxt bool
	// Prefetch bounds how many page fetches may be in flight ahead of
	// the visitor, overlapping network latency with the visitor's
	// linting. Zero or one means strictly sequential requests — the
	// polite default for a robot — and a politeness Delay forces
	// sequential fetching regardless; poacher opts into a pipeline of
	// 4. Pages are still delivered to the visitor in exact
	// breadth-first order, so prefetching never changes what a crawl
	// reports.
	Prefetch int
}

// NewRobot returns a Robot with the defaults used by poacher.
func NewRobot() *Robot {
	return &Robot{SameHost: true}
}

func (r *Robot) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return defaultClient()
}

func (r *Robot) userAgent() string {
	if r.UserAgent != "" {
		return r.UserAgent
	}
	return "poacher/2.0"
}

// Crawl traverses the site breadth-first from start, invoking visit
// for every fetched page (including error pages, so the visitor can
// report broken links). It returns the number of pages fetched.
//
// Fetching is pipelined: up to Prefetch pages from the front of the
// frontier are retrieved concurrently while the visitor processes
// earlier ones, so network latency overlaps linting. Delivery order
// is still exact breadth-first order — each in-flight fetch has its
// own result slot and the visitor drains slots in dispatch order — so
// a pipelined crawl visits the same pages in the same order as a
// sequential one.
func (r *Robot) Crawl(start string, visit func(Page)) (int, error) {
	return r.CrawlWhile(start, func(p Page) bool { visit(p); return true })
}

// CrawlWhile is Crawl with cancellation, mirroring the sink contract
// of the diagnostics pipeline: returning false from visit stops the
// crawl promptly — no further pages are fetched, in-flight prefetches
// are discarded undelivered, and the count of pages fetched so far is
// returned.
func (r *Robot) CrawlWhile(start string, visit func(Page) bool) (int, error) {
	base, err := url.Parse(start)
	if err != nil {
		return 0, fmt.Errorf("robot: bad start URL: %w", err)
	}
	if base.Scheme != "http" && base.Scheme != "https" {
		return 0, errors.New("robot: start URL must be http or https")
	}

	maxPages := r.MaxPages
	if maxPages <= 0 {
		maxPages = 500
	}
	maxDepth := r.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 16
	}
	prefetch := r.Prefetch
	if prefetch <= 0 || r.Delay > 0 {
		// Sequential by default, and always under a politeness delay:
		// one request at a time, spaced out.
		prefetch = 1
	}

	var policy *RobotsPolicy
	if !r.IgnoreRobotsTxt {
		policy = r.fetchRobotsTxt(base)
	}

	type item struct {
		u     *url.URL
		depth int
	}
	queue := []item{{base, 0}}
	seen := map[string]bool{canonical(base): true}
	fetched := 0
	var lastFetch time.Time

	// inflight holds one result slot per dispatched fetch, in dispatch
	// order. dispatch fills the pipeline from the frontier; the main
	// loop drains the oldest slot, visits, and extends the frontier.
	type slot struct {
		ch    chan Page
		u     *url.URL
		depth int
	}
	var inflight []slot
	dispatched := 0
	dispatch := func() {
		for len(inflight) < prefetch && len(queue) > 0 && dispatched < maxPages {
			it := queue[0]
			queue = queue[1:]
			if policy != nil && !policy.Allowed(it.u.Path) {
				continue
			}
			if r.Delay > 0 {
				if since := time.Since(lastFetch); since < r.Delay {
					time.Sleep(r.Delay - since)
				}
			}
			lastFetch = time.Now()
			ch := make(chan Page, 1)
			inflight = append(inflight, slot{ch, it.u, it.depth})
			dispatched++
			go func(u *url.URL, depth int) {
				ch <- r.fetch(u, depth)
			}(it.u, it.depth)
		}
	}

	for {
		dispatch()
		if len(inflight) == 0 {
			break
		}
		s := inflight[0]
		inflight = inflight[1:]
		page := <-s.ch
		fetched++
		if !visit(page) {
			// Abandoning in-flight fetches is safe: every slot channel
			// is buffered, so the fetch goroutines complete and are
			// collected without a reader.
			break
		}

		if page.Err != nil || page.Status != http.StatusOK || s.depth >= maxDepth {
			continue
		}
		for _, link := range page.Links {
			next, err := s.u.Parse(link.URL)
			if err != nil {
				continue
			}
			next.Fragment = ""
			if next.Scheme != "http" && next.Scheme != "https" {
				continue
			}
			if r.SameHost && next.Host != base.Host {
				continue
			}
			key := canonical(next)
			if seen[key] {
				continue
			}
			seen[key] = true
			queue = append(queue, item{next, s.depth + 1})
		}
	}
	return fetched, nil
}

// fetch retrieves one page and extracts its links when it is HTML.
func (r *Robot) fetch(u *url.URL, depth int) Page {
	page := Page{URL: u.String(), Depth: depth}
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		page.Err = err
		return page
	}
	req.Header.Set("User-Agent", r.userAgent())
	resp, err := r.client().Do(req)
	if err != nil {
		page.Err = err
		return page
	}
	defer resp.Body.Close()
	page.Status = resp.StatusCode
	page.ContentType = resp.Header.Get("Content-Type")
	if !strings.Contains(page.ContentType, "text/html") && page.ContentType != "" {
		return page
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		page.Err = err
		return page
	}
	// The freshly read buffer is never written again: view it as a
	// string instead of copying all 4 MB-worth of page once more.
	page.Body = bytestr.String(body)
	page.Links = linkcheck.Extract(page.Body)
	return page
}

// fetchRobotsTxt retrieves and parses the host's robots.txt; a missing
// or unreadable file yields a permit-everything policy.
func (r *Robot) fetchRobotsTxt(base *url.URL) *RobotsPolicy {
	u := *base
	u.Path = "/robots.txt"
	u.RawQuery = ""
	req, err := http.NewRequest(http.MethodGet, u.String(), nil)
	if err != nil {
		return &RobotsPolicy{}
	}
	req.Header.Set("User-Agent", r.userAgent())
	resp, err := r.client().Do(req)
	if err != nil {
		return &RobotsPolicy{}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &RobotsPolicy{}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return &RobotsPolicy{}
	}
	return ParseRobotsTxt(string(body), r.userAgent())
}

// canonical returns a canonical key for visited-set membership.
func canonical(u *url.URL) string {
	c := *u
	c.Fragment = ""
	if c.Path == "" {
		c.Path = "/"
	}
	return c.String()
}

// CrawlStats summarises a crawl for reports.
type CrawlStats struct {
	Pages    int
	Statuses map[int]int
	ByHost   map[string]int
	mu       sync.Mutex
}

// NewCrawlStats returns an empty stats collector.
func NewCrawlStats() *CrawlStats {
	return &CrawlStats{Statuses: map[int]int{}, ByHost: map[string]int{}}
}

// Record adds one page to the stats; safe for concurrent use.
func (s *CrawlStats) Record(p Page) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Pages++
	s.Statuses[p.Status]++
	if u, err := url.Parse(p.URL); err == nil {
		s.ByHost[u.Host]++
	}
}

// Summary renders the stats as sorted "status: count" lines.
func (s *CrawlStats) Summary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var codes []int
	for c := range s.Statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	var b strings.Builder
	fmt.Fprintf(&b, "pages fetched: %d\n", s.Pages)
	for _, c := range codes {
		fmt.Fprintf(&b, "  status %d: %d\n", c, s.Statuses[c])
	}
	return b.String()
}
