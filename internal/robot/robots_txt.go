package robot

import (
	"bufio"
	"strings"
)

// RobotsPolicy is a parsed robots.txt exclusion policy for one
// user-agent.
type RobotsPolicy struct {
	// disallow and allow are path prefixes, in file order.
	rules []robotsRule
}

type robotsRule struct {
	allow  bool
	prefix string
}

// ParseRobotsTxt parses the robots.txt body, returning the policy for
// the given user agent (longest-matching User-agent group wins, "*"
// matches everything).
func ParseRobotsTxt(body, userAgent string) *RobotsPolicy {
	userAgent = strings.ToLower(userAgent)
	type grp struct {
		agents []string
		rules  []robotsRule
	}
	var groups []*grp
	var cur *grp
	sawRule := false

	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		field := strings.ToLower(strings.TrimSpace(line[:colon]))
		value := strings.TrimSpace(line[colon+1:])
		switch field {
		case "user-agent":
			if cur == nil || sawRule {
				cur = &grp{}
				groups = append(groups, cur)
				sawRule = false
			}
			cur.agents = append(cur.agents, strings.ToLower(value))
		case "disallow", "allow":
			if cur == nil {
				cur = &grp{agents: []string{"*"}}
				groups = append(groups, cur)
			}
			sawRule = true
			if value == "" && field == "disallow" {
				continue // empty Disallow means allow everything
			}
			cur.rules = append(cur.rules, robotsRule{allow: field == "allow", prefix: value})
		}
	}

	// Pick the most specific matching group: exact substring match on
	// agent name beats "*".
	var starGroup, match *grp
	matchLen := -1
	for _, g := range groups {
		for _, a := range g.agents {
			if a == "*" {
				if starGroup == nil {
					starGroup = g
				}
				continue
			}
			if strings.Contains(userAgent, a) && len(a) > matchLen {
				match = g
				matchLen = len(a)
			}
		}
	}
	if match == nil {
		match = starGroup
	}
	if match == nil {
		return &RobotsPolicy{}
	}
	return &RobotsPolicy{rules: match.rules}
}

// Allowed reports whether the policy permits fetching path. The first
// matching rule in file order wins, per the original robots exclusion
// protocol.
func (p *RobotsPolicy) Allowed(path string) bool {
	if p == nil {
		return true
	}
	if path == "" {
		path = "/"
	}
	for _, r := range p.rules {
		if strings.HasPrefix(path, r.prefix) {
			return r.allow
		}
	}
	return true
}
