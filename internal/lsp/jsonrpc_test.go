package lsp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestFramingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := newConn(&buf, &buf)
	if err := c.notify("textDocument/publishDiagnostics", map[string]any{"uri": "file:///x"}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "Content-Length: ") {
		t.Fatalf("no framing header: %q", buf.String())
	}
	m, err := c.read()
	if err != nil {
		t.Fatal(err)
	}
	if m.Method != "textDocument/publishDiagnostics" {
		t.Errorf("method = %q", m.Method)
	}
	if _, err := c.read(); err != io.EOF {
		t.Errorf("second read err = %v, want EOF", err)
	}
}

func TestFramingHeaderVariants(t *testing.T) {
	body := `{"jsonrpc":"2.0","method":"x"}`
	// Lower-case header name and an extra ignored header.
	in := fmt.Sprintf("content-length: %d\r\ncontent-type: application/vscode-jsonrpc; charset=utf-8\r\n\r\n%s", len(body), body)
	m, err := newConn(strings.NewReader(in), io.Discard).read()
	if err != nil {
		t.Fatal(err)
	}
	if m.Method != "x" {
		t.Errorf("method = %q", m.Method)
	}
}

func TestFramingMissingLength(t *testing.T) {
	if _, err := newConn(strings.NewReader("X-Other: 1\r\n\r\n{}"), io.Discard).read(); err == nil {
		t.Fatal("missing Content-Length accepted")
	}
}

func TestFramingBadJSONIsProtocolError(t *testing.T) {
	in := "Content-Length: 5\r\n\r\n{nope"
	_, err := newConn(strings.NewReader(in), io.Discard).read()
	var perr *protocolError
	if ok := errorsAs(err, &perr); !ok || perr.code != codeParseError {
		t.Fatalf("err = %v, want protocolError(parse)", err)
	}
}

func errorsAs(err error, target **protocolError) bool {
	p, ok := err.(*protocolError)
	if ok {
		*target = p
	}
	return ok
}

func TestRespondNullResult(t *testing.T) {
	var buf bytes.Buffer
	c := newConn(strings.NewReader(""), &buf)
	id := json.RawMessage(`1`)
	if err := c.respond(id, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"result":null`) {
		t.Errorf("null result not serialised: %q", buf.String())
	}
}
