package lsp

// protocol.go declares the slice of the Language Server Protocol the
// server speaks, 3.x wire shapes. Only the fields weblint reads or
// writes are declared; unknown fields are ignored by encoding/json,
// which is exactly the forward-compatibility the protocol intends.

// Position is a 0-based (line, UTF-16 code unit) document position —
// the protocol's default position encoding.
type Position struct {
	Line      int `json:"line"`
	Character int `json:"character"`
}

// Range is a half-open [start, end) span.
type Range struct {
	Start Position `json:"start"`
	End   Position `json:"end"`
}

// Diagnostic severities.
const (
	SeverityError       = 1
	SeverityWarning     = 2
	SeverityInformation = 3
	SeverityHint        = 4
)

// Diagnostic is one published finding.
type Diagnostic struct {
	Range    Range  `json:"range"`
	Severity int    `json:"severity,omitempty"`
	Code     string `json:"code,omitempty"`
	Source   string `json:"source,omitempty"`
	Message  string `json:"message"`
}

// TextDocumentItem is the full document sent with didOpen.
type TextDocumentItem struct {
	URI     string `json:"uri"`
	Version int    `json:"version"`
	Text    string `json:"text"`
}

// TextDocumentIdentifier names a document.
type TextDocumentIdentifier struct {
	URI string `json:"uri"`
}

// VersionedTextDocumentIdentifier names a document at a version.
type VersionedTextDocumentIdentifier struct {
	URI     string `json:"uri"`
	Version int    `json:"version"`
}

// WorkspaceFolder is one root the client has open.
type WorkspaceFolder struct {
	URI  string `json:"uri"`
	Name string `json:"name"`
}

type initializeParams struct {
	RootURI          string            `json:"rootUri"`
	RootPath         string            `json:"rootPath"`
	WorkspaceFolders []WorkspaceFolder `json:"workspaceFolders"`
}

type initializeResult struct {
	Capabilities serverCapabilities `json:"capabilities"`
	ServerInfo   serverInfo         `json:"serverInfo"`
}

type serverInfo struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

type serverCapabilities struct {
	TextDocumentSync   textDocumentSyncOptions `json:"textDocumentSync"`
	CodeActionProvider bool                    `json:"codeActionProvider"`
	// DiagnosticProvider advertises LSP 3.17 pull diagnostics
	// (textDocument/diagnostic).
	DiagnosticProvider *diagnosticOptions `json:"diagnosticProvider,omitempty"`
}

type textDocumentSyncOptions struct {
	OpenClose bool `json:"openClose"`
	// Change 2 = incremental sync: didChange carries range-scoped
	// edits, applied through the lint.Session so only the damaged
	// window is re-linted. Clients may still send a rangeless change
	// to replace the whole document (the protocol allows mixing).
	Change int `json:"change"`
}

// diagnosticOptions is the 3.17 diagnostic registration: weblint
// diagnostics are per-document and the server has no workspace-wide
// pull.
type diagnosticOptions struct {
	InterFileDependencies bool `json:"interFileDependencies"`
	WorkspaceDiagnostics  bool `json:"workspaceDiagnostics"`
}

type didOpenParams struct {
	TextDocument TextDocumentItem `json:"textDocument"`
}

type didChangeParams struct {
	TextDocument   VersionedTextDocumentIdentifier  `json:"textDocument"`
	ContentChanges []textDocumentContentChangeEvent `json:"contentChanges"`
}

// textDocumentContentChangeEvent is one didChange edit. With a
// non-nil Range the Text replaces that span (incremental sync); with a
// nil Range the Text replaces the whole document (clients may mix the
// two forms).
type textDocumentContentChangeEvent struct {
	Range *Range `json:"range"`
	Text  string `json:"text"`
}

type didChangeConfigurationParams struct {
	// Settings is opaque to weblint: any configuration change
	// invalidates the cached .weblintrc linters so the next lint
	// re-reads them.
	Settings any `json:"settings"`
}

type documentDiagnosticParams struct {
	TextDocument TextDocumentIdentifier `json:"textDocument"`
}

// fullDocumentDiagnosticReport answers a textDocument/diagnostic pull
// (LSP 3.17). Weblint always reports kind "full" — findings are cheap
// to re-derive incrementally, so unchanged-result bookkeeping
// (resultId) is not implemented.
type fullDocumentDiagnosticReport struct {
	Kind  string       `json:"kind"`
	Items []Diagnostic `json:"items"`
}

type didCloseParams struct {
	TextDocument TextDocumentIdentifier `json:"textDocument"`
}

type publishDiagnosticsParams struct {
	URI         string       `json:"uri"`
	Version     int          `json:"version,omitempty"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

type codeActionParams struct {
	TextDocument TextDocumentIdentifier `json:"textDocument"`
	Range        Range                  `json:"range"`
	Context      codeActionContext      `json:"context"`
}

type codeActionContext struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Only        []string     `json:"only,omitempty"`
}

// CodeAction is a quick fix offered for a diagnostic.
type CodeAction struct {
	Title       string         `json:"title"`
	Kind        string         `json:"kind,omitempty"`
	Diagnostics []Diagnostic   `json:"diagnostics,omitempty"`
	IsPreferred bool           `json:"isPreferred,omitempty"`
	Edit        *WorkspaceEdit `json:"edit,omitempty"`
}

// WorkspaceEdit carries document edits keyed by URI.
type WorkspaceEdit struct {
	Changes map[string][]TextEdit `json:"changes"`
}

// TextEdit replaces a range with new text.
type TextEdit struct {
	Range   Range  `json:"range"`
	NewText string `json:"newText"`
}
