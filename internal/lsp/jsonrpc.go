package lsp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// jsonrpc.go implements the LSP base protocol by hand: JSON-RPC 2.0
// messages framed by MIME-style headers over a byte stream. Each
// message is
//
//	Content-Length: <N>\r\n
//	\r\n
//	<N bytes of JSON>
//
// No external dependency — the framing is simple enough that a reader
// and a mutex-guarded writer cover everything the server needs.

// message is the wire shape of one JSON-RPC message, incoming or
// outgoing. A request has Method and ID; a notification has Method
// only; a response has ID plus Result or Error.
type message struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id,omitempty"`
	Method  string          `json:"method,omitempty"`
	Params  json.RawMessage `json:"params,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *respError      `json:"error,omitempty"`
}

// respError is a JSON-RPC error object.
type respError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// JSON-RPC / LSP error codes the server uses.
const (
	codeParseError     = -32700
	codeInvalidRequest = -32600
	codeMethodNotFound = -32601
	codeInvalidParams  = -32602
)

// conn frames messages over a reader/writer pair. Reads are driven by
// one goroutine (the serve loop); writes are mutex-guarded because
// debounced lint goroutines publish diagnostics concurrently with
// responses.
type conn struct {
	in  *bufio.Reader
	mu  sync.Mutex
	out io.Writer
}

func newConn(r io.Reader, w io.Writer) *conn {
	return &conn{in: bufio.NewReader(r), out: w}
}

// read returns the next framed message. io.EOF (possibly wrapped)
// reports a closed input.
func (c *conn) read() (*message, error) {
	length := -1
	for {
		line, err := c.in.ReadString('\n')
		if err != nil {
			if err == io.EOF && line == "" {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("lsp: reading header: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break // end of headers
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("lsp: malformed header %q", line)
		}
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "content-length":
			n, err := strconv.Atoi(strings.TrimSpace(value))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("lsp: bad Content-Length %q", value)
			}
			length = n
		case "content-type":
			// Accepted and ignored: the only defined value is a UTF-8
			// JSON-RPC type.
		default:
			// Unknown headers are ignored for forward compatibility.
		}
	}
	if length < 0 {
		return nil, fmt.Errorf("lsp: missing Content-Length header")
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(c.in, body); err != nil {
		return nil, fmt.Errorf("lsp: reading %d-byte body: %w", length, err)
	}
	var m message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, &protocolError{code: codeParseError, msg: err.Error()}
	}
	return &m, nil
}

// protocolError is a malformed-message error the serve loop answers
// with a JSON-RPC error response instead of dying.
type protocolError struct {
	code int
	msg  string
}

func (e *protocolError) Error() string { return e.msg }

// write frames and sends one message.
func (c *conn) write(m *message) error {
	m.JSONRPC = "2.0"
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("lsp: marshaling message: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.out, "Content-Length: %d\r\n\r\n", len(body)); err != nil {
		return err
	}
	_, err = c.out.Write(body)
	return err
}

// respond sends a successful response. A nil result marshals as JSON
// null, which the protocol requires to be present.
func (c *conn) respond(id json.RawMessage, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("lsp: marshaling result: %w", err)
	}
	return c.write(&message{ID: id, Result: raw})
}

// respondError sends an error response.
func (c *conn) respondError(id json.RawMessage, code int, msg string) error {
	return c.write(&message{ID: id, Error: &respError{Code: code, Message: msg}})
}

// notify sends a notification.
func (c *conn) notify(method string, params any) error {
	raw, err := json.Marshal(params)
	if err != nil {
		return fmt.Errorf("lsp: marshaling params: %w", err)
	}
	return c.write(&message{Method: method, Params: raw})
}
