package lsp

import (
	"net/url"
	"path/filepath"
	"strings"

	"weblint/internal/textpos"
	"weblint/internal/warn"
)

// convert.go translates between weblint's diagnostics model (1-based
// lines, 1-based byte columns, byte-span fix edits) and the LSP's
// (0-based lines, UTF-16 code-unit columns, range edits). The byte to
// UTF-16 mapping is delegated to textpos, which both this server and
// the baseline layer share.

// uriToPath converts a file:// URI to a filesystem path, or "" for
// any other scheme (untitled:, inmemory:, ...). Percent-escapes are
// decoded by the URL parser.
func uriToPath(uri string) string {
	u, err := url.Parse(uri)
	if err != nil || u.Scheme != "file" {
		return ""
	}
	path := u.Path
	if path == "" {
		return ""
	}
	// Windows-style /C:/... paths keep working when the server is
	// built there; on Unix this is a no-op.
	if len(path) >= 3 && path[0] == '/' && path[2] == ':' {
		path = path[1:]
	}
	return filepath.FromSlash(path)
}

// severityOf maps weblint's categories onto LSP diagnostic severities
// using the same policy as the SARIF renderer: errors are errors,
// warnings warnings, and style comments informational.
func severityOf(c warn.Category) int {
	switch c {
	case warn.Error:
		return SeverityError
	case warn.Warning:
		return SeverityWarning
	case warn.Style:
		return SeverityInformation
	}
	return SeverityHint
}

// diagnosticFor converts one message. The range starts at the
// message's column (or the start of the line when the column is
// unknown) and runs to the end of the line: weblint messages don't
// carry an extent, and to-end-of-line is how line-oriented linters
// conventionally surface that.
func diagnosticFor(m warn.Message, ix *textpos.Index) Diagnostic {
	line := m.Line - 1
	if line < 0 {
		line = 0
	}
	start := ix.LineStart(line)
	if m.Col > 0 {
		off := start + m.Col - 1
		if end := start + len(ix.LineText(line)); off > end {
			off = end
		}
		start = off
	}
	sl, sc := ix.OffsetToUTF16(start)
	el, ec := ix.OffsetToUTF16(ix.LineStart(line) + len(ix.LineText(line)))
	return Diagnostic{
		Range:    Range{Start: Position{sl, sc}, End: Position{el, ec}},
		Severity: severityOf(m.Category),
		Code:     m.ID,
		Source:   "weblint",
		Message:  m.Text,
	}
}

// editsToLSP converts a fix's byte-span edits to LSP text edits.
func editsToLSP(edits []warn.Edit, ix *textpos.Index) []TextEdit {
	out := make([]TextEdit, len(edits))
	for i, e := range edits {
		sl, sc := ix.OffsetToUTF16(e.Start)
		el, ec := ix.OffsetToUTF16(e.End)
		out[i] = TextEdit{
			Range:   Range{Start: Position{sl, sc}, End: Position{el, ec}},
			NewText: e.Text,
		}
	}
	return out
}

// posCmp orders two positions.
func posCmp(a, b Position) int {
	if a.Line != b.Line {
		return a.Line - b.Line
	}
	return a.Character - b.Character
}

// rangesTouch reports whether two ranges overlap or touch — the
// inclusive test codeAction uses, so a cursor sitting at a
// diagnostic's boundary still gets its quick fix.
func rangesTouch(a, b Range) bool {
	return posCmp(a.Start, b.End) <= 0 && posCmp(b.Start, a.End) <= 0
}

// ApplyTextEdits applies LSP text edits to a document, resolving
// ranges through a fresh index. Exposed for clients and tests that
// want to verify an edit the way an editor would apply it.
func ApplyTextEdits(text string, edits []TextEdit) string {
	ix := textpos.New(text)
	type span struct {
		start, end int
		text       string
	}
	spans := make([]span, len(edits))
	for i, e := range edits {
		spans[i] = span{
			start: ix.UTF16ToOffset(e.Range.Start.Line, e.Range.Start.Character),
			end:   ix.UTF16ToOffset(e.Range.End.Line, e.Range.End.Character),
			text:  e.NewText,
		}
	}
	// Apply back to front so earlier offsets stay valid; edits of one
	// fix never overlap.
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[j].start > spans[i].start {
				spans[i], spans[j] = spans[j], spans[i]
			}
		}
	}
	var sb strings.Builder
	for _, sp := range spans {
		if sp.start < 0 || sp.end < sp.start || sp.end > len(text) {
			continue
		}
		sb.Reset()
		sb.WriteString(text[:sp.start])
		sb.WriteString(sp.text)
		sb.WriteString(text[sp.end:])
		text = sb.String()
	}
	return text
}
