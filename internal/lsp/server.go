// Package lsp implements a Language Server Protocol server over
// weblint's streaming diagnostics pipeline: the editor-facing surface
// the paper's workflow implies — catching HTML mistakes while the
// author types, not after deploy.
//
// The server speaks JSON-RPC 2.0 with LSP base-protocol framing over
// any reader/writer pair (stdio in cmd/weblint-lsp), hand-rolled — no
// dependency beyond the standard library. It handles
//
//	initialize / initialized / shutdown / exit
//	textDocument/didOpen | didChange | didClose
//	textDocument/codeAction
//	textDocument/diagnostic            (LSP 3.17 pull diagnostics)
//	workspace/didChangeConfiguration
//
// and pushes textDocument/publishDiagnostics after every (debounced)
// lint. Sync is incremental (TextDocumentSyncKind 2): each didChange
// carries range-scoped edits which are applied to the buffer and fed
// to a per-document lint.Session, so a keystroke re-lints only the
// damaged window and splices the cached findings around it — the
// session guarantees output byte-identical to a from-scratch lint.
// Fix-carrying messages surface as quick-fix code actions, plus one
// source.fixAll action applying every fix in a single workspace edit.
//
// Per-workspace configuration follows the CLI: the nearest .weblintrc
// up the directory tree from each document (stopping at the workspace
// folder root) configures that document's linter, rebuilt when the
// file changes; documents without one share the default linter.
package lsp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"weblint/internal/config"
	"weblint/internal/fixit"
	"weblint/internal/lint"
	"weblint/internal/textpos"
	"weblint/internal/warn"
)

// Options configures a Server.
type Options struct {
	// Linter is the shared default linter; nil builds one with default
	// settings.
	Linter *lint.Linter
	// DebounceDelay is how long after the last didChange the re-lint
	// runs. Zero means the 200ms default; negative lints synchronously
	// on every change (used by tests).
	DebounceDelay time.Duration
	// Logf, when non-nil, receives server-side log lines (protocol
	// errors, configuration problems). The transport carries only
	// protocol traffic.
	Logf func(format string, args ...any)
}

const defaultDebounce = 200 * time.Millisecond

// document is the server's view of one open editor buffer.
type document struct {
	uri     string
	path    string // filesystem path, or "" for non-file URIs
	version int
	text    string
	timer   *time.Timer // pending debounced lint

	// Incremental re-lint state. session holds the lint.Session for
	// the text continuum this buffer has moved through; pending queues
	// the byte-span edits applied to text but not yet pushed through
	// the session; sessionLinter records which linter built the
	// session, so a configuration change (different linter) rebuilds
	// rather than splices. desynced marks a buffer whose content the
	// server no longer knows (an unappliable incremental change
	// arrived): diagnostics are retracted and nothing is served until
	// the client sends full text again.
	session       *lint.Session
	sessionLinter *lint.Linter
	pending       []lint.Edit
	desynced      bool

	// relint serialises analyses of this document: lint.Session is not
	// safe for concurrent use, and debounce timers race the dispatch
	// goroutine. Lock ordering is relint before Server.mu; never
	// acquire relint while holding mu.
	relint sync.Mutex

	// Last published analysis, consumed by codeAction: msgs[i]
	// produced diags[i]; index resolves fix edits over text, and
	// analyzed records the version the analysis was computed against
	// — codeAction refuses to serve edits for any other version.
	index    *textpos.Index
	msgs     []warn.Message
	diags    []Diagnostic
	analyzed int
}

// Server is one LSP session. Construct with NewServer, then Run it
// over the transport.
type Server struct {
	opts    Options
	conn    *conn
	linters *linterCache

	mu       sync.Mutex
	docs     map[string]*document
	roots    []string
	shutdown bool
}

// NewServer returns a server ready to Run.
func NewServer(opts Options) *Server {
	if opts.Linter == nil {
		opts.Linter = lint.MustNew(lint.Options{})
	}
	if opts.DebounceDelay == 0 {
		opts.DebounceDelay = defaultDebounce
	}
	return &Server{
		opts:    opts,
		linters: newLinterCache(opts.Linter, opts.Logf),
		docs:    map[string]*document{},
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Run serves the connection until the client sends exit or closes the
// stream. It returns nil on an orderly shutdown/exit (or EOF after
// shutdown) and the transport error otherwise.
func (s *Server) Run(r io.Reader, w io.Writer) error {
	s.conn = newConn(r, w)
	defer s.stopTimers()
	for {
		m, err := s.conn.read()
		if err != nil {
			if perr, ok := err.(*protocolError); ok {
				// The frame was consumed; the stream is still usable.
				_ = s.conn.respondError(nil, perr.code, perr.msg)
				continue
			}
			if err == io.EOF {
				return nil
			}
			return err
		}
		if m.Method == "exit" {
			return nil
		}
		if err := s.dispatch(m); err != nil {
			return err
		}
	}
}

// stopTimers cancels pending debounced lints so Run leaves nothing
// firing after it returns.
func (s *Server) stopTimers() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.docs {
		if d.timer != nil {
			d.timer.Stop()
		}
	}
}

// dispatch handles one message. Returned errors are transport
// failures; protocol-level problems answer the client instead.
func (s *Server) dispatch(m *message) error {
	switch m.Method {
	case "initialize":
		var p initializeParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			return s.conn.respondError(m.ID, codeInvalidParams, err.Error())
		}
		s.setRoots(&p)
		return s.conn.respond(m.ID, initializeResult{
			Capabilities: serverCapabilities{
				TextDocumentSync:   textDocumentSyncOptions{OpenClose: true, Change: 2},
				CodeActionProvider: true,
				DiagnosticProvider: &diagnosticOptions{},
			},
			ServerInfo: serverInfo{Name: "weblint-lsp", Version: "2.0"},
		})
	case "initialized":
		return nil
	case "shutdown":
		s.mu.Lock()
		s.shutdown = true
		s.mu.Unlock()
		return s.conn.respond(m.ID, nil)
	case "textDocument/didOpen":
		var p didOpenParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			s.logf("didOpen: %v", err)
			return nil
		}
		s.openDocument(p.TextDocument)
		return nil
	case "textDocument/didChange":
		var p didChangeParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			s.logf("didChange: %v", err)
			return nil
		}
		s.changeDocument(&p)
		return nil
	case "textDocument/didClose":
		var p didCloseParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			s.logf("didClose: %v", err)
			return nil
		}
		s.closeDocument(p.TextDocument.URI)
		return nil
	case "textDocument/codeAction":
		var p codeActionParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			return s.conn.respondError(m.ID, codeInvalidParams, err.Error())
		}
		return s.conn.respond(m.ID, s.codeActions(&p))
	case "textDocument/diagnostic":
		var p documentDiagnosticParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			return s.conn.respondError(m.ID, codeInvalidParams, err.Error())
		}
		// Pull diagnostics (3.17): lint synchronously and answer with a
		// full report. The incremental session makes the "synchronous"
		// part cheap — an unchanged document renders cached events.
		diags, ok := s.analyze(p.TextDocument.URI, false)
		if !ok {
			diags = []Diagnostic{}
		}
		return s.conn.respond(m.ID, fullDocumentDiagnosticReport{Kind: "full", Items: diags})
	case "workspace/didChangeConfiguration":
		// The settings payload is opaque to weblint; what matters is
		// that .weblintrc interpretation may have changed. Drop every
		// cached rc linter (even when the file's mtime is unchanged)
		// and re-lint all open documents under the fresh resolution.
		s.linters.invalidate()
		s.relintAll()
		return nil
	}
	if len(m.ID) != 0 {
		return s.conn.respondError(m.ID, codeMethodNotFound, "unhandled method "+m.Method)
	}
	// Unknown notifications ($/cancelRequest, client chatter) are
	// ignored, as the protocol requires.
	return nil
}

// setRoots records the workspace folders .weblintrc discovery stops
// at.
func (s *Server) setRoots(p *initializeParams) {
	var roots []string
	for _, f := range p.WorkspaceFolders {
		if path := uriToPath(f.URI); path != "" {
			roots = append(roots, path)
		}
	}
	if len(roots) == 0 {
		if path := uriToPath(p.RootURI); path != "" {
			roots = append(roots, path)
		} else if p.RootPath != "" {
			roots = append(roots, p.RootPath)
		}
	}
	s.mu.Lock()
	s.roots = roots
	s.mu.Unlock()
	s.linters.setRoots(roots)
}

// openDocument registers a buffer and lints it immediately: the first
// diagnostics should appear the moment a file opens, not a debounce
// later.
func (s *Server) openDocument(td TextDocumentItem) {
	d := &document{uri: td.URI, path: uriToPath(td.URI), version: td.Version, text: td.Text}
	s.mu.Lock()
	if prev := s.docs[td.URI]; prev != nil && prev.timer != nil {
		prev.timer.Stop()
	}
	s.docs[td.URI] = d
	s.mu.Unlock()
	s.lintNow(td.URI)
}

// changeDocument applies a didChange — range-scoped incremental edits
// or a rangeless full replacement, in order, each against the result
// of the previous — and schedules a debounced re-lint. Incremental
// edits are also queued for the document's lint.Session so the lint
// re-tokenizes only the damaged window. Typing bursts collapse into
// one lint a short beat after the last keystroke.
func (s *Server) changeDocument(p *didChangeParams) {
	s.mu.Lock()
	d := s.docs[p.TextDocument.URI]
	if d == nil {
		s.mu.Unlock()
		s.logf("didChange for unopened %s", p.TextDocument.URI)
		return
	}
	applied := false
	for _, ch := range p.ContentChanges {
		if ch.Range == nil {
			// Full replacement: reset the buffer and drop the session;
			// the next lint rebuilds it from scratch.
			d.text = ch.Text
			d.session, d.sessionLinter, d.pending = nil, nil, nil
			d.desynced = false
			applied = true
			continue
		}
		if d.desynced {
			continue // spans against a buffer we no longer know
		}
		ix := textpos.New(d.text)
		start := ix.UTF16ToOffset(ch.Range.Start.Line, ch.Range.Start.Character)
		end := ix.UTF16ToOffset(ch.Range.End.Line, ch.Range.End.Character)
		if end < start {
			// A malformed change leaves the buffer content unknowable.
			// Serving diagnostics computed against a guess would be
			// silently wrong, so hard-resync: retract everything and
			// wait for the client to send full text (didOpen or a
			// rangeless change).
			s.desyncLocked(d)
			continue
		}
		d.text = d.text[:start] + ch.Text + d.text[end:]
		d.pending = append(d.pending, lint.Edit{Start: start, End: end, Text: ch.Text})
		applied = true
	}
	d.version = p.TextDocument.Version
	uri := d.uri
	if !applied || d.desynced {
		s.mu.Unlock()
		return
	}
	if s.opts.DebounceDelay < 0 {
		s.mu.Unlock()
		s.lintNow(uri)
		return
	}
	if d.timer != nil {
		d.timer.Stop()
	}
	d.timer = time.AfterFunc(s.opts.DebounceDelay, func() { s.lintNow(uri) })
	s.mu.Unlock()
}

// desyncLocked (caller holds s.mu) marks a document as out of sync,
// drops its analysis state, and retracts its diagnostics.
func (s *Server) desyncLocked(d *document) {
	d.desynced = true
	d.session, d.sessionLinter, d.pending = nil, nil, nil
	d.index, d.msgs, d.diags = nil, nil, nil
	s.logf("resync required for %s: unappliable incremental change; diagnostics retracted", d.uri)
	if err := s.conn.notify("textDocument/publishDiagnostics",
		publishDiagnosticsParams{URI: d.uri, Diagnostics: []Diagnostic{}}); err != nil {
		s.logf("publish: %v", err)
	}
}

// closeDocument forgets a buffer and retracts its diagnostics.
func (s *Server) closeDocument(uri string) {
	s.mu.Lock()
	d := s.docs[uri]
	if d != nil && d.timer != nil {
		d.timer.Stop()
	}
	delete(s.docs, uri)
	s.mu.Unlock()
	if d != nil {
		if err := s.conn.notify("textDocument/publishDiagnostics",
			publishDiagnosticsParams{URI: uri, Diagnostics: []Diagnostic{}}); err != nil {
			s.logf("publish: %v", err)
		}
	}
}

// lintNow analyzes a document and publishes its diagnostics. It runs
// on the dispatch goroutine (didOpen) or a timer goroutine (debounced
// didChange); the version check inside analyze makes a stale timer's
// work harmless — its publish is dropped.
func (s *Server) lintNow(uri string) { s.analyze(uri, true) }

// relintAll re-analyzes every open document (after a configuration
// change).
func (s *Server) relintAll() {
	s.mu.Lock()
	uris := make([]string, 0, len(s.docs))
	for uri := range s.docs {
		uris = append(uris, uri)
	}
	s.mu.Unlock()
	for _, uri := range uris {
		s.lintNow(uri)
	}
}

// analyze lints uri's current text — incrementally, through the
// document's lint.Session, when one is live — and returns the
// diagnostics. When publish is true and the document is still at the
// analyzed version, the results are also installed for codeAction and
// pushed as publishDiagnostics. ok is false when the document is
// missing or desynced.
func (s *Server) analyze(uri string, publish bool) (diags []Diagnostic, ok bool) {
	s.mu.Lock()
	d := s.docs[uri]
	if d == nil || d.desynced {
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()

	// Serialise analyses of this document (Session is not
	// concurrency-safe); s.mu is never held while waiting here.
	d.relint.Lock()
	defer d.relint.Unlock()

	s.mu.Lock()
	if s.docs[uri] != d || d.desynced {
		s.mu.Unlock()
		return nil, false
	}
	text, version, path := d.text, d.version, d.path
	pending := d.pending
	d.pending = nil
	sess, sessLinter := d.session, d.sessionLinter
	s.mu.Unlock()

	linter := s.linters.forPath(path)
	name := path
	if name == "" {
		name = uri
	}

	var msgs []warn.Message
	if sess != nil && sessLinter == linter {
		// Incremental path: push the queued edits through the session.
		// The session's text must land exactly on the buffer snapshot;
		// if it doesn't (a full-sync replacement raced this analysis),
		// fall through and rebuild.
		msgs = sess.Apply(pending)
		if sess.Text() != text {
			sess = nil
		}
	}
	if sess == nil || sessLinter != linter {
		sess = lint.NewSession(linter, name, text)
		sessLinter = linter
		msgs = sess.Messages()
	}

	ix := textpos.New(text)
	diags = make([]Diagnostic, len(msgs))
	for i, m := range msgs {
		diags[i] = diagnosticFor(m, ix)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.docs[uri] != d || d.desynced {
		return nil, false
	}
	// Write the session back even if a racing change cleared or
	// superseded it: the next analysis verifies sess.Text() against the
	// then-current buffer and rebuilds on any mismatch, so a stale
	// write-back costs one rebuild, never a wrong result.
	d.session, d.sessionLinter = sess, sessLinter
	if d.version != version {
		// Superseded mid-lint: keep the session (the newly queued edits
		// will advance it next round) but publish nothing stale.
		return diags, true
	}
	d.index, d.msgs, d.diags, d.analyzed = ix, msgs, diags, version
	if publish {
		if err := s.conn.notify("textDocument/publishDiagnostics",
			publishDiagnosticsParams{URI: uri, Version: version, Diagnostics: diags}); err != nil {
			s.logf("publish: %v", err)
		}
	}
	return diags, true
}

// codeActions builds quick fixes for the fix-carrying diagnostics
// touching the requested range.
func (s *Server) codeActions(p *codeActionParams) []CodeAction {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.docs[p.TextDocument.URI]
	if d == nil || d.index == nil {
		return []CodeAction{}
	}
	if d.analyzed != d.version {
		// A didChange arrived after the last analysis (the debounced
		// re-lint hasn't landed yet): edit offsets computed against
		// the stale text could corrupt the client's buffer. Offer
		// nothing; the client re-requests after the next publish.
		return []CodeAction{}
	}
	actions := []CodeAction{}
	if wantKind(p.Context.Only, "quickfix") {
		for i, m := range d.msgs {
			if m.Fix == nil || !rangesTouch(d.diags[i].Range, p.Range) {
				continue
			}
			actions = append(actions, CodeAction{
				Title:       m.Fix.Label,
				Kind:        "quickfix",
				Diagnostics: []Diagnostic{d.diags[i]},
				IsPreferred: true,
				Edit: &WorkspaceEdit{Changes: map[string][]TextEdit{
					d.uri: editsToLSP(m.Fix.Edits, d.index),
				}},
			})
		}
	}
	if wantKind(p.Context.Only, "source.fixAll") {
		if a := s.fixAllAction(d); a != nil {
			actions = append(actions, *a)
		}
	}
	return actions
}

// wantKind implements the codeAction Only filter: empty means
// everything; otherwise kind must equal a requested kind or fall under
// one as a sub-kind ("source" matches "source.fixAll").
func wantKind(only []string, kind string) bool {
	if len(only) == 0 {
		return true
	}
	for _, o := range only {
		if o == kind || strings.HasPrefix(kind, o+".") {
			return true
		}
	}
	return false
}

// fixAllAction builds the source.fixAll action: every attached fix
// applied at once through fixit.Apply — the same first-fix-wins engine
// the CLI's -fix flag uses, so apply-then-relint comes out clean. The
// edit replaces the whole document; computing minimal per-fix edits
// would re-implement fixit's conflict handling in range space for no
// client-visible benefit. Returns nil when nothing is fixable.
func (s *Server) fixAllAction(d *document) *CodeAction {
	fixed, rep := fixit.Apply(d.text, d.msgs)
	if !rep.Changed() {
		return nil
	}
	el, ec := d.index.OffsetToUTF16(len(d.text))
	return &CodeAction{
		Title: fmt.Sprintf("Apply all weblint fixes (%d)", rep.Applied),
		Kind:  "source.fixAll",
		Edit: &WorkspaceEdit{Changes: map[string][]TextEdit{
			d.uri: {{Range: Range{End: Position{el, ec}}, NewText: fixed}},
		}},
	}
}

// linterCache resolves the linter for a document path: the nearest
// .weblintrc up the tree (bounded by the workspace roots) configures
// a cached per-file linter, rebuilt when the file's mtime changes;
// everything else shares the default linter.
type linterCache struct {
	def  *lint.Linter
	logf func(string, ...any)

	mu    sync.Mutex
	roots []string
	byRC  map[string]*rcEntry
}

type rcEntry struct {
	linter *lint.Linter
	mtime  time.Time
}

func newLinterCache(def *lint.Linter, logf func(string, ...any)) *linterCache {
	return &linterCache{def: def, logf: logf, byRC: map[string]*rcEntry{}}
}

func (lc *linterCache) setRoots(roots []string) {
	lc.mu.Lock()
	lc.roots = roots
	lc.mu.Unlock()
}

// invalidate drops every cached rc linter so the next forPath
// re-reads and rebuilds, even when the rc file's mtime is unchanged —
// workspace/didChangeConfiguration must take effect regardless of
// filesystem timestamps.
func (lc *linterCache) invalidate() {
	lc.mu.Lock()
	clear(lc.byRC)
	lc.mu.Unlock()
}

// forPath returns the linter for a document path ("" means the
// default).
func (lc *linterCache) forPath(path string) *lint.Linter {
	if path == "" {
		return lc.def
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	rc := lc.findRC(filepath.Dir(path))
	if rc == "" {
		return lc.def
	}
	st, err := os.Stat(rc)
	if err != nil {
		return lc.def
	}
	if e := lc.byRC[rc]; e != nil && e.mtime.Equal(st.ModTime()) {
		return e.linter
	}
	linter, err := buildRCLinter(rc)
	if err != nil {
		if lc.logf != nil {
			lc.logf("%s: %v (using default configuration)", rc, err)
		}
		linter = lc.def
	}
	lc.byRC[rc] = &rcEntry{linter: linter, mtime: st.ModTime()}
	return linter
}

// findRC walks from dir toward the root looking for .weblintrc,
// stopping at (and including) the first workspace root on the way, or
// at the filesystem root when the document is outside every
// workspace folder.
func (lc *linterCache) findRC(dir string) string {
	for {
		rc := filepath.Join(dir, ".weblintrc")
		if st, err := os.Stat(rc); err == nil && !st.IsDir() {
			return rc
		}
		for _, root := range lc.roots {
			if dir == filepath.Clean(root) {
				return ""
			}
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// buildRCLinter builds a linter from one configuration file, the same
// way the CLI's -f flag does.
func buildRCLinter(rc string) (*lint.Linter, error) {
	cfg, err := config.ParseFile(rc)
	if err != nil {
		return nil, err
	}
	settings := config.NewSettings()
	if err := settings.Apply(cfg); err != nil {
		return nil, err
	}
	l, err := lint.New(lint.Options{Settings: settings})
	if err != nil {
		return nil, fmt.Errorf("building linter: %w", err)
	}
	return l, nil
}
