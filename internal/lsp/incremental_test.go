package lsp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"weblint/internal/lint"
)

// incremental_test.go covers the incremental-sync surface: range-scoped
// didChange, pull diagnostics, source.fixAll, configuration-change
// invalidation, and the hard-resync path for unappliable changes.

const incrDoc = "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0//EN\">\n" +
	"<HTML>\n<HEAD>\n<TITLE>t</TITLE>\n" +
	"<META NAME=\"description\" CONTENT=\"d\">\n" +
	"<META NAME=\"keywords\" CONTENT=\"k\">\n" +
	"</HEAD>\n<BODY>\n" +
	"<P>x</P>\n" +
	"</BODY>\n</HTML>\n"

// change sends one didChange with the given content changes.
func (cl *client) change(uri string, version int, changes ...textDocumentContentChangeEvent) {
	cl.t.Helper()
	cl.notify("textDocument/didChange", didChangeParams{
		TextDocument:   VersionedTextDocumentIdentifier{URI: uri, Version: version},
		ContentChanges: changes,
	})
}

func rangeAt(sl, sc, el, ec int) *Range {
	return &Range{Start: Position{sl, sc}, End: Position{el, ec}}
}

// assertMatchesFullLint checks published diagnostics against a
// from-scratch lint of text: same count, codes, and lines.
func assertMatchesFullLint(t *testing.T, p publishDiagnosticsParams, name, text string) {
	t.Helper()
	want := lint.MustNew(lint.Options{}).CheckString(name, text)
	if len(p.Diagnostics) != len(want) {
		t.Fatalf("%d diagnostics, from-scratch lint says %d (%+v vs %+v)",
			len(p.Diagnostics), len(want), p.Diagnostics, want)
	}
	for i, d := range p.Diagnostics {
		if d.Code != want[i].ID || d.Range.Start.Line != want[i].Line-1 || d.Message != want[i].Text {
			t.Errorf("diag %d = %+v, want %s at line %d: %s", i, d, want[i].ID, want[i].Line-1, want[i].Text)
		}
	}
}

// TestIncrementalDidChange drives range-scoped edits through didChange
// and checks every publish against a from-scratch lint of the text the
// edits produce — the wire-level version of the Session's differential
// guarantee.
func TestIncrementalDidChange(t *testing.T) {
	cl := startServer(t, Options{DebounceDelay: -1})
	cl.initialize("")
	uri := "untitled:incr"
	cl.open(uri, incrDoc)
	if p := cl.waitDiagnostics(uri); len(p.Diagnostics) != 0 {
		t.Fatalf("open diagnostics = %+v", p.Diagnostics)
	}

	// Insert an ALT-less IMG after </P> on line 8 (0-based).
	img := "<IMG SRC=\"x.gif\">"
	cl.change(uri, 2, textDocumentContentChangeEvent{Range: rangeAt(8, 8, 8, 8), Text: img})
	text := strings.Replace(incrDoc, "<P>x</P>", "<P>x</P>"+img, 1)
	p := cl.waitDiagnostics(uri)
	if p.Version != 2 {
		t.Fatalf("published version = %d, want 2", p.Version)
	}
	assertMatchesFullLint(t, p, uri, text)
	if len(p.Diagnostics) != 1 || p.Diagnostics[0].Code != "img-alt" {
		t.Fatalf("diagnostics = %+v, want img-alt", p.Diagnostics)
	}

	// Two changes in one notification, the second positioned against
	// the result of the first (the LSP contract): turn </P> into <BP>
	// (an unclosed-element error), then fix the IMG's missing ALT.
	cl.change(uri, 3,
		textDocumentContentChangeEvent{Range: rangeAt(8, 5, 8, 6), Text: "B"},
		textDocumentContentChangeEvent{Range: rangeAt(8, 24, 8, 24), Text: " ALT=\"\""},
	)
	text = text[:lineColOffset(text, 8, 5)] + "B" + text[lineColOffset(text, 8, 6):]
	text = text[:lineColOffset(text, 8, 24)] + " ALT=\"\"" + text[lineColOffset(text, 8, 24):]
	assertMatchesFullLint(t, cl.waitDiagnostics(uri), uri, text)

	// Delete back to a clean document by replacing all of line 8.
	line8 := text[lineColOffset(text, 8, 0):]
	line8 = line8[:strings.IndexByte(line8, '\n')]
	cl.change(uri, 4, textDocumentContentChangeEvent{Range: rangeAt(8, 0, 8, len(line8)), Text: "<P>x</P>"})
	p = cl.waitDiagnostics(uri)
	assertMatchesFullLint(t, p, uri, incrDoc)
	if len(p.Diagnostics) != 0 {
		t.Fatalf("diagnostics after revert = %+v, want none", p.Diagnostics)
	}
}

// lineColOffset resolves a (0-based line, ASCII column) to a byte
// offset in text — the test documents are ASCII, so UTF-16 units are
// bytes.
func lineColOffset(text string, line, col int) int {
	off := 0
	for ; line > 0; line-- {
		off = strings.IndexByte(text[off:], '\n') + off + 1
	}
	return off + col
}

// TestPullDiagnostics: textDocument/diagnostic answers a full report
// matching the pushed diagnostics.
func TestPullDiagnostics(t *testing.T) {
	cl := startServer(t, Options{DebounceDelay: -1})
	cl.initialize("")
	uri := "untitled:pull"
	doc := strings.Replace(incrDoc, "<P>x</P>", "<P>x<IMG SRC=\"x.gif\"></P>", 1)
	cl.open(uri, doc)
	pushed := cl.waitDiagnostics(uri)

	resp := cl.call("textDocument/diagnostic", documentDiagnosticParams{
		TextDocument: TextDocumentIdentifier{URI: uri},
	})
	if resp.Error != nil {
		t.Fatalf("diagnostic: %+v", resp.Error)
	}
	var rep fullDocumentDiagnosticReport
	if err := json.Unmarshal(resp.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "full" {
		t.Fatalf("report kind = %q, want full", rep.Kind)
	}
	if len(rep.Items) != len(pushed.Diagnostics) {
		t.Fatalf("pull returned %d items, push had %d", len(rep.Items), len(pushed.Diagnostics))
	}
	for i, d := range rep.Items {
		if d.Code != pushed.Diagnostics[i].Code || d.Range != pushed.Diagnostics[i].Range {
			t.Errorf("pull item %d = %+v, push had %+v", i, d, pushed.Diagnostics[i])
		}
	}

	// Unknown documents answer an empty full report, not an error.
	resp = cl.call("textDocument/diagnostic", documentDiagnosticParams{
		TextDocument: TextDocumentIdentifier{URI: "untitled:never-opened"},
	})
	if resp.Error != nil {
		t.Fatalf("diagnostic for unopened: %+v", resp.Error)
	}
	if err := json.Unmarshal(resp.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "full" || len(rep.Items) != 0 {
		t.Errorf("unopened pull = %+v, want empty full report", rep)
	}
}

// TestFixAllCodeAction: Only=[source.fixAll] yields exactly one
// document-wide action whose edit, applied the way an editor would,
// re-lints clean — and suppresses the individual quick fixes.
func TestFixAllCodeAction(t *testing.T) {
	doc := strings.Replace(incrDoc, "<P>x</P>",
		"<P>x<IMG SRC=\"a.gif\"><IMG SRC=\"b.gif\"></P>", 1)
	cl := startServer(t, Options{DebounceDelay: -1})
	cl.initialize("")
	uri := "untitled:fixall"
	cl.open(uri, doc)
	p := cl.waitDiagnostics(uri)
	if len(p.Diagnostics) != 2 {
		t.Fatalf("diagnostics = %+v, want two img-alt", p.Diagnostics)
	}

	resp := cl.call("textDocument/codeAction", codeActionParams{
		TextDocument: TextDocumentIdentifier{URI: uri},
		Range:        p.Diagnostics[0].Range,
		Context:      codeActionContext{Only: []string{"source.fixAll"}},
	})
	if resp.Error != nil {
		t.Fatalf("codeAction: %+v", resp.Error)
	}
	var actions []CodeAction
	if err := json.Unmarshal(resp.Result, &actions); err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].Kind != "source.fixAll" {
		t.Fatalf("actions = %+v, want one source.fixAll", actions)
	}
	fixed := ApplyTextEdits(doc, actions[0].Edit.Changes[uri])
	if msgs := lint.MustNew(lint.Options{}).CheckString("fixed.html", fixed); len(msgs) != 0 {
		t.Errorf("fixAll result still lints dirty: %v", msgs)
	}
}

// TestDidChangeConfigurationInvalidates: a workspace/
// didChangeConfiguration must re-read .weblintrc even when the file's
// mtime did not move — the mtime-keyed cache alone would serve the
// stale linter forever.
func TestDidChangeConfigurationInvalidates(t *testing.T) {
	ws := t.TempDir()
	rc := filepath.Join(ws, ".weblintrc")
	if err := os.WriteFile(rc, []byte("disable img-alt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(rc)
	if err != nil {
		t.Fatal(err)
	}
	doc := strings.Replace(incrDoc, "<P>x</P>", "<P>x<IMG SRC=\"x.gif\"></P>", 1)

	cl := startServer(t, Options{DebounceDelay: -1})
	cl.initialize(ws)
	uri := "file://" + filepath.Join(ws, "in.html")
	cl.open(uri, doc)
	if p := cl.waitDiagnostics(uri); len(p.Diagnostics) != 0 {
		t.Fatalf("rc not applied on open: %+v", p.Diagnostics)
	}

	// Rewrite the rc but pin the mtime back: only the configuration
	// notification can surface the change.
	if err := os.WriteFile(rc, []byte("# nothing disabled\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(rc, st.ModTime(), st.ModTime()); err != nil {
		t.Fatal(err)
	}
	cl.notify("workspace/didChangeConfiguration", map[string]any{"settings": map[string]any{}})
	p := cl.waitDiagnostics(uri)
	if len(p.Diagnostics) != 1 || p.Diagnostics[0].Code != "img-alt" {
		t.Errorf("configuration change not picked up: %+v", p.Diagnostics)
	}
}

// TestHardResyncOnMalformedChange: an unappliable incremental change
// (reversed range) must retract diagnostics and refuse to serve
// anything — never silently keep publishing against guessed text —
// until the client re-sends full content.
func TestHardResyncOnMalformedChange(t *testing.T) {
	cl := startServer(t, Options{DebounceDelay: -1})
	cl.initialize("")
	uri := "untitled:resync"
	cl.open(uri, "<B>unclosed")
	if p := cl.waitDiagnostics(uri); len(p.Diagnostics) == 0 {
		t.Fatal("expected diagnostics for a broken doc")
	}

	// Reversed range: end precedes start.
	cl.change(uri, 2, textDocumentContentChangeEvent{Range: rangeAt(0, 5, 0, 2), Text: "x"})
	if p := cl.waitDiagnostics(uri); len(p.Diagnostics) != 0 {
		t.Fatalf("desync did not retract diagnostics: %+v", p.Diagnostics)
	}

	// While desynced: incremental changes are unappliable, code
	// actions are refused, pulls come back empty.
	cl.change(uri, 3, textDocumentContentChangeEvent{Range: rangeAt(0, 0, 0, 0), Text: "y"})
	if m := cl.tryNext(100 * time.Millisecond); m != nil {
		t.Fatalf("desynced document still publishing: %+v", m)
	}
	resp := cl.call("textDocument/codeAction", codeActionParams{
		TextDocument: TextDocumentIdentifier{URI: uri},
		Range:        Range{},
	})
	var actions []CodeAction
	if err := json.Unmarshal(resp.Result, &actions); err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 {
		t.Errorf("desynced document served code actions: %+v", actions)
	}

	// A rangeless (full) change recovers.
	cl.change(uri, 4, textDocumentContentChangeEvent{Text: "<B>unclosed"})
	if p := cl.waitDiagnostics(uri); len(p.Diagnostics) == 0 {
		t.Error("full-sync change did not recover from desync")
	}
}

// TestConcurrentIncrementalBursts hammers the session write-back paths
// under the race detector: rapid incremental appends on two documents
// with a tiny debounce, interleaved with full replacements.
func TestConcurrentIncrementalBursts(t *testing.T) {
	cl := startServer(t, Options{DebounceDelay: time.Millisecond})
	cl.initialize("")
	uris := []string{"untitled:i1", "untitled:i2"}
	base := "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x</BODY></HTML>"
	for _, uri := range uris {
		cl.open(uri, base)
	}
	for v := 2; v < 30; v++ {
		for _, uri := range uris {
			if v%7 == 0 {
				cl.change(uri, v, textDocumentContentChangeEvent{Text: base})
				continue
			}
			// Column 1<<20 clamps to end of line 0 = end of document.
			cl.change(uri, v, textDocumentContentChangeEvent{Range: rangeAt(0, 1<<20, 0, 1<<20), Text: "<!--c-->"})
		}
	}
	for cl.tryNext(200*time.Millisecond) != nil {
	}
	if resp := cl.call("shutdown", nil); resp.Error != nil {
		t.Fatalf("shutdown after burst: %+v", resp.Error)
	}
}
